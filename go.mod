module linkpad

go 1.24
