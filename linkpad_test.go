package linkpad_test

import (
	"context"
	"math"
	"testing"

	"linkpad"
)

// The facade must expose a working end-to-end path: build the default
// system, attack it, and compare against the re-exported theory.
func TestFacadeEndToEnd(t *testing.T) {
	sys, err := linkpad.NewSystem(linkpad.DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sys.Build(linkpad.AttackSetSpec{
		Attack: linkpad.AttackConfig{
			WindowSize:   500,
			TrainWindows: 80,
			EvalWindows:  80,
		},
		Features: []linkpad.Feature{linkpad.FeatureEntropy},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sc.Run(context.Background(), linkpad.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := out.AttackSet[0]
	if res.DetectionRate < 0.9 {
		t.Errorf("detection = %v, want > 0.9", res.DetectionRate)
	}
	v, err := linkpad.DetectionRateEntropy(res.EmpiricalR, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-res.TheoryDetectionRate) > 1e-12 {
		t.Errorf("facade theorem %v != result theorem %v", v, res.TheoryDetectionRate)
	}
}

func TestFacadeTheorems(t *testing.T) {
	v, err := linkpad.DetectionRateMean(1)
	if err != nil || math.Abs(v-0.5) > 1e-12 {
		t.Errorf("mean v(1) = %v, err %v", v, err)
	}
	n, err := linkpad.SampleSizeVariance(1.9, 0.99)
	if err != nil || n < 100 || n > 10000 {
		t.Errorf("n(99%%) at r=1.9 = %v", n)
	}
	ne, err := linkpad.SampleSizeEntropy(1.9, 0.99)
	if err != nil || ne < 100 || ne > 10000 {
		t.Errorf("entropy n(99%%) at r=1.9 = %v", ne)
	}
	vv, err := linkpad.DetectionRateVariance(1.9, 1000)
	if err != nil || vv < 0.98 {
		t.Errorf("variance v = %v", vv)
	}
}

func TestFacadeExperiments(t *testing.T) {
	names := linkpad.ExperimentNames()
	if len(names) < 10 {
		t.Fatalf("only %d experiments registered", len(names))
	}
	tbl, err := linkpad.RunExperiment("fig5b", linkpad.ExperimentOptions{Scale: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Error("empty table from facade")
	}
	if _, err := linkpad.RunExperiment("not-a-figure", linkpad.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestVersion(t *testing.T) {
	if linkpad.Version == "" {
		t.Error("empty version")
	}
}
