// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each benchmark runs the corresponding experiment
// and logs the full result table (visible with -v); key scalar outcomes
// are also attached as custom benchmark metrics so regressions in the
// reproduced *shape* (who wins, by how much, where crossovers fall) show
// up in plain `go test -bench` output.
//
// The Monte Carlo scale is reduced relative to the CLI defaults so the
// whole suite completes in minutes; run `linkpadsim -exp all -scale 1`
// for full-fidelity tables.
package linkpad_test

import (
	"strings"
	"testing"

	"linkpad"
)

// benchScale balances statistical resolution against bench runtime.
const benchScale = 0.5

// runFigure executes one experiment per benchmark iteration, logs the
// table once, and reports the requested (column, row) cells as metrics.
// Allocation metrics are reported so regressions in the allocation-free
// attack pipeline (adversary.Features/Evaluate draw and reduce windows
// with reusable buffers) are visible in plain benchmark output.
func runFigure(b *testing.B, id string, metrics map[string][2]string) {
	b.Helper()
	b.ReportAllocs()
	var tbl *linkpad.ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = linkpad.RunExperiment(id, linkpad.ExperimentOptions{
			Scale: benchScale,
			Seed:  uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + sb.String())
	for name, sel := range metrics {
		v, ok := cell(tbl, sel[0], sel[1])
		if !ok {
			b.Fatalf("metric %s: no cell (%s, %s)", name, sel[0], sel[1])
		}
		b.ReportMetric(v, name)
	}
}

// cell returns the value in the named column at the row whose first
// column textually matches rowKey ("first"/"last" select endpoints).
func cell(tbl *linkpad.ExperimentTable, column, rowKey string) (float64, bool) {
	colIdx := -1
	for j, c := range tbl.Columns {
		if c == column {
			// First match wins: keep scanning no further so a duplicated
			// column name cannot silently redirect the metric to the last
			// occurrence.
			colIdx = j
			break
		}
	}
	if colIdx < 0 || len(tbl.Rows) == 0 {
		return 0, false
	}
	switch rowKey {
	case "first":
		return tbl.Rows[0][colIdx], true
	case "last":
		return tbl.Rows[len(tbl.Rows)-1][colIdx], true
	}
	return 0, false
}

// BenchmarkFig4a regenerates the PIAT PDFs under CIT (paper Fig. 4a).
func BenchmarkFig4a(b *testing.B) {
	runFigure(b, "fig4a", map[string][2]string{
		"density10_edge/s": {"density_10pps", "first"},
	})
}

// BenchmarkFig4b regenerates detection rate vs sample size (paper
// Fig. 4b). The headline metrics: entropy and variance detection at the
// largest sample size (paper: ≈1.0), mean detection (paper: ≈0.5).
func BenchmarkFig4b(b *testing.B) {
	runFigure(b, "fig4b", map[string][2]string{
		"ent_at_nmax":  {"ent_emp", "last"},
		"var_at_nmax":  {"var_emp", "last"},
		"mean_at_nmax": {"mean_emp", "last"},
	})
}

// BenchmarkFig5a regenerates detection vs σ_T under VIT (paper Fig. 5a):
// detection at σ_T = 0 is ≈1, at σ_T = 100 µs ≈ 0.5.
func BenchmarkFig5a(b *testing.B) {
	runFigure(b, "fig5a", map[string][2]string{
		"ent_at_cit":      {"ent_emp", "first"},
		"ent_at_sigmamax": {"ent_emp", "last"},
	})
}

// BenchmarkFig5b regenerates the theoretical n(99%) curve (paper
// Fig. 5b): at σ_T = 1 ms the required sample size exceeds 1e11.
func BenchmarkFig5b(b *testing.B) {
	runFigure(b, "fig5b", map[string][2]string{
		"n99var_at_1ms": {"n99_variance", "last"},
	})
}

// BenchmarkFig6 regenerates detection vs link utilization (paper Fig. 6):
// entropy stays ≈0.7 even at 50% utilization while variance falls harder.
func BenchmarkFig6(b *testing.B) {
	runFigure(b, "fig6", map[string][2]string{
		"ent_at_umax": {"ent_emp", "last"},
		"var_at_umax": {"var_emp", "last"},
	})
}

// BenchmarkFig8a regenerates the 24 h campus sweep (paper Fig. 8a):
// detection stays high all day.
func BenchmarkFig8a(b *testing.B) {
	runFigure(b, "fig8a", map[string][2]string{
		"ent_at_midnight": {"ent_emp", "first"},
	})
}

// BenchmarkFig8b regenerates the 24 h WAN sweep (paper Fig. 8b):
// detection is depressed by congestion but recovers at night.
func BenchmarkFig8b(b *testing.B) {
	runFigure(b, "fig8b", map[string][2]string{
		"ent_at_midnight": {"ent_emp", "first"},
	})
}

// BenchmarkExtMultiRate regenerates the §6 multi-rate extension.
func BenchmarkExtMultiRate(b *testing.B) {
	runFigure(b, "multirate", map[string][2]string{
		"recall_class0": {"recall", "first"},
		"recall_class3": {"recall", "last"},
	})
}

// BenchmarkAblationBinWidth sweeps the entropy estimator's bin width.
func BenchmarkAblationBinWidth(b *testing.B) {
	runFigure(b, "ablation-binwidth", map[string][2]string{
		"ent_finest":   {"ent_emp", "first"},
		"ent_coarsest": {"ent_emp", "last"},
	})
}

// BenchmarkAblationTraining compares KDE against parametric training.
func BenchmarkAblationTraining(b *testing.B) {
	runFigure(b, "ablation-training", map[string][2]string{
		"kde_entropy": {"kde_emp", "last"},
	})
}

// BenchmarkAblationPayload swaps payload arrival models.
func BenchmarkAblationPayload(b *testing.B) {
	runFigure(b, "ablation-payload", map[string][2]string{
		"ent_poisson": {"ent_emp", "first"},
		"ent_onoff":   {"ent_emp", "last"},
	})
}

// BenchmarkAblationTap degrades the adversary's capture.
func BenchmarkAblationTap(b *testing.B) {
	runFigure(b, "ablation-tap", map[string][2]string{
		"ent_perfect_tap": {"ent_emp", "first"},
	})
}

// BenchmarkAblationTheoryGap quantifies empirical-vs-theorem gaps.
func BenchmarkAblationTheoryGap(b *testing.B) {
	runFigure(b, "ablation-theorygap", map[string][2]string{
		"emp_at_cit":    {"ent_emp", "first"},
		"theory_at_cit": {"ent_theory", "first"},
	})
}

// BenchmarkBaselinePolicies compares CIT / VIT / adaptive masking on
// security, bandwidth and QoS.
func BenchmarkBaselinePolicies(b *testing.B) {
	runFigure(b, "baseline-policies", map[string][2]string{
		"mean_det_vs_cit":      {"mean_emp", "first"},
		"mean_det_vs_adaptive": {"mean_emp", "last"},
	})
}

// BenchmarkExtSizes regenerates the packet-size camouflage study.
func BenchmarkExtSizes(b *testing.B) {
	runFigure(b, "ext-sizes", map[string][2]string{
		"det_unpadded":     {"detection", "first"},
		"det_constant_pad": {"detection", "last"},
	})
}

// BenchmarkExtFeatures compares variance/entropy/IQR features.
func BenchmarkExtFeatures(b *testing.B) {
	runFigure(b, "ext-features", map[string][2]string{
		"iqr_at_nmax": {"iqr_emp", "last"},
	})
}

// BenchmarkValidateExactNet cross-validates the fast network path
// against the exact per-packet router simulation.
func BenchmarkValidateExactNet(b *testing.B) {
	runFigure(b, "validate-exactnet", map[string][2]string{
		"ent_fast":  {"ent_emp", "first"},
		"ent_exact": {"ent_emp", "last"},
	})
}

// BenchmarkAblationCrossModel sweeps cross-traffic burstiness through the
// exact router.
func BenchmarkAblationCrossModel(b *testing.B) {
	runFigure(b, "ablation-crossmodel", map[string][2]string{
		"ent_poisson_cross": {"ent_emp", "first"},
		"ent_train_cross":   {"ent_emp", "last"},
	})
}

// BenchmarkExtOnline runs the continuous-stream anytime adversary across
// window sizes.
func BenchmarkExtOnline(b *testing.B) {
	runFigure(b, "ext-online", map[string][2]string{
		"anytime_at_nmax": {"anytime_det", "last"},
		"sec_to_dec_nmax": {"mean_seconds_to_dec", "last"},
	})
}

// BenchmarkAblationWindowing compares the i.i.d.-replica and
// continuous-stream window protocols.
func BenchmarkAblationWindowing(b *testing.B) {
	runFigure(b, "ablation-windowing", map[string][2]string{
		"replica_poisson": {"replica_det", "first"},
		"stream_onoff":    {"stream_det", "last"},
	})
}

// BenchmarkExtDisclosure measures the population engine's statistical
// disclosure sweep (rounds-to-disclosure vs population size and cover).
func BenchmarkExtDisclosure(b *testing.B) {
	runFigure(b, "ext-disclosure", map[string][2]string{
		"rounds_n24_c0": {"mean_rounds", "first"},
		"anon_n96_c4":   {"mean_anonymity", "last"},
	})
}

// BenchmarkAblationPopulationPadding measures the per-flow correlation
// attack across padding policies at matched overhead.
func BenchmarkAblationPopulationPadding(b *testing.B) {
	runFigure(b, "ablation-population-padding", map[string][2]string{
		"flow_acc_none": {"flow_acc", "first"},
		"flow_acc_mix":  {"flow_acc", "last"},
	})
}

// BenchmarkExtCascade measures the end-to-end correlation attack across
// route lengths (unpadded anchor through three re-padding hops).
func BenchmarkExtCascade(b *testing.B) {
	runFigure(b, "ext-cascade", map[string][2]string{
		"flow_acc_raw":    {"flow_acc", "first"},
		"anon_3hops":      {"anonymity", "last"},
		"class_acc_3hops": {"class_acc", "last"},
	})
}

// BenchmarkAblationHopPolicies compares homogeneous against mixed
// per-hop policies on two-hop routes at equal bandwidth.
func BenchmarkAblationHopPolicies(b *testing.B) {
	runFigure(b, "ablation-hop-policies", map[string][2]string{
		"class_acc_citcit": {"class_acc", "first"},
		"class_acc_mixcit": {"class_acc", "last"},
	})
}

// BenchmarkExtActive measures the active chaff watermark across padding
// policies at matched overhead (unpadded anchor through the two-hop
// cascade).
func BenchmarkExtActive(b *testing.B) {
	runFigure(b, "ext-active", map[string][2]string{
		"det_none_amp10": {"det_rate", "first"},
		"det_casc_amp40": {"det_rate", "last"},
	})
}

// BenchmarkAblationWatermarkDefenses measures both watermark mechanisms
// against two-hop routes at equal bandwidth.
func BenchmarkAblationWatermarkDefenses(b *testing.B) {
	runFigure(b, "ablation-watermark-defenses", map[string][2]string{
		"chaff_det_cit":    {"det_rate", "first"},
		"delay_det_mixcit": {"det_rate", "last"},
	})
}
