package kde

import (
	"math"
	"testing"
	"testing/quick"

	"linkpad/internal/xrand"
)

// gridAccuracyFloor ignores queries where the exact density is below
// 1e-12 of the peak: relative error on numerically-zero tails is
// meaningless (and the classifier compares log densities, where such
// values are ties at -∞ anyway).
const gridAccuracyFloor = 1e-12

// maxRelErr scans the support at a finer pitch than the grid and returns
// the worst relative error of the grid density against the exact KDE.
func maxRelErr(t *testing.T, g *Grid) float64 {
	t.Helper()
	lo, hi := g.Support()
	peak := 0.0
	steps := 4 * g.Nodes()
	for i := 0; i <= steps; i++ {
		x := lo + (hi-lo)*float64(i)/float64(steps)
		if p := g.Exact().PDF(x); p > peak {
			peak = p
		}
	}
	worst := 0.0
	for i := 0; i <= steps; i++ {
		x := lo + (hi-lo)*float64(i)/float64(steps)
		want := g.Exact().PDF(x)
		if want < gridAccuracyFloor*peak {
			continue
		}
		if e := math.Abs(g.PDF(x)-want) / want; e > worst {
			worst = e
		}
	}
	return worst
}

// Property: grid densities match the exact KDE within 1e-3 relative
// error across the support, for a spread of sample shapes and sizes.
func TestGridMatchesExactWithinTolerance(t *testing.T) {
	cases := []struct {
		name string
		data []float64
	}{
		{"gaussian", gaussianSample(2, 200, 10e-3, 5e-6)},
		{"gaussian-small", gaussianSample(3, 24, 0, 1)},
		{"tiny-scale", gaussianSample(5, 500, 2.5e-11, 2.5e-12)},
	}
	// Bimodal mixture: two clusters a few bandwidths apart.
	r := xrand.New(7)
	bimodal := make([]float64, 300)
	for i := range bimodal {
		if r.Bernoulli(0.4) {
			bimodal[i] = r.Normal(0, 1)
		} else {
			bimodal[i] = r.Normal(6, 0.5)
		}
	}
	cases = append(cases, struct {
		name string
		data []float64
	}{"bimodal", bimodal})

	for _, tc := range cases {
		k, err := New(tc.data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		g := k.Grid()
		if e := maxRelErr(t, g); e > 1e-3 {
			t.Errorf("%s: max relative grid error %v > 1e-3", tc.name, e)
		}
	}
}

// Randomized property check over arbitrary seeds and sample sizes.
func TestGridErrorProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(400)
		xs := make([]float64, n)
		scale := math.Exp(float64(r.Intn(20)) - 10) // spans e^-10..e^9
		for i := range xs {
			xs[i] = r.Norm() * scale
		}
		k, err := New(xs)
		if err != nil {
			return true // degenerate sample, rejected by construction
		}
		g := k.Grid()
		lo, hi := g.Support()
		peak := 0.0
		for i := 0; i <= 200; i++ {
			x := lo + (hi-lo)*float64(i)/200
			if p := k.PDF(x); p > peak {
				peak = p
			}
		}
		for i := 0; i < 200; i++ {
			x := lo + (hi-lo)*r.Float64()
			want := k.PDF(x)
			if want < gridAccuracyFloor*peak {
				continue
			}
			if math.Abs(g.PDF(x)-want)/want > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGridOutsideSupportAndLog(t *testing.T) {
	k, err := New(gaussianSample(13, 300, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	g := k.Grid()
	lo, hi := g.Support()
	for _, x := range []float64{lo - 1, hi + 1, lo - 1e-9, hi + 1e-9, math.NaN()} {
		if p := g.PDF(x); p != 0 {
			t.Errorf("PDF(%v) = %v outside support", x, p)
		}
		if lp := g.LogPDF(x); !math.IsInf(lp, -1) {
			t.Errorf("LogPDF(%v) = %v outside support", x, lp)
		}
	}
	// Inside: LogPDF is the log of PDF.
	for _, x := range []float64{-2, 0, 1.3} {
		if got, want := g.LogPDF(x), math.Log(g.PDF(x)); math.Abs(got-want) > 1e-12 {
			t.Errorf("LogPDF(%v) = %v, want %v", x, got, want)
		}
	}
	if g.N() != k.N() || g.Bandwidth() != k.Bandwidth() {
		t.Error("grid does not mirror its KDE")
	}
	if g.CDF(0) != k.CDF(0) {
		t.Error("CDF should delegate to the exact KDE")
	}
}

// A sample with two clusters far beyond the kernel cutoff (forced by an
// explicit small bandwidth — Silverman's rule scales with the spread and
// never produces one) has an interior density gap; grid queries there
// must agree with the exact KDE (zero), and the gap edges must stay
// accurate via the exact fallback.
func TestGridDensityGap(t *testing.T) {
	var xs []float64
	r := xrand.New(17)
	for i := 0; i < 100; i++ {
		xs = append(xs, r.Normal(0, 0.01))
	}
	for i := 0; i < 100; i++ {
		xs = append(xs, r.Normal(10, 0.01))
	}
	k, err := NewWithBandwidth(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	g := k.Grid()
	// Deep inside the gap the density is exactly zero on both paths.
	for _, x := range []float64{3, 5, 7} {
		if k.PDF(x) != 0 {
			t.Fatalf("test setup: exact PDF(%v) = %v, want a gap", x, k.PDF(x))
		}
		if got := g.PDF(x); got != 0 {
			t.Errorf("gap PDF(%v) = %v, want 0", x, got)
		}
		if lp := g.LogPDF(x); !math.IsInf(lp, -1) {
			t.Errorf("gap LogPDF(%v) = %v, want -Inf", x, lp)
		}
	}
	// Gap edges: the exact fallback keeps them consistent.
	for _, x := range []float64{0.05, 9.95, 0.4, 9.6} {
		got, want := g.PDF(x), k.PDF(x)
		if math.Abs(got-want) > 1e-3*want+1e-300 {
			t.Errorf("edge PDF(%v) = %v, exact %v", x, got, want)
		}
	}
}

func TestGridBatchMatchesScalar(t *testing.T) {
	k, err := New(gaussianSample(19, 400, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	g := k.Grid()
	r := xrand.New(23)
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = r.Normal(5, 4)
	}
	out := g.PDFBatch(xs, nil)
	lout := g.LogPDFBatch(xs, nil)
	eout := k.PDFBatch(xs, nil)
	for i, x := range xs {
		if out[i] != g.PDF(x) {
			t.Fatalf("PDFBatch[%d] != PDF", i)
		}
		if lout[i] != g.LogPDF(x) {
			t.Fatalf("LogPDFBatch[%d] != LogPDF", i)
		}
		if eout[i] != k.PDF(x) {
			t.Fatalf("exact PDFBatch[%d] != PDF", i)
		}
	}
	// Buffer reuse: no allocation when the buffer is large enough.
	allocs := testing.AllocsPerRun(20, func() {
		out = g.PDFBatch(xs, out)
	})
	if allocs != 0 {
		t.Errorf("PDFBatch with reusable buffer allocates %v", allocs)
	}
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(nil, 10); err == nil {
		t.Error("nil KDE should fail")
	}
	k, err := New([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGrid(k, 1); err == nil {
		t.Error("one-node grid should fail")
	}
}

func BenchmarkGridPDF(b *testing.B) {
	k, err := New(gaussianSample(1, 2000, 0, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := k.Grid()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += g.PDF(float64(i%100)/25 - 2)
	}
	_ = sink
}

func BenchmarkGridBuild(b *testing.B) {
	k, err := New(gaussianSample(1, 200, 0, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.Grid()
	}
}
