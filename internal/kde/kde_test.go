package kde

import (
	"math"
	"testing"
	"testing/quick"

	"linkpad/internal/dist"
	"linkpad/internal/xrand"
)

func gaussianSample(seed uint64, n int, mu, sigma float64) []float64 {
	r := xrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(mu, sigma)
	}
	return xs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := New([]float64{1}); err == nil {
		t.Error("want error for singleton")
	}
	if _, err := New([]float64{2, 2, 2}); err == nil {
		t.Error("want error for zero-spread sample")
	}
	if _, err := NewWithBandwidth([]float64{1, 2}, 0); err == nil {
		t.Error("want error for zero bandwidth")
	}
	if _, err := NewWithBandwidth([]float64{1, 2}, math.NaN()); err == nil {
		t.Error("want error for NaN bandwidth")
	}
}

func TestPDFNonNegative(t *testing.T) {
	k, err := New(gaussianSample(1, 500, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for x := -6.0; x <= 6; x += 0.05 {
		if p := k.PDF(x); p < 0 || math.IsNaN(p) {
			t.Fatalf("PDF(%v) = %v", x, p)
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	k, err := New(gaussianSample(2, 1000, 10e-3, 5e-6))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := k.Support()
	got, err := dist.Integrate(k.PDF, lo, hi, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-6 {
		t.Errorf("PDF integral = %v", got)
	}
}

func TestRecoverGaussianDensity(t *testing.T) {
	const mu, sigma = 0.0, 1.0
	k, err := New(gaussianSample(3, 20000, mu, sigma))
	if err != nil {
		t.Fatal(err)
	}
	// The expected value of a Gaussian KDE is the truth convolved with the
	// kernel: N(mu, sigma^2 + h^2). Comparing against that isolates the
	// sampling error from the (known, intended) smoothing bias.
	h := k.Bandwidth()
	smoothed := dist.Normal{Mu: mu, Sigma: math.Sqrt(sigma*sigma + h*h)}
	for _, x := range []float64{-2, -1, 0, 1, 2} {
		got, want := k.PDF(x), smoothed.PDF(x)
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("PDF(%v) = %v, smoothed truth %v", x, got, want)
		}
	}
}

// A KDE trained on the tiny PIAT-variance scale (1e-11) must still be
// well-conditioned: this is the actual numeric regime of the experiments.
func TestTinyScaleConditioning(t *testing.T) {
	r := xrand.New(5)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 2.5e-11 * (1 + 0.1*r.Norm())
	}
	k, err := New(xs)
	if err != nil {
		t.Fatal(err)
	}
	p := k.PDF(2.5e-11)
	if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
		t.Fatalf("PDF at center = %v", p)
	}
	lo, hi := k.Support()
	integral, err := dist.Integrate(k.PDF, lo, hi, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(integral-1) > 1e-6 {
		t.Errorf("integral = %v", integral)
	}
}

func TestLogPDFFarOutside(t *testing.T) {
	k, err := New(gaussianSample(7, 100, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	lp := k.LogPDF(1e6)
	if !math.IsInf(lp, -1) {
		t.Errorf("LogPDF far outside = %v, want -Inf", lp)
	}
	if lp := k.LogPDF(0); math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Errorf("LogPDF(0) = %v", lp)
	}
}

func TestCDFMonotoneAndLimits(t *testing.T) {
	k, err := New(gaussianSample(9, 400, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := k.Support()
	if c := k.CDF(lo); c > 1e-9 {
		t.Errorf("CDF(lo) = %v", c)
	}
	if c := k.CDF(hi); c < 1-1e-9 {
		t.Errorf("CDF(hi) = %v", c)
	}
	prev := -1.0
	for x := lo; x <= hi; x += (hi - lo) / 200 {
		c := k.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = c
	}
}

func TestSymmetricDataSymmetricDensity(t *testing.T) {
	// Mirror-symmetric training set => PDF(x) == PDF(-x).
	xs := []float64{-3, -2, -1, -0.5, 0.5, 1, 2, 3}
	k, err := New(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.25, 0.75, 1.5, 2.5} {
		a, b := k.PDF(x), k.PDF(-x)
		if math.Abs(a-b) > 1e-15 {
			t.Errorf("asymmetry at %v: %v vs %v", x, a, b)
		}
	}
}

func TestBandwidthShrinksWithN(t *testing.T) {
	k1, err := New(gaussianSample(11, 100, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := New(gaussianSample(11, 10000, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if k2.Bandwidth() >= k1.Bandwidth() {
		t.Errorf("bandwidth should shrink with n: %v vs %v", k1.Bandwidth(), k2.Bandwidth())
	}
}

func TestWindowedPDFMatchesBruteForce(t *testing.T) {
	xs := gaussianSample(13, 300, 0, 1)
	k, err := New(xs)
	if err != nil {
		t.Fatal(err)
	}
	brute := func(x float64) float64 {
		h := k.Bandwidth()
		var sum float64
		for _, xi := range xs {
			z := (x - xi) / h
			sum += math.Exp(-0.5 * z * z)
		}
		return sum / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
	}
	for _, x := range []float64{-3, -0.5, 0, 1.2, 4} {
		got, want := k.PDF(x), brute(x)
		if math.Abs(got-want) > 1e-12*(1+want) {
			t.Errorf("PDF(%v): windowed %v vs brute %v", x, got, want)
		}
	}
}

func TestNewDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3, 2}
	if _, err := New(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[3] != 2 {
		t.Error("New mutated its input")
	}
}

// Property: density at any point is bounded by 1/(h*sqrt(2*pi)) (all mass
// in one kernel) for arbitrary samples.
func TestPDFUpperBound(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm()
		}
		k, err := New(xs)
		if err != nil {
			return true // zero-spread corner: rejected by construction
		}
		bound := 1/(k.Bandwidth()*math.Sqrt(2*math.Pi)) + 1e-9
		for i := 0; i < 20; i++ {
			if k.PDF(r.Normal(0, 2)) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPDF(b *testing.B) {
	k, err := New(gaussianSample(1, 2000, 0, 1))
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += k.PDF(float64(i%100)/25 - 2)
	}
	_ = sink
}

func BenchmarkNew2000(b *testing.B) {
	xs := gaussianSample(1, 2000, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(xs); err != nil {
			b.Fatal(err)
		}
	}
}
