package kde

import (
	"errors"
	"math"
)

// Grid is a precomputed log-density table over a KDE's support that
// answers PDF/LogPDF queries in O(1) by linear interpolation of the log
// density, instead of the exact KDE's O(log n + m) kernel sum per query.
// Interpolating in log space keeps the *relative* error bounded across
// the whole support — the tails of a Gaussian mixture are near-quadratic
// in log space — so grid densities track the exact KDE to ~1e-4 relative
// at the default resolution (32 nodes per bandwidth).
//
// The exact KDE is retained (Exact) as the reference implementation; the
// classifier training path uses Grid by default and the property tests
// bound the grid error against the exact densities.
type Grid struct {
	exact *KDE
	lo    float64 // first grid node == support lower edge
	hi    float64 // support upper edge (density is zero beyond)
	step  float64
	inv   float64 // 1/step
	logp  []float64
}

// nodesPerBandwidth sets the default grid resolution. Log-linear
// interpolation error scales with (step/h)²/8 ≈ 1.2e-4 at 32 nodes per
// bandwidth, comfortably inside the 1e-3 property-test bound.
const nodesPerBandwidth = 32

// maxGridNodes caps the table size for pathological samples whose range
// spans very many bandwidths; the step degrades gracefully there.
const maxGridNodes = 1 << 17

// Grid builds a log-density table at the default resolution.
func (k *KDE) Grid() *Grid {
	lo, hi := k.Support()
	points := int(math.Ceil((hi-lo)/k.bandwidth*nodesPerBandwidth)) + 1
	if points < 64 {
		points = 64
	}
	if points > maxGridNodes {
		points = maxGridNodes
	}
	g, err := NewGrid(k, points)
	if err != nil {
		// Unreachable: points >= 64 and the KDE is already validated.
		panic("kde: default grid construction failed: " + err.Error())
	}
	return g
}

// NewGrid builds a log-density table with an explicit node count >= 2.
func NewGrid(k *KDE, points int) (*Grid, error) {
	if k == nil {
		return nil, errors.New("kde: nil KDE")
	}
	if points < 2 {
		return nil, errors.New("kde: grid needs at least two nodes")
	}
	lo, hi := k.Support()
	step := (hi - lo) / float64(points-1)
	g := &Grid{exact: k, lo: lo, hi: hi, step: step, inv: 1 / step,
		logp: make([]float64, points)}
	g.build()
	return g, nil
}

// build evaluates the exact KDE on every node in O(n·w + points) for w
// nodes per kernel window, scattering each kernel over its covered nodes
// with a multiplicative recurrence (three exp calls per data point, two
// multiplies per node) instead of an exp per (node, kernel) pair:
//
//	t_j = exp(-½ z_j²),  z_{j+1} = z_j + δ  ⇒  t_{j+1} = t_j · r_j,
//	r_j = exp(-z_j δ - δ²/2),  r_{j+1} = r_j · exp(-δ²).
//
// The accumulated rounding over a kernel's ~2·cutoff/δ nodes is a few
// hundred ULPs (~1e-13 relative), far below the interpolation error.
func (g *Grid) build() {
	k := g.exact
	h := k.bandwidth
	delta := g.step / h
	q := math.Exp(-delta * delta)
	dens := make([]float64, len(g.logp))
	for _, xi := range k.data {
		jStart := int(math.Ceil((xi - cutoff*h - g.lo) * g.inv))
		if jStart < 0 {
			jStart = 0
		}
		jEnd := int(math.Floor((xi + cutoff*h - g.lo) * g.inv))
		if jEnd > len(dens)-1 {
			jEnd = len(dens) - 1
		}
		if jStart > jEnd {
			continue
		}
		z := (g.lo + float64(jStart)*g.step - xi) / h
		t := math.Exp(-0.5 * z * z)
		r := math.Exp(-z*delta - 0.5*delta*delta)
		for j := jStart; j <= jEnd; j++ {
			dens[j] += t
			t *= r
			r *= q
		}
	}
	for j, d := range dens {
		if d > 0 {
			g.logp[j] = math.Log(d * k.norm)
		} else {
			g.logp[j] = math.Inf(-1)
		}
	}
}

// Exact returns the underlying exact KDE (the reference density).
func (g *Grid) Exact() *KDE { return g.exact }

// Bandwidth returns the kernel bandwidth in data units.
func (g *Grid) Bandwidth() float64 { return g.exact.bandwidth }

// N returns the training sample size.
func (g *Grid) N() int { return g.exact.N() }

// Nodes returns the grid resolution.
func (g *Grid) Nodes() int { return len(g.logp) }

// Support returns the exact KDE's support.
func (g *Grid) Support() (lo, hi float64) { return g.exact.Support() }

// CDF delegates to the exact KDE; the distribution function is not on the
// classification hot path.
func (g *Grid) CDF(x float64) float64 { return g.exact.CDF(x) }

// locate resolves x to a cell index and intra-cell fraction; ok is false
// outside the support (where the density is numerically zero).
func (g *Grid) locate(x float64) (i int, frac float64, ok bool) {
	if !(x >= g.lo && x <= g.hi) { // NaN fails both comparisons
		return 0, 0, false
	}
	pos := (x - g.lo) * g.inv
	i = int(pos)
	if i > len(g.logp)-2 {
		i = len(g.logp) - 2
	}
	return i, pos - float64(i), true
}

// PDF returns the interpolated density at x. Cells bordering a density
// gap (a zero node inside the support, possible when the sample has
// clusters more than two cutoff widths apart) fall back to the exact KDE
// so the gap edges stay correct.
func (g *Grid) PDF(x float64) float64 {
	i, frac, ok := g.locate(x)
	if !ok {
		return 0
	}
	l0, l1 := g.logp[i], g.logp[i+1]
	if math.IsInf(l0, -1) || math.IsInf(l1, -1) {
		return g.exact.PDF(x)
	}
	return math.Exp(l0 + (l1-l0)*frac)
}

// LogPDF returns log(PDF(x)), -Inf where the density is numerically zero.
func (g *Grid) LogPDF(x float64) float64 {
	i, frac, ok := g.locate(x)
	if !ok {
		return math.Inf(-1)
	}
	l0, l1 := g.logp[i], g.logp[i+1]
	if math.IsInf(l0, -1) || math.IsInf(l1, -1) {
		return g.exact.LogPDF(x)
	}
	return l0 + (l1-l0)*frac
}

// PDFBatch evaluates the density at every xs[i] into out, which is grown
// if needed and returned; passing a reusable buffer makes batch scoring
// allocation-free.
func (g *Grid) PDFBatch(xs, out []float64) []float64 {
	out = sizeBatch(out, len(xs))
	for i, x := range xs {
		out[i] = g.PDF(x)
	}
	return out
}

// LogPDFBatch evaluates the log density at every xs[i] into out.
func (g *Grid) LogPDFBatch(xs, out []float64) []float64 {
	out = sizeBatch(out, len(xs))
	for i, x := range xs {
		out[i] = g.LogPDF(x)
	}
	return out
}

// sizeBatch returns out resized to n, reusing its capacity when possible.
func sizeBatch(out []float64, n int) []float64 {
	if cap(out) < n {
		return make([]float64, n)
	}
	return out[:n]
}

// PDFBatch is the exact KDE's batch evaluation — same semantics as PDF
// per element; the grid answers these queries in O(1) each instead.
func (k *KDE) PDFBatch(xs, out []float64) []float64 {
	out = sizeBatch(out, len(xs))
	for i, x := range xs {
		out[i] = k.PDF(x)
	}
	return out
}

// LogPDFBatch is the exact KDE's batch log-density evaluation.
func (k *KDE) LogPDFBatch(xs, out []float64) []float64 {
	out = sizeBatch(out, len(xs))
	for i, x := range xs {
		out[i] = k.LogPDF(x)
	}
	return out
}
