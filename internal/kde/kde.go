// Package kde implements the Gaussian kernel density estimator the
// adversary uses in the off-line training phase (paper §3.3 step 2):
// histograms are too coarse for estimating the PDF of a feature statistic,
// so the per-class feature distributions are estimated with Gaussian
// kernels and Silverman's rule-of-thumb bandwidth (Silverman 1986).
//
// Two evaluators share the fit: the exact estimator sums a kernel per
// training point per query, and Grid precomputes a log-density grid
// once (scatter-built with a multiplicative recurrence) for O(1)
// interpolated queries — the default for the classification hot path,
// property-tested against the exact form. Both are deterministic pure
// functions of the training sample, and a built Grid allocates nothing
// per query.
package kde

import (
	"errors"
	"math"
	"sort"

	"linkpad/internal/stats"
)

// KDE is a fitted Gaussian kernel density estimate over a 1-D sample.
type KDE struct {
	data      []float64 // sorted copy of the training sample
	bandwidth float64
	norm      float64 // 1 / (n * h * sqrt(2*pi))
}

// cutoff is the half-width, in bandwidths, beyond which a kernel's
// contribution is treated as zero. exp(-0.5 * 8.5^2) ~ 2e-16, i.e. below
// float64 resolution relative to the peak.
const cutoff = 8.5

// New fits a KDE to data using Silverman's rule-of-thumb bandwidth
//
//	h = 0.9 * min(sd, IQR/1.34) * n^{-1/5}
//
// The sample must contain at least two distinct values; a degenerate
// sample has no meaningful density scale.
func New(data []float64) (*KDE, error) {
	if len(data) < 2 {
		return nil, errors.New("kde: need at least two samples")
	}
	sd := stats.StdDev(data)
	q1, err := stats.Quantile(data, 0.25)
	if err != nil {
		return nil, err
	}
	q3, err := stats.Quantile(data, 0.75)
	if err != nil {
		return nil, err
	}
	spread := sd
	if iqr := (q3 - q1) / 1.34; iqr > 0 && iqr < spread {
		spread = iqr
	}
	if !(spread > 0) {
		return nil, errors.New("kde: sample has zero spread")
	}
	h := 0.9 * spread * math.Pow(float64(len(data)), -0.2)
	return NewWithBandwidth(data, h)
}

// NewWithBandwidth fits a KDE with an explicit bandwidth h > 0.
func NewWithBandwidth(data []float64, h float64) (*KDE, error) {
	if len(data) == 0 {
		return nil, errors.New("kde: empty sample")
	}
	if !(h > 0) || math.IsInf(h, 0) || math.IsNaN(h) {
		return nil, errors.New("kde: bandwidth must be positive and finite")
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	return &KDE{
		data:      sorted,
		bandwidth: h,
		norm:      1 / (float64(len(sorted)) * h * math.Sqrt(2*math.Pi)),
	}, nil
}

// Bandwidth returns the kernel bandwidth in data units.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// N returns the training sample size.
func (k *KDE) N() int { return len(k.data) }

// Support returns the interval outside which the density is numerically
// zero: [min - cutoff*h, max + cutoff*h].
func (k *KDE) Support() (lo, hi float64) {
	return k.data[0] - cutoff*k.bandwidth, k.data[len(k.data)-1] + cutoff*k.bandwidth
}

// PDF evaluates the density estimate at x. Only kernels within the
// numeric cutoff contribute, located via binary search on the sorted
// sample, so evaluation is O(log n + m) for m in-window points.
func (k *KDE) PDF(x float64) float64 {
	h := k.bandwidth
	lo := sort.SearchFloat64s(k.data, x-cutoff*h)
	hi := sort.SearchFloat64s(k.data, x+cutoff*h)
	var sum float64
	for _, xi := range k.data[lo:hi] {
		z := (x - xi) / h
		sum += math.Exp(-0.5 * z * z)
	}
	return sum * k.norm
}

// LogPDF returns log(PDF(x)), with -Inf where the density is numerically
// zero. Bayes classification compares log densities to avoid underflow
// when a feature value lies far outside one class's training range.
func (k *KDE) LogPDF(x float64) float64 {
	p := k.PDF(x)
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// CDF evaluates the distribution estimate P(X <= x): the average of
// per-kernel normal CDFs.
func (k *KDE) CDF(x float64) float64 {
	h := k.bandwidth
	var sum float64
	for _, xi := range k.data {
		sum += 0.5 * math.Erfc(-(x-xi)/(h*math.Sqrt2))
	}
	return sum / float64(len(k.data))
}
