package cascade

import (
	"errors"
	"fmt"
	"math"

	"linkpad/internal/adversary"
	"linkpad/internal/bayes"
	"linkpad/internal/par"
)

// End-to-end correlation (correlate.go): the adversary observes every
// route's entry and exit and must match each unlabeled exit flow back to
// its entry flow. Two signals are combined, as in the population
// flow-correlation attack:
//
//   - the throughput fingerprint: windowed packet-count vectors of the
//     entry and exit sides, matched by Pearson correlation
//     (adversary.RateVector / adversary.Pearson). It identifies the
//     individual flow whenever payload rate fluctuations survive the
//     whole route;
//   - the paper's PIAT class features at the exit
//     (adversary.MultiPipeline reduced to bayes class posteriors): even
//     when the route flattens the throughput fingerprint, residual
//     timing structure may still identify the flow's rate class,
//     shrinking the anonymity set to the class population. The entry
//     side is unpadded, so the adversary reads each flow's true class
//     off the ingress stream directly.
//
// Scores combine additively in log space, flows are assigned greedily
// (adversary.GreedyMatch), and the per-flow match posterior — softmax
// over a flow's score column — yields the degree of anonymity: the
// normalized entropy of the adversary's belief about which entry flow an
// exit flow belongs to (1 = uniform over all flows, 0 = identified).

// Config parameterizes the end-to-end correlation attack.
type Config struct {
	// Duration is the observation time in stream seconds (required).
	Duration float64
	// RateWindow is the throughput-fingerprint bin width in seconds
	// (0 = 1 s). The fingerprint has floor(Duration/RateWindow) bins.
	RateWindow float64
	// CorrWeight scales the rate-correlation term against the class
	// log-posterior term (0 = 8, matching the population attack).
	CorrWeight float64
	// FeatureWindow is the PIAT count reduced to one feature value per
	// flow (0 = 200); it must match the window the classifiers were
	// trained at.
	FeatureWindow int
	// Classifiers holds one per-feature class classifier (naive-Bayes
	// combined); may be empty for a pure rate-correlation attack.
	// Extractors must parallel it.
	Classifiers []*bayes.Classifier
	// Extractors are the feature extractors matching Classifiers.
	Extractors []adversary.Extractor
	// Workers bounds the per-flow simulation parallelism; results are
	// identical at any width. Zero means all CPUs.
	Workers int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.RateWindow == 0 {
		c.RateWindow = 1
	}
	if c.CorrWeight == 0 {
		c.CorrWeight = 8
	}
	if c.FeatureWindow == 0 {
		c.FeatureWindow = 200
	}
	return c
}

// Result reports one end-to-end correlation attack.
type Result struct {
	// Flows is the number of end-to-end flows (= exit flows to match).
	Flows int
	// Hops is the route length in padded hops.
	Hops int
	// Accuracy is the fraction of exit flows assigned to their true
	// entry flow by the greedy matching.
	Accuracy float64
	// ClassAccuracy is the fraction of flows whose rate class the exit
	// PIAT features identified (0 when no classifiers were supplied).
	ClassAccuracy float64
	// MeanRank averages the rank (1 = best) of the true entry flow in
	// each exit flow's score ordering.
	MeanRank float64
	// MeanCorrTrue averages the rate correlation of the true
	// (entry, exit) pairs: the raw strength of the throughput
	// fingerprint that survives the route.
	MeanCorrTrue float64
	// DegreeOfAnonymity averages the normalized entropy of the per-flow
	// match posterior (softmax over each exit flow's score column):
	// 1 means the adversary's belief is uniform over all entry flows,
	// 0 means the flow is identified.
	DegreeOfAnonymity float64
	// HopPPS is each hop's mean emitted packet rate per flow — the
	// per-link bandwidth of the route, entry hop first.
	HopPPS []float64
	// HopDummyFrac is each hop's dummy fraction (dummies/emitted).
	HopDummyFrac []float64
	// RoutePPS sums HopPPS: the route's total bandwidth cost per flow.
	// For unpadded (zero-hop) routes it is the exit stream's rate.
	RoutePPS float64
	// DummyFrac is the whole route's dummy fraction: dummies over
	// emitted packets, summed across hops and flows.
	DummyFrac float64
}

// routeObs is the reduced observation of one route.
type routeObs struct {
	class     int
	ingRate   []float64
	egRate    []float64
	logPost   []float64 // class log posteriors of the exit flow (clamped)
	hops      []HopStats
	exitCount int
}

// Correlate runs the attack end to end: simulate every route (in
// parallel, flows as the unit of parallelism), reduce each side to its
// throughput fingerprint and exit class posteriors, score every
// (entry, exit) pair, match greedily, and account the per-hop overhead.
// Exit flow f's true entry flow is flow f; the adversary's scores never
// read that identity, only the observations.
func Correlate(e *Engine, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if e == nil {
		return nil, errors.New("cascade: nil engine")
	}
	if !(cfg.Duration > 0) {
		return nil, errors.New("cascade: observation duration must be positive")
	}
	if len(cfg.Classifiers) != len(cfg.Extractors) {
		return nil, errors.New("cascade: classifiers and extractors must parallel each other")
	}
	if cfg.FeatureWindow < 2 {
		return nil, errors.New("cascade: feature window must be at least 2")
	}
	// Floor with an epsilon so a float-noisy integral ratio keeps its
	// last window instead of silently dropping the tail of both
	// fingerprints (same guard as the population attack).
	bins := int(cfg.Duration/cfg.RateWindow + 1e-9)
	if bins < 2 {
		return nil, errors.New("cascade: need at least two rate windows over the duration")
	}

	flows := e.Flows()
	obs := make([]routeObs, flows)
	workers := par.Workers(cfg.Workers)
	if workers > flows {
		workers = flows
	}
	pipes := make([]*adversary.MultiPipeline, workers)
	outs := make([][]float64, workers)
	exits := make([][]float64, workers) // reusable per-worker exit-time slabs
	piats := make([][]float64, workers)
	lps := make([][]float64, workers)
	for i := range pipes {
		if len(cfg.Extractors) > 0 {
			mp, err := adversary.NewMultiPipeline(cfg.Extractors)
			if err != nil {
				return nil, err
			}
			pipes[i] = mp
			outs[i] = make([]float64, len(cfg.Extractors))
		}
	}
	err := par.MapWorker(flows, workers, func(worker, f int) error {
		route, err := e.Route(f)
		if err != nil {
			return fmt.Errorf("cascade: route %d: %w", f, err)
		}
		if route.Entry == nil {
			return fmt.Errorf("cascade: route %d has no entry recorder", f)
		}
		// Pull the exit stream through the whole route into the worker's
		// reusable slab; the entry recorder fills as a side effect.
		buf := exits[worker][:0]
		for {
			t := route.Exit.Next()
			if t > cfg.Duration {
				break
			}
			buf = append(buf, t)
		}
		exits[worker] = buf
		// The route's observation is complete and this worker owns its
		// telemetry shard: publish the chain's counters (nil-safe).
		route.Probe.Flush()
		o := &obs[f]
		o.class = route.Class
		o.exitCount = len(buf)
		o.ingRate = make([]float64, bins)
		o.egRate = make([]float64, bins)
		if _, err := adversary.RateVector(route.Entry.Times(), 0, cfg.RateWindow, o.ingRate); err != nil {
			return err
		}
		if _, err := adversary.RateVector(buf, 0, cfg.RateWindow, o.egRate); err != nil {
			return err
		}
		o.hops = make([]HopStats, len(route.Hops))
		for h, probe := range route.Hops {
			o.hops[h] = probe()
		}
		if len(cfg.Classifiers) == 0 {
			return nil
		}
		// Reduce the exit flow's first FeatureWindow PIATs to one value
		// per feature, then to clamped class log posteriors.
		if len(buf) < cfg.FeatureWindow+1 {
			return fmt.Errorf("cascade: route %d has %d exit packets, need %d for the feature window",
				f, len(buf), cfg.FeatureWindow+1)
		}
		pb := piats[worker]
		if cap(pb) < cfg.FeatureWindow {
			pb = make([]float64, cfg.FeatureWindow)
		}
		pb = pb[:cfg.FeatureWindow]
		for i := range pb {
			pb[i] = buf[i+1] - buf[i]
		}
		piats[worker] = pb
		if err := pipes[worker].ExtractFrom(adversary.NewReplay(pb), cfg.FeatureWindow, outs[worker]); err != nil {
			return err
		}
		o.logPost = make([]float64, cfg.Classifiers[0].NumClasses())
		for fi, cls := range cfg.Classifiers {
			lp := cls.LogPosteriorsInto(outs[worker][fi], lps[worker])
			lps[worker] = lp
			adversary.AddClampedLogPosts(o.logPost, lp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Score every (entry, exit) pair: rate correlation plus the exit
	// flow's posterior for the entry flow's class.
	score := make([]float64, flows*flows)
	corrTrue := 0.0
	for f := 0; f < flows; f++ {
		for u := 0; u < flows; u++ {
			corr, err := adversary.Pearson(obs[u].ingRate, obs[f].egRate)
			if err != nil {
				return nil, err
			}
			v := cfg.CorrWeight * corr
			if obs[f].logPost != nil {
				v += obs[f].logPost[obs[u].class]
			}
			score[u*flows+f] = v
			if u == f {
				corrTrue += corr
			}
		}
	}
	assignedF, err := adversary.GreedyMatch(score, flows)
	if err != nil {
		return nil, err
	}

	res := &Result{Flows: flows, Hops: e.Hops(), MeanCorrTrue: corrTrue / float64(flows)}
	correct, classCorrect := 0, 0
	var rankSum, anonSum float64
	post := make([]float64, flows)
	for f := 0; f < flows; f++ {
		if assignedF[f] == f {
			correct++
		}
		rankSum += float64(adversary.TrueRank(score, flows, f))
		anonSum += columnAnonymity(score, flows, f, post)
		if obs[f].logPost != nil {
			best, bestV := 0, obs[f].logPost[0]
			for c := 1; c < len(obs[f].logPost); c++ {
				if obs[f].logPost[c] > bestV {
					best, bestV = c, obs[f].logPost[c]
				}
			}
			if best == obs[f].class {
				classCorrect++
			}
		}
	}
	res.Accuracy = float64(correct) / float64(flows)
	res.MeanRank = rankSum / float64(flows)
	res.DegreeOfAnonymity = anonSum / float64(flows)
	if len(cfg.Classifiers) > 0 {
		res.ClassAccuracy = float64(classCorrect) / float64(flows)
	}

	// Matched-overhead accounting, reduced in flow order: each hop's
	// emitted rate and dummy fraction, averaged over flows.
	hops := e.Hops()
	if hops > 0 {
		res.HopPPS = make([]float64, hops)
		res.HopDummyFrac = make([]float64, hops)
		var emittedAll, dummiesAll float64
		for h := 0; h < hops; h++ {
			var emitted, dummies float64
			for f := 0; f < flows; f++ {
				if len(obs[f].hops) != hops {
					return nil, fmt.Errorf("cascade: route %d reports %d hops, engine has %d",
						f, len(obs[f].hops), hops)
				}
				emitted += float64(obs[f].hops[h].Emitted)
				dummies += float64(obs[f].hops[h].Dummies)
			}
			res.HopPPS[h] = emitted / (float64(flows) * cfg.Duration)
			if emitted > 0 {
				res.HopDummyFrac[h] = dummies / emitted
			}
			res.RoutePPS += res.HopPPS[h]
			emittedAll += emitted
			dummiesAll += dummies
		}
		if emittedAll > 0 {
			res.DummyFrac = dummiesAll / emittedAll
		}
	} else {
		// An unpadded route's wire rate is the exit stream itself.
		var exitAll float64
		for f := range obs {
			exitAll += float64(obs[f].exitCount)
		}
		res.RoutePPS = exitAll / (float64(flows) * cfg.Duration)
	}
	return res, nil
}

// columnAnonymity returns the normalized entropy of the softmax over
// exit flow f's score column — the degree of anonymity of that flow's
// match posterior. tmp must have length n.
func columnAnonymity(score []float64, n, f int, tmp []float64) float64 {
	max := math.Inf(-1)
	for u := 0; u < n; u++ {
		if s := score[u*n+f]; s > max {
			max = s
		}
	}
	var sum float64
	for u := 0; u < n; u++ {
		tmp[u] = math.Exp(score[u*n+f] - max)
		sum += tmp[u]
	}
	var h float64
	for u := 0; u < n; u++ {
		p := tmp[u] / sum
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(n))
}
