package cascade

import (
	"sort"
	"testing"

	"linkpad/internal/adversary"
	"linkpad/internal/netem"
	"linkpad/internal/xrand"
)

// TestRecorderUnderImpairedTap drives an entry Recorder through an
// impaired capture (duplication + reordering, no loss) and checks the
// rate-vector reduction the correlation attack performs: the recorded
// sequence is genuinely out of order, yet binning recovers exactly the
// clean counts plus the duplicates — the reduction is insensitive to
// capture order, so only loss (not mis-sequencing) degrades the attack.
func TestRecorderUnderImpairedTap(t *testing.T) {
	im := &netem.Impairment{DupProb: 0.1, ReorderProb: 0.2, ReorderDepth: 4}
	var rec Recorder
	record, err := im.WrapRecord(rec.Record, xrand.New(55))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(56)
	const n = 20000
	clean := make([]float64, n)
	now := 0.0
	for i := range clean {
		now += rng.Exp(0.005)
		clean[i] = now
		record(clean[i])
	}
	got := rec.Times()
	if sort.Float64sAreSorted(got) {
		t.Fatal("impaired tap should record out of order")
	}
	if len(got) <= n {
		t.Fatalf("duplication should inflate the capture: %d <= %d", len(got), n)
	}

	// Per-observation accounting: each clean time appears once or twice
	// (dup), except the <= depth held at stream end.
	count := make(map[float64]int, n)
	for _, x := range got {
		count[x]++
	}
	dups, missing := 0, 0
	for _, x := range clean {
		switch count[x] {
		case 0:
			missing++
		case 1:
		case 2:
			dups++
		default:
			t.Fatalf("observation %v recorded %d times", x, count[x])
		}
	}
	if missing > im.ReorderDepth {
		t.Fatalf("%d observations missing, at most ReorderDepth=%d may be held at stream end",
			missing, im.ReorderDepth)
	}
	if dups == 0 {
		t.Fatal("no duplicates recorded at DupProb 0.1")
	}

	// The rate vector of the mis-ordered capture equals the vector of the
	// same multiset sorted: the reduction sees through the reordering.
	width := now / 50
	vecGot := make([]float64, 50)
	if _, err := adversary.RateVector(got, 0, width, vecGot); err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), got...)
	sort.Float64s(sorted)
	vecSorted := make([]float64, 50)
	if _, err := adversary.RateVector(sorted, 0, width, vecSorted); err != nil {
		t.Fatal(err)
	}
	for i := range vecGot {
		if vecGot[i] != vecSorted[i] {
			t.Fatalf("bin %d differs between mis-ordered and sorted capture", i)
		}
	}
}
