package cascade

import (
	"math"
	"strings"
	"testing"

	"linkpad/internal/netem"
)

// patternTimes emits a per-second event schedule over [0, bins): bin b
// carries count(b) events evenly spaced, plus a sentinel past the end so
// the exit pull loop terminates.
func patternTimes(bins int, count func(b int) int) []float64 {
	var ts []float64
	for b := 0; b < bins; b++ {
		c := count(b)
		for k := 0; k < c; k++ {
			ts = append(ts, float64(b)+(float64(k)+0.5)/float64(c))
		}
	}
	return append(ts, float64(bins)+1)
}

// syntheticEngine wires identity routes: flow f's entry and exit replay
// the same schedule, produced by times(f).
func syntheticEngine(t *testing.T, flows, hops int, times func(f int) []float64, probes func(f int) []HopProbe) *Engine {
	t.Helper()
	e, err := NewEngine(flows, hops, func(f int) (*Route, error) {
		ts := times(f)
		rec := &Recorder{}
		for _, x := range ts[:len(ts)-1] {
			rec.Record(x)
		}
		var ps []HopProbe
		if probes != nil {
			ps = probes(f)
		}
		return NewRoute(0, netem.NewSliceStream(ts), rec, ps)
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Identity routes with flow-unique rate patterns: the throughput
// fingerprint alone matches every flow, ranks the true flow first, and
// leaves essentially no anonymity.
func TestCorrelateIdentityRoutes(t *testing.T) {
	const flows, bins = 6, 12
	e := syntheticEngine(t, flows, 0, func(f int) []float64 {
		return patternTimes(bins, func(b int) int { return 3 + (b+2*f)%7 })
	}, nil)
	res, err := Correlate(e, Config{Duration: bins})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 || res.MeanRank != 1 {
		t.Errorf("identity routes should match perfectly: %+v", res)
	}
	if res.MeanCorrTrue < 0.999 {
		t.Errorf("true-pair correlation %v, want ~1", res.MeanCorrTrue)
	}
	if res.DegreeOfAnonymity > 0.2 {
		t.Errorf("anonymity %v, want ~0", res.DegreeOfAnonymity)
	}
	if res.Hops != 0 || len(res.HopPPS) != 0 {
		t.Errorf("zero-hop route reported hops: %+v", res)
	}
	// Zero-hop RoutePPS is the exit stream's own rate.
	var want float64
	for b := 0; b < bins; b++ {
		want += float64(3 + b%7)
	}
	want /= bins
	if math.Abs(res.RoutePPS-want) > 0.5 {
		t.Errorf("raw route pps %v, want ~%v", res.RoutePPS, want)
	}
}

// Flat routes carry no fingerprint: every score ties, the match
// posterior is uniform, and the degree of anonymity is 1.
func TestCorrelateFlatRoutes(t *testing.T) {
	const flows, bins = 6, 10
	e := syntheticEngine(t, flows, 0, func(f int) []float64 {
		return patternTimes(bins, func(int) int { return 5 })
	}, nil)
	res, err := Correlate(e, Config{Duration: bins})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCorrTrue != 0 {
		t.Errorf("degenerate fingerprints should correlate at 0, got %v", res.MeanCorrTrue)
	}
	if res.DegreeOfAnonymity < 0.999 {
		t.Errorf("anonymity %v, want 1 (uniform posterior)", res.DegreeOfAnonymity)
	}
}

// The per-hop overhead accounting aggregates the probes in flow order.
func TestCorrelateHopAccounting(t *testing.T) {
	const flows, bins = 4, 10
	mk := func(policy string, emitted, dummies uint64) HopProbe {
		return func() HopStats { return HopStats{Policy: policy, Emitted: emitted, Dummies: dummies} }
	}
	e := syntheticEngine(t, flows, 2, func(f int) []float64 {
		return patternTimes(bins, func(b int) int { return 3 + (b+f)%5 })
	}, func(f int) []HopProbe {
		return []HopProbe{mk("CIT", 1000, 750), mk("MIX", 1000, 0)}
	})
	res, err := Correlate(e, Config{Duration: bins})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HopPPS) != 2 || res.HopPPS[0] != 100 || res.HopPPS[1] != 100 {
		t.Errorf("hop pps = %v, want [100 100]", res.HopPPS)
	}
	if res.HopDummyFrac[0] != 0.75 || res.HopDummyFrac[1] != 0 {
		t.Errorf("hop dummy frac = %v, want [0.75 0]", res.HopDummyFrac)
	}
	if res.RoutePPS != 200 || res.DummyFrac != 0.375 {
		t.Errorf("route pps %v dummy %v, want 200 / 0.375", res.RoutePPS, res.DummyFrac)
	}

	// A route reporting the wrong hop count is a wiring bug, not data.
	bad := syntheticEngine(t, flows, 2, func(f int) []float64 {
		return patternTimes(bins, func(b int) int { return 3 + (b+f)%5 })
	}, func(f int) []HopProbe {
		return []HopProbe{mk("CIT", 1000, 750)}
	})
	if _, err := Correlate(bad, Config{Duration: bins}); err == nil || !strings.Contains(err.Error(), "hops") {
		t.Errorf("hop-count mismatch not rejected: %v", err)
	}
}

func TestCorrelateValidation(t *testing.T) {
	e := syntheticEngine(t, 2, 0, func(f int) []float64 {
		return patternTimes(4, func(int) int { return 3 })
	}, nil)
	if _, err := Correlate(nil, Config{Duration: 10}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := Correlate(e, Config{}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Correlate(e, Config{Duration: 4, RateWindow: 4}); err == nil {
		t.Error("single rate window accepted")
	}
	if _, err := Correlate(e, Config{Duration: 4, FeatureWindow: 1}); err == nil {
		t.Error("tiny feature window accepted")
	}
	// Routes without an entry recorder cannot be correlated.
	blind, err := NewEngine(2, 0, func(f int) (*Route, error) {
		return NewRoute(0, netem.NewSliceStream(patternTimes(4, func(int) int { return 3 })), nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Correlate(blind, Config{Duration: 4}); err == nil {
		t.Error("entry-less route accepted")
	}
}

func TestColumnAnonymity(t *testing.T) {
	// Peaked column: one score dominates.
	n := 4
	score := make([]float64, n*n)
	for u := 0; u < n; u++ {
		score[u*n+1] = -50
	}
	score[2*n+1] = 0
	tmp := make([]float64, n)
	if a := columnAnonymity(score, n, 1, tmp); a > 1e-9 {
		t.Errorf("peaked column anonymity %v, want ~0", a)
	}
	// Flat column: uniform posterior.
	for u := 0; u < n; u++ {
		score[u*n+3] = 1.5
	}
	if a := columnAnonymity(score, n, 3, tmp); math.Abs(a-1) > 1e-12 {
		t.Errorf("flat column anonymity %v, want 1", a)
	}
}
