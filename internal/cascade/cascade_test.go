package cascade

import (
	"math"
	"testing"

	"linkpad/internal/gateway"
	"linkpad/internal/netem"
	"linkpad/internal/xrand"
)

func TestStreamSource(t *testing.T) {
	up := netem.NewSliceStream([]float64{0.5, 1.25, 2.0, 2.1})
	src, err := NewStreamSource(up, 100)
	if err != nil {
		t.Fatal(err)
	}
	if src.Rate() != 100 {
		t.Errorf("rate = %v", src.Rate())
	}
	want := []float64{0.5, 0.75, 0.75, 0.1}
	var acc float64
	for i, w := range want {
		gap := src.Next()
		if math.Abs(gap-w) > 1e-12 {
			t.Errorf("gap %d = %v, want %v", i, gap, w)
		}
		acc += gap
	}
	// Accumulated gaps reproduce the upstream's absolute times, which is
	// what makes the downstream hop see arrivals at the true departures.
	if math.Abs(acc-2.1) > 1e-12 {
		t.Errorf("accumulated time %v, want 2.1", acc)
	}
	if _, err := NewStreamSource(nil, 1); err == nil {
		t.Error("nil upstream accepted")
	}
	if _, err := NewStreamSource(up, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestPhasedPolicy(t *testing.T) {
	cit, err := gateway.NewCIT(10e-3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPhasedPolicy(cit, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	first := p.NextInterval()
	if first < 10e-3 || first >= 20e-3 {
		t.Errorf("first interval %v outside [tau, 2tau)", first)
	}
	for i := 0; i < 5; i++ {
		if v := p.NextInterval(); v != 10e-3 {
			t.Errorf("later interval %v, want tau", v)
		}
	}
	// Statistics delegate; the bound covers the one-off phase.
	if p.Mean() != 10e-3 || p.IntervalVar() != 0 || p.Name() != "CIT" {
		t.Errorf("delegated stats wrong: mean %v var %v name %q", p.Mean(), p.IntervalVar(), p.Name())
	}
	if p.MaxInterval() < first {
		t.Errorf("MaxInterval %v below emitted first interval %v", p.MaxInterval(), first)
	}
	// Same seed, same phase: the policy is deterministic from its stream.
	q, err := NewPhasedPolicy(cit, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if q.NextInterval() != first {
		t.Error("phase not deterministic from the rng stream")
	}
	if _, err := NewPhasedPolicy(nil, xrand.New(1)); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewPhasedPolicy(cit, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Record(1)
	r.Record(2.5)
	if got := r.Times(); len(got) != 2 || got[1] != 2.5 {
		t.Fatalf("times = %v", got)
	}
	r.Reset()
	if len(r.Times()) != 0 {
		t.Error("reset did not clear")
	}
	r.Record(3)
	if got := r.Times(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("times after reset = %v", got)
	}
}

func TestEngineValidation(t *testing.T) {
	build := func(int) (*Route, error) {
		return NewRoute(0, netem.NewSliceStream(nil), &Recorder{}, nil)
	}
	if _, err := NewEngine(1, 0, build); err == nil {
		t.Error("one flow accepted")
	}
	if _, err := NewEngine(4, -1, build); err == nil {
		t.Error("negative hops accepted")
	}
	if _, err := NewEngine(4, 2, nil); err == nil {
		t.Error("nil builder accepted")
	}
	e, err := NewEngine(4, 2, build)
	if err != nil {
		t.Fatal(err)
	}
	if e.Flows() != 4 || e.Hops() != 2 {
		t.Errorf("engine dims %d/%d", e.Flows(), e.Hops())
	}
	if _, err := e.Route(-1); err == nil {
		t.Error("negative flow accepted")
	}
	if _, err := e.Route(4); err == nil {
		t.Error("out-of-range flow accepted")
	}
	if _, err := NewRoute(-1, netem.NewSliceStream(nil), nil, nil); err == nil {
		t.Error("negative class accepted")
	}
	if _, err := NewRoute(0, nil, nil, nil); err == nil {
		t.Error("nil exit accepted")
	}
}
