// Package cascade scales the study from one padded link to a route: a
// flow crosses K padded hops in sequence — every deployed anonymity
// system (cascade mixes, onion-routing circuits) chains several relays —
// and each hop re-pads the traffic with its own timer policy (CIT/VIT)
// or batching mix, its own host jitter, and its own outgoing link. A hop
// cannot distinguish upstream dummies from payload (the traffic is
// encrypted), so it forwards everything it receives: dummies injected at
// the entry propagate to the exit, and every hop's timer re-times the
// stream from scratch.
//
// The adversary is the strongest end-to-end observer studied against
// such routes (throughput fingerprinting, Mittal et al. 2011;
// long-lived-circuit correlation, Constantinides & Vassiliou 2026): it
// taps both the route's entry (the flow's unpadded arrivals into the
// first hop) and its exit (the padded stream leaving the last hop), and
// must match each unlabeled exit flow back to its entry flow. Correlate
// combines the two canonical signals — windowed rate-vector Pearson
// correlation along the path and the paper's PIAT class posteriors at
// the exit — and reports, besides matching accuracy, the degree of
// anonymity (normalized entropy of the adversary's per-flow match
// posterior) and the matched-overhead accounting (per-hop emitted rate
// and dummy fraction: the bandwidth price of every extra hop).
//
// The package follows the repository's determinism discipline: core
// derives every hop's randomness from (seed, class, flow, hopID) role
// streams in the cascade stream domain, so a route is a pure function of
// its flow identity and flows — the unit of parallelism — never share
// randomness. A route is a pull-driven pipeline: each packet flows
// through all hops on demand with no inter-hop buffering, and the
// correlator reuses per-worker observation slabs, so pulling packets
// through a warmed route allocates nothing in steady state
// (core.TestCascadeRouteAllocFree).
package cascade

import (
	"errors"

	"linkpad/internal/gateway"
	"linkpad/internal/netem"
	"linkpad/internal/obs"
	"linkpad/internal/xrand"
)

// HopStats is one hop's matched-overhead accounting after a run: how
// many packets the hop emitted onto its outgoing link and how many of
// them were dummies (always zero for batching mixes, which send no
// dummies — re-padding timer hops emit a dummy whenever their queue is
// empty at a fire).
type HopStats struct {
	// Policy names the hop's padding stage ("CIT", "VIT", "MIX").
	Policy string
	// Emitted is the number of packets the hop has emitted.
	Emitted uint64
	// Dummies is the number of emitted packets that were dummies.
	Dummies uint64
}

// HopProbe reads one hop's current HopStats; the route builder registers
// one per hop so the correlator can account overhead after observing the
// flow.
type HopProbe func() HopStats

// Recorder is the entry tap: the first hop's ArrivalTap appends every
// payload arrival time here as the route is pulled, giving the adversary
// its ingress observation. The backing slice is reused across Reset
// calls, so steady-state recording allocates nothing once the capacity
// has grown.
type Recorder struct {
	times []float64
}

// Record appends one arrival time.
func (r *Recorder) Record(t float64) { r.times = append(r.times, t) }

// Times returns the recorded arrival times (not a copy).
func (r *Recorder) Times() []float64 { return r.times }

// Reset forgets the recorded times, keeping the capacity.
func (r *Recorder) Reset() { r.times = r.times[:0] }

// StreamSource adapts an upstream hop's departure TimeStream to the
// traffic.Source contract the next hop's gateway consumes: Next returns
// the gap to the upstream's next departure, so the downstream hop sees
// arrivals at exactly the upstream's absolute departure times.
type StreamSource struct {
	src  netem.TimeStream
	last float64
	rate float64
}

// NewStreamSource wraps src; rate is the nominal long-run packet rate
// (1/τ for timer hops), reported by Rate for capacity accounting.
func NewStreamSource(src netem.TimeStream, rate float64) (*StreamSource, error) {
	if src == nil {
		return nil, errors.New("cascade: nil upstream stream")
	}
	if !(rate > 0) {
		return nil, errors.New("cascade: stream source rate must be positive")
	}
	return &StreamSource{src: src, rate: rate}, nil
}

// Next returns the inter-departure gap of the upstream stream.
func (s *StreamSource) Next() float64 {
	t := s.src.Next()
	gap := t - s.last
	s.last = t
	return gap
}

// Rate returns the nominal upstream packet rate.
func (s *StreamSource) Rate() float64 { return s.rate }

// phasedPolicy offsets a timer policy's first interval by a random
// phase, modeling unsynchronized per-hop clocks: real relays share no
// common timer grid, so consecutive hops' fire schedules hold an
// arbitrary (but per-route fixed) relative phase. Without this, every
// CIT hop's schedule would start at time zero and sit phase-locked on
// its upstream's grid boundary, where µs-scale jitter flips arrival
// counts — a synchronization artifact, not a property of the system.
type phasedPolicy struct {
	gateway.TimerPolicy
	offset float64
	done   bool
}

// NewPhasedPolicy wraps policy with an initial phase drawn uniformly
// from [0, policy.Mean()).
func NewPhasedPolicy(policy gateway.TimerPolicy, rng *xrand.Rand) (gateway.TimerPolicy, error) {
	if policy == nil {
		return nil, errors.New("cascade: nil timer policy")
	}
	if rng == nil {
		return nil, errors.New("cascade: nil rng")
	}
	return &phasedPolicy{TimerPolicy: policy, offset: rng.Float64() * policy.Mean()}, nil
}

// NextInterval returns the phase offset plus the first designed interval
// on the first call, then delegates.
func (p *phasedPolicy) NextInterval() float64 {
	if !p.done {
		p.done = true
		return p.offset + p.TimerPolicy.NextInterval()
	}
	return p.TimerPolicy.NextInterval()
}

// MaxInterval bounds emitted intervals including the one-off phase.
func (p *phasedPolicy) MaxInterval() float64 {
	return p.offset + p.TimerPolicy.MaxInterval()
}

// Route is one flow's multi-hop observation as the end-to-end adversary
// sees it: the exit stream (absolute departure times past the last hop's
// padding, link, and the exit tap imperfections), the entry recorder
// (populated with ingress arrival times as Exit is pulled), and one
// overhead probe per hop. Like the other observation protocols it is a
// stateful stream: one pass per route, build a fresh route per run; it
// is not safe for concurrent use.
type Route struct {
	// Class is the flow's ground-truth payload-rate class (readable by
	// the adversary from the unpadded entry side).
	Class int
	// Exit is the padded departure stream at the route's exit tap.
	Exit netem.TimeStream
	// Entry records ingress arrival times; nil for phantom training
	// routes, whose entry side the adversary does not observe.
	Entry *Recorder
	// Hops holds one overhead probe per hop, entry hop first.
	Hops []HopProbe
	// Probe is the route's telemetry shard (nil when collection is
	// disabled); the goroutine pulling Exit owns it and flushes it when
	// the route's observation finishes.
	Probe *obs.Shard
}

// NewRoute assembles a route observation.
func NewRoute(class int, exit netem.TimeStream, entry *Recorder, hops []HopProbe) (*Route, error) {
	if class < 0 {
		return nil, errors.New("cascade: negative class")
	}
	if exit == nil {
		return nil, errors.New("cascade: nil exit stream")
	}
	return &Route{Class: class, Exit: exit, Entry: entry, Hops: hops}, nil
}

// RouteBuilder produces flow f's route. Implementations must derive all
// randomness from the flow index so routes can be simulated in parallel
// deterministically (core provides one wired to the System description).
type RouteBuilder func(flow int) (*Route, error)

// Engine is a validated cascade description ready to run: the number of
// concurrent flows and the builder producing each flow's route.
type Engine struct {
	flows int
	hops  int
	build RouteBuilder
}

// NewEngine assembles an engine over `flows` end-to-end flows whose
// routes cross `hops` padded hops each (0 = unpadded passthrough, the
// no-countermeasure anchor).
func NewEngine(flows, hops int, build RouteBuilder) (*Engine, error) {
	if flows < 2 {
		return nil, errors.New("cascade: need at least two flows")
	}
	if hops < 0 {
		return nil, errors.New("cascade: negative hop count")
	}
	if build == nil {
		return nil, errors.New("cascade: nil route builder")
	}
	return &Engine{flows: flows, hops: hops, build: build}, nil
}

// Flows returns the number of end-to-end flows.
func (e *Engine) Flows() int { return e.flows }

// Hops returns the route length in padded hops.
func (e *Engine) Hops() int { return e.hops }

// Route builds flow f's route.
func (e *Engine) Route(f int) (*Route, error) {
	if f < 0 || f >= e.flows {
		return nil, errors.New("cascade: flow index out of range")
	}
	return e.build(f)
}
