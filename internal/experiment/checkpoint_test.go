package experiment

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"linkpad/internal/xrand"
)

// fakeCells is a cheap synthetic cell experiment for exercising the
// checkpoint machinery without simulator cost. It is run through
// runCells directly, never registered, so the registry stays fixed.
var fakeCells = &cellExperiment{
	title:   "synthetic checkpoint probe",
	columns: []string{"cell", "value"},
	ncells:  func(Options) int { return 9 },
	run: func(o Options, cell, nested int) ([]float64, error) {
		rng := xrand.New(o.Seed + uint64(cell)*1009)
		return []float64{float64(cell), rng.Float64()}, nil
	},
	notes: func(o Options, t *Table) { t.Notef("seed %d", o.Seed) },
}

func tableBytes(t *testing.T, tbl *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointable(t *testing.T) {
	for _, id := range []string{"ext-disclosure", "ext-impairments", "ablation-churn"} {
		if !Checkpointable(id) {
			t.Errorf("%s should be checkpointable", id)
		}
	}
	if Checkpointable("fig4b") {
		t.Error("fig4b is not a cell experiment")
	}
	if _, err := RunCheckpointed("fig4b", fastOpts, "x.json", 0); err == nil {
		t.Error("RunCheckpointed should reject a non-cell experiment")
	}
	if _, err := RunCheckpointed("ext-disclosure", fastOpts, "", 0); err == nil {
		t.Error("RunCheckpointed should reject an empty path")
	}
}

// TestRunCellsKillAndResume: kill the synthetic sweep at several budgets,
// resume each time, and demand the finished table be byte-identical to
// an uninterrupted run — including across a worker-width change.
func TestRunCellsKillAndResume(t *testing.T) {
	o := Options{Scale: 1, Seed: 11, Workers: 1}
	plain, err := runCells("fake", fakeCells, o, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := tableBytes(t, plain)
	for _, killAfter := range []int{1, 4, 8} {
		path := filepath.Join(t.TempDir(), "cp.json")
		_, err := runCells("fake", fakeCells, o, path, killAfter)
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("killAfter %d: want ErrKilled, got %v", killAfter, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("no checkpoint persisted before the kill: %v", err)
		}
		cp, err := ParseCheckpoint(data)
		if err != nil {
			t.Fatalf("persisted checkpoint does not parse: %v", err)
		}
		done := 0
		for _, d := range cp.Done {
			if d {
				done++
			}
		}
		if done < killAfter {
			t.Fatalf("checkpoint records %d done cells, killed after %d", done, killAfter)
		}
		// Resume at a different worker width; results must not care.
		wide := o
		wide.Workers = 3
		tbl, err := runCells("fake", fakeCells, wide, path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tableBytes(t, tbl), want) {
			t.Fatalf("killAfter %d: resumed table differs from uninterrupted run", killAfter)
		}
	}
	// A double kill composes: kill at 2, resume and kill at 3 more, then
	// finish.
	path := filepath.Join(t.TempDir(), "cp.json")
	if _, err := runCells("fake", fakeCells, o, path, 2); !errors.Is(err, ErrKilled) {
		t.Fatalf("first kill: %v", err)
	}
	if _, err := runCells("fake", fakeCells, o, path, 3); !errors.Is(err, ErrKilled) {
		t.Fatalf("second kill: %v", err)
	}
	tbl, err := runCells("fake", fakeCells, o, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tableBytes(t, tbl), want) {
		t.Fatal("twice-killed table differs from uninterrupted run")
	}
	// A completed checkpoint short-circuits: running again recomputes
	// nothing and still yields the same bytes.
	again, err := runCells("fake", fakeCells, o, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tableBytes(t, again), want) {
		t.Fatal("re-running a completed checkpoint changed the table")
	}
}

func TestRunCellsRejectsForeignCheckpoint(t *testing.T) {
	o := Options{Scale: 1, Seed: 11, Workers: 1}
	path := filepath.Join(t.TempDir(), "cp.json")
	if _, err := runCells("fake", fakeCells, o, path, 2); !errors.Is(err, ErrKilled) {
		t.Fatal(err)
	}
	other := o
	other.Seed = 12
	if _, err := runCells("fake", fakeCells, other, path, 0); err == nil {
		t.Error("checkpoint resumed under a different seed")
	}
	other = o
	other.Scale = 2
	if _, err := runCells("fake", fakeCells, other, path, 0); err == nil {
		t.Error("checkpoint resumed under a different scale")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCells("fake", fakeCells, o, path, 0); err == nil {
		t.Error("corrupt checkpoint resumed")
	}
}

func TestParseCheckpoint(t *testing.T) {
	good := &Checkpoint{
		Experiment: "fake",
		Seed:       3,
		Scale:      0.5,
		Cells:      2,
		Done:       []bool{true, false},
		Rows:       [][]float64{{1, 2}, nil},
	}
	data, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, good) {
		t.Fatalf("round trip changed the checkpoint: %+v", parsed)
	}
	bad := []string{
		`{"experiment":"x","seed":1,"scale":1,"cells":1,"done":[true],"rows":[[1]],"extra":0}`, // unknown field
		`{"experiment":"x","seed":1,"scale":1,"cells":1,"done":[true],"rows":[[1]]} tail`,      // trailing data
		`{"experiment":"","seed":1,"scale":1,"cells":1,"done":[true],"rows":[[1]]}`,            // no experiment
		`{"experiment":"x","seed":0,"scale":1,"cells":1,"done":[true],"rows":[[1]]}`,           // zero seed
		`{"experiment":"x","seed":1,"scale":0,"cells":1,"done":[true],"rows":[[1]]}`,           // zero scale
		`{"experiment":"x","seed":1,"scale":1,"cells":0,"done":[],"rows":[]}`,                  // no cells
		`{"experiment":"x","seed":1,"scale":1,"cells":2097152,"done":[],"rows":[]}`,            // absurd cells
		`{"experiment":"x","seed":1,"scale":1,"cells":2,"done":[true],"rows":[[1]]}`,           // shape mismatch
		`{"experiment":"x","seed":1,"scale":1,"cells":1,"done":[true],"rows":[[]]}`,            // done without row
		`{"experiment":"x","seed":1,"scale":1,"cells":1,"done":[false],"rows":[[1]]}`,          // row without done
		`[1,2]`,
		``,
	}
	for _, s := range bad {
		if _, err := ParseCheckpoint([]byte(s)); err == nil {
			t.Errorf("ParseCheckpoint(%q) should fail", s)
		}
	}
}

// FuzzParseCheckpoint: arbitrary bytes must parse or error cleanly; a
// successful parse must validate and survive a re-encode round trip.
func FuzzParseCheckpoint(f *testing.F) {
	f.Add([]byte(`{"experiment":"fake","seed":3,"scale":0.5,"cells":2,"done":[true,false],"rows":[[1,2],null]}`))
	f.Add([]byte(`{"experiment":"ext-disclosure","seed":1,"scale":1,"cells":1,"done":[true],"rows":[[0.5]]}`))
	f.Add([]byte(`{"experiment":"x","seed":1,"scale":1e-300,"cells":1,"done":[false],"rows":[null]}`))
	f.Add([]byte(`{"experiment":"x","seed":18446744073709551615,"cells":1}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := ParseCheckpoint(data)
		if err != nil {
			return
		}
		if err := cp.Validate(); err != nil {
			t.Fatalf("parsed checkpoint fails validation: %v", err)
		}
		data2, err := json.Marshal(cp)
		if err != nil {
			t.Fatalf("re-encoding a parsed checkpoint failed: %v", err)
		}
		again, err := ParseCheckpoint(data2)
		if err != nil {
			t.Fatalf("re-parsing an encoded checkpoint failed: %v", err)
		}
		if again.Experiment != cp.Experiment || again.Seed != cp.Seed ||
			again.Scale != cp.Scale || again.Cells != cp.Cells {
			t.Fatal("round trip changed the checkpoint identity")
		}
	})
}

// faultOpts runs the fault runners at the golden gate's cheap settings.
var faultOpts = Options{Scale: 0.05, Seed: 3}

func TestExtImpairmentsShape(t *testing.T) {
	tbl, err := Run("ext-impairments", faultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 18 {
		t.Fatalf("got %d rows, want 18 (3 protocols x 6 scenarios)", len(tbl.Rows))
	}
	acc := col(tbl, "accuracy")
	anon := col(tbl, "anonymity")
	loss := col(tbl, "tap_loss")
	for i := range acc {
		if acc[i] < 0 || acc[i] > 1 {
			t.Errorf("row %d: accuracy %v out of [0,1]", i, acc[i])
		}
		if anon[i] < 0 || anon[i] > 1 {
			t.Errorf("row %d: anonymity %v out of [0,1]", i, anon[i])
		}
		if loss[i] < 0 || loss[i] >= 1 {
			t.Errorf("row %d: tap loss %v out of range", i, loss[i])
		}
	}
	// Scenario 0 of each protocol is the clean anchor: zero tap loss.
	for p := 0; p < 3; p++ {
		if loss[p*6] != 0 {
			t.Errorf("protocol %d clean scenario reports tap loss %v", p, loss[p*6])
		}
	}
}

func TestAblationChurnShape(t *testing.T) {
	tbl, err := Run("ablation-churn", faultOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("got %d rows, want 8 (4 fractions x 2 estimators)", len(tbl.Rows))
	}
	frac := col(tbl, "online_frac")
	aware := col(tbl, "churn_aware")
	disclosed := col(tbl, "disclosed_frac")
	rounds := col(tbl, "mean_rounds")
	for i := range frac {
		if disclosed[i] < 0 || disclosed[i] > 1 {
			t.Errorf("row %d: disclosed fraction %v out of [0,1]", i, disclosed[i])
		}
		if rounds[i] <= 0 {
			t.Errorf("row %d: non-positive mean rounds %v", i, rounds[i])
		}
	}
	// The static rows (online fraction 1) must be estimator-invariant:
	// with no churn there is nothing to mask, so naive and churn-aware
	// are the same estimator.
	var static [][]float64
	for i, f := range frac {
		if f == 1 {
			static = append(static, tbl.Rows[i])
		}
	}
	if len(static) != 2 {
		t.Fatalf("want 2 static rows, got %d", len(static))
	}
	for j := range static[0] {
		if j == 1 {
			continue // the churn_aware code itself differs
		}
		if static[0][j] != static[1][j] {
			t.Errorf("static rows differ in column %d: %v != %v (aware %v/%v)",
				j, static[0][j], static[1][j], aware[0], aware[1])
		}
	}
}
