package experiment

import (
	"linkpad/internal/analytic"
	"linkpad/internal/core"
)

func init() {
	register("ext-cascade", ExtCascade)
	register("ablation-hop-policies", AblationHopPolicies)
}

// cascadeDuration resolves the per-flow observation budget in stream
// seconds, floored so every flow still yields the feature window and a
// meaningful throughput fingerprint at -short scales.
func cascadeDuration(o Options) float64 {
	d := 60 * o.Scale
	if d < 30 {
		d = 30
	}
	return d
}

// cascadeFeatures are the exit-side class features of the end-to-end
// attack: the paper's two strongest statistics.
var cascadeFeatures = []analytic.Feature{analytic.FeatureVariance, analytic.FeatureEntropy}

// ExtCascade measures the end-to-end correlation attack against routes
// of increasing length: 16 flows cross K re-padding CIT hops (K = 0 is
// the unpadded anchor) and the adversary taps every route's entry and
// exit, matching exit flows to entry flows by throughput-fingerprint
// correlation plus exit PIAT class posteriors. One timer hop erases the
// throughput fingerprint and leaves only the class leak (the anonymity
// set collapses to the rate class); the second hop erases the class leak
// too — its blocking channel sees the upstream's constant 1/τ rate, not
// the payload rate — and the degree of anonymity climbs toward 1. The
// overhead columns price this in bandwidth: every hop adds a full 1/τ
// padded link, while dummies injected at the entry propagate (only the
// entry hop manufactures dummies; inner hops re-time and forward).
func ExtCascade(o Options) (*Table, error) {
	o = o.withDefaults()
	sys, err := core.NewSystem(labConfig(o))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-cascade",
		Title: "End-to-end correlation vs hop count: 16 flows across K re-padding CIT hops",
		Columns: []string{"hops", "flow_acc", "class_acc", "mean_rank",
			"anonymity", "mean_corr_true", "route_pps", "dummy_frac"},
	}
	hopCounts := []int{0, 1, 2, 3}
	duration := cascadeDuration(o)
	rows := make([][]float64, len(hopCounts))
	err = parMap(len(hopCounts), o.workers(), func(i int) error {
		res, err := runCascadeCorrelation(sys, core.CascadeSpec{
			Hops:  make([]core.CascadeHop, hopCounts[i]),
			Flows: 16,
		}, core.CascadeCorrConfig{
			Duration:     duration,
			Features:     cascadeFeatures,
			TrainWindows: o.windows(120),
			Workers:      o.nestedWorkers(len(hopCounts)),
		})
		if err != nil {
			return err
		}
		rows[i] = []float64{float64(hopCounts[i]), res.Accuracy, res.ClassAccuracy,
			res.MeanRank, res.DegreeOfAnonymity, res.MeanCorrTrue,
			res.RoutePPS, res.DummyFrac}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("16 flows (8 per class), %.0f s per flow, rate window 1 s; hops=0 is the unpadded anchor", duration)
	t.Notef("exit class features variance+entropy at window 200, %d training windows/class on phantom routes", o.windows(120))
	t.Notef("matched overhead: every hop re-pads at 1/tau = 100 pps, so route_pps = 100·K per flow; dummy_frac counts dummies over all emitted packets (inner hops forward upstream dummies instead of minting their own)")
	t.Notef("anonymity: normalized entropy of the adversary's per-flow match posterior (1 = uniform over all 16 entry flows)")
	return t, nil
}

// AblationHopPolicies compares homogeneous against mixed per-hop
// policies on two-hop routes at equal bandwidth: every route whose entry
// hop is a timer emits 1/τ = 100 pps on both links (a mix hop forwards
// whatever it receives, so a mix behind a timer also carries 100 pps).
// Hop order is the finding: a batching mix *in front of* a timer hop
// re-introduces the class leak a timer entry hop would have flattened —
// the mix's K-packet bursts arrive at the downstream timer in clumps
// whose rate is the payload rate, and the compound blocking delay turns
// that into exit PIAT variance the paper's features read at 100% — while
// the same mix behind a timer hop sees a constant-rate stream and leaks
// nothing. The mix-entry route is also cheaper (it pads nothing), which
// is exactly the bandwidth-for-anonymity trade the cascade prices.
func AblationHopPolicies(o Options) (*Table, error) {
	o = o.withDefaults()
	vit := core.CascadeHop{Policy: core.CascadeVIT, SigmaT: 30e-6}
	mix := core.CascadeHop{Policy: core.CascadeMix}
	routes := []struct {
		code float64
		name string
		hops []core.CascadeHop
	}{
		{0, "CIT+CIT", []core.CascadeHop{{}, {}}},
		{1, "VIT+VIT", []core.CascadeHop{vit, vit}},
		{2, "CIT+VIT", []core.CascadeHop{{}, vit}},
		{3, "CIT+MIX8", []core.CascadeHop{{}, mix}},
		{4, "MIX8+CIT", []core.CascadeHop{mix, {}}},
	}
	t := &Table{
		ID:    "ablation-hop-policies",
		Title: "Two-hop routes: homogeneous vs mixed per-hop policies at equal bandwidth",
		Columns: []string{"route", "flow_acc", "class_acc", "anonymity",
			"route_pps", "dummy_frac"},
	}
	duration := cascadeDuration(o)
	sys, err := core.NewSystem(labConfig(o))
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, len(routes))
	err = parMap(len(routes), o.workers(), func(i int) error {
		res, err := runCascadeCorrelation(sys, core.CascadeSpec{
			Hops:  routes[i].hops,
			Flows: 16,
		}, core.CascadeCorrConfig{
			Duration:     duration,
			Features:     cascadeFeatures,
			TrainWindows: o.windows(120),
			Workers:      o.nestedWorkers(len(routes)),
		})
		if err != nil {
			return err
		}
		rows[i] = []float64{routes[i].code, res.Accuracy, res.ClassAccuracy,
			res.DegreeOfAnonymity, res.RoutePPS, res.DummyFrac}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	for _, r := range routes {
		t.Notef("route %d = %s", int(r.code), r.name)
	}
	t.Notef("16 flows, %.0f s per flow; exit class features variance+entropy at window 200, %d training windows/class", duration, o.windows(120))
	t.Notef("equal bandwidth: timer-entry routes carry 100 pps on both links; the MIX8 entry route pads nothing (route_pps shows the discount) and leaks the class for it")
	return t, nil
}
