package experiment

import (
	"runtime"
	"sync"
)

// defaultWorkers bounds sweep parallelism: experiment points are
// CPU-bound, so more workers than cores only adds scheduling noise.
func defaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// workers resolves the Options worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return defaultWorkers()
}

// parMap executes fn(i) for every i in [0, n) on up to `workers`
// goroutines and returns the first error encountered. Each point is
// responsible for writing its result into a pre-indexed slot, so results
// are identical regardless of the worker count — every experiment point
// derives its randomness from its own seed, never from execution order.
func parMap(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     int
		mu       sync.Mutex
		firstErr error
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
