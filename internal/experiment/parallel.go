package experiment

import "linkpad/internal/par"

// workers resolves the Options worker count: zero means every available
// CPU (GOMAXPROCS), with no artificial ceiling — sweep points are
// CPU-bound and scale with the hardware. Results are identical at any
// width; see par.Map.
func (o Options) workers() int {
	return par.Workers(o.Workers)
}

// nestedWorkers splits the worker budget between a sweep over `points`
// and the trial parallelism inside each point, so the total number of
// CPU-bound goroutines stays at the requested width instead of
// points × width. Short sweeps (fewer points than workers) get the
// surplus back as trial workers; wide sweeps run their points with one
// trial worker each. Purely a scheduling decision — results are
// identical either way.
func (o Options) nestedWorkers(points int) int {
	w := o.workers()
	outer := w
	if points < outer {
		outer = points
	}
	if outer <= 1 {
		return w
	}
	inner := w / outer
	if inner < 1 {
		inner = 1
	}
	return inner
}

// parMap executes fn(i) for every i in [0, n) on up to `workers`
// goroutines and returns the first error encountered. Each point is
// responsible for writing its result into a pre-indexed slot, so results
// are identical regardless of the worker count — every experiment point
// derives its randomness from its own seed, never from execution order.
func parMap(n, workers int, fn func(i int) error) error {
	return par.Map(n, workers, fn)
}
