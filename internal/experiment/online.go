package experiment

import (
	"linkpad/internal/analytic"
	"linkpad/internal/core"
)

func init() {
	register("ext-online", ExtOnline)
	register("ablation-windowing", AblationWindowing)
}

// ExtOnline measures the continuous-stream adversary end to end: anytime
// (SPRT-style) detection against the CIT lab system across window sizes.
// Where the batch protocol fixes the sample budget in advance, the online
// adversary taps one continuous padded stream, accumulates the
// log-posterior window by window, and stops at 99% confidence — so the
// natural security metric becomes *time to detection* in stream seconds,
// not detection rate at a fixed n. Small windows decide in more windows
// but less stream time: the sequential rule recovers the information the
// batch rule wastes by oversizing its single window.
func ExtOnline(o Options) (*Table, error) {
	o = o.withDefaults()
	sys, err := core.NewSystem(labConfig(o))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "ext-online",
		Title: "Anytime detection on one continuous stream vs window size, CIT lab, 99% confidence",
		Columns: []string{"n", "anytime_det", "decided_frac",
			"mean_windows_to_dec", "mean_seconds_to_dec"},
	}
	ns := []int{100, 200, 500, 1000}
	rows := make([][]float64, len(ns))
	err = parMap(len(ns), o.workers(), func(i int) error {
		res, err := runSessionAttack(sys, core.SessionAttackConfig{
			Feature:       analytic.FeatureEntropy,
			WindowSize:    ns[i],
			TrainSessions: 8,
			TrainWindows:  o.windows(120),
			EvalSessions:  o.windows(60),
			MaxWindows:    12,
			Confidence:    0.99,
			Workers:       o.nestedWorkers(len(ns)),
		})
		if err != nil {
			return err
		}
		// Per-window accuracy under an anytime stop is selection-biased
		// (easy sessions stop early); ablation-windowing reports the
		// unbiased full-budget number instead.
		rows[i] = []float64{float64(ns[i]), res.DetectionRate, res.DecidedRate,
			res.MeanWindowsToDecision, res.MeanTimeToDecision}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("%d training windows over 8 continuous sessions, %d eval sessions per class, budget 12 windows, warm-up 100 packets",
		o.windows(120), o.windows(60))
	t.Notef("the adversary stops at the decision: mean_seconds_to_dec is the stream time a CIT deployment buys before identification")
	return t, nil
}

// AblationWindowing quantifies the i.i.d.-replica protocol deviation that
// DESIGN.md's determinism model documents: the replica protocol rebuilds
// the system per window (every window starts at time zero in a fresh ON
// burst), where the session protocol slices consecutive windows from one
// continuous stream, as the paper's adversary does. For memoryless
// (Poisson) payload the two protocols must agree within Monte Carlo noise
// — the license for using the fast replica protocol in the figure sweeps
// — while bursty on-off payload shows the gap: replica windows always
// begin ON, session windows sample the stationary ON/OFF mix.
func AblationWindowing(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:    "ablation-windowing",
		Title: "i.i.d.-replica vs continuous-stream window protocol, CIT lab, entropy, n=1000",
		Columns: []string{"model", "replica_det", "stream_det",
			"anytime_det", "mean_windows_to_dec"},
	}
	const n = 1000
	const maxWindows = 6
	models := []core.PayloadModel{core.PayloadPoisson, core.PayloadCBR, core.PayloadOnOff}
	evalSessions := o.windows(40)
	trainWindows := o.windows(120)
	rows := make([][]float64, len(models))
	err := parMap(len(models), o.workers(), func(i int) error {
		cfg := labConfig(o)
		cfg.Payload = models[i]
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		workers := o.nestedWorkers(len(models))
		// Replica protocol: i.i.d. windows, matched sample budget.
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:     n,
			TrainWindows:   trainWindows,
			EvalWindows:    evalSessions * maxWindows,
			Workers:        workers,
			SkipEmpiricalR: true,
		}, []analytic.Feature{analytic.FeatureEntropy})
		if err != nil {
			return err
		}
		// Session protocol: consecutive windows of continuous streams,
		// trained once and evaluated under two run-time rules.
		// Confidence 1 disables the anytime stop, so stream_det averages
		// over the same number of windows as the replica run; the
		// anytime columns come from the confidence the online adversary
		// would actually use.
		att, err := sys.TrainSessionAttack(core.SessionAttackConfig{
			Feature:       analytic.FeatureEntropy,
			WindowSize:    n,
			TrainSessions: 8,
			TrainWindows:  trainWindows,
			Workers:       workers,
		})
		if err != nil {
			return err
		}
		stream, err := att.Evaluate(core.SessionAttackConfig{
			EvalSessions: evalSessions,
			MaxWindows:   maxWindows,
			Confidence:   1,
			Workers:      workers,
		})
		if err != nil {
			return err
		}
		anytime, err := att.Evaluate(core.SessionAttackConfig{
			EvalSessions: evalSessions,
			MaxWindows:   maxWindows,
			Confidence:   0.99,
			Workers:      workers,
		})
		if err != nil {
			return err
		}
		rows[i] = []float64{float64(models[i]), set[0].DetectionRate,
			stream.WindowDetectionRate, anytime.DetectionRate,
			anytime.MeanWindowsToDecision}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("model codes: 0=poisson 1=cbr 2=onoff")
	t.Notef("replica_det and stream_det classify single windows on matched budgets (%d windows per class); anytime_det accumulates evidence at 99%% confidence",
		evalSessions*maxWindows)
	return t, nil
}
