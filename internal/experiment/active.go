package experiment

import (
	"linkpad/internal/active"
	"linkpad/internal/core"
)

func init() {
	register("ext-active", ExtActive)
	register("ablation-watermark-defenses", AblationWatermarkDefenses)
}

// activeDuration resolves the matched-filter observation budget in
// stream seconds, floored so the filter keeps enough whole chip slots
// (90 at the 0.5 s default period) for a meaningful z calibration at
// -short scales.
func activeDuration(o Options) float64 {
	d := 60 * o.Scale
	if d < 45 {
		d = 45
	}
	return d
}

// ExtActive measures the active watermark attack against each padding
// policy at matched overhead: the adversary injects keyed chaff probes
// (a ±1 chip schedule gating an extra Poisson stream) into every flow's
// payload before the countermeasure and runs the matched-filter
// detector at the exit tap, sweeping the in-slot chaff rate. The
// policies tier cleanly: the unpadded link forwards the rate pattern
// itself (count channel); a CIT timer flattens the wire rate but leaks
// through the compound blocking jitter — marked slots carry measurably
// noisier PIATs — and a little VIT σ_T drowns exactly that channel; a
// deep batching mix at the same bandwidth (cover up to 1/τ) blurs the
// chaff behind batch-release noise; and a second re-padding hop
// destroys the watermark outright, because the inner hop's timer only
// ever sees the entry hop's constant 1/τ. Detection falls monotonically
// from unpadded through CIT/VIT and the mix to the two-hop cascade at
// every amplitude.
func ExtActive(o Options) (*Table, error) {
	o = o.withDefaults()
	type policy struct {
		code float64
		name string
		mut  func(*core.Config)
		spec core.ActiveSpec
	}
	policies := []policy{
		{0, "NONE", func(*core.Config) {},
			core.ActiveSpec{Protocol: core.ActiveReplica, Raw: true}},
		{1, "CIT", func(*core.Config) {},
			core.ActiveSpec{Protocol: core.ActiveReplica}},
		{2, "VIT-5us", func(c *core.Config) { c.SigmaT = 5e-6 },
			core.ActiveSpec{Protocol: core.ActiveReplica}},
		{3, "MIX-64", func(c *core.Config) { c.Mix = &core.MixSpec{K: 64} },
			core.ActiveSpec{Protocol: core.ActivePopulation, CoverToPPS: 100}},
		{4, "CASC-2xCIT", func(*core.Config) {},
			core.ActiveSpec{Protocol: core.ActiveCascade,
				Hops: []core.CascadeHop{{}, {}}}},
	}
	amps := []float64{10, 20, 40}
	t := &Table{
		ID:    "ext-active",
		Title: "Active chaff watermark vs padding policy at matched overhead: detection rate by in-slot chaff rate",
		Columns: []string{"policy", "amp_pps", "det_rate", "mean_z", "match_acc",
			"anonymity", "class_acc", "injected_pps", "route_pps"},
	}
	duration := activeDuration(o)
	type cellKey struct{ pi, ai int }
	cells := make([]cellKey, 0, len(policies)*len(amps))
	for pi := range policies {
		for ai := range amps {
			cells = append(cells, cellKey{pi, ai})
		}
	}
	rows := make([][]float64, len(cells))
	err := parMap(len(cells), o.workers(), func(i int) error {
		p, amp := policies[cells[i].pi], amps[cells[i].ai]
		cfg := labConfig(o)
		p.mut(&cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		spec := p.spec
		spec.Flows = 16
		spec.Mode = active.ModeChaff
		spec.Amplitude = amp
		res, err := runActiveDetection(sys, spec, core.ActiveDetectConfig{
			Duration:     duration,
			Features:     cascadeFeatures,
			TrainWindows: o.windows(120),
			Workers:      o.nestedWorkers(len(cells)),
		})
		if err != nil {
			return err
		}
		rows[i] = []float64{p.code, amp, res.DetectionRate, res.MeanZ,
			res.MatchAccuracy, res.DegreeOfAnonymity, res.ClassAccuracy,
			res.InjectedPPS, res.RoutePPS}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	for _, p := range policies {
		t.Notef("policy %d = %s", int(p.code), p.name)
	}
	t.Notef("16 flows, %.0f s observed per flow, 32-chip keys at 0.5 s slots, 16 decoy keys, detection threshold z = 3", duration)
	t.Notef("amp_pps is the chaff rate inside marked slots; injected_pps is the attacker's long-run cost (amp x duty cycle)")
	t.Notef("matched overhead: CIT/VIT emit 1/tau = 100 pps; MIX-64 users add cover up to 100 pps (cover is minted past the attacker, so it is never watermarked); NONE is the unpadded anchor; CASC-2xCIT pays double")
	t.Notef("exit class features variance+entropy at window 200, %d training windows/class on phantom (unwatermarked) flows; the Raw anchor trains no classifier, so its class_acc reads 0", o.windows(120))
	t.Notef("anonymity: normalized entropy of each exit flow's key-match posterior (1 = the watermark tells the adversary nothing)")
	return t, nil
}

// AblationWatermarkDefenses asks which hop policy and hop *order*
// destroy the watermark on two-hop routes at equal bandwidth, for both
// injection mechanisms. A single CIT hop leaks keyed chaff through its
// blocking channel; adding any re-padding second hop kills it — the
// inner hop only ever sees the entry hop's constant rate — except in
// one order: a batching mix *in front of* the timer forwards the chaff
// rate pattern untouched, and the downstream timer's blocking channel
// turns it back into marked-slot PIAT noise, exactly the route that
// also re-introduces the passive class leak (ablation-hop-policies).
// Delay-jitter watermarks are weaker: the first re-timing hop already
// erases the imprinted timing, whatever the policy.
func AblationWatermarkDefenses(o Options) (*Table, error) {
	o = o.withDefaults()
	vit := core.CascadeHop{Policy: core.CascadeVIT, SigmaT: 30e-6}
	mix := core.CascadeHop{Policy: core.CascadeMix}
	routes := []struct {
		code float64
		name string
		hops []core.CascadeHop
	}{
		{0, "CIT", []core.CascadeHop{{}}},
		{1, "CIT+CIT", []core.CascadeHop{{}, {}}},
		{2, "VIT+VIT", []core.CascadeHop{vit, vit}},
		{3, "CIT+MIX8", []core.CascadeHop{{}, mix}},
		{4, "MIX8+CIT", []core.CascadeHop{mix, {}}},
	}
	modes := []struct {
		code float64
		mode active.Mode
		amp  float64
	}{
		{0, active.ModeChaff, 20},  // 20 pps inside marked slots
		{1, active.ModeDelay, 0.1}, // 100 ms imposed on marked payload
	}
	t := &Table{
		ID:    "ablation-watermark-defenses",
		Title: "Two-hop routes vs the active watermark: which hop policy and order destroy it at equal bandwidth",
		Columns: []string{"route", "mode", "det_rate", "mean_z", "match_acc",
			"anonymity", "class_acc", "injected_pps", "added_delay_ms",
			"route_pps", "dummy_frac"},
	}
	duration := activeDuration(o)
	type cellKey struct{ ri, mi int }
	cells := make([]cellKey, 0, len(routes)*len(modes))
	for ri := range routes {
		for mi := range modes {
			cells = append(cells, cellKey{ri, mi})
		}
	}
	rows := make([][]float64, len(cells))
	err := parMap(len(cells), o.workers(), func(i int) error {
		r, m := routes[cells[i].ri], modes[cells[i].mi]
		sys, err := core.NewSystem(labConfig(o))
		if err != nil {
			return err
		}
		res, err := runActiveDetection(sys, core.ActiveSpec{
			Protocol:  core.ActiveCascade,
			Hops:      r.hops,
			Flows:     16,
			Mode:      m.mode,
			Amplitude: m.amp,
		}, core.ActiveDetectConfig{
			Duration:     duration,
			Features:     cascadeFeatures,
			TrainWindows: o.windows(120),
			Workers:      o.nestedWorkers(len(cells)),
		})
		if err != nil {
			return err
		}
		rows[i] = []float64{r.code, m.code, res.DetectionRate, res.MeanZ,
			res.MatchAccuracy, res.DegreeOfAnonymity, res.ClassAccuracy,
			res.InjectedPPS, res.MeanAddedDelay * 1e3, res.RoutePPS,
			res.DummyFrac}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	for _, r := range routes {
		t.Notef("route %d = %s", int(r.code), r.name)
	}
	t.Notef("mode 0 = chaff probes at 20 pps inside marked slots; mode 1 = delay jitter, 100 ms imposed on marked-slot payload")
	t.Notef("16 flows, %.0f s observed per flow, 32-chip keys at 0.5 s slots; exit class features variance+entropy at window 200, %d training windows/class", duration, o.windows(120))
	t.Notef("equal bandwidth: timer-entry routes carry 1/tau = 100 pps on both links; the MIX8 entry route forwards payload+chaff only (route_pps shows the discount) and leaks the watermark for it")
	t.Notef("hop order is the finding: MIX8+CIT forwards the chaff rate pattern into the timer's blocking channel, CIT+MIX8 starves it with a constant rate")
	return t, nil
}
