package experiment

import (
	"math"

	"linkpad/internal/analytic"
	"linkpad/internal/core"
	"linkpad/internal/netem"
	"linkpad/internal/population"
)

func init() {
	registerCells("ext-impairments", extImpairmentCells)
	registerCells("ablation-churn", ablationChurnCells)
}

// impairScenario is one capture/path fault profile of the
// ext-impairments sweep.
type impairScenario struct {
	name string
	// tap degrades the adversary's captures (exit tap and, on cascades,
	// the entry recorder); the wire is untouched.
	tap *netem.Impairment
	// path impairs the forward path itself: packets really are lost.
	path *netem.Impairment
}

// impairGE is the bursty-capture chain shared by the GE scenarios:
// stationary bad-state share 1/11, loss 0.5 in bad → mean loss ~4.5%,
// in bursts of mean length 2 packets.
var impairGE = &netem.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.5, LossBad: 0.5}

// impairScenarios spans the tap-quality × loss-rate axis: clean, an
// i.i.d. tap-loss ramp, a bursty tap with duplication and reordering,
// and bursty loss on the forward path itself.
var impairScenarios = []impairScenario{
	{name: "clean"},
	{name: "tap-loss2", tap: &netem.Impairment{LossProb: 0.02}},
	{name: "tap-loss5", tap: &netem.Impairment{LossProb: 0.05}},
	{name: "tap-loss10", tap: &netem.Impairment{LossProb: 0.10}},
	{name: "tap-ge", tap: &netem.Impairment{GE: impairGE, DupProb: 0.01, ReorderProb: 0.02, ReorderDepth: 4}},
	{name: "path-ge", path: &netem.Impairment{GE: impairGE}},
}

// meanTapLoss is the scenario's stationary capture-loss rate (0 for the
// path scenario: the tap sees everything that survives the wire).
func (sc *impairScenario) meanTapLoss() float64 {
	if sc.tap == nil {
		return 0
	}
	loss := sc.tap.LossProb
	if sc.tap.GE != nil {
		loss += (1 - loss) * sc.tap.GE.MeanLoss()
	}
	return loss
}

// impairProtocols indexes the protocol axis of the sweep.
const (
	impairReplica = iota
	impairSession
	impairCascade
	numImpairProtocols
)

// binaryAnonymity converts a two-class detection rate into a degree of
// anonymity: the normalized entropy of the adversary's per-trial success
// probability, 1 at chance (0.5) and 0 at certain identification. It is
// the replica/session analogue of the cascade's match-posterior entropy.
func binaryAnonymity(acc float64) float64 {
	if acc <= 0 || acc >= 1 {
		return 0
	}
	return -(acc*math.Log(acc) + (1-acc)*math.Log(1-acc)) / math.Log(2)
}

// extImpairmentCells measures how the attacks degrade when the
// adversary's capture — or the path itself — is impaired: detection
// accuracy and degree of anonymity per protocol (replica, session,
// cascade) across tap-loss rates, a bursty tap with duplication and
// reordering, and bursty forward-path loss. The observation-side
// finding mirrors ablation-tap's: i.i.d. capture loss thins the PIAT
// sample but barely moves the features, while bursty loss and
// reordering distort the *gap structure* the features read, so the GE
// tap costs more accuracy per lost packet. Path loss differs in kind:
// it changes the wire itself (both sides of the cascade tap see it
// consistently), so the correlation attack survives it better than the
// same loss applied to the capture. Every impairment is a seeded
// per-stream draw, so the table is byte-identical at any worker count.
var extImpairmentCells = &cellExperiment{
	title: "Attack degradation under capture and path impairments, per protocol",
	columns: []string{"protocol", "scenario", "tap_loss", "accuracy",
		"anonymity"},
	ncells: func(Options) int { return numImpairProtocols * len(impairScenarios) },
	run: func(o Options, cell, nested int) ([]float64, error) {
		proto := cell / len(impairScenarios)
		sc := &impairScenarios[cell%len(impairScenarios)]
		cfg := labConfig(o)
		cfg.TapImpair = sc.tap
		cfg.EntryTapImpair = sc.tap
		cfg.PathImpair = sc.path
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		var acc, anon float64
		switch proto {
		case impairReplica:
			res, err := runAttack(sys, core.AttackConfig{
				Feature:        analytic.FeatureEntropy,
				WindowSize:     1000,
				TrainWindows:   o.windows(120),
				EvalWindows:    o.windows(120),
				Workers:        nested,
				SkipEmpiricalR: true,
			})
			if err != nil {
				return nil, err
			}
			acc, anon = res.DetectionRate, binaryAnonymity(res.DetectionRate)
		case impairSession:
			res, err := runSessionAttack(sys, core.SessionAttackConfig{
				Feature:       analytic.FeatureEntropy,
				WindowSize:    500,
				TrainSessions: 8,
				TrainWindows:  o.windows(120),
				EvalSessions:  o.windows(60),
				MaxWindows:    12,
				Confidence:    0.99,
				Workers:       nested,
			})
			if err != nil {
				return nil, err
			}
			acc, anon = res.DetectionRate, binaryAnonymity(res.DetectionRate)
		case impairCascade:
			res, err := runCascadeCorrelation(sys, core.CascadeSpec{
				Hops:  make([]core.CascadeHop, 1),
				Flows: 16,
			}, core.CascadeCorrConfig{
				Duration:     cascadeDuration(o),
				Features:     cascadeFeatures,
				TrainWindows: o.windows(120),
				Workers:      nested,
			})
			if err != nil {
				return nil, err
			}
			acc, anon = res.Accuracy, res.DegreeOfAnonymity
		}
		return []float64{float64(proto), float64(cell % len(impairScenarios)),
			sc.meanTapLoss(), acc, anon}, nil
	},
	notes: func(o Options, t *Table) {
		t.Notef("protocol codes: 0=replica (entropy, n=1000) 1=session (anytime entropy, n=500, 99%% confidence) 2=cascade (1 CIT hop, 16 flows, %.0f s)", cascadeDuration(o))
		for i := range impairScenarios {
			sc := &impairScenarios[i]
			t.Notef("scenario %d = %s (mean tap loss %.3f)", i, sc.name, sc.meanTapLoss())
		}
		t.Notef("tap scenarios impair only the captures (exit tap and cascade entry recorder); path-ge loses packets on the wire itself")
		t.Notef("GE chain: P(g->b)=0.05 P(b->g)=0.5 loss(bad)=0.5 — ~4.5%% loss in bursts of mean length 2; tap-ge adds 1%% duplication and 2%% reordering at depth 4")
		t.Notef("anonymity: cascade reports its match-posterior entropy; replica/session report the normalized binary entropy of the detection rate (1 = chance)")
	},
}

// churnFractions is the ablation-churn online-fraction axis: the
// stationary share of time each user is online (1 = static population).
var churnFractions = []float64{1, 0.75, 0.5, 0.25}

// churnPeriod is the mean churn cycle (MeanOn + MeanOff) in stream
// seconds. At the lab population's round cadence (~20 ms) an offline
// stretch spans on the order of a hundred rounds, so runs cross many
// presence cycles and the estimators see both regimes of every target.
const churnPeriod = 4.0

// ablationChurnCells measures how statistical disclosure degrades under
// population churn, with and without the churn-aware estimator. Users
// join and leave on independent seeded presence schedules. Two opposing
// forces move rounds-to-disclosure: offline stretches censor the target
// (fewer with-rounds per wall-clock round), while a thinner co-online
// population concentrates each round on fewer senders, strengthening
// the per-round contrast — so moderate churn can even *help* the
// attack before heavy churn stalls it. The churn-aware estimator masks
// rounds where the target was provably offline (presence is connection
// metadata the mix-side adversary observes) instead of booking them as
// without-rounds: under the independent churn simulated here the naive
// estimator is already unbiased, so the mask's price — fewer effective
// without-rounds, visible as slower disclosure at low online
// fractions — is exactly what the table quantifies. The mask is the
// robust choice when presence correlates across users (diurnal
// populations), where the naive without-mean samples the co-online
// population of other times; see DisclosureConfig.ChurnAware.
var ablationChurnCells = &cellExperiment{
	title: "SDA under population churn: naive vs churn-aware estimator across online fractions",
	columns: []string{"online_frac", "churn_aware", "disclosed_frac",
		"mean_rounds", "mean_rounds_with", "mean_anonymity"},
	ncells: func(Options) int { return len(churnFractions) * 2 },
	run: func(o Options, cell, nested int) ([]float64, error) {
		frac := churnFractions[cell/2]
		aware := cell%2 == 1
		sys, err := core.NewSystem(labConfig(o))
		if err != nil {
			return nil, err
		}
		spec := core.PopulationSpec{
			Users:      24,
			Recipients: 60,
			CoverRate:  1,
		}
		if frac < 1 {
			spec.Churn = &core.ChurnSpec{
				MeanOn:  churnPeriod * frac,
				MeanOff: churnPeriod * (1 - frac),
			}
		}
		res, err := runDisclosure(sys, spec, population.DisclosureConfig{
			MaxRounds:  disclosureRounds(o),
			ChurnAware: aware,
			Workers:    nested,
		})
		if err != nil {
			return nil, err
		}
		var roundsWith float64
		for _, tg := range res.Targets {
			roundsWith += float64(tg.RoundsWith)
		}
		roundsWith /= float64(len(res.Targets))
		awareCode := 0.0
		if aware {
			awareCode = 1
		}
		return []float64{frac, awareCode, res.DisclosedFrac, res.MeanRounds,
			roundsWith, res.MeanAnonymity}, nil
	},
	notes: func(o Options, t *Table) {
		t.Notef("24 users, 60 recipients, cover rate 1, batch 8, budget %d rounds; undisclosed targets censor mean_rounds", disclosureRounds(o))
		t.Notef("churn: per-user alternating exponential presence, cycle %.0f s at the listed online fraction; online_frac 1 = static population (both estimators identical)", churnPeriod)
		t.Notef("churn_aware 1 masks rounds where the target was offline at the mix flush instead of booking them as without-rounds; under independent churn the mask trades without-round samples for robustness to correlated presence")
		t.Notef("rounds count all mix rounds, including those the target sat out — wall-clock cost to the adversary, not effective samples")
	},
}
