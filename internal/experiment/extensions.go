package experiment

import (
	"linkpad/internal/analytic"
	"linkpad/internal/core"
	"linkpad/internal/sizes"
)

func init() {
	register("multirate", MultiRate)
	register("ext-sizes", ExtSizes)
	register("ext-features", ExtFeatures)
	register("validate-exactnet", ValidateExactNet)
	register("ablation-binwidth", AblationBinWidth)
	register("ablation-training", AblationTraining)
	register("ablation-payload", AblationPayload)
	register("ablation-tap", AblationTap)
	register("ablation-theorygap", AblationTheoryGap)
}

// ExtFeatures extends the paper's feature set with the interquartile
// range — another robust second-order statistic — and compares all
// second-order features across sample sizes under CIT at the gateway.
func ExtFeatures(o Options) (*Table, error) {
	o = o.withDefaults()
	sys, err := core.NewSystem(labConfig(o))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-features",
		Title:   "Second-order feature statistics compared (variance / entropy / IQR), CIT lab",
		Columns: []string{"n", "var_emp", "ent_emp", "iqr_emp"},
	}
	ns := []int{200, 500, 1000}
	rows := make([][]float64, len(ns))
	err = parMap(len(ns), o.workers(), func(i int) error {
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:     ns[i],
			TrainWindows:   o.windows(120),
			EvalWindows:    o.windows(120),
			Workers:        o.nestedWorkers(len(ns)),
			SkipEmpiricalR: true,
		}, []analytic.Feature{analytic.FeatureVariance, analytic.FeatureEntropy, analytic.FeatureIQR})
		if err != nil {
			return err
		}
		row := []float64{float64(ns[i])}
		for _, res := range set {
			row = append(row, res.DetectionRate)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("IQR has no closed-form theorem (paper covers mean/variance/entropy); it behaves like a robust variance")
	return t, nil
}

// ValidateExactNet cross-validates the fast stationary-sampler network
// path against the exact per-packet FIFO router simulation at the attack
// level: the measured detection rates must agree within Monte Carlo
// noise. This is the license for using the fast path in the big sweeps.
func ValidateExactNet(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "validate-exactnet",
		Title:   "Fast M/D/1-sampler path vs exact per-packet router simulation",
		Columns: []string{"exact", "var_emp", "ent_emp"},
	}
	const u = 0.3
	const n = 1000
	rows := make([][]float64, 2)
	err := parMap(2, o.workers(), func(i int) error {
		cfg := labConfig(o)
		cfg.Hops = []core.HopSpec{labHop(u)}
		cfg.ExactNetwork = i == 1
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:     n,
			TrainWindows:   o.windows(80),
			EvalWindows:    o.windows(80),
			Workers:        o.nestedWorkers(2),
			SkipEmpiricalR: true,
		}, []analytic.Feature{analytic.FeatureVariance, analytic.FeatureEntropy})
		if err != nil {
			return err
		}
		row := []float64{float64(i)}
		for _, res := range set {
			row = append(row, res.DetectionRate)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("one router at u=%.1f; row 0 = fast sampler, row 1 = exact FIFO simulation of every cross packet", u)
	return t, nil
}

// ExtSizes implements the packet-size extension the paper defers to its
// companion work [7]: with variable packet sizes, an adversary can
// identify the application (interactive vs bulk) from wire sizes alone.
// Constant-size padding — the main paper's §3.2 assumption — erases the
// leak completely; bucket padding only dilutes it. Rows report the
// detection rate and the byte overhead each scheme costs per profile.
func ExtSizes(o Options) (*Table, error) {
	o = o.withDefaults()
	labels := []string{"interactive", "bulk"}
	profiles := []*sizes.Profile{sizes.Interactive(), sizes.Bulk()}

	constant, err := sizes.NewConstantPad(1500)
	if err != nil {
		return nil, err
	}
	bucket, err := sizes.NewBucketPad([]int{128, 576, 1500})
	if err != nil {
		return nil, err
	}
	padders := []sizes.Padder{sizes.NoPad{}, bucket, constant}

	t := &Table{
		ID:      "ext-sizes",
		Title:   "Application identification from packet sizes vs padding scheme (paper [7] extension)",
		Columns: []string{"padder", "detection", "overhead_interactive", "overhead_bulk"},
	}
	for code, pd := range padders {
		res, err := sizes.Detect(labels, profiles, pd, sizes.AttackConfig{
			WindowSize:   100,
			TrainWindows: o.windows(150),
			EvalWindows:  o.windows(150),
			Seed:         o.Seed,
		})
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(float64(code), res.DetectionRate,
			sizes.Overhead(profiles[0], pd), sizes.Overhead(profiles[1], pd)); err != nil {
			return nil, err
		}
	}
	t.Notef("padder codes: 0=none 1=bucket{128,576,1500} 2=constant(1500)")
	t.Notef("constant-size padding achieves exact size secrecy (detection 0.5) at the listed byte overhead")
	return t, nil
}

// MultiRate implements the paper's §6 extension: classification over more
// than two payload rates ("our technique can be easily extended to
// multiple ones by performing more off-line training"). Four rate classes
// are attacked with the entropy feature under CIT.
func MultiRate(o Options) (*Table, error) {
	o = o.withDefaults()
	cfg := labConfig(o)
	cfg.Rates = []core.Rate{
		{Label: "10pps", PPS: 10},
		{Label: "20pps", PPS: 20},
		{Label: "40pps", PPS: 40},
		{Label: "80pps", PPS: 80},
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	res, err := runAttack(sys, core.AttackConfig{
		Feature:        analytic.FeatureEntropy,
		WindowSize:     1000,
		TrainWindows:   o.windows(150),
		EvalWindows:    o.windows(150),
		Workers:        o.Workers,
		SkipEmpiricalR: true,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "multirate",
		Title:   "Four-rate classification, CIT, entropy feature, n=1000 (paper §6 extension)",
		Columns: []string{"class", "pps", "recall"},
	}
	for i, r := range cfg.Rates {
		if err := t.AddRow(float64(i), r.PPS, res.Confusion.ClassRate(i)); err != nil {
			return nil, err
		}
	}
	t.Notef("overall detection rate: %.4f (guessing bound for m=4 is 0.25)", res.DetectionRate)
	t.Notef("confusion matrix:\n%s", res.Confusion.String())
	return t, nil
}

// AblationBinWidth sweeps the entropy estimator's constant bin width Δh:
// too coarse merges the class peaks, too fine starves the bins. The paper
// fixes Δh across the experiment (eq. 25); this quantifies the choice.
func AblationBinWidth(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "ablation-binwidth",
		Title:   "Entropy detection vs histogram bin width, CIT lab, n=1000",
		Columns: []string{"bin_width_us", "ent_emp"},
	}
	sys, err := core.NewSystem(labConfig(o))
	if err != nil {
		return nil, err
	}
	for _, wUS := range []float64{0.5, 1, 2, 5, 10, 20, 50} {
		res, err := runAttack(sys, core.AttackConfig{
			Feature:         analytic.FeatureEntropy,
			WindowSize:      1000,
			TrainWindows:    o.windows(120),
			EvalWindows:     o.windows(120),
			EntropyBinWidth: wUS * 1e-6,
			Workers:         o.Workers,
			SkipEmpiricalR:  true,
		})
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(wUS, res.DetectionRate); err != nil {
			return nil, err
		}
	}
	t.Notef("reproduction default is 2us (adversary.DefaultEntropyBinWidth)")
	return t, nil
}

// AblationTraining compares the paper's Gaussian-KDE training against a
// parametric Gaussian fit of the feature densities, for each feature.
func AblationTraining(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "ablation-training",
		Title:   "KDE vs parametric-Gaussian training, CIT lab, n=1000",
		Columns: []string{"feature", "kde_emp", "gaussfit_emp"},
	}
	sys, err := core.NewSystem(labConfig(o))
	if err != nil {
		return nil, err
	}
	features := []analytic.Feature{analytic.FeatureMean, analytic.FeatureVariance, analytic.FeatureEntropy}
	// One shared-window pass per training mode; each reuses the same
	// simulated windows across all three features.
	byMode := make([][]*core.AttackResult, 2)
	for mode, gaussian := range []bool{false, true} {
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:     1000,
			TrainWindows:   o.windows(120),
			EvalWindows:    o.windows(120),
			GaussianFit:    gaussian,
			Workers:        o.Workers,
			SkipEmpiricalR: true,
		}, features)
		if err != nil {
			return nil, err
		}
		byMode[mode] = set
	}
	for i, f := range features {
		if err := t.AddRow(float64(f), byMode[0][i].DetectionRate, byMode[1][i].DetectionRate); err != nil {
			return nil, err
		}
	}
	t.Notef("feature codes: 0=mean 1=variance 2=entropy")
	return t, nil
}

// AblationPayload swaps the payload arrival process: the leak persists
// for Poisson, CBR and bursty on-off payloads because it is driven by the
// arrival *rate*, not the process shape.
func AblationPayload(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "ablation-payload",
		Title:   "Detection vs payload arrival model, CIT lab, n=1000",
		Columns: []string{"model", "var_emp", "ent_emp"},
	}
	for _, m := range []core.PayloadModel{core.PayloadPoisson, core.PayloadCBR, core.PayloadOnOff} {
		cfg := labConfig(o)
		cfg.Payload = m
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:     1000,
			TrainWindows:   o.windows(120),
			EvalWindows:    o.windows(120),
			Workers:        o.Workers,
			SkipEmpiricalR: true,
		}, []analytic.Feature{analytic.FeatureVariance, analytic.FeatureEntropy})
		if err != nil {
			return nil, err
		}
		row := []float64{float64(m)}
		for _, res := range set {
			row = append(row, res.DetectionRate)
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("model codes: 0=poisson 1=cbr 2=onoff")
	return t, nil
}

// AblationTap degrades the adversary's capture: timestamp quantization
// (analyzer clock resolution) and packet loss at the tap.
func AblationTap(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "ablation-tap",
		Title:   "Entropy detection vs tap imperfections, CIT lab, n=1000",
		Columns: []string{"resolution_us", "loss_prob", "ent_emp"},
	}
	for _, tc := range []struct {
		resUS float64
		loss  float64
	}{
		{0, 0}, {1, 0}, {5, 0}, {20, 0},
		{0, 0.01}, {0, 0.05}, {1, 0.01},
	} {
		cfg := labConfig(o)
		cfg.TapResolution = tc.resUS * 1e-6
		cfg.TapLossProb = tc.loss
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		res, err := runAttack(sys, core.AttackConfig{
			Feature:        analytic.FeatureEntropy,
			WindowSize:     1000,
			TrainWindows:   o.windows(120),
			EvalWindows:    o.windows(120),
			Workers:        o.Workers,
			SkipEmpiricalR: true,
		})
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(tc.resUS, tc.loss, res.DetectionRate); err != nil {
			return nil, err
		}
	}
	t.Notef("a coarse analyzer clock (>= the PIAT sigma of a few us) erases the leak; tap loss mostly does not")
	return t, nil
}

// AblationTheoryGap quantifies where the closed-form theorems are
// conservative: the mechanistic gateway's blocking mixture leaks shape
// information beyond the Gaussian model, so the empirical entropy attack
// exceeds Theorem 3 at small σ_T.
func AblationTheoryGap(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "ablation-theorygap",
		Title:   "Empirical vs Theorem-3 entropy detection across sigma_T, n=1000",
		Columns: []string{"sigma_t_us", "ent_emp", "ent_theory"},
	}
	for _, sigmaUS := range []float64{0, 5, 10, 20, 50} {
		emp, theory, err := theoryGapRow(o, sigmaUS*1e-6)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(sigmaUS, emp, theory); err != nil {
			return nil, err
		}
	}
	t.Notef("theory evaluates Theorem 3 at the measured variance ratio; gaps above ~0.05 mark shape leakage beyond the Gaussian model")
	return t, nil
}
