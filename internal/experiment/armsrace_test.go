package experiment

import (
	"bufio"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// armsrace_test.go: the SDA arms-race league table's contract. The
// committed golden table carries the asserted monotonicity — the
// least-squares estimator discloses no slower than the classic one in
// every mix cell, and dummy-policy resistance orders none < uniform <
// adaptive — and the cells themselves must be worker-invariant. The
// golden CI job keeps the committed table byte-identical to what the
// code produces, so asserting on the committed numbers pins the
// property to exactly the table shipped.

// readGoldenTable parses a committed golden table: '#' lines are
// notes, the first bare line is the column header, every following line
// is one row of floats.
func readGoldenTable(t *testing.T, path string) (cols []string, rows [][]float64) {
	t.Helper()
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if cols == nil {
			cols = fields
			continue
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatalf("%s: bad cell %q: %v", path, f, err)
			}
			row[i] = v
		}
		if len(row) != len(cols) {
			t.Fatalf("%s: row has %d cells for %d columns", path, len(row), len(cols))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return cols, rows
}

// TestArmsRaceGoldenMonotone asserts the league table's two orderings
// on the committed golden table (testdata/golden, scale 0.05 seed 3).
func TestArmsRaceGoldenMonotone(t *testing.T) {
	cols, rows := readGoldenTable(t, "../../testdata/golden/ext-sda-arms-race.txt")
	idx := func(name string) int {
		for i, c := range cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing from the golden table", name)
		return -1
	}
	cEst, cMix, cDum := idx("estimator"), idx("mix"), idx("dummies")
	cFrac, cRounds := idx("disclosed_frac"), idx("mean_rounds")
	if len(rows) != 27 {
		t.Fatalf("golden table has %d rows, want 27", len(rows))
	}
	type cell struct{ frac, rounds float64 }
	table := map[[3]int]cell{}
	for _, row := range rows {
		key := [3]int{int(row[cEst]), int(row[cMix]), int(row[cDum])}
		if _, dup := table[key]; dup {
			t.Fatalf("duplicate cell %v", key)
		}
		table[key] = cell{frac: row[cFrac], rounds: row[cRounds]}
	}
	// Least-squares discloses no slower than classic in every mix cell:
	// at least as many targets disclosed, in no more rounds.
	for mix := 0; mix < 3; mix++ {
		for dum := 0; dum < 3; dum++ {
			classic := table[[3]int{0, mix, dum}]
			ls := table[[3]int{1, mix, dum}]
			if ls.rounds > classic.rounds {
				t.Errorf("mix=%d dummies=%d: least-squares %.1f rounds vs classic %.1f — slower",
					mix, dum, ls.rounds, classic.rounds)
			}
			if ls.frac < classic.frac {
				t.Errorf("mix=%d dummies=%d: least-squares disclosed %.3f vs classic %.3f — fewer",
					mix, dum, ls.frac, classic.frac)
			}
		}
	}
	// Resistance orders none < uniform < adaptive for every estimator
	// and mix: strictly more rounds to disclose, never more targets
	// disclosed.
	for est := 0; est < 3; est++ {
		for mix := 0; mix < 3; mix++ {
			none := table[[3]int{est, mix, 0}]
			uniform := table[[3]int{est, mix, 1}]
			adaptive := table[[3]int{est, mix, 2}]
			if !(none.rounds < uniform.rounds && uniform.rounds < adaptive.rounds) {
				t.Errorf("est=%d mix=%d: resistance not ordered: none %.1f, uniform %.1f, adaptive %.1f rounds",
					est, mix, none.rounds, uniform.rounds, adaptive.rounds)
			}
			if none.frac < uniform.frac || uniform.frac < adaptive.frac {
				t.Errorf("est=%d mix=%d: disclosed fractions not ordered: none %.3f, uniform %.3f, adaptive %.3f",
					est, mix, none.frac, uniform.frac, adaptive.frac)
			}
		}
	}
}

// TestArmsRaceWorkerInvariance: arms-race cells are byte-identical in
// the nested worker width. One cell per estimator kind (the cheap
// no-dummy cells), each at widths 1, 4 and GOMAXPROCS.
func TestArmsRaceWorkerInvariance(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 3}
	for _, cell := range []int{3, 15, 21} { // classic/pool, ls/timed, ml/pool
		ref, err := extSDAArmsRaceCells.run(o, cell, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
			got, err := extSDAArmsRaceCells.run(o, cell, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("cell %d at %d workers: %v, want %v", cell, workers, got, ref)
			}
		}
	}
}

// TestArmsRaceCellShape: the grid is complete and every cell reports
// its own coordinates in the first three columns.
func TestArmsRaceCellShape(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 3}
	if n := extSDAArmsRaceCells.ncells(o); n != 27 {
		t.Fatalf("ncells = %d, want 27", n)
	}
	if n := scaleSDALSCells.ncells(o); n != len(scaleDisclosureCovers) {
		t.Fatalf("scale-sda-ls ncells = %d, want %d", n, len(scaleDisclosureCovers))
	}
	row, err := extSDAArmsRaceCells.run(o, 16, 1) // est=1, mix=2, dum=1
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != len(extSDAArmsRaceCells.columns) {
		t.Fatalf("cell row has %d values for %d columns", len(row), len(extSDAArmsRaceCells.columns))
	}
	if row[0] != 1 || row[1] != 2 || row[2] != 1 {
		t.Fatalf("cell 16 reports coordinates (%v,%v,%v), want (1,2,1)", row[0], row[1], row[2])
	}
	if row[3] < 0 || row[3] > 1 {
		t.Fatalf("disclosed_frac %v out of [0,1]", row[3])
	}
	if row[5] < 0 || row[5] > 1 {
		t.Fatalf("mean_anonymity %v out of [0,1]", row[5])
	}
}
