package experiment

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"linkpad/internal/obs"
)

// Cell experiments and checkpoint/resume (checkpoint.go).
//
// A cell experiment is a runner whose table decomposes into independent
// cells: row i is a pure function of (Options, i) — the same contract
// that makes sweeps worker-invariant also makes them *resumable*. The
// framework here executes cells in parallel, persists each finished
// row to a JSON checkpoint file, and on restart recomputes only the
// missing cells; because rows never depend on execution history, a
// resumed table is byte-identical to an uninterrupted one, no matter
// where the previous run died or how many workers either run used. CI
// enforces this by killing a run mid-flight (ErrKilled via killAfter),
// resuming it, and diffing the output against the golden table.

// cellExperiment describes one checkpointable runner: a fixed column
// set, a cell count, a per-cell row function, and the trailing notes.
type cellExperiment struct {
	title   string
	columns []string
	// ncells returns the sweep size (a pure function of Options).
	ncells func(o Options) int
	// run computes cell i's row with the given nested worker budget.
	// It must derive all randomness from (Options.Seed, i).
	run func(o Options, cell, nested int) ([]float64, error)
	// notes appends the table's trailing notes.
	notes func(o Options, t *Table)
}

// cellRegistry maps experiment IDs to their cell decomposition; every
// entry is also in the plain registry (registerCells adds both).
var cellRegistry = map[string]*cellExperiment{}

// registerCells adds a cell experiment under id: Run(id, o) executes it
// without checkpointing, RunCheckpointed adds persistence.
func registerCells(id string, ce *cellExperiment) {
	cellRegistry[id] = ce
	register(id, func(o Options) (*Table, error) {
		return runCells(id, ce, o, "", 0)
	})
}

// Checkpointable reports whether the experiment supports
// checkpoint/resume (it is registered as a cell experiment).
func Checkpointable(id string) bool {
	_, ok := cellRegistry[id]
	return ok
}

// ErrKilled is returned by RunCheckpointed when a killAfter budget
// expires: the run stopped mid-flight after persisting its progress, as
// a real crash would have. The checkpoint file is valid and resumable.
var ErrKilled = errors.New("experiment: run killed after checkpoint budget (simulated crash)")

// maxCheckpointCells bounds the sweep size a checkpoint file may claim,
// so a corrupt or hostile file cannot demand absurd allocations.
const maxCheckpointCells = 1 << 20

// Checkpoint is the on-disk resume state of a cell experiment: which
// cells have finished and their rows. The identity fields pin the file
// to one (experiment, seed, scale) so a checkpoint is never resumed
// against a different run's parameters.
type Checkpoint struct {
	Experiment string      `json:"experiment"`
	Seed       uint64      `json:"seed"`
	Scale      float64     `json:"scale"`
	Cells      int         `json:"cells"`
	Done       []bool      `json:"done"`
	Rows       [][]float64 `json:"rows"`
}

// ParseCheckpoint decodes and validates a checkpoint file. Unknown
// fields and trailing data are rejected — a checkpoint either parses
// exactly or not at all.
func ParseCheckpoint(data []byte) (*Checkpoint, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Checkpoint
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("experiment: parse checkpoint: %w", err)
	}
	if dec.More() {
		return nil, errors.New("experiment: trailing data after checkpoint")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks the checkpoint's internal consistency.
func (c *Checkpoint) Validate() error {
	if c.Experiment == "" {
		return errors.New("experiment: checkpoint names no experiment")
	}
	if c.Cells < 1 || c.Cells > maxCheckpointCells {
		return fmt.Errorf("experiment: checkpoint cell count %d out of range [1, %d]", c.Cells, maxCheckpointCells)
	}
	if !(c.Scale > 0) {
		return errors.New("experiment: checkpoint scale must be positive")
	}
	if c.Seed == 0 {
		return errors.New("experiment: checkpoint seed must be non-zero")
	}
	if len(c.Done) != c.Cells || len(c.Rows) != c.Cells {
		return fmt.Errorf("experiment: checkpoint shape mismatch: %d cells, %d done flags, %d rows",
			c.Cells, len(c.Done), len(c.Rows))
	}
	for i, d := range c.Done {
		if d && len(c.Rows[i]) == 0 {
			return fmt.Errorf("experiment: checkpoint cell %d marked done without a row", i)
		}
		if !d && c.Rows[i] != nil {
			return fmt.Errorf("experiment: checkpoint cell %d has a row but is not done", i)
		}
	}
	return nil
}

// matches checks that a loaded checkpoint belongs to this exact run.
func (c *Checkpoint) matches(want *Checkpoint) error {
	if c.Experiment != want.Experiment || c.Seed != want.Seed ||
		c.Scale != want.Scale || c.Cells != want.Cells {
		return fmt.Errorf("experiment: checkpoint is for %s seed=%d scale=%g cells=%d, run wants %s seed=%d scale=%g cells=%d",
			c.Experiment, c.Seed, c.Scale, c.Cells,
			want.Experiment, want.Seed, want.Scale, want.Cells)
	}
	return nil
}

// save writes the checkpoint atomically (temp file + rename), so a
// crash mid-write leaves the previous checkpoint intact.
func (c *Checkpoint) save(path string) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RunCheckpointed executes a cell experiment with progress persisted to
// path after every finished cell: if path holds a matching checkpoint,
// only the missing cells run. killAfter > 0 aborts the run with
// ErrKilled once that many cells finished in *this* invocation — the
// crash-injection hook the kill-and-resume tests use. The finished
// table is byte-identical to Run(id, o) regardless of interruptions.
func RunCheckpointed(id string, o Options, path string, killAfter int) (*Table, error) {
	ce, ok := cellRegistry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: %s does not support checkpointing", id)
	}
	if path == "" {
		return nil, errors.New("experiment: checkpoint path must be non-empty")
	}
	return runCells(id, ce, o, path, killAfter)
}

// runCells executes a cell experiment, optionally persisting progress.
func runCells(id string, ce *cellExperiment, o Options, path string, killAfter int) (*Table, error) {
	o = o.withDefaults()
	n := ce.ncells(o)
	cp := &Checkpoint{
		Experiment: id,
		Seed:       o.Seed,
		Scale:      o.Scale,
		Cells:      n,
		Done:       make([]bool, n),
		Rows:       make([][]float64, n),
	}
	if path != "" {
		if data, err := os.ReadFile(path); err == nil {
			prev, err := ParseCheckpoint(data)
			if err != nil {
				return nil, fmt.Errorf("experiment: checkpoint %s: %w", path, err)
			}
			if err := prev.matches(cp); err != nil {
				return nil, err
			}
			cp = prev
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	todo := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !cp.Done[i] {
			todo = append(todo, i)
		}
	}
	// Announce only the cells left to run: a resumed sweep's progress
	// gauge starts where the crashed run stopped.
	obs.AddCells(len(todo))
	// The nested budget splits over the full sweep, not the remainder, so
	// a resumed run schedules exactly like a fresh one (results are
	// identical either way; this only keeps the performance predictable).
	nested := o.nestedWorkers(n)
	var (
		mu        sync.Mutex
		completed int
	)
	err := parMap(len(todo), o.workers(), func(k int) error {
		i := todo[k]
		row, err := ce.run(o, i, nested)
		if err != nil {
			return err
		}
		if len(row) != len(ce.columns) {
			return fmt.Errorf("experiment: %s cell %d produced %d values for %d columns",
				id, i, len(row), len(ce.columns))
		}
		mu.Lock()
		defer mu.Unlock()
		cp.Done[i] = true
		cp.Rows[i] = row
		completed++
		obs.CellDone()
		if path != "" {
			if err := cp.save(path); err != nil {
				return err
			}
		}
		if killAfter > 0 && completed >= killAfter {
			return ErrKilled
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: ce.title, Columns: ce.columns}
	for _, row := range cp.Rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	if ce.notes != nil {
		ce.notes(o, t)
	}
	return t, nil
}
