package experiment

import (
	"linkpad/internal/core"
	"linkpad/internal/population"
)

func init() {
	registerCells("scale-disclosure", scaleDisclosureCells)
}

// scaleUsers resolves the population size for the scale experiment:
// one million users at -scale 1, linear in the scale knob with a floor
// that keeps the engine's sharded paths (multiple shards, lazy
// instantiation, streaming merge) exercised even at smoke scale.
func scaleUsers(o Options) int {
	n := int(1e6 * o.Scale)
	if n < 10_000 {
		n = 10_000
	}
	return n
}

// scaleDisclosureCovers is the sweep axis: the same rounds pushed
// through a bare population and through one where every user adds cover
// at its payload rate, so the cell pair prices cover traffic at scale.
var scaleDisclosureCovers = []float64{0, 1}

// Fixed observation budget for the scale cells. -scale moves the
// population size, not the budget: the experiment measures engine
// throughput and memory at N, so the per-cell work must stay N-linear
// (generation + merge) plus a constant round budget, not N×rounds.
const (
	scaleDisclosureRounds = 64
	scaleDisclosureBatch  = 1024
)

// scaleDisclosureCells drives the population engine at its design
// point: a million lazily materialized users (at -scale 1) behind one
// batching mix, with the statistical disclosure adversary attached.
// The scientific content is a negative result the analysis predicts:
// at N=1e6 a target lands in a B=1024 batch about once per thousand
// rounds, so a 64-round budget gives the SDA estimator no signal and
// disclosed_frac is 0 with near-uniform anonymity — population size
// alone is a countermeasure on these timescales. What the cells gate
// is the engine: the run must complete in seconds with resident memory
// dominated by the compact per-user frontier plus the few users that
// actually sent, and the table must be byte-identical at any worker
// width (the scale-smoke CI job diffs -workers 1 against -workers 4).
// Registered as a cell experiment, so -checkpoint/-checkpoint-kill
// cover the sharded engine state at scale too.
var scaleDisclosureCells = &cellExperiment{
	title: "Population engine at scale: million-user statistical disclosure rounds",
	columns: []string{"users", "cover", "rounds", "batch",
		"disclosed_frac", "mean_anonymity"},
	ncells: func(Options) int { return len(scaleDisclosureCovers) },
	run: func(o Options, cell, nested int) ([]float64, error) {
		sys, err := core.NewSystem(labConfig(o))
		if err != nil {
			return nil, err
		}
		n := scaleUsers(o)
		cover := scaleDisclosureCovers[cell]
		res, err := runDisclosure(sys, core.PopulationSpec{
			Users:      n,
			Recipients: 10_000,
			CoverRate:  cover,
		}, population.DisclosureConfig{
			Batch:      scaleDisclosureBatch,
			MaxRounds:  scaleDisclosureRounds,
			CheckEvery: 16,
			Workers:    nested,
		})
		if err != nil {
			return nil, err
		}
		return []float64{float64(n), cover, float64(res.Rounds),
			scaleDisclosureBatch, res.DisclosedFrac, res.MeanAnonymity}, nil
	},
	notes: func(o Options, t *Table) {
		t.Notef("population %d users (1e6 x scale, floor 1e4), 10000 recipients, batch %d, %d rounds",
			scaleUsers(o), scaleDisclosureBatch, scaleDisclosureRounds)
		t.Notef("cover = dummy rate as a multiple of the user's payload rate; dummies go to uniform recipients")
		t.Notef("at this batch/budget the SDA has no per-target signal at large N: disclosed_frac 0 and")
		t.Notef("near-uniform anonymity are the expected reading; the cells gate engine throughput and memory")
	},
}

// ScaleDisclosure runs the million-user engine cells without
// checkpointing; see scaleDisclosureCells.
func ScaleDisclosure(o Options) (*Table, error) {
	return runCells("scale-disclosure", scaleDisclosureCells, o, "", 0)
}
