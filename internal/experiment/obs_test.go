package experiment

import (
	"bytes"
	"runtime"
	"testing"

	"linkpad/internal/obs"
)

// obsProbeIDs are the experiments the telemetry invariants run over:
// one replica-attack figure, one population sweep (a cell experiment),
// and one cascade protocol — together they exercise the gateway, mix,
// netem, population, adversary and experiment counter groups.
var obsProbeIDs = []string{"fig4b", "ext-disclosure", "ext-cascade"}

// renderText renders a table to its byte-exact text form.
func renderText(t *testing.T, tbl *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Telemetry must be deterministically invisible: the table an
// experiment produces is byte-identical with collection on or off, and
// the enabled counter totals are a pure function of (experiment, scale,
// seed) — invariant under the worker count. This is the repo's golden
// determinism discipline extended to the flight recorder itself.
func TestObsInvisibleAndWorkerInvariant(t *testing.T) {
	opts := Options{Scale: 0.05, Seed: 3}
	for _, id := range obsProbeIDs {
		t.Run(id, func(t *testing.T) {
			obs.SetEnabled(false)
			obs.Reset()
			t.Cleanup(func() {
				obs.SetEnabled(false)
				obs.Reset()
			})
			tbl, err := Run(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			baseline := renderText(t, tbl)

			obs.SetEnabled(true)
			var ref [obs.NumCounters]uint64
			for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				obs.Reset()
				o := opts
				o.Workers = workers
				tbl, err := Run(id, o)
				if err != nil {
					t.Fatal(err)
				}
				if got := renderText(t, tbl); !bytes.Equal(got, baseline) {
					t.Fatalf("workers=%d: table bytes differ with telemetry enabled", workers)
				}
				snap := obs.Snapshot()
				if i == 0 {
					ref = snap
					// Non-degeneracy: the experiment must have reported
					// *something*. (Not every counter group applies to every
					// experiment — the population sweep sends no link packets.)
					var total uint64
					for _, n := range snap {
						total += n
					}
					if total == 0 {
						t.Fatalf("telemetry enabled but nothing counted: %v", obs.SnapshotMap())
					}
					continue
				}
				if snap != ref {
					for c := obs.Counter(0); c < obs.NumCounters; c++ {
						if snap[c] != ref[c] {
							t.Errorf("workers=%d: counter %s = %d, want %d (workers=1)",
								workers, c.Name(), snap[c], ref[c])
						}
					}
				}
			}
		})
	}
}

// A disabled collector must stay silent: running an experiment with
// collection off adds nothing to the global totals.
func TestObsDisabledCountsNothing(t *testing.T) {
	obs.SetEnabled(false)
	obs.Reset()
	t.Cleanup(obs.Reset)
	if _, err := Run("fig4b", Options{Scale: 0.05, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if snap := obs.Snapshot(); snap != ([obs.NumCounters]uint64{}) {
		t.Errorf("disabled collector accumulated counts: %v", obs.SnapshotMap())
	}
}
