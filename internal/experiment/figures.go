package experiment

import (
	"linkpad/internal/analytic"
	"linkpad/internal/core"
	"linkpad/internal/gateway"
	"linkpad/internal/stats"
	"linkpad/internal/traffic"
)

func init() {
	register("fig4a", Fig4a)
	register("fig4b", Fig4b)
	register("fig5a", Fig5a)
	register("fig5b", Fig5b)
	register("fig6", Fig6)
	register("fig8a", Fig8a)
	register("fig8b", Fig8b)
}

// labConfig is the paper's §5.1 laboratory setup (tap at GW1, no cross
// traffic) with the experiment's seed.
func labConfig(o Options) core.Config {
	cfg := core.DefaultLabConfig()
	cfg.Seed = o.Seed
	return cfg
}

// labHop is the Marconi-router hop of the §5.2 experiment. The shared
// 100 Mbit/s link carries small cross packets (~200 B, service 16 µs):
// with 1500 B cross packets even 5% utilization would bury the µs-scale
// gateway leak, collapsing every feature to 0.5 at once, whereas the
// paper's Fig. 6 shows a gradual decline — small packets reproduce that
// per-packet waiting scale.
func labHop(u float64) core.HopSpec {
	return core.HopSpec{
		CapacityBps: 100e6,
		PacketBytes: 200,
		Util:        traffic.Constant(u),
	}
}

// campusHops is the §5.3 campus path: a few gigabit backbone routers
// (1500 B service = 12 µs) with light diurnal load. Per-hop waiting
// variance stays a few µs², so detection remains high all day — the
// paper's Fig. 8(a) observation.
func campusHops() []core.HopSpec {
	hops := make([]core.HopSpec, 3)
	for i := range hops {
		hops[i] = core.HopSpec{
			CapacityBps: 1e9,
			PacketBytes: 1500,
			Util:        traffic.Diurnal{Trough: 0.02, Peak: 0.08, TroughHour: 3},
			PropDelay:   0.5e-3,
		}
	}
	return hops
}

// wanHops is the §5.3 Ohio State → Texas A&M path: 15 OC-12-class
// routers (622 Mbit/s, 1500 B service ≈ 19 µs) with a much larger diurnal
// congestion swing, pushing r near 1 in the afternoon but letting the
// leak peek through at night — the paper's Fig. 8(b) observation.
func wanHops() []core.HopSpec {
	hops := make([]core.HopSpec, 15)
	for i := range hops {
		hops[i] = core.HopSpec{
			CapacityBps: 622e6,
			PacketBytes: 1500,
			Util:        traffic.Diurnal{Trough: 0.05, Peak: 0.30, TroughHour: 3},
			PropDelay:   2e-3,
		}
	}
	return hops
}

// Fig4a reproduces Fig. 4(a): the padded traffic's PIAT probability
// density under low-rate and high-rate payload for CIT padding with zero
// cross traffic. Columns: PIAT offset from τ in µs, density for 10 pps,
// density for 40 pps (densities in 1/s, estimated with 2 µs bins).
func Fig4a(o Options) (*Table, error) {
	o = o.withDefaults()
	sys, err := core.NewSystem(labConfig(o))
	if err != nil {
		return nil, err
	}
	const binW = 2e-6
	nPIAT := o.windows(150) * 1000

	hists := make([]*stats.Histogram, 2)
	summaries := make([]stats.Summary, 2)
	for class := 0; class < 2; class++ {
		src, err := sys.PIATSource(class, 1)
		if err != nil {
			return nil, err
		}
		h, err := stats.NewHistogram(binW)
		if err != nil {
			return nil, err
		}
		xs := make([]float64, nPIAT)
		for i := range xs {
			xs[i] = src.Next()
		}
		h.AddAll(xs)
		hists[class] = h
		summaries[class] = stats.Summarize(xs)
	}

	t := &Table{
		ID:      "fig4a",
		Title:   "PIAT PDF of padded traffic, CIT, zero cross traffic (paper Fig. 4a)",
		Columns: []string{"piat_offset_us", "density_10pps", "density_40pps"},
	}
	tau := sys.Config().Tau
	for off := -30e-6; off <= 30e-6+1e-12; off += binW {
		x := tau + off
		if err := t.AddRow(off*1e6, hists[0].EntropyDensity(x), hists[1].EntropyDensity(x)); err != nil {
			return nil, err
		}
	}
	r := summaries[1].Variance / summaries[0].Variance
	t.Notef("n=%d PIATs per class, bin width 2us", nPIAT)
	t.Notef("mean PIAT: low %.6fms high %.6fms (equal means, paper obs. 2)",
		summaries[0].Mean*1e3, summaries[1].Mean*1e3)
	t.Notef("PIAT sigma: low %.3fus high %.3fus, variance ratio r=%.3f (paper obs. 3: r>1)",
		summaries[0].StdDev*1e6, summaries[1].StdDev*1e6, r)
	return t, nil
}

// Fig4b reproduces Fig. 4(b): detection rate vs sample size for the three
// feature statistics under CIT at the gateway output, with the
// closed-form theory evaluated at the measured variance ratio.
func Fig4b(o Options) (*Table, error) {
	o = o.withDefaults()
	sys, err := core.NewSystem(labConfig(o))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig4b",
		Title: "Detection rate vs sample size, CIT, zero cross traffic (paper Fig. 4b)",
		Columns: []string{"n",
			"mean_emp", "mean_theory",
			"var_emp", "var_theory",
			"ent_emp", "ent_theory"},
	}
	features := []analytic.Feature{analytic.FeatureMean, analytic.FeatureVariance, analytic.FeatureEntropy}
	ns := []int{100, 200, 500, 1000, 2000}
	rows := make([][]float64, len(ns))
	rs := make([]float64, len(ns))
	err = parMap(len(ns), o.workers(), func(i int) error {
		n := ns[i]
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:   n,
			TrainWindows: o.windows(150),
			EvalWindows:  o.windows(150),
			Workers:      o.nestedWorkers(len(ns)),
		}, features)
		if err != nil {
			return err
		}
		row := []float64{float64(n)}
		for _, res := range set {
			row = append(row, res.DetectionRate, res.TheoryDetectionRate)
		}
		rs[i] = set[0].EmpiricalR
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("measured r=%.3f at the gateway output; theory columns evaluate Theorems 1-3 at the measured r", rs[len(rs)-1])
	t.Notef("%d training and %d evaluation windows per class per point", o.windows(150), o.windows(150))
	return t, nil
}

// Fig5a reproduces Fig. 5(a): empirical detection rate vs the VIT
// interval standard deviation σ_T at sample size 2000. As σ_T grows the
// ratio r falls toward 1 and every feature collapses to guessing.
func Fig5a(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "fig5a",
		Title:   "Detection rate vs sigma_T, VIT, n=2000 (paper Fig. 5a)",
		Columns: []string{"sigma_t_us", "var_emp", "ent_emp", "mean_emp", "model_r"},
	}
	const n = 2000
	sigmas := []float64{0, 2, 5, 10, 15, 20, 30, 50, 100}
	rows := make([][]float64, len(sigmas))
	err := parMap(len(sigmas), o.workers(), func(i int) error {
		cfg := labConfig(o)
		cfg.SigmaT = sigmas[i] * 1e-6
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:     n,
			TrainWindows:   o.windows(120),
			EvalWindows:    o.windows(120),
			Workers:        o.nestedWorkers(len(sigmas)),
			SkipEmpiricalR: true,
		}, []analytic.Feature{analytic.FeatureVariance, analytic.FeatureEntropy, analytic.FeatureMean})
		if err != nil {
			return err
		}
		row := []float64{sigmas[i]}
		for _, res := range set {
			row = append(row, res.DetectionRate)
		}
		r, err := sys.ModelR(0)
		if err != nil {
			return err
		}
		rows[i] = append(row, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("sample size n=%d; %d train/%d eval windows per class per point", n, o.windows(120), o.windows(120))
	t.Notef("VIT with sigma_T >= ~30us drives r to 1 and detection to 0.5: the paper's core defense result")
	return t, nil
}

// Fig5b reproduces Fig. 5(b): the theoretical sample size n(99%) required
// for a 99% detection rate as a function of σ_T, from Theorems 2 and 3
// with the calibrated gateway's class variances.
func Fig5b(o Options) (*Table, error) {
	o = o.withDefaults()
	cfg := labConfig(o)
	cit, err := gateway.NewCIT(cfg.Tau)
	if err != nil {
		return nil, err
	}
	varL := gateway.PIATVar(cit, cfg.Jitter, cfg.Rates[0].PPS)
	varH := gateway.PIATVar(cit, cfg.Jitter, cfg.Rates[1].PPS)

	t := &Table{
		ID:      "fig5b",
		Title:   "Theoretical sample size for 99% detection vs sigma_T (paper Fig. 5b)",
		Columns: []string{"sigma_t_us", "r", "n99_variance", "n99_entropy"},
	}
	for _, sigmaUS := range []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000} {
		s2 := sigmaUS * 1e-6 * sigmaUS * 1e-6
		r := (varH + s2) / (varL + s2)
		nv, err := analytic.SampleSizeVariance(r, 0.99)
		if err != nil {
			return nil, err
		}
		ne, err := analytic.SampleSizeEntropy(r, 0.99)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(sigmaUS, r, nv, ne); err != nil {
			return nil, err
		}
	}
	t.Notef("gateway class variances: low %.4g s^2, high %.4g s^2", varL, varH)
	t.Notef("paper's benchmark: sigma_T=1ms needs n > 1e11 — see the last row")
	return t, nil
}

// Fig6 reproduces Fig. 6: detection rate vs shared-link utilization with
// lab cross traffic through one router, CIT padding, n = 1000.
func Fig6(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "fig6",
		Title:   "Detection rate vs link utilization, CIT, one router (paper Fig. 6)",
		Columns: []string{"utilization", "mean_emp", "var_emp", "ent_emp", "model_r"},
	}
	const n = 1000
	utils := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}
	rows := make([][]float64, len(utils))
	err := parMap(len(utils), o.workers(), func(i int) error {
		cfg := labConfig(o)
		cfg.Hops = []core.HopSpec{labHop(utils[i])}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:     n,
			TrainWindows:   o.windows(120),
			EvalWindows:    o.windows(120),
			Workers:        o.nestedWorkers(len(utils)),
			SkipEmpiricalR: true,
		}, []analytic.Feature{analytic.FeatureMean, analytic.FeatureVariance, analytic.FeatureEntropy})
		if err != nil {
			return err
		}
		row := []float64{utils[i]}
		for _, res := range set {
			row = append(row, res.DetectionRate)
		}
		r, err := sys.ModelR(0)
		if err != nil {
			return err
		}
		rows[i] = append(row, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("sample size n=%d; 100 Mbit/s shared link, 200 B cross packets (service 16us)", n)
	t.Notef("expected shape: detection falls with utilization; entropy > variance (outlier robustness); mean ~ 0.5")
	return t, nil
}

// fig8 runs the 24-hour detection-rate sweep for a given path.
func fig8(o Options, id, title string, hops []core.HopSpec, note string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"hour", "mean_emp", "var_emp", "ent_emp"},
	}
	const n = 1000
	hours := make([]float64, 0, 12)
	for hour := 0.0; hour < 24; hour += 2 {
		hours = append(hours, hour)
	}
	rows := make([][]float64, len(hours))
	err := parMap(len(hours), o.workers(), func(i int) error {
		hour := hours[i]
		cfg := labConfig(o)
		cfg.Hops = hops
		cfg.StartHour = hour
		// decorrelate the hour points without changing the system identity
		cfg.Seed = o.Seed + uint64(hour*1e3)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:     n,
			TrainWindows:   o.windows(100),
			EvalWindows:    o.windows(100),
			Workers:        o.nestedWorkers(len(hours)),
			SkipEmpiricalR: true,
		}, []analytic.Feature{analytic.FeatureMean, analytic.FeatureVariance, analytic.FeatureEntropy})
		if err != nil {
			return err
		}
		row := []float64{hour}
		for _, res := range set {
			row = append(row, res.DetectionRate)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("sample size n=%d, %d train/%d eval windows per class per point", n, o.windows(100), o.windows(100))
	t.Notef("%s", note)
	return t, nil
}

// Fig8a reproduces Fig. 8(a): detection rate over a 24 h capture across a
// campus network (few lightly loaded routers).
func Fig8a(o Options) (*Table, error) {
	o = o.withDefaults()
	return fig8(o, "fig8a",
		"Detection rate over 24h, campus path, CIT, n=1000 (paper Fig. 8a)",
		campusHops(),
		"campus: 3 routers, diurnal utilization 2-8% — detection stays high all day (CIT unsafe on enterprise networks)")
}

// Fig8b reproduces Fig. 8(b): detection rate over a 24 h capture across a
// wide-area path (15 routers, heavy diurnal congestion).
func Fig8b(o Options) (*Table, error) {
	o = o.withDefaults()
	return fig8(o, "fig8b",
		"Detection rate over 24h, WAN path (15 routers), CIT, n=1000 (paper Fig. 8b)",
		wanHops(),
		"WAN: 15 routers, diurnal utilization 5-30% — detection lower overall but peaks at night (~2-4 AM): CIT unsafe even remotely")
}

// theoryGapRow is shared with the ablation file: empirical vs theorem
// detection at one σ_T.
func theoryGapRow(o Options, sigmaT float64) (emp, theory float64, err error) {
	cfg := labConfig(o)
	cfg.SigmaT = sigmaT
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, 0, err
	}
	res, err := runAttack(sys, core.AttackConfig{
		Feature:      analytic.FeatureEntropy,
		WindowSize:   1000,
		TrainWindows: o.windows(120),
		EvalWindows:  o.windows(120),
		Workers:      o.Workers,
	})
	if err != nil {
		return 0, 0, err
	}
	return res.DetectionRate, res.TheoryDetectionRate, nil
}
