package experiment

import (
	"fmt"

	"linkpad/internal/adversary"
	"linkpad/internal/analytic"
	"linkpad/internal/core"
	"linkpad/internal/netem"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

func init() {
	register("ablation-crossmodel", AblationCrossModel)
}

// AblationCrossModel replays the Fig. 6 setting through the *exact*
// per-packet router with two crossover-traffic models at equal
// utilization: Poisson (the lab generator assumption) and packet trains
// (bursty, back-to-back batches — closer to real campus traffic). Longer
// busy periods disturb the padded PIATs more per cross-byte, so burstier
// cross traffic is better cover at the same utilization — a dimension the
// paper's lab generator could not sweep.
func AblationCrossModel(o Options) (*Table, error) {
	o = o.withDefaults()
	const (
		u   = 0.3
		svc = 16e-6 // 200 B on 100 Mbit/s, as in fig6
		n   = 1000
	)
	sys, err := core.NewSystem(labConfig(o))
	if err != nil {
		return nil, err
	}

	// makeSource assembles gateway → exact router with the chosen cross
	// model → PIAT stream, one independent replica per (model, class,
	// phase).
	makeSource := func(model int, class int, streamID uint64) (adversary.PIATSource, error) {
		gw, err := sys.Gateway(class, streamID)
		if err != nil {
			return nil, err
		}
		rng := xrand.New(o.Seed ^ streamID*0x9e3779b97f4a7c15 ^ uint64(model+1)<<32 ^ uint64(class+1)<<48)
		var cross traffic.Source
		switch model {
		case 0:
			cross, err = traffic.NewPoisson(u/svc, rng)
		case 1:
			// mean train length 5, arriving nearly at once (a burst from
			// a faster upstream link), so a whole train piles into the
			// queue ahead of an unlucky padded packet
			cross, err = traffic.NewTrain(u/svc, 5, svc/10, rng)
		default:
			return nil, fmt.Errorf("experiment: unknown cross model %d", model)
		}
		if err != nil {
			return nil, err
		}
		router, err := netem.NewRouter(gw, cross, svc, 0)
		if err != nil {
			return nil, err
		}
		return netem.NewDiffer(router), nil
	}

	t := &Table{
		ID:      "ablation-crossmodel",
		Title:   "Cross-traffic burstiness at equal utilization (exact router), CIT, n=1000",
		Columns: []string{"model", "var_emp", "ent_emp"},
	}
	windows := o.windows(60)
	rows := make([][]float64, 2)
	err = parMap(2, o.workers(), func(model int) error {
		row := []float64{float64(model)}
		for _, f := range []analytic.Feature{analytic.FeatureVariance, analytic.FeatureEntropy} {
			train := make([]adversary.PIATSource, 2)
			eval := make([]adversary.PIATSource, 2)
			for class := 0; class < 2; class++ {
				var err error
				// distinct replicas per feature and phase
				base := uint64(1000*int(f) + 1)
				if train[class], err = makeSource(model, class, base); err != nil {
					return err
				}
				if eval[class], err = makeSource(model, class, base+1); err != nil {
					return err
				}
			}
			att, err := adversary.Train(adversary.TrainConfig{
				Extractor:       adversary.Extractor{Feature: f},
				WindowSize:      n,
				WindowsPerClass: windows,
			}, sys.Labels(), train)
			if err != nil {
				return err
			}
			cm, err := att.Evaluate(eval, windows)
			if err != nil {
				return err
			}
			row = append(row, cm.DetectionRate())
		}
		rows[model] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.Notef("model codes: 0=poisson 1=trains(mean length 5, back-to-back); utilization %.1f on both", u)
	t.Notef("%d train/%d eval windows per class", windows, windows)
	return t, nil
}
