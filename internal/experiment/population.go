package experiment

import (
	"linkpad/internal/analytic"
	"linkpad/internal/core"
	"linkpad/internal/population"
)

func init() {
	registerCells("ext-disclosure", extDisclosureCells)
	register("ablation-population-padding", AblationPopulationPadding)
}

// disclosureRounds resolves the SDA observation budget. Unlike window
// counts, the budget must stay large enough to cover the slowest cell of
// the sweep or every high-cover cell would censor at the same value;
// scaling below the floor would flatten exactly the monotonicity the
// experiment exists to show.
func disclosureRounds(o Options) int {
	r := int(8000 * o.Scale)
	if r < 2500 {
		r = 2500
	}
	return r
}

// disclosurePopulations and disclosureCovers span the ext-disclosure
// sweep grid; cell i is (population i/len(covers), cover i%len(covers)).
var (
	disclosurePopulations = []int{24, 48, 96}
	disclosureCovers      = []float64{0, 1, 2, 4}
)

// extDisclosureCells measures the statistical disclosure attack against
// the shared batching mix: rounds-to-disclosure (how many mix rounds
// until the adversary identifies a target's contact set) as a function
// of the population size and the cover-traffic rate. Cover traffic is
// the population-scale analogue of link padding — dummy messages at a
// multiple of each user's payload rate, delivered to random recipients —
// and it resists SDA twice over: the target's observable sends carry
// less real signal and everyone else's dummies brighten the background.
// Rounds-to-disclosure grows monotonically with the cover rate at every
// population size; larger populations are also slower to disclose (the
// target appears in fewer rounds). Registered as a cell experiment:
// every (population, cover) cell is a pure function of (Options, cell),
// which is what lets linkpadsim checkpoint and resume the sweep.
var extDisclosureCells = &cellExperiment{
	title: "Statistical disclosure against the population mix: rounds-to-disclosure vs population size and cover rate",
	columns: []string{"users", "cover", "disclosed_frac", "mean_rounds",
		"mean_rounds_with", "mean_anonymity"},
	ncells: func(Options) int { return len(disclosurePopulations) * len(disclosureCovers) },
	run: func(o Options, cell, nested int) ([]float64, error) {
		sys, err := core.NewSystem(labConfig(o))
		if err != nil {
			return nil, err
		}
		n := disclosurePopulations[cell/len(disclosureCovers)]
		cover := disclosureCovers[cell%len(disclosureCovers)]
		res, err := runDisclosure(sys, core.PopulationSpec{
			Users:      n,
			Recipients: 60,
			CoverRate:  cover,
		}, population.DisclosureConfig{
			MaxRounds: disclosureRounds(o),
			Workers:   nested,
		})
		if err != nil {
			return nil, err
		}
		var roundsWith float64
		for _, tg := range res.Targets {
			roundsWith += float64(tg.RoundsWith)
		}
		roundsWith /= float64(len(res.Targets))
		return []float64{float64(n), cover, res.DisclosedFrac, res.MeanRounds,
			roundsWith, res.MeanAnonymity}, nil
	},
	notes: func(o Options, t *Table) {
		t.Notef("batch 8, 60 recipients, 3 contacts/user at weight 0.7, 8 targets spread over the population")
		t.Notef("budget %d rounds; undisclosed targets censor mean_rounds at the budget", disclosureRounds(o))
		t.Notef("cover = dummy rate as a multiple of the user's payload rate; dummies go to uniform recipients")
		t.Notef("mean_anonymity: normalized entropy of the adversary's final recipient estimate (1 = uniform)")
	},
}

// ExtDisclosure runs the ext-disclosure sweep without checkpointing;
// see extDisclosureCells.
func ExtDisclosure(o Options) (*Table, error) {
	return runCells("ext-disclosure", extDisclosureCells, o, "", 0)
}

// AblationPopulationPadding compares the padding policies at matched
// egress bandwidth against the per-flow population attack: every user's
// link emits ~100 pps whether the policy is CIT, VIT, or a per-user
// batching mix whose users add cover up to 100 pps (the raw, unpadded
// link is the no-countermeasure anchor). The attack combines the
// throughput fingerprint (windowed rate correlation) with the paper's
// PIAT class features. Timer policies erase the throughput fingerprint —
// the flow-level anonymity set collapses only to the rate class, and
// under VIT not even that — while batching leaves arrival-rate
// fluctuations on the wire, so the mix loses every flow at the same
// bandwidth price.
func AblationPopulationPadding(o Options) (*Table, error) {
	o = o.withDefaults()
	type policy struct {
		code  float64
		name  string
		mut   func(*core.Config)
		raw   bool
		cover float64 // CoverToPPS matching the timer policies' egress rate
	}
	policies := []policy{
		{0, "NONE", func(*core.Config) {}, true, 0},
		{1, "CIT", func(*core.Config) {}, false, 0},
		{2, "VIT-30us", func(c *core.Config) { c.SigmaT = 30e-6 }, false, 0},
		{3, "MIX-8", func(c *core.Config) { c.Mix = &core.MixSpec{K: 8} }, false, 100},
	}
	t := &Table{
		ID:    "ablation-population-padding",
		Title: "Per-flow correlation vs padding policy at matched overhead (24 users, 60 s flows)",
		Columns: []string{"policy", "flow_acc", "class_acc", "mean_rank",
			"mean_corr_true"},
	}
	duration := 60 * o.Scale
	if duration < 30 {
		duration = 30
	}
	rows := make([][]float64, len(policies))
	err := parMap(len(policies), o.workers(), func(i int) error {
		cfg := labConfig(o)
		policies[i].mut(&cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		res, err := runFlowCorrelation(sys, core.PopulationSpec{
			Users:      24,
			Recipients: 60,
			CoverToPPS: policies[i].cover,
		}, core.FlowCorrConfig{
			Duration:     duration,
			Raw:          policies[i].raw,
			Features:     []analytic.Feature{analytic.FeatureVariance, analytic.FeatureEntropy},
			TrainWindows: o.windows(120),
			Workers:      o.nestedWorkers(len(policies)),
		})
		if err != nil {
			return err
		}
		rows[i] = []float64{policies[i].code, res.Accuracy, res.ClassAccuracy,
			res.MeanRank, res.MeanCorrTrue}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	for _, p := range policies {
		t.Notef("policy %d = %s", int(p.code), p.name)
	}
	t.Notef("matched overhead: CIT/VIT links emit 1/tau = 100 pps; mix users add cover up to 100 pps; NONE is the unpadded anchor")
	t.Notef("%.0f s flows, rate window 1 s, class features variance+entropy at window 200, %d training windows/class on population links",
		duration, o.windows(120))
	t.Notef("mean_rank is the true user's rank in a flow's score ordering (1 = identified, %d/2 = chance within class)", 24)
	t.Notef("the SDA side of the trade-off is in ext-disclosure: batching mixes lose flows here but resist SDA only via cover")
	return t, nil
}
