package experiment

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// fastOpts keeps unit-test runtime low; the bench harness and CLI run at
// higher scales.
var fastOpts = Options{Scale: 0.25, Seed: 7}

func runTable(t *testing.T, id string) *Table {
	t.Helper()
	tbl, err := Run(id, fastOpts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tbl.ID != id {
		t.Fatalf("table ID = %q, want %q", tbl.ID, id)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("%s row %d: %d cells for %d columns", id, i, len(row), len(tbl.Columns))
		}
	}
	return tbl
}

func col(tbl *Table, name string) []float64 {
	idx := -1
	for j, c := range tbl.Columns {
		if c == name {
			idx = j
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(tbl.Rows))
	for i, row := range tbl.Rows {
		out[i] = row[idx]
	}
	return out
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"ablation-binwidth", "ablation-churn",
		"ablation-crossmodel", "ablation-hop-policies", "ablation-payload",
		"ablation-population-padding", "ablation-tap", "ablation-theorygap",
		"ablation-training", "ablation-watermark-defenses",
		"ablation-windowing", "baseline-policies", "ext-active",
		"ext-cascade", "ext-disclosure", "ext-features", "ext-impairments",
		"ext-online", "ext-sda-arms-race", "ext-sizes", "fig4a", "fig4b",
		"fig5a", "fig5b", "fig6", "fig8a", "fig8b", "multirate",
		"scale-disclosure", "scale-sda-ls", "validate-exactnet"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry has %v, want %v", names, want)
		}
	}
	if _, err := Run("nope", fastOpts); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestFig4aShape(t *testing.T) {
	tbl := runTable(t, "fig4a")
	// Densities are non-negative and each class's density peaks near the
	// center (offset 0) — the bell shape of paper Fig. 4(a).
	dLow := col(tbl, "density_10pps")
	dHigh := col(tbl, "density_40pps")
	center := len(dLow) / 2
	for i := range dLow {
		if dLow[i] < 0 || dHigh[i] < 0 {
			t.Fatal("negative density")
		}
	}
	if dLow[center] < dLow[0]*5 || dHigh[center] < dHigh[0]*5 {
		t.Errorf("densities not peaked at center: low %v->%v, high %v->%v",
			dLow[0], dLow[center], dHigh[0], dHigh[center])
	}
	// The high-rate class is more spread: lower peak density.
	if dHigh[center] >= dLow[center] {
		t.Errorf("high-rate peak %v should be below low-rate peak %v (r>1)",
			dHigh[center], dLow[center])
	}
}

func TestFig4bShape(t *testing.T) {
	tbl := runTable(t, "fig4b")
	ns := col(tbl, "n")
	varEmp := col(tbl, "var_emp")
	entEmp := col(tbl, "ent_emp")
	meanEmp := col(tbl, "mean_emp")
	last := len(ns) - 1
	// Variance and entropy climb to near-perfect detection by n=2000.
	if varEmp[last] < 0.9 || entEmp[last] < 0.9 {
		t.Errorf("large-n detection: var %v ent %v, want > 0.9", varEmp[last], entEmp[last])
	}
	// They improve with n overall.
	if varEmp[last] <= varEmp[0] || entEmp[last] <= entEmp[0] {
		t.Errorf("detection did not grow with n: var %v->%v ent %v->%v",
			varEmp[0], varEmp[last], entEmp[0], entEmp[last])
	}
	// Mean stays far below, near guessing.
	for i := range meanEmp {
		if meanEmp[i] > 0.75 {
			t.Errorf("mean detection at n=%v is %v, should stay near 0.5", ns[i], meanEmp[i])
		}
	}
	// Empirical tracks theory for variance/entropy at the largest n.
	varTh := col(tbl, "var_theory")
	entTh := col(tbl, "ent_theory")
	if diff := varEmp[last] - varTh[last]; diff < -0.15 || diff > 0.15 {
		t.Errorf("variance empirical %v vs theory %v", varEmp[last], varTh[last])
	}
	if diff := entEmp[last] - entTh[last]; diff < -0.15 || diff > 0.15 {
		t.Errorf("entropy empirical %v vs theory %v", entEmp[last], entTh[last])
	}
}

func TestFig5aShape(t *testing.T) {
	tbl := runTable(t, "fig5a")
	varEmp := col(tbl, "var_emp")
	entEmp := col(tbl, "ent_emp")
	rModel := col(tbl, "model_r")
	last := len(varEmp) - 1
	// CIT (sigma_T = 0) is detectable at n=2000; large sigma_T defeats it.
	if varEmp[0] < 0.9 || entEmp[0] < 0.9 {
		t.Errorf("sigma_T=0 detection: var %v ent %v, want > 0.9", varEmp[0], entEmp[0])
	}
	// At this test's reduced scale (60 eval windows) the Monte Carlo
	// noise on a 0.5 expectation is ~0.065, so bound loosely; the bench
	// harness at full scale pins this tighter.
	if varEmp[last] > 0.68 || entEmp[last] > 0.68 {
		t.Errorf("sigma_T=100us detection: var %v ent %v, want ~0.5", varEmp[last], entEmp[last])
	}
	// Model r decreases toward 1 monotonically.
	for i := 1; i < len(rModel); i++ {
		if rModel[i] > rModel[i-1]+1e-12 {
			t.Fatalf("model r not decreasing: %v", rModel)
		}
	}
	if rModel[last] > 1.05 {
		t.Errorf("model r at 100us = %v, want ~1", rModel[last])
	}
}

func TestFig5bShape(t *testing.T) {
	tbl := runTable(t, "fig5b")
	n99v := col(tbl, "n99_variance")
	n99e := col(tbl, "n99_entropy")
	// Required sample size explodes with sigma_T.
	for i := 1; i < len(n99v); i++ {
		if n99v[i] <= n99v[i-1] || n99e[i] <= n99e[i-1] {
			t.Fatal("n(99%) must increase with sigma_T")
		}
	}
	last := len(n99v) - 1
	if n99v[last] < 1e11 {
		t.Errorf("n99 at sigma_T=1ms = %v, want > 1e11 (paper's headline)", n99v[last])
	}
}

func TestFig6Shape(t *testing.T) {
	tbl := runTable(t, "fig6")
	util := col(tbl, "utilization")
	varEmp := col(tbl, "var_emp")
	entEmp := col(tbl, "ent_emp")
	meanEmp := col(tbl, "mean_emp")
	first, last := 0, len(util)-1
	// Detection falls with utilization for variance and entropy.
	if varEmp[last] >= varEmp[first] || entEmp[last] >= entEmp[first] {
		t.Errorf("detection did not fall with utilization: var %v->%v ent %v->%v",
			varEmp[first], varEmp[last], entEmp[first], entEmp[last])
	}
	// Entropy is the more robust feature under cross traffic (outliers):
	// compare at the highest utilization.
	if entEmp[last] < varEmp[last]-0.05 {
		t.Errorf("entropy (%v) should not fall below variance (%v) at u=0.5",
			entEmp[last], varEmp[last])
	}
	// Mean stays near guessing everywhere.
	for i := range meanEmp {
		if meanEmp[i] > 0.72 {
			t.Errorf("mean detection %v at u=%v", meanEmp[i], util[i])
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	campus := runTable(t, "fig8a")
	wan := runTable(t, "fig8b")
	avg := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	campusEnt := avg(col(campus, "ent_emp"))
	wanEnt := avg(col(wan, "ent_emp"))
	// Campus detection stays high; WAN is substantially lower.
	if campusEnt < 0.8 {
		t.Errorf("campus mean entropy detection = %v, want > 0.8", campusEnt)
	}
	if wanEnt >= campusEnt-0.05 {
		t.Errorf("WAN (%v) should be clearly below campus (%v)", wanEnt, campusEnt)
	}
	// WAN night hours (2-4 AM rows) beat the afternoon (14-16) —
	// the paper's "2:00AM" observation.
	hours := col(wan, "hour")
	ent := col(wan, "ent_emp")
	night, day := 0.0, 0.0
	var nNight, nDay int
	for i, h := range hours {
		switch h {
		case 2, 4:
			night += ent[i]
			nNight++
		case 14, 16:
			day += ent[i]
			nDay++
		}
	}
	if nNight == 0 || nDay == 0 {
		t.Fatal("missing night/day rows")
	}
	if night/float64(nNight) <= day/float64(nDay) {
		t.Errorf("WAN night detection (%v) should exceed afternoon (%v)",
			night/float64(nNight), day/float64(nDay))
	}
}

func TestMultiRate(t *testing.T) {
	tbl := runTable(t, "multirate")
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 class rows, got %d", len(tbl.Rows))
	}
	recalls := col(tbl, "recall")
	var sum float64
	for _, r := range recalls {
		if r < 0 || r > 1 {
			t.Fatalf("recall %v out of range", r)
		}
		sum += r
	}
	// Four CIT classes at the gateway should be far above 0.25 guessing.
	if sum/4 < 0.6 {
		t.Errorf("mean recall = %v, want > 0.6", sum/4)
	}
}

func TestAblationBinWidth(t *testing.T) {
	tbl := runTable(t, "ablation-binwidth")
	det := col(tbl, "ent_emp")
	widths := col(tbl, "bin_width_us")
	// The default 2us bin must be near the best of the sweep, and the
	// coarsest bin must be clearly worse than the best.
	best, atDefault, coarsest := 0.0, 0.0, det[len(det)-1]
	for i, w := range widths {
		if det[i] > best {
			best = det[i]
		}
		if w == 2 {
			atDefault = det[i]
		}
	}
	if atDefault < best-0.1 {
		t.Errorf("default bin width detection %v far below best %v", atDefault, best)
	}
	if coarsest > best-0.05 {
		t.Errorf("coarsest bin (%v) should lose information vs best (%v)", coarsest, best)
	}
}

func TestAblationTraining(t *testing.T) {
	tbl := runTable(t, "ablation-training")
	if len(tbl.Rows) != 3 {
		t.Fatalf("expected 3 feature rows")
	}
	kde := col(tbl, "kde_emp")
	gauss := col(tbl, "gaussfit_emp")
	// Variance and entropy rows: both trainings should detect well here
	// (feature distributions are near-normal at the gateway).
	for i := 1; i <= 2; i++ {
		if kde[i] < 0.85 || gauss[i] < 0.85 {
			t.Errorf("row %d: kde %v gauss %v, want both > 0.85", i, kde[i], gauss[i])
		}
	}
}

func TestAblationPayload(t *testing.T) {
	tbl := runTable(t, "ablation-payload")
	ent := col(tbl, "ent_emp")
	// The leak persists across payload models.
	for i, v := range ent {
		if v < 0.8 {
			t.Errorf("model row %d: entropy detection %v, want > 0.8 (leak persists)", i, v)
		}
	}
}

func TestAblationTap(t *testing.T) {
	tbl := runTable(t, "ablation-tap")
	res := col(tbl, "resolution_us")
	ent := col(tbl, "ent_emp")
	var perfect, coarse float64
	for i := range res {
		if res[i] == 0 && col(tbl, "loss_prob")[i] == 0 {
			perfect = ent[i]
		}
		if res[i] == 20 {
			coarse = ent[i]
		}
	}
	if perfect < 0.9 {
		t.Errorf("perfect tap detection = %v", perfect)
	}
	if coarse > perfect-0.2 {
		t.Errorf("20us clock (%v) should destroy most of the leak vs perfect (%v)", coarse, perfect)
	}
}

func TestAblationTheoryGap(t *testing.T) {
	tbl := runTable(t, "ablation-theorygap")
	emp := col(tbl, "ent_emp")
	th := col(tbl, "ent_theory")
	// At sigma_T = 0 the two should roughly agree; at mid sigma_T the
	// empirical attack is allowed to exceed theory (shape leakage), never
	// to fall dramatically below it.
	if diff := emp[0] - th[0]; diff < -0.15 || diff > 0.15 {
		t.Errorf("sigma_T=0: emp %v vs theory %v", emp[0], th[0])
	}
	for i := range emp {
		if emp[i] < th[i]-0.15 {
			t.Errorf("row %d: empirical %v far below theory %v", i, emp[i], th[i])
		}
	}
}

// The policy comparison: CIT detectable by second-order features, VIT by
// none, adaptive masking by everything (including the mean) — but cheap.
func TestBaselinePolicies(t *testing.T) {
	tbl := runTable(t, "baseline-policies")
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 policy rows")
	}
	mean := col(tbl, "mean_emp")
	ent := col(tbl, "ent_emp")
	pps := col(tbl, "padded_pps_low")
	delay := col(tbl, "mean_delay_ms")
	// CIT (row 0): entropy detects, mean does not.
	if ent[0] < 0.9 || mean[0] > 0.75 {
		t.Errorf("CIT: ent %v mean %v", ent[0], mean[0])
	}
	// VIT (row 1): nothing detects well.
	if ent[1] > 0.72 || mean[1] > 0.72 {
		t.Errorf("VIT: ent %v mean %v", ent[1], mean[1])
	}
	// Adaptive (row 2): even the mean feature detects, but bandwidth is
	// far below CIT's 100 pps and delay is worse.
	if mean[2] < 0.95 {
		t.Errorf("adaptive: mean detection %v, want ~1", mean[2])
	}
	if pps[2] > 0.6*pps[0] {
		t.Errorf("adaptive padded rate %v should undercut CIT %v", pps[2], pps[0])
	}
	if delay[2] <= delay[0] {
		t.Errorf("adaptive delay %v should exceed CIT %v", delay[2], delay[0])
	}
	// Mix (row 3): detected at first order, cheapest in bandwidth
	// (sends only the payload), worst in delay (waits for K packets).
	if mean[3] < 0.95 {
		t.Errorf("mix: mean detection %v, want ~1", mean[3])
	}
	if pps[3] > 0.2*pps[0] {
		t.Errorf("mix padded rate %v should be ~ the payload rate", pps[3])
	}
	if delay[3] <= delay[2] {
		t.Errorf("mix delay %v should exceed adaptive's %v", delay[3], delay[2])
	}
}

// Size-based identification: unpadded sizes identify the application,
// constant padding reduces the adversary to exact guessing, buckets sit
// in between on overhead.
func TestExtSizes(t *testing.T) {
	tbl := runTable(t, "ext-sizes")
	if len(tbl.Rows) != 3 {
		t.Fatalf("expected 3 padder rows")
	}
	det := col(tbl, "detection")
	ovInter := col(tbl, "overhead_interactive")
	if det[0] < 0.99 {
		t.Errorf("unpadded size detection = %v, want ~1", det[0])
	}
	if det[2] != 0.5 {
		t.Errorf("constant-pad detection = %v, want exactly 0.5", det[2])
	}
	if det[1] <= det[2] {
		t.Errorf("bucket detection %v should exceed constant %v", det[1], det[2])
	}
	// Overheads: none = 1; constant is the most expensive for the small-
	// packet profile.
	if ovInter[0] != 1 {
		t.Errorf("NoPad overhead = %v", ovInter[0])
	}
	if !(ovInter[2] > ovInter[1] && ovInter[1] >= 1) {
		t.Errorf("overhead ordering broken: %v", ovInter)
	}
}

// Burstier cross traffic at equal utilization gives better cover: both
// second-order features detect less against train cross traffic than
// against Poisson.
func TestAblationCrossModel(t *testing.T) {
	tbl := runTable(t, "ablation-crossmodel")
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected 2 model rows")
	}
	ent := col(tbl, "ent_emp")
	if ent[1] > ent[0]+0.05 {
		t.Errorf("bursty cross (%v) should not beat Poisson cover (%v)", ent[1], ent[0])
	}
	// At u=0.3 with Poisson cross the entropy feature still detects well
	// (matches fig6 at the same point).
	if ent[0] < 0.75 {
		t.Errorf("Poisson-cross entropy detection = %v, want > 0.75", ent[0])
	}
}

// The IQR extension behaves like the other second-order features: strong
// detection against CIT at the gateway by n=1000.
func TestExtFeatures(t *testing.T) {
	tbl := runTable(t, "ext-features")
	iqr := col(tbl, "iqr_emp")
	ent := col(tbl, "ent_emp")
	last := len(iqr) - 1
	if iqr[last] < 0.85 {
		t.Errorf("IQR detection at n=1000 = %v, want > 0.85", iqr[last])
	}
	if ent[last] < 0.9 {
		t.Errorf("entropy detection at n=1000 = %v", ent[last])
	}
}

// Fast-path and exact-router detection rates must agree at the attack
// level — the end-to-end justification for the stationary sampler.
func TestValidateExactNet(t *testing.T) {
	tbl := runTable(t, "validate-exactnet")
	varE := col(tbl, "var_emp")
	entE := col(tbl, "ent_emp")
	if len(varE) != 2 {
		t.Fatalf("expected fast and exact rows")
	}
	if d := varE[0] - varE[1]; d < -0.12 || d > 0.12 {
		t.Errorf("variance detection: fast %v vs exact %v", varE[0], varE[1])
	}
	if d := entE[0] - entE[1]; d < -0.12 || d > 0.12 {
		t.Errorf("entropy detection: fast %v vs exact %v", entE[0], entE[1])
	}
}

// The online extension: the anytime adversary breaks CIT with large
// windows almost surely, and the decision cost is measured in stream
// seconds consistent with windows × n × τ.
func TestExtOnline(t *testing.T) {
	tbl := runTable(t, "ext-online")
	ns := col(tbl, "n")
	det := col(tbl, "anytime_det")
	decided := col(tbl, "decided_frac")
	meanW := col(tbl, "mean_windows_to_dec")
	meanS := col(tbl, "mean_seconds_to_dec")
	last := len(ns) - 1
	if det[last] < 0.9 {
		t.Errorf("anytime detection at n=%v = %v, want > 0.9", ns[last], det[last])
	}
	if decided[last] < 0.8 {
		t.Errorf("decided fraction at n=%v = %v, want > 0.8", ns[last], decided[last])
	}
	for i := range ns {
		if decided[i] < 0 || decided[i] > 1 {
			t.Fatalf("decided fraction %v out of range", decided[i])
		}
		if decided[i] > 0 {
			if meanW[i] < 1 || meanW[i] > 12 {
				t.Errorf("n=%v: mean windows to decision = %v", ns[i], meanW[i])
			}
			// Stream time per window is ~ n·τ (PIAT mean is the padding
			// period, 10 ms).
			want := meanW[i] * ns[i] * 10e-3
			if meanS[i] < 0.7*want || meanS[i] > 1.3*want {
				t.Errorf("n=%v: mean seconds %v inconsistent with %v windows (~%v s)",
					ns[i], meanS[i], meanW[i], want)
			}
		}
	}
}

// The windowing ablation: for memoryless payload the i.i.d.-replica and
// continuous-stream protocols agree within Monte Carlo noise (the fast
// protocol's license), and accumulating evidence across windows never
// loses to single-window decisions.
func TestAblationWindowing(t *testing.T) {
	tbl := runTable(t, "ablation-windowing")
	if len(tbl.Rows) != 3 {
		t.Fatalf("expected 3 payload-model rows")
	}
	replica := col(tbl, "replica_det")
	stream := col(tbl, "stream_det")
	anytime := col(tbl, "anytime_det")
	if d := replica[0] - stream[0]; d < -0.1 || d > 0.1 {
		t.Errorf("poisson: replica %v vs stream %v differ beyond MC noise", replica[0], stream[0])
	}
	for i := range anytime {
		if anytime[i] < stream[i]-0.1 {
			t.Errorf("row %d: anytime %v falls below single-window %v", i, anytime[i], stream[i])
		}
	}
}

// Sweeps must be deterministic in the worker count: every point — and
// every Monte Carlo trial within a point — draws randomness only from its
// own seed, so the rendered tables are byte-identical at any parallelism
// width (1, 4, and all CPUs, including the nested trial workers).
func TestParallelDeterminism(t *testing.T) {
	render := func(tbl *Table) string {
		var sb strings.Builder
		if err := tbl.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	for _, id := range []string{"fig6", "fig4b", "ext-online", "ext-active",
		"ablation-watermark-defenses"} {
		ref, err := Run(id, Options{Scale: 0.12, Seed: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		refText := render(ref)
		for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
			got, err := Run(id, Options{Scale: 0.12, Seed: 5, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if text := render(got); text != refText {
				t.Fatalf("%s: table at Workers=%d differs from Workers=1:\n%s\nvs\n%s",
					id, workers, text, refText)
			}
		}
	}
}

func TestParMap(t *testing.T) {
	// All indices visited exactly once.
	n := 100
	visited := make([]int, n)
	if err := parMap(n, 7, func(i int) error { visited[i]++; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
	// Errors propagate and stop the sweep early.
	boom := func(i int) error {
		if i == 3 {
			return errTest
		}
		return nil
	}
	if err := parMap(10, 2, boom); err != errTest {
		t.Errorf("error not propagated: %v", err)
	}
	if err := parMap(0, 4, func(int) error { return errTest }); err != nil {
		t.Errorf("empty sweep should not error: %v", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestTableWriters(t *testing.T) {
	tbl := &Table{
		ID:      "demo",
		Title:   "demo table",
		Columns: []string{"x", "y"},
	}
	if err := tbl.AddRow(1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow(2, 1e-7); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow(1, 2, 3); err == nil {
		t.Error("mismatched row accepted")
	}
	tbl.Notef("note %d", 42)

	var text bytes.Buffer
	if err := tbl.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"demo table", "note 42", "x", "y", "1e-07"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}

	var csv bytes.Buffer
	if err := tbl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,y" {
		t.Errorf("csv output:\n%s", csv.String())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
	if (Options{Scale: 0.001}).windows(100) != 24 {
		t.Error("window floor broken")
	}
	if (Options{Scale: 2}.withDefaults()).windows(100) != 200 {
		t.Error("window scaling broken")
	}
}

// The disclosure experiment's headline claim: at every fixed population
// size, rounds-to-disclosure increases monotonically with the cover
// rate (and the residual anonymity of the adversary's estimate rises
// with it). Without cover, every population must disclose fully.
func TestExtDisclosureCoverMonotone(t *testing.T) {
	tbl := runTable(t, "ext-disclosure")
	users := col(tbl, "users")
	cover := col(tbl, "cover")
	disclosed := col(tbl, "disclosed_frac")
	rounds := col(tbl, "mean_rounds")
	anon := col(tbl, "mean_anonymity")
	perUsers := map[float64][]int{}
	for i := range users {
		perUsers[users[i]] = append(perUsers[users[i]], i)
	}
	if len(perUsers) < 2 {
		t.Fatalf("expected at least two population sizes, got %d", len(perUsers))
	}
	for n, idx := range perUsers {
		for k := 1; k < len(idx); k++ {
			i, j := idx[k-1], idx[k]
			if cover[j] <= cover[i] {
				t.Fatalf("users=%v: cover levels not ascending", n)
			}
			if rounds[j] <= rounds[i] {
				t.Errorf("users=%v: mean rounds %v at cover %v not above %v at cover %v",
					n, rounds[j], cover[j], rounds[i], cover[i])
			}
			if anon[j] <= anon[i] {
				t.Errorf("users=%v: anonymity %v at cover %v not above %v at cover %v",
					n, anon[j], cover[j], anon[i], cover[i])
			}
		}
		// Cover can only hurt disclosure coverage, and without cover the
		// attack must disclose most targets (all of them in the smallest
		// population, where every target appears in plenty of rounds).
		for _, i := range idx[1:] {
			if disclosed[i] > disclosed[idx[0]] {
				t.Errorf("users=%v: disclosed %v at cover %v exceeds %v at cover 0",
					n, disclosed[i], cover[i], disclosed[idx[0]])
			}
		}
		if disclosed[idx[0]] < 0.75 {
			t.Errorf("users=%v: cover 0 disclosed only %v of targets", n, disclosed[idx[0]])
		}
		if n == 24 && disclosed[idx[0]] != 1 {
			t.Errorf("users=24: cover 0 disclosed %v of targets, want all", disclosed[idx[0]])
		}
	}
}

// The cascade extension's headline claim: end-to-end correlation
// accuracy degrades — and the degree of anonymity rises — with the hop
// count at matched per-hop overhead. The unpadded anchor loses every
// flow; one CIT hop erases the throughput fingerprint but leaks the rate
// class at the exit; the second hop erases the class leak too (its
// blocking channel sees the upstream's constant 1/τ rate, not the
// payload rate).
func TestExtCascadeHopsProtect(t *testing.T) {
	tbl := runTable(t, "ext-cascade")
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 hop-count rows, got %d", len(tbl.Rows))
	}
	hops := col(tbl, "hops")
	acc := col(tbl, "flow_acc")
	classAcc := col(tbl, "class_acc")
	anon := col(tbl, "anonymity")
	corr := col(tbl, "mean_corr_true")
	pps := col(tbl, "route_pps")
	dummy := col(tbl, "dummy_frac")
	// Unpadded anchor: every flow matched, fingerprint intact, no
	// residual anonymity.
	if acc[0] != 1 || corr[0] < 0.99 || anon[0] > 0.2 {
		t.Errorf("unpadded anchor: acc %v corr %v anon %v", acc[0], corr[0], anon[0])
	}
	// Correlation accuracy degrades with hop count...
	if acc[1] > 0.5 || acc[3] > acc[1] {
		t.Errorf("flow accuracy should degrade with hops: %v", acc)
	}
	for i := 1; i < len(corr); i++ {
		if corr[i] > 0.3 || corr[i] < -0.3 {
			t.Errorf("hops=%v: padding should erase the fingerprint, corr %v", hops[i], corr[i])
		}
	}
	// ...the first hop still leaks the class, deeper routes do not...
	if classAcc[1] < 0.85 {
		t.Errorf("one hop should leak the class at the exit, class acc %v", classAcc[1])
	}
	if classAcc[3] > 0.7 || classAcc[1] < classAcc[3]+0.2 {
		t.Errorf("class leak should die with depth: %v", classAcc)
	}
	// ...and the degree of anonymity rises with every hop.
	for i := 1; i < len(anon); i++ {
		if anon[i] < anon[i-1]-0.02 {
			t.Errorf("anonymity not rising with hops: %v", anon)
		}
	}
	if anon[1] < anon[0]+0.2 || anon[3] < anon[1]+0.1 {
		t.Errorf("anonymity gains too small: %v", anon)
	}
	// Matched overhead: every hop adds a 100 pps padded link; dummies are
	// minted at the entry only, so the route-level dummy fraction dilutes
	// with depth.
	for i := 1; i < len(pps); i++ {
		if want := 100 * hops[i]; pps[i] < want-2 || pps[i] > want+2 {
			t.Errorf("hops=%v: route pps %v, want ~%v", hops[i], pps[i], want)
		}
		if dummy[i] >= dummy[i-1] && i > 1 {
			t.Errorf("dummy fraction should dilute with depth: %v", dummy)
		}
	}
	if dummy[1] < 0.6 || dummy[1] > 0.85 {
		t.Errorf("entry-hop dummy fraction %v, want ~0.75", dummy[1])
	}
}

// The hop-policy ablation: at equal bandwidth, every timer-entry route
// protects both the flow and (with depth 2) mostly the class, and hop
// order matters — a batching mix in front of a timer hop re-introduces
// the class leak, because the mix's payload-rate bursts drive the
// downstream timer's blocking channel.
func TestAblationHopPolicies(t *testing.T) {
	tbl := runTable(t, "ablation-hop-policies")
	if len(tbl.Rows) != 5 {
		t.Fatalf("expected 5 route rows, got %d", len(tbl.Rows))
	}
	acc := col(tbl, "flow_acc")
	classAcc := col(tbl, "class_acc")
	anon := col(tbl, "anonymity")
	pps := col(tbl, "route_pps")
	const citcit, vitvit, citvit, citmix, mixcit = 0, 1, 2, 3, 4
	for i, a := range acc {
		if a > 0.5 {
			t.Errorf("route %d: two padded hops should break per-flow matching, acc %v", i, a)
		}
	}
	// Equal bandwidth for the timer-entry routes; the mix-entry route
	// pads nothing and rides cheaper.
	for _, i := range []int{citcit, vitvit, citvit, citmix} {
		if pps[i] < 195 || pps[i] > 205 {
			t.Errorf("route %d: pps %v, want ~200", i, pps[i])
		}
	}
	if pps[mixcit] > 150 {
		t.Errorf("mix-entry route pps %v should undercut the timer routes", pps[mixcit])
	}
	// Hop order: mix in front of the timer leaks the class; timer-entry
	// routes mostly suppress it.
	if classAcc[mixcit] < 0.85 {
		t.Errorf("MIX8+CIT should leak the class, class acc %v", classAcc[mixcit])
	}
	for _, i := range []int{citcit, vitvit, citvit, citmix} {
		if classAcc[i] > 0.75 {
			t.Errorf("route %d: timer-entry route leaks the class, acc %v", i, classAcc[i])
		}
		if classAcc[mixcit] < classAcc[i]+0.2 {
			t.Errorf("mix-entry leak (%v) should clearly exceed route %d (%v)",
				classAcc[mixcit], i, classAcc[i])
		}
	}
	if anon[mixcit] >= anon[citcit] {
		t.Errorf("the leaky mix-entry route should be least anonymous: %v vs %v",
			anon[mixcit], anon[citcit])
	}
}

// The population padding ablation: the unpadded anchor loses every flow,
// timer policies erase the throughput fingerprint (correlation ≈ 0,
// matching near chance) while CIT's variance leak still identifies the
// class, and the batching mix leaves the fingerprint on the wire even at
// matched overhead.
func TestAblationPopulationPadding(t *testing.T) {
	tbl := runTable(t, "ablation-population-padding")
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 policy rows, got %d", len(tbl.Rows))
	}
	acc := col(tbl, "flow_acc")
	classAcc := col(tbl, "class_acc")
	corr := col(tbl, "mean_corr_true")
	const none, cit, vit, mix = 0, 1, 2, 3
	if acc[none] != 1 || corr[none] < 0.99 {
		t.Errorf("unpadded anchor should be fully correlated: acc %v corr %v", acc[none], corr[none])
	}
	for _, p := range []int{cit, vit} {
		if acc[p] > 0.5 {
			t.Errorf("policy %d: timer padding should break per-flow matching, acc %v", p, acc[p])
		}
		if corr[p] > 0.3 || corr[p] < -0.3 {
			t.Errorf("policy %d: timer padding should erase the fingerprint, corr %v", p, corr[p])
		}
	}
	if classAcc[cit] < 0.7 {
		t.Errorf("CIT's variance leak should identify the class, class acc %v", classAcc[cit])
	}
	if acc[mix] < 0.9 || corr[mix] < 0.8 {
		t.Errorf("batching should leave the fingerprint on the wire: acc %v corr %v", acc[mix], corr[mix])
	}
}

// The active watermark headline: detection falls monotonically from the
// unpadded anchor through CIT/VIT and the batching mix to the two-hop
// cascade at every chaff amplitude, and rises with amplitude within
// every policy. The cascade destroys the watermark outright — the inner
// hop's timer only ever sees the entry hop's constant 1/tau.
func TestExtActivePolicyTiers(t *testing.T) {
	tbl := runTable(t, "ext-active")
	if len(tbl.Rows) != 15 {
		t.Fatalf("expected 5 policies x 3 amplitudes = 15 rows, got %d", len(tbl.Rows))
	}
	det := col(tbl, "det_rate")
	classAcc := col(tbl, "class_acc")
	anon := col(tbl, "anonymity")
	pps := col(tbl, "route_pps")
	inj := col(tbl, "injected_pps")
	const policies, amps = 5, 3
	const none, cit, vit, mix, casc = 0, 1, 2, 3, 4
	at := func(v []float64, p, a int) float64 { return v[p*amps+a] }
	for a := 0; a < amps; a++ {
		// Countermeasure tiers, non-increasing at matched overhead.
		for p := 1; p < policies; p++ {
			if at(det, p, a) > at(det, p-1, a) {
				t.Errorf("amp %d: policy %d detects more than policy %d (%v > %v)",
					a, p, p-1, at(det, p, a), at(det, p-1, a))
			}
		}
		if at(det, none, a) < 0.9 {
			t.Errorf("amp %d: unpadded anchor should be detected, det %v", a, at(det, none, a))
		}
		if at(det, casc, a) != 0 {
			t.Errorf("amp %d: the cascade should destroy the watermark, det %v", a, at(det, casc, a))
		}
		if at(anon, casc, a) < at(anon, none, a)+0.2 {
			t.Errorf("amp %d: cascade anonymity %v should clearly exceed the anchor's %v",
				a, at(anon, casc, a), at(anon, none, a))
		}
	}
	for p := 0; p < policies; p++ {
		// More chaff, more signal (weakly) — and a higher attacker bill.
		for a := 1; a < amps; a++ {
			if at(det, p, a) < at(det, p, a-1) {
				t.Errorf("policy %d: detection should rise with amplitude: %v < %v",
					p, at(det, p, a), at(det, p, a-1))
			}
			if at(inj, p, a) <= at(inj, p, a-1) {
				t.Errorf("policy %d: injected pps should rise with amplitude", p)
			}
		}
		// Matched overhead: timers hold the 100 pps wire rate, the
		// cascade pays double, the anchor forwards payload+chaff only.
		wantPPS := 100.0
		switch p {
		case none:
			if at(pps, p, 0) > 50 {
				t.Errorf("unpadded route pps %v, want payload-only", at(pps, p, 0))
			}
			continue
		case mix:
			wantPPS = 110 // cover tops users up toward 100 pps, plus chaff
		case casc:
			wantPPS = 200
		}
		for a := 0; a < amps; a++ {
			if got := at(pps, p, a); got < wantPPS-12 || got > wantPPS+12 {
				t.Errorf("policy %d amp %d: route pps %v, want ~%v", p, a, got, wantPPS)
			}
		}
	}
	// The Raw anchor trains no classifier; padded policies still leak
	// class structure through the exit tap at low depth.
	if classAcc[0] != 0 {
		t.Errorf("raw anchor class acc %v, want 0", classAcc[0])
	}
	if at(classAcc, cit, 0) < 0.6 {
		t.Errorf("single CIT hop should leak the class, acc %v", at(classAcc, cit, 0))
	}
}

// The watermark-defense ablation: one CIT hop leaks keyed chaff through
// its blocking channel, any re-padding second hop kills it at equal
// bandwidth — except a mix *in front of* the timer, which forwards the
// chaff rate pattern into the downstream blocking channel. Delay-jitter
// watermarks die at the first re-timing hop regardless of policy.
func TestAblationWatermarkDefenses(t *testing.T) {
	tbl := runTable(t, "ablation-watermark-defenses")
	if len(tbl.Rows) != 10 {
		t.Fatalf("expected 5 routes x 2 modes = 10 rows, got %d", len(tbl.Rows))
	}
	det := col(tbl, "det_rate")
	inj := col(tbl, "injected_pps")
	delay := col(tbl, "added_delay_ms")
	pps := col(tbl, "route_pps")
	const modes = 2
	const cit, citcit, vitvit, citmix, mixcit = 0, 1, 2, 3, 4
	const chaff, jitter = 0, 1
	at := func(v []float64, r, m int) float64 { return v[r*modes+m] }
	// Chaff mode: the single hop and the mix-entry route leak, the other
	// two-hop routes protect.
	if at(det, cit, chaff) < 0.4 {
		t.Errorf("single CIT hop should leak chaff, det %v", at(det, cit, chaff))
	}
	if at(det, mixcit, chaff) < 0.5 {
		t.Errorf("MIX8+CIT should forward the chaff pattern into the timer, det %v",
			at(det, mixcit, chaff))
	}
	for _, r := range []int{citcit, vitvit, citmix} {
		if at(det, r, chaff) > 0.1 {
			t.Errorf("route %d: a re-padding second hop should kill the chaff watermark, det %v",
				r, at(det, r, chaff))
		}
		if at(det, mixcit, chaff) < at(det, r, chaff)+0.3 {
			t.Errorf("hop order should decide the leak: MIX8+CIT %v vs route %d %v",
				at(det, mixcit, chaff), r, at(det, r, chaff))
		}
	}
	// Delay mode: the first re-timing hop erases the imprinted timing on
	// every route, and the injection costs latency, not packets.
	for r := cit; r <= mixcit; r++ {
		if at(det, r, jitter) > 0.1 {
			t.Errorf("route %d: delay watermark should die at the first re-timing hop, det %v",
				r, at(det, r, jitter))
		}
		if at(inj, r, jitter) != 0 {
			t.Errorf("route %d: delay mode injects no packets, got %v pps", r, at(inj, r, jitter))
		}
		if at(delay, r, jitter) < 20 {
			t.Errorf("route %d: delay mode should cost visible latency, got %v ms", r, at(delay, r, jitter))
		}
		if at(delay, r, chaff) != 0 {
			t.Errorf("route %d: chaff mode imposes no delay, got %v ms", r, at(delay, r, chaff))
		}
	}
	// Equal bandwidth on the timer-entry routes; the mix-entry route
	// pads nothing and rides cheaper.
	for _, r := range []int{citcit, vitvit, citmix} {
		for m := 0; m < modes; m++ {
			if at(pps, r, m) < 195 || at(pps, r, m) > 205 {
				t.Errorf("route %d mode %d: pps %v, want ~200", r, m, at(pps, r, m))
			}
		}
	}
	if at(pps, mixcit, chaff) > 150 {
		t.Errorf("mix-entry route pps %v should undercut the timer routes", at(pps, mixcit, chaff))
	}
}
