// Package experiment reproduces the paper's evaluation section: one
// runner per figure (4a, 4b, 5a, 5b, 6, 8a, 8b) plus the §6 multi-rate
// extension and ablation studies of the reproduction's own design
// choices. Each runner returns a Table whose rows are the series the
// paper plots; the bench harness and the linkpadsim CLI render them.
// Beyond the figures, ext-* runners extend the study to new scenario
// axes (continuous sessions, populations, cascades, the active
// watermark adversary) and ablation-* runners vary one design choice at
// matched budgets; PAPER.md maps every paper claim to its runner.
//
// Determinism contract: a Table is a pure function of (experiment ID,
// Options.Scale, Options.Seed). Runners fan sweep cells out through
// parMap, every cell derives its randomness from its own (seed, cell)
// streams, and nested engines receive bounded nested workers — so
// tables are byte-identical at any Options.Workers, a property CI
// enforces with golden tables (testdata/golden/) and the
// worker-invariance tests.
package experiment

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Options control the Monte Carlo effort and reproducibility of a runner.
type Options struct {
	// Scale multiplies the number of training/evaluation windows:
	// 1.0 is full fidelity, smaller values run proportionally faster.
	// Zero means 1.0.
	Scale float64
	// Seed is the master seed. Zero means 1.
	Seed uint64
	// Workers bounds sweep parallelism. Zero means all CPUs
	// (GOMAXPROCS). Results are identical for any worker count: every
	// sweep point — and every Monte Carlo trial within a point — derives
	// its randomness from its own seed.
	Workers int
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// windows scales a baseline window count, keeping a floor that preserves
// statistical meaning even in -short runs.
func (o Options) windows(base int) int {
	n := int(math.Round(float64(base) * o.Scale))
	if n < 24 {
		n = 24
	}
	return n
}

// Table is one experiment's result: named numeric columns, one row per
// x-axis point, with free-form notes for calibration context.
type Table struct {
	// ID is the registry key, e.g. "fig4b".
	ID string
	// Title describes the experiment.
	Title string
	// Columns names the numeric columns.
	Columns []string
	// Rows holds the data; every row has len(Columns) values.
	Rows [][]float64
	// Notes carries measurement context (calibrated r, parameters, ...).
	Notes []string
}

// AddRow appends a row, which must match the column count.
func (t *Table) AddRow(vals ...float64) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("experiment: row has %d values, table %q has %d columns",
			len(vals), t.ID, len(t.Columns))
	}
	t.Rows = append(t.Rows, vals)
	return nil
}

// Notef appends a formatted note.
func (t *Table) Notef(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the table as an aligned text report.
func (t *Table) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for j, c := range t.Columns {
		widths[j] = len(c)
	}
	for i, row := range t.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = formatCell(v)
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	head := make([]string, len(t.Columns))
	for j, c := range t.Columns {
		head[j] = fmt.Sprintf("%*s", widths[j], c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, "  ")); err != nil {
		return err
	}
	for _, row := range cells {
		line := make([]string, len(row))
		for j, c := range row {
			line[j] = fmt.Sprintf("%*s", widths[j], c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(line, "  ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = formatCell(v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// formatCell renders a float compactly: integers without decimals, small
// magnitudes in scientific notation.
func formatCell(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15 && (v == 0 || math.Abs(v) >= 1):
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Runner produces one experiment table.
type Runner func(Options) (*Table, error)

// registry maps experiment IDs to runners; populated by init functions in
// the figure and extension files.
var registry = map[string]Runner{}

// register adds a runner; duplicate IDs panic at init time.
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiment: duplicate id " + id)
	}
	registry[id] = r
}

// Names returns all experiment IDs in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, o Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, errors.New("experiment: unknown id " + id +
			" (known: " + strings.Join(Names(), ", ") + ")")
	}
	return r(o.withDefaults())
}
