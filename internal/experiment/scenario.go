package experiment

import (
	"context"

	"linkpad/internal/active"
	"linkpad/internal/analytic"
	"linkpad/internal/cascade"
	"linkpad/internal/core"
	"linkpad/internal/population"
)

// scenario.go: the runners' bridge onto the unified scenario API. Every
// cell executes through Build + Scenario.Run; the helpers below keep the
// cell bodies as terse as the old per-protocol methods while routing
// through the one path. Worker widths and Monte Carlo budgets ride
// inside the protocol configs the cells already compute (Options.Scale
// is applied by the cells themselves, windows()/disclosureRounds(), so
// RunOptions stays zero here).

// runScenario builds and executes one spec with default options.
func runScenario(sys *core.System, spec core.Spec) (*core.Result, error) {
	sc, err := sys.Build(spec)
	if err != nil {
		return nil, err
	}
	return sc.Run(context.Background(), core.RunOptions{})
}

func runAttackSet(sys *core.System, cfg core.AttackConfig, features []analytic.Feature) ([]*core.AttackResult, error) {
	res, err := runScenario(sys, core.AttackSetSpec{Attack: cfg, Features: features})
	if err != nil {
		return nil, err
	}
	return res.AttackSet, nil
}

func runAttack(sys *core.System, cfg core.AttackConfig) (*core.AttackResult, error) {
	set, err := runAttackSet(sys, cfg, []analytic.Feature{cfg.Feature})
	if err != nil {
		return nil, err
	}
	return set[0], nil
}

func runSessionAttack(sys *core.System, cfg core.SessionAttackConfig) (*core.SessionAttackResult, error) {
	res, err := runScenario(sys, core.SessionAttackSpec{Session: cfg})
	if err != nil {
		return nil, err
	}
	return res.Session, nil
}

func runDisclosure(sys *core.System, spec core.PopulationSpec, cfg population.DisclosureConfig) (*population.DisclosureResult, error) {
	res, err := runScenario(sys, core.DisclosureSpec{Population: spec, Disclosure: cfg})
	if err != nil {
		return nil, err
	}
	return res.Disclosure, nil
}

func runFlowCorrelation(sys *core.System, spec core.PopulationSpec, cfg core.FlowCorrConfig) (*population.FlowCorrResult, error) {
	res, err := runScenario(sys, core.FlowCorrelationSpec{Population: spec, Corr: cfg})
	if err != nil {
		return nil, err
	}
	return res.FlowCorr, nil
}

func runCascadeCorrelation(sys *core.System, spec core.CascadeSpec, cfg core.CascadeCorrConfig) (*cascade.Result, error) {
	res, err := runScenario(sys, core.CascadeCorrelationSpec{Cascade: spec, Corr: cfg})
	if err != nil {
		return nil, err
	}
	return res.Cascade, nil
}

func runActiveDetection(sys *core.System, spec core.ActiveSpec, cfg core.ActiveDetectConfig) (*active.Result, error) {
	res, err := runScenario(sys, core.ActiveDetectionSpec{Active: spec, Detect: cfg})
	if err != nil {
		return nil, err
	}
	return res.Active, nil
}
