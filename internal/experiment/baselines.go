package experiment

import (
	"fmt"

	"linkpad/internal/analytic"
	"linkpad/internal/core"
)

func init() {
	register("baseline-policies", BaselinePolicies)
}

// BaselinePolicies compares the three padding policies the paper's
// narrative contrasts — the common CIT, the proposed VIT, and the
// related-work adaptive masking (Timmerman 1997, §2) — on all three axes
// of the trade-off: security (detection rate per feature), bandwidth
// (padded packet rate at low payload), and QoS (mean payload queueing
// delay).
func BaselinePolicies(o Options) (*Table, error) {
	o = o.withDefaults()
	type policy struct {
		code float64
		name string
		mut  func(*core.Config)
	}
	policies := []policy{
		{0, "CIT", func(*core.Config) {}},
		{1, "VIT-30us", func(c *core.Config) { c.SigmaT = 30e-6 }},
		{2, "ADAPTIVE-x4", func(c *core.Config) {
			c.Adaptive = &core.AdaptiveSpec{IdleFactor: 4, IdleAfter: 3}
		}},
		{3, "MIX-8", func(c *core.Config) {
			c.Mix = &core.MixSpec{K: 8}
		}},
	}
	t := &Table{
		ID:      "baseline-policies",
		Title:   "Padding policies: security vs bandwidth vs QoS (CIT / VIT / adaptive masking)",
		Columns: []string{"policy", "mean_emp", "var_emp", "ent_emp", "padded_pps_low", "mean_delay_ms"},
	}
	const n = 1000
	rows := make([][]float64, len(policies))
	err := parMap(len(policies), o.workers(), func(i int) error {
		cfg := labConfig(o)
		policies[i].mut(&cfg)
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		set, err := runAttackSet(sys, core.AttackConfig{
			WindowSize:     n,
			TrainWindows:   o.windows(120),
			EvalWindows:    o.windows(120),
			Workers:        o.nestedWorkers(len(policies)),
			SkipEmpiricalR: true,
		}, []analytic.Feature{analytic.FeatureMean, analytic.FeatureVariance, analytic.FeatureEntropy})
		if err != nil {
			return err
		}
		row := []float64{policies[i].code}
		for _, res := range set {
			row = append(row, res.DetectionRate)
		}
		pps, delay, err := padCost(sys, 0, o.windows(120)*n/4)
		if err != nil {
			return err
		}
		rows[i] = append(row, pps, delay*1e3)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	for _, p := range policies {
		t.Notef("policy %d = %s", int(p.code), p.name)
	}
	t.Notef("padded_pps_low: padded packet rate under the low (10pps) payload; CIT/VIT pay 100pps always")
	t.Notef("adaptive masking saves bandwidth but leaks the rate at first order: the mean feature alone defeats it")
	t.Notef("the Chaum mix (no dummies) is cheapest and leaks most: burst gaps are Erlang(K, lambda)")
	return t, nil
}

// padCost measures the padded packet rate and the mean payload queueing
// delay for one class over `packets` padded packets, for both timer
// gateways and mixes.
func padCost(sys *core.System, class, packets int) (pps, meanDelay float64, err error) {
	var (
		next  func() float64
		delay func() float64
	)
	if sys.Config().Mix != nil {
		mix, err := sys.MixGateway(class, 99)
		if err != nil {
			return 0, 0, err
		}
		next, delay = mix.Next, mix.MeanDelay
	} else {
		gw, err := sys.Gateway(class, 99)
		if err != nil {
			return 0, 0, err
		}
		next = gw.Next
		delay = func() float64 { return gw.Stats().MeanPayloadDelay() }
	}
	var last float64
	for i := 0; i < packets; i++ {
		last = next()
	}
	if last <= 0 {
		return 0, 0, fmt.Errorf("experiment: gateway produced non-positive horizon")
	}
	return float64(packets) / last, delay(), nil
}
