package experiment

import (
	"linkpad/internal/core"
	"linkpad/internal/population"
)

func init() {
	registerCells("ext-sda-arms-race", extSDAArmsRaceCells)
	registerCells("scale-sda-ls", scaleSDALSCells)
}

// The ext-sda-arms-race axes; cell i is
// (estimator i/9, mix (i/3)%3, dummies i%3).
var (
	armsRaceEstimators = []population.EstimatorKind{
		population.EstimatorClassic,
		population.EstimatorLeastSquares,
		population.EstimatorML,
	}
	armsRaceMixes = []population.MixKind{
		population.MixThreshold,
		population.MixPool,
		population.MixTimed,
	}
	armsRaceDummies = []population.DummyPolicy{
		population.DummyNone,
		population.DummyUniform,
		population.DummyAdaptive,
	}
)

// armsRaceCover is the dummy policies' cover rate (as a multiple of the
// payload rate): enough for the adaptive policy to keep decoys
// competitive, low enough that uniform cover alone does not censor the
// whole budget (the uniform-vs-adaptive gap is the point of the table).
const armsRaceCover = 1.0

// armsRaceBatch is the round size for every cell. It is deliberately
// large relative to the 24-user population (~2 messages per target per
// round): with multiple target messages per round the send *count*
// carries real signal beyond bare presence, which is the regime where
// the least-squares estimator genuinely dominates the classic
// round-contrast one. At small batches a target appears 0-or-1 times
// per round and least-squares degenerates to classic plus fit noise.
const armsRaceBatch = 48

// extSDAArmsRaceCells is the SDA arms race league table: every
// estimator (classic round-contrast, least-squares, iterative ML)
// against every mix discipline (threshold, pool, timed) against every
// dummy policy (none, uniform receiver-bound, adaptive
// suspect-targeting), 27 cells of rounds-to-disclosure. The expected
// reading is monotone on both fronts: least-squares discloses no
// slower than the classic estimator in every mix cell (it regresses on
// send counts and the joint background fit instead of bare presence,
// and at batch 48 counts carry real signal), and the dummy policies
// resist in the order none < uniform < adaptive — adaptive feeds the
// estimator's own top suspects back at it, so the top-k set never
// stabilizes on the truth and the cell censors at the budget. ML is
// the calibration point rather than a speed point: it spends rounds to
// buy much sharper anonymity estimates (mean_anonymity well above the
// other two), and is not asserted to beat classic cell-by-cell.
// Registered as a cell experiment: every cell is a pure function of
// (Options, cell), so linkpadsim can checkpoint and resume the sweep.
var extSDAArmsRaceCells = &cellExperiment{
	title: "The SDA arms race: estimator vs mix vs dummy policy, rounds-to-disclosure",
	columns: []string{"estimator", "mix", "dummies", "disclosed_frac",
		"mean_rounds", "mean_anonymity"},
	ncells: func(Options) int {
		return len(armsRaceEstimators) * len(armsRaceMixes) * len(armsRaceDummies)
	},
	run: func(o Options, cell, nested int) ([]float64, error) {
		sys, err := core.NewSystem(labConfig(o))
		if err != nil {
			return nil, err
		}
		est := armsRaceEstimators[cell/9]
		mix := armsRaceMixes[(cell/3)%3]
		dum := armsRaceDummies[cell%3]
		spec := core.PopulationSpec{
			Users:      24,
			Recipients: 60,
			Dummies:    dum,
		}
		if dum != population.DummyNone {
			spec.CoverRate = armsRaceCover
		}
		res, err := runDisclosure(sys, spec, population.DisclosureConfig{
			Batch:     armsRaceBatch,
			Mix:       population.MixSpec{Kind: mix},
			Estimator: est,
			MaxRounds: disclosureRounds(o),
			Workers:   nested,
		})
		if err != nil {
			return nil, err
		}
		return []float64{float64(est), float64(mix), float64(dum),
			res.DisclosedFrac, res.MeanRounds, res.MeanAnonymity}, nil
	},
	notes: func(o Options, t *Table) {
		t.Notef("estimator 0 = classic round-contrast, 1 = least-squares, 2 = iterative ML (EM)")
		t.Notef("mix 0 = threshold (flush at batch %d), 1 = pool (batch-%d trigger, retain 0.5), 2 = timed (period = batch/aggregate rate)", armsRaceBatch, armsRaceBatch)
		t.Notef("dummies 0 = none (no cover), 1 = uniform receiver-bound cover at %gx payload, 2 = adaptive cover re-addressed to the estimator's top suspects", armsRaceCover)
		t.Notef("24 users, 60 recipients, 3 contacts/user at weight 0.7, 8 targets; budget %d rounds censors mean_rounds", disclosureRounds(o))
		t.Notef("asserted monotonicity: least-squares discloses no slower than classic in every mix cell; resistance orders none < uniform < adaptive")
	},
}

// ExtSDAArmsRace runs the arms-race league table without checkpointing;
// see extSDAArmsRaceCells.
func ExtSDAArmsRace(o Options) (*Table, error) {
	return runCells("ext-sda-arms-race", extSDAArmsRaceCells, o, "", 0)
}

// scaleSDALSCells proves the least-squares estimator at the engine's
// design point: the same million-user population, batch and round
// budget as scale-disclosure, but with the sparse least-squares
// accumulators in place of the classic conditional means. The estimator
// adds two sparse right-hand-side vectors per target — Say touches only
// the rounds the target actually exits in (~1/1000 of rounds at B=1024,
// N=1e6), Sby costs what the classic without-sum did — so resident
// memory stays frontier-dominated and the cells must fit the same RSS
// ceiling scale-disclosure gates in CI (make scale-smoke runs both).
// Like scale-disclosure, disclosed_frac 0 at scale is the expected
// (negative) reading; the cells gate throughput and memory.
var scaleSDALSCells = &cellExperiment{
	title: "Least-squares SDA at scale: million-user populations under the sparse LS accumulators",
	columns: []string{"users", "cover", "rounds", "batch",
		"disclosed_frac", "mean_anonymity"},
	ncells: func(Options) int { return len(scaleDisclosureCovers) },
	run: func(o Options, cell, nested int) ([]float64, error) {
		sys, err := core.NewSystem(labConfig(o))
		if err != nil {
			return nil, err
		}
		n := scaleUsers(o)
		cover := scaleDisclosureCovers[cell]
		res, err := runDisclosure(sys, core.PopulationSpec{
			Users:      n,
			Recipients: 10_000,
			CoverRate:  cover,
		}, population.DisclosureConfig{
			Batch:      scaleDisclosureBatch,
			Estimator:  population.EstimatorLeastSquares,
			MaxRounds:  scaleDisclosureRounds,
			CheckEvery: 16,
			Workers:    nested,
		})
		if err != nil {
			return nil, err
		}
		return []float64{float64(n), cover, float64(res.Rounds),
			scaleDisclosureBatch, res.DisclosedFrac, res.MeanAnonymity}, nil
	},
	notes: func(o Options, t *Table) {
		t.Notef("population %d users (1e6 x scale, floor 1e4), 10000 recipients, batch %d, %d rounds, least-squares estimator",
			scaleUsers(o), scaleDisclosureBatch, scaleDisclosureRounds)
		t.Notef("same geometry as scale-disclosure: the pair prices the LS accumulators (Saa/Sab/Sbb + sparse Say/Sby) at scale")
		t.Notef("disclosed_frac 0 at large N is the expected reading; the cells gate engine+estimator throughput and memory")
	},
}

// ScaleSDALS runs the least-squares scale cells without checkpointing;
// see scaleSDALSCells.
func ScaleSDALS(o Options) (*Table, error) {
	return runCells("scale-sda-ls", scaleSDALSCells, o, "", 0)
}
