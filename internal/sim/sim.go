// Package sim is a minimal discrete-event simulator: a time-ordered event
// queue with deterministic FIFO tie-breaking. It is the ground-truth
// substrate for the gateway + network models; the streaming fast paths in
// internal/gateway and internal/netem are validated against DES runs.
// Determinism contract: events at equal times fire in scheduling order
// (a monotone sequence number breaks heap ties), so a run is a pure
// function of its initial events and their handlers. The simulator is
// validation-only — it is deliberately kept off the Monte Carlo hot
// path, so per-event heap allocations are acceptable here.
package sim

import (
	"container/heap"
	"errors"
	"math"
)

// event is a scheduled callback.
type event struct {
	time float64
	seq  uint64 // insertion order; breaks time ties deterministically
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator advances virtual time (float64 seconds) through scheduled
// events. The zero value is not usable; call New.
type Simulator struct {
	now    float64
	queue  eventHeap
	seq    uint64
	steps  uint64
	maxLen int
}

// New creates a simulator starting at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// At schedules fn to run at absolute time t. Scheduling in the past or at
// a non-finite time is an error. Events at equal times run in scheduling
// order.
func (s *Simulator) At(t float64, fn func()) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return errors.New("sim: non-finite event time")
	}
	if t < s.now {
		return errors.New("sim: cannot schedule event in the past")
	}
	if fn == nil {
		return errors.New("sim: nil event callback")
	}
	heap.Push(&s.queue, event{time: t, seq: s.seq, fn: fn})
	s.seq++
	if len(s.queue) > s.maxLen {
		s.maxLen = len(s.queue)
	}
	return nil
}

// After schedules fn to run d seconds from now. Negative delays are an
// error.
func (s *Simulator) After(d float64, fn func()) error {
	if d < 0 {
		return errors.New("sim: negative delay")
	}
	return s.At(s.now+d, fn)
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for len(s.queue) > 0 {
		s.step()
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain queued.
func (s *Simulator) RunUntil(t float64) {
	for len(s.queue) > 0 && s.queue[0].time <= t {
		s.step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunSteps executes at most n events; it returns the number executed.
func (s *Simulator) RunSteps(n int) int {
	done := 0
	for done < n && len(s.queue) > 0 {
		s.step()
		done++
	}
	return done
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// MaxQueueLen returns the high-water mark of the event queue, useful for
// sizing sanity checks in long runs.
func (s *Simulator) MaxQueueLen() int { return s.maxLen }

func (s *Simulator) step() {
	e := heap.Pop(&s.queue).(event)
	s.now = e.time
	s.steps++
	e.fn()
}
