package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"linkpad/internal/xrand"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	r := xrand.New(1)
	var fired []float64
	for i := 0; i < 1000; i++ {
		tt := r.Float64() * 100
		if err := s.At(tt, func() { fired = append(fired, s.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if len(fired) != 1000 {
		t.Fatalf("fired %d events", len(fired))
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatal("events fired out of order")
	}
	if s.Steps() != 1000 {
		t.Errorf("steps = %d", s.Steps())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		if err := s.At(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order broken at %d: %v", i, order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			if err := s.After(0.5, chain); err != nil {
				t.Error(err)
			}
		}
	}
	if err := s.At(0, chain); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if count != 100 {
		t.Errorf("chain count = %d", count)
	}
	if math.Abs(s.Now()-49.5) > 1e-12 {
		t.Errorf("final time = %v", s.Now())
	}
}

func TestSchedulingErrors(t *testing.T) {
	s := New()
	if err := s.At(math.NaN(), func() {}); err == nil {
		t.Error("want error for NaN time")
	}
	if err := s.At(math.Inf(1), func() {}); err == nil {
		t.Error("want error for infinite time")
	}
	if err := s.At(1, nil); err == nil {
		t.Error("want error for nil callback")
	}
	if err := s.After(-1, func() {}); err == nil {
		t.Error("want error for negative delay")
	}
	if err := s.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := s.At(4, func() {}); err == nil {
		t.Error("want error for past scheduling")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		tt := tt
		if err := s.At(tt, func() { fired = append(fired, tt) }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Errorf("fired %v", fired)
	}
	if s.Now() != 3 {
		t.Errorf("now = %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.RunUntil(10)
	if len(fired) != 5 || s.Now() != 10 {
		t.Errorf("fired %v now %v", fired, s.Now())
	}
}

func TestRunSteps(t *testing.T) {
	s := New()
	n := 0
	for i := 0; i < 10; i++ {
		if err := s.At(float64(i), func() { n++ }); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.RunSteps(4); got != 4 || n != 4 {
		t.Errorf("RunSteps = %d, n = %d", got, n)
	}
	if got := s.RunSteps(100); got != 6 || n != 10 {
		t.Errorf("RunSteps = %d, n = %d", got, n)
	}
}

func TestClockNeverGoesBackwards(t *testing.T) {
	f := func(seed uint64) bool {
		s := New()
		r := xrand.New(seed)
		last := -1.0
		ok := true
		for i := 0; i < 200; i++ {
			if err := s.At(r.Float64()*10, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
				// events may add more events in the future
				if r.Bernoulli(0.3) {
					_ = s.After(r.Float64(), func() {
						if s.Now() < last {
							ok = false
						}
						last = s.Now()
					})
				}
			}); err != nil {
				return false
			}
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxQueueLen(t *testing.T) {
	s := New()
	for i := 0; i < 64; i++ {
		if err := s.At(float64(i), func() {}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if s.MaxQueueLen() != 64 {
		t.Errorf("high-water mark = %d", s.MaxQueueLen())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New()
	r := xrand.New(1)
	base := 0.0
	for i := 0; i < b.N; i++ {
		if err := s.At(base+r.Float64(), func() {}); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			s.Run()
			base = s.Now()
		}
	}
	s.Run()
}
