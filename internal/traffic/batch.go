package traffic

// Batched generation (batch.go): every built-in Source can fill a flat
// slab of inter-arrival gaps in one call instead of one gap per virtual
// call. A NextBatch(gaps) call is defined as exactly equivalent to
// len(gaps) successive Next() calls: each source owns its *xrand.Rand and
// the batch loop replays the identical per-call logic, so the variate
// draw order — and therefore the generated stream — is bit-identical.
// The batch equivalence tests in batch_test.go enforce this for every
// source type.

// BatchSource is a Source that can generate a batch of gaps in one call.
// NextBatch fills gaps entirely; it is equivalent to len(gaps) Next
// calls.
type BatchSource interface {
	Source
	NextBatch(gaps []float64)
}

// FillGaps fills gaps from src, using the batched path when src
// implements BatchSource and falling back to one Next call per gap
// otherwise. Either way the source advances by exactly len(gaps) gaps.
func FillGaps(src Source, gaps []float64) {
	if b, ok := src.(BatchSource); ok {
		b.NextBatch(gaps)
		return
	}
	for i := range gaps {
		gaps[i] = src.Next()
	}
}

// NextBatch fills gaps with i.i.d. exponential inter-arrival gaps.
func (p *Poisson) NextBatch(gaps []float64) {
	mean := 1 / p.rate
	rng := p.rng
	for i := range gaps {
		gaps[i] = rng.Exp(mean)
	}
}

// NextBatch fills gaps with jittered constant-rate gaps.
func (c *CBR) NextBatch(gaps []float64) {
	if c.jitter == 0 {
		for i := range gaps {
			gaps[i] = c.interval
		}
		return
	}
	interval, jitter, rng := c.interval, c.jitter, c.rng
	for i := range gaps {
		gaps[i] = interval + jitter*(rng.Float64()-0.5)
	}
}

// NextBatch fills gaps from the Markov-modulated process, carrying the
// burst phase across calls exactly as repeated Next calls do.
func (s *OnOff) NextBatch(gaps []float64) {
	for i := range gaps {
		gaps[i] = s.Next()
	}
}

// NextBatch fills gaps from the packet-train process.
func (t *Train) NextBatch(gaps []float64) {
	for i := range gaps {
		gaps[i] = t.Next()
	}
}

// NextBatch fills gaps with merged-stream gaps.
func (s *Superpose) NextBatch(gaps []float64) {
	for i := range gaps {
		gaps[i], _ = s.NextFrom()
	}
}

// NextBatch fills gaps with surviving-arrival gaps.
func (g *Gated) NextBatch(gaps []float64) {
	for i := range gaps {
		gaps[i] = g.Next()
	}
}
