package traffic

import (
	"encoding/json"
	"testing"

	"linkpad/internal/xrand"
)

// stateSources builds one instance of every snapshot-capable source kind,
// as a constructor so a test can build identical twins.
func stateSources(t *testing.T) map[string]func() Source {
	t.Helper()
	return map[string]func() Source{
		"poisson": func() Source {
			s, err := NewPoisson(40, xrand.New(11))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"cbr": func() Source {
			s, err := NewCBR(100, 0.005, xrand.New(12))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"onoff": func() Source {
			s, err := NewOnOff(200, 0.4, 0.6, xrand.New(13))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"train": func() Source {
			s, err := NewTrain(40, 5, 1e-3, xrand.New(14))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"superpose": func() Source {
			a, err := NewPoisson(10, xrand.New(15))
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewOnOff(80, 0.3, 0.7, xrand.New(16))
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSuperpose(a, b)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"gated": func() Source {
			src, err := NewPoisson(60, xrand.New(17))
			if err != nil {
				t.Fatal(err)
			}
			sched, err := NewOnOffSchedule(1, 1, xrand.New(18))
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewGated(src, sched)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
	}
}

// TestSnapshotRestoreRoundTrip advances a source, snapshots it through a
// JSON round trip (the serialization the checkpoint files use), restores
// onto a freshly built twin, and demands the continuation be bit-for-bit
// identical to the original's.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for kind, build := range stateSources(t) {
		t.Run(kind, func(t *testing.T) {
			orig := build()
			for i := 0; i < 137; i++ {
				orig.Next()
			}
			st, err := Snapshot(orig)
			if err != nil {
				t.Fatal(err)
			}
			if st.Kind == "" {
				t.Fatal("snapshot carries no kind")
			}
			data, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var decoded SourceState
			if err := json.Unmarshal(data, &decoded); err != nil {
				t.Fatal(err)
			}
			twin := build()
			if err := Restore(twin, decoded); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 500; i++ {
				a, b := orig.Next(), twin.Next()
				if a != b {
					t.Fatalf("continuation diverges at draw %d: %v != %v", i, a, b)
				}
			}
		})
	}
}

// TestRestoreRejectsKindMismatch: a state must never be applied to a
// source of a different kind.
func TestRestoreRejectsKindMismatch(t *testing.T) {
	sources := stateSources(t)
	poisson := sources["poisson"]()
	onoffState, err := Snapshot(sources["onoff"]())
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(poisson, onoffState); err == nil {
		t.Error("onoff state restored into a Poisson source")
	}
	super := sources["superpose"]()
	st, err := Snapshot(super)
	if err != nil {
		t.Fatal(err)
	}
	st.Sub = st.Sub[:1]
	st.Next = st.Next[:1]
	if err := Restore(sources["superpose"](), st); err == nil {
		t.Error("superpose state with missing components restored")
	}
}
