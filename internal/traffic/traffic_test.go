package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"linkpad/internal/stats"
	"linkpad/internal/xrand"
)

// measureRate draws n gaps and returns packets per second.
func measureRate(s Source, n int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		total += s.Next()
	}
	return float64(n) / total
}

func TestPoissonRate(t *testing.T) {
	for _, rate := range []float64{10, 40, 1000} {
		s, err := NewPoisson(rate, xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if got := measureRate(s, 200000); math.Abs(got-rate)/rate > 0.02 {
			t.Errorf("rate %v: measured %v", rate, got)
		}
		if s.Rate() != rate {
			t.Errorf("Rate() = %v", s.Rate())
		}
	}
}

func TestPoissonGapCV(t *testing.T) {
	// Exponential gaps: coefficient of variation = 1.
	s, err := NewPoisson(40, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	gaps := make([]float64, 100000)
	for i := range gaps {
		gaps[i] = s.Next()
	}
	sum := stats.Summarize(gaps)
	cv := sum.StdDev / sum.Mean
	if math.Abs(cv-1) > 0.02 {
		t.Errorf("Poisson gap CV = %v, want 1", cv)
	}
}

func TestPoissonValidation(t *testing.T) {
	if _, err := NewPoisson(0, xrand.New(1)); err == nil {
		t.Error("want error for zero rate")
	}
	if _, err := NewPoisson(10, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestCBRDeterministic(t *testing.T) {
	s, err := NewCBR(40, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if g := s.Next(); g != 0.025 {
			t.Fatalf("gap = %v, want 0.025", g)
		}
	}
}

func TestCBRJitterBounds(t *testing.T) {
	s, err := NewCBR(40, 1e-3, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		g := s.Next()
		if g < 0.025-5e-4 || g > 0.025+5e-4 {
			t.Fatalf("jittered gap out of range: %v", g)
		}
	}
	if got := measureRate(s, 100000); math.Abs(got-40)/40 > 0.01 {
		t.Errorf("jittered CBR rate = %v", got)
	}
}

func TestCBRValidation(t *testing.T) {
	if _, err := NewCBR(0, 0, nil); err == nil {
		t.Error("want error for zero rate")
	}
	if _, err := NewCBR(40, -1, nil); err == nil {
		t.Error("want error for negative jitter")
	}
	if _, err := NewCBR(40, 0.05, xrand.New(1)); err == nil {
		t.Error("want error for jitter >= interval")
	}
	if _, err := NewCBR(40, 1e-3, nil); err == nil {
		t.Error("want error for nil rng with jitter")
	}
}

func TestOnOffLongRunRate(t *testing.T) {
	// Peak 100 pps, on 50% of the time => 50 pps average.
	s, err := NewOnOff(100, 0.5, 0.5, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if want := 50.0; math.Abs(s.Rate()-want) > 1e-12 {
		t.Errorf("Rate() = %v", s.Rate())
	}
	if got := measureRate(s, 200000); math.Abs(got-50)/50 > 0.05 {
		t.Errorf("measured rate = %v, want ~50", got)
	}
}

func TestOnOffBurstiness(t *testing.T) {
	// On-off gaps must be over-dispersed relative to Poisson at the same
	// average rate (CV > 1).
	s, err := NewOnOff(200, 0.1, 0.4, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	gaps := make([]float64, 100000)
	for i := range gaps {
		gaps[i] = s.Next()
	}
	sum := stats.Summarize(gaps)
	if cv := sum.StdDev / sum.Mean; cv < 1.2 {
		t.Errorf("on-off CV = %v, want > 1.2", cv)
	}
}

func TestOnOffValidation(t *testing.T) {
	if _, err := NewOnOff(0, 1, 1, xrand.New(1)); err == nil {
		t.Error("want error for zero peak")
	}
	if _, err := NewOnOff(10, 0, 1, xrand.New(1)); err == nil {
		t.Error("want error for zero on-time")
	}
	if _, err := NewOnOff(10, 1, 1, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestTrainRateAndBurstiness(t *testing.T) {
	s, err := NewTrain(1000, 5, 10e-6, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rate()-1000) > 1e-9 {
		t.Errorf("Rate() = %v", s.Rate())
	}
	gaps := make([]float64, 200000)
	for i := range gaps {
		gaps[i] = s.Next()
	}
	sum := stats.Summarize(gaps)
	rate := 1 / sum.Mean
	if math.Abs(rate-1000)/1000 > 0.05 {
		t.Errorf("measured packet rate = %v", rate)
	}
	if cv := sum.StdDev / sum.Mean; cv < 1.5 {
		t.Errorf("train CV = %v, want > 1.5 (burstier than Poisson)", cv)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := NewTrain(0, 5, 1e-6, xrand.New(1)); err == nil {
		t.Error("want error for zero rate")
	}
	if _, err := NewTrain(100, 0.5, 1e-6, xrand.New(1)); err == nil {
		t.Error("want error for meanLen < 1")
	}
	if _, err := NewTrain(100, 5, 1e-6, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestAllGapsNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		ps, err := NewPoisson(40, r.Split())
		if err != nil {
			return false
		}
		oo, err := NewOnOff(100, 0.2, 0.3, r.Split())
		if err != nil {
			return false
		}
		tr, err := NewTrain(500, 4, 5e-6, r.Split())
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			if ps.Next() < 0 || oo.Next() < 0 || tr.Next() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Trough: 0.05, Peak: 0.35, TroughHour: 3}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.At(3); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("At(trough) = %v", got)
	}
	if got := d.At(15); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("At(peak) = %v", got)
	}
	// Wrapping: hour 27 == hour 3.
	if math.Abs(d.At(27)-d.At(3)) > 1e-12 {
		t.Error("profile does not wrap at 24h")
	}
	// Monotone rise from trough to peak.
	prev := d.At(3)
	for h := 3.5; h <= 15; h += 0.5 {
		u := d.At(h)
		if u < prev-1e-12 {
			t.Fatalf("not monotone rising at hour %v", h)
		}
		prev = u
	}
}

func TestDiurnalBounds(t *testing.T) {
	d := Diurnal{Trough: 0.02, Peak: 0.10, TroughHour: 4}
	f := func(h float64) bool {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			return true
		}
		u := d.At(h)
		return u >= d.Trough-1e-12 && u <= d.Peak+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalValidate(t *testing.T) {
	bad := []Diurnal{
		{Trough: -0.1, Peak: 0.2},
		{Trough: 0.3, Peak: 0.2},
		{Trough: 0.3, Peak: 1.0},
		{Trough: 0.1, Peak: 0.2, TroughHour: 24},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", d)
		}
	}
}

func TestConstantProfile(t *testing.T) {
	c := Constant(0.25)
	for _, h := range []float64{0, 6, 12, 23.9} {
		if got := c.At(h); math.Abs(got-0.25) > 1e-12 {
			t.Errorf("Constant.At(%v) = %v", h, got)
		}
	}
}

func BenchmarkPoissonNext(b *testing.B) {
	s, err := NewPoisson(40, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Next()
	}
	_ = sink
}

func BenchmarkOnOffNext(b *testing.B) {
	s, err := NewOnOff(100, 0.2, 0.3, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Next()
	}
	_ = sink
}

// The on-off source's modulation state persists across observation
// windows of one continuous stream — a fresh replica always restarts in a
// full ON burst, while a long-lived session drifts toward the stationary
// ON/OFF mix. This carried state is what the continuous-stream session
// protocol preserves and the i.i.d.-replica protocol erases.
func TestOnOffStateCarriesAcrossWindows(t *testing.T) {
	fresh, err := NewOnOff(80, 0.2, 0.2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if on, left := fresh.State(); !on || left <= 0 {
		t.Fatalf("fresh source state = (%v, %v), want ON with positive holding time", on, left)
	}
	// An uninterrupted run and a windowed run of the same seed must
	// produce the identical gap sequence: slicing a session into windows
	// does not perturb the process, because the state carries.
	continuous, err := NewOnOff(80, 0.2, 0.2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := NewOnOff(80, 0.2, 0.2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, 200)
	for i := range ref {
		ref[i] = continuous.Next()
	}
	for w := 0; w < 10; w++ { // 10 windows of 20 = same 200 gaps
		for i := 0; i < 20; i++ {
			if got := windowed.Next(); got != ref[w*20+i] {
				t.Fatalf("window %d gap %d: %v != continuous %v", w, i, got, ref[w*20+i])
			}
		}
		// The carried holding time shrinks as stream time passes; a
		// rebuilt replica would reset it to a fresh draw each window.
		if _, left := windowed.State(); left <= 0 {
			t.Fatalf("window %d: non-positive holding time %v", w, left)
		}
	}
	// A replica rebuilt per window (same seed) replays window 1 forever
	// instead of continuing — the bias the session protocol removes.
	replica, err := NewOnOff(80, 0.2, 0.2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if on, _ := replica.State(); !on {
		t.Error("replica should restart in the ON state")
	}
	if got := replica.Next(); got != ref[0] {
		t.Errorf("rebuilt replica's first gap %v should replay %v", got, ref[0])
	}
}

// Superpose must emit exactly the union of its components' arrivals, in
// time order, with correct origin labels.
func TestSuperposeMergesComponents(t *testing.T) {
	// Two deterministic CBR sources with incommensurate intervals.
	a, err := NewCBR(10, 0, nil) // every 100 ms
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCBR(3, 0, nil) // every 333.3 ms
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSuperpose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Rate(), 13.0; got != want {
		t.Errorf("Rate = %v, want %v", got, want)
	}
	var now float64
	counts := [2]int{}
	for i := 0; i < 130; i++ {
		gap, src := s.NextFrom()
		if gap < 0 {
			t.Fatalf("arrival %d: negative gap %v", i, gap)
		}
		now += gap
		counts[src]++
	}
	// Over now seconds, component rates must be honored within one event.
	for i, rate := range []float64{10, 3} {
		want := now * rate
		if float64(counts[i]) < want-1.5 || float64(counts[i]) > want+1.5 {
			t.Errorf("component %d emitted %d arrivals over %.2fs, want ≈ %.1f", i, counts[i], now, want)
		}
	}
}

// A superposition of Poisson streams is itself a continuation of its
// components: splitting the observation does not change the stream.
func TestSuperposeContinuesDeterministically(t *testing.T) {
	build := func() *Superpose {
		a, _ := NewPoisson(20, xrand.New(5))
		b, _ := NewPoisson(7, xrand.New(6))
		s, err := NewSuperpose(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := build()
	got := build()
	for i := 0; i < 1000; i++ {
		rg, rs := ref.NextFrom()
		gg, gs := got.NextFrom()
		if rg != gg || rs != gs {
			t.Fatalf("arrival %d: (%v, %d) != (%v, %d)", i, gg, gs, rg, rs)
		}
	}
}

func TestSuperposeValidation(t *testing.T) {
	if _, err := NewSuperpose(); err == nil {
		t.Error("empty superposition should fail")
	}
	a, _ := NewPoisson(1, xrand.New(1))
	if _, err := NewSuperpose(a, nil); err == nil {
		t.Error("nil component should fail")
	}
}
