package traffic

import (
	"errors"
	"fmt"

	"linkpad/internal/xrand"
)

// Source state capture (state.go): the checkpoint/resume layer needs to
// freeze a running arrival process and later continue it bit-for-bit.
// Every built-in Source has O(1) mutable state — its RNG position plus a
// few scalars — so a snapshot is a small serializable record, and
// restoring it into a freshly built source of the same parameters resumes
// the exact realization. The (parameters, rng-seed) themselves are NOT
// captured: the caller rebuilds the source from its deterministic
// (seed, class, id) stream derivation and then applies the state, which
// is the repository's "per-stream position" resume contract.

// SourceState is the serializable mutable state of a Source. Kind guards
// against restoring a state into a source of a different type; optional
// fields are present only for the kinds that carry them.
type SourceState struct {
	Kind string       `json:"kind"`
	RNG  *xrand.State `json:"rng,omitempty"`
	// OnOff: burst phase and remaining holding time.
	On   *bool    `json:"on,omitempty"`
	Left *float64 `json:"left,omitempty"`
	// Train: whether the source is mid-train.
	InTrain *bool `json:"in_train,omitempty"`
	// Superpose: per-component absolute next-arrival times and the merge
	// clock, plus the component states.
	Next []float64     `json:"next,omitempty"`
	Now  *float64      `json:"now,omitempty"`
	Sub  []SourceState `json:"sub,omitempty"`
	// Gated: generation clock and last surviving arrival.
	GateNow  *float64 `json:"gate_now,omitempty"`
	LastEmit *float64 `json:"last_emit,omitempty"`
}

// Snapshot captures the mutable state of a built-in Source. It errors on
// source types it does not know how to freeze.
func Snapshot(s Source) (SourceState, error) {
	switch src := s.(type) {
	case *Poisson:
		st := src.rng.State()
		return SourceState{Kind: "poisson", RNG: &st}, nil
	case *CBR:
		out := SourceState{Kind: "cbr"}
		if src.rng != nil {
			st := src.rng.State()
			out.RNG = &st
		}
		return out, nil
	case *OnOff:
		st := src.rng.State()
		on, left := src.on, src.stateLeft
		return SourceState{Kind: "onoff", RNG: &st, On: &on, Left: &left}, nil
	case *Train:
		st := src.rng.State()
		in := src.inTrain
		return SourceState{Kind: "train", RNG: &st, InTrain: &in}, nil
	case *Superpose:
		now := src.now
		out := SourceState{
			Kind: "superpose",
			Next: append([]float64(nil), src.next...),
			Now:  &now,
			Sub:  make([]SourceState, len(src.srcs)),
		}
		for i, sub := range src.srcs {
			st, err := Snapshot(sub)
			if err != nil {
				return SourceState{}, fmt.Errorf("traffic: superpose component %d: %w", i, err)
			}
			out.Sub[i] = st
		}
		return out, nil
	case *Gated:
		now, last := src.now, src.lastEmit
		sub, err := Snapshot(src.src)
		if err != nil {
			return SourceState{}, fmt.Errorf("traffic: gated source: %w", err)
		}
		return SourceState{Kind: "gated", GateNow: &now, LastEmit: &last, Sub: []SourceState{sub}}, nil
	default:
		return SourceState{}, fmt.Errorf("traffic: cannot snapshot source type %T", s)
	}
}

// Restore applies a previously captured state to a freshly built source
// of the same kind and parameters. It validates the state's shape but
// cannot verify the parameters match — that is the caller's deterministic
// rebuild contract.
func Restore(s Source, st SourceState) error {
	switch src := s.(type) {
	case *Poisson:
		if st.Kind != "poisson" || st.RNG == nil {
			return fmt.Errorf("traffic: state %q does not fit a Poisson source", st.Kind)
		}
		src.rng.SetState(*st.RNG)
		return nil
	case *CBR:
		if st.Kind != "cbr" {
			return fmt.Errorf("traffic: state %q does not fit a CBR source", st.Kind)
		}
		if src.rng != nil {
			if st.RNG == nil {
				return errors.New("traffic: CBR state missing rng for a jittered source")
			}
			src.rng.SetState(*st.RNG)
		}
		return nil
	case *OnOff:
		if st.Kind != "onoff" || st.RNG == nil || st.On == nil || st.Left == nil {
			return fmt.Errorf("traffic: state %q does not fit an OnOff source", st.Kind)
		}
		if *st.Left < 0 {
			return errors.New("traffic: OnOff state has negative holding time")
		}
		src.rng.SetState(*st.RNG)
		src.on = *st.On
		src.stateLeft = *st.Left
		return nil
	case *Train:
		if st.Kind != "train" || st.RNG == nil || st.InTrain == nil {
			return fmt.Errorf("traffic: state %q does not fit a Train source", st.Kind)
		}
		src.rng.SetState(*st.RNG)
		src.inTrain = *st.InTrain
		return nil
	case *Superpose:
		if st.Kind != "superpose" || st.Now == nil {
			return fmt.Errorf("traffic: state %q does not fit a Superpose source", st.Kind)
		}
		if len(st.Next) != len(src.srcs) || len(st.Sub) != len(src.srcs) {
			return fmt.Errorf("traffic: superpose state spans %d/%d components, source has %d",
				len(st.Next), len(st.Sub), len(src.srcs))
		}
		for i, sub := range src.srcs {
			if err := Restore(sub, st.Sub[i]); err != nil {
				return fmt.Errorf("traffic: superpose component %d: %w", i, err)
			}
		}
		copy(src.next, st.Next)
		src.now = *st.Now
		// The restored component times invalidate the merge heap's order.
		src.buildHeap()
		return nil
	case *Gated:
		if st.Kind != "gated" || st.GateNow == nil || st.LastEmit == nil || len(st.Sub) != 1 {
			return fmt.Errorf("traffic: state %q does not fit a Gated source", st.Kind)
		}
		if err := Restore(src.src, st.Sub[0]); err != nil {
			return fmt.Errorf("traffic: gated source: %w", err)
		}
		src.now = *st.GateNow
		src.lastEmit = *st.LastEmit
		return nil
	default:
		return fmt.Errorf("traffic: cannot restore source type %T", s)
	}
}
