// Package traffic provides the arrival processes that drive the study:
// payload sources at the paper's discrete rates (ω_l = 10 pps,
// ω_h = 40 pps), cross-traffic generators for the lab experiments
// (paper §5.2), and the diurnal utilization profile used to model campus
// and wide-area background load over a 24-hour capture (paper §5.3).
//
// Determinism contract: a Source consumes variates from the single
// *xrand.Rand it was built with, one pull at a time, so a source is a
// pure function of (parameters, rng) and composes freely — Superpose
// merges sources by arrival time without extra randomness, and session
// protocols carry source state (e.g. OnOff.State) across observation
// windows. Sources are streaming with O(1) state; nothing is allocated
// per packet.
package traffic

import (
	"errors"
	"fmt"
	"math"

	"linkpad/internal/xrand"
)

// Source generates an arrival process as a sequence of inter-arrival gaps.
//
// A Source is a stateful stream: successive Next calls continue one
// realization of the process, so a long-lived Source carries its arrival
// state (burst phase, clock phase, train position) across consecutive
// observation windows. The continuous-stream session protocol relies on
// this; the i.i.d.-replica protocol instead builds a fresh Source per
// window, which restarts modulated processes (OnOff, Train) in their
// initial state.
type Source interface {
	// Next returns the gap, in seconds, until the next arrival.
	Next() float64
	// Rate returns the long-run average arrival rate in packets/second.
	Rate() float64
}

// Poisson is a Poisson arrival process: exponential i.i.d. gaps.
// This is the default payload model — user traffic with memoryless
// arrivals at one of the paper's discrete rates.
type Poisson struct {
	rate float64
	rng  *xrand.Rand
}

// NewPoisson creates a Poisson source with the given rate (> 0) in
// packets/second.
func NewPoisson(rate float64, rng *xrand.Rand) (*Poisson, error) {
	if !(rate > 0) {
		return nil, errors.New("traffic: Poisson rate must be positive")
	}
	if rng == nil {
		return nil, errors.New("traffic: nil rng")
	}
	return &Poisson{rate: rate, rng: rng}, nil
}

// Next returns an exponential gap with mean 1/rate.
func (p *Poisson) Next() float64 { return p.rng.Exp(1 / p.rate) }

// Rate returns the configured rate.
func (p *Poisson) Rate() float64 { return p.rate }

// CBR is a constant-bit-rate source: deterministic gaps of 1/rate,
// optionally perturbed by a small uniform jitter (±Jitter/2) to model a
// sender clock that is not phase-locked to the gateway timer.
type CBR struct {
	interval float64
	jitter   float64
	rng      *xrand.Rand
}

// NewCBR creates a CBR source with the given rate (> 0) and jitter
// half-range >= 0. A nil rng is allowed when jitter is zero.
func NewCBR(rate, jitter float64, rng *xrand.Rand) (*CBR, error) {
	if !(rate > 0) {
		return nil, errors.New("traffic: CBR rate must be positive")
	}
	if jitter < 0 {
		return nil, errors.New("traffic: CBR jitter must be non-negative")
	}
	if jitter >= 1/rate {
		return nil, errors.New("traffic: CBR jitter must be smaller than the interval")
	}
	if jitter > 0 && rng == nil {
		return nil, errors.New("traffic: nil rng with non-zero jitter")
	}
	return &CBR{interval: 1 / rate, jitter: jitter, rng: rng}, nil
}

// Next returns the next gap.
func (c *CBR) Next() float64 {
	if c.jitter == 0 {
		return c.interval
	}
	return c.interval + c.jitter*(c.rng.Float64()-0.5)
}

// Rate returns the configured rate.
func (c *CBR) Rate() float64 { return 1 / c.interval }

// OnOff is a two-state Markov-modulated Poisson process: during ON
// periods arrivals are Poisson at PeakRate; OFF periods are silent.
// State holding times are exponential. It models bursty interactive
// payload, the worst case for "adaptive" padding schemes discussed in the
// paper's related work (Timmerman 1997).
type OnOff struct {
	peakRate  float64
	meanOn    float64
	meanOff   float64
	rng       *xrand.Rand
	on        bool
	stateLeft float64 // time remaining in the current state
}

// NewOnOff creates an on-off source. peakRate, meanOn and meanOff must be
// positive. The process starts in the ON state.
func NewOnOff(peakRate, meanOn, meanOff float64, rng *xrand.Rand) (*OnOff, error) {
	if !(peakRate > 0) || !(meanOn > 0) || !(meanOff > 0) {
		return nil, errors.New("traffic: OnOff parameters must be positive")
	}
	if rng == nil {
		return nil, errors.New("traffic: nil rng")
	}
	s := &OnOff{peakRate: peakRate, meanOn: meanOn, meanOff: meanOff, rng: rng, on: true}
	s.stateLeft = rng.Exp(meanOn)
	return s, nil
}

// Next returns the gap until the next arrival, crossing silent OFF
// periods as needed.
func (s *OnOff) Next() float64 {
	var gap float64
	for {
		if s.on {
			g := s.rng.Exp(1 / s.peakRate)
			if g <= s.stateLeft {
				s.stateLeft -= g
				return gap + g
			}
			gap += s.stateLeft
			s.on = false
			s.stateLeft = s.rng.Exp(s.meanOff)
		} else {
			gap += s.stateLeft
			s.on = true
			s.stateLeft = s.rng.Exp(s.meanOn)
		}
	}
}

// Rate returns the long-run average rate: peakRate * meanOn/(meanOn+meanOff).
func (s *OnOff) Rate() float64 {
	return s.peakRate * s.meanOn / (s.meanOn + s.meanOff)
}

// State reports the modulating chain's current phase: whether the source
// is in an ON burst and how much holding time remains. A fresh replica
// always reports (true, full holding time); in a continuous session the
// state drifts toward the stationary ON fraction meanOn/(meanOn+meanOff),
// which is what makes consecutive windows of bursty payload correlated —
// the structure the i.i.d.-replica protocol erases.
func (s *OnOff) State() (on bool, remaining float64) {
	return s.on, s.stateLeft
}

// Train is a batch-Poisson ("packet train") process: train starts arrive
// as a Poisson process; each train carries a geometrically distributed
// number of packets (mean TrainLen >= 1) separated by a short fixed
// intra-train gap. Used as a burstier cross-traffic ablation.
type Train struct {
	trainRate float64 // trains per second
	pContinue float64 // P(another packet follows) = 1 - 1/meanLen
	intraGap  float64
	rng       *xrand.Rand
	inTrain   bool
}

// NewTrain creates a packet-train source. rate is the *packet* rate; the
// train arrival rate is rate/meanLen.
func NewTrain(rate, meanLen, intraGap float64, rng *xrand.Rand) (*Train, error) {
	if !(rate > 0) || meanLen < 1 || intraGap < 0 {
		return nil, errors.New("traffic: invalid Train parameters")
	}
	if rng == nil {
		return nil, errors.New("traffic: nil rng")
	}
	return &Train{
		trainRate: rate / meanLen,
		pContinue: 1 - 1/meanLen,
		intraGap:  intraGap,
		rng:       rng,
	}, nil
}

// Next returns the next gap, alternating between intra-train gaps and
// exponential inter-train gaps.
func (t *Train) Next() float64 {
	if t.inTrain && t.rng.Bernoulli(t.pContinue) {
		return t.intraGap
	}
	t.inTrain = true
	return t.rng.Exp(1 / t.trainRate)
}

// Rate returns the long-run packet rate, ignoring the vanishing intra-gap
// contribution.
func (t *Train) Rate() float64 { return t.trainRate / (1 - t.pContinue) }

// Superpose merges several arrival processes into one: the output stream
// contains every component's arrivals in time order, as if the sources
// shared one wire. NextFrom additionally reports which component produced
// each arrival, which is what the population engine uses to carry a
// per-message label (real payload vs cover dummy) through the merged
// stream — the merge is part of the model, the label is ground truth the
// adversary does not see.
//
// Like every Source, a Superpose is a stateful continuous stream: each
// component's clock advances independently and the merge order is a pure
// function of the component streams, so a Superpose built from
// deterministic sources is itself deterministic.
type Superpose struct {
	srcs []Source
	next []float64 // absolute next-arrival time per component
	now  float64   // absolute time of the last emitted arrival
	// heap is a binary min-heap of component indices ordered by
	// (next[i], i); nil for small merges, where the linear scan is faster
	// than heap maintenance. Ordering by the (time, index) pair makes the
	// heap's minimum identical to the linear scan's lowest-index-on-tie
	// selection, so both implementations emit bit-identical streams.
	heap []int32
}

// superposeLinearMax is the component count up to which the linear
// min-scan beats the heap (measured in BenchmarkSuperpose; the population
// engine's per-user merges sit at k=2, the paper's ablations below 8).
const superposeLinearMax = 8

// NewSuperpose merges the given sources (at least one, all non-nil).
func NewSuperpose(srcs ...Source) (*Superpose, error) {
	if len(srcs) == 0 {
		return nil, errors.New("traffic: Superpose needs at least one source")
	}
	s := &Superpose{
		srcs: append([]Source(nil), srcs...),
		next: make([]float64, len(srcs)),
	}
	for i, src := range srcs {
		if src == nil {
			return nil, fmt.Errorf("traffic: Superpose source %d is nil", i)
		}
		s.next[i] = src.Next()
	}
	s.buildHeap()
	return s, nil
}

// less orders components by (next-arrival time, index): the strict-<
// linear scan keeps the lowest index among equal times, and so does this
// order's minimum.
func (s *Superpose) less(a, b int32) bool {
	ta, tb := s.next[a], s.next[b]
	return ta < tb || (ta == tb && a < b)
}

// buildHeap (re)establishes the merge heap for large component counts;
// small merges keep heap nil and use the linear scan.
func (s *Superpose) buildHeap() {
	if len(s.srcs) <= superposeLinearMax {
		s.heap = nil
		return
	}
	if s.heap == nil {
		s.heap = make([]int32, len(s.srcs))
	}
	for i := range s.heap {
		s.heap[i] = int32(i)
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// siftDown restores the heap property below position i after next[heap[i]]
// grew.
func (s *Superpose) siftDown(i int) {
	h := s.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && s.less(h[r], h[l]) {
			m = r
		}
		if !s.less(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// NextFrom returns the gap until the next arrival of the merged stream
// and the index of the component that produced it. Ties break toward the
// lowest component index, deterministically.
func (s *Superpose) NextFrom() (gap float64, src int) {
	var best int
	if s.heap != nil {
		best = int(s.heap[0])
	} else {
		for i := 1; i < len(s.next); i++ {
			if s.next[i] < s.next[best] {
				best = i
			}
		}
	}
	t := s.next[best]
	gap = t - s.now
	s.now = t
	s.next[best] = t + s.srcs[best].Next()
	if s.heap != nil {
		s.siftDown(0)
	}
	return gap, best
}

// Next returns the gap until the next arrival of the merged stream.
func (s *Superpose) Next() float64 {
	gap, _ := s.NextFrom()
	return gap
}

// Rate returns the sum of the component rates.
func (s *Superpose) Rate() float64 {
	var r float64
	for _, src := range s.srcs {
		r += src.Rate()
	}
	return r
}

// Diurnal is a 24-hour background-load profile: utilization varies
// smoothly between Trough (at TroughHour) and Peak (12 hours later),
// following a raised cosine. It models the day/night congestion swing the
// paper observes on the campus and Internet paths (Fig. 8).
type Diurnal struct {
	// Trough is the minimum utilization, reached at TroughHour.
	Trough float64
	// Peak is the maximum utilization, reached 12 h after TroughHour.
	Peak float64
	// TroughHour is the quietest hour of day in [0, 24), e.g. 3 for 3 AM.
	TroughHour float64
}

// Validate checks the profile parameters.
func (d Diurnal) Validate() error {
	if d.Trough < 0 || d.Peak < d.Trough || d.Peak >= 1 {
		return fmt.Errorf("traffic: invalid diurnal range [%v, %v]", d.Trough, d.Peak)
	}
	if d.TroughHour < 0 || d.TroughHour >= 24 {
		return fmt.Errorf("traffic: trough hour %v out of [0,24)", d.TroughHour)
	}
	return nil
}

// At returns the utilization at the given hour of day (wrapping modulo 24).
func (d Diurnal) At(hour float64) float64 {
	if d.Peak == d.Trough {
		// Constant profile: skip the trig. This path runs once per packet
		// per hop in the network simulator, so it must stay branch-cheap.
		return d.Trough
	}
	if hour < 0 || hour >= 24 {
		// math.Mod is the exact identity on [0, 24), so the common case —
		// hours pre-wrapped by the caller or runs shorter than a day —
		// skips the division. Out-of-range phases (multi-day runs) still
		// wrap exactly as before.
		hour = math.Mod(hour, 24) // keep the phase computation finite
	}
	phase := 2 * math.Pi * (hour - d.TroughHour) / 24
	activity := 0.5 * (1 - math.Cos(phase)) // 0 at trough, 1 at trough+12h
	return d.Trough + (d.Peak-d.Trough)*activity
}

// Constant returns a Diurnal profile that is flat at u.
func Constant(u float64) Diurnal { return Diurnal{Trough: u, Peak: u} }
