package traffic

import (
	"fmt"
	"testing"

	"linkpad/internal/xrand"
)

// mkSource builds one of each source kind from a seed; the factory is
// called twice per case so the pull-driven and batched instances draw
// from identically-seeded generators.
func batchCases(t *testing.T) map[string]func(seed uint64) BatchSource {
	t.Helper()
	mkSuper := func(k int) func(seed uint64) BatchSource {
		return func(seed uint64) BatchSource {
			master := xrand.New(seed)
			srcs := make([]Source, k)
			for i := range srcs {
				p, err := NewPoisson(0.5+0.1*float64(i%7), master.Split())
				if err != nil {
					t.Fatal(err)
				}
				srcs[i] = p
			}
			s, err := NewSuperpose(srcs...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	return map[string]func(seed uint64) BatchSource{
		"poisson": func(seed uint64) BatchSource {
			p, err := NewPoisson(3.2, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"cbr": func(seed uint64) BatchSource {
			c, err := NewCBR(5, 0, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
		"cbr-jitter": func(seed uint64) BatchSource {
			c, err := NewCBR(5, 0.02, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
		"onoff": func(seed uint64) BatchSource {
			s, err := NewOnOff(10, 0.5, 1.5, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"train": func(seed uint64) BatchSource {
			s, err := NewTrain(2, 5, 1e-3, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"gated": func(seed uint64) BatchSource {
			master := xrand.New(seed)
			p, err := NewPoisson(4, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			sched, err := NewOnOffSchedule(2, 3, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewGated(p, sched)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"superpose-2":  mkSuper(2),
		"superpose-8":  mkSuper(8),
		"superpose-9":  mkSuper(9),
		"superpose-64": mkSuper(64),
	}
}

// TestNextBatchMatchesNext checks the batched-core determinism contract
// at the source layer: NextBatch(dst) produces the bit-identical gap
// sequence as len(dst) Next calls, across awkward chunk sizes.
func TestNextBatchMatchesNext(t *testing.T) {
	const total = 5000
	chunks := []int{1, 3, 7, 64, 1021, 4096}
	for name, mk := range batchCases(t) {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{1, 7, 99} {
				pull := mk(seed)
				batch := mk(seed)
				want := make([]float64, total)
				for i := range want {
					want[i] = pull.Next()
				}
				got := make([]float64, 0, total)
				for ci := 0; len(got) < total; ci++ {
					k := min(chunks[ci%len(chunks)], total-len(got))
					buf := make([]float64, k)
					batch.NextBatch(buf)
					got = append(got, buf...)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d gap %d: batch %v != pull %v", seed, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestFillGaps checks the helper's fallback path against the batch path.
func TestFillGaps(t *testing.T) {
	a, err := NewPoisson(2, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoisson(2, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 100)
	FillGaps(a, got)
	for i := range got {
		if w := b.Next(); got[i] != w {
			t.Fatalf("gap %d: %v != %v", i, got[i], w)
		}
	}
}

// TestSuperposeHeapMatchesLinear drives the heap merge (k > 8) against a
// reference Superpose forced onto the linear scan, including exact-tie
// components (identical seeds → identical arrival times), to verify the
// (time, index) heap order reproduces lowest-index-on-tie.
func TestSuperposeHeapMatchesLinear(t *testing.T) {
	build := func(k int) *Superpose {
		srcs := make([]Source, k)
		for i := range srcs {
			// Deliberate seed collisions (i/2): adjacent components emit
			// identical times, forcing tie-breaks every merge step.
			p, err := NewPoisson(1.5, xrand.New(uint64(i/2)+1))
			if err != nil {
				t.Fatal(err)
			}
			srcs[i] = p
		}
		s, err := NewSuperpose(srcs...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for _, k := range []int{9, 16, 33, 64} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			heaped := build(k)
			linear := build(k)
			linear.heap = nil // force the reference onto the linear scan
			if heaped.heap == nil {
				t.Fatalf("k=%d should use the heap", k)
			}
			for i := 0; i < 20000; i++ {
				gh, sh := heaped.NextFrom()
				gl, sl := linear.NextFrom()
				if gh != gl || sh != sl {
					t.Fatalf("k=%d event %d: heap (%v, %d) != linear (%v, %d)", k, i, gh, sh, gl, sl)
				}
			}
		})
	}
}

// TestSuperposeRestoreRebuildsHeap checks that restoring a snapshot
// re-establishes the merge heap over the restored arrival times.
func TestSuperposeRestoreRebuildsHeap(t *testing.T) {
	master := xrand.New(11)
	k := 16
	srcs := make([]Source, k)
	for i := range srcs {
		p, err := NewPoisson(2, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = p
	}
	s, err := NewSuperpose(srcs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s.Next()
	}
	snap, err := Snapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 200)
	for i := range want {
		want[i] = s.Next()
	}
	if err := Restore(s, snap); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if g := s.Next(); g != want[i] {
			t.Fatalf("gap %d after restore: %v != %v", i, g, want[i])
		}
	}
}

func BenchmarkSuperpose(b *testing.B) {
	for _, k := range []int{4, 64, 256, 1024} {
		srcs := make([]Source, k)
		master := xrand.New(1)
		for i := range srcs {
			p, err := NewPoisson(1, master.Split())
			if err != nil {
				b.Fatal(err)
			}
			srcs[i] = p
		}
		s, err := NewSuperpose(srcs...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("heap/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += s.Next()
			}
			_ = sink
		})
		s.heap = nil
		b.Run(fmt.Sprintf("linear/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += s.Next()
			}
			_ = sink
		})
	}
}

// TestNextBatchAllocFree pins the batched sources at zero allocations
// per slab in steady state.
func TestNextBatchAllocFree(t *testing.T) {
	buf := make([]float64, 4096)
	for name, mk := range batchCases(t) {
		t.Run(name, func(t *testing.T) {
			src := mk(1)
			src.NextBatch(buf)
			if n := testing.AllocsPerRun(10, func() { src.NextBatch(buf) }); n != 0 {
				t.Fatalf("NextBatch allocates %v times per slab; want 0", n)
			}
		})
	}
}

// BenchmarkSourceSlab measures gap generation for each source in both
// traversal modes, one gap per iteration, so pull vs batch ns/op compare
// directly.
func BenchmarkSourceSlab(b *testing.B) {
	cases := map[string]func() BatchSource{
		"poisson": func() BatchSource {
			p, err := NewPoisson(40, xrand.New(1))
			if err != nil {
				b.Fatal(err)
			}
			return p
		},
		"cbr-jitter": func() BatchSource {
			c, err := NewCBR(40, 1e-4, xrand.New(1))
			if err != nil {
				b.Fatal(err)
			}
			return c
		},
		"onoff": func() BatchSource {
			o, err := NewOnOff(100, 0.5, 1.5, xrand.New(1))
			if err != nil {
				b.Fatal(err)
			}
			return o
		},
	}
	for name, mk := range cases {
		b.Run(name, func(b *testing.B) {
			b.Run("pull", func(b *testing.B) {
				src := mk()
				b.ReportAllocs()
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += src.Next()
				}
				_ = sink
			})
			b.Run("batch", func(b *testing.B) {
				src := mk()
				buf := make([]float64, 4096)
				b.ReportAllocs()
				for i := 0; i < b.N; i += len(buf) {
					src.NextBatch(buf)
				}
			})
		})
	}
}
