package traffic

import (
	"errors"
	"math"
	"sort"

	"linkpad/internal/xrand"
)

// OnOffSchedule is a seeded alternating availability schedule: exponential
// UP periods (mean MeanUp) alternate with exponential DOWN periods (mean
// MeanDown). It is the shared fault clock of the simulator — cascade hops
// go dark on one, population users churn on one — and it follows the
// repository's determinism discipline: the whole schedule is a pure
// function of the *xrand.Rand it was built with, so a schedule needs no
// serialized state; rebuilding it from the same stream seed reproduces it
// exactly, which is what lets checkpoint/resume skip it entirely.
//
// The initial state is drawn from the stationary distribution (up with
// probability MeanUp/(MeanUp+MeanDown)); exponential holding times are
// memoryless, so the residual first period needs no special handling and
// time zero is not biased toward availability.
//
// Transition times are generated lazily and memoized, so queries may move
// backward in time (binary search over the memoized prefix) as well as
// forward. A schedule is not safe for concurrent use.
type OnOffSchedule struct {
	rng      *xrand.Rand
	meanUp   float64
	meanDown float64
	startUp  bool
	trans    []float64 // memoized state-transition times, increasing
}

// NewOnOffSchedule creates a schedule with the given mean up and down
// durations (both positive) drawing from rng.
func NewOnOffSchedule(meanUp, meanDown float64, rng *xrand.Rand) (*OnOffSchedule, error) {
	if !(meanUp > 0) || !(meanDown > 0) {
		return nil, errors.New("traffic: schedule mean durations must be positive")
	}
	if rng == nil {
		return nil, errors.New("traffic: nil rng")
	}
	s := &OnOffSchedule{rng: rng, meanUp: meanUp, meanDown: meanDown}
	s.startUp = rng.Bernoulli(meanUp / (meanUp + meanDown))
	return s, nil
}

// UpFraction returns the stationary availability MeanUp/(MeanUp+MeanDown).
func (s *OnOffSchedule) UpFraction() float64 {
	return s.meanUp / (s.meanUp + s.meanDown)
}

// stateOf reports whether interval k (the k-th period, starting at 0) is up.
func (s *OnOffSchedule) stateOf(k int) bool {
	return s.startUp == (k%2 == 0)
}

// extendTo memoizes transition times until the last one exceeds t.
func (s *OnOffSchedule) extendTo(t float64) {
	for len(s.trans) == 0 || s.trans[len(s.trans)-1] <= t {
		k := len(s.trans) // index of the period the new transition ends
		mean := s.meanDown
		if s.stateOf(k) {
			mean = s.meanUp
		}
		var start float64
		if k > 0 {
			start = s.trans[k-1]
		}
		d := s.rng.Exp(mean)
		if !(d > 0) {
			// Exp can return subnormal ~0 draws; keep transitions strictly
			// increasing so interval lookup stays well defined.
			d = math.SmallestNonzeroFloat64
		}
		s.trans = append(s.trans, start+d)
	}
}

// UpAt reports whether the schedule is up at time t (>= 0).
func (s *OnOffSchedule) UpAt(t float64) bool {
	s.extendTo(t)
	k := sort.SearchFloat64s(s.trans, t)
	// trans[k] is the first transition > t (ties land in the later period,
	// consistent with periods being half-open [start, end)).
	if k < len(s.trans) && s.trans[k] == t {
		k++
	}
	return s.stateOf(k)
}

// NextUpAfter returns the earliest time >= t at which the schedule is up:
// t itself when up, otherwise the end of the down period containing t.
func (s *OnOffSchedule) NextUpAfter(t float64) float64 {
	s.extendTo(t)
	k := sort.SearchFloat64s(s.trans, t)
	if k < len(s.trans) && s.trans[k] == t {
		k++
	}
	if s.stateOf(k) {
		return t
	}
	// extendTo guarantees the last memoized transition exceeds t, so the
	// transition ending period k is already present.
	return s.trans[k]
}

// Gated filters a Source through an availability schedule: arrivals that
// fall in DOWN periods are dropped (the sender is offline), and the gap
// sequence re-bases on the surviving arrivals. It models a churning user's
// ingress traffic; the long-run rate scales by the schedule's up fraction.
type Gated struct {
	src      Source
	sched    *OnOffSchedule
	now      float64 // absolute time of the last generated arrival
	lastEmit float64 // absolute time of the last surviving arrival
}

// NewGated wraps src with the schedule.
func NewGated(src Source, sched *OnOffSchedule) (*Gated, error) {
	if src == nil {
		return nil, errors.New("traffic: nil source")
	}
	if sched == nil {
		return nil, errors.New("traffic: nil schedule")
	}
	return &Gated{src: src, sched: sched}, nil
}

// Next returns the gap until the next surviving arrival.
func (g *Gated) Next() float64 {
	for {
		g.now += g.src.Next()
		if g.sched.UpAt(g.now) {
			gap := g.now - g.lastEmit
			g.lastEmit = g.now
			return gap
		}
	}
}

// Rate returns the long-run surviving rate: the source rate scaled by the
// schedule's stationary up fraction.
func (g *Gated) Rate() float64 {
	return g.src.Rate() * g.sched.UpFraction()
}
