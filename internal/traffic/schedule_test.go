package traffic

import (
	"math"
	"testing"

	"linkpad/internal/xrand"
)

func TestOnOffScheduleValidation(t *testing.T) {
	if _, err := NewOnOffSchedule(0, 1, xrand.New(1)); err == nil {
		t.Error("zero mean up should fail")
	}
	if _, err := NewOnOffSchedule(1, -1, xrand.New(1)); err == nil {
		t.Error("negative mean down should fail")
	}
	if _, err := NewOnOffSchedule(1, 1, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestOnOffScheduleDeterministic(t *testing.T) {
	// Two schedules built from the same stream seed answer identically,
	// even when queried in different orders — the checkpoint contract:
	// schedules are rebuilt, never serialized.
	a, err := NewOnOffSchedule(2, 1, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOnOffSchedule(2, 1, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	// a walks forward; b probes the far future first, then walks back.
	b.UpAt(100)
	for i := 0; i <= 1000; i++ {
		at := float64(i) * 0.1
		if a.UpAt(at) != b.UpAt(at) {
			t.Fatalf("schedules diverge at t=%v", at)
		}
	}
}

func TestOnOffScheduleStationaryFraction(t *testing.T) {
	// The time-average availability over many cycles approaches
	// MeanUp/(MeanUp+MeanDown), and the stationary start keeps the early
	// prefix unbiased too.
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		meanUp := frac
		meanDown := 1 - frac
		var up, n int
		for seed := uint64(1); seed <= 20; seed++ {
			s, err := NewOnOffSchedule(meanUp, meanDown, xrand.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if s.UpFraction() != frac {
				t.Fatalf("UpFraction = %v, want %v", s.UpFraction(), frac)
			}
			for i := 0; i < 2000; i++ {
				if s.UpAt(float64(i) * 0.05) {
					up++
				}
				n++
			}
		}
		got := float64(up) / float64(n)
		if math.Abs(got-frac) > 0.05 {
			t.Errorf("stationary availability at frac %v: measured %v", frac, got)
		}
	}
}

func TestOnOffScheduleNextUpAfter(t *testing.T) {
	s, err := NewOnOffSchedule(0.5, 0.5, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		at := float64(i) * 0.07
		next := s.NextUpAfter(at)
		if next < at {
			t.Fatalf("NextUpAfter(%v) = %v went backward", at, next)
		}
		if s.UpAt(at) && next != at {
			t.Fatalf("up at %v but NextUpAfter = %v", at, next)
		}
		if !s.UpAt(next) {
			t.Fatalf("NextUpAfter(%v) = %v is not up", at, next)
		}
	}
}

func TestGatedRate(t *testing.T) {
	// Gating a Poisson source by a 50% schedule halves the long-run rate;
	// surviving arrivals all land in UP intervals.
	src, err := NewPoisson(100, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewOnOffSchedule(1, 1, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGated(src, sched)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rate() != 50 {
		t.Errorf("Rate() = %v, want 50", g.Rate())
	}
	check, err := NewOnOffSchedule(1, 1, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	var now, last float64
	for i := 0; i < n; i++ {
		gap := g.Next()
		if gap <= 0 {
			t.Fatalf("non-positive gap %v at %d", gap, i)
		}
		now += gap
		if !check.UpAt(now) {
			t.Fatalf("surviving arrival at %v falls in a DOWN interval", now)
		}
		last = now
	}
	if got := n / last; math.Abs(got-50)/50 > 0.05 {
		t.Errorf("measured gated rate %v, want ~50", got)
	}
}
