package netem

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"linkpad/internal/xrand"
)

func TestImpairmentValidate(t *testing.T) {
	bad := []Impairment{
		{LossProb: -0.1},
		{LossProb: 1},
		{DupProb: 1},
		{ReorderProb: 0.1},                   // no depth
		{ReorderDepth: 4},                    // depth without probability
		{ReorderProb: 0.1, ReorderDepth: -1}, // negative depth
		{ReorderProb: 0.1, ReorderDepth: 2000},
		{GE: &GilbertElliott{PGoodBad: 1.5, PBadGood: 0.5}},
		{GE: &GilbertElliott{PGoodBad: 0.5, PBadGood: 0.5, LossBad: 1}},
	}
	for i, im := range bad {
		if err := im.Validate(); err == nil {
			t.Errorf("profile %d should fail validation: %+v", i, im)
		}
	}
	var nilIm *Impairment
	if err := nilIm.Validate(); err != nil {
		t.Errorf("nil impairment should validate: %v", err)
	}
	if nilIm.Enabled() {
		t.Error("nil impairment reports enabled")
	}
	if (&Impairment{}).Enabled() {
		t.Error("zero impairment reports enabled")
	}
}

func TestGilbertElliottMeanLoss(t *testing.T) {
	// Stationary bad share p/(p+q); the faults.go lab chain: ~4.5%.
	g := GilbertElliott{PGoodBad: 0.05, PBadGood: 0.5, LossBad: 0.5}
	want := (0.05 / 0.55) * 0.5
	if got := g.MeanLoss(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanLoss = %v, want %v", got, want)
	}
	frozen := GilbertElliott{LossGood: 0.1}
	if got := frozen.MeanLoss(); got != 0.1 {
		t.Errorf("frozen chain MeanLoss = %v, want its good-state loss", got)
	}
}

func TestParseImpairment(t *testing.T) {
	im, err := ParseImpairment([]byte(`{"loss_prob":0.05,"reorder_prob":0.02,"reorder_depth":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if im.LossProb != 0.05 || im.ReorderDepth != 4 {
		t.Errorf("parsed %+v", im)
	}
	for _, bad := range []string{
		`{"loss_prob":2}`,            // invalid value
		`{"loss_probb":0.1}`,         // typo'd knob must not be ignored
		`{"loss_prob":0.1} trailing`, // trailing data
		`[0.1]`,                      // wrong shape
		``,                           // empty
	} {
		if _, err := ParseImpairment([]byte(bad)); err == nil {
			t.Errorf("ParseImpairment(%q) should fail", bad)
		}
	}
}

// drainImpairer pulls n outputs (upstream is an infinite periodic clock).
func drainImpairer(t *testing.T, im *Impairment, seed uint64, n int) []float64 {
	t.Helper()
	up := periodicTimes(4*n+1024, 1e-3)
	p, err := NewImpairer(NewSliceStream(up), im, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}

func TestImpairerLossRate(t *testing.T) {
	// i.i.d. loss at p: reading all outputs of a fixed input counts
	// (1-p)·n survivors.
	const n = 100000
	// 1024 guard times past the measurement region so the pull loop can
	// cross the boundary without exhausting the finite SliceStream.
	up := periodicTimes(n+1024, 1e-3)
	for _, p := range []float64{0.02, 0.1, 0.3} {
		imp, err := NewImpairer(NewSliceStream(up), &Impairment{LossProb: p}, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		survived := 0
		end := up[n-1]
		for {
			t := imp.Next()
			if t > end {
				break
			}
			survived++
		}
		got := 1 - float64(survived)/float64(n)
		if math.Abs(got-p) > 0.01 {
			t.Errorf("loss %v: measured %v", p, got)
		}
	}
}

func TestImpairerGEBursty(t *testing.T) {
	// The GE chain loses at its stationary rate, and losses cluster: the
	// mean run length of consecutive losses exceeds the i.i.d. value.
	g := &GilbertElliott{PGoodBad: 0.05, PBadGood: 0.5, LossBad: 0.5}
	const n = 200000
	up := periodicTimes(n+1024, 1e-3)
	imp, err := NewImpairer(NewSliceStream(up), &Impairment{GE: g}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	kept := make(map[float64]bool, n)
	end := up[n-1]
	for {
		t := imp.Next()
		if t > end {
			break
		}
		kept[t] = true
	}
	losses, runs, inRun := 0, 0, false
	for _, t := range up[:n] {
		if !kept[t] {
			losses++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	rate := float64(losses) / float64(n)
	if math.Abs(rate-g.MeanLoss()) > 0.01 {
		t.Errorf("GE loss rate %v, want %v", rate, g.MeanLoss())
	}
	// Given a loss, the next packet is also lost with probability
	// P(stay bad)·LossBad = 0.25, so the mean run is 1/(1-0.25) = 1.33 —
	// well above the i.i.d. value 1/(1-0.045) = 1.05 at the same rate.
	meanRun := float64(losses) / float64(runs)
	if meanRun < 1.25 {
		t.Errorf("GE mean loss-run length %v: losses are not bursty", meanRun)
	}
}

func TestImpairerDuplication(t *testing.T) {
	const n = 50000
	up := periodicTimes(n+1024, 1e-3)
	imp, err := NewImpairer(NewSliceStream(up), &Impairment{DupProb: 0.1}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	end := up[n-1]
	dups := 0
	var prev float64 = -1
	for {
		t := imp.Next()
		if t > end {
			break
		}
		if t == prev {
			dups++
		}
		prev = t
	}
	if got := float64(dups) / float64(n); math.Abs(got-0.1) > 0.01 {
		t.Errorf("duplication rate %v, want 0.1", got)
	}
}

func TestImpairerMonotoneOutput(t *testing.T) {
	// Forward-path reordering displaces a packet's *timestamp*, so the
	// emitted time sequence stays non-decreasing under every knob at once.
	im := &Impairment{
		LossProb:     0.05,
		GE:           &GilbertElliott{PGoodBad: 0.05, PBadGood: 0.5, LossBad: 0.5},
		DupProb:      0.05,
		ReorderProb:  0.1,
		ReorderDepth: 4,
	}
	out := drainImpairer(t, im, 8, 20000)
	if !sort.Float64sAreSorted(out) {
		t.Fatal("impaired forward path emitted a decreasing time")
	}
}

func TestImpairerReorderDisplacesTimestamps(t *testing.T) {
	// With only the reorder knob on, every input packet survives but some
	// are re-emitted at a later packet's timestamp: the output is a
	// multiset of input times where displaced entries repeat.
	const n = 20000
	const depth = 3
	up := periodicTimes(n, 1e-3)
	imp, err := NewImpairer(NewSliceStream(up), &Impairment{ReorderProb: 0.1, ReorderDepth: depth}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// Without loss every input eventually surfaces except the <= depth
	// held at stream end, so n-depth pulls never exhaust the input.
	displaced := 0
	var prev float64 = -1
	count := n - depth
	for i := 0; i < count; i++ {
		t := imp.Next()
		if t == prev {
			displaced++
		}
		prev = t
	}
	if displaced == 0 {
		t.Fatal("reorder knob displaced nothing")
	}
	if got := float64(displaced) / float64(count); math.Abs(got-0.1) > 0.02 {
		t.Errorf("displacement rate %v, want ~0.1", got)
	}
}

func TestWrapRecordIdentityWhenDisabled(t *testing.T) {
	var got []float64
	record := func(t float64) { got = append(got, t) }
	var nilIm *Impairment
	wrapped, err := nilIm.WrapRecord(record, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrapped(1)
	zero := &Impairment{}
	wrapped2, err := zero.WrapRecord(record, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrapped2(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("disabled WrapRecord altered the callback: %v", got)
	}
}

func TestWrapRecordOutOfOrder(t *testing.T) {
	// A tap-side reorder records the held observation late with its
	// ORIGINAL timestamp — the recorded sequence is genuinely out of
	// order, unlike the forward path's displaced-timestamp discipline.
	im := &Impairment{ReorderProb: 0.2, ReorderDepth: 3}
	var got []float64
	wrapped, err := im.WrapRecord(func(t float64) { got = append(got, t) }, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		wrapped(float64(i + 1))
	}
	if sort.Float64sAreSorted(got) {
		t.Fatal("tap reordering produced a sorted capture")
	}
	// No invention, no duplication: the capture is a subset of the input
	// (observations still held at stream end are dropped, never invented).
	seen := make(map[float64]int, len(got))
	for _, t2 := range got {
		seen[t2]++
	}
	for t2, c := range seen {
		if c != 1 {
			t.Fatalf("observation %v recorded %d times with DupProb 0", t2, c)
		}
		if t2 < 1 || t2 > n || t2 != math.Trunc(t2) {
			t.Fatalf("invented observation %v", t2)
		}
	}
	if short := n - len(got); short < 0 || short > im.ReorderDepth {
		t.Errorf("%d observations missing; at most ReorderDepth=%d may be in flight at stream end",
			short, im.ReorderDepth)
	}
	// Displacement bound: a held observation re-emerges after at most
	// ReorderDepth subsequent recordings.
	for i, t2 := range got {
		if i-int(t2) > im.ReorderDepth {
			t.Fatalf("observation %v displaced beyond depth at index %d", t2, i)
		}
	}
}

func TestWrapRecordLossAndDup(t *testing.T) {
	im := &Impairment{LossProb: 0.1, DupProb: 0.05}
	var got []float64
	wrapped, err := im.WrapRecord(func(t float64) { got = append(got, t) }, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		wrapped(float64(i))
	}
	// Expected recordings per observation: (1-0.1)·(1+0.05).
	want := n * 0.9 * 1.05
	if math.Abs(float64(len(got))-want)/want > 0.02 {
		t.Errorf("recorded %d observations, want ~%.0f", len(got), want)
	}
}

// FuzzParseImpairment: arbitrary config bytes must parse or error
// cleanly, never panic; a successful parse must validate, and
// re-encoding it must parse to the same profile (the config is
// canonical under round trip).
func FuzzParseImpairment(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"loss_prob":0.05}`))
	f.Add([]byte(`{"ge":{"p_good_bad":0.05,"p_bad_good":0.5,"loss_bad":0.5},"dup_prob":0.01}`))
	f.Add([]byte(`{"reorder_prob":0.02,"reorder_depth":4}`))
	f.Add([]byte(`{"loss_prob":1e-300,"dup_prob":0.999}`))
	f.Add([]byte(`{"loss_prob":0.1}garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := ParseImpairment(data)
		if err != nil {
			return
		}
		if err := im.Validate(); err != nil {
			t.Fatalf("parsed profile fails validation: %v", err)
		}
		// JSON cannot encode NaN, so a parsed profile re-encodes and
		// re-parses to the identical value.
		data2, err := json.Marshal(im)
		if err != nil {
			t.Fatalf("re-encoding a parsed profile failed: %v", err)
		}
		again, err := ParseImpairment(data2)
		if err != nil {
			t.Fatalf("re-parsing an encoded profile failed: %v", err)
		}
		if scalarPart(*again) != scalarPart(*im) ||
			(again.GE == nil) != (im.GE == nil) ||
			(again.GE != nil && *again.GE != *im.GE) {
			t.Fatalf("round trip changed the profile: %+v != %+v", again, im)
		}
	})
}

// scalarPart strips the GE pointer so profiles compare with ==.
func scalarPart(im Impairment) Impairment {
	im.GE = nil
	return im
}
