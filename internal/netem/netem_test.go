package netem

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"linkpad/internal/sim"
	"linkpad/internal/stats"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// service time of a 1500-byte packet on 100 Mbit/s
const svc = 120e-6

func periodicTimes(n int, period float64) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i+1) * period
	}
	return ts
}

func TestServiceTime(t *testing.T) {
	if got := ServiceTime(100e6, 1500); math.Abs(got-svc) > 1e-12 {
		t.Errorf("ServiceTime = %v, want %v", got, svc)
	}
	if got := ServiceTime(10e6, 1500); math.Abs(got-1.2e-3) > 1e-12 {
		t.Errorf("ServiceTime = %v, want 1.2ms", got)
	}
}

func TestMD1FormulasKnown(t *testing.T) {
	// rho=0.4, s=1: mean = 1/3, var = 1/3 (worked example in package docs).
	if got := MD1WaitMean(0.4, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := MD1WaitVar(0.4, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("var = %v", got)
	}
	if MD1WaitMean(0, 1) != 0 || MD1WaitVar(0, 1) != 0 {
		t.Error("zero utilization should have zero waiting")
	}
}

// The P-K ladder sampler inside FastRouter must reproduce the M/D/1
// moments: probe with widely spaced packets so FIFO clamping never binds.
func TestFastRouterMatchesMD1Moments(t *testing.T) {
	for _, rho := range []float64{0.1, 0.3, 0.5} {
		const n = 300000
		in := periodicTimes(n, 10e-3)
		fr, err := NewFastRouter(NewSliceStream(in), svc, ConstUtil(rho), 0, xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		var m stats.Moments
		zeros := 0
		for i := 0; i < n; i++ {
			w := fr.Next() - in[i] - svc
			if w < -1e-9 {
				t.Fatalf("negative waiting %v", w)
			}
			if w < 1e-12 {
				zeros++
			}
			m.Add(w)
		}
		if want := MD1WaitMean(rho, svc); math.Abs(m.Mean()-want)/want > 0.03 {
			t.Errorf("rho=%v: mean wait = %v, want %v", rho, m.Mean(), want)
		}
		if want := MD1WaitVar(rho, svc); math.Abs(m.Variance()-want)/want > 0.05 {
			t.Errorf("rho=%v: wait var = %v, want %v", rho, m.Variance(), want)
		}
		// P(W = 0) = 1 - rho: the sharp peak that keeps entropy detection
		// alive under cross traffic.
		if got, want := float64(zeros)/n, 1-rho; math.Abs(got-want) > 0.01 {
			t.Errorf("rho=%v: P(W=0) = %v, want %v", rho, got, want)
		}
	}
}

// The exact Lindley router fed by Poisson cross traffic must agree with
// the closed-form M/D/1 waiting moments (PASTA applies to the padded
// probes only approximately, but 10 ms spacing samples the stationary
// workload essentially independently).
func TestExactRouterMatchesMD1(t *testing.T) {
	const rho = 0.4
	const n = 200000
	in := periodicTimes(n, 10e-3)
	cross, err := traffic.NewPoisson(rho/svc, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(NewSliceStream(in), cross, svc, 0)
	if err != nil {
		t.Fatal(err)
	}
	var m stats.Moments
	for i := 0; i < n; i++ {
		w := r.Next() - in[i] - svc
		if w < -1e-9 {
			t.Fatalf("negative waiting %v", w)
		}
		m.Add(w)
	}
	if want := MD1WaitMean(rho, svc); math.Abs(m.Mean()-want)/want > 0.05 {
		t.Errorf("mean wait = %v, want %v", m.Mean(), want)
	}
	if want := MD1WaitVar(rho, svc); math.Abs(m.Variance()-want)/want > 0.10 {
		t.Errorf("wait var = %v, want %v", m.Variance(), want)
	}
}

// Fast and exact routers must produce statistically equivalent padded
// delay distributions — the license to use FastRouter in the big sweeps.
func TestFastVsExactRouterDistributions(t *testing.T) {
	const rho = 0.3
	const n = 100000
	in := periodicTimes(n, 10e-3)

	fr, err := NewFastRouter(NewSliceStream(in), svc, ConstUtil(rho), 0, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cross, err := traffic.NewPoisson(rho/svc, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewRouter(NewSliceStream(in), cross, svc, 0)
	if err != nil {
		t.Fatal(err)
	}
	wf := make([]float64, n)
	we := make([]float64, n)
	for i := 0; i < n; i++ {
		wf[i] = fr.Next() - in[i]
		we[i] = ex.Next() - in[i]
	}
	d, err := stats.KSDistance(wf, we)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.02 {
		t.Errorf("KS distance between fast and exact delays = %v", d)
	}
}

// Independent cross-validation: an event-heap implementation of the same
// FIFO queue (via internal/sim) must agree with the Lindley router almost
// exactly on identical arrival sequences.
func TestRouterAgreesWithEventDrivenSim(t *testing.T) {
	const rho = 0.35
	const n = 5000
	in := periodicTimes(n, 10e-3)
	horizon := in[n-1] + 1

	// Pre-generate one shared cross arrival sequence.
	crossRng := xrand.New(5)
	var crossTimes []float64
	for t0 := crossRng.Exp(svc / rho); t0 < horizon; t0 += crossRng.Exp(svc / rho) {
		crossTimes = append(crossTimes, t0)
	}

	// Event-driven queue on the sim heap.
	s := sim.New()
	var freeAt float64
	tagged := make([]float64, 0, n)
	arrive := func(tag bool) func() {
		return func() {
			start := s.Now()
			if freeAt > start {
				start = freeAt
			}
			dep := start + svc
			freeAt = dep
			if tag {
				tagged = append(tagged, dep)
			}
		}
	}
	for _, ct := range crossTimes {
		if err := s.At(ct, arrive(false)); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range in {
		if err := s.At(it, arrive(true)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()

	// Lindley router over a replayed copy of the same cross sequence.
	replay := &sliceSource{times: crossTimes}
	r, err := NewRouter(NewSliceStream(in), replay, svc, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := r.Next()
		if math.Abs(got-tagged[i]) > 1e-9 {
			t.Fatalf("packet %d: lindley %v vs event-driven %v", i, got, tagged[i])
		}
	}
}

// sliceSource replays absolute times as a traffic.Source (gap sequence).
type sliceSource struct {
	times []float64
	i     int
	last  float64
}

func (s *sliceSource) Next() float64 {
	if s.i >= len(s.times) {
		return math.Inf(1)
	}
	gap := s.times[s.i] - s.last
	s.last = s.times[s.i]
	s.i++
	return gap
}

func (s *sliceSource) Rate() float64 { return 0 }

func TestRouterNoCrossIsPureDelay(t *testing.T) {
	in := periodicTimes(100, 10e-3)
	r, err := NewRouter(NewSliceStream(in), nil, svc, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got := r.Next()
		want := in[i] + svc + 5e-3
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("packet %d: %v want %v", i, got, want)
		}
	}
}

func TestFastRouterFIFONeverReorders(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		// Bursty upstream: some gaps shorter than the service time.
		times := make([]float64, 300)
		tt := 0.0
		for i := range times {
			tt += r.Exp(svc / 2)
			times[i] = tt
		}
		fr, err := NewFastRouter(NewSliceStream(times), svc, ConstUtil(0.5), 0, r.Split())
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for i := 0; i < 300; i++ {
			out := fr.Next()
			if out < prev+svc-1e-15 {
				return false
			}
			prev = out
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorValidation(t *testing.T) {
	up := NewSliceStream(periodicTimes(1, 1))
	if _, err := NewFastRouter(nil, svc, ConstUtil(0), 0, xrand.New(1)); err == nil {
		t.Error("nil upstream")
	}
	if _, err := NewFastRouter(up, 0, ConstUtil(0), 0, xrand.New(1)); err == nil {
		t.Error("zero service")
	}
	if _, err := NewFastRouter(up, svc, nil, 0, xrand.New(1)); err == nil {
		t.Error("nil util")
	}
	if _, err := NewFastRouter(up, svc, ConstUtil(0), -1, xrand.New(1)); err == nil {
		t.Error("negative prop")
	}
	if _, err := NewFastRouter(up, svc, ConstUtil(0), 0, nil); err == nil {
		t.Error("nil rng")
	}
	if _, err := NewRouter(nil, nil, svc, 0); err == nil {
		t.Error("router nil upstream")
	}
	if _, err := NewRouter(up, nil, -1, 0); err == nil {
		t.Error("router bad service")
	}
	if _, err := NewLossyTap(up, 1.0, xrand.New(1)); err == nil {
		t.Error("loss prob 1")
	}
	if _, err := NewLossyTap(up, 0.5, nil); err == nil {
		t.Error("lossy nil rng")
	}
	if _, err := NewQuantizer(up, 0); err == nil {
		t.Error("zero resolution")
	}
	if _, err := NewPath(nil, nil, nil); err == nil {
		t.Error("path nil upstream")
	}
	if _, err := NewPath(up, UniformHops(1, svc, ConstUtil(0.1), 0), nil); err == nil {
		t.Error("path nil rng")
	}
}

func TestPathZeroHopsPassThrough(t *testing.T) {
	up := NewSliceStream(periodicTimes(5, 1))
	p, err := NewPath(up, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Next() != 1 {
		t.Error("zero-hop path should be the upstream itself")
	}
}

// More hops accumulate more queueing noise: PIAT variance grows with path
// length — the paper's campus vs WAN contrast.
func TestPathNoiseGrowsWithHops(t *testing.T) {
	const n = 60000
	variance := func(hops int) float64 {
		up := NewSliceStream(periodicTimes(n+1, 10e-3))
		p, err := NewPath(up, UniformHops(hops, svc, ConstUtil(0.2), 1e-3), xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return stats.Variance(NewDiffer(p).PIATs(n))
	}
	v1, v5, v15 := variance(1), variance(5), variance(15)
	if !(v1 < v5 && v5 < v15) {
		t.Errorf("PIAT variance not increasing with hops: %v %v %v", v1, v5, v15)
	}
}

func TestDiurnalUtil(t *testing.T) {
	d := traffic.Diurnal{Trough: 0.05, Peak: 0.35, TroughHour: 3}
	u := DiurnalUtil(d, 0) // run starts at midnight
	if got := u.At(3 * 3600); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("u.At(3h) = %v", got)
	}
	if got := u.At(15 * 3600); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("u.At(15h) = %v", got)
	}
	u2 := DiurnalUtil(d, 3) // run starts at 3 AM
	if got := u2.At(0); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("start-hour offset broken: %v", got)
	}
}

func TestDifferAndPIATs(t *testing.T) {
	d := NewDiffer(NewSliceStream([]float64{1, 1.5, 2.5, 4}))
	got := d.PIATs(3)
	want := []float64{0.5, 1, 1.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("PIATs = %v, want %v", got, want)
		}
	}
}

func TestLossyTapRate(t *testing.T) {
	const n = 100000
	in := periodicTimes(n, 10e-3)
	lt, err := NewLossyTap(NewSliceStream(in), 0.2, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	prev := -1.0
	for {
		tt := lt.Next()
		if tt >= in[n-1000] { // stop before the slice runs out
			break
		}
		if tt <= prev {
			t.Fatal("lossy tap reordered output")
		}
		prev = tt
		kept++
	}
	rate := float64(kept) / float64(n-1000)
	if math.Abs(rate-0.8) > 0.01 {
		t.Errorf("survivor rate = %v, want ~0.8", rate)
	}
}

func TestLossyTapZeroLossPassThrough(t *testing.T) {
	in := periodicTimes(10, 1)
	lt, err := NewLossyTap(NewSliceStream(in), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if lt.Next() != in[i] {
			t.Fatal("zero-loss tap must pass through")
		}
	}
}

func TestQuantizer(t *testing.T) {
	q, err := NewQuantizer(NewSliceStream([]float64{0.0000014, 0.0000026, 0.0000026}), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1e-6, 2e-6, 2e-6}
	for i := range want {
		if got := q.Next(); math.Abs(got-want[i]) > 1e-18 {
			t.Fatalf("quantized[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestSliceStreamOrder(t *testing.T) {
	xs := []float64{3, 1, 2}
	sort.Float64s(xs)
	s := NewSliceStream(xs)
	if s.Next() != 1 || s.Next() != 2 || s.Next() != 3 {
		t.Error("slice stream order broken")
	}
}

func BenchmarkFastRouterNext(b *testing.B) {
	in := make([]float64, b.N+1)
	for i := range in {
		in[i] = float64(i) * 10e-3
	}
	fr, err := NewFastRouter(NewSliceStream(in), svc, ConstUtil(0.4), 0, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Next()
	}
}

func BenchmarkExactRouterNext(b *testing.B) {
	in := make([]float64, b.N+1)
	for i := range in {
		in[i] = float64(i) * 10e-3
	}
	cross, err := traffic.NewPoisson(0.4/svc, xrand.New(2))
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRouter(NewSliceStream(in), cross, svc, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Next()
	}
}

// The Differ's session clock: Now tracks the absolute time of the last
// observed packet across windows, Skip discards warm-up PIATs while still
// advancing the clock, and Observed counts everything consumed.
func TestDifferSessionClock(t *testing.T) {
	times := []float64{1.0, 1.5, 2.5, 4.0, 6.0, 9.0}
	d := NewDiffer(NewSliceStream(times))
	if d.Now() != 0 || d.Observed() != 0 {
		t.Fatalf("fresh differ: now=%v observed=%d", d.Now(), d.Observed())
	}
	d.Skip(2) // consumes gaps 0.5 and 1.0, clock at 2.5
	if d.Now() != 2.5 {
		t.Errorf("after Skip(2): now=%v, want 2.5", d.Now())
	}
	if d.Observed() != 2 {
		t.Errorf("after Skip(2): observed=%d, want 2", d.Observed())
	}
	if x := d.Next(); x != 1.5 {
		t.Errorf("next PIAT after skip = %v, want 1.5", x)
	}
	if d.Now() != 4.0 || d.Observed() != 3 {
		t.Errorf("clock after next: now=%v observed=%d", d.Now(), d.Observed())
	}
	// Consuming window-by-window continues the same timeline.
	if x := d.Next(); x != 2.0 {
		t.Errorf("continuation PIAT = %v, want 2.0", x)
	}
}
