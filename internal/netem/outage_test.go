package netem

import (
	"testing"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// outageSchedule builds a fresh schedule from a fixed stream seed so a
// test can probe the same fault clock the stream under test uses.
func outageSchedule(t *testing.T, seed uint64) *traffic.OnOffSchedule {
	t.Helper()
	s, err := traffic.NewOnOffSchedule(0.5, 0.5, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOutageStreamValidation(t *testing.T) {
	up := NewSliceStream(periodicTimes(4, 1e-3))
	sched := outageSchedule(t, 1)
	if _, err := NewOutageStream(nil, sched, 0, 0); err == nil {
		t.Error("nil upstream should fail")
	}
	if _, err := NewOutageStream(up, nil, 0, 0); err == nil {
		t.Error("nil schedule should fail")
	}
	if _, err := NewOutageStream(up, sched, -1, 0); err == nil {
		t.Error("negative backoff should fail")
	}
	if _, err := NewOutageStream(up, sched, 0.1, 0.2); err == nil {
		t.Error("backoff and spare together should fail")
	}
}

func TestOutageStreamWaitPolicy(t *testing.T) {
	// Wait-for-recovery: a packet hitting a dark interval departs exactly
	// at the recovery instant; up-interval packets are untouched. FIFO
	// holds throughout.
	const n = 20000
	in := periodicTimes(n, 1e-3)
	o, err := NewOutageStream(NewSliceStream(in), outageSchedule(t, 2), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	check := outageSchedule(t, 2)
	var last float64
	hit := 0
	for i, want := range in {
		out := o.Next()
		if out < last {
			t.Fatalf("FIFO violated at packet %d: %v < %v", i, out, last)
		}
		prev := last
		last = out
		if check.UpAt(want) {
			if out != want && out != prev {
				t.Fatalf("up-interval packet %d moved from %v to %v without a queue ahead", i, want, out)
			}
			continue
		}
		hit++
		if recov := check.NextUpAfter(want); out < recov {
			t.Fatalf("packet %d departed at %v before recovery %v", i, out, recov)
		}
	}
	gotHit, diverted := o.Affected()
	if gotHit != hit {
		t.Errorf("Affected() = %d, schedule says %d packets hit outages", gotHit, hit)
	}
	if diverted != 0 {
		t.Errorf("wait policy diverted %d packets", diverted)
	}
	if hit == 0 {
		t.Fatal("no packet hit an outage; the scenario tests nothing")
	}
}

func TestOutageStreamBackoffOvershoot(t *testing.T) {
	// Retry/backoff: the first successful attempt lies at t + b·2^(k−1)
	// for some k >= 1, lands in an up interval, and overshoots the
	// recovery instant by less than the final step — the policy's leak.
	const n = 20000
	const b = 0.01
	in := periodicTimes(n, 1e-3)
	o, err := NewOutageStream(NewSliceStream(in), outageSchedule(t, 3), b, 0)
	if err != nil {
		t.Fatal(err)
	}
	check := outageSchedule(t, 3)
	var last float64
	overshot := 0
	for i, want := range in {
		out := o.Next()
		if out < last {
			t.Fatalf("FIFO violated at packet %d", i)
		}
		prev := last
		last = out
		if check.UpAt(want) {
			continue
		}
		if out == prev {
			continue // FIFO clamp, not an attempt time
		}
		// out = want + b·2^(k−1): recover the step and check the ladder.
		step := b
		for want+step < out {
			step += step
		}
		if want+step != out {
			t.Fatalf("packet %d departed at %v, not on the backoff ladder from %v", i, out, want)
		}
		if !check.UpAt(out) {
			t.Fatalf("packet %d retried into a dark interval at %v", i, out)
		}
		if recov := check.NextUpAfter(want); out > recov {
			overshot++
			if out-recov >= step {
				t.Fatalf("packet %d overshot recovery %v by a full step at %v", i, recov, out)
			}
		}
	}
	if overshot == 0 {
		t.Error("backoff never overshot a recovery instant; the leak is untested")
	}
}

func TestOutageStreamSparePolicy(t *testing.T) {
	// Failover: affected packets shift by exactly SpareDelay (modulo the
	// FIFO clamp); every affected packet counts as diverted.
	const n = 10000
	const spare = 0.02
	in := periodicTimes(n, 1e-3)
	o, err := NewOutageStream(NewSliceStream(in), outageSchedule(t, 4), 0, spare)
	if err != nil {
		t.Fatal(err)
	}
	check := outageSchedule(t, 4)
	var last float64
	for i, want := range in {
		out := o.Next()
		if out < last {
			t.Fatalf("FIFO violated at packet %d", i)
		}
		prev := last
		last = out
		if check.UpAt(want) {
			continue
		}
		if out != want+spare && out != prev {
			t.Fatalf("packet %d departed at %v, want %v (spare) or %v (clamp)", i, out, want+spare, prev)
		}
	}
	hit, diverted := o.Affected()
	if hit == 0 || hit != diverted {
		t.Errorf("Affected() = (%d, %d): every affected packet should divert", hit, diverted)
	}
}

func TestGateStream(t *testing.T) {
	// GateStream drops dark-interval packets outright: the output is the
	// exact up-interval subsequence of the input.
	const n = 20000
	in := periodicTimes(n, 1e-3)
	g, err := NewGateStream(NewSliceStream(in), outageSchedule(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	check := outageSchedule(t, 5)
	want := make([]float64, 0, n)
	for _, t2 := range in {
		if check.UpAt(t2) {
			want = append(want, t2)
		}
	}
	if len(want) == 0 || len(want) == n {
		t.Fatal("degenerate schedule; the scenario tests nothing")
	}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("surviving packet %d = %v, want %v", i, got, w)
		}
	}
}
