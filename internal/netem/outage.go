package netem

import (
	"errors"

	"linkpad/internal/obs"
	"linkpad/internal/traffic"
)

// Hop outages (outage.go): a cascade hop goes dark on a seeded
// traffic.OnOffSchedule and recovers. Packets that would depart during a
// dark interval are handled by one of three policies, all of which leak
// differently to a timing adversary:
//
//   - wait-for-recovery (Backoff = 0, SpareDelay = 0): the packet departs
//     at the instant the hop comes back up, so an outage prints a dead
//     interval followed by a flush burst;
//   - retry/backoff (Backoff > 0): the entry gateway retries at
//     exponentially growing offsets (t + b, t + 2b, t + 4b, ...) until an
//     attempt lands in an up interval. The first successful attempt
//     overshoots the recovery instant by up to one backoff step, so the
//     recovery burst is delayed and smeared — the retry policy itself is
//     a measurable leak;
//   - failover (SpareDelay > 0): the packet diverts to a spare route and
//     arrives SpareDelay later; the outage prints as a delay step rather
//     than a gap.
//
// FIFO holds throughout: a departure never precedes its predecessor, so
// packets queued behind an outage flush in order at recovery.

// OutageStream applies an availability schedule to a TimeStream.
type OutageStream struct {
	upstream   TimeStream
	sched      *traffic.OnOffSchedule
	backoff    float64
	spareDelay float64
	lastOut    float64
	started    bool
	affected   int
	diverted   int
	probe      *obs.Shard
}

// SetProbe attaches a telemetry shard; dark-interval hits and the extra
// delay they cost count into it.
func (o *OutageStream) SetProbe(s *obs.Shard) { o.probe = s }

// NewOutageStream wraps upstream with the schedule. backoff and
// spareDelay must not both be positive (a gateway either retries the
// primary route or diverts to the spare, not both).
func NewOutageStream(upstream TimeStream, sched *traffic.OnOffSchedule, backoff, spareDelay float64) (*OutageStream, error) {
	if upstream == nil {
		return nil, errors.New("netem: nil upstream")
	}
	if sched == nil {
		return nil, errors.New("netem: nil schedule")
	}
	if backoff < 0 || spareDelay < 0 {
		return nil, errors.New("netem: outage backoff and spare delay must be non-negative")
	}
	if backoff > 0 && spareDelay > 0 {
		return nil, errors.New("netem: outage backoff and spare failover are mutually exclusive")
	}
	return &OutageStream{upstream: upstream, sched: sched, backoff: backoff, spareDelay: spareDelay}, nil
}

// Next returns the departure time of the next packet under the outage
// policy.
func (o *OutageStream) Next() float64 {
	t := o.upstream.Next()
	out := t
	if !o.sched.UpAt(t) {
		o.affected++
		switch {
		case o.spareDelay > 0:
			o.diverted++
			out = t + o.spareDelay
		case o.backoff > 0:
			// Exponential backoff: attempt k happens at t + b·2^(k−1).
			step := o.backoff
			for out = t + step; !o.sched.UpAt(out); out = t + step {
				step += step
			}
		default:
			out = o.sched.NextUpAfter(t)
		}
		o.probe.Inc(obs.NetemOutageHit)
		// Integer nanoseconds: deterministic (a pure function of the
		// departure times) and exactly summable across chains.
		o.probe.Add(obs.NetemOutageNanos, uint64((out-t)*1e9))
	}
	if o.started && out < o.lastOut {
		out = o.lastOut
	}
	o.started = true
	o.lastOut = out
	return out
}

// Affected returns how many packets hit a dark interval, and how many of
// those diverted to the spare route.
func (o *OutageStream) Affected() (hit, diverted int) { return o.affected, o.diverted }

// GateStream drops packets that fall in the schedule's DOWN intervals:
// the egress of a churned user's padded link, which emits nothing while
// the user is offline (unlike an OutageStream, nothing is deferred — the
// packets never existed). The pull loop always terminates because UP
// intervals recur with positive mean.
type GateStream struct {
	upstream TimeStream
	sched    *traffic.OnOffSchedule
}

// NewGateStream wraps upstream with the schedule.
func NewGateStream(upstream TimeStream, sched *traffic.OnOffSchedule) (*GateStream, error) {
	if upstream == nil {
		return nil, errors.New("netem: nil upstream")
	}
	if sched == nil {
		return nil, errors.New("netem: nil schedule")
	}
	return &GateStream{upstream: upstream, sched: sched}, nil
}

// Next returns the next packet time that falls in an UP interval.
func (g *GateStream) Next() float64 {
	for {
		t := g.upstream.Next()
		if g.sched.UpAt(t) {
			return t
		}
	}
}
