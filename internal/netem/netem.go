// Package netem models the unprotected network between the sender and
// receiver gateways: store-and-forward routers whose queues are shared
// with crossover traffic (the source of δ_net in the paper's PIAT
// decomposition, eq. 8), multi-hop paths, and adversary tap imperfections.
//
// Two router implementations are provided:
//
//   - Router: an exact FIFO single-server queue fed by the padded stream
//     plus a crossover arrival process, advanced with the Lindley
//     recursion. This is the ground truth.
//   - FastRouter: per-packet waiting times sampled i.i.d. from the exact
//     stationary M/D/1 waiting-time distribution via the
//     Pollaczek-Khinchine geometric ladder representation. Valid because
//     padded packets are spaced ~10 ms apart, far longer than a busy
//     period at the utilizations studied, so consecutive padded packets
//     see essentially independent queue states. Used for the large
//     parameter sweeps; equivalence with Router is enforced by tests.
//
// Determinism contract: every element draws from the explicit
// *xrand.Rand it was built with, in packet order, so a path is a pure
// function of (upstream stream, rngs). Differ adapts an absolute-time
// stream to the PIATs the adversary consumes while carrying the session
// clock (Now) and warm-up discard (Skip) across windows. Allocation
// discipline: all elements are streaming with O(1) state — no packet
// buffers, nothing allocated per packet.
package netem

import (
	"errors"
	"math"

	"linkpad/internal/obs"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// TimeStream is a monotone sequence of absolute event times in seconds.
// The gateway's padded departure process and every network element's
// output implement it.
type TimeStream interface {
	Next() float64
}

// ServiceTime returns the transmission time of a packet of size
// packetBytes on a link of capacityBps bits per second.
func ServiceTime(capacityBps float64, packetBytes int) float64 {
	return float64(packetBytes*8) / capacityBps
}

// MD1WaitMean returns the mean stationary M/D/1 waiting time at
// utilization rho and deterministic service time s: ρs / (2(1−ρ)).
func MD1WaitMean(rho, s float64) float64 {
	return rho * s / (2 * (1 - rho))
}

// MD1WaitVar returns the stationary M/D/1 waiting-time variance at
// utilization rho and service s, from the ladder representation:
// (ρ/(1−ρ))·s²/12 + (ρ/(1−ρ)²)·s²/4.
func MD1WaitVar(rho, s float64) float64 {
	q := 1 - rho
	return rho/q*s*s/12 + rho/(q*q)*s*s/4
}

// Util gives the crossover-traffic utilization of a router's outgoing
// link at absolute time t (seconds since the run began). It is an
// interface rather than a func type so the batched router loop can
// recognize the two concrete profiles the simulator uses — constant and
// diurnal — and devirtualize the per-packet utilization lookup; any
// other implementation (including a plain UtilFunc closure) works
// through the generic path.
type Util interface {
	At(t float64) float64
}

// UtilFunc adapts an arbitrary function to the Util interface.
type UtilFunc func(t float64) float64

// At returns f(t).
func (f UtilFunc) At(t float64) float64 { return f(t) }

// constUtil is the flat profile, recognized by the batched router loop.
type constUtil float64

// At returns the constant utilization.
func (c constUtil) At(float64) float64 { return float64(c) }

// ConstUtil returns a Util that is flat at u.
func ConstUtil(u float64) Util { return constUtil(u) }

// diurnalUtil anchors a traffic.Diurnal profile to a run's start hour,
// recognized by the batched router loop.
type diurnalUtil struct {
	d         traffic.Diurnal
	startHour float64
}

// At returns the profile's utilization at absolute run time t.
func (u diurnalUtil) At(t float64) float64 { return u.d.At(u.startHour + t/3600) }

// DiurnalUtil adapts a traffic.Diurnal profile: simulation time zero is
// startHour o'clock. A flat profile (Peak == Trough) collapses to the
// constant Util: Diurnal.At returns exactly Trough for it at every hour,
// so the substitution is bit-identical and lets the batched router loop
// take its draw-cheap constant path.
func DiurnalUtil(d traffic.Diurnal, startHour float64) Util {
	if d.Peak == d.Trough {
		return constUtil(d.Trough)
	}
	return diurnalUtil{d: d, startHour: startHour}
}

// maxRho caps utilization for the stationary sampler; above it the
// M/D/1 queue is so close to saturation that stationary sampling is
// meaningless for a 10 ms-spaced probe stream.
const maxRho = 0.95

// FastRouter transforms an upstream padded stream by adding an i.i.d.
// stationary M/D/1 waiting time, the deterministic service time, and a
// constant propagation delay, while preserving FIFO order.
type FastRouter struct {
	upstream TimeStream
	service  float64
	util     Util
	prop     float64
	rng      *xrand.Rand
	lastOut  float64
	started  bool
}

// NewFastRouter creates a sampled router. service must be positive, util
// non-nil, prop non-negative.
func NewFastRouter(upstream TimeStream, service float64, util Util, prop float64, rng *xrand.Rand) (*FastRouter, error) {
	if upstream == nil {
		return nil, errors.New("netem: nil upstream")
	}
	if !(service > 0) {
		return nil, errors.New("netem: service time must be positive")
	}
	if util == nil {
		return nil, errors.New("netem: nil utilization function")
	}
	if prop < 0 {
		return nil, errors.New("netem: negative propagation delay")
	}
	if rng == nil {
		return nil, errors.New("netem: nil rng")
	}
	return &FastRouter{upstream: upstream, service: service, util: util, prop: prop, rng: rng}, nil
}

// sampleMD1Wait draws from the stationary M/D/1 waiting-time distribution
// via the Pollaczek-Khinchine representation: a Geometric(ρ) number of
// i.i.d. Uniform(0, s) ladder heights.
func sampleMD1Wait(rho, s float64, rng *xrand.Rand) float64 {
	if rho <= 0 {
		return 0
	}
	if rho > maxRho {
		rho = maxRho
	}
	k := rng.Geometric(rho)
	var w float64
	for i := 0; i < k; i++ {
		w += s * rng.Float64()
	}
	return w
}

// Next returns the departure time of the next padded packet from this
// router. Outputs never reorder: a packet leaves no earlier than one
// service time after its predecessor.
func (r *FastRouter) Next() float64 {
	t := r.upstream.Next()
	rho := r.util.At(t)
	if rho < 0 {
		rho = 0
	}
	out := t + sampleMD1Wait(rho, r.service, r.rng) + r.service + r.prop
	if r.started && out < r.lastOut+r.service {
		out = r.lastOut + r.service
	}
	r.started = true
	r.lastOut = out
	return out
}

// Router is the exact FIFO single-server queue: the padded stream and a
// crossover arrival process share one output link; every packet takes one
// deterministic service time. Departures follow the Lindley recursion.
type Router struct {
	upstream  TimeStream
	cross     traffic.Source
	service   float64
	prop      float64
	free      float64 // time the server becomes free
	nextCross float64
	started   bool
	// crossBuf[crossIdx:] holds cross-arrival gaps pre-drawn by the
	// batched path (one bulk NextBatch on the cross source instead of a
	// draw per cross packet). The gaps are consumed in draw order by
	// both Next and NextBatch, so the output stream is bit-identical to
	// the unbuffered recursion; only the cross RNG's read-ahead differs,
	// which nothing observes (routers are not checkpointable).
	crossBuf []float64
	crossIdx int
}

// NewRouter creates an exact router. cross may be nil for a dedicated
// (zero cross traffic) link.
func NewRouter(upstream TimeStream, cross traffic.Source, service, prop float64) (*Router, error) {
	if upstream == nil {
		return nil, errors.New("netem: nil upstream")
	}
	if !(service > 0) {
		return nil, errors.New("netem: service time must be positive")
	}
	if prop < 0 {
		return nil, errors.New("netem: negative propagation delay")
	}
	return &Router{upstream: upstream, cross: cross, service: service, prop: prop, nextCross: math.Inf(1)}, nil
}

// Next returns the departure time of the next padded packet, processing
// every crossover packet that arrived before it in FIFO order.
func (r *Router) Next() float64 {
	if !r.started {
		r.started = true
		if r.cross != nil {
			r.nextCross = r.cross.Next()
		}
	}
	t := r.upstream.Next()
	// Serve all cross packets arriving strictly before the padded packet.
	for r.nextCross < t {
		if r.nextCross > r.free {
			r.free = r.nextCross
		}
		r.free += r.service
		r.nextCross += r.nextCrossGap()
	}
	if t > r.free {
		r.free = t
	}
	r.free += r.service
	return r.free + r.prop
}

// nextCrossGap returns the next cross-arrival gap: a pre-drawn one if
// the batched path left any buffered, a fresh draw otherwise.
func (r *Router) nextCrossGap() float64 {
	if r.crossIdx < len(r.crossBuf) {
		g := r.crossBuf[r.crossIdx]
		r.crossIdx++
		return g
	}
	return r.cross.Next()
}

// Hop describes one router on a path.
type Hop struct {
	// Service is the per-packet transmission time on the outgoing link.
	Service float64
	// Util is the crossover utilization profile of the outgoing link.
	Util Util
	// Prop is the constant propagation delay to the next hop.
	Prop float64
}

// NewPath chains FastRouters over the given hops, splitting independent
// RNG streams off rng for each hop. An empty hop list returns upstream
// unchanged.
func NewPath(upstream TimeStream, hops []Hop, rng *xrand.Rand) (TimeStream, error) {
	if upstream == nil {
		return nil, errors.New("netem: nil upstream")
	}
	s := upstream
	for i, h := range hops {
		if rng == nil {
			return nil, errors.New("netem: nil rng with non-empty path")
		}
		fr, err := NewFastRouter(s, h.Service, h.Util, h.Prop, rng.Split())
		if err != nil {
			return nil, errors.Join(errors.New("netem: bad hop"), err)
		}
		_ = i
		s = fr
	}
	return s, nil
}

// UniformHops builds n identical hops.
func UniformHops(n int, service float64, util Util, prop float64) []Hop {
	hops := make([]Hop, n)
	for i := range hops {
		hops[i] = Hop{Service: service, Util: util, Prop: prop}
	}
	return hops
}

// Differ converts a TimeStream into its inter-arrival (PIAT) sequence.
// A Differ is the session-facing face of the network path: it carries the
// absolute stream clock across consecutive observation windows, so one
// Differ consumed incrementally yields the continuous padded timeline the
// paper's adversary taps (as opposed to rebuilding the chain per window).
type Differ struct {
	src     TimeStream
	prev    float64
	count   uint64
	started bool
	probe   *obs.Shard
}

// NewDiffer wraps src.
func NewDiffer(src TimeStream) *Differ { return &Differ{src: src} }

// SetProbe attaches the observation chain's telemetry shard to the
// Differ, making it the chain's flush point: the Differ is the single
// element every chain ends in, so batched consumers can drain the whole
// chain's counters through it (FlushObs) at slab boundaries.
func (d *Differ) SetProbe(s *obs.Shard) { d.probe = s }

// FlushObs drains the chain's telemetry shard into the global
// collector; a no-op when no probe is attached. Implements obs.Flusher.
func (d *Differ) FlushObs() { d.probe.Flush() }

// Next returns the next inter-arrival time.
func (d *Differ) Next() float64 {
	if !d.started {
		d.started = true
		d.prev = d.src.Next()
	}
	t := d.src.Next()
	x := t - d.prev
	d.prev = t
	d.count++
	return x
}

// Now returns the absolute stream time of the most recently observed
// packet (0 before the first Next call). Sessions use it to convert
// windows-to-decision into stream seconds.
func (d *Differ) Now() float64 { return d.prev }

// Observed returns how many PIATs have been consumed so far, warm-up
// included.
func (d *Differ) Observed() uint64 { return d.count }

// Skip consumes and discards n PIATs: the session warm-up, which runs the
// whole upstream chain (payload arrivals, gateway queue and timer,
// network queues) past its transient while the adversary is not yet
// watching. The stream clock still advances.
func (d *Differ) Skip(n int) {
	if n <= 0 {
		return
	}
	if _, ok := d.src.(BatchStream); ok {
		d.skipBatched(n)
		return
	}
	for i := 0; i < n; i++ {
		d.Next()
	}
}

// PIATs collects n inter-arrival times.
func (d *Differ) PIATs(n int) []float64 {
	out := make([]float64, n)
	d.NextBatch(out)
	return out
}

// LossyTap models an adversary capture that misses packets independently
// with probability p: from the adversary's viewpoint, the PIATs around a
// lost packet merge into one longer interval.
type LossyTap struct {
	upstream TimeStream
	p        float64
	rng      *xrand.Rand
	buf      []float64 // reusable upstream chunk for the batched path
	probe    *obs.Shard
}

// SetProbe attaches a telemetry shard; missed captures count as
// NetemDrop.
func (l *LossyTap) SetProbe(s *obs.Shard) { l.probe = s }

// NewLossyTap creates a lossy tap with loss probability 0 <= p < 1.
func NewLossyTap(upstream TimeStream, p float64, rng *xrand.Rand) (*LossyTap, error) {
	if upstream == nil {
		return nil, errors.New("netem: nil upstream")
	}
	if p < 0 || p >= 1 {
		return nil, errors.New("netem: loss probability must be in [0,1)")
	}
	if p > 0 && rng == nil {
		return nil, errors.New("netem: nil rng with non-zero loss")
	}
	return &LossyTap{upstream: upstream, p: p, rng: rng}, nil
}

// Next returns the next captured packet time, skipping lost packets.
func (l *LossyTap) Next() float64 {
	for {
		t := l.upstream.Next()
		if l.p == 0 || !l.rng.Bernoulli(l.p) {
			return t
		}
		l.probe.Inc(obs.NetemDrop)
	}
}

// Quantizer models the capture hardware's finite timestamp resolution
// (e.g. a network analyzer clock): times are floored to multiples of the
// resolution. Output is non-decreasing but may repeat.
type Quantizer struct {
	upstream TimeStream
	res      float64
}

// NewQuantizer creates a quantizing tap with resolution res > 0.
func NewQuantizer(upstream TimeStream, res float64) (*Quantizer, error) {
	if upstream == nil {
		return nil, errors.New("netem: nil upstream")
	}
	if !(res > 0) {
		return nil, errors.New("netem: resolution must be positive")
	}
	return &Quantizer{upstream: upstream, res: res}, nil
}

// Next returns the quantized next packet time.
func (q *Quantizer) Next() float64 {
	return math.Floor(q.upstream.Next()/q.res) * q.res
}

// SliceStream replays a fixed schedule of times; it is the test harness's
// way to feed known departure processes through network elements. Next
// panics past the end of the slice.
type SliceStream struct {
	times []float64
	i     int
}

// NewSliceStream wraps times (not copied).
func NewSliceStream(times []float64) *SliceStream { return &SliceStream{times: times} }

// Next returns the next scheduled time.
func (s *SliceStream) Next() float64 {
	t := s.times[s.i]
	s.i++
	return t
}
