package netem

import (
	"math"

	"linkpad/internal/obs"
	"linkpad/internal/slab"
	"linkpad/internal/traffic"
)

// Batched transforms (batch.go): every network element can process a
// slab of packet times in one call. A NextBatch(dst) call is defined as
// exactly equivalent to len(dst) successive Next() calls on the same
// element — each element owns its *xrand.Rand and the batch loop replays
// the identical per-packet draw sequence — so the emitted stream is
// bit-identical to the pull-driven one (enforced by the equivalence
// tests in batch_test.go).
//
// One-to-one elements (FastRouter, Router, Quantizer, Differ) transform
// the slab in place on top of their upstream's batch, so a whole chain
// batches through a single []float64 with no per-layer buffers and one
// interface call per slab per layer instead of one per packet.
//
// Variable-rate elements (LossyTap, Impairer) consume a data-dependent
// number of upstream packets per output. Their batch loops request
// upstream chunks sized to the outputs still owed, which preserves the
// output sequence and every layer's draw order exactly; an Impairer
// whose duplication produced more outputs than requested keeps the
// surplus queued for the next call, so its upstream may run ahead of the
// pull-driven equivalent by less than one chunk. That lookahead is
// invisible in the output and irrelevant to checkpointing: the
// checkpointed protocols snapshot traffic sources, which are never
// upstream of a mid-window Impairer batch.

// BatchStream is a TimeStream that can produce a batch of event times in
// one call. NextBatch fills dst entirely; it is equivalent to len(dst)
// Next calls.
type BatchStream interface {
	TimeStream
	NextBatch(dst []float64)
}

// FillBatch fills dst from s, using the batched path when s implements
// BatchStream and falling back to one Next call per element otherwise.
// Either way s advances by exactly len(dst) events.
func FillBatch(s TimeStream, dst []float64) {
	if b, ok := s.(BatchStream); ok {
		b.NextBatch(dst)
		return
	}
	for i := range dst {
		dst[i] = s.Next()
	}
}

// NextBatch fills dst with the departure times of the next len(dst)
// padded packets, sampling each packet's stationary wait exactly as Next
// does. The constant- and diurnal-utilization profiles are recognized
// and devirtualized: a constant profile clamps once and caches log(ρ)
// for the geometric ladder draw, a diurnal one calls the profile's
// concrete method; any other Util goes through the interface per packet.
func (r *FastRouter) NextBatch(dst []float64) {
	FillBatch(r.upstream, dst)
	rng, s, prop := r.rng, r.service, r.prop
	lastOut, started := r.lastOut, r.started
	switch u := r.util.(type) {
	case constUtil:
		rho := float64(u)
		if rho < 0 {
			rho = 0
		}
		if rho > maxRho {
			rho = maxRho
		}
		if rho <= 0 {
			// Dedicated link: no wait, no draws.
			for i, t := range dst {
				out := t + s + prop
				if started && out < lastOut+s {
					out = lastOut + s
				}
				started = true
				lastOut = out
				dst[i] = out
			}
			break
		}
		logRho := math.Log(rho)
		for i, t := range dst {
			var w float64
			for k := rng.GeometricLog(rho, logRho); k > 0; k-- {
				w += s * rng.Float64()
			}
			out := t + w + s + prop
			if started && out < lastOut+s {
				out = lastOut + s
			}
			started = true
			lastOut = out
			dst[i] = out
		}
	case diurnalUtil:
		// Diurnal.At and sampleMD1Wait are manually inlined here — both
		// exceed the compiler's inlining budget, and at one call per
		// packet per hop the call overhead is measurable. The arithmetic
		// replays the originals' operations in the originals' order, so
		// the stream stays bit-identical (enforced by the equivalence
		// tests against the pull path, which calls the real functions).
		d, startHour := u.d, u.startHour
		trough, peak, troughHour := d.Trough, d.Peak, d.TroughHour
		diff := peak - trough
		for i, t := range dst {
			hour := startHour + t/3600
			if hour < 0 || hour >= 24 {
				hour = math.Mod(hour, 24)
			}
			phase := 2 * math.Pi * (hour - troughHour) / 24
			rho := trough + diff*(0.5*(1-math.Cos(phase)))
			var w float64
			if rho > 0 {
				if rho > maxRho {
					rho = maxRho
				}
				// Geometric(rho) inlined: one uniform resolves the
				// dominant K = 0 case; u <= rho implies
				// log(u)/log(rho) >= 1, so the floor is the ladder
				// count directly (Geometric's K < 0 guard is
				// unreachable here).
				if u := rng.Float64Open(); u <= rho {
					for k := math.Floor(math.Log(u) / math.Log(rho)); k > 0; k-- {
						w += s * rng.Float64()
					}
				}
			}
			out := t + w + s + prop
			if started && out < lastOut+s {
				out = lastOut + s
			}
			started = true
			lastOut = out
			dst[i] = out
		}
	default:
		for i, t := range dst {
			rho := r.util.At(t)
			if rho < 0 {
				rho = 0
			}
			out := t + sampleMD1Wait(rho, s, rng) + s + prop
			if started && out < lastOut+s {
				out = lastOut + s
			}
			started = true
			lastOut = out
			dst[i] = out
		}
	}
	r.lastOut, r.started = lastOut, started
}

// NextBatch fills dst with exact-queue departures, advancing the Lindley
// recursion over the batched upstream slab. The exact queue serves many
// cross packets per padded packet, so the cross gaps are the hottest
// draw in the simulator: when the cross source batches, its gaps are
// pre-drawn a slab at a time into crossBuf (same draws, same order — the
// buffer only changes when the RNG is read, which nothing observes) and
// the Lindley loop consumes plain slice elements.
func (r *Router) NextBatch(dst []float64) {
	if len(dst) == 0 {
		return
	}
	if !r.started {
		r.started = true
		if r.cross != nil {
			r.nextCross = r.cross.Next()
		}
	}
	FillBatch(r.upstream, dst)
	crossBatch, _ := r.cross.(traffic.BatchSource)
	service, prop := r.service, r.prop
	free, nextCross := r.free, r.nextCross
	buf, idx := r.crossBuf, r.crossIdx
	for i, t := range dst {
		// Serve all cross packets arriving strictly before the padded
		// packet.
		for nextCross < t {
			if nextCross > free {
				free = nextCross
			}
			free += service
			if idx < len(buf) {
				nextCross += buf[idx]
				idx++
			} else if crossBatch != nil {
				if buf == nil {
					buf = make([]float64, slab.DefaultLen)
				}
				crossBatch.NextBatch(buf)
				nextCross += buf[0]
				idx = 1
			} else {
				nextCross += r.cross.Next()
			}
		}
		if t > free {
			free = t
		}
		free += service
		dst[i] = free + prop
	}
	r.free, r.nextCross = free, nextCross
	r.crossBuf, r.crossIdx = buf, idx
}

// NextBatch fills dst with quantized packet times.
func (q *Quantizer) NextBatch(dst []float64) {
	FillBatch(q.upstream, dst)
	res := q.res
	for i, t := range dst {
		dst[i] = math.Floor(t/res) * res
	}
}

// NextBatch fills dst with the next len(dst) captured packet times. The
// upstream is consumed in chunks sized to the captures still owed —
// survivors never exceed the chunk, so the upstream advances by exactly
// the packets the pull-driven tap would have consumed.
func (l *LossyTap) NextBatch(dst []float64) {
	if l.p == 0 {
		FillBatch(l.upstream, dst)
		return
	}
	out := 0
	for out < len(dst) {
		need := len(dst) - out
		if cap(l.buf) < need {
			l.buf = make([]float64, need)
		}
		chunk := l.buf[:need]
		FillBatch(l.upstream, chunk)
		for _, t := range chunk {
			if !l.rng.Bernoulli(l.p) {
				dst[out] = t
				out++
			} else {
				l.probe.Inc(obs.NetemDrop)
			}
		}
	}
}

// NextBatch fills dst with the next len(dst) inter-arrival times,
// differencing the upstream batch in place.
func (d *Differ) NextBatch(dst []float64) {
	if len(dst) == 0 {
		return
	}
	if !d.started {
		d.started = true
		d.prev = d.src.Next()
	}
	FillBatch(d.src, dst)
	prev := d.prev
	for i, t := range dst {
		dst[i] = t - prev
		prev = t
	}
	d.prev = prev
	d.count += uint64(len(dst))
}

// skipBatched discards n PIATs through the batched path.
func (d *Differ) skipBatched(n int) {
	buf := make([]float64, min(n, slab.DefaultLen))
	for n > 0 {
		k := min(len(buf), n)
		d.NextBatch(buf[:k])
		n -= k
	}
}

var (
	_ BatchStream = (*FastRouter)(nil)
	_ BatchStream = (*Router)(nil)
	_ BatchStream = (*Quantizer)(nil)
	_ BatchStream = (*LossyTap)(nil)
	_ BatchStream = (*Differ)(nil)
	_ BatchStream = (*Impairer)(nil)
)
