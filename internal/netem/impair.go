package netem

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"linkpad/internal/obs"
	"linkpad/internal/xrand"
)

// Impairments (impair.go): seeded per-stream packet-level faults — i.i.d.
// and Gilbert-Elliott bursty loss, duplication, and bounded reordering —
// applicable to the forward path (packets really are lost or delayed) and
// to an adversary tap (the capture misses, double-records, or mis-orders
// observations; the wire is untouched).
//
// Determinism contract: one Impairment application consumes variates from
// the single *xrand.Rand it was built with, in upstream packet order and
// in a fixed per-packet draw order (Gilbert-Elliott transition, state
// loss, i.i.d. loss, duplication, reorder trigger, reorder depth), with
// each draw taken only when the corresponding knob is enabled. A disabled
// knob therefore consumes nothing, and an all-zero Impairment is
// bit-for-bit invisible.

// GilbertElliott parameterizes the two-state Markov (burst) loss model:
// the chain moves between a GOOD and a BAD state once per packet, and the
// packet is lost with the state's loss probability. It reproduces the
// correlated loss bursts of congested or wireless links that i.i.d. loss
// cannot.
type GilbertElliott struct {
	// PGoodBad is the per-packet transition probability GOOD -> BAD.
	PGoodBad float64 `json:"p_good_bad"`
	// PBadGood is the per-packet transition probability BAD -> GOOD.
	PBadGood float64 `json:"p_bad_good"`
	// LossGood is the loss probability in the GOOD state (usually 0).
	LossGood float64 `json:"loss_good,omitempty"`
	// LossBad is the loss probability in the BAD state.
	LossBad float64 `json:"loss_bad"`
}

// Validate checks the chain parameters. Loss probabilities are capped
// below 1 so an absorbing all-loss state cannot stall a pull-driven
// stream.
func (g GilbertElliott) Validate() error {
	if g.PGoodBad < 0 || g.PGoodBad > 1 || g.PBadGood < 0 || g.PBadGood > 1 {
		return errors.New("netem: Gilbert-Elliott transition probabilities must be in [0,1]")
	}
	if g.LossGood < 0 || g.LossGood >= 1 || g.LossBad < 0 || g.LossBad >= 1 {
		return errors.New("netem: Gilbert-Elliott loss probabilities must be in [0,1)")
	}
	return nil
}

// MeanLoss returns the stationary loss rate of the chain.
func (g GilbertElliott) MeanLoss() float64 {
	if g.PGoodBad == 0 && g.PBadGood == 0 {
		return g.LossGood // chain never leaves its (good) start state
	}
	pBad := g.PGoodBad / (g.PGoodBad + g.PBadGood)
	return (1-pBad)*g.LossGood + pBad*g.LossBad
}

// Impairment describes one seeded fault profile. The zero value is the
// identity (no impairment).
type Impairment struct {
	// LossProb drops each packet independently with this probability.
	LossProb float64 `json:"loss_prob,omitempty"`
	// GE, when non-nil, adds Gilbert-Elliott bursty loss on top of the
	// i.i.d. loss.
	GE *GilbertElliott `json:"ge,omitempty"`
	// DupProb emits each surviving packet twice with this probability
	// (same timestamp: a forwarding retransmit or a double capture).
	DupProb float64 `json:"dup_prob,omitempty"`
	// ReorderProb holds back each surviving packet with this probability;
	// the held packet is re-released after ReorderDepth later packets.
	ReorderProb float64 `json:"reorder_prob,omitempty"`
	// ReorderDepth is the maximum displacement, in packets, of a held
	// packet (0 with ReorderProb > 0 is invalid; 0 otherwise means the
	// knob is off).
	ReorderDepth int `json:"reorder_depth,omitempty"`
}

// Validate checks the profile.
func (im *Impairment) Validate() error {
	if im == nil {
		return nil
	}
	if im.LossProb < 0 || im.LossProb >= 1 {
		return errors.New("netem: impairment loss probability must be in [0,1)")
	}
	if im.GE != nil {
		if err := im.GE.Validate(); err != nil {
			return err
		}
	}
	if im.DupProb < 0 || im.DupProb >= 1 {
		return errors.New("netem: impairment duplication probability must be in [0,1)")
	}
	if im.ReorderProb < 0 || im.ReorderProb >= 1 {
		return errors.New("netem: impairment reorder probability must be in [0,1)")
	}
	if im.ReorderProb > 0 && im.ReorderDepth < 1 {
		return errors.New("netem: reordering needs a positive depth")
	}
	if im.ReorderDepth < 0 || im.ReorderDepth > 1024 {
		return errors.New("netem: reorder depth out of range [0,1024]")
	}
	if im.ReorderDepth > 0 && im.ReorderProb == 0 {
		return errors.New("netem: reorder depth set without a reorder probability")
	}
	return nil
}

// Enabled reports whether the profile does anything at all.
func (im *Impairment) Enabled() bool {
	return im != nil && (im.LossProb > 0 || im.GE != nil || im.DupProb > 0 || im.ReorderProb > 0)
}

// ParseImpairment decodes a JSON impairment profile and validates it.
// Unknown fields are rejected, so a typo'd knob cannot silently select
// the identity profile.
func ParseImpairment(data []byte) (*Impairment, error) {
	var im Impairment
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&im); err != nil {
		return nil, fmt.Errorf("netem: bad impairment config: %w", err)
	}
	// Trailing garbage after the JSON value is an error too.
	if dec.More() {
		return nil, errors.New("netem: bad impairment config: trailing data")
	}
	if err := im.Validate(); err != nil {
		return nil, err
	}
	return &im, nil
}

// geChain is the running Gilbert-Elliott state.
type geChain struct {
	g   GilbertElliott
	bad bool
}

// lost advances the chain one packet and reports whether it is lost.
// Draw order: transition first, then the state's loss draw.
func (c *geChain) lost(rng *xrand.Rand) bool {
	p := c.g.PGoodBad
	if c.bad {
		p = c.g.PBadGood
	}
	if rng.Bernoulli(p) {
		c.bad = !c.bad
	}
	loss := c.g.LossGood
	if c.bad {
		loss = c.g.LossBad
	}
	return rng.Bernoulli(loss)
}

// heldPacket is one reordered packet waiting for release.
type heldPacket struct {
	remaining int // surviving packets still to pass before release
}

// Impairer applies an Impairment to a forward-path TimeStream. Losses
// remove packets; duplicates are emitted at the original's timestamp;
// a reordered packet is held back and re-released at the timestamp of
// the packet it lands behind (the displaced packet is delayed past its
// successors, which is what reordering means on a wire). Output times
// are therefore non-decreasing, like every other network element's.
type Impairer struct {
	upstream TimeStream
	im       Impairment
	rng      *xrand.Rand
	ge       *geChain
	held     []heldPacket
	q        []float64 // pending emissions, FIFO
	qi       int
	buf      []float64 // reusable upstream chunk for the batched path
	probe    *obs.Shard
}

// SetProbe attaches a telemetry shard; losses, duplicates and held-back
// reorderings count into it.
func (p *Impairer) SetProbe(s *obs.Shard) { p.probe = s }

// NewImpairer wraps upstream with the impairment profile. A nil or
// all-zero profile is rejected — the caller should simply not wrap.
func NewImpairer(upstream TimeStream, im *Impairment, rng *xrand.Rand) (*Impairer, error) {
	if upstream == nil {
		return nil, errors.New("netem: nil upstream")
	}
	if err := im.Validate(); err != nil {
		return nil, err
	}
	if !im.Enabled() {
		return nil, errors.New("netem: impairer needs a non-trivial impairment")
	}
	if rng == nil {
		return nil, errors.New("netem: nil rng")
	}
	p := &Impairer{upstream: upstream, im: *im, rng: rng}
	if im.GE != nil {
		p.ge = &geChain{g: *im.GE}
	}
	if im.ReorderDepth > 0 {
		p.held = make([]heldPacket, 0, im.ReorderDepth)
	}
	return p, nil
}

// Next returns the next impaired packet time.
func (p *Impairer) Next() float64 {
	for {
		if p.qi < len(p.q) {
			t := p.q[p.qi]
			p.qi++
			if p.qi == len(p.q) {
				p.q = p.q[:0]
				p.qi = 0
			}
			return t
		}
		p.process(p.upstream.Next())
	}
}

// process runs one upstream packet through the impairment's per-packet
// draw sequence (GE transition+loss, i.i.d. loss, duplication, reorder
// trigger), appending every resulting emission to the pending queue.
// Shared verbatim by the pull and batch paths, so they cannot drift.
func (p *Impairer) process(t float64) {
	if p.ge != nil && p.ge.lost(p.rng) {
		p.probe.Inc(obs.NetemDrop)
		return
	}
	if p.im.LossProb > 0 && p.rng.Bernoulli(p.im.LossProb) {
		p.probe.Inc(obs.NetemDrop)
		return
	}
	dup := p.im.DupProb > 0 && p.rng.Bernoulli(p.im.DupProb)
	if dup {
		p.probe.Inc(obs.NetemDup)
	}
	if p.im.ReorderProb > 0 && p.rng.Bernoulli(p.im.ReorderProb) && len(p.held) < cap(p.held) {
		p.probe.Inc(obs.NetemReorder)
		// Hold this packet back; it re-emerges at the timestamp of the
		// ReorderDepth-th surviving packet after it. A duplicate of a
		// held packet is held with it (the pair travels together).
		n := 1
		if dup {
			n = 2
		}
		for i := 0; i < n; i++ {
			p.held = append(p.held, heldPacket{remaining: p.im.ReorderDepth})
		}
		return
	}
	// This packet survives in place: emit it (and its duplicate), then
	// release any held packets whose displacement is exhausted, at this
	// packet's timestamp.
	p.q = append(p.q, t)
	if dup {
		p.q = append(p.q, t)
	}
	live := p.held[:0]
	for _, h := range p.held {
		h.remaining--
		if h.remaining <= 0 {
			p.q = append(p.q, t)
		} else {
			live = append(live, h)
		}
	}
	p.held = live
}

// drain moves pending emissions into dst[out:], returning the new out.
func (p *Impairer) drain(dst []float64, out int) int {
	for p.qi < len(p.q) && out < len(dst) {
		dst[out] = p.q[p.qi]
		out++
		p.qi++
	}
	if p.qi == len(p.q) {
		p.q = p.q[:0]
		p.qi = 0
	}
	return out
}

// NextBatch fills dst with the next len(dst) impaired packet times. The
// upstream is consumed in chunks sized to the outputs still owed;
// duplication can briefly overproduce, and the surplus stays queued for
// the next call — the emitted sequence is bit-identical to the pull
// path's.
func (p *Impairer) NextBatch(dst []float64) {
	out := p.drain(dst, 0)
	for out < len(dst) {
		need := len(dst) - out
		if cap(p.buf) < need {
			p.buf = make([]float64, need)
		}
		chunk := p.buf[:need]
		FillBatch(p.upstream, chunk)
		for _, t := range chunk {
			p.process(t)
		}
		out = p.drain(dst, out)
	}
}

// WrapRecord wraps an ingress-tap record callback (e.g. a
// cascade.Recorder) with the impairment: lost observations never reach
// the recorder, duplicated ones reach it twice, and a reordered one is
// recorded late — after up to ReorderDepth subsequent observations — with
// its original timestamp, so the recorded sequence is genuinely out of
// order, exactly what a mis-sequenced capture produces. Observations
// still held when the stream ends are never recorded (the capture
// stopped first); at most ReorderDepth observations are in flight.
// A nil or all-zero impairment returns record unchanged.
func (im *Impairment) WrapRecord(record func(float64), rng *xrand.Rand) (func(float64), error) {
	return im.WrapRecordObs(record, rng, nil)
}

// WrapRecordObs is WrapRecord with a telemetry shard: missed, doubled
// and mis-sequenced observations count as NetemDrop/NetemDup/
// NetemReorder. A nil probe counts nothing (identical to WrapRecord).
func (im *Impairment) WrapRecordObs(record func(float64), rng *xrand.Rand, probe *obs.Shard) (func(float64), error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	if !im.Enabled() {
		return record, nil
	}
	if record == nil {
		return nil, errors.New("netem: nil record callback")
	}
	if rng == nil {
		return nil, errors.New("netem: nil rng")
	}
	var ge *geChain
	if im.GE != nil {
		ge = &geChain{g: *im.GE}
	}
	type heldObs struct {
		remaining int
		t         float64
	}
	var held []heldObs
	if im.ReorderDepth > 0 {
		held = make([]heldObs, 0, im.ReorderDepth)
	}
	cfg := *im
	return func(t float64) {
		if ge != nil && ge.lost(rng) {
			probe.Inc(obs.NetemDrop)
			return
		}
		if cfg.LossProb > 0 && rng.Bernoulli(cfg.LossProb) {
			probe.Inc(obs.NetemDrop)
			return
		}
		dup := cfg.DupProb > 0 && rng.Bernoulli(cfg.DupProb)
		if dup {
			probe.Inc(obs.NetemDup)
		}
		if cfg.ReorderProb > 0 && rng.Bernoulli(cfg.ReorderProb) && len(held) < cap(held) {
			probe.Inc(obs.NetemReorder)
			n := 1
			if dup {
				n = 2
			}
			for i := 0; i < n; i++ {
				held = append(held, heldObs{remaining: cfg.ReorderDepth, t: t})
			}
			return
		}
		record(t)
		if dup {
			record(t)
		}
		live := held[:0]
		for _, h := range held {
			h.remaining--
			if h.remaining <= 0 {
				record(h.t)
			} else {
				live = append(live, h)
			}
		}
		held = live
	}, nil
}
