package netem

import (
	"testing"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// mkChain builds one netem element (over a Poisson-fed base stream) from
// a seed; each case's factory is called twice so the pull-driven and
// batched instances draw from identically-seeded generators.
func netemBatchCases(t *testing.T) map[string]func(seed uint64) BatchStream {
	t.Helper()
	base := func(master *xrand.Rand) TimeStream {
		p, err := traffic.NewPoisson(100, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		// An absolute-time stream: cumulative Poisson arrivals.
		return &cumStream{src: p}
	}
	fast := func(util Util) func(seed uint64) BatchStream {
		return func(seed uint64) BatchStream {
			master := xrand.New(seed)
			up := base(master)
			r, err := NewFastRouter(up, 1e-4, util, 1e-3, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
	}
	impair := func(im *Impairment) func(seed uint64) BatchStream {
		return func(seed uint64) BatchStream {
			master := xrand.New(seed)
			up := base(master)
			p, err := NewImpairer(up, im, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
	}
	return map[string]func(seed uint64) BatchStream{
		"fastrouter-idle":     fast(ConstUtil(0)),
		"fastrouter-const":    fast(ConstUtil(0.6)),
		"fastrouter-overload": fast(ConstUtil(1.4)),
		"fastrouter-diurnal":  fast(DiurnalUtil(traffic.Diurnal{Trough: 0.2, Peak: 0.7, TroughHour: 3}, 9)),
		"fastrouter-func": fast(UtilFunc(func(t float64) float64 {
			return 0.3 + 0.2*float64(int(t)%2)
		})),
		"router-exact": func(seed uint64) BatchStream {
			master := xrand.New(seed)
			up := base(master)
			cross, err := traffic.NewPoisson(5000, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRouter(up, cross, 1e-4, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
		"router-cbr-cross": func(seed uint64) BatchStream {
			master := xrand.New(seed)
			up := base(master)
			cross, err := traffic.NewCBR(5000, 1e-5, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRouter(up, cross, 1e-4, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
		"lossytap": func(seed uint64) BatchStream {
			master := xrand.New(seed)
			up := base(master)
			l, err := NewLossyTap(up, 0.07, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			return l
		},
		"lossytap-lossless": func(seed uint64) BatchStream {
			master := xrand.New(seed)
			up := base(master)
			l, err := NewLossyTap(up, 0, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			return l
		},
		"quantizer": func(seed uint64) BatchStream {
			master := xrand.New(seed)
			up := base(master)
			q, err := NewQuantizer(up, 1e-5)
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
		"impair-loss":    impair(&Impairment{LossProb: 0.1}),
		"impair-dup":     impair(&Impairment{DupProb: 0.15}),
		"impair-reorder": impair(&Impairment{ReorderProb: 0.1, ReorderDepth: 3}),
		"impair-ge": impair(&Impairment{
			GE: &GilbertElliott{PGoodBad: 0.02, PBadGood: 0.3, LossGood: 0.001, LossBad: 0.4},
		}),
		"impair-all": impair(&Impairment{
			LossProb: 0.05, DupProb: 0.1, ReorderProb: 0.08, ReorderDepth: 4,
			GE: &GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossGood: 0, LossBad: 0.5},
		}),
		"differ-chain": func(seed uint64) BatchStream {
			master := xrand.New(seed)
			up := base(master)
			r, err := NewFastRouter(up, 1e-4, ConstUtil(0.5), 1e-3, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			return NewDiffer(r)
		},
	}
}

// cumStream turns a gap source into an absolute-time stream.
type cumStream struct {
	src traffic.Source
	now float64
}

func (c *cumStream) Next() float64 {
	c.now += c.src.Next()
	return c.now
}

func (c *cumStream) NextBatch(dst []float64) {
	if b, ok := c.src.(traffic.BatchSource); ok {
		b.NextBatch(dst)
	} else {
		for i := range dst {
			dst[i] = c.src.Next()
		}
	}
	now := c.now
	for i := range dst {
		now += dst[i]
		dst[i] = now
	}
	c.now = now
}

// TestNetemBatchMatchesPull checks every netem element's NextBatch
// against its per-packet Next across awkward chunk sizes: bit-identical
// output streams.
func TestNetemBatchMatchesPull(t *testing.T) {
	const total = 6000
	chunks := []int{1, 3, 17, 255, 4096}
	for name, mk := range netemBatchCases(t) {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{2, 23} {
				pull := mk(seed)
				batch := mk(seed)
				want := make([]float64, total)
				for i := range want {
					want[i] = pull.Next()
				}
				got := make([]float64, 0, total)
				for ci := 0; len(got) < total; ci++ {
					k := min(chunks[ci%len(chunks)], total-len(got))
					buf := make([]float64, k)
					batch.NextBatch(buf)
					got = append(got, buf...)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d event %d: batch %v != pull %v", seed, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestDifferSkipAndPIATsBatched checks that the batched Skip and PIATs
// paths leave the Differ in the bit-identical state as per-packet pulls.
func TestDifferSkipAndPIATsBatched(t *testing.T) {
	mk := func(seed uint64) *Differ {
		master := xrand.New(seed)
		p, err := traffic.NewPoisson(100, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewFastRouter(&cumStream{src: p}, 1e-4, ConstUtil(0.5), 1e-3, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		return NewDiffer(r)
	}
	pull, batch := mk(7), mk(7)
	for i := 0; i < 5000; i++ {
		pull.Next()
	}
	batch.Skip(5000)
	if pull.Now() != batch.Now() || pull.Observed() != batch.Observed() {
		t.Fatalf("after skip: pull (%v, %d) != batch (%v, %d)",
			pull.Now(), pull.Observed(), batch.Now(), batch.Observed())
	}
	want := make([]float64, 700)
	for i := range want {
		want[i] = pull.Next()
	}
	got := batch.PIATs(700)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PIAT %d: batch %v != pull %v", i, got[i], want[i])
		}
	}
}

// benchPullBatch reports both traversal modes of one element, one packet
// per iteration either way, so ns/op compares directly: the pull mode
// calls Next per packet, the batch mode amortizes a whole slab.
func benchPullBatch(b *testing.B, mk func() BatchStream) {
	b.Run("pull", func(b *testing.B) {
		s := mk()
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += s.Next()
		}
		_ = sink
	})
	b.Run("batch", func(b *testing.B) {
		s := mk()
		buf := make([]float64, 4096)
		s.NextBatch(buf) // warm internal buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += len(buf) {
			s.NextBatch(buf)
		}
	})
}

// BenchmarkPathHop measures the FastRouter hot path — the inner loop of
// every multi-hop experiment — in both traversal modes, at the constant
// and diurnal profiles.
func BenchmarkPathHop(b *testing.B) {
	mk := func(util Util) func() BatchStream {
		return func() BatchStream {
			master := xrand.New(1)
			p, err := traffic.NewPoisson(100, master.Split())
			if err != nil {
				b.Fatal(err)
			}
			r, err := NewFastRouter(&cumStream{src: p}, 1e-4, util, 1e-3, master.Split())
			if err != nil {
				b.Fatal(err)
			}
			return r
		}
	}
	b.Run("const", func(b *testing.B) { benchPullBatch(b, mk(ConstUtil(0.6))) })
	b.Run("diurnal", func(b *testing.B) {
		benchPullBatch(b, mk(DiurnalUtil(traffic.Diurnal{Trough: 0.2, Peak: 0.7, TroughHour: 3}, 9)))
	})
}

// BenchmarkExactHop measures the exact FIFO router with Poisson cross
// traffic at 25 cross packets per padded packet (the validate-exactnet
// regime) in both traversal modes.
func BenchmarkExactHop(b *testing.B) {
	benchPullBatch(b, func() BatchStream {
		master := xrand.New(1)
		p, err := traffic.NewPoisson(100, master.Split())
		if err != nil {
			b.Fatal(err)
		}
		cross, err := traffic.NewPoisson(2500, master.Split())
		if err != nil {
			b.Fatal(err)
		}
		r, err := NewRouter(&cumStream{src: p}, cross, 1e-4, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		return r
	})
}

// BenchmarkImpairSlab measures the Impairer with every knob on in both
// traversal modes.
func BenchmarkImpairSlab(b *testing.B) {
	benchPullBatch(b, func() BatchStream {
		master := xrand.New(1)
		p, err := traffic.NewPoisson(100, master.Split())
		if err != nil {
			b.Fatal(err)
		}
		im := &Impairment{
			LossProb: 0.05, DupProb: 0.1, ReorderProb: 0.08, ReorderDepth: 4,
			GE: &GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossGood: 0, LossBad: 0.5},
		}
		imp, err := NewImpairer(&cumStream{src: p}, im, master.Split())
		if err != nil {
			b.Fatal(err)
		}
		return imp
	})
}

// TestNetemBatchAllocFree pins each batched element at zero allocations
// per slab in steady state (internal chunk buffers are warmed by one
// prior slab).
func TestNetemBatchAllocFree(t *testing.T) {
	buf := make([]float64, 4096)
	for name, mk := range netemBatchCases(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(1)
			s.NextBatch(buf)
			if n := testing.AllocsPerRun(10, func() { s.NextBatch(buf) }); n != 0 {
				t.Fatalf("NextBatch allocates %v times per slab; want 0", n)
			}
		})
	}
}
