package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16, 0} {
		n := 137
		visited := make([]int32, n)
		if err := Map(n, workers, func(i int) error {
			atomic.AddInt32(&visited[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
	if err := Map(0, 4, func(int) error { return errors.New("boom") }); err != nil {
		t.Errorf("empty map should not error: %v", err)
	}
}

func TestMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := Map(50, 4, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestMapWorkerIDsWithinRange(t *testing.T) {
	const workers = 5
	var bad int32
	err := MapWorker(200, workers, func(worker, i int) error {
		if worker < 0 || worker >= workers {
			atomic.AddInt32(&bad, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("%d calls saw an out-of-range worker id", bad)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-2); got < 1 {
		t.Errorf("Workers(-2) = %d", got)
	}
}
