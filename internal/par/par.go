// Package par provides the deterministic work-distribution primitive
// shared by the experiment sweeps (parallel points) and the attack
// pipeline (parallel trials): an indexed parallel map whose result is
// independent of the worker count, because every index writes only its
// own pre-assigned slot and derives any randomness from its own seed.
// This is the repository's whole determinism story in one primitive:
// parallelism only ever distributes index-addressed work, never
// reorders reductions. The map allocates one goroutine per worker and
// an atomic cursor — nothing per index.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values < 1 mean "use every
// available CPU" (GOMAXPROCS); there is no artificial ceiling — the
// sweeps are CPU-bound and scale to whatever the hardware offers.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// Map executes fn(i) for every i in [0, n) on up to `workers` goroutines
// and returns the first error encountered (by claim order). Each index
// must write only its own result slot, so results are identical for any
// worker count.
func Map(n, workers int, fn func(i int) error) error {
	return MapWorker(n, workers, func(_, i int) error { return fn(i) })
}

// MapWorker is Map with the executing worker's id (0 <= id < workers)
// passed to fn, so callers can give each worker its own reusable scratch
// state (feature pipelines, histogram buffers) without synchronization.
func MapWorker(n, workers int, fn func(worker, i int) error) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     int
		mu       sync.Mutex
		firstErr error
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(worker, i); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
