package gateway

import (
	"math"
	"testing"

	"linkpad/internal/stats"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

func TestNewAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptive(0, 40e-3, 3); err == nil {
		t.Error("zero busy interval accepted")
	}
	if _, err := NewAdaptive(10e-3, 10e-3, 3); err == nil {
		t.Error("idle == busy accepted")
	}
	if _, err := NewAdaptive(10e-3, 40e-3, 0); err == nil {
		t.Error("idleAfter 0 accepted")
	}
}

func TestAdaptiveStateMachine(t *testing.T) {
	a, err := NewAdaptive(10e-3, 40e-3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Busy until three consecutive empty observations.
	for i := 0; i < 3; i++ {
		if a.NextInterval() != 10e-3 {
			t.Fatalf("step %d: expected busy interval", i)
		}
		a.ObserveQueue(0)
	}
	if a.NextInterval() != 40e-3 {
		t.Fatal("expected idle interval after 3 empty observations")
	}
	// One queued packet snaps back to busy.
	a.ObserveQueue(2)
	if a.NextInterval() != 10e-3 {
		t.Fatal("expected busy interval after non-empty queue")
	}
	if a.Mean() != 10e-3 || a.IntervalVar() != 0 || a.MaxInterval() != 40e-3 || a.Name() != "ADAPTIVE" {
		t.Error("adaptive metadata broken")
	}
}

func adaptiveGW(t testing.TB, rate float64, seed uint64) *Gateway {
	t.Helper()
	master := xrand.New(seed)
	src, err := traffic.NewPoisson(rate, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewAdaptive(10e-3, 40e-3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Policy: pol, Jitter: DefaultJitter(), Payload: src, RNG: master.Split()})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The paper's §2 critique of adaptive masking: the padded rate tracks the
// payload rate, so the PIAT *means* separate — a first-order leak that
// even the weakest feature sees.
func TestAdaptiveLeaksFirstOrder(t *testing.T) {
	const n = 100000
	meanLow := stats.Mean(adaptiveGW(t, 10, 1).PIATs(n))
	meanHigh := stats.Mean(adaptiveGW(t, 40, 2).PIATs(n))
	if meanLow <= meanHigh*1.2 {
		t.Errorf("adaptive PIAT means should separate strongly: low-rate %v vs high-rate %v",
			meanLow, meanHigh)
	}
}

// The flip side: adaptive padding saves bandwidth relative to CIT at the
// same busy interval.
func TestAdaptiveSavesBandwidth(t *testing.T) {
	g := adaptiveGW(t, 10, 3)
	for i := 0; i < 100000; i++ {
		g.Next()
	}
	adaptiveFires := float64(g.Stats().Fires)
	elapsed := adaptiveFires // fires * varying interval; compare rates via time
	_ = elapsed

	// CIT sends 100 pps; adaptive at 10 pps payload should send far fewer
	// packets over the same horizon. Compare packet rates via simulated
	// duration: duration = last departure.
	gCIT := newGW(t, mustCIT(t), DefaultJitter(), 10, 3)
	var lastCIT, lastAd float64
	for i := 0; i < 100000; i++ {
		lastCIT = gCIT.Next()
	}
	g2 := adaptiveGW(t, 10, 4)
	for i := 0; i < 100000; i++ {
		lastAd = g2.Next()
	}
	rateCIT := 100000 / lastCIT
	rateAd := 100000 / lastAd
	if rateAd > 0.6*rateCIT {
		t.Errorf("adaptive padded rate %v should be well below CIT's %v", rateAd, rateCIT)
	}
}

func TestPayloadDelayAccounting(t *testing.T) {
	g := newGW(t, mustCIT(t), DefaultJitter(), 40, 5)
	for i := 0; i < 200000; i++ {
		g.Next()
	}
	s := g.Stats()
	if s.PayloadSent == 0 {
		t.Fatal("no payload sent")
	}
	mean := s.MeanPayloadDelay()
	// Poisson arrivals into a 100 pps periodic server at 40% load: delay
	// is dominated by the residual interval, mean ~ tau/2 plus queueing.
	if mean < tau/4 || mean > 3*tau {
		t.Errorf("mean payload delay = %v, want around tau/2", mean)
	}
	if s.DelayMax < mean {
		t.Error("max delay below mean")
	}
	// The NetCamo-style bound holds against the measured worst case.
	bound := DelayBound(mustCIT(t), DefaultJitter(), s.MaxQueue)
	if s.DelayMax > bound {
		t.Errorf("measured max delay %v exceeds bound %v (maxQueue %d)", s.DelayMax, bound, s.MaxQueue)
	}
}

func TestDelayBoundScalesWithQueue(t *testing.T) {
	c := mustCIT(t)
	j := DefaultJitter()
	b0 := DelayBound(c, j, 0)
	b5 := DelayBound(c, j, 5)
	if b5 <= b0 {
		t.Error("bound must grow with queue length")
	}
	if math.Abs(b5-b0-5*tau) > 1e-12 {
		t.Errorf("bound increment = %v, want 5*tau", b5-b0)
	}
}

func TestMeanPayloadDelayEmpty(t *testing.T) {
	var s Stats
	if s.MeanPayloadDelay() != 0 {
		t.Error("empty stats should report zero delay")
	}
}

// Queue compaction must preserve FIFO arrival order and accounting under
// sustained overload.
func TestQueueCompactionUnderLoad(t *testing.T) {
	master := xrand.New(6)
	src, err := traffic.NewPoisson(95, master.Split()) // just under capacity
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Policy: mustCIT(t), Jitter: DefaultJitter(), Payload: src, RNG: master.Split()})
	if err != nil {
		t.Fatal(err)
	}
	prevDelay := -1.0
	_ = prevDelay
	for i := 0; i < 300000; i++ {
		g.Next()
	}
	s := g.Stats()
	if s.PayloadSent+uint64(g.QueueLen())+s.Dropped != s.Arrivals {
		t.Errorf("conservation broken after compaction: sent %d queued %d dropped %d arrivals %d",
			s.PayloadSent, g.QueueLen(), s.Dropped, s.Arrivals)
	}
	if s.DelaySum < 0 || s.DelayMax < 0 {
		t.Error("negative delay accounting")
	}
}
