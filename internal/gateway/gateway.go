// Package gateway models the sender security gateway GW1 (paper §3.2):
// a timer-driven link-padding engine that emits one constant-size packet
// per timer interrupt — a queued payload packet if one is waiting, a dummy
// otherwise — so that the padded stream's timing is nominally independent
// of the payload.
//
// The reproduction's key mechanism is the timer interrupt jitter δ_gw
// (paper §4.1.2): each fire is perturbed by operating-system noise
// N(0, σ_os²) plus a compound blocking delay — every payload packet that
// arrived at the NIC during the elapsed timer interval may have preempted
// the CPU and delays the timer interrupt by a small exponential amount.
// The blocking term's variance grows linearly with the payload rate, so
// Var(PIAT | ω_h) > Var(PIAT | ω_l) while the means stay equal: exactly
// the leak the paper's adversary exploits, emerging here from an explicit
// causal model rather than being injected as a fitted constant.
//
// Determinism contract: a Gateway draws every variate from the single
// *xrand.Rand it was built with, in arrival order — it is a pure
// function of (payload source, rng) — and carries its clock across
// calls (Now), so continuous sessions and cold-start replicas share one
// implementation. Allocation discipline: the departure stream is
// generated packet-by-packet with O(1) state and no buffering; a warmed
// gateway allocates nothing.
package gateway

import (
	"errors"
	"fmt"
	"math"

	"linkpad/internal/obs"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// TimerPolicy chooses the designed interval T between consecutive timer
// interrupts (paper §3.2 remark 2): constant for CIT, random for VIT.
type TimerPolicy interface {
	// NextInterval returns the next designed timer interval in seconds.
	NextInterval() float64
	// Mean returns E[T].
	Mean() float64
	// IntervalVar returns Var(T) = σ_T² (0 for CIT).
	IntervalVar() float64
	// MaxInterval returns an upper bound on emitted intervals, used for
	// QoS delay bounds. For unbounded distributions it is a practical
	// quantile (VIT uses mean + 8σ).
	MaxInterval() float64
	// Name identifies the policy in reports, e.g. "CIT" or "VIT".
	Name() string
}

// QueueObserver is implemented by timer policies that adapt to the
// payload queue (e.g. Adaptive); the gateway reports the queue length
// before drawing each interval.
type QueueObserver interface {
	ObserveQueue(qlen int)
}

// CIT is the constant interval timer policy: T = τ every fire.
type CIT struct {
	tau float64
}

// NewCIT creates a CIT policy with period tau > 0.
func NewCIT(tau float64) (*CIT, error) {
	if !(tau > 0) {
		return nil, errors.New("gateway: CIT period must be positive")
	}
	return &CIT{tau: tau}, nil
}

// NextInterval returns τ.
func (c *CIT) NextInterval() float64 { return c.tau }

// Mean returns τ.
func (c *CIT) Mean() float64 { return c.tau }

// IntervalVar returns 0.
func (c *CIT) IntervalVar() float64 { return 0 }

// MaxInterval returns τ.
func (c *CIT) MaxInterval() float64 { return c.tau }

// Name returns "CIT".
func (c *CIT) Name() string { return "CIT" }

// VIT is the variable interval timer policy: T ~ N(τ, σ_T²), truncated
// below at a small positive floor so intervals stay physical.
type VIT struct {
	tau    float64
	sigmaT float64
	floor  float64
	rng    *xrand.Rand
}

// NewVIT creates a VIT policy with mean tau > 0 and standard deviation
// sigmaT >= 0. Intervals are truncated below at tau/100.
func NewVIT(tau, sigmaT float64, rng *xrand.Rand) (*VIT, error) {
	if !(tau > 0) {
		return nil, errors.New("gateway: VIT mean interval must be positive")
	}
	if sigmaT < 0 {
		return nil, errors.New("gateway: VIT sigma must be non-negative")
	}
	if rng == nil {
		return nil, errors.New("gateway: VIT needs an rng")
	}
	return &VIT{tau: tau, sigmaT: sigmaT, floor: tau / 100, rng: rng}, nil
}

// NextInterval draws a truncated normal interval.
func (v *VIT) NextInterval() float64 {
	return v.rng.TruncNormal(v.tau, v.sigmaT, v.floor)
}

// Mean returns τ (truncation bias is negligible for σ_T << τ).
func (v *VIT) Mean() float64 { return v.tau }

// IntervalVar returns σ_T².
func (v *VIT) IntervalVar() float64 { return v.sigmaT * v.sigmaT }

// MaxInterval returns the practical upper bound τ + 8σ_T
// (P(T > τ+8σ) ≈ 6e-16 for the truncated normal).
func (v *VIT) MaxInterval() float64 { return v.tau + 8*v.sigmaT }

// Name returns "VIT".
func (v *VIT) Name() string { return "VIT" }

// JitterModel is the gateway host's timer-disturbance model: the source of
// δ_gw in the paper's PIAT decomposition (eq. 8).
type JitterModel struct {
	// SigmaOS is the standard deviation of the per-fire scheduling noise
	// (context switching into the timer ISR), in seconds.
	SigmaOS float64
	// BlockMean is the mean of the exponential delay each payload NIC
	// interrupt adds to the pending timer interrupt, in seconds.
	BlockMean float64
	// BlockCap bounds a single blocking delay (interrupt handlers have a
	// bounded critical section), in seconds.
	BlockCap float64
}

// DefaultJitter returns the calibration used throughout the study:
// σ_os = 3 µs, blocking Exp(4.4 µs) capped at 60 µs. With Poisson payload
// at 10/40 pps and τ = 10 ms this yields a PIAT variance ratio r ≈ 1.9,
// reproducing the scale of the paper's Fig. 4 lab measurements
// (PIAT spread of a few tens of µs around 10 ms, near-100 % detection at
// sample size 1000 for variance/entropy features).
func DefaultJitter() JitterModel {
	return JitterModel{SigmaOS: 3e-6, BlockMean: 4.4e-6, BlockCap: 60e-6}
}

// Validate checks the model parameters.
func (j JitterModel) Validate() error {
	if j.SigmaOS < 0 || j.BlockMean < 0 || j.BlockCap < 0 {
		return errors.New("gateway: jitter parameters must be non-negative")
	}
	if j.BlockMean > 0 && j.BlockCap > 0 && j.BlockCap < j.BlockMean {
		return errors.New("gateway: blocking cap below blocking mean")
	}
	return nil
}

// Delay draws the timer-interrupt displacement for one fire given the
// number of payload arrivals in the elapsed interval.
func (j JitterModel) Delay(arrivals int, rng *xrand.Rand) float64 {
	d := rng.Normal(0, j.SigmaOS)
	for i := 0; i < arrivals; i++ {
		b := rng.Exp(j.BlockMean)
		if j.BlockCap > 0 && b > j.BlockCap {
			b = j.BlockCap
		}
		d += b
	}
	return d
}

// blockSecondMoment returns E[min(X, cap)²] for X ~ Exp(BlockMean).
func (j JitterModel) blockSecondMoment() float64 {
	m := j.BlockMean
	if m == 0 {
		return 0
	}
	if j.BlockCap <= 0 {
		return 2 * m * m
	}
	c := j.BlockCap
	return 2*m*m - math.Exp(-c/m)*(2*m*m+2*m*c)
}

// blockMeanCapped returns E[min(X, cap)].
func (j JitterModel) blockMeanCapped() float64 {
	m := j.BlockMean
	if m == 0 {
		return 0
	}
	if j.BlockCap <= 0 {
		return m
	}
	return m * (1 - math.Exp(-j.BlockCap/m))
}

// DeltaVar returns the per-fire variance of δ_gw when Poisson payload at
// rate lambda (packets/second) feeds a timer with mean interval tau:
// σ_os² plus the compound-Poisson blocking variance λτ·E[d²].
func (j JitterModel) DeltaVar(lambda, tau float64) float64 {
	return j.SigmaOS*j.SigmaOS + lambda*tau*j.blockSecondMoment()
}

// PIATVar predicts the padded-traffic PIAT variance at the gateway output
// for the given policy and Poisson payload rate:
//
//	Var(X) = σ_T² + 2·Var(δ_gw)
//
// since X_k = T_k + δ_{k+1} − δ_k with independent per-interval blocking.
// This is the model-side σ² that enters the paper's ratio r (eq. 16).
func PIATVar(policy TimerPolicy, j JitterModel, lambda float64) float64 {
	return policy.IntervalVar() + 2*j.DeltaVar(lambda, policy.Mean())
}

// VarianceRatio predicts r = σ_h²/σ_l² (paper eq. 16) at the gateway
// output (σ_net = 0) for Poisson payload rates low < high.
func VarianceRatio(policy TimerPolicy, j JitterModel, low, high float64) float64 {
	return PIATVar(policy, j, high) / PIATVar(policy, j, low)
}

// Config assembles a gateway.
type Config struct {
	// Policy is the timer policy (required).
	Policy TimerPolicy
	// Jitter is the host disturbance model.
	Jitter JitterModel
	// Payload is the incoming payload arrival process (required).
	Payload traffic.Source
	// RNG drives the jitter draws (required).
	RNG *xrand.Rand
	// QueueCap bounds the payload queue; 0 means unbounded. Arrivals
	// beyond the cap are dropped and counted (the paper's QoS coupling:
	// padding rate must cover the payload rate or delay/loss grows).
	QueueCap int
	// ArrivalTap, when non-nil, observes the absolute arrival time of
	// every payload packet reaching the gateway (dropped ones included) —
	// the ingress observation point of a global passive adversary who
	// watches both sides of the padded link. Purely an observer: it must
	// not mutate the gateway, and leaving it nil changes nothing.
	ArrivalTap func(t float64)
	// Probe, when non-nil, is the chain's telemetry shard; the gateway
	// counts emitted payload/dummy packets, blocking stalls, queue drops
	// and payload arrivals into it. Nil (the default) disables counting
	// at the cost of one predicted branch per event.
	Probe *obs.Shard
}

// Stats counts gateway activity, including the QoS side of the paper's
// trade-off (NetCamo, ref. [9]): how long payload packets sit in the
// padding queue.
type Stats struct {
	// Fires is the number of timer interrupts, i.e. padded packets sent.
	Fires uint64
	// PayloadSent is the number of padded packets carrying payload.
	PayloadSent uint64
	// Dummies is the number of dummy packets sent.
	Dummies uint64
	// Arrivals is the number of payload packets that arrived.
	Arrivals uint64
	// Dropped counts arrivals rejected by a full queue.
	Dropped uint64
	// MaxQueue is the payload queue's high-water mark.
	MaxQueue int
	// DelaySum accumulates the queueing delay of every sent payload
	// packet (departure − arrival), in seconds.
	DelaySum float64
	// DelayMax is the largest payload queueing delay observed.
	DelayMax float64
}

// OverheadRatio returns the fraction of sent packets that were dummies —
// the bandwidth cost of the countermeasure.
func (s Stats) OverheadRatio() float64 {
	if s.Fires == 0 {
		return 0
	}
	return float64(s.Dummies) / float64(s.Fires)
}

// MeanPayloadDelay returns the average queueing delay of sent payload
// packets (0 if none were sent).
func (s Stats) MeanPayloadDelay() float64 {
	if s.PayloadSent == 0 {
		return 0
	}
	return s.DelaySum / float64(s.PayloadSent)
}

// DelayBound returns the worst-case queueing delay of a payload packet
// that arrives to find q packets already queued: it departs within q+1
// timer intervals, each at most policy.MaxInterval(), plus the bounded
// per-fire jitter. This is the NetCamo-style admission bound coupling
// padding rate to payload QoS.
func DelayBound(policy TimerPolicy, j JitterModel, q int) float64 {
	slack := 4 * j.SigmaOS
	if j.BlockCap > 0 {
		slack += j.BlockCap
	}
	return float64(q+1)*policy.MaxInterval() + slack
}

// Gateway is a running sender gateway. It produces the padded packet
// departure process one packet at a time; it is not safe for concurrent
// use.
type Gateway struct {
	cfg   Config
	stats Stats

	sched       float64   // last scheduled fire time
	lastDepart  float64   // last actual departure time
	nextArrival float64   // absolute time of next payload arrival
	queue       []float64 // arrival times of queued payload packets
	qhead       int       // index of the oldest queued packet
	started     bool
}

// minSpacing keeps departures strictly increasing even when jitter draws
// would reorder adjacent fires (1 ns, far below every noise scale).
const minSpacing = 1e-9

// New creates a gateway from cfg.
func New(cfg Config) (*Gateway, error) {
	if cfg.Policy == nil {
		return nil, errors.New("gateway: nil timer policy")
	}
	if cfg.Payload == nil {
		return nil, errors.New("gateway: nil payload source")
	}
	if cfg.RNG == nil {
		return nil, errors.New("gateway: nil rng")
	}
	if err := cfg.Jitter.Validate(); err != nil {
		return nil, err
	}
	if cfg.QueueCap < 0 {
		return nil, fmt.Errorf("gateway: negative queue cap %d", cfg.QueueCap)
	}
	return &Gateway{cfg: cfg}, nil
}

// NextPacket advances the gateway by one timer fire and returns the
// departure time of the emitted padded packet and whether it was a dummy.
// Departure times are strictly increasing.
func (g *Gateway) NextPacket() (departure float64, dummy bool) {
	if !g.started {
		g.started = true
		g.nextArrival = g.cfg.Payload.Next()
	}
	if qa, ok := g.cfg.Policy.(QueueObserver); ok {
		qa.ObserveQueue(g.QueueLen())
	}
	return g.fire(g.cfg.Policy.NextInterval())
}

// fire advances the gateway by one timer fire whose designed interval has
// already been drawn (and the queue observed, for adaptive policies): the
// single per-packet body shared by the pull path and the batch loop, so
// the two cannot drift apart.
func (g *Gateway) fire(interval float64) (departure float64, dummy bool) {
	g.sched += interval

	// Admit every payload arrival up to the scheduled fire instant; each
	// one is a NIC interrupt that may block the timer ISR.
	arrivals := 0
	for g.nextArrival <= g.sched {
		arrivals++
		g.stats.Arrivals++
		if g.cfg.ArrivalTap != nil {
			g.cfg.ArrivalTap(g.nextArrival)
		}
		if g.cfg.QueueCap > 0 && g.QueueLen() >= g.cfg.QueueCap {
			g.stats.Dropped++
			g.cfg.Probe.Inc(obs.GatewayDrop)
		} else {
			g.queue = append(g.queue, g.nextArrival)
			if q := g.QueueLen(); q > g.stats.MaxQueue {
				g.stats.MaxQueue = q
			}
		}
		g.nextArrival += g.cfg.Payload.Next()
	}
	if arrivals > 0 {
		g.cfg.Probe.Add(obs.TrafficPayload, uint64(arrivals))
		// At least one NIC interrupt blocked this timer interval: the
		// compound jitter term engaged for this fire.
		g.cfg.Probe.Inc(obs.GatewayStall)
	}

	fire := g.sched + g.cfg.Jitter.Delay(arrivals, g.cfg.RNG)
	if fire <= g.lastDepart {
		fire = g.lastDepart + minSpacing
	}
	g.lastDepart = fire
	g.stats.Fires++

	if g.QueueLen() > 0 {
		arrived := g.queue[g.qhead]
		g.qhead++
		// Reclaim the consumed prefix once it dominates the buffer.
		if g.qhead > 1024 && g.qhead*2 > len(g.queue) {
			g.queue = append(g.queue[:0], g.queue[g.qhead:]...)
			g.qhead = 0
		}
		delay := fire - arrived
		g.stats.DelaySum += delay
		if delay > g.stats.DelayMax {
			g.stats.DelayMax = delay
		}
		g.stats.PayloadSent++
		g.cfg.Probe.Inc(obs.GatewayPayload)
		return fire, false
	}
	g.stats.Dummies++
	g.cfg.Probe.Inc(obs.GatewayDummy)
	return fire, true
}

// Next returns the next padded-packet departure time, implementing the
// timestamp-stream contract consumed by internal/netem.
func (g *Gateway) Next() float64 {
	t, _ := g.NextPacket()
	return t
}

// Now returns the gateway's stream clock: the departure time of the most
// recently emitted padded packet (0 before the first fire). The clock
// advances monotonically across observation windows instead of
// restarting at zero per window; it is the gateway-level accessor for
// standalone gateway studies — a full observation chain reads the clock
// at the tap instead (netem.Differ.Now, via core.Session.Now), which
// also reflects network delay.
func (g *Gateway) Now() float64 { return g.lastDepart }

// Stats returns a copy of the activity counters.
func (g *Gateway) Stats() Stats { return g.stats }

// SetProbe attaches a telemetry shard after construction (equivalent to
// setting Config.Probe); call before the first fire.
func (g *Gateway) SetProbe(s *obs.Shard) { g.cfg.Probe = s }

// QueueLen returns the current payload queue length.
func (g *Gateway) QueueLen() int { return len(g.queue) - g.qhead }

// PIATs collects the next n packet inter-arrival times of the padded
// stream as observed at the gateway output (σ_net = 0).
func (g *Gateway) PIATs(n int) []float64 {
	out := make([]float64, n)
	prev := g.Next()
	for i := 0; i < n; i++ {
		t := g.Next()
		out[i] = t - prev
		prev = t
	}
	return out
}
