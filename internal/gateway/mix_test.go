package gateway

import (
	"math"
	"testing"

	"linkpad/internal/stats"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

func newMix(t testing.TB, k int, rate float64, seed uint64) *Mix {
	t.Helper()
	master := xrand.New(seed)
	src, err := traffic.NewPoisson(rate, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMix(MixConfig{
		K:           k,
		SendSpacing: 120e-6,
		Payload:     src,
		Jitter:      DefaultJitter(),
		RNG:         master.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMixValidation(t *testing.T) {
	src, err := traffic.NewPoisson(10, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []MixConfig{
		{K: 1, SendSpacing: 1e-4, Payload: src, RNG: xrand.New(2)},
		{K: 8, SendSpacing: 0, Payload: src, RNG: xrand.New(2)},
		{K: 8, SendSpacing: 1e-4, RNG: xrand.New(2)},
		{K: 8, SendSpacing: 1e-4, Payload: src},
		{K: 8, SendSpacing: 1e-4, Payload: src, RNG: xrand.New(2), Jitter: JitterModel{SigmaOS: -1}},
	}
	for i, cfg := range cases {
		if _, err := NewMix(cfg); err == nil {
			t.Errorf("case %d: invalid mix config accepted", i)
		}
	}
}

func TestMixDeparturesIncrease(t *testing.T) {
	m := newMix(t, 8, 40, 3)
	prev := math.Inf(-1)
	for i := 0; i < 10000; i++ {
		out := m.Next()
		if out <= prev {
			t.Fatalf("departure %d not increasing", i)
		}
		prev = out
	}
	if m.Packets() != 10000 {
		t.Errorf("packets = %d", m.Packets())
	}
	if got, want := m.Bursts(), uint64(10000/8); got != want {
		t.Errorf("bursts = %d, want %d", got, want)
	}
}

// The mix's first-order leak: mean inter-burst gap = K/λ, so the mean
// PIAT of the padded stream is ~1/λ — directly proportional to the
// payload rate. (Compare the timer gateways, whose mean PIAT is τ for
// every rate.)
func TestMixLeaksRateInMeanPIAT(t *testing.T) {
	const n = 80000
	collect := func(rate float64, seed uint64) float64 {
		m := newMix(t, 8, rate, seed)
		prev := m.Next()
		var mo stats.Moments
		for i := 0; i < n; i++ {
			cur := m.Next()
			mo.Add(cur - prev)
			prev = cur
		}
		return mo.Mean()
	}
	mean10 := collect(10, 4)
	mean40 := collect(40, 5)
	if math.Abs(mean10-0.1)/0.1 > 0.05 {
		t.Errorf("mean PIAT at 10pps = %v, want ~1/10", mean10)
	}
	if math.Abs(mean40-0.025)/0.025 > 0.05 {
		t.Errorf("mean PIAT at 40pps = %v, want ~1/40", mean40)
	}
	if mean10 < 3*mean40 {
		t.Errorf("rates should separate by ~4x: %v vs %v", mean10, mean40)
	}
}

// Inter-burst gaps are Erlang(K, λ): mean K/λ, CV 1/sqrt(K).
func TestMixBurstGapsErlang(t *testing.T) {
	const k, rate = 8, 40.0
	m := newMix(t, k, rate, 6)
	var gaps stats.Moments
	var lastBurstStart float64
	first := true
	for b := 0; b < 20000; b++ {
		start := m.Next() // first packet of the burst
		for i := 1; i < k; i++ {
			m.Next()
		}
		if !first {
			gaps.Add(start - lastBurstStart)
		}
		first = false
		lastBurstStart = start
	}
	wantMean := k / rate
	if math.Abs(gaps.Mean()-wantMean)/wantMean > 0.03 {
		t.Errorf("burst gap mean = %v, want %v", gaps.Mean(), wantMean)
	}
	cv := gaps.StdDev() / gaps.Mean()
	if math.Abs(cv-1/math.Sqrt(k)) > 0.03 {
		t.Errorf("burst gap CV = %v, want %v", cv, 1/math.Sqrt(k))
	}
}

// The mix ingress tap mirrors the gateway one: every collected payload
// arrival, in order, without disturbing departures.
func TestMixArrivalTap(t *testing.T) {
	build := func(tap func(float64)) *Mix {
		payload, err := traffic.NewPoisson(40, xrand.New(21))
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMix(MixConfig{
			K:           5,
			SendSpacing: 120e-6,
			Payload:     payload,
			Jitter:      DefaultJitter(),
			RNG:         xrand.New(22),
			ArrivalTap:  tap,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	var taps []float64
	tapped := build(func(ts float64) { taps = append(taps, ts) })
	plain := build(nil)
	for i := 0; i < 1000; i++ {
		if tapped.Next() != plain.Next() {
			t.Fatal("the tap must not disturb the departure stream")
		}
	}
	if uint64(len(taps)) != tapped.Packets() {
		t.Fatalf("tap saw %d arrivals, mix emitted %d packets", len(taps), tapped.Packets())
	}
	for i := 1; i < len(taps); i++ {
		if taps[i] < taps[i-1] {
			t.Fatalf("tap times not monotone at %d", i)
		}
	}
}
