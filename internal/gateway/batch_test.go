package gateway

import (
	"testing"

	"linkpad/internal/slab"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// mkGateway builds a gateway from a seed; called twice per case so the
// pull-driven and batched instances are identically seeded.
func gatewayCases(t *testing.T) map[string]func(seed uint64) *Gateway {
	t.Helper()
	build := func(seed uint64, mkPolicy func(master *xrand.Rand) TimerPolicy, queueCap int) *Gateway {
		master := xrand.New(seed)
		pol := mkPolicy(master)
		payload, err := traffic.NewPoisson(40, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		g, err := New(Config{
			Policy:   pol,
			Jitter:   DefaultJitter(),
			Payload:  payload,
			RNG:      master.Split(),
			QueueCap: queueCap,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	return map[string]func(seed uint64) *Gateway{
		"cit": func(seed uint64) *Gateway {
			return build(seed, func(*xrand.Rand) TimerPolicy {
				p, err := NewCIT(0.01)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}, 0)
		},
		"vit": func(seed uint64) *Gateway {
			return build(seed, func(master *xrand.Rand) TimerPolicy {
				p, err := NewVIT(0.01, 0.003, master.Split())
				if err != nil {
					t.Fatal(err)
				}
				return p
			}, 0)
		},
		"adaptive": func(seed uint64) *Gateway {
			return build(seed, func(*xrand.Rand) TimerPolicy {
				p, err := NewAdaptive(0.005, 0.02, 3)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}, 0)
		},
		"cit-queuecap": func(seed uint64) *Gateway {
			return build(seed, func(*xrand.Rand) TimerPolicy {
				p, err := NewCIT(0.002)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}, 4)
		},
	}
}

// TestGatewayBatchMatchesPull checks the batched gateway against the
// per-packet path: identical departure times, dummy flags, and final
// Stats across awkward chunk sizes.
func TestGatewayBatchMatchesPull(t *testing.T) {
	const total = 4000
	chunks := []int{1, 5, 63, 1000, 4096}
	for name, mk := range gatewayCases(t) {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{3, 17} {
				pull := mk(seed)
				batch := mk(seed)
				wantT := make([]float64, total)
				wantD := make([]bool, total)
				for i := range wantT {
					wantT[i], wantD[i] = pull.NextPacket()
				}
				s := slab.New(slab.DefaultLen)
				var gotT []float64
				var gotD []bool
				for ci := 0; len(gotT) < total; ci++ {
					k := min(chunks[ci%len(chunks)], total-len(gotT))
					batch.NextSlab(s, k)
					gotT = append(gotT, s.Times...)
					for _, f := range s.Flags {
						gotD = append(gotD, f&slab.FlagDummy != 0)
					}
				}
				for i := range wantT {
					if gotT[i] != wantT[i] || gotD[i] != wantD[i] {
						t.Fatalf("seed %d packet %d: batch (%v, %v) != pull (%v, %v)",
							seed, i, gotT[i], gotD[i], wantT[i], wantD[i])
					}
				}
				if pull.Stats() != batch.Stats() {
					t.Fatalf("seed %d: stats diverged: pull %+v batch %+v", seed, pull.Stats(), batch.Stats())
				}
			}
		})
	}
}

// TestMixBatchMatchesPull checks the mix's batch adapter.
func TestMixBatchMatchesPull(t *testing.T) {
	mk := func(seed uint64) *Mix {
		master := xrand.New(seed)
		payload, err := traffic.NewPoisson(30, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMix(MixConfig{
			K:           8,
			SendSpacing: 1e-4,
			Payload:     payload,
			Jitter:      DefaultJitter(),
			RNG:         master.Split(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	pull, batch := mk(9), mk(9)
	got := make([]float64, 3000)
	batch.NextBatch(got)
	for i := range got {
		if w := pull.Next(); got[i] != w {
			t.Fatalf("packet %d: batch %v != pull %v", i, got[i], w)
		}
	}
}

// BenchmarkGatewayCIT measures the gateway hot path — a CIT gateway with
// Poisson payload — in both traversal modes, one packet per iteration.
func BenchmarkGatewayCIT(b *testing.B) {
	mk := func() *Gateway {
		master := xrand.New(1)
		payload, err := traffic.NewPoisson(40, master.Split())
		if err != nil {
			b.Fatal(err)
		}
		pol, err := NewCIT(0.01)
		if err != nil {
			b.Fatal(err)
		}
		g, err := New(Config{Policy: pol, Jitter: DefaultJitter(), Payload: payload, RNG: master.Split()})
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	b.Run("pull", func(b *testing.B) {
		g := mk()
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += g.Next()
		}
		_ = sink
	})
	b.Run("batch", func(b *testing.B) {
		g := mk()
		s := slab.New(slab.DefaultLen)
		g.NextSlab(s, slab.DefaultLen) // warm the queue backing array
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += slab.DefaultLen {
			g.NextSlab(s, slab.DefaultLen)
		}
	})
}

// TestGatewayBatchAllocFree pins the batched gateway at zero allocations
// per slab in steady state (the queue's backing array is warmed by one
// prior slab).
func TestGatewayBatchAllocFree(t *testing.T) {
	for name, mk := range gatewayCases(t) {
		t.Run(name, func(t *testing.T) {
			g := mk(1)
			s := slab.New(slab.DefaultLen)
			g.NextSlab(s, slab.DefaultLen)
			if n := testing.AllocsPerRun(10, func() { g.NextSlab(s, slab.DefaultLen) }); n != 0 {
				t.Fatalf("NextSlab allocates %v times per slab; want 0", n)
			}
		})
	}
}
