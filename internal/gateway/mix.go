package gateway

import (
	"errors"

	"linkpad/internal/obs"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// Mix implements the Chaum-style batching proxy from the paper's related
// work (§2, ref. [3]): it collects K payload packets, then flushes them
// as one back-to-back burst (the shuffle is irrelevant to timing
// analysis). No dummies are sent and no timer runs, so the scheme costs
// no padding bandwidth — and leaks the payload rate at first order: the
// inter-burst gap is the time to collect K packets, i.e. Erlang(K, λ),
// whose mean K/λ is inversely proportional to the rate. The paper's §2
// notes that mixes need dummy traffic for exactly this reason.
//
// Mix produces the padded-stream departure process via Next, like
// Gateway, so it plugs into the same network path and adversary.
type Mix struct {
	k       int
	spacing float64
	payload traffic.Source
	jitter  JitterModel
	rng     *xrand.Rand
	tap     func(t float64)
	probe   *obs.Shard

	nextArrival float64
	pending     int       // packets of the current burst still to emit
	batch       []float64 // arrival times of the current burst's packets
	burstStart  float64
	lastOut     float64
	started     bool

	bursts   uint64
	packets  uint64
	delaySum float64
	delayMax float64
}

// MixConfig assembles a Mix.
type MixConfig struct {
	// K is the batch size (Chaum's parameter); at least 2.
	K int
	// SendSpacing is the wire spacing of packets within a flushed burst
	// (one service time on the outgoing link).
	SendSpacing float64
	// Payload is the incoming payload process (required).
	Payload traffic.Source
	// Jitter perturbs each send with the host's OS noise.
	Jitter JitterModel
	// RNG drives the jitter (required).
	RNG *xrand.Rand
	// ArrivalTap, when non-nil, observes the absolute arrival time of
	// every payload packet reaching the mix — the ingress side of a
	// global passive adversary, mirroring gateway.Config.ArrivalTap.
	ArrivalTap func(t float64)
	// Probe, when non-nil, is the chain's telemetry shard; the mix
	// counts payload arrivals, flushed bursts and emitted packets into
	// it. Nil disables counting.
	Probe *obs.Shard
}

// NewMix creates a mix.
func NewMix(cfg MixConfig) (*Mix, error) {
	if cfg.K < 2 {
		return nil, errors.New("gateway: mix batch size must be at least 2")
	}
	if !(cfg.SendSpacing > 0) {
		return nil, errors.New("gateway: mix send spacing must be positive")
	}
	if cfg.Payload == nil {
		return nil, errors.New("gateway: mix needs a payload source")
	}
	if cfg.RNG == nil {
		return nil, errors.New("gateway: mix needs an rng")
	}
	if err := cfg.Jitter.Validate(); err != nil {
		return nil, err
	}
	return &Mix{
		k:       cfg.K,
		spacing: cfg.SendSpacing,
		payload: cfg.Payload,
		jitter:  cfg.Jitter,
		rng:     cfg.RNG,
		tap:     cfg.ArrivalTap,
		probe:   cfg.Probe,
	}, nil
}

// Next returns the departure time of the next packet: bursts of K packets
// spaced SendSpacing apart, started once the K-th packet of a batch has
// arrived. Departures are strictly increasing.
func (m *Mix) Next() float64 {
	if !m.started {
		m.started = true
		m.nextArrival = m.payload.Next()
	}
	if m.pending == 0 {
		// Collect the next K arrivals; the burst begins at the K-th.
		m.batch = m.batch[:0]
		for i := 0; i < m.k; i++ {
			m.burstStart = m.nextArrival
			m.batch = append(m.batch, m.nextArrival)
			if m.tap != nil {
				m.tap(m.nextArrival)
			}
			m.nextArrival += m.payload.Next()
		}
		m.pending = m.k
		m.bursts++
		m.probe.Add(obs.TrafficPayload, uint64(m.k))
		m.probe.Inc(obs.MixFlush)
	}
	idx := m.k - m.pending
	m.pending--
	out := m.burstStart + float64(idx)*m.spacing + m.jitter.Delay(0, m.rng)
	if out <= m.lastOut {
		out = m.lastOut + minSpacing
	}
	m.lastOut = out
	m.packets++
	m.probe.Inc(obs.MixPacket)
	delay := out - m.batch[idx]
	m.delaySum += delay
	if delay > m.delayMax {
		m.delayMax = delay
	}
	return out
}

// NextBatch fills dst with the next len(dst) departures — exactly
// len(dst) Next calls, exposed so downstream batched layers make one
// virtual call per slab instead of one per packet.
func (m *Mix) NextBatch(dst []float64) {
	for i := range dst {
		dst[i] = m.Next()
	}
}

// MeanDelay returns the average time packets spent waiting in the mix
// (departure − arrival), the QoS cost of batching.
func (m *Mix) MeanDelay() float64 {
	if m.packets == 0 {
		return 0
	}
	return m.delaySum / float64(m.packets)
}

// MaxDelay returns the largest observed packet delay.
func (m *Mix) MaxDelay() float64 { return m.delayMax }

// Bursts returns the number of flushed batches so far.
func (m *Mix) Bursts() uint64 { return m.bursts }

// Packets returns the number of packets emitted so far.
func (m *Mix) Packets() uint64 { return m.packets }

// SetProbe attaches a telemetry shard after construction (equivalent to
// setting MixConfig.Probe); call before the first flush.
func (m *Mix) SetProbe(s *obs.Shard) { m.probe = s }
