package gateway

import "errors"

// Adaptive implements the adaptive traffic-masking policy of Timmerman
// (NSPW 1997), discussed in the paper's related work (§2): to save
// bandwidth, the gateway stretches its timer interval after the payload
// queue has been empty for a while, and snaps back to the fast interval
// as soon as payload queues up.
//
// The paper's point about this family of schemes is that they violate
// perfect secrecy by construction: the padded rate now tracks the payload
// rate, so large-scale rate variations become observable — even the
// sample-mean feature defeats it. Adaptive exists here as the negative
// baseline demonstrating that claim (see the baseline-policies
// experiment).
type Adaptive struct {
	tauBusy   float64
	tauIdle   float64
	idleAfter int
	emptyRun  int
}

// NewAdaptive creates an adaptive policy: intervals are tauBusy while
// payload is flowing and tauIdle (> tauBusy) after idleAfter consecutive
// fires with an empty payload queue.
func NewAdaptive(tauBusy, tauIdle float64, idleAfter int) (*Adaptive, error) {
	if !(tauBusy > 0) {
		return nil, errors.New("gateway: adaptive busy interval must be positive")
	}
	if tauIdle <= tauBusy {
		return nil, errors.New("gateway: adaptive idle interval must exceed the busy interval")
	}
	if idleAfter < 1 {
		return nil, errors.New("gateway: idleAfter must be at least 1")
	}
	return &Adaptive{tauBusy: tauBusy, tauIdle: tauIdle, idleAfter: idleAfter}, nil
}

// ObserveQueue records the payload queue length before each fire.
func (a *Adaptive) ObserveQueue(qlen int) {
	if qlen == 0 {
		a.emptyRun++
	} else {
		a.emptyRun = 0
	}
}

// NextInterval returns the busy interval while payload flows, the idle
// interval once the queue has stayed empty.
func (a *Adaptive) NextInterval() float64 {
	if a.emptyRun >= a.idleAfter {
		return a.tauIdle
	}
	return a.tauBusy
}

// Mean returns the busy interval: the nominal design rate. The realized
// mean depends on the payload process — that dependence is exactly the
// leak.
func (a *Adaptive) Mean() float64 { return a.tauBusy }

// IntervalVar returns 0: the interval is deterministic given the state.
func (a *Adaptive) IntervalVar() float64 { return 0 }

// MaxInterval returns the idle interval.
func (a *Adaptive) MaxInterval() float64 { return a.tauIdle }

// Name returns "ADAPTIVE".
func (a *Adaptive) Name() string { return "ADAPTIVE" }

var _ TimerPolicy = (*Adaptive)(nil)
var _ QueueObserver = (*Adaptive)(nil)
