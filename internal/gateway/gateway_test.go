package gateway

import (
	"math"
	"testing"
	"testing/quick"

	"linkpad/internal/stats"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

const tau = 10e-3

func mustCIT(t testing.TB) *CIT {
	t.Helper()
	c, err := NewCIT(tau)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newGW(t testing.TB, policy TimerPolicy, j JitterModel, rate float64, seed uint64) *Gateway {
	t.Helper()
	master := xrand.New(seed)
	src, err := traffic.NewPoisson(rate, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Policy: policy, Jitter: j, Payload: src, RNG: master.Split()})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPolicyValidation(t *testing.T) {
	if _, err := NewCIT(0); err == nil {
		t.Error("want error for zero CIT period")
	}
	if _, err := NewVIT(0, 1e-6, xrand.New(1)); err == nil {
		t.Error("want error for zero VIT mean")
	}
	if _, err := NewVIT(tau, -1, xrand.New(1)); err == nil {
		t.Error("want error for negative sigma")
	}
	if _, err := NewVIT(tau, 1e-6, nil); err == nil {
		t.Error("want error for nil rng")
	}
}

func TestConfigValidation(t *testing.T) {
	src, err := traffic.NewPoisson(10, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	c := mustCIT(t)
	if _, err := New(Config{Jitter: DefaultJitter(), Payload: src, RNG: xrand.New(2)}); err == nil {
		t.Error("want error for nil policy")
	}
	if _, err := New(Config{Policy: c, Jitter: DefaultJitter(), RNG: xrand.New(2)}); err == nil {
		t.Error("want error for nil payload")
	}
	if _, err := New(Config{Policy: c, Jitter: DefaultJitter(), Payload: src}); err == nil {
		t.Error("want error for nil rng")
	}
	bad := JitterModel{SigmaOS: -1}
	if _, err := New(Config{Policy: c, Jitter: bad, Payload: src, RNG: xrand.New(2)}); err == nil {
		t.Error("want error for invalid jitter")
	}
	if _, err := New(Config{Policy: c, Payload: src, RNG: xrand.New(2), QueueCap: -1}); err == nil {
		t.Error("want error for negative queue cap")
	}
}

// With zero jitter the CIT gateway is a perfect metronome: PIATs are
// exactly τ — Shannon's predefined pattern, zero leak.
func TestCITZeroJitterIsPerfect(t *testing.T) {
	g := newGW(t, mustCIT(t), JitterModel{}, 40, 1)
	piats := g.PIATs(1000)
	for i, x := range piats {
		// Differences of accumulated absolute times carry ~1 ulp of the
		// clock value; anything beyond that would be a real model leak.
		if math.Abs(x-tau) > 1e-12 {
			t.Fatalf("PIAT[%d] = %v, want %v", i, x, tau)
		}
	}
}

// Departure times must be strictly increasing under any jitter.
func TestDeparturesStrictlyIncrease(t *testing.T) {
	f := func(seed uint64) bool {
		g := newGW(t, mustCIT(t), DefaultJitter(), 40, seed)
		prev := math.Inf(-1)
		for i := 0; i < 500; i++ {
			d := g.Next()
			if d <= prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Paper §4.1.2 / Fig. 4(a): PIAT means are equal across payload rates —
// blocking delays shift every fire equally in expectation and cancel in
// the differences.
func TestEqualMeansAcrossRates(t *testing.T) {
	const n = 200000
	gl := newGW(t, mustCIT(t), DefaultJitter(), 10, 2)
	gh := newGW(t, mustCIT(t), DefaultJitter(), 40, 3)
	ml := stats.Mean(gl.PIATs(n))
	mh := stats.Mean(gh.PIATs(n))
	if math.Abs(ml-tau) > 50e-9 {
		t.Errorf("low-rate mean = %v", ml)
	}
	if math.Abs(mh-tau) > 50e-9 {
		t.Errorf("high-rate mean = %v", mh)
	}
	if math.Abs(ml-mh) > 100e-9 {
		t.Errorf("means differ: %v vs %v", ml, mh)
	}
}

// The leak: Var(PIAT | 40pps) > Var(PIAT | 10pps), ratio near the
// analytic prediction.
func TestVarianceRatioMatchesModel(t *testing.T) {
	const n = 400000
	j := DefaultJitter()
	c := mustCIT(t)
	gl := newGW(t, c, j, 10, 4)
	gh := newGW(t, c, j, 40, 5)
	vl := stats.Variance(gl.PIATs(n))
	vh := stats.Variance(gh.PIATs(n))
	rEmp := vh / vl
	rModel := VarianceRatio(c, j, 10, 40)
	if rEmp <= 1.3 {
		t.Fatalf("empirical r = %v, leak did not materialize", rEmp)
	}
	if math.Abs(rEmp-rModel)/rModel > 0.08 {
		t.Errorf("empirical r = %v vs model %v", rEmp, rModel)
	}
	// Per-class variance levels should match the model too.
	if got, want := vl, PIATVar(c, j, 10); math.Abs(got-want)/want > 0.05 {
		t.Errorf("low-rate PIAT var = %v, model %v", got, want)
	}
	if got, want := vh, PIATVar(c, j, 40); math.Abs(got-want)/want > 0.05 {
		t.Errorf("high-rate PIAT var = %v, model %v", got, want)
	}
}

// Default calibration targets r ≈ 1.9 (DESIGN.md §6).
func TestDefaultCalibration(t *testing.T) {
	c := mustCIT(t)
	r := VarianceRatio(c, DefaultJitter(), 10, 40)
	if r < 1.7 || r > 2.1 {
		t.Errorf("calibrated r = %v, want ~1.9", r)
	}
}

// VIT adds σ_T² to the PIAT variance and drives r toward 1.
func TestVITVarianceAndRatio(t *testing.T) {
	const sigmaT = 50e-6
	master := xrand.New(7)
	mkVIT := func() *VIT {
		v, err := NewVIT(tau, sigmaT, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	j := DefaultJitter()
	const n = 300000
	gl := newGW(t, mkVIT(), j, 10, 8)
	gh := newGW(t, mkVIT(), j, 40, 9)
	vl := stats.Variance(gl.PIATs(n))
	vh := stats.Variance(gh.PIATs(n))

	vit := mkVIT()
	wantL := PIATVar(vit, j, 10)
	if math.Abs(vl-wantL)/wantL > 0.05 {
		t.Errorf("VIT low-rate var = %v, model %v", vl, wantL)
	}
	rVIT := vh / vl
	rCIT := VarianceRatio(mustCIT(t), j, 10, 40)
	if rVIT >= rCIT {
		t.Errorf("VIT ratio %v should be below CIT ratio %v", rVIT, rCIT)
	}
	if rVIT > 1.05 {
		t.Errorf("VIT with σ_T = 50µs should push r near 1, got %v", rVIT)
	}
}

// Packet accounting: arrivals = sent payload + still queued + dropped;
// every fire is either payload or dummy.
func TestConservation(t *testing.T) {
	g := newGW(t, mustCIT(t), DefaultJitter(), 40, 10)
	for i := 0; i < 50000; i++ {
		g.Next()
	}
	s := g.Stats()
	if s.Fires != 50000 {
		t.Errorf("fires = %d", s.Fires)
	}
	if s.PayloadSent+s.Dummies != s.Fires {
		t.Errorf("payload %d + dummies %d != fires %d", s.PayloadSent, s.Dummies, s.Fires)
	}
	if s.PayloadSent+uint64(g.QueueLen())+s.Dropped != s.Arrivals {
		t.Errorf("conservation broken: sent %d queued %d dropped %d arrivals %d",
			s.PayloadSent, g.QueueLen(), s.Dropped, s.Arrivals)
	}
	if s.Dropped != 0 {
		t.Errorf("unbounded queue dropped %d", s.Dropped)
	}
}

// Overhead: with payload rate λ << 1/τ the dummy fraction ≈ 1 − λτ.
func TestOverheadRatio(t *testing.T) {
	for _, tc := range []struct{ rate, want float64 }{
		{10, 0.9}, {40, 0.6},
	} {
		g := newGW(t, mustCIT(t), DefaultJitter(), tc.rate, 11)
		for i := 0; i < 200000; i++ {
			g.Next()
		}
		if got := g.Stats().OverheadRatio(); math.Abs(got-tc.want) > 0.01 {
			t.Errorf("rate %v: overhead = %v, want ~%v", tc.rate, got, tc.want)
		}
	}
}

// A payload rate above the padding rate saturates the gateway: the queue
// grows and (with a cap) drops appear — the paper's QoS coupling.
func TestOverloadDropsWithQueueCap(t *testing.T) {
	master := xrand.New(12)
	src, err := traffic.NewPoisson(200, master.Split()) // 2x the padding rate
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{
		Policy: mustCIT(t), Jitter: DefaultJitter(),
		Payload: src, RNG: master.Split(), QueueCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		g.Next()
	}
	s := g.Stats()
	if s.Dropped == 0 {
		t.Error("overloaded capped queue should drop")
	}
	if s.MaxQueue > 64 {
		t.Errorf("queue exceeded cap: %d", s.MaxQueue)
	}
	if s.Dummies > s.Fires/100 {
		t.Errorf("saturated gateway should send almost no dummies, sent %d/%d", s.Dummies, s.Fires)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a := newGW(t, mustCIT(t), DefaultJitter(), 40, 99)
	b := newGW(t, mustCIT(t), DefaultJitter(), 40, 99)
	for i := 0; i < 1000; i++ {
		ta, da := a.NextPacket()
		tb, db := b.NextPacket()
		if ta != tb || da != db {
			t.Fatalf("runs diverged at packet %d", i)
		}
	}
}

// The capped-exponential moment formulas behind DeltaVar, checked by
// Monte Carlo.
func TestBlockMomentFormulas(t *testing.T) {
	j := DefaultJitter()
	r := xrand.New(13)
	const n = 2000000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		b := r.Exp(j.BlockMean)
		if b > j.BlockCap {
			b = j.BlockCap
		}
		sum += b
		sumsq += b * b
	}
	m1, m2 := sum/n, sumsq/n
	if want := j.blockMeanCapped(); math.Abs(m1-want)/want > 0.005 {
		t.Errorf("E[d] = %v, formula %v", m1, want)
	}
	if want := j.blockSecondMoment(); math.Abs(m2-want)/want > 0.01 {
		t.Errorf("E[d²] = %v, formula %v", m2, want)
	}
}

func TestBlockMomentEdgeCases(t *testing.T) {
	zero := JitterModel{}
	if zero.blockSecondMoment() != 0 || zero.blockMeanCapped() != 0 {
		t.Error("zero model moments should be 0")
	}
	uncapped := JitterModel{BlockMean: 2e-6}
	if got, want := uncapped.blockSecondMoment(), 2*2e-6*2e-6; math.Abs(got-want) > 1e-18 {
		t.Errorf("uncapped E[d²] = %v, want %v", got, want)
	}
	if got := uncapped.blockMeanCapped(); got != 2e-6 {
		t.Errorf("uncapped E[d] = %v", got)
	}
}

// PIAT distribution at the gateway should look near-normal — the paper's
// own wording for its Fig. 4(a) is "almost bell-shaped", and the compound
// blocking term necessarily fattens the tails a little. We check the bulk
// with a KS distance against the fitted normal and bound the kurtosis
// loosely.
func TestPIATApproximatelyNormal(t *testing.T) {
	master := xrand.New(14)
	g := newGW(t, mustCIT(t), DefaultJitter(), 10, 14)
	xs := g.PIATs(100000)
	mean := stats.Mean(xs)
	sd := stats.StdDev(xs)
	var k4 float64
	for _, x := range xs {
		z := (x - mean) / sd
		k4 += z * z * z * z
	}
	k4 /= float64(len(xs))
	if k4 < 2.5 || k4 > 8 {
		t.Errorf("kurtosis = %v, too far from normal", k4)
	}
	ref := make([]float64, len(xs))
	for i := range ref {
		ref[i] = master.Normal(mean, sd)
	}
	d, err := stats.KSDistance(xs, ref)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.06 {
		t.Errorf("KS distance to fitted normal = %v", d)
	}
}

// Successive PIATs share a δ term (X_k = T + δ_{k+1} − δ_k) and must show
// the MA(1) signature: lag-1 autocorrelation ≈ −1/2, lag-2 ≈ 0.
func TestPIATAutocorrelationStructure(t *testing.T) {
	g := newGW(t, mustCIT(t), DefaultJitter(), 40, 15)
	xs := g.PIATs(200000)
	if ac1 := stats.Autocorr(xs, 1); math.Abs(ac1+0.5) > 0.02 {
		t.Errorf("lag-1 autocorr = %v, want ~ -0.5", ac1)
	}
	if ac2 := stats.Autocorr(xs, 2); math.Abs(ac2) > 0.02 {
		t.Errorf("lag-2 autocorr = %v, want ~ 0", ac2)
	}
}

func TestVITIntervalFloor(t *testing.T) {
	v, err := NewVIT(tau, 5e-3, xrand.New(16)) // huge σ_T: floor engages
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if iv := v.NextInterval(); iv < tau/100 {
			t.Fatalf("interval %v below floor", iv)
		}
	}
}

func BenchmarkGatewayNext(b *testing.B) {
	master := xrand.New(1)
	src, err := traffic.NewPoisson(40, master.Split())
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCIT(tau)
	if err != nil {
		b.Fatal(err)
	}
	g, err := New(Config{Policy: c, Jitter: DefaultJitter(), Payload: src, RNG: master.Split()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// Now exposes the stream clock that carries across session windows: the
// gateway's continuous timeline advances monotonically with every fire
// instead of restarting per observation window.
func TestGatewaySessionClock(t *testing.T) {
	master := xrand.New(11)
	src, err := traffic.NewPoisson(40, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCIT(tau)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Policy: c, Jitter: DefaultJitter(), Payload: src, RNG: master.Split()})
	if err != nil {
		t.Fatal(err)
	}
	if g.Now() != 0 {
		t.Fatalf("fresh gateway clock = %v", g.Now())
	}
	for i := 0; i < 500; i++ {
		g.NextPacket()
	}
	st := g.Stats()
	if st.Fires != 500 {
		t.Fatalf("after 500 fires: fires = %d", st.Fires)
	}
	if got, want := g.Now(), 500*tau; got < 0.9*want || got > 1.1*want {
		t.Errorf("clock after 500 fires = %v, want ~%v", got, want)
	}
	// Observation continues the same timeline: the next departure
	// advances past the current clock, never restarts at zero.
	warm := g.Now()
	next := g.Next()
	if next <= warm {
		t.Errorf("post-warm-up departure %v restarted the clock (warmed to %v)", next, warm)
	}
	if next-g.Now() != 0 {
		t.Errorf("Now (%v) should track the last departure (%v)", g.Now(), next)
	}
}

// The ingress tap must observe every payload arrival (dropped ones
// included) at its true arrival time, without disturbing the stream.
func TestGatewayArrivalTap(t *testing.T) {
	build := func(tap func(float64)) *Gateway {
		cit, err := NewCIT(10e-3)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := traffic.NewPoisson(40, xrand.New(11))
		if err != nil {
			t.Fatal(err)
		}
		gw, err := New(Config{
			Policy:     cit,
			Jitter:     DefaultJitter(),
			Payload:    payload,
			RNG:        xrand.New(12),
			ArrivalTap: tap,
		})
		if err != nil {
			t.Fatal(err)
		}
		return gw
	}
	var taps []float64
	tapped := build(func(ts float64) { taps = append(taps, ts) })
	plain := build(nil)
	for i := 0; i < 2000; i++ {
		if tapped.Next() != plain.Next() {
			t.Fatal("the tap must not disturb the departure stream")
		}
	}
	stats := tapped.Stats()
	if uint64(len(taps)) != stats.Arrivals {
		t.Fatalf("tap saw %d arrivals, gateway counted %d", len(taps), stats.Arrivals)
	}
	for i := 1; i < len(taps); i++ {
		if taps[i] < taps[i-1] {
			t.Fatalf("tap times not monotone at %d", i)
		}
	}
}
