package gateway

import (
	"testing"

	"linkpad/internal/obs"
	"linkpad/internal/slab"
)

// The telemetry probe must be free in the slab path: a nil (disabled)
// probe is a predicted branch per event, and an attached shard is plain
// array arithmetic — neither may allocate. This is the contract that
// lets the probe stay wired into every gateway permanently.
func TestGatewayProbeAllocFree(t *testing.T) {
	for name, mk := range gatewayCases(t) {
		t.Run(name+"/disabled", func(t *testing.T) {
			g := mk(1)
			g.SetProbe(nil)
			s := slab.New(slab.DefaultLen)
			g.NextSlab(s, slab.DefaultLen)
			if n := testing.AllocsPerRun(10, func() { g.NextSlab(s, slab.DefaultLen) }); n != 0 {
				t.Fatalf("NextSlab with disabled probe allocates %v times per slab; want 0", n)
			}
		})
		t.Run(name+"/enabled", func(t *testing.T) {
			g := mk(1)
			g.SetProbe(&obs.Shard{})
			s := slab.New(slab.DefaultLen)
			g.NextSlab(s, slab.DefaultLen)
			if n := testing.AllocsPerRun(10, func() { g.NextSlab(s, slab.DefaultLen) }); n != 0 {
				t.Fatalf("NextSlab with enabled probe allocates %v times per slab; want 0", n)
			}
		})
	}
}

// The probe's gateway counters must agree exactly with the gateway's
// own Stats accounting: every fire is either a payload or a dummy, and
// the shard records the same split.
func TestGatewayProbeMatchesStats(t *testing.T) {
	for name, mk := range gatewayCases(t) {
		t.Run(name, func(t *testing.T) {
			obs.Reset()
			defer obs.Reset()
			g := mk(1)
			sh := &obs.Shard{}
			g.SetProbe(sh)
			s := slab.New(slab.DefaultLen)
			for i := 0; i < 50; i++ {
				g.NextSlab(s, slab.DefaultLen)
			}
			sh.Flush()
			snap := obs.Snapshot()
			st := g.Stats()
			if got := snap[obs.GatewayPayload]; got != st.PayloadSent {
				t.Errorf("probe payload = %d, stats = %d", got, st.PayloadSent)
			}
			if got := snap[obs.GatewayDummy]; got != st.Dummies {
				t.Errorf("probe dummies = %d, stats = %d", got, st.Dummies)
			}
			if got := snap[obs.GatewayPayload] + snap[obs.GatewayDummy]; got != st.Fires {
				t.Errorf("probe payload+dummy = %d, stats fires = %d", got, st.Fires)
			}
			if snap[obs.GatewayDummy] == 0 || snap[obs.GatewayPayload] == 0 {
				t.Errorf("degenerate run: payload=%d dummies=%d", snap[obs.GatewayPayload], snap[obs.GatewayDummy])
			}
		})
	}
}
