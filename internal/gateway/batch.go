package gateway

import "linkpad/internal/slab"

// Batched generation (batch.go): the gateway can emit a slab of padded
// departures in one call. The batch loop replays NextPacket's exact
// per-fire logic — queue observation, designed interval, arrival
// admission, jitter draw — via the shared fire method, so an n-packet
// batch draws the identical variates in the identical order as n
// NextPacket calls and the departure stream is bit-identical (enforced
// by the equivalence tests). The loop hoists the per-call interface
// dispatch: the QueueObserver assertion happens once per slab, and the
// dominant CIT policy's constant interval is read once instead of
// through a method call per fire.

// NextBatch fills dst with the departure times of the next len(dst)
// padded packets, equivalent to len(dst) Next calls.
func (g *Gateway) NextBatch(dst []float64) {
	g.nextSlab(dst, nil)
}

// NextSlab fills s with the next n padded packets: departure times plus
// the slab.FlagDummy bit on packets that carry no payload (ground truth
// the adversary never sees). The slab is reset and grown to n.
func (g *Gateway) NextSlab(s *slab.Slab, n int) {
	s.Grow(n)
	g.nextSlab(s.Times, s.Flags)
}

// nextSlab is the shared batch loop; flags may be nil when the caller
// only needs timestamps.
func (g *Gateway) nextSlab(dst []float64, flags []uint8) {
	if len(dst) == 0 {
		return
	}
	if !g.started {
		g.started = true
		g.nextArrival = g.cfg.Payload.Next()
	}
	obs, hasObs := g.cfg.Policy.(QueueObserver)
	cit, isCIT := g.cfg.Policy.(*CIT)
	for i := range dst {
		if hasObs {
			obs.ObserveQueue(g.QueueLen())
		}
		var interval float64
		if isCIT {
			interval = cit.tau
		} else {
			interval = g.cfg.Policy.NextInterval()
		}
		t, dummy := g.fire(interval)
		dst[i] = t
		if flags != nil {
			var f uint8
			if dummy {
				f = slab.FlagDummy
			}
			flags[i] = f
		}
	}
}
