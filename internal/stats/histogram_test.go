package stats

import (
	"math"
	"testing"
	"testing/quick"

	"linkpad/internal/xrand"
)

func TestNewHistogramValidation(t *testing.T) {
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewHistogram(w); err == nil {
			t.Errorf("NewHistogram(%v) should fail", w)
		}
	}
	if _, err := NewHistogram(1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramCounts(t *testing.T) {
	h, _ := NewHistogram(1.0)
	h.AddAll([]float64{0.1, 0.2, 0.9, 1.5, 2.5, 2.6, 2.7})
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Count(0.5); got != 3 {
		t.Errorf("bin [0,1) count = %d, want 3", got)
	}
	if got := h.Count(1.0); got != 1 {
		t.Errorf("bin [1,2) count = %d, want 1", got)
	}
	if got := h.Count(2.99); got != 3 {
		t.Errorf("bin [2,3) count = %d, want 3", got)
	}
	if h.Bins() != 3 {
		t.Errorf("Bins = %d, want 3", h.Bins())
	}
}

func TestHistogramNegativeValues(t *testing.T) {
	h, _ := NewHistogram(0.5)
	h.AddAll([]float64{-0.1, -0.4, -0.6})
	if got := h.Count(-0.25); got != 2 {
		t.Errorf("bin [-0.5,0) count = %d, want 2", got)
	}
	if got := h.Count(-0.75); got != 1 {
		t.Errorf("bin [-1,-0.5) count = %d, want 1", got)
	}
}

func TestEntropySingleBin(t *testing.T) {
	h, _ := NewHistogram(1)
	for i := 0; i < 100; i++ {
		h.Add(0.5)
	}
	if got := h.Entropy(); got != 0 {
		t.Errorf("single-bin entropy = %v, want 0", got)
	}
}

func TestEntropyUniformBins(t *testing.T) {
	h, _ := NewHistogram(1)
	// 4 bins with equal counts: entropy = log 4.
	for i := 0; i < 4; i++ {
		for j := 0; j < 25; j++ {
			h.Add(float64(i) + 0.5)
		}
	}
	if got, want := h.Entropy(), math.Log(4); !almostEq(got, want, 1e-12) {
		t.Errorf("uniform 4-bin entropy = %v, want %v", got, want)
	}
}

func TestEntropyEmpty(t *testing.T) {
	h, _ := NewHistogram(1)
	if h.Entropy() != 0 {
		t.Error("empty histogram entropy should be 0")
	}
	if !math.IsInf(h.DifferentialEntropy(), -1) {
		t.Error("empty differential entropy should be -Inf")
	}
}

// The differential entropy of N(mu, sigma^2) is 0.5*ln(2*pi*e*sigma^2).
// The histogram estimator (eq. 24) should approach it for a fine enough
// bin and a large sample, independent of mu.
func TestDifferentialEntropyGaussian(t *testing.T) {
	r := xrand.New(7)
	const sigma = 5e-6
	want := 0.5 * math.Log(2*math.Pi*math.E*sigma*sigma)
	h, _ := NewHistogram(sigma / 4)
	for i := 0; i < 200000; i++ {
		h.Add(r.Normal(10e-3, sigma))
	}
	got := h.DifferentialEntropy()
	if math.Abs(got-want) > 0.02 {
		t.Errorf("differential entropy = %v, want %v", got, want)
	}
}

// Larger sigma must give larger estimated entropy at the same bin width:
// this is the monotonicity in r that Theorem 3 exploits.
func TestEntropyMonotoneInSigma(t *testing.T) {
	r := xrand.New(9)
	width := 2e-6
	var prev float64
	for i, sigma := range []float64{2e-6, 4e-6, 8e-6} {
		h, _ := NewHistogram(width)
		for j := 0; j < 50000; j++ {
			h.Add(r.Normal(0, sigma))
		}
		e := h.Entropy()
		if i > 0 && e <= prev {
			t.Errorf("entropy not monotone: sigma=%v gives %v <= %v", sigma, e, prev)
		}
		prev = e
	}
}

// Entropy is robust to a single large outlier while variance is not —
// the paper's §4.4 motivation for the histogram estimator.
func TestEntropyRobustToOutliers(t *testing.T) {
	r := xrand.New(11)
	base := make([]float64, 2000)
	for i := range base {
		base[i] = r.Normal(0.01, 5e-6)
	}
	dirty := append(append([]float64(nil), base...), 0.02) // one 10ms outlier

	eBase, err := Entropy(base, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	eDirty, err := Entropy(dirty, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	relEnt := math.Abs(eDirty-eBase) / eBase
	relVar := math.Abs(Variance(dirty)-Variance(base)) / Variance(base)
	if relEnt > 0.01 {
		t.Errorf("entropy moved %.3f%% on one outlier", 100*relEnt)
	}
	if relVar < 10*relEnt {
		t.Errorf("variance (%.3f) should be far more outlier-sensitive than entropy (%.5f)", relVar, relEnt)
	}
}

func TestHistogramNonFiniteInputsDoNotCrash(t *testing.T) {
	h, _ := NewHistogram(1)
	h.Add(math.NaN())
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	h.Add(1e300)
	h.Add(-1e300)
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5", h.N())
	}
	if e := h.Entropy(); math.IsNaN(e) || e < 0 {
		t.Errorf("entropy = %v", e)
	}
}

func TestDensityPoints(t *testing.T) {
	h, _ := NewHistogram(1)
	h.AddAll([]float64{0.5, 0.6, 2.5, 2.6, 2.7})
	xs, ds := h.DensityPoints()
	if len(xs) != 2 || len(ds) != 2 {
		t.Fatalf("points = %v %v", xs, ds)
	}
	if xs[0] != 0.5 || xs[1] != 2.5 {
		t.Errorf("bin centers = %v", xs)
	}
	// Density integrates to 1: sum(d_i * width) = 1.
	var integral float64
	for _, d := range ds {
		integral += d * h.Width()
	}
	if !almostEq(integral, 1, 1e-12) {
		t.Errorf("density integral = %v", integral)
	}
}

func TestDensityPointsEmpty(t *testing.T) {
	h, _ := NewHistogram(1)
	xs, ds := h.DensityPoints()
	if xs != nil || ds != nil {
		t.Error("empty histogram should give nil density points")
	}
}

// Properties: entropy is non-negative, at most log(#bins), and invariant
// under shifting all data by whole bins.
func TestEntropyProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 1)
		}
		h, _ := NewHistogram(0.25)
		h.AddAll(xs)
		e := h.Entropy()
		if e < 0 || e > math.Log(float64(h.Bins()))+1e-12 {
			return false
		}
		h2, _ := NewHistogram(0.25)
		for _, x := range xs {
			h2.Add(x + 4.0) // 16 whole bins
		}
		return almostEq(h2.Entropy(), e, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEntropy1000(b *testing.B) {
	r := xrand.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Normal(0.01, 5e-6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Entropy(xs, 2e-6); err != nil {
			b.Fatal(err)
		}
	}
}
