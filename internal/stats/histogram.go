package stats

import (
	"errors"
	"math"
	"sort"
)

// Histogram is a fixed-bin-width histogram. The paper's robust entropy
// estimator (eq. 24) requires a constant bin width Δh across the whole
// experiment so that the log Δh term is a constant and can be dropped
// (eq. 25); Histogram therefore fixes the width at construction and grows
// its range as needed instead of rescaling bins.
type Histogram struct {
	width  float64
	origin float64 // left edge of bin index 0
	counts map[int]int
	n      int
}

// NewHistogram creates a histogram with the given bin width.
// The width must be positive.
func NewHistogram(width float64) (*Histogram, error) {
	if !(width > 0) || math.IsInf(width, 0) || math.IsNaN(width) {
		return nil, errors.New("stats: histogram bin width must be positive and finite")
	}
	return &Histogram{width: width, counts: make(map[int]int)}, nil
}

// Width returns the bin width.
func (h *Histogram) Width() float64 { return h.width }

// N returns the number of observations added.
func (h *Histogram) N() int { return h.n }

// Add places one observation into its bin. Non-finite values are counted
// into the extreme bins so that outliers produced by pathological
// configurations cannot crash a run; they carry negligible probability
// weight, which is exactly the robustness property the estimator relies on.
func (h *Histogram) Add(x float64) {
	h.counts[h.binIndex(x)]++
	h.n++
}

// AddAll places every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

func (h *Histogram) binIndex(x float64) int {
	if math.IsNaN(x) {
		return 0
	}
	if math.IsInf(x, 1) {
		return math.MaxInt32
	}
	if math.IsInf(x, -1) {
		return math.MinInt32
	}
	idx := math.Floor((x - h.origin) / h.width)
	switch {
	case idx > math.MaxInt32:
		return math.MaxInt32
	case idx < math.MinInt32:
		return math.MinInt32
	}
	return int(idx)
}

// Count returns the number of observations in the bin containing x.
func (h *Histogram) Count(x float64) int { return h.counts[h.binIndex(x)] }

// Bins returns the number of non-empty bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Entropy returns the normalized histogram entropy of the sample,
//
//	H ≈ −Σ_i (k_i/n) log(k_i/n)
//
// i.e. the paper's eq. 25: the differential-entropy estimator of
// Moddemeijer with the constant log Δh term discarded. Natural log.
// An empty histogram has zero entropy.
func (h *Histogram) Entropy() float64 {
	if h.n == 0 {
		return 0
	}
	// Sum in sorted bin order: map iteration order is randomized, and the
	// float sum is order-sensitive at the ULP level, which would make
	// entropy features (and so whole experiment tables) non-reproducible.
	idxs := make([]int, 0, len(h.counts))
	for i := range h.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	n := float64(h.n)
	var sum float64
	for _, i := range idxs {
		p := float64(h.counts[i]) / n
		sum -= p * math.Log(p)
	}
	return sum
}

// DifferentialEntropy returns the full eq. 24 estimate,
// H ≈ −Σ (k_i/n) log(k_i/n) + log Δh, which estimates the differential
// entropy of the underlying continuous distribution.
func (h *Histogram) DifferentialEntropy() float64 {
	if h.n == 0 {
		return math.Inf(-1)
	}
	return h.Entropy() + math.Log(h.width)
}

// Entropy computes the eq. 25 histogram entropy of xs with the given
// constant bin width in one call. This is the adversary's sample-entropy
// feature statistic.
func Entropy(xs []float64, width float64) (float64, error) {
	h, err := NewHistogram(width)
	if err != nil {
		return 0, err
	}
	h.AddAll(xs)
	return h.Entropy(), nil
}

// EntropyDensity evaluates the histogram as a density estimate at x:
// k(x) / (n * Δh). Useful for plotting PIAT PDFs (paper Fig. 4a).
func (h *Histogram) EntropyDensity(x float64) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.Count(x)) / (float64(h.n) * h.width)
}

// DensityPoints returns (x, density) pairs at the center of every
// non-empty bin, sorted by x, for plotting estimated PDFs.
func (h *Histogram) DensityPoints() (xs, ds []float64) {
	if h.n == 0 {
		return nil, nil
	}
	idxs := make([]int, 0, len(h.counts))
	for i := range h.counts {
		idxs = append(idxs, i)
	}
	// insertion sort; bin counts are small
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	xs = make([]float64, len(idxs))
	ds = make([]float64, len(idxs))
	for k, i := range idxs {
		xs[k] = h.origin + (float64(i)+0.5)*h.width
		ds[k] = float64(h.counts[i]) / (float64(h.n) * h.width)
	}
	return xs, ds
}
