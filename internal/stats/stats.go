// Package stats provides the descriptive statistics used throughout the
// link-padding study: running moments (Welford), sample mean and variance
// exactly as the adversary computes them (paper eqs. 17 and 19), fixed-bin
// histograms, and the robust histogram-based differential entropy
// estimator of Moddemeijer (paper eqs. 24-25).
//
// Everything is a deterministic pure function or a reusable accumulator:
// Moments carries Welford state in O(1), StreamHist is a dense
// fixed-bin histogram reset between windows instead of reallocated, and
// Quantile selects in place with quickselect — the feature-extraction
// hot path allocates nothing in steady state. Summation orders are
// fixed (bin order, sample order), never map order, so results are
// byte-identical across runs and worker counts.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Moments accumulates count, mean and variance in one pass using
// Welford's numerically stable recurrence. The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddAll incorporates every observation in xs.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// N returns the number of observations seen.
func (m *Moments) N() int { return m.n }

// Mean returns the sample mean, or 0 with no observations.
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased (n-1 denominator) sample variance,
// matching the paper's eq. 19. It returns 0 for fewer than two samples.
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// PopVariance returns the population (n denominator) variance.
func (m *Moments) PopVariance() float64 {
	if m.n < 1 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the square root of the unbiased sample variance.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation (0 if none).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 if none).
func (m *Moments) Max() float64 { return m.max }

// Mean returns the sample mean of xs (paper eq. 17). Empty input yields 0.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (paper eq. 19).
// Inputs with fewer than two elements yield 0.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - mean
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the square root of the unbiased sample variance.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input is left untouched; a
// scratch copy is selected with quickselect rather than fully sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if err := validateQuantile(xs, q); err != nil {
		return 0, err
	}
	s := append([]float64(nil), xs...)
	return quantileSelected(s, q), nil
}

// QuantileInPlace returns the q-quantile of s by partially reordering s
// itself (quickselect), so repeated calls on a reusable buffer allocate
// nothing. The element multiset is preserved; the order is not.
func QuantileInPlace(s []float64, q float64) (float64, error) {
	if err := validateQuantile(s, q); err != nil {
		return 0, err
	}
	return quantileSelected(s, q), nil
}

func validateQuantile(xs []float64, q float64) error {
	if len(xs) == 0 {
		return errors.New("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return errors.New("stats: quantile level out of [0,1]")
	}
	return nil
}

// quantileSelected computes the interpolated quantile of s, mutating it.
func quantileSelected(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	x := selectKth(s, lo)
	if lo == hi {
		return x
	}
	// The hi-th order statistic is the minimum of the right partition
	// quickselect leaves above position lo.
	y := s[lo+1]
	for _, v := range s[lo+2:] {
		if v < y {
			y = v
		}
	}
	frac := pos - float64(lo)
	return x*(1-frac) + y*frac
}

// selectKth places the k-th order statistic of s at index k (with smaller
// elements left of it and larger right of it) and returns it, using
// median-of-three quickselect with Hoare partitioning. Expected O(n), no
// allocation, deterministic for a given input. Behaviour with NaNs is
// unspecified (as with sort-based selection) but always terminates.
func selectKth(s []float64, k int) float64 {
	l, r := 0, len(s)-1
	for l < r {
		// Median-of-three pivot: order s[l], s[m], s[r].
		m := l + (r-l)/2
		if s[m] < s[l] {
			s[m], s[l] = s[l], s[m]
		}
		if s[r] < s[l] {
			s[r], s[l] = s[l], s[r]
		}
		if s[r] < s[m] {
			s[r], s[m] = s[m], s[r]
		}
		pivot := s[m]
		i, j := l, r
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			r = j
		case k >= i:
			l = i
		default:
			return s[k]
		}
	}
	return s[k]
}

// Autocorr returns the lag-k sample autocorrelation of xs.
// It returns 0 when the series is constant or shorter than k+2.
func Autocorr(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || n < k+2 {
		return 0
	}
	mean := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+k < n {
			num += d * (xs[i+k] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// KSDistance returns the two-sample Kolmogorov-Smirnov statistic
// sup_x |F_a(x) - F_b(x)|. Both inputs must be non-empty.
func KSDistance(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("stats: KSDistance of empty sample")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		// Advance through the full run of the smallest pending value on
		// both sides before comparing: measuring mid-tie would report a
		// spurious gap when both samples share an atom.
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] == x {
			i++
		}
		for j < len(sb) && sb[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// Summary captures the descriptive statistics of a sample in one struct,
// convenient for experiment reports.
type Summary struct {
	N        int
	Mean     float64
	Variance float64
	StdDev   float64
	Min      float64
	Max      float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	var m Moments
	m.AddAll(xs)
	return Summary{
		N:        m.N(),
		Mean:     m.Mean(),
		Variance: m.Variance(),
		StdDev:   m.StdDev(),
		Min:      m.Min(),
		Max:      m.Max(),
	}
}
