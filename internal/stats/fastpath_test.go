package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"linkpad/internal/xrand"
)

// Quickselect-based quantiles must agree exactly with the sort-based
// definition: order statistics are exact values, so the interpolated
// result is bit-identical.
func TestQuantileMatchesSortedReference(t *testing.T) {
	ref := func(xs []float64, q float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		if len(s) == 1 {
			return s[0]
		}
		pos := q * float64(len(s)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return s[lo]
		}
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			if r.Bernoulli(0.3) {
				// duplicates stress the 3-way partitioning
				xs[i] = float64(r.Intn(5))
			} else {
				xs[i] = r.Norm()
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1, r.Float64()} {
			got, err := Quantile(xs, q)
			if err != nil {
				return false
			}
			if got != ref(xs, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileInPlacePreservesMultiset(t *testing.T) {
	r := xrand.New(3)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Norm()
	}
	before := append([]float64(nil), xs...)
	sort.Float64s(before)
	if _, err := QuantileInPlace(xs, 0.25); err != nil {
		t.Fatal(err)
	}
	if _, err := QuantileInPlace(xs, 0.75); err != nil {
		t.Fatal(err)
	}
	after := append([]float64(nil), xs...)
	sort.Float64s(after)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("QuantileInPlace changed the element multiset")
		}
	}
	if _, err := QuantileInPlace(nil, 0.5); err == nil {
		t.Error("empty sample should fail")
	}
}

func TestQuantileAllocationFree(t *testing.T) {
	buf := make([]float64, 1000)
	r := xrand.New(9)
	for i := range buf {
		buf[i] = r.Norm()
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := QuantileInPlace(buf, 0.25); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("QuantileInPlace allocates %v per call, want 0", allocs)
	}
}

// StreamHist must reproduce Histogram's entropy on the same data to float
// summation order (1e-12 relative), including reuse across windows.
func TestStreamHistMatchesHistogram(t *testing.T) {
	sh, err := NewStreamHist(2e-6)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(11)
	for window := 0; window < 10; window++ {
		h, err := NewHistogram(2e-6)
		if err != nil {
			t.Fatal(err)
		}
		sh.Reset()
		n := 200 + r.Intn(800)
		for i := 0; i < n; i++ {
			x := r.Normal(10e-3, 5e-6)
			h.Add(x)
			sh.Add(x)
		}
		want, got := h.Entropy(), sh.Entropy()
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("window %d: stream entropy %v vs histogram %v", window, got, want)
		}
		if sh.N() != h.N() || sh.Bins() != h.Bins() {
			t.Fatalf("window %d: N/Bins mismatch: %d/%d vs %d/%d",
				window, sh.N(), sh.Bins(), h.N(), h.Bins())
		}
	}
}

// Non-finite and far-outlier values follow the same clamping as Histogram.
func TestStreamHistNonFinite(t *testing.T) {
	vals := []float64{10e-3, 10.000002e-3, math.Inf(1), math.Inf(-1), math.NaN(), 1e30, -1e30}
	h, err := NewHistogram(2e-6)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewStreamHist(2e-6)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll(vals)
	sh.AddAll(vals)
	if got, want := sh.Entropy(), h.Entropy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("entropy with non-finite values: %v vs %v", got, want)
	}
	if sh.Bins() != h.Bins() {
		t.Errorf("bins: %d vs %d", sh.Bins(), h.Bins())
	}
	if _, err := NewStreamHist(0); err == nil {
		t.Error("zero width should fail")
	}
}

func TestStreamHistSteadyStateAllocationFree(t *testing.T) {
	sh, err := NewStreamHist(2e-6)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(21)
	window := make([]float64, 1000)
	fill := func() {
		for i := range window {
			window[i] = r.Normal(10e-3, 5e-6)
		}
	}
	// Warm the dense storage, then demand zero allocations per window.
	fill()
	sh.Reset()
	sh.AddAll(window)
	_ = sh.Entropy()
	allocs := testing.AllocsPerRun(20, func() {
		fill()
		sh.Reset()
		sh.AddAll(window)
		_ = sh.Entropy()
	})
	if allocs != 0 {
		t.Errorf("steady-state window costs %v allocations, want 0", allocs)
	}
}

// Entropy must not depend on whether a bin landed in the dense window
// or the spill map — placement depends on the histogram's reuse history,
// and two pipelines with different histories must still produce
// bit-identical features for the same window (the worker-count
// determinism invariant).
func TestStreamHistEntropyIndependentOfPlacementHistory(t *testing.T) {
	newHist := func(history []float64) *StreamHist {
		h, err := NewStreamHist(1)
		if err != nil {
			t.Fatal(err)
		}
		h.AddAll(history)
		h.Reset()
		return h
	}
	// a's dense window already covers the outlier bin; b's history pushed
	// its base so far left that the outlier exceeds the dense cap and
	// spills.
	const outlier = 5000 + (1 << 20)
	a := newHist([]float64{5000.5, outlier + 0.5})
	b := newHist([]float64{-(1 << 20) + 0.5, 5000.5})
	// Outlier first: a touches it first (dense) while b spills it, so a
	// naive first-touch summation would add its term in a different
	// position; distinct counts make the float sum order-sensitive.
	window := []float64{outlier + 0.5, 5000.5, 5001.5, 5001.5, 5003.5, 5003.5, 5003.5}
	a.AddAll(window)
	b.AddAll(window)
	if a.Bins() != b.Bins() || a.N() != b.N() {
		t.Fatalf("histograms disagree on contents: %d/%d bins, %d/%d n",
			a.Bins(), b.Bins(), a.N(), b.N())
	}
	if ea, eb := a.Entropy(), b.Entropy(); ea != eb {
		t.Fatalf("entropy depends on placement history: %v vs %v", ea, eb)
	}
}

// A bin that spilled must stay spilled for the rest of the window even
// when later dense growth (toward a neighbor within the margin) makes
// its index coverable — splitting one bin across the two stores would
// double-count it in Entropy.
func TestStreamHistSpillThenCoverableStaysOneBin(t *testing.T) {
	sh, err := NewStreamHist(1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHistogram(1)
	if err != nil {
		t.Fatal(err)
	}
	// Dense starts at base 44 (first idx 300 − margin 256); the outlier
	// needs span 2097213 > 2^21 and spills; the near-outlier needs only
	// 2097013 and grows the dense window to 2097057 — past the spilled
	// index; the outlier then repeats into coverable territory.
	const outlier = 2097000.5
	vals := []float64{300.5, outlier, 2096800.5, outlier, outlier}
	sh.AddAll(vals)
	h.AddAll(vals)
	if sh.Bins() != h.Bins() {
		t.Fatalf("bins: stream %d vs histogram %d", sh.Bins(), h.Bins())
	}
	if got, want := sh.Entropy(), h.Entropy(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("entropy: stream %v vs histogram %v", got, want)
	}
}

// The one-pass Moments accumulator must match the two-pass reference
// formulas to 1e-12 relative — the property the streaming feature
// pipeline relies on.
func TestMomentsMatchBatchFormulas(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(2000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(10e-3, 5e-6) // the PIAT numeric regime
		}
		var m Moments
		m.AddAll(xs)
		meanRef, varRef := Mean(xs), Variance(xs)
		if math.Abs(m.Mean()-meanRef) > 1e-12*(1+math.Abs(meanRef)) {
			return false
		}
		return math.Abs(m.Variance()-varRef) <= 1e-12*(1+math.Abs(varRef))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
