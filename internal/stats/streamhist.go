package stats

import (
	"errors"
	"math"
	"sort"
)

// StreamHist is a reusable fixed-bin-width histogram for the adversary's
// streaming feature pipeline. It computes the same eq. 25 entropy as
// Histogram — identical bin indexing (floor(x/Δh) with the same non-finite
// clamping) — but stores counts in a dense slice centred on the data so
// that steady-state Add/Reset/Entropy allocate nothing, and it sums
// entropy terms in ascending bin order, the deterministic order
// Histogram.Entropy also uses (Go map iteration is not ordered by
// construction).
//
// A StreamHist is not safe for concurrent use; create one per goroutine.
type StreamHist struct {
	width  float64
	counts []int32
	base   int   // absolute bin index of counts[0]
	margin int   // growth slack added on (re)allocation
	filled bool  // base is meaningful
	touch  []int // absolute indices of non-empty dense bins
	// spill holds counts for extreme indices a dense slice cannot
	// reasonably cover (e.g. a NaN clamped to bin 0 while the data sits
	// micro-seconds from zero with a nano-second bin width). It is only
	// allocated if such an outlier ever appears.
	spill map[int]int32
	n     int
}

// maxDenseBins bounds the dense storage (8 MiB of int32 counts); indices
// that would force a larger span go to the spill map instead.
const maxDenseBins = 1 << 21

// NewStreamHist creates a reusable histogram with the given bin width.
func NewStreamHist(width float64) (*StreamHist, error) {
	if !(width > 0) || math.IsInf(width, 0) || math.IsNaN(width) {
		return nil, errors.New("stats: histogram bin width must be positive and finite")
	}
	return &StreamHist{width: width, margin: 256}, nil
}

// Width returns the bin width.
func (h *StreamHist) Width() float64 { return h.width }

// N returns the number of observations since the last Reset.
func (h *StreamHist) N() int { return h.n }

// Bins returns the number of non-empty bins.
func (h *StreamHist) Bins() int { return len(h.touch) + len(h.spill) }

// binIndex mirrors Histogram.binIndex: floor(x/width) with NaN in bin 0
// and ±Inf (or finite overflow) clamped to the extreme int32 bins.
func (h *StreamHist) binIndex(x float64) int {
	if math.IsNaN(x) {
		return 0
	}
	if math.IsInf(x, 1) {
		return math.MaxInt32
	}
	if math.IsInf(x, -1) {
		return math.MinInt32
	}
	idx := math.Floor(x / h.width)
	switch {
	case idx > math.MaxInt32:
		return math.MaxInt32
	case idx < math.MinInt32:
		return math.MinInt32
	}
	return int(idx)
}

// Add places one observation into its bin. Steady state (no range growth)
// performs no allocation.
func (h *StreamHist) Add(x float64) {
	h.n++
	idx := h.binIndex(x)
	if len(h.spill) > 0 {
		// An index that spilled earlier in this window stays in the spill
		// map even if later growth (toward a neighbor within the margin)
		// made it dense-coverable: a bin must never be split between the
		// two stores, or Entropy would double-count it.
		if _, ok := h.spill[idx]; ok {
			h.spill[idx]++
			return
		}
	}
	if !h.filled {
		h.ensure(idx)
	}
	off := idx - h.base
	if off < 0 || off >= len(h.counts) {
		if !h.ensure(idx) {
			if h.spill == nil {
				h.spill = make(map[int]int32)
			}
			h.spill[idx]++
			return
		}
		off = idx - h.base
	}
	if h.counts[off] == 0 {
		h.touch = append(h.touch, idx)
	}
	h.counts[off]++
}

// AddAll places every observation in xs.
func (h *StreamHist) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// ensure grows the dense window to cover idx (with margin), reporting
// whether dense coverage is possible within maxDenseBins.
func (h *StreamHist) ensure(idx int) bool {
	if !h.filled {
		h.filled = true
		h.base = idx - h.margin
		need := 2*h.margin + 1
		if cap(h.counts) >= need {
			h.counts = h.counts[:need]
		} else {
			h.counts = make([]int32, need)
		}
		return true
	}
	lo, hi := h.base, h.base+len(h.counts) // current [lo, hi)
	newLo, newHi := lo, hi
	if idx < lo {
		newLo = idx - h.margin
	}
	if idx >= hi {
		newHi = idx + h.margin + 1
	}
	if newHi-newLo > maxDenseBins {
		return false
	}
	grown := make([]int32, newHi-newLo)
	copy(grown[lo-newLo:], h.counts)
	h.counts, h.base = grown, newLo
	return true
}

// Reset clears the histogram for the next window while keeping the dense
// storage (and its placement) for reuse: it zeroes only the touched bins.
func (h *StreamHist) Reset() {
	for _, idx := range h.touch {
		h.counts[idx-h.base] = 0
	}
	h.touch = h.touch[:0]
	for idx := range h.spill {
		delete(h.spill, idx)
	}
	h.n = 0
}

// Entropy returns the normalized histogram entropy (paper eq. 25).
// Terms are summed in ascending bin order — the same order
// Histogram.Entropy uses — independent of dense-vs-spill placement, so
// the float result is identical across runs even when different reuse
// histories grew the dense window differently (the spill threshold
// depends on previously seen windows; the sum must not).
func (h *StreamHist) Entropy() float64 {
	if h.n == 0 {
		return 0
	}
	// touch is only needed as a set by Reset, so sorting it in place is
	// free of allocation; spilled outliers (rare) merge on a copy.
	sort.Ints(h.touch)
	idxs := h.touch
	if len(h.spill) > 0 {
		idxs = make([]int, 0, len(h.touch)+len(h.spill))
		idxs = append(idxs, h.touch...)
		for idx := range h.spill {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
	}
	n := float64(h.n)
	var sum float64
	for _, idx := range idxs {
		var c int32
		if off := idx - h.base; off >= 0 && off < len(h.counts) && h.counts[off] > 0 {
			c = h.counts[off]
		} else {
			c = h.spill[idx]
		}
		p := float64(c) / n
		sum -= p * math.Log(p)
	}
	return sum
}
