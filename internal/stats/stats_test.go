package stats

import (
	"math"
	"testing"
	"testing/quick"

	"linkpad/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// population variance is 4 => sample variance is 4*8/7
	want := 4.0 * 8 / 7
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty sample should give zero moments")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("singleton variance should be 0")
	}
	if Mean([]float64{3}) != 3 {
		t.Error("singleton mean")
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	r := xrand.New(1)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Normal(10e-3, 5e-6)
	}
	var m Moments
	m.AddAll(xs)
	if !almostEq(m.Mean(), Mean(xs), 1e-15) {
		t.Errorf("Welford mean %v vs two-pass %v", m.Mean(), Mean(xs))
	}
	relerr := math.Abs(m.Variance()-Variance(xs)) / Variance(xs)
	if relerr > 1e-9 {
		t.Errorf("Welford variance %v vs two-pass %v", m.Variance(), Variance(xs))
	}
}

func TestMomentsMinMax(t *testing.T) {
	var m Moments
	m.AddAll([]float64{3, -1, 7, 2})
	if m.Min() != -1 || m.Max() != 7 {
		t.Errorf("min/max = %v/%v", m.Min(), m.Max())
	}
	if m.N() != 4 {
		t.Errorf("N = %d", m.N())
	}
}

func TestPopVsSampleVariance(t *testing.T) {
	var m Moments
	m.AddAll([]float64{1, 2, 3, 4})
	if !almostEq(m.PopVariance()*4/3, m.Variance(), 1e-12) {
		t.Errorf("pop %v sample %v", m.PopVariance(), m.Variance())
	}
}

// Property: variance is non-negative and shift-invariant; scaling by c
// multiplies variance by c^2.
func TestVarianceProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 1)
		}
		v := Variance(xs)
		if v < 0 {
			return false
		}
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i, x := range xs {
			shifted[i] = x + 7.5
			scaled[i] = 3 * x
		}
		if !almostEq(Variance(shifted), v, 1e-9*(1+v)) {
			return false
		}
		if !almostEq(Variance(scaled), 9*v, 1e-9*(1+9*v)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("want error for q out of range")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestAutocorr(t *testing.T) {
	// Alternating series has lag-1 autocorrelation near -1.
	xs := make([]float64, 1000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	if got := Autocorr(xs, 1); got > -0.99 {
		t.Errorf("alternating lag-1 autocorr = %v, want ~ -1", got)
	}
	if got := Autocorr(xs, 2); got < 0.99*float64(len(xs)-2)/float64(len(xs)) {
		t.Errorf("alternating lag-2 autocorr = %v, want ~ 1", got)
	}
	// White noise has near-zero lag-1 autocorrelation.
	r := xrand.New(2)
	ys := make([]float64, 20000)
	for i := range ys {
		ys[i] = r.Norm()
	}
	if got := Autocorr(ys, 1); math.Abs(got) > 0.03 {
		t.Errorf("white-noise lag-1 autocorr = %v, want ~ 0", got)
	}
}

func TestAutocorrDegenerate(t *testing.T) {
	if Autocorr([]float64{1, 1, 1, 1}, 1) != 0 {
		t.Error("constant series should give 0")
	}
	if Autocorr([]float64{1, 2}, 5) != 0 {
		t.Error("too-short series should give 0")
	}
}

func TestKSDistance(t *testing.T) {
	r := xrand.New(3)
	a := make([]float64, 4000)
	b := make([]float64, 4000)
	c := make([]float64, 4000)
	for i := range a {
		a[i] = r.Norm()
		b[i] = r.Norm()
		c[i] = r.Norm() + 2 // clearly shifted
	}
	dSame, err := KSDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dDiff, err := KSDistance(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if dSame > 0.05 {
		t.Errorf("KS distance of identical distributions = %v", dSame)
	}
	if dDiff < 0.5 {
		t.Errorf("KS distance of shifted distributions = %v", dDiff)
	}
	if _, err := KSDistance(nil, a); err == nil {
		t.Error("want error for empty sample")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("summary = %+v", s)
	}
	if !almostEq(s.Variance, 1, 1e-12) || !almostEq(s.StdDev, 1, 1e-12) {
		t.Errorf("summary variance = %v", s.Variance)
	}
}

func BenchmarkWelford(b *testing.B) {
	var m Moments
	for i := 0; i < b.N; i++ {
		m.Add(float64(i))
	}
}

func BenchmarkVariance1000(b *testing.B) {
	xs := make([]float64, 1000)
	r := xrand.New(1)
	for i := range xs {
		xs[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Variance(xs)
	}
}
