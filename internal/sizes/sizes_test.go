package sizes

import (
	"math"
	"testing"
	"testing/quick"

	"linkpad/internal/xrand"
)

func TestNewProfileValidation(t *testing.T) {
	if _, err := NewProfile(nil, nil); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := NewProfile([]int{64}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewProfile([]int{0}, []float64{1}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewProfile([]int{64, 64}, []float64{0.5, 0.5}); err == nil {
		t.Error("non-increasing sizes accepted")
	}
	if _, err := NewProfile([]int{64, 128}, []float64{1, 0}); err == nil {
		t.Error("zero probability accepted")
	}
}

func TestProfileNormalizationAndMean(t *testing.T) {
	p, err := NewProfile([]int{100, 300}, []float64{2, 2}) // un-normalized
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()-200) > 1e-12 {
		t.Errorf("mean = %v, want 200", p.Mean())
	}
	if p.Max() != 300 {
		t.Errorf("max = %d", p.Max())
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	p, err := NewProfile([]int{64, 576, 1500}, []float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[p.Sample(r)]++
	}
	for i, want := range []float64{0.5, 0.3, 0.2} {
		got := float64(counts[[]int{64, 576, 1500}[i]]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("size %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestBuiltinProfiles(t *testing.T) {
	inter, bulk, web := Interactive(), Bulk(), Web()
	if !(inter.Mean() < web.Mean() && web.Mean() < bulk.Mean()) {
		t.Errorf("expected interactive < web < bulk mean sizes: %v %v %v",
			inter.Mean(), web.Mean(), bulk.Mean())
	}
}

func TestPadders(t *testing.T) {
	cp, err := NewConstantPad(1500)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Pad(64) != 1500 || cp.Pad(1500) != 1500 || cp.Pad(2000) != 2000 {
		t.Error("constant pad broken")
	}
	if _, err := NewConstantPad(0); err == nil {
		t.Error("zero target accepted")
	}

	bp, err := NewBucketPad([]int{128, 576, 1500})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ in, want int }{
		{64, 128}, {128, 128}, {129, 576}, {1500, 1500}, {1501, 1501},
	} {
		if got := bp.Pad(tc.in); got != tc.want {
			t.Errorf("bucket Pad(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if _, err := NewBucketPad(nil); err == nil {
		t.Error("empty buckets accepted")
	}
	if _, err := NewBucketPad([]int{576, 128}); err == nil {
		t.Error("decreasing buckets accepted")
	}
	if _, err := NewBucketPad([]int{-1}); err == nil {
		t.Error("negative bucket accepted")
	}

	if (NoPad{}).Pad(77) != 77 {
		t.Error("NoPad changed a size")
	}
	if (NoPad{}).Name() != "none" || cp.Name() != "constant" || bp.Name() != "bucket" {
		t.Error("padder names broken")
	}
}

// Padding never shrinks a packet and padded sizes are monotone in raw
// size for every scheme.
func TestPadderProperties(t *testing.T) {
	cp, _ := NewConstantPad(1500)
	bp, _ := NewBucketPad([]int{128, 576, 1500})
	padders := []Padder{NoPad{}, cp, bp}
	f := func(rawA, rawB uint16) bool {
		a, b := int(rawA)+1, int(rawB)+1
		if a > b {
			a, b = b, a
		}
		for _, pd := range padders {
			if pd.Pad(a) < a || pd.Pad(b) < b {
				return false
			}
			if pd.Pad(a) > pd.Pad(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOverheadExact(t *testing.T) {
	p, err := NewProfile([]int{100, 300}, []float64{0.5, 0.5}) // mean 200
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := NewConstantPad(300)
	if got := Overhead(p, cp); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("constant overhead = %v, want 1.5", got)
	}
	if got := Overhead(p, NoPad{}); got != 1 {
		t.Errorf("NoPad overhead = %v, want 1", got)
	}
	// Bucket overhead sits between the two.
	bp, _ := NewBucketPad([]int{100, 300})
	if got := Overhead(p, bp); got != 1 {
		t.Errorf("exact-bucket overhead = %v, want 1", got)
	}
}

func attackCfg() AttackConfig {
	return AttackConfig{WindowSize: 50, TrainWindows: 100, EvalWindows: 100, Seed: 3}
}

// Unpadded sizes identify the application almost surely; constant-size
// padding reduces the adversary to guessing — the paper's §3.2 remark 3
// made quantitative.
func TestDetectAcrossPadders(t *testing.T) {
	labels := []string{"interactive", "bulk"}
	profiles := []*Profile{Interactive(), Bulk()}

	none, err := Detect(labels, profiles, NoPad{}, attackCfg())
	if err != nil {
		t.Fatal(err)
	}
	if none.DetectionRate < 0.99 {
		t.Errorf("unpadded detection = %v, want ~1", none.DetectionRate)
	}
	if none.Degenerate {
		t.Error("unpadded attack should not be degenerate")
	}

	cp, _ := NewConstantPad(1500)
	constant, err := Detect(labels, profiles, cp, attackCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !constant.Degenerate {
		t.Error("constant padding should leave no feature spread")
	}
	if math.Abs(constant.DetectionRate-0.5) > 1e-9 {
		t.Errorf("constant-pad detection = %v, want exactly 0.5", constant.DetectionRate)
	}

	bp, _ := NewBucketPad([]int{128, 576, 1500})
	bucket, err := Detect(labels, profiles, bp, attackCfg())
	if err != nil {
		t.Fatal(err)
	}
	if bucket.DetectionRate < 0.9 {
		// Buckets preserve the gross mix here; they protect less than
		// expected — which is the point of measuring.
		t.Logf("bucket detection = %v", bucket.DetectionRate)
	}
	if bucket.DetectionRate <= constant.DetectionRate {
		t.Errorf("bucket (%v) should leak more than constant (%v)",
			bucket.DetectionRate, constant.DetectionRate)
	}
}

func TestDetectThreeWay(t *testing.T) {
	labels := []string{"interactive", "web", "bulk"}
	profiles := []*Profile{Interactive(), Web(), Bulk()}
	res, err := Detect(labels, profiles, NoPad{}, attackCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate < 0.95 {
		t.Errorf("3-way unpadded detection = %v", res.DetectionRate)
	}
	if res.Confusion.Total() != 300 {
		t.Errorf("confusion total = %d", res.Confusion.Total())
	}
}

func TestDetectValidation(t *testing.T) {
	labels := []string{"a", "b"}
	profiles := []*Profile{Interactive(), Bulk()}
	if _, err := Detect(labels[:1], profiles[:1], NoPad{}, attackCfg()); err == nil {
		t.Error("one class accepted")
	}
	if _, err := Detect(labels, profiles[:1], NoPad{}, attackCfg()); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Detect(labels, profiles, nil, attackCfg()); err == nil {
		t.Error("nil padder accepted")
	}
	bad := attackCfg()
	bad.WindowSize = 1
	if _, err := Detect(labels, profiles, NoPad{}, bad); err == nil {
		t.Error("window size 1 accepted")
	}
}

func TestDetectDeterministic(t *testing.T) {
	labels := []string{"a", "b"}
	profiles := []*Profile{Interactive(), Bulk()}
	r1, err := Detect(labels, profiles, NoPad{}, attackCfg())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Detect(labels, profiles, NoPad{}, attackCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r1.DetectionRate != r2.DetectionRate {
		t.Error("size attack not deterministic for a fixed seed")
	}
}

func BenchmarkDetectNoPad(b *testing.B) {
	labels := []string{"a", "b"}
	profiles := []*Profile{Interactive(), Bulk()}
	cfg := attackCfg()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(labels, profiles, NoPad{}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
