// Package sizes implements the packet-size dimension of traffic
// camouflage. The main paper assumes all packets have a constant size
// (§3.2 remark 3) and defers variable sizes to the companion work [7];
// this package builds that extension: application packet-size profiles,
// size-padding schemes (none, bucket, constant), the induced byte
// overhead, and the adversary's size-based classification attack that
// constant-size padding is there to defeat.
//
// Determinism contract: profile sampling consumes one variate per
// packet from the caller's *xrand.Rand, and Detect derives each trial's
// randomness from its trial index, so attack results are byte-identical
// at any worker count. The per-trial loop reuses count buffers and
// allocates nothing in steady state.
package sizes

import (
	"errors"
	"fmt"
	"sort"

	"linkpad/internal/bayes"
	"linkpad/internal/stats"
	"linkpad/internal/xrand"
)

// Profile is a discrete packet-size distribution characterizing an
// application's traffic (sizes in bytes).
type Profile struct {
	sizes []int
	probs []float64
	cdf   []float64
	mean  float64
}

// NewProfile creates a profile from parallel size/probability slices.
// Sizes must be positive and strictly increasing; probabilities positive,
// summing to ~1 (they are normalized).
func NewProfile(sizes []int, probs []float64) (*Profile, error) {
	if len(sizes) == 0 || len(sizes) != len(probs) {
		return nil, errors.New("sizes: need matching non-empty sizes and probs")
	}
	var total float64
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("sizes: size %d must be positive", s)
		}
		if i > 0 && sizes[i] <= sizes[i-1] {
			return nil, errors.New("sizes: sizes must be strictly increasing")
		}
		if !(probs[i] > 0) {
			return nil, errors.New("sizes: probabilities must be positive")
		}
		total += probs[i]
	}
	p := &Profile{
		sizes: append([]int(nil), sizes...),
		probs: make([]float64, len(probs)),
		cdf:   make([]float64, len(probs)),
	}
	acc := 0.0
	for i := range probs {
		p.probs[i] = probs[i] / total
		acc += p.probs[i]
		p.cdf[i] = acc
		p.mean += p.probs[i] * float64(sizes[i])
	}
	p.cdf[len(p.cdf)-1] = 1 // guard against rounding
	return p, nil
}

// Sample draws one packet size.
func (p *Profile) Sample(r *xrand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(p.cdf, u)
	if i >= len(p.sizes) {
		i = len(p.sizes) - 1
	}
	return p.sizes[i]
}

// Mean returns the expected packet size in bytes.
func (p *Profile) Mean() float64 { return p.mean }

// Max returns the largest packet size in the profile.
func (p *Profile) Max() int { return p.sizes[len(p.sizes)-1] }

// Interactive returns an SSH/telnet-like profile: dominated by tiny
// keystroke/echo packets (the paper's reference [18] attack surface).
func Interactive() *Profile {
	p, err := NewProfile(
		[]int{64, 128, 256, 576, 1500},
		[]float64{0.55, 0.25, 0.10, 0.07, 0.03})
	if err != nil {
		panic(err) // static data
	}
	return p
}

// Bulk returns an FTP-like profile: mostly full MTU segments plus ACKs.
func Bulk() *Profile {
	p, err := NewProfile(
		[]int{64, 576, 1500},
		[]float64{0.30, 0.05, 0.65})
	if err != nil {
		panic(err)
	}
	return p
}

// Web returns a mixed HTTP-like profile.
func Web() *Profile {
	p, err := NewProfile(
		[]int{64, 128, 576, 1024, 1500},
		[]float64{0.30, 0.15, 0.20, 0.10, 0.25})
	if err != nil {
		panic(err)
	}
	return p
}

// Padder maps a raw packet size to the transmitted (padded) size.
// Implementations never shrink a packet.
type Padder interface {
	// Pad returns the wire size for a packet of the given raw size.
	Pad(size int) int
	// Name identifies the scheme in reports.
	Name() string
}

// NoPad transmits raw sizes: the insecure baseline.
type NoPad struct{}

// Pad returns size unchanged.
func (NoPad) Pad(size int) int { return size }

// Name returns "none".
func (NoPad) Name() string { return "none" }

// ConstantPad pads every packet to a fixed target — the main paper's
// constant-size assumption made into a mechanism. Packets larger than the
// target pass through unchanged (choose the target at or above the MTU).
type ConstantPad struct {
	Target int
}

// NewConstantPad creates a constant padder with a positive target.
func NewConstantPad(target int) (ConstantPad, error) {
	if target <= 0 {
		return ConstantPad{}, errors.New("sizes: constant pad target must be positive")
	}
	return ConstantPad{Target: target}, nil
}

// Pad returns max(size, Target).
func (c ConstantPad) Pad(size int) int {
	if size > c.Target {
		return size
	}
	return c.Target
}

// Name returns "constant".
func (c ConstantPad) Name() string { return "constant" }

// BucketPad rounds sizes up to the next bucket boundary: the classic
// bandwidth/privacy compromise.
type BucketPad struct {
	buckets []int
}

// NewBucketPad creates a bucket padder; buckets must be positive and
// strictly increasing.
func NewBucketPad(buckets []int) (*BucketPad, error) {
	if len(buckets) == 0 {
		return nil, errors.New("sizes: need at least one bucket")
	}
	for i, b := range buckets {
		if b <= 0 {
			return nil, errors.New("sizes: buckets must be positive")
		}
		if i > 0 && buckets[i] <= buckets[i-1] {
			return nil, errors.New("sizes: buckets must be strictly increasing")
		}
	}
	return &BucketPad{buckets: append([]int(nil), buckets...)}, nil
}

// Pad rounds size up to the smallest bucket that fits; oversize packets
// pass through unchanged.
func (b *BucketPad) Pad(size int) int {
	i := sort.SearchInts(b.buckets, size)
	if i >= len(b.buckets) {
		return size
	}
	return b.buckets[i]
}

// Name returns "bucket".
func (b *BucketPad) Name() string { return "bucket" }

// Overhead returns the exact byte inflation E[pad(S)] / E[S] of applying
// the padder to the profile.
func Overhead(p *Profile, pd Padder) float64 {
	var padded float64
	for i, s := range p.sizes {
		padded += p.probs[i] * float64(pd.Pad(s))
	}
	return padded / p.mean
}

// AttackConfig parameterizes the size-based classification attack.
type AttackConfig struct {
	// WindowSize is the number of packets per classified sample.
	WindowSize int
	// TrainWindows and EvalWindows are per-class window counts.
	TrainWindows, EvalWindows int
	// Seed drives the experiment.
	Seed uint64
}

// Result reports one size attack.
type Result struct {
	// DetectionRate is the fraction of windows whose application profile
	// was identified correctly.
	DetectionRate float64
	// Confusion is the full matrix.
	Confusion *bayes.Confusion
	// Degenerate reports that the padded size distributions left no
	// usable feature spread (perfect size camouflage) and the nearest-mean
	// fallback was used.
	Degenerate bool
}

// meanSizeFeature reduces a window of wire sizes to its mean.
func meanSizeFeature(window []int) float64 {
	var sum int
	for _, s := range window {
		sum += s
	}
	return float64(sum) / float64(len(window))
}

// Detect runs the paper-style off-line training + run-time classification
// against the padded size stream of each application profile, using the
// window mean wire size as the feature statistic.
func Detect(labels []string, profiles []*Profile, pd Padder, cfg AttackConfig) (*Result, error) {
	if len(labels) != len(profiles) || len(labels) < 2 {
		return nil, errors.New("sizes: need at least two labeled profiles")
	}
	if cfg.WindowSize < 2 || cfg.TrainWindows < 2 || cfg.EvalWindows < 1 {
		return nil, errors.New("sizes: invalid attack configuration")
	}
	if pd == nil {
		return nil, errors.New("sizes: nil padder")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	collect := func(p *Profile, rng *xrand.Rand, windows int) []float64 {
		feats := make([]float64, windows)
		buf := make([]int, cfg.WindowSize)
		for w := range feats {
			for i := range buf {
				buf[i] = pd.Pad(p.Sample(rng))
			}
			feats[w] = meanSizeFeature(buf)
		}
		return feats
	}

	train := make([][]float64, len(profiles))
	for i, p := range profiles {
		train[i] = collect(p, xrand.New(seed^uint64(i+1)*0x9e3779b97f4a7c15), cfg.TrainWindows)
	}

	cls, err := bayes.TrainKDE(labels, train, nil)
	degenerate := err != nil
	var means []float64
	if degenerate {
		// Perfect (or per-class constant) camouflage: KDE has nothing to
		// fit. Fall back to nearest class mean; identical means resolve
		// to the first class, i.e. guessing for balanced evaluation.
		means = make([]float64, len(train))
		for i, f := range train {
			means[i] = stats.Mean(f)
		}
	}
	classify := func(s float64) int {
		if !degenerate {
			return cls.Classify(s)
		}
		best, bestDist := 0, -1.0
		for i, m := range means {
			d := s - m
			if d < 0 {
				d = -d
			}
			if bestDist < 0 || d < bestDist {
				best, bestDist = i, d
			}
		}
		return best
	}

	cm := bayes.NewConfusion(labels)
	for i, p := range profiles {
		rng := xrand.New(seed ^ uint64(i+101)*0xbf58476d1ce4e5b9)
		for _, f := range collect(p, rng, cfg.EvalWindows) {
			cm.Add(i, classify(f))
		}
	}
	return &Result{
		DetectionRate: cm.DetectionRate(),
		Confusion:     cm,
		Degenerate:    degenerate,
	}, nil
}
