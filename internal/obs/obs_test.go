package obs

import (
	"sync"
	"testing"
)

// A nil shard — the disabled probe — must absorb every method without
// panicking or allocating.
func TestNilShardSafe(t *testing.T) {
	var s *Shard
	s.Add(GatewayPayload, 7)
	s.Inc(NetemDrop)
	s.Flush()
	if got := Snapshot()[GatewayPayload]; got != 0 {
		t.Fatalf("nil shard leaked %d counts into the collector", got)
	}
}

func TestDisabledProbeZeroAlloc(t *testing.T) {
	var s *Shard // what NewShard returns while disabled
	if avg := testing.AllocsPerRun(100, func() {
		s.Add(GatewayPayload, 1)
		s.Inc(GatewayDummy)
		s.Flush()
	}); avg != 0 {
		t.Fatalf("disabled probe allocates: %v allocs/op", avg)
	}
}

func TestEnabledShardZeroAllocAdd(t *testing.T) {
	s := &Shard{}
	if avg := testing.AllocsPerRun(100, func() {
		s.Add(GatewayPayload, 1)
		s.Inc(GatewayDummy)
	}); avg != 0 {
		t.Fatalf("enabled shard Add allocates: %v allocs/op", avg)
	}
}

func TestNewShardNilWhenDisabled(t *testing.T) {
	SetEnabled(false)
	if NewShard() != nil {
		t.Fatal("NewShard must return nil while disabled")
	}
	SetEnabled(true)
	defer func() { SetEnabled(false); Reset() }()
	if NewShard() == nil {
		t.Fatal("NewShard must return a live shard while enabled")
	}
}

func TestFlushDrainsAndZeroes(t *testing.T) {
	Reset()
	s := &Shard{}
	s.Add(NetemDrop, 3)
	s.Inc(NetemDrop)
	s.Flush()
	if got := Snapshot()[NetemDrop]; got != 4 {
		t.Fatalf("flush published %d, want 4", got)
	}
	// A second flush of the drained shard must publish nothing more.
	s.Flush()
	if got := Snapshot()[NetemDrop]; got != 4 {
		t.Fatalf("double flush published %d, want 4", got)
	}
	Reset()
	if got := Snapshot()[NetemDrop]; got != 0 {
		t.Fatalf("reset left %d", got)
	}
}

func TestCountGatedOnEnabled(t *testing.T) {
	Reset()
	SetEnabled(false)
	Count(AdvSlab, 5)
	if got := Snapshot()[AdvSlab]; got != 0 {
		t.Fatalf("disabled Count published %d", got)
	}
	SetEnabled(true)
	defer func() { SetEnabled(false); Reset() }()
	Count(AdvSlab, 5)
	if got := Snapshot()[AdvSlab]; got != 5 {
		t.Fatalf("enabled Count published %d, want 5", got)
	}
}

// Concurrent drains from many shard owners plus live snapshot readers:
// the pattern every parallel run exercises. Run under -race in CI.
func TestConcurrentFlushAndSnapshot(t *testing.T) {
	Reset()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &Shard{}
			for i := 0; i < per; i++ {
				s.Inc(MixPacket)
				if i%100 == 0 {
					s.Flush()
				}
			}
			s.Flush()
		}()
	}
	done := make(chan struct{})
	go func() { // live reader racing the drains
		for {
			select {
			case <-done:
				return
			default:
				Snapshot()
				ReadProgress()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := Snapshot()[MixPacket]; got != workers*per {
		t.Fatalf("lost counts under concurrency: got %d, want %d", got, workers*per)
	}
	Reset()
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		name := c.Name()
		if name == "" || name == "unknown" {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if Counter(-1).Name() != "unknown" || NumCounters.Name() != "unknown" {
		t.Fatal("out-of-range counters must name as unknown")
	}
	m := SnapshotMap()
	if len(m) != int(NumCounters) {
		t.Fatalf("SnapshotMap has %d keys, want %d", len(m), NumCounters)
	}
}

func TestProgressGauges(t *testing.T) {
	Reset()
	AddExperiments(3)
	ExperimentDone()
	AddCells(10)
	SetEnabled(true)
	CellDone()
	CellDone()
	SetEnabled(false)
	p := ReadProgress()
	if p.ExpsTotal != 3 || p.ExpsDone != 1 || p.CellsTotal != 10 || p.CellsDone != 2 {
		t.Fatalf("progress = %+v", p)
	}
	if got := Snapshot()[ExperimentCell]; got != 2 {
		t.Fatalf("cell counter = %d, want 2", got)
	}
	Reset()
}
