// Package obs is the simulator's flight recorder: deterministic
// per-layer event counters that every simulation layer reports into,
// plus coarse progress gauges the CLI's live reporters read while a run
// is in flight.
//
// The substrate is two-level. The hot path — the per-packet loops of
// the gateway, the network elements and the population engine — writes
// into a Shard: a plain (non-atomic) counter block owned by exactly one
// goroutine, typically created per observation chain or per engine, so
// hot-path accounting is a predicted branch and an integer add, never
// an atomic operation. At coarse boundaries (a PIAT slab, a mix round,
// a finished flow) the owner drains its shard into the global Collector
// with Flush, which is the only place atomics are touched; live readers
// (the progress line, the expvar endpoint, the run-report writer) read
// only the Collector and therefore never race with a working shard.
//
// Determinism contract — the property that makes telemetry safe to
// leave wired into every layer:
//
//   - counters never draw randomness and never feed back into the
//     simulation, so enabling or disabling collection cannot change any
//     emitted stream or table (the golden tables are byte-identical
//     either way, enforced by tests);
//   - a disabled probe is a nil *Shard, whose methods are no-ops, so
//     the disabled hot path stays allocation-free (AllocsPerRun = 0 on
//     the slab paths, enforced by tests);
//   - every counter is a sum of per-chain deterministic event counts,
//     and shards are drained at chain-local boundaries, so enabled
//     totals are invariant under the worker count (wall-clock time
//     lives only in the progress gauges, never in the counters).
package obs

import "sync/atomic"

// Counter identifies one deterministic event counter.
type Counter int

// The counter inventory. Every simulation layer reports its per-event
// activity under one of these; names (see Name) key the run report's
// JSON counter map.
const (
	// GatewayPayload counts padded packets carrying payload (timer
	// gateways).
	GatewayPayload Counter = iota
	// GatewayDummy counts dummy padded packets (timer gateways).
	GatewayDummy
	// GatewayStall counts timer fires whose interrupt was delayed by at
	// least one blocking payload arrival (the paper's compound jitter
	// term actually engaging).
	GatewayStall
	// GatewayDrop counts payload arrivals rejected by a full gateway
	// queue.
	GatewayDrop
	// MixFlush counts flushed batch-of-K mix bursts.
	MixFlush
	// MixPacket counts packets emitted by mix stages.
	MixPacket
	// TrafficPayload counts payload packets arriving at a padding stage
	// (gateway or mix ingress; cover and chaff merged upstream of the
	// stage are included — the stage cannot tell them apart, which is
	// the point of cover).
	TrafficPayload
	// TrafficCover counts population cover (dummy) messages entering
	// mix rounds.
	TrafficCover
	// NetemDrop counts packets lost in flight or missed by a capture
	// (impairment loss, tap loss, impaired ingress-tap loss).
	NetemDrop
	// NetemDup counts packets duplicated by an impairment.
	NetemDup
	// NetemReorder counts packets held back for reordered release.
	NetemReorder
	// NetemOutageHit counts packets that hit a dark (failed) hop.
	NetemOutageHit
	// NetemOutageNanos accumulates the extra delay outage-hit packets
	// suffered, in integer nanoseconds (deterministic: a pure function
	// of the deterministic departure times).
	NetemOutageNanos
	// PopulationRound counts emitted threshold-mix rounds.
	PopulationRound
	// PopulationMessage counts real (payload) messages entering rounds.
	PopulationMessage
	// PopulationActiveUser counts users contributing at least one event
	// to a generation slab (under churn this tracks the online
	// sub-population).
	PopulationActiveUser
	// AdvWindow counts feature windows the adversary extracted.
	AdvWindow
	// AdvSlab counts PIAT slabs the adversary pulled through the
	// batched extraction path.
	AdvSlab
	// ExperimentCell counts finished sweep cells of cell experiments.
	ExperimentCell

	// NumCounters is the size of the counter space.
	NumCounters
)

// counterNames keys the JSON counter map; index-parallel to the enum.
var counterNames = [NumCounters]string{
	"gateway_payload",
	"gateway_dummy",
	"gateway_stall",
	"gateway_drop",
	"mix_flush",
	"mix_packet",
	"traffic_payload",
	"traffic_cover",
	"netem_drop",
	"netem_dup",
	"netem_reorder",
	"netem_outage_hit",
	"netem_outage_nanos",
	"population_round",
	"population_message",
	"population_active_user",
	"adv_window",
	"adv_slab",
	"experiment_cell",
}

// Name returns the counter's stable report key.
func (c Counter) Name() string {
	if c < 0 || c >= NumCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Shard is a single-owner counter block: the hot-path half of the
// substrate. All methods are nil-safe no-ops, so a disabled probe costs
// one predicted branch per event and allocates nothing. A Shard must
// only ever be written by one goroutine at a time (the chain or engine
// that owns it); Flush publishes and zeroes it.
type Shard struct {
	c [NumCounters]uint64
}

// Add accumulates n events of counter c.
func (s *Shard) Add(c Counter, n uint64) {
	if s != nil {
		s.c[c] += n
	}
}

// Inc accumulates one event of counter c.
func (s *Shard) Inc(c Counter) {
	if s != nil {
		s.c[c]++
	}
}

// Flush drains the shard into the global collector and zeroes it. Safe
// to call repeatedly (a drained shard flushes nothing) and on nil.
func (s *Shard) Flush() {
	if s == nil {
		return
	}
	for i := range s.c {
		if n := s.c[i]; n != 0 {
			Default.c[i].Add(n)
			s.c[i] = 0
		}
	}
}

// Flusher is implemented by stream elements that carry a chain's shard
// (netem.Differ); batched consumers assert it and drain after each
// slab, so chain counters become visible at slab granularity.
type Flusher interface {
	FlushObs()
}

// Collector aggregates flushed shards into atomic totals, plus the
// non-deterministic progress gauges. The zero value is ready for use
// and disabled.
type Collector struct {
	enabled atomic.Bool
	c       [NumCounters]atomic.Uint64

	// Progress gauges: wall-clock-coupled run state for the live
	// reporters. Deliberately separate from the counters so the
	// deterministic snapshot never contains timing.
	expsTotal  atomic.Int64
	expsDone   atomic.Int64
	cellsTotal atomic.Int64
	cellsDone  atomic.Int64
}

// Default is the process-global collector every layer reports into.
var Default = &Collector{}

// SetEnabled switches collection on or off (default off). Layers built
// while disabled get nil shards and count nothing; flipping the switch
// does not retroactively instrument already-built chains.
func SetEnabled(on bool) { Default.enabled.Store(on) }

// Enabled reports whether collection is on.
func Enabled() bool { return Default.enabled.Load() }

// NewShard returns a fresh shard for one chain or engine, or nil when
// collection is disabled — the nil shard is the zero-cost disabled
// probe.
func NewShard() *Shard {
	if !Enabled() {
		return nil
	}
	return &Shard{}
}

// Count adds n events of counter c directly to the global totals —
// for coarse-grained events (a finished window, a pulled slab, a swept
// cell) that have no natural shard owner. A no-op while disabled.
func Count(c Counter, n uint64) {
	if Enabled() {
		Default.c[c].Add(n)
	}
}

// Snapshot copies the current counter totals. The snapshot is a pure
// function of the simulated work that has been flushed, never of
// wall-clock time or worker count.
func Snapshot() [NumCounters]uint64 {
	var out [NumCounters]uint64
	for i := range out {
		out[i] = Default.c[i].Load()
	}
	return out
}

// SnapshotMap returns the counter totals keyed by report name.
func SnapshotMap() map[string]uint64 {
	s := Snapshot()
	out := make(map[string]uint64, NumCounters)
	for i, n := range s {
		out[Counter(i).Name()] = n
	}
	return out
}

// Reset zeroes the counters and progress gauges (tests and the CLI's
// per-run setup).
func Reset() {
	for i := range Default.c {
		Default.c[i].Store(0)
	}
	Default.expsTotal.Store(0)
	Default.expsDone.Store(0)
	Default.cellsTotal.Store(0)
	Default.cellsDone.Store(0)
}

// Packets returns the total padded packets emitted across all padding
// stages in a snapshot — the throughput numerator of the run report.
func Packets(s [NumCounters]uint64) uint64 {
	return s[GatewayPayload] + s[GatewayDummy] + s[MixPacket]
}

// Progress is one reading of the live gauges.
type Progress struct {
	ExpsTotal, ExpsDone   int64
	CellsTotal, CellsDone int64
}

// ReadProgress samples the progress gauges.
func ReadProgress() Progress {
	return Progress{
		ExpsTotal:  Default.expsTotal.Load(),
		ExpsDone:   Default.expsDone.Load(),
		CellsTotal: Default.cellsTotal.Load(),
		CellsDone:  Default.cellsDone.Load(),
	}
}

// AddExperiments grows the planned-experiment gauge.
func AddExperiments(n int) { Default.expsTotal.Add(int64(n)) }

// ExperimentDone advances the finished-experiment gauge.
func ExperimentDone() { Default.expsDone.Add(1) }

// AddCells grows the planned-cell gauge (a cell experiment announcing
// its sweep size; resumed runs announce only the cells left to run).
func AddCells(n int) { Default.cellsTotal.Add(int64(n)) }

// CellDone advances the finished-cell gauge and the deterministic cell
// counter.
func CellDone() {
	Default.cellsDone.Add(1)
	Count(ExperimentCell, 1)
}
