// Package trace reads and writes PIAT trace files: the interchange format
// between the padded-traffic generator (cmd/padtrace) and the stand-alone
// adversary tool (cmd/advclassify). A trace is a text file with '#'
// metadata lines ("# key: value") followed by one inter-arrival time in
// seconds per line.
//
// The format round-trips exactly: values are written at full float64
// precision (%.17g) and metadata keys are emitted in sorted order, so
// writing is deterministic and Read(Write(x)) == x. Readers are
// tolerant — blank lines, bare '#' comments and CRLF line endings are
// accepted — while writers are strict: metadata containing colons in
// keys or newlines anywhere is rejected rather than emitted unparseably
// (fuzz-tested, including the reader's seed corpus in testdata/fuzz).
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Write emits a trace: metadata (sorted by key for determinism) followed
// by one PIAT per line at full float64 precision.
func Write(w io.Writer, meta map[string]string, piats []float64) error {
	bw := bufio.NewWriter(w)
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.ContainsAny(k, ":\n") || strings.Contains(meta[k], "\n") {
			return fmt.Errorf("trace: invalid metadata %q", k)
		}
		if _, err := fmt.Fprintf(bw, "# %s: %s\n", k, meta[k]); err != nil {
			return err
		}
	}
	for _, x := range piats {
		if _, err := fmt.Fprintf(bw, "%.17g\n", x); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write. Unknown '#' lines are tolerated
// (they become metadata with an empty value when they lack a colon).
func Read(r io.Reader) (map[string]string, []float64, error) {
	meta := make(map[string]string)
	var piats []float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if k, v, ok := strings.Cut(body, ":"); ok {
				meta[strings.TrimSpace(k)] = strings.TrimSpace(v)
			} else if body != "" {
				meta[body] = ""
			}
			continue
		}
		x, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		piats = append(piats, x)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(piats) == 0 {
		return nil, nil, errors.New("trace: no PIAT samples found")
	}
	return meta, piats, nil
}

// WriteFile writes a trace to path, creating or truncating it.
func WriteFile(path string, meta map[string]string, piats []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, meta, piats); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from path.
func ReadFile(path string) (map[string]string, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Read(f)
}
