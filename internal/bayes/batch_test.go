package bayes

import (
	"math"
	"testing"

	"linkpad/internal/dist"
	"linkpad/internal/xrand"
)

// trainedKDEClassifier builds a two-class grid-KDE classifier on
// well-separated feature clouds.
func trainedKDEClassifier(t *testing.T) (*Classifier, []float64) {
	t.Helper()
	r := xrand.New(31)
	feat := make([][]float64, 2)
	for i := range feat {
		feat[i] = make([]float64, 200)
		for j := range feat[i] {
			feat[i][j] = r.Normal(float64(i), 0.4)
		}
	}
	c, err := TrainKDE([]string{"a", "b"}, feat, nil)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal(0.5, 1.5)
	}
	return c, xs
}

func TestClassifyBatchMatchesScalar(t *testing.T) {
	c, xs := trainedKDEClassifier(t)
	preds := c.ClassifyBatch(xs, nil)
	for i, x := range xs {
		if want := c.Classify(x); preds[i] != want {
			t.Fatalf("sample %d (%v): batch %d vs scalar %d", i, x, preds[i], want)
		}
	}
	// Reusable output buffer and empty input.
	preds2 := c.ClassifyBatch(xs[:10], preds)
	if len(preds2) != 10 {
		t.Fatalf("reused buffer length %d", len(preds2))
	}
	if got := c.ClassifyBatch(nil, nil); len(got) != 0 {
		t.Fatal("empty batch should be empty")
	}
}

// Ties must break toward the lowest class index in both paths.
func TestClassifyBatchTieBreak(t *testing.T) {
	n := dist.Normal{Mu: 0, Sigma: 1}
	c, err := New(
		Class{Label: "first", Prior: 1, Density: n},
		Class{Label: "second", Prior: 1, Density: n},
	)
	if err != nil {
		t.Fatal(err)
	}
	preds := c.ClassifyBatch([]float64{-1, 0, 2}, nil)
	for i, p := range preds {
		if p != 0 {
			t.Errorf("tie at sample %d broke to class %d, want 0", i, p)
		}
	}
}

func TestPosteriorsBatchMatchesScalar(t *testing.T) {
	c, xs := trainedKDEClassifier(t)
	rows := c.PosteriorsBatch(xs)
	for j, x := range xs {
		want := c.Posteriors(x)
		for i := range want {
			if math.Abs(rows[j][i]-want[i]) > 1e-14 {
				t.Fatalf("sample %d class %d: batch %v vs scalar %v", j, i, rows[j][i], want[i])
			}
		}
	}
	// Out-of-support values fall back to the priors.
	far := c.PosteriorsBatch([]float64{1e9})
	if math.Abs(far[0][0]-0.5) > 1e-12 || math.Abs(far[0][1]-0.5) > 1e-12 {
		t.Errorf("far-outside posteriors = %v, want priors", far[0])
	}
}

func TestLogPosteriors(t *testing.T) {
	c := twoGaussians(0, 1, 0, 2, 1, 1)
	for _, x := range []float64{-3, 0, 1.5, 4} {
		lp := c.LogPosteriors(x)
		p := c.Posteriors(x)
		for i := range p {
			if math.Abs(math.Exp(lp[i])-p[i]) > 1e-12 {
				t.Errorf("x=%v class %d: exp(logpost) %v vs post %v", x, i, math.Exp(lp[i]), p[i])
			}
		}
	}
	// Far outside a KDE's support every log density is -Inf: log priors.
	ck, _ := trainedKDEClassifier(t)
	lp := ck.LogPosteriors(1e9)
	for i, v := range lp {
		if math.Abs(v-math.Log(0.5)) > 1e-12 {
			t.Errorf("class %d far-outside log posterior = %v, want log(1/2)", i, v)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	if got := logSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Errorf("all -Inf = %v", got)
	}
	// log(e^0 + e^0) = log 2.
	if got := logSumExp([]float64{0, 0}); math.Abs(got-math.Log(2)) > 1e-15 {
		t.Errorf("logSumExp(0,0) = %v", got)
	}
	// Huge negative magnitudes don't underflow the result.
	if got := logSumExp([]float64{-1000, -1000}); math.Abs(got-(-1000+math.Log(2))) > 1e-12 {
		t.Errorf("logSumExp(-1000,-1000) = %v", got)
	}
}

// Grid-backed training must agree with exact-KDE training on essentially
// every classification: the decision boundaries shift by at most the
// ~1e-4 relative grid error.
func TestTrainKDEGridMatchesExact(t *testing.T) {
	r := xrand.New(41)
	feat := make([][]float64, 2)
	for i := range feat {
		feat[i] = make([]float64, 150)
		for j := range feat[i] {
			feat[i][j] = r.Normal(10e-3+float64(i)*1e-5, 4e-6)
		}
	}
	grid, err := TrainKDE([]string{"l", "h"}, feat, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := TrainKDEExact([]string{"l", "h"}, feat, nil)
	if err != nil {
		t.Fatal(err)
	}
	var disagreements int
	const samples = 2000
	for i := 0; i < samples; i++ {
		x := r.Normal(10.5e-3, 8e-6)
		if grid.Classify(x) != exact.Classify(x) {
			disagreements++
		}
	}
	// Only values within ~1e-4 of the decision threshold can flip.
	if disagreements > samples/100 {
		t.Errorf("%d/%d grid-vs-exact classification disagreements", disagreements, samples)
	}
}

// LogPosteriorsInto must agree with LogPosteriors and reuse its buffer
// without allocating.
func TestLogPosteriorsInto(t *testing.T) {
	cls, _ := trainedKDEClassifier(t)
	buf := make([]float64, 2)
	for _, x := range []float64{-3, -1, 0, 0.5, 2, 10} {
		want := cls.LogPosteriors(x)
		got := cls.LogPosteriorsInto(x, buf)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("x=%v class %d: %v != %v", x, i, got[i], want[i])
			}
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		buf = cls.LogPosteriorsInto(1.25, buf)
	})
	if avg > 0 {
		t.Errorf("LogPosteriorsInto allocates %.2f objects with a sized buffer, want 0", avg)
	}
}
