// Package bayes implements the adversary's decision strategy (paper §3.3):
// Bayes classification of a 1-D feature statistic over m payload-rate
// classes, with class-conditional densities estimated during off-line
// training (Gaussian KDE or parametric Gaussian fit) and a-priori class
// probabilities. It also evaluates the Bayes error/detection-rate
// integrals (paper eqs. 5-7) numerically.
//
// Determinism contract: training and classification are pure functions
// of their inputs (ties in the arg-max break toward the lower class
// index; entropy terms sum in class order), so classifiers trained from
// the same corpus produce byte-identical decisions everywhere.
//
// Allocation discipline: the batch entry points (ClassifyBatch,
// PosteriorsBatch, LogPosteriorsInto) score whole evaluation sets
// against precomputed per-class density grids with log-sum-exp
// normalization, writing into caller-owned rows — the evaluation hot
// loop allocates nothing.
package bayes

import (
	"errors"
	"fmt"
	"math"

	"linkpad/internal/dist"
	"linkpad/internal/kde"
	"linkpad/internal/stats"
)

// Density is a one-dimensional probability density.
type Density interface {
	PDF(x float64) float64
}

// Class is one hypothesis: a payload traffic rate with its prior
// probability and estimated feature density.
type Class struct {
	// Label names the class, e.g. "10pps".
	Label string
	// Prior is the a-priori probability P(ω_i).
	Prior float64
	// Density is the class-conditional feature density f(s|ω_i).
	Density Density
}

// Classifier applies the Bayes decision rule (paper eq. 2): pick the class
// maximizing f(s|ω_i) * P(ω_i).
type Classifier struct {
	classes []Class
}

// New builds a classifier from at least two classes. Priors must be
// positive; they are normalized to sum to one.
func New(classes ...Class) (*Classifier, error) {
	if len(classes) < 2 {
		return nil, errors.New("bayes: need at least two classes")
	}
	var total float64
	for i, c := range classes {
		if c.Density == nil {
			return nil, fmt.Errorf("bayes: class %d (%q) has nil density", i, c.Label)
		}
		if !(c.Prior > 0) {
			return nil, fmt.Errorf("bayes: class %d (%q) has non-positive prior", i, c.Label)
		}
		total += c.Prior
	}
	cs := make([]Class, len(classes))
	copy(cs, classes)
	for i := range cs {
		cs[i].Prior /= total
	}
	return &Classifier{classes: cs}, nil
}

// NumClasses returns the number of hypotheses.
func (c *Classifier) NumClasses() int { return len(c.classes) }

// Label returns the label of class i.
func (c *Classifier) Label(i int) string { return c.classes[i].Label }

// Prior returns the normalized prior of class i.
func (c *Classifier) Prior(i int) float64 { return c.classes[i].Prior }

// Classify returns the index of the class maximizing P(ω_i) f(s|ω_i).
// Ties break toward the lowest index, matching the paper's ">=" in eq. 1.
func (c *Classifier) Classify(s float64) int {
	best, bestScore := 0, math.Inf(-1)
	for i, cl := range c.classes {
		score := cl.Prior * cl.Density.PDF(s)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Posteriors returns P(ω_i | s) for every class. If the feature value has
// zero density under every class (it fell outside all training supports),
// the priors are returned: the observation carries no information.
func (c *Classifier) Posteriors(s float64) []float64 {
	post := make([]float64, len(c.classes))
	var total float64
	for i, cl := range c.classes {
		post[i] = cl.Prior * cl.Density.PDF(s)
		total += post[i]
	}
	if total <= 0 {
		for i, cl := range c.classes {
			post[i] = cl.Prior
		}
		return post
	}
	for i := range post {
		post[i] /= total
	}
	return post
}

// TwoClassThreshold solves f(s|ω_0)P(ω_0) = f(s|ω_1)P(ω_1) for the decision
// threshold d (paper eq. 3), searching inside [lo, hi]. The score
// difference must change sign on the interval (the paper's unique-solution
// assumption, Fig. 2).
func (c *Classifier) TwoClassThreshold(lo, hi float64) (float64, error) {
	if len(c.classes) != 2 {
		return 0, errors.New("bayes: TwoClassThreshold requires exactly two classes")
	}
	diff := func(s float64) float64 {
		return c.classes[0].Prior*c.classes[0].Density.PDF(s) -
			c.classes[1].Prior*c.classes[1].Density.PDF(s)
	}
	return dist.FindRoot(diff, lo, hi, (hi-lo)*1e-12)
}

// DetectionRate numerically evaluates the Bayes detection rate
// (paper eq. 7 generalized to m classes):
//
//	v = ∫ max_i P(ω_i) f(s|ω_i) ds
//
// over [lo, hi] with n integration points. The interval must cover the
// numeric support of all class densities for the result to be meaningful.
func (c *Classifier) DetectionRate(lo, hi float64, n int) (float64, error) {
	f := func(s float64) float64 {
		best := math.Inf(-1)
		for _, cl := range c.classes {
			if v := cl.Prior * cl.Density.PDF(s); v > best {
				best = v
			}
		}
		return best
	}
	return dist.Integrate(f, lo, hi, n)
}

// ErrorRate is 1 - DetectionRate (paper eq. 5/6).
func (c *Classifier) ErrorRate(lo, hi float64, n int) (float64, error) {
	v, err := c.DetectionRate(lo, hi, n)
	if err != nil {
		return 0, err
	}
	return 1 - v, nil
}

// TrainKDE performs the paper's off-line training: one Gaussian KDE per
// class fitted to that class's feature samples, with the given priors
// (nil means equal priors). labels[i], features[i] and priors[i] describe
// class i.
//
// The class densities are precomputed log-density grids (kde.Grid) so
// run-time classification costs O(1) per density query instead of a
// kernel sum; the exact KDE stays reachable via Grid.Exact, and
// TrainKDEExact keeps the kernel-sum densities for reference runs.
func TrainKDE(labels []string, features [][]float64, priors []float64) (*Classifier, error) {
	return trainKDE(labels, features, priors, false)
}

// TrainKDEExact is TrainKDE with the exact kernel-sum densities: the
// reference path the grid is validated against.
func TrainKDEExact(labels []string, features [][]float64, priors []float64) (*Classifier, error) {
	return trainKDE(labels, features, priors, true)
}

func trainKDE(labels []string, features [][]float64, priors []float64, exact bool) (*Classifier, error) {
	if len(labels) != len(features) {
		return nil, errors.New("bayes: labels/features length mismatch")
	}
	if priors != nil && len(priors) != len(labels) {
		return nil, errors.New("bayes: labels/priors length mismatch")
	}
	classes := make([]Class, len(labels))
	for i := range labels {
		k, err := kde.New(features[i])
		if err != nil {
			return nil, fmt.Errorf("bayes: class %q: %w", labels[i], err)
		}
		p := 1.0 / float64(len(labels))
		if priors != nil {
			p = priors[i]
		}
		var d Density = k
		if !exact {
			d = k.Grid()
		}
		classes[i] = Class{Label: labels[i], Prior: p, Density: d}
	}
	return New(classes...)
}

// TrainGaussian fits a parametric normal density per class instead of a
// KDE — the ablation baseline for the paper's KDE choice.
func TrainGaussian(labels []string, features [][]float64, priors []float64) (*Classifier, error) {
	if len(labels) != len(features) {
		return nil, errors.New("bayes: labels/features length mismatch")
	}
	if priors != nil && len(priors) != len(labels) {
		return nil, errors.New("bayes: labels/priors length mismatch")
	}
	classes := make([]Class, len(labels))
	for i := range labels {
		if len(features[i]) < 2 {
			return nil, fmt.Errorf("bayes: class %q: need at least two samples", labels[i])
		}
		sd := stats.StdDev(features[i])
		if !(sd > 0) {
			return nil, fmt.Errorf("bayes: class %q: zero feature spread", labels[i])
		}
		p := 1.0 / float64(len(labels))
		if priors != nil {
			p = priors[i]
		}
		classes[i] = Class{
			Label:   labels[i],
			Prior:   p,
			Density: dist.Normal{Mu: stats.Mean(features[i]), Sigma: sd},
		}
	}
	return New(classes...)
}

// FeatureSupport returns an interval covering the numeric support of all
// class densities in the classifier, for use as integration bounds. It
// relies on each density exposing Support() (KDEs do); parametric normals
// use mean ± 9 sigma.
func (c *Classifier) FeatureSupport() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, cl := range c.classes {
		var a, b float64
		switch d := cl.Density.(type) {
		case interface{ Support() (float64, float64) }:
			a, b = d.Support()
		case dist.Normal:
			a, b = d.Mu-9*d.Sigma, d.Mu+9*d.Sigma
		default:
			continue
		}
		lo = math.Min(lo, a)
		hi = math.Max(hi, b)
	}
	return lo, hi
}
