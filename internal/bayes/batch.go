package bayes

import "math"

// BatchDensity is a density that can evaluate a whole feature batch in
// one call (kde.Grid and kde.KDE implement it). ClassifyBatch uses it to
// score an evaluation set class-by-class without per-window overhead.
type BatchDensity interface {
	Density
	PDFBatch(xs, out []float64) []float64
}

// LogDensity is a density exposing log evaluation; used by the batched
// log-posterior path to avoid underflow far in the tails.
type LogDensity interface {
	LogPDF(x float64) float64
}

// pdfBatch evaluates class i's density over xs into out, using the batch
// fast path when the density supports it.
func (c *Classifier) pdfBatch(i int, xs, out []float64) []float64 {
	if cap(out) < len(xs) {
		out = make([]float64, len(xs))
	}
	out = out[:len(xs)]
	if bd, ok := c.classes[i].Density.(BatchDensity); ok {
		return bd.PDFBatch(xs, out)
	}
	d := c.classes[i].Density
	for j, x := range xs {
		out[j] = d.PDF(x)
	}
	return out
}

// ClassifyBatch classifies every feature value in s, writing class
// indices into out (grown if needed) and returning it. The decision is
// identical to calling Classify per element — same scores, same
// lowest-index tie-breaking — but the densities are evaluated one class
// at a time over the whole batch, which keeps the per-window cost at two
// float compares per class.
func (c *Classifier) ClassifyBatch(s []float64, out []int) []int {
	if cap(out) < len(s) {
		out = make([]int, len(s))
	}
	out = out[:len(s)]
	if len(s) == 0 {
		return out
	}
	best := make([]float64, len(s))
	scores := make([]float64, len(s))
	for j := range best {
		best[j] = math.Inf(-1)
		out[j] = 0
	}
	for i := range c.classes {
		scores = c.pdfBatch(i, s, scores)
		prior := c.classes[i].Prior
		for j, p := range scores {
			if score := prior * p; score > best[j] {
				best[j], out[j] = score, i
			}
		}
	}
	return out
}

// PosteriorsBatch returns P(ω_i | s_j) for every class i and feature
// value s_j, as one row of length NumClasses per feature value. Rows
// where every class density is zero fall back to the priors, matching
// Posteriors.
func (c *Classifier) PosteriorsBatch(s []float64) [][]float64 {
	m := len(c.classes)
	post := make([][]float64, len(s))
	flat := make([]float64, len(s)*m)
	for j := range post {
		post[j] = flat[j*m : (j+1)*m : (j+1)*m]
	}
	scores := make([]float64, len(s))
	for i := range c.classes {
		scores = c.pdfBatch(i, s, scores)
		prior := c.classes[i].Prior
		for j, p := range scores {
			post[j][i] = prior * p
		}
	}
	for j := range post {
		var total float64
		for _, v := range post[j] {
			total += v
		}
		if total <= 0 {
			for i := range c.classes {
				post[j][i] = c.classes[i].Prior
			}
			continue
		}
		for i := range post[j] {
			post[j][i] /= total
		}
	}
	return post
}

// LogPosteriors returns log P(ω_i | s) for every class, computed in log
// space with a log-sum-exp normalization so that feature values deep in
// every class's tail (where linear densities underflow to zero) still
// yield finite, correctly normalized log posteriors whenever the
// densities expose LogPDF. If the value has zero density under every
// class, the log priors are returned, matching Posteriors.
func (c *Classifier) LogPosteriors(s float64) []float64 {
	return c.LogPosteriorsInto(s, nil)
}

// LogPosteriorsInto is LogPosteriors writing into out (grown if needed)
// and returning it, so per-observation scoring loops — the population
// flow-correlation attack evaluates one posterior row per (user, flow)
// pair — stay allocation-free with a reused buffer.
func (c *Classifier) LogPosteriorsInto(s float64, out []float64) []float64 {
	if cap(out) < len(c.classes) {
		out = make([]float64, len(c.classes))
	}
	lp := out[:len(c.classes)]
	for i, cl := range c.classes {
		var ld float64
		if l, ok := cl.Density.(LogDensity); ok {
			ld = l.LogPDF(s)
		} else {
			ld = math.Log(cl.Density.PDF(s))
		}
		lp[i] = math.Log(cl.Prior) + ld
	}
	z := logSumExp(lp)
	if math.IsInf(z, -1) {
		for i, cl := range c.classes {
			lp[i] = math.Log(cl.Prior)
		}
		return lp
	}
	for i := range lp {
		lp[i] -= z
	}
	return lp
}

// logSumExp returns log Σ exp(xs[i]) with the usual max-shift for
// numerical stability; -Inf when every term is -Inf.
func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}
