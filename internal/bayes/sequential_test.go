package bayes

import (
	"math"
	"testing"

	"linkpad/internal/dist"
	"linkpad/internal/xrand"
)

// seqTwoGaussians builds a classifier over N(0,1) and N(mu,1).
func seqTwoGaussians(t *testing.T, mu float64) *Classifier {
	t.Helper()
	cls, err := New(
		Class{Label: "low", Prior: 0.5, Density: dist.Normal{Mu: 0, Sigma: 1}},
		Class{Label: "high", Prior: 0.5, Density: dist.Normal{Mu: mu, Sigma: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

// One observed window must reproduce the classifier's single-shot
// posterior exactly — the sequential rule generalizes, never disagrees.
func TestSequentialSingleWindowMatchesPosteriors(t *testing.T) {
	cls := seqTwoGaussians(t, 1.5)
	for _, x := range []float64{-2, 0, 0.75, 1.5, 4} {
		seq := cls.NewSequential()
		seq.Observe(x)
		got := seq.Posteriors(nil)
		want := cls.Posteriors(x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("x=%v class %d: sequential %v vs batch %v", x, i, got[i], want[i])
			}
		}
	}
}

// Evidence from the true class accumulates: the posterior of the true
// class climbs toward 1 and the decision threshold is crossed, with the
// number of windows needed shrinking as the classes separate.
func TestSequentialAccumulatesEvidence(t *testing.T) {
	rng := xrand.New(3)
	windowsToDecide := func(mu float64) int {
		cls := seqTwoGaussians(t, mu)
		seq := cls.NewSequential()
		for w := 1; w <= 1000; w++ {
			seq.Observe(mu + rng.Norm()) // sample from the "high" class
			if class, ok := seq.Decided(0.999); ok {
				if class != 1 {
					t.Fatalf("mu=%v: decided wrong class %d", mu, class)
				}
				return w
			}
		}
		t.Fatalf("mu=%v: never decided", mu)
		return 0
	}
	wWeak := windowsToDecide(0.5)
	wStrong := windowsToDecide(3.0)
	if wStrong >= wWeak {
		t.Errorf("separation 3.0 took %d windows, separation 0.5 took %d — should be faster", wStrong, wWeak)
	}
	if wStrong != 1 {
		t.Logf("strong separation decided in %d windows", wStrong)
	}
}

// Reset returns to the priors.
func TestSequentialReset(t *testing.T) {
	cls := seqTwoGaussians(t, 2)
	seq := cls.NewSequential()
	seq.Observe(2)
	seq.Observe(2.5)
	if seq.Windows() != 2 {
		t.Fatalf("windows = %d", seq.Windows())
	}
	seq.Reset()
	if seq.Windows() != 0 {
		t.Fatalf("windows after reset = %d", seq.Windows())
	}
	post := seq.Posteriors(nil)
	for i, p := range post {
		if math.Abs(p-cls.Prior(i)) > 1e-12 {
			t.Errorf("post-reset posterior[%d] = %v, want prior %v", i, p, cls.Prior(i))
		}
	}
	if _, ok := seq.Decided(0.75); ok {
		t.Error("fresh sequential should not be decided at 0.75")
	}
	if class, ok := seq.Decided(0.5); !ok || class != 0 {
		t.Error("threshold at the prior should decide immediately (documented edge)")
	}
}

// A window outside one class's finite KDE support must not eliminate the
// class irrevocably: the clamp bounds single-window evidence, and
// subsequent contrary evidence can still flip the decision.
func TestSequentialClampRecovers(t *testing.T) {
	rngL := xrand.New(5)
	rngH := xrand.New(6)
	low := make([]float64, 200)
	high := make([]float64, 200)
	for i := range low {
		low[i] = rngL.Norm()        // N(0,1) sample
		high[i] = 2.0 + rngH.Norm() // N(2,1) sample
	}
	cls, err := TrainKDE([]string{"low", "high"}, [][]float64{low, high}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := cls.NewSequential()
	// Far beyond the high class's training support (and the low class's):
	// zero density under both — no information, posterior unchanged.
	seq.Observe(1e6)
	post := seq.Posteriors(nil)
	if math.Abs(post[0]-0.5) > 1e-9 {
		t.Fatalf("no-information window moved the posterior: %v", post)
	}
	// A value inside low's support but outside high's: strong but bounded
	// evidence for low.
	seq.Observe(-3.5)
	if lp := seq.LogPosteriors(nil); math.IsInf(lp[1], -1) {
		t.Fatal("clamped observation still eliminated the high class")
	}
	// Sustained evidence for high must overcome it.
	for i := 0; i < 40; i++ {
		seq.Observe(2.0)
	}
	if class, _ := seq.Best(); class != 1 {
		t.Errorf("sustained high evidence did not flip the decision (class %d)", class)
	}
}

// The max-shift keeps the accumulator finite over very long sessions.
func TestSequentialLongSessionStable(t *testing.T) {
	cls := seqTwoGaussians(t, 1)
	seq := cls.NewSequential()
	for i := 0; i < 100000; i++ {
		seq.Observe(1)
	}
	lp := seq.LogPosteriors(nil)
	if math.IsNaN(lp[0]) || math.IsNaN(lp[1]) {
		t.Fatalf("log posterior diverged: %v", lp)
	}
	if class, p := seq.Best(); class != 1 || !(p > 0.99) {
		t.Errorf("best = (%d, %v), want high with certainty", class, p)
	}
}

// Observe's returned single-window decision must agree with the batch
// Classify rule on the same value.
func TestSequentialObserveWindowDecision(t *testing.T) {
	cls := seqTwoGaussians(t, 1.5)
	seq := cls.NewSequential()
	for _, x := range []float64{-3, 0, 0.7499, 0.75, 0.7501, 1.5, 5} {
		if got, want := seq.Observe(x), cls.Classify(x); got != want {
			t.Errorf("x=%v: window decision %d, Classify %d", x, got, want)
		}
	}
	// Outside every class's support: the fallback matches Classify's
	// all-zero-score behavior (class 0).
	rng := xrand.New(8)
	data := make([]float64, 100)
	for i := range data {
		data[i] = rng.Norm()
	}
	kcls, err := TrainKDE([]string{"a", "b"}, [][]float64{data, data}, nil)
	if err != nil {
		t.Fatal(err)
	}
	kseq := kcls.NewSequential()
	if got, want := kseq.Observe(1e9), kcls.Classify(1e9); got != want {
		t.Errorf("no-support window decision %d, Classify %d", got, want)
	}
}
