package bayes

import (
	"math"
	"testing"
	"testing/quick"

	"linkpad/internal/dist"
	"linkpad/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func twoGaussians(mu0, s0, mu1, s1, p0, p1 float64) *Classifier {
	c, err := New(
		Class{Label: "l", Prior: p0, Density: dist.Normal{Mu: mu0, Sigma: s0}},
		Class{Label: "h", Prior: p1, Density: dist.Normal{Mu: mu1, Sigma: s1}},
	)
	if err != nil {
		panic(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	n := dist.Normal{Sigma: 1}
	if _, err := New(Class{Label: "only", Prior: 1, Density: n}); err == nil {
		t.Error("want error for one class")
	}
	if _, err := New(Class{Prior: 1, Density: n}, Class{Prior: 0, Density: n}); err == nil {
		t.Error("want error for zero prior")
	}
	if _, err := New(Class{Prior: 1, Density: n}, Class{Prior: 1}); err == nil {
		t.Error("want error for nil density")
	}
}

func TestPriorNormalization(t *testing.T) {
	c := twoGaussians(0, 1, 5, 1, 3, 1) // un-normalized 3:1
	if !almostEq(c.Prior(0), 0.75, 1e-12) || !almostEq(c.Prior(1), 0.25, 1e-12) {
		t.Errorf("priors = %v, %v", c.Prior(0), c.Prior(1))
	}
}

func TestClassifySeparated(t *testing.T) {
	c := twoGaussians(0, 1, 10, 1, 1, 1)
	if c.Classify(-1) != 0 || c.Classify(11) != 1 {
		t.Error("clearly separated points misclassified")
	}
	if c.Classify(4.99) != 0 || c.Classify(5.01) != 1 {
		t.Error("threshold should be at the midpoint for equal-variance equal-prior classes")
	}
}

func TestClassifyPriorShift(t *testing.T) {
	// Heavier prior on class 0 moves the threshold toward class 1.
	equal := twoGaussians(0, 1, 4, 1, 1, 1)
	skewed := twoGaussians(0, 1, 4, 1, 9, 1)
	dEq, err := equal.TwoClassThreshold(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	dSk, err := skewed.TwoClassThreshold(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(dEq, 2, 1e-9) {
		t.Errorf("equal-prior threshold = %v, want 2", dEq)
	}
	if dSk <= dEq {
		t.Errorf("skewed-prior threshold %v should exceed %v", dSk, dEq)
	}
}

func TestPosteriorsSumToOne(t *testing.T) {
	c := twoGaussians(0, 1, 3, 2, 1, 1)
	f := func(s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return true
		}
		p := c.Posteriors(s)
		sum := p[0] + p[1]
		return almostEq(sum, 1, 1e-9) && p[0] >= 0 && p[1] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPosteriorsZeroDensityFallsBackToPriors(t *testing.T) {
	// KDE densities are numerically zero far outside training data.
	r := xrand.New(1)
	feat := make([][]float64, 2)
	for i := range feat {
		feat[i] = make([]float64, 100)
		for j := range feat[i] {
			feat[i][j] = r.Normal(float64(i), 0.1)
		}
	}
	c, err := TrainKDE([]string{"a", "b"}, feat, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Posteriors(1e9)
	if !almostEq(p[0], 0.7, 1e-12) || !almostEq(p[1], 0.3, 1e-12) {
		t.Errorf("posteriors far outside support = %v", p)
	}
}

// Exact check: two equal-prior unit-variance Gaussians at distance 2a have
// Bayes detection rate Phi(a).
func TestDetectionRateEqualVariance(t *testing.T) {
	for _, a := range []float64{0.25, 0.5, 1, 2} {
		c := twoGaussians(-a, 1, a, 1, 1, 1)
		v, err := c.DetectionRate(-a-9, a+9, 8000)
		if err != nil {
			t.Fatal(err)
		}
		want := dist.StdPhi(a)
		if !almostEq(v, want, 1e-6) {
			t.Errorf("a=%v: v = %v, want %v", a, v, want)
		}
	}
}

// Identical class densities => detection rate exactly 0.5 (random guessing),
// the paper's lower bound for m=2.
func TestDetectionRateIdenticalClasses(t *testing.T) {
	c := twoGaussians(0, 1, 0, 1, 1, 1)
	v, err := c.DetectionRate(-9, 9, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 0.5, 1e-9) {
		t.Errorf("v = %v, want 0.5", v)
	}
}

// Equal-mean different-variance Gaussians: the paper's sample-statistic
// geometry (Fig. 2). Verify against the closed form
// v = 1/2 + Phi(z) - Phi(z/sqrt(r)), z = sqrt(r ln r/(r-1)).
func TestDetectionRateEqualMeanVarianceRatio(t *testing.T) {
	for _, r := range []float64{1.5, 1.9, 3, 10} {
		c := twoGaussians(0, 1, 0, math.Sqrt(r), 1, 1)
		v, err := c.DetectionRate(-40, 40, 40000)
		if err != nil {
			t.Fatal(err)
		}
		z := math.Sqrt(r * math.Log(r) / (r - 1))
		want := 0.5 + dist.StdPhi(z) - dist.StdPhi(z/math.Sqrt(r))
		if !almostEq(v, want, 1e-5) {
			t.Errorf("r=%v: v = %v, want %v", r, v, want)
		}
	}
}

func TestErrorRateComplement(t *testing.T) {
	c := twoGaussians(0, 1, 2, 1, 1, 1)
	v, err := c.DetectionRate(-9, 11, 4000)
	if err != nil {
		t.Fatal(err)
	}
	e, err := c.ErrorRate(-9, 11, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v+e, 1, 1e-12) {
		t.Errorf("v + e = %v", v+e)
	}
}

func TestTwoClassThresholdErrors(t *testing.T) {
	three, err := New(
		Class{Prior: 1, Density: dist.Normal{Mu: 0, Sigma: 1}},
		Class{Prior: 1, Density: dist.Normal{Mu: 1, Sigma: 1}},
		Class{Prior: 1, Density: dist.Normal{Mu: 2, Sigma: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := three.TwoClassThreshold(0, 2); err == nil {
		t.Error("want error for three classes")
	}
}

func TestTrainKDEEndToEnd(t *testing.T) {
	r := xrand.New(42)
	mk := func(mu, sigma float64) []float64 {
		xs := make([]float64, 400)
		for i := range xs {
			xs[i] = r.Normal(mu, sigma)
		}
		return xs
	}
	c, err := TrainKDE([]string{"low", "high"}, [][]float64{mk(0, 1), mk(6, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh draws classify correctly almost always.
	correct := 0
	for i := 0; i < 1000; i++ {
		if c.Classify(r.Normal(0, 1)) == 0 {
			correct++
		}
		if c.Classify(r.Normal(6, 1)) == 1 {
			correct++
		}
	}
	if rate := float64(correct) / 2000; rate < 0.99 {
		t.Errorf("separated KDE classes detection = %v", rate)
	}
	if c.Label(0) != "low" || c.Label(1) != "high" {
		t.Error("labels lost in training")
	}
}

func TestTrainKDEErrors(t *testing.T) {
	if _, err := TrainKDE([]string{"a"}, nil, nil); err == nil {
		t.Error("want mismatch error")
	}
	if _, err := TrainKDE([]string{"a", "b"}, [][]float64{{1, 2}, {3}}, nil); err == nil {
		t.Error("want per-class KDE error")
	}
	if _, err := TrainKDE([]string{"a", "b"}, [][]float64{{1, 2}, {3, 4}}, []float64{1}); err == nil {
		t.Error("want priors mismatch error")
	}
}

func TestTrainGaussianMatchesKDEWhenGaussian(t *testing.T) {
	r := xrand.New(7)
	mk := func(mu float64) []float64 {
		xs := make([]float64, 2000)
		for i := range xs {
			xs[i] = r.Normal(mu, 1)
		}
		return xs
	}
	feats := [][]float64{mk(0), mk(2)}
	ck, err := TrainKDE([]string{"a", "b"}, feats, nil)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := TrainGaussian([]string{"a", "b"}, feats, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The two trainings should agree on nearly all of a fresh test set.
	agree := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := r.Normal(1, 1.5)
		if ck.Classify(s) == cg.Classify(s) {
			agree++
		}
	}
	if rate := float64(agree) / trials; rate < 0.97 {
		t.Errorf("KDE vs Gaussian agreement = %v", rate)
	}
}

func TestTrainGaussianErrors(t *testing.T) {
	if _, err := TrainGaussian([]string{"a", "b"}, [][]float64{{1, 2}, {3}}, nil); err == nil {
		t.Error("want error for short class sample")
	}
	if _, err := TrainGaussian([]string{"a", "b"}, [][]float64{{1, 2}, {3, 3}}, nil); err == nil {
		t.Error("want error for zero-spread class")
	}
}

func TestFeatureSupportCoversClasses(t *testing.T) {
	c := twoGaussians(0, 1, 10, 2, 1, 1)
	lo, hi := c.FeatureSupport()
	if lo > -8 || hi < 28 {
		t.Errorf("support = [%v, %v]", lo, hi)
	}
}

// Property: detection rate of two-Gaussian classifiers always lies in
// [0.5, 1] under equal priors (guessing is always achievable).
func TestDetectionRateBounds(t *testing.T) {
	f := func(rawMu, rawS float64) bool {
		mu := math.Mod(math.Abs(rawMu), 5)
		s := 0.5 + math.Mod(math.Abs(rawS), 3)
		if math.IsNaN(mu) || math.IsNaN(s) {
			return true
		}
		c := twoGaussians(0, 1, mu, s, 1, 1)
		v, err := c.DetectionRate(-50, 50, 4000)
		if err != nil {
			return false
		}
		return v >= 0.5-1e-6 && v <= 1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusion(t *testing.T) {
	cm := NewConfusion([]string{"low", "high"})
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 1)
	cm.Add(1, 1)
	if cm.Total() != 4 {
		t.Errorf("total = %d", cm.Total())
	}
	if !almostEq(cm.DetectionRate(), 0.75, 1e-12) {
		t.Errorf("detection = %v", cm.DetectionRate())
	}
	if !almostEq(cm.ClassRate(0), 2.0/3, 1e-12) || !almostEq(cm.ClassRate(1), 1, 1e-12) {
		t.Errorf("class rates = %v, %v", cm.ClassRate(0), cm.ClassRate(1))
	}
	if cm.Count(0, 1) != 1 {
		t.Errorf("count(0,1) = %d", cm.Count(0, 1))
	}
	if s := cm.String(); len(s) == 0 {
		t.Error("empty String()")
	}
}

func TestConfusionEmpty(t *testing.T) {
	cm := NewConfusion([]string{"a", "b"})
	if cm.DetectionRate() != 0 || cm.ClassRate(0) != 0 {
		t.Error("empty confusion should report zero rates")
	}
}

func BenchmarkClassifyKDE(b *testing.B) {
	r := xrand.New(1)
	mk := func(mu float64) []float64 {
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = r.Normal(mu, 1)
		}
		return xs
	}
	c, err := TrainKDE([]string{"a", "b"}, [][]float64{mk(0), mk(2)}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(float64(i%40)/10 - 1)
	}
}
