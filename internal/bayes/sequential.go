package bayes

import "math"

// DefaultClampLogRatio bounds the evidence a single window may contribute
// to a sequential decision: per window, every class's log-likelihood is
// floored at (best-in-window − DefaultClampLogRatio). exp(40) ≈ 2e17, so
// the bound never matters for ordinary observations; it only prevents one
// outlier window — a feature value in the far tail or outside a class's
// finite KDE support, where the log-density is −∞ — from eliminating a
// class irrevocably. This is the standard robustification of Wald's SPRT
// against model misspecification (truncated log-likelihood ratios).
const DefaultClampLogRatio = 40.0

// Sequential accumulates per-window evidence into a cumulative
// log-posterior over the classes: the anytime decision rule for
// continuous observation. Where the batch rule classifies each window
// independently, a Sequential treats the consecutive window features
// s_1..s_k of one session as accumulating evidence,
//
//	L_i(k) = log P(ω_i) + Σ_j log f(s_j | ω_i),
//
// and reports the normalized posterior softmax(L). Thresholding the top
// posterior gives SPRT-style anytime detection: the adversary decides as
// soon as confidence is reached instead of waiting out a fixed sample
// budget, which is the natural attack against a continuous padded stream.
//
// A Sequential is not safe for concurrent use; create one per session.
type Sequential struct {
	// ClampLogRatio bounds one window's log-likelihood spread between the
	// best and worst class (see DefaultClampLogRatio). Raise it toward
	// +Inf for the textbook (unclamped) SPRT.
	ClampLogRatio float64

	cls       *Classifier
	logw      []float64 // cumulative log prior + likelihood, max-shifted
	scratch   []float64
	logPriors []float64
	windows   int
}

// NewSequential starts an empty sequential decision for the classifier's
// classes, initialized at the log priors.
func (c *Classifier) NewSequential() *Sequential {
	s := &Sequential{
		ClampLogRatio: DefaultClampLogRatio,
		cls:           c,
		logw:          make([]float64, len(c.classes)),
		scratch:       make([]float64, len(c.classes)),
		logPriors:     make([]float64, len(c.classes)),
	}
	for i, cl := range c.classes {
		s.logPriors[i] = math.Log(cl.Prior)
	}
	s.Reset()
	return s
}

// Reset discards all accumulated evidence, returning to the priors.
func (s *Sequential) Reset() {
	copy(s.logw, s.logPriors)
	s.windows = 0
}

// Observe folds one window's feature value into the cumulative
// log-posterior and returns the *single-window* Bayes decision — the
// class maximizing log P(ω_i) + log f(x|ω_i) for this window alone,
// computed from the same density pass so callers tracking per-window
// accuracy alongside the sequential rule pay no second evaluation.
//
// A value with zero density under every class carries no information: it
// leaves the posterior unchanged (matching the batch rule's prior
// fallback) and its window decision falls back to class 0, like
// Classify. A value with zero density under some classes only is clamped
// per ClampLogRatio so no class is eliminated beyond recovery by a
// single window.
func (s *Sequential) Observe(x float64) (window int) {
	s.windows++
	lds := s.scratch
	best := math.Inf(-1)
	bestScore := math.Inf(-1)
	for i, cl := range s.cls.classes {
		var ld float64
		if l, ok := cl.Density.(LogDensity); ok {
			ld = l.LogPDF(x)
		} else {
			ld = math.Log(cl.Density.PDF(x))
		}
		lds[i] = ld
		if ld > best {
			best = ld
		}
		// The raw (unclamped) likelihoods decide this window in
		// isolation; ties break toward the lowest index.
		if score := s.logPriors[i] + ld; score > bestScore {
			window, bestScore = i, score
		}
	}
	if math.IsInf(best, -1) {
		return 0 // outside every class's support: no information
	}
	floor := best - s.ClampLogRatio
	shift := math.Inf(-1)
	for i := range lds {
		if lds[i] < floor {
			lds[i] = floor
		}
		s.logw[i] += lds[i]
		if s.logw[i] > shift {
			shift = s.logw[i]
		}
	}
	// Max-shift so the accumulator stays bounded over arbitrarily long
	// sessions; a common shift cancels in the softmax.
	for i := range s.logw {
		s.logw[i] -= shift
	}
	return window
}

// Windows returns how many windows have been observed since the last
// Reset.
func (s *Sequential) Windows() int { return s.windows }

// LogPosteriors writes the normalized log posteriors log P(ω_i | s_1..s_k)
// into out (grown if needed) and returns it.
func (s *Sequential) LogPosteriors(out []float64) []float64 {
	if cap(out) < len(s.logw) {
		out = make([]float64, len(s.logw))
	}
	out = out[:len(s.logw)]
	z := logSumExp(s.logw)
	for i, lw := range s.logw {
		out[i] = lw - z
	}
	return out
}

// Posteriors writes the normalized posteriors P(ω_i | s_1..s_k) into out
// (grown if needed) and returns it.
func (s *Sequential) Posteriors(out []float64) []float64 {
	out = s.LogPosteriors(out)
	for i, lp := range out {
		out[i] = math.Exp(lp)
	}
	return out
}

// Best returns the current maximum-posterior class and its posterior
// probability. Ties break toward the lowest index, like Classify.
func (s *Sequential) Best() (class int, posterior float64) {
	best, bestLW := 0, math.Inf(-1)
	for i, lw := range s.logw {
		if lw > bestLW {
			best, bestLW = i, lw
		}
	}
	return best, math.Exp(bestLW - logSumExp(s.logw))
}

// Decided reports whether the accumulated posterior has reached the
// confidence threshold (e.g. 0.99), and for which class. With m classes
// the posterior starts at the prior, so thresholds at or below the
// largest prior decide immediately on zero evidence — callers should pick
// confidence above max_i P(ω_i).
func (s *Sequential) Decided(confidence float64) (class int, ok bool) {
	class, p := s.Best()
	return class, p >= confidence
}
