package bayes

import (
	"fmt"
	"strings"
)

// Confusion is an m x m confusion matrix over class indices:
// rows are true classes, columns are predicted classes.
type Confusion struct {
	labels []string
	counts [][]int
	total  int
}

// NewConfusion creates a confusion matrix for the given class labels.
func NewConfusion(labels []string) *Confusion {
	counts := make([][]int, len(labels))
	for i := range counts {
		counts[i] = make([]int, len(labels))
	}
	return &Confusion{labels: append([]string(nil), labels...), counts: counts}
}

// Add records one classification outcome.
func (c *Confusion) Add(trueClass, predicted int) {
	c.counts[trueClass][predicted]++
	c.total++
}

// Total returns the number of recorded outcomes.
func (c *Confusion) Total() int { return c.total }

// Count returns the number of samples of trueClass predicted as predicted.
func (c *Confusion) Count(trueClass, predicted int) int {
	return c.counts[trueClass][predicted]
}

// DetectionRate returns the overall fraction of correct classifications —
// the paper's security metric (the probability the adversary identifies
// the payload rate correctly). With no outcomes it returns 0.
func (c *Confusion) DetectionRate() float64 {
	if c.total == 0 {
		return 0
	}
	correct := 0
	for i := range c.counts {
		correct += c.counts[i][i]
	}
	return float64(correct) / float64(c.total)
}

// ClassRate returns the per-class recall: the fraction of samples of
// trueClass classified correctly. Classes with no samples yield 0.
func (c *Confusion) ClassRate(trueClass int) float64 {
	row := 0
	for _, n := range c.counts[trueClass] {
		row += n
	}
	if row == 0 {
		return 0
	}
	return float64(c.counts[trueClass][trueClass]) / float64(row)
}

// String renders the matrix as an aligned text table.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "true\\pred")
	for _, l := range c.labels {
		fmt.Fprintf(&b, "%10s", l)
	}
	b.WriteByte('\n')
	for i, l := range c.labels {
		fmt.Fprintf(&b, "%-10s", l)
		for j := range c.labels {
			fmt.Fprintf(&b, "%10d", c.counts[i][j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "detection rate: %.4f", c.DetectionRate())
	return b.String()
}
