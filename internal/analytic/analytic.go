// Package analytic implements the paper's closed-form detection-rate
// theory (§4): Theorems 1-3 giving the adversary's detection rate for the
// sample-mean, sample-variance and sample-entropy features as functions of
// the PIAT variance ratio r = σ_h²/σ_l² (eq. 16) and the sample size n,
// the n(p) sample-size curves of Fig. 5(b), and the design-guideline
// inversions (pick σ_T to meet a target detection rate).
//
// Theorem 1's printed approximation (eq. 18) appears OCR-garbled in the
// available text (it does not satisfy the paper's own v(r=1) = 0.5
// property); DetectionRateMean therefore evaluates the exact Bayes
// detection rate for the paper's model — two equal-mean normals with
// variance ratio r — which satisfies every property the paper states
// (independent of n, v(1) = 0.5, increasing in r). The printed form is
// kept as DetectionRateMeanPaper for reference.
//
// Everything here is a pure function of its arguments — no randomness,
// no package state — evaluated with internal/dist's deterministic
// quadrature and root bracketing, so theory curves are reproducible to
// the last bit and safe to call from any number of workers.
package analytic

import (
	"errors"
	"math"

	"linkpad/internal/dist"
)

// smallT switches the C_Y/C_H evaluation to series expansions near r = 1,
// where the direct formulas suffer catastrophic cancellation.
const smallT = 1e-6

// validateR normalizes a variance ratio: it must be positive and finite,
// and by the symmetry of the two-class problem r and 1/r give identical
// detection rates, so ratios below one are inverted.
func validateR(r float64) (float64, error) {
	if !(r > 0) || math.IsInf(r, 0) || math.IsNaN(r) {
		return 0, errors.New("analytic: variance ratio must be positive and finite")
	}
	if r < 1 {
		r = 1 / r
	}
	return r, nil
}

// DetectionRateMean returns the detection rate when the adversary uses the
// sample mean (Theorem 1). For the paper's model — X̄ conditioned on each
// class is normal with equal means and variance ratio r — the Bayes rate
// has the exact closed form
//
//	v = 1/2 + Φ(z) − Φ(z/√r),  z = sqrt(r·ln r / (r−1))
//
// which is independent of the sample size n (both class variances scale by
// 1/n, leaving r unchanged): the paper's observation (1).
func DetectionRateMean(r float64) (float64, error) {
	r, err := validateR(r)
	if err != nil {
		return 0, err
	}
	t := r - 1
	if t < 1e-8 {
		// v → 1/2 + φ(1)·t/2 as r → 1.
		phi1 := math.Exp(-0.5) / math.Sqrt(2*math.Pi)
		return 0.5 + phi1*t/2, nil
	}
	z := math.Sqrt(r * math.Log(r) / t)
	return 0.5 + dist.StdPhi(z) - dist.StdPhi(z/math.Sqrt(r)), nil
}

// DetectionRateMeanPaper evaluates eq. 18 exactly as printed in the
// available text: v ≈ 1 − 1/(√2·(1/√r + √r)). Note it yields ≈0.646 at
// r = 1 instead of the 0.5 the paper's own discussion requires; see the
// package comment.
func DetectionRateMeanPaper(r float64) (float64, error) {
	r, err := validateR(r)
	if err != nil {
		return 0, err
	}
	return 1 - 1/(math.Sqrt2*(1/math.Sqrt(r)+math.Sqrt(r))), nil
}

// CY returns the Theorem 2 constant (eq. 21):
//
//	C_Y = 1/(2(1 − ln r/(r−1))²) + 1/(2(r·ln r/(r−1) − 1)²)
//
// C_Y → ∞ as r → 1 (no leak) and → 1/2 as r → ∞.
func CY(r float64) (float64, error) {
	r, err := validateR(r)
	if err != nil {
		return 0, err
	}
	t := r - 1
	if t == 0 {
		return math.Inf(1), nil
	}
	var a, b float64 // the two squared denominators' roots
	if t < smallT {
		// 1 − ln r/(r−1) = t/2 − t²/3 + O(t³)
		// r·ln r/(r−1) − 1 = t/2 − t²/6 + O(t³)
		a = t/2 - t*t/3
		b = t/2 - t*t/6
	} else {
		lr := math.Log1p(t)
		a = 1 - lr/t
		b = (1+t)*lr/t - 1
	}
	return 1/(2*a*a) + 1/(2*b*b), nil
}

// CH returns the Theorem 3 constant (eq. 23):
//
//	C_H = 1/(2·ln²(r·ln r/(r−1))) + 1/(2·ln²((r−1)/ln r))
//
// with the same limits as C_Y.
func CH(r float64) (float64, error) {
	r, err := validateR(r)
	if err != nil {
		return 0, err
	}
	t := r - 1
	if t == 0 {
		return math.Inf(1), nil
	}
	var la, lb float64
	if t < smallT {
		// ln(r·ln r/(r−1)) = t/2 − 7t²/24 + O(t³)
		// ln((r−1)/ln r)   = t/2 − 5t²/24 + O(t³)
		la = t/2 - 7*t*t/24
		lb = t/2 - 5*t*t/24
	} else {
		lr := math.Log1p(t)
		la = math.Log((1 + t) * lr / t)
		lb = math.Log(t / lr)
	}
	return 1/(2*la*la) + 1/(2*lb*lb), nil
}

// DetectionRateVariance returns Theorem 2's estimate for the
// sample-variance feature at sample size n:
//
//	v_Y ≈ max(1 − C_Y/(n−1), 0.5)
func DetectionRateVariance(r float64, n int) (float64, error) {
	if n < 2 {
		return 0, errors.New("analytic: sample size must be at least 2")
	}
	c, err := CY(r)
	if err != nil {
		return 0, err
	}
	return math.Max(1-c/float64(n-1), 0.5), nil
}

// DetectionRateEntropy returns Theorem 3's estimate for the
// sample-entropy feature at sample size n:
//
//	v_H ≈ max(1 − C_H/n, 0.5)
func DetectionRateEntropy(r float64, n int) (float64, error) {
	if n < 1 {
		return 0, errors.New("analytic: sample size must be at least 1")
	}
	c, err := CH(r)
	if err != nil {
		return 0, err
	}
	return math.Max(1-c/float64(n), 0.5), nil
}

// SampleSizeVariance returns n(p): the sample size at which the
// sample-variance feature reaches detection rate p ∈ (0.5, 1)
// (the Fig. 5(b) curve). It returns +Inf when r = 1.
func SampleSizeVariance(r, p float64) (float64, error) {
	if !(p > 0.5 && p < 1) {
		return 0, errors.New("analytic: target detection rate must be in (0.5, 1)")
	}
	c, err := CY(r)
	if err != nil {
		return 0, err
	}
	return c/(1-p) + 1, nil
}

// SampleSizeEntropy returns n(p) for the sample-entropy feature.
func SampleSizeEntropy(r, p float64) (float64, error) {
	if !(p > 0.5 && p < 1) {
		return 0, errors.New("analytic: target detection rate must be in (0.5, 1)")
	}
	c, err := CH(r)
	if err != nil {
		return 0, err
	}
	return c / (1 - p), nil
}

// R composes the paper's variance ratio (eq. 16) from the PIAT variance
// of each class. Returns an error unless both are positive.
func R(varLow, varHigh float64) (float64, error) {
	if !(varLow > 0) || !(varHigh > 0) {
		return 0, errors.New("analytic: class variances must be positive")
	}
	return varHigh / varLow, nil
}

// RWithNetwork extends a gateway-level variance ratio with network
// queueing noise: each of the two classes gains the same additional PIAT
// variance 2·Σ Var(W_hop) (waiting times enter consecutive PIATs as a
// difference), so
//
//	r = (σ_h² + σ_net²) / (σ_l² + σ_net²)
//
// matching the paper's eqs. 16/29: r decreases toward 1 as σ_net² grows.
func RWithNetwork(gwVarLow, gwVarHigh float64, hopWaitVars []float64) (float64, error) {
	if !(gwVarLow > 0) || !(gwVarHigh > 0) {
		return 0, errors.New("analytic: class variances must be positive")
	}
	var net float64
	for _, v := range hopWaitVars {
		if v < 0 {
			return 0, errors.New("analytic: negative hop waiting variance")
		}
		net += 2 * v
	}
	return (gwVarHigh + net) / (gwVarLow + net), nil
}

// Feature identifies the adversary's statistic in API calls and reports.
type Feature int

// The three feature statistics studied by the paper, plus the
// interquartile-range extension (a robust second-order statistic with no
// closed-form theorem; evaluated empirically only).
const (
	FeatureMean Feature = iota
	FeatureVariance
	FeatureEntropy
	FeatureIQR
)

// String returns the feature's report name.
func (f Feature) String() string {
	switch f {
	case FeatureMean:
		return "mean"
	case FeatureVariance:
		return "variance"
	case FeatureEntropy:
		return "entropy"
	case FeatureIQR:
		return "iqr"
	default:
		return "unknown"
	}
}

// HasTheorem reports whether a closed-form detection-rate formula exists
// for the feature (Theorems 1-3 cover mean, variance and entropy).
func HasTheorem(f Feature) bool {
	switch f {
	case FeatureMean, FeatureVariance, FeatureEntropy:
		return true
	default:
		return false
	}
}

// DetectionRate dispatches to the per-feature theorem. Features without a
// closed form (see HasTheorem) return an error.
func DetectionRate(f Feature, r float64, n int) (float64, error) {
	switch f {
	case FeatureMean:
		return DetectionRateMean(r)
	case FeatureVariance:
		return DetectionRateVariance(r, n)
	case FeatureEntropy:
		return DetectionRateEntropy(r, n)
	case FeatureIQR:
		return 0, errors.New("analytic: no closed-form theorem for the IQR feature")
	default:
		return 0, errors.New("analytic: unknown feature")
	}
}

// RequiredRatio inverts Theorem 2/3: the variance ratio at which feature f
// reaches detection rate target at sample size n. If even r → ∞ cannot
// reach the target (possible for variance at tiny n), it returns an error.
// The mean feature does not depend on n; it is inverted directly.
func RequiredRatio(f Feature, target float64, n int) (float64, error) {
	if !(target > 0.5 && target < 1) {
		return 0, errors.New("analytic: target detection rate must be in (0.5, 1)")
	}
	eval := func(r float64) (float64, error) { return DetectionRate(f, r, n) }
	// Detection rate is non-decreasing in r for every feature; bracket and
	// bisect on log r.
	const rMax = 1e12
	vMax, err := eval(rMax)
	if err != nil {
		return 0, err
	}
	if vMax < target {
		return 0, errors.New("analytic: target detection rate unreachable at this sample size")
	}
	root, err := dist.FindRoot(func(logr float64) float64 {
		v, evalErr := eval(math.Exp(logr))
		if evalErr != nil {
			return math.NaN()
		}
		return v - target
	}, 1e-12, math.Log(rMax), 1e-12)
	if err != nil {
		return 0, err
	}
	return math.Exp(root), nil
}

// SigmaTForTarget solves the core design guideline (paper §4.3 obs. 2 and
// §6): the smallest VIT interval standard deviation σ_T that caps the
// adversary's detection rate at targetV when they use feature f with
// sample size n, given the gateway's per-class PIAT variances at σ_T = 0
// (CIT). It returns 0 when CIT already meets the target.
//
// Adding σ_T² to both class variances moves the ratio to
// r(σ_T) = (σ_h² + σ_T²)/(σ_l² + σ_T²), so
//
//	σ_T² = (σ_h² − r·σ_l²) / (r − 1)
//
// for the required ratio r.
func SigmaTForTarget(f Feature, targetV float64, n int, citVarLow, citVarHigh float64) (float64, error) {
	if !(targetV > 0.5 && targetV < 1) {
		return 0, errors.New("analytic: target detection rate must be in (0.5, 1)")
	}
	if !(citVarLow > 0) || citVarHigh < citVarLow {
		return 0, errors.New("analytic: need 0 < citVarLow <= citVarHigh")
	}
	rCIT := citVarHigh / citVarLow
	vCIT, err := DetectionRate(f, rCIT, n)
	if err != nil {
		return 0, err
	}
	if vCIT <= targetV {
		return 0, nil // CIT is already safe at this sample size
	}
	rNeed, err := RequiredRatio(f, targetV, n)
	if err != nil {
		return 0, err
	}
	if rNeed >= rCIT {
		return 0, nil
	}
	if rNeed <= 1 {
		return 0, errors.New("analytic: target requires r = 1, unreachable with finite σ_T")
	}
	sigmaT2 := (citVarHigh - rNeed*citVarLow) / (rNeed - 1)
	if sigmaT2 < 0 {
		sigmaT2 = 0
	}
	return math.Sqrt(sigmaT2), nil
}
