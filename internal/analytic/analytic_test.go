package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"linkpad/internal/bayes"
	"linkpad/internal/dist"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidateRErrors(t *testing.T) {
	for _, r := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := DetectionRateMean(r); err == nil {
			t.Errorf("DetectionRateMean(%v) should fail", r)
		}
		if _, err := CY(r); err == nil {
			t.Errorf("CY(%v) should fail", r)
		}
		if _, err := CH(r); err == nil {
			t.Errorf("CH(%v) should fail", r)
		}
	}
}

// Paper observation: every feature's detection rate is exactly 0.5 at
// r = 1 (random guessing bound for two equiprobable classes).
func TestRandomGuessingAtREqualOne(t *testing.T) {
	v, err := DetectionRateMean(1)
	if err != nil || !almostEq(v, 0.5, 1e-12) {
		t.Errorf("mean v(1) = %v, err %v", v, err)
	}
	v, err = DetectionRateVariance(1, 1000)
	if err != nil || v != 0.5 {
		t.Errorf("variance v(1) = %v, err %v", v, err)
	}
	v, err = DetectionRateEntropy(1, 1000)
	if err != nil || v != 0.5 {
		t.Errorf("entropy v(1) = %v, err %v", v, err)
	}
}

// The exact mean formula must agree with direct numeric Bayes integration
// over the two-Gaussian model it is derived from.
func TestMeanFormulaAgreesWithNumericBayes(t *testing.T) {
	for _, r := range []float64{1.2, 1.9, 3, 10, 100} {
		c, err := bayes.New(
			bayes.Class{Label: "l", Prior: 1, Density: dist.Normal{Mu: 0, Sigma: 1}},
			bayes.Class{Label: "h", Prior: 1, Density: dist.Normal{Mu: 0, Sigma: math.Sqrt(r)}},
		)
		if err != nil {
			t.Fatal(err)
		}
		span := 12 * math.Sqrt(r)
		want, err := c.DetectionRate(-span, span, 40000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DetectionRateMean(r)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, want, 1e-5) {
			t.Errorf("r=%v: formula %v vs numeric %v", r, got, want)
		}
	}
}

// Mean detection is independent of n by construction and symmetric in
// r <-> 1/r.
func TestMeanSymmetry(t *testing.T) {
	a, err := DetectionRateMean(2.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DetectionRateMean(1 / 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, b, 1e-12) {
		t.Errorf("v(r) = %v != v(1/r) = %v", a, b)
	}
}

func TestMeanPaperFormulaAsPrinted(t *testing.T) {
	// As printed, eq. 18 gives 1 - 1/(2*sqrt(2)) at r=1 — documented
	// discrepancy with the paper's own v(1)=0.5 observation.
	v, err := DetectionRateMeanPaper(1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 1-1/(2*math.Sqrt2), 1e-12) {
		t.Errorf("printed formula at r=1: %v", v)
	}
	// It is at least monotone increasing in r.
	prev := v
	for _, r := range []float64{1.5, 2, 5, 20} {
		vr, err := DetectionRateMeanPaper(r)
		if err != nil {
			t.Fatal(err)
		}
		if vr <= prev {
			t.Errorf("printed formula not increasing at r=%v", r)
		}
		prev = vr
	}
}

// CY/CH limits: r→1 gives +Inf (no leak); r→∞ gives 1/2 and 0.
func TestConstantLimits(t *testing.T) {
	cy, err := CY(1)
	if err != nil || !math.IsInf(cy, 1) {
		t.Errorf("CY(1) = %v", cy)
	}
	ch, err := CH(1)
	if err != nil || !math.IsInf(ch, 1) {
		t.Errorf("CH(1) = %v", ch)
	}
	// Convergence toward the r→∞ limits is logarithmic; check the trend
	// and proximity rather than tight equality.
	cy, err = CY(1e9)
	if err != nil || !almostEq(cy, 0.5, 2e-3) {
		t.Errorf("CY(1e9) = %v, want → 0.5", cy)
	}
	ch100, err := CH(100)
	if err != nil {
		t.Fatal(err)
	}
	ch, err = CH(1e9)
	if err != nil || ch > 0.1 || ch >= ch100 {
		t.Errorf("CH(1e9) = %v, want small and below CH(100)=%v", ch, ch100)
	}
}

// Spot values computed independently (see DESIGN.md calibration): at
// r = 1.9, C_Y ≈ 10.05 and C_H ≈ 9.79, giving ~0.99 detection at n = 1000.
func TestCalibrationSpotValues(t *testing.T) {
	cy, err := CY(1.9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(cy, 10.05, 0.1) {
		t.Errorf("CY(1.9) = %v, want ~10.05", cy)
	}
	ch, err := CH(1.9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ch, 9.79, 0.1) {
		t.Errorf("CH(1.9) = %v, want ~9.79", ch)
	}
	v, err := DetectionRateVariance(1.9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.985 || v > 0.995 {
		t.Errorf("vY(1.9, 1000) = %v, want ~0.99", v)
	}
}

// Series/direct crossover continuity at the smallT boundary.
func TestSeriesContinuity(t *testing.T) {
	for _, eps := range []float64{0.5e-6, 0.99e-6, 1.01e-6, 2e-6} {
		r := 1 + eps
		cy, err := CY(r)
		if err != nil {
			t.Fatal(err)
		}
		// Both branches approximate 4/t² to within O(t).
		if rel := math.Abs(cy-4/(eps*eps)) / (4 / (eps * eps)); rel > 1e-5 {
			t.Errorf("CY(1+%v) = %v deviates from 4/t² by %v", eps, cy, rel)
		}
		ch, err := CH(r)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(ch-4/(eps*eps)) / (4 / (eps * eps)); rel > 1e-5 {
			t.Errorf("CH(1+%v) = %v deviates from 4/t² by %v", eps, ch, rel)
		}
	}
}

// The paper's monotonicity observations: detection increases with r for
// every feature and with n for variance/entropy.
func TestMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		// r1 < r2 in (1, 100]; n1 < n2 in [10, 10000]
		s := float64(seed%997) / 997
		if s < 0 {
			s = -s
		}
		r1 := 1 + 99*s*0.3
		r2 := r1 + 1 + 10*s
		n1 := 10 + int(s*1000)
		n2 := n1 * 10
		for _, feat := range []Feature{FeatureMean, FeatureVariance, FeatureEntropy} {
			v1, err := DetectionRate(feat, r1, n1)
			if err != nil {
				return false
			}
			v2, err := DetectionRate(feat, r2, n1)
			if err != nil {
				return false
			}
			if v2 < v1-1e-12 {
				return false
			}
			w1, err := DetectionRate(feat, r2, n1)
			if err != nil {
				return false
			}
			w2, err := DetectionRate(feat, r2, n2)
			if err != nil {
				return false
			}
			if w2 < w1-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Inversion consistency: v(r, n(p)) == p.
func TestSampleSizeInversion(t *testing.T) {
	for _, r := range []float64{1.2, 1.9, 4} {
		for _, p := range []float64{0.8, 0.9, 0.99} {
			nv, err := SampleSizeVariance(r, p)
			if err != nil {
				t.Fatal(err)
			}
			v, err := DetectionRateVariance(r, int(math.Ceil(nv)))
			if err != nil {
				t.Fatal(err)
			}
			if v < p-0.01 {
				t.Errorf("variance r=%v p=%v: v(n(p)) = %v", r, p, v)
			}
			ne, err := SampleSizeEntropy(r, p)
			if err != nil {
				t.Fatal(err)
			}
			v, err = DetectionRateEntropy(r, int(math.Ceil(ne)))
			if err != nil {
				t.Fatal(err)
			}
			if v < p-0.01 {
				t.Errorf("entropy r=%v p=%v: v(n(p)) = %v", r, p, v)
			}
		}
	}
}

// The paper's headline Fig. 5(b) claim: with σ_T = 1 ms and µs-scale
// gateway jitter, n(99%) exceeds 10^11.
func TestFig5bScale(t *testing.T) {
	// Gateway-level class variances from the DESIGN.md calibration:
	// σ_l² = 25.8 µs², σ_h² = 49 µs² (in s²: 2.58e-11, 4.9e-11).
	sigmaT := 1e-3
	r := (sigmaT*sigmaT + 4.9e-11) / (sigmaT*sigmaT + 2.58e-11)
	n, err := SampleSizeVariance(r, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1e11 {
		t.Errorf("n(99%%) at σ_T=1ms = %v, want > 1e11", n)
	}
}

func TestSampleSizeErrors(t *testing.T) {
	if _, err := SampleSizeVariance(2, 0.5); err == nil {
		t.Error("p=0.5 should fail")
	}
	if _, err := SampleSizeEntropy(2, 1); err == nil {
		t.Error("p=1 should fail")
	}
	n, err := SampleSizeVariance(1, 0.9)
	if err != nil || !math.IsInf(n, 1) {
		t.Errorf("n(p) at r=1 = %v, want +Inf", n)
	}
}

func TestRHelpers(t *testing.T) {
	r, err := R(2.58e-11, 4.9e-11)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1.8992, 0.001) {
		t.Errorf("R = %v", r)
	}
	if _, err := R(0, 1); err == nil {
		t.Error("zero variance should fail")
	}
	// Network noise drives r toward 1.
	r2, err := RWithNetwork(2.58e-11, 4.9e-11, []float64{4.8e-9})
	if err != nil {
		t.Fatal(err)
	}
	if r2 >= r || r2 < 1 {
		t.Errorf("network should shrink r toward 1: %v -> %v", r, r2)
	}
	if _, err := RWithNetwork(1, 2, []float64{-1}); err == nil {
		t.Error("negative hop variance should fail")
	}
}

func TestFeatureString(t *testing.T) {
	if FeatureMean.String() != "mean" || FeatureVariance.String() != "variance" ||
		FeatureEntropy.String() != "entropy" || FeatureIQR.String() != "iqr" ||
		Feature(99).String() != "unknown" {
		t.Error("feature names broken")
	}
}

func TestHasTheorem(t *testing.T) {
	for _, f := range []Feature{FeatureMean, FeatureVariance, FeatureEntropy} {
		if !HasTheorem(f) {
			t.Errorf("%v should have a theorem", f)
		}
	}
	if HasTheorem(FeatureIQR) || HasTheorem(Feature(99)) {
		t.Error("IQR/unknown should have no theorem")
	}
	if _, err := DetectionRate(FeatureIQR, 2, 100); err == nil {
		t.Error("IQR dispatch should error")
	}
}

func TestDetectionRateDispatchErrors(t *testing.T) {
	if _, err := DetectionRate(Feature(99), 2, 100); err == nil {
		t.Error("unknown feature should fail")
	}
	if _, err := DetectionRateVariance(2, 1); err == nil {
		t.Error("n=1 should fail for variance")
	}
	if _, err := DetectionRateEntropy(2, 0); err == nil {
		t.Error("n=0 should fail for entropy")
	}
}

func TestRequiredRatioRoundTrip(t *testing.T) {
	for _, feat := range []Feature{FeatureVariance, FeatureEntropy} {
		for _, target := range []float64{0.7, 0.9, 0.99} {
			r, err := RequiredRatio(feat, target, 1000)
			if err != nil {
				t.Fatal(err)
			}
			v, err := DetectionRate(feat, r, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEq(v, target, 1e-6) {
				t.Errorf("%v target %v: round trip gives %v (r=%v)", feat, target, v, r)
			}
		}
	}
}

func TestRequiredRatioUnreachable(t *testing.T) {
	// Variance feature at n=2: v <= 1 - C_Y/(1) and C_Y >= 1/2, so 0.99
	// was reachable? C_Y -> 0.5 as r -> inf, so max v = 0.5 at n=2... any
	// target above 0.5 is unreachable.
	if _, err := RequiredRatio(FeatureVariance, 0.9, 2); err == nil {
		t.Error("variance at n=2 cannot reach 0.9")
	}
	if _, err := RequiredRatio(FeatureVariance, 0.4, 100); err == nil {
		t.Error("target below 0.5 should be rejected")
	}
}

// Design guideline round trip: the solved σ_T caps detection at the
// target.
func TestSigmaTForTarget(t *testing.T) {
	const varL, varH = 2.58e-11, 4.9e-11 // calibrated CIT class variances
	for _, tc := range []struct {
		feat   Feature
		target float64
		n      int
	}{
		{FeatureVariance, 0.6, 2000},
		{FeatureEntropy, 0.6, 2000},
		{FeatureEntropy, 0.55, 10000},
	} {
		sigmaT, err := SigmaTForTarget(tc.feat, tc.target, tc.n, varL, varH)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if sigmaT <= 0 {
			t.Fatalf("%+v: expected positive σ_T, CIT detection should exceed target", tc)
		}
		rAchieved := (varH + sigmaT*sigmaT) / (varL + sigmaT*sigmaT)
		v, err := DetectionRate(tc.feat, rAchieved, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(v, tc.target, 0.01) {
			t.Errorf("%+v: solved σ_T=%v achieves v=%v", tc, sigmaT, v)
		}
	}
}

func TestSigmaTForTargetCITSufficient(t *testing.T) {
	// Tiny sample size: CIT detection via entropy at n=10 with r=1.9 is
	// 1 - 9.79/10 ≈ 0.02 → clamped 0.5; target 0.8 already met by CIT.
	sigmaT, err := SigmaTForTarget(FeatureEntropy, 0.8, 10, 2.58e-11, 4.9e-11)
	if err != nil {
		t.Fatal(err)
	}
	if sigmaT != 0 {
		t.Errorf("σ_T = %v, want 0 (CIT sufficient)", sigmaT)
	}
}

func TestSigmaTForTargetErrors(t *testing.T) {
	if _, err := SigmaTForTarget(FeatureEntropy, 1.0, 100, 1, 2); err == nil {
		t.Error("target 1.0 should fail")
	}
	if _, err := SigmaTForTarget(FeatureEntropy, 0.9, 100, 0, 2); err == nil {
		t.Error("zero variance should fail")
	}
	if _, err := SigmaTForTarget(FeatureEntropy, 0.9, 100, 2, 1); err == nil {
		t.Error("varHigh < varLow should fail")
	}
}

func BenchmarkDetectionRateEntropy(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		v, err := DetectionRateEntropy(1.9, 1000)
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

func BenchmarkSigmaTForTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SigmaTForTarget(FeatureEntropy, 0.6, 2000, 2.58e-11, 4.9e-11); err != nil {
			b.Fatal(err)
		}
	}
}
