// Package dist provides the small numerical toolkit shared by the
// analytic theory, the Bayes classifier and the KDE: the normal
// distribution, the standard normal CDF, bracketing root finding, and
// composite numerical integration. Everything is dependency-free,
// deterministic (pure functions, fixed iteration counts and
// tolerances), and allocation-free.
package dist

import (
	"errors"
	"math"
)

// Normal is the normal distribution N(Mu, Sigma²). The zero value is the
// degenerate point mass at zero; a classifier density needs Sigma > 0.
type Normal struct {
	Mu    float64
	Sigma float64
}

// PDF evaluates the normal density at x.
func (n Normal) PDF(x float64) float64 {
	if !(n.Sigma > 0) {
		if x == n.Mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// LogPDF evaluates log(PDF(x)), -Inf where the density is zero.
func (n Normal) LogPDF(x float64) float64 {
	if !(n.Sigma > 0) {
		if x == n.Mu {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	z := (x - n.Mu) / n.Sigma
	return -0.5*z*z - math.Log(n.Sigma*math.Sqrt(2*math.Pi))
}

// CDF evaluates P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if !(n.Sigma > 0) {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return StdPhi((x - n.Mu) / n.Sigma)
}

// StdPhi is the standard normal CDF Φ(z), evaluated via the complementary
// error function to keep full relative accuracy deep in the left tail.
func StdPhi(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// StdPhiInv returns the z with Φ(z) = p for p in (0, 1), by bisection on
// the monotone CDF; accurate to ~1e-12 in z, which is ample for the
// design-guideline inversions.
func StdPhiInv(p float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, errors.New("dist: StdPhiInv requires p in (0,1)")
	}
	return FindRoot(func(z float64) float64 { return StdPhi(z) - p }, -40, 40, 1e-12)
}

// FindRoot locates a root of f on [lo, hi] by bisection. The function
// must change sign on the interval (NaN values are treated as failures).
// tol is the absolute width at which the bracket is accepted; a
// non-positive tol defaults to a width near machine resolution.
func FindRoot(f func(float64) float64, lo, hi float64, tol float64) (float64, error) {
	if !(hi > lo) {
		return 0, errors.New("dist: FindRoot needs lo < hi")
	}
	flo, fhi := f(lo), f(hi)
	if math.IsNaN(flo) || math.IsNaN(fhi) {
		return 0, errors.New("dist: FindRoot endpoint evaluated to NaN")
	}
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, errors.New("dist: FindRoot interval does not bracket a root")
	}
	if tol <= 0 {
		tol = (hi - lo) * 1e-15
	}
	// 200 halvings exhaust float64 resolution for any finite bracket.
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break
		}
		fm := f(mid)
		if math.IsNaN(fm) {
			return 0, errors.New("dist: FindRoot midpoint evaluated to NaN")
		}
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// Integrate approximates ∫f over [lo, hi] with composite Simpson's rule
// on n subintervals (n is rounded up to the next even count; n >= 2).
// An inverted or empty interval integrates to the signed value as usual.
func Integrate(f func(float64) float64, lo, hi float64, n int) (float64, error) {
	if n < 2 {
		return 0, errors.New("dist: Integrate needs at least two intervals")
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return 0, errors.New("dist: Integrate needs finite bounds")
	}
	if lo == hi {
		return 0, nil
	}
	if n%2 == 1 {
		n++
	}
	h := (hi - lo) / float64(n)
	sum := f(lo) + f(hi)
	for i := 1; i < n; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	v := sum * h / 3
	if math.IsNaN(v) {
		return 0, errors.New("dist: integrand evaluated to NaN")
	}
	return v, nil
}
