package dist

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalPDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if got, want := n.PDF(0), 1/math.Sqrt(2*math.Pi); !almostEq(got, want, 1e-15) {
		t.Errorf("PDF(0) = %v, want %v", got, want)
	}
	// Symmetry and positivity.
	for _, x := range []float64{0.5, 1, 2, 5} {
		if n.PDF(x) != n.PDF(-x) {
			t.Errorf("asymmetric PDF at %v", x)
		}
		if n.PDF(x) <= 0 {
			t.Errorf("PDF(%v) not positive", x)
		}
	}
	// Scale/location: N(3, 2²) at 3 is half the standard peak.
	m := Normal{Mu: 3, Sigma: 2}
	if got, want := m.PDF(3), n.PDF(0)/2; !almostEq(got, want, 1e-15) {
		t.Errorf("scaled peak = %v, want %v", got, want)
	}
}

func TestNormalLogPDF(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 0.5}
	for _, x := range []float64{-2, 0, 1, 3} {
		if got, want := n.LogPDF(x), math.Log(n.PDF(x)); !almostEq(got, want, 1e-12) {
			t.Errorf("LogPDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Far tail: LogPDF stays finite where PDF underflows to zero.
	if lp := n.LogPDF(1e3); math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Errorf("LogPDF(1e3) = %v", lp)
	}
}

func TestNormalCDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if got := n.CDF(0); !almostEq(got, 0.5, 1e-15) {
		t.Errorf("CDF(0) = %v", got)
	}
	// Known value: Φ(1.96) ≈ 0.9750021048517795.
	if got := n.CDF(1.96); !almostEq(got, 0.9750021048517795, 1e-12) {
		t.Errorf("CDF(1.96) = %v", got)
	}
	// Complement symmetry.
	for _, z := range []float64{0.3, 1, 2.5} {
		if got, want := n.CDF(-z), 1-n.CDF(z); !almostEq(got, want, 1e-14) {
			t.Errorf("CDF(-%v) = %v, want %v", z, got, want)
		}
	}
}

func TestStdPhi(t *testing.T) {
	if got := StdPhi(0); got != 0.5 {
		t.Errorf("Phi(0) = %v", got)
	}
	// Deep left tail keeps relative accuracy (erfc-based).
	if got := StdPhi(-10); !(got > 0) || got > 1e-22 {
		t.Errorf("Phi(-10) = %v", got)
	}
	if got := StdPhi(10); got != 1 && !(1-got < 1e-20) {
		t.Errorf("Phi(10) = %v", got)
	}
}

func TestStdPhiInv(t *testing.T) {
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		z, err := StdPhiInv(p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(StdPhi(z), p, 1e-10) {
			t.Errorf("Phi(PhiInv(%v)) = %v", p, StdPhi(z))
		}
	}
	if _, err := StdPhiInv(0); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := StdPhiInv(1); err == nil {
		t.Error("p=1 should fail")
	}
}

func TestFindRoot(t *testing.T) {
	// sqrt(2) via x² − 2.
	root, err := FindRoot(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(root, math.Sqrt2, 1e-12) {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
	// Exact hit at an endpoint.
	root, err = FindRoot(func(x float64) float64 { return x }, 0, 1, 1e-12)
	if err != nil || root != 0 {
		t.Errorf("endpoint root = %v, err %v", root, err)
	}
	// Non-bracketing interval fails.
	if _, err := FindRoot(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err == nil {
		t.Error("non-bracketing interval should fail")
	}
	// Inverted interval fails.
	if _, err := FindRoot(func(x float64) float64 { return x }, 1, -1, 1e-9); err == nil {
		t.Error("inverted interval should fail")
	}
	// NaN endpoint fails.
	if _, err := FindRoot(func(x float64) float64 { return math.NaN() }, 0, 1, 1e-9); err == nil {
		t.Error("NaN endpoint should fail")
	}
}

func TestIntegrate(t *testing.T) {
	// ∫₀¹ x² dx = 1/3, exact for Simpson on polynomials up to cubic.
	v, err := Integrate(func(x float64) float64 { return x * x }, 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 1.0/3, 1e-14) {
		t.Errorf("integral = %v, want 1/3", v)
	}
	// Standard normal integrates to ~1 over ±9.
	n := Normal{Sigma: 1}
	v, err = Integrate(n.PDF, -9, 9, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 1, 1e-9) {
		t.Errorf("normal integral = %v", v)
	}
	// Odd n is rounded up, not rejected.
	v, err = Integrate(func(x float64) float64 { return x }, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 2, 1e-13) {
		t.Errorf("odd-n integral = %v, want 2", v)
	}
	// Degenerate and invalid inputs.
	if v, err := Integrate(n.PDF, 1, 1, 100); err != nil || v != 0 {
		t.Errorf("empty interval: %v, %v", v, err)
	}
	if _, err := Integrate(n.PDF, 0, 1, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := Integrate(n.PDF, 0, math.Inf(1), 100); err == nil {
		t.Error("infinite bound should fail")
	}
}
