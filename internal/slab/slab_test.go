package slab

import "testing"

func TestGrowReuse(t *testing.T) {
	s := New(8)
	if s.Len() != 0 {
		t.Fatalf("new slab: Len = %d, want 0", s.Len())
	}
	s.Grow(8)
	if s.Len() != 8 {
		t.Fatalf("after Grow(8): Len = %d, want 8", s.Len())
	}
	s.Times[0] = 1.5
	s.Flags[0] = FlagDummy
	p := &s.Times[0]
	s.Grow(4)
	if s.Len() != 4 {
		t.Fatalf("after Grow(4): Len = %d, want 4", s.Len())
	}
	if &s.Times[0] != p {
		t.Fatal("Grow within capacity reallocated")
	}
	s.Grow(32)
	if s.Len() != 32 {
		t.Fatalf("after Grow(32): Len = %d, want 32", s.Len())
	}
	if len(s.Flags) != 32 {
		t.Fatalf("Flags length = %d, want 32", len(s.Flags))
	}
	s.Times[31] = 2.0
	s.Flags[31] = FlagDummy
}

func TestReset(t *testing.T) {
	s := New(4)
	s.Grow(4)
	s.Times[2] = 9
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("after Reset: Len = %d, want 0", s.Len())
	}
	s.Grow(4)
	if s.Times[2] != 9 {
		t.Fatal("Reset must not clear backing storage")
	}
}
