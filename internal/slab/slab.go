// Package slab defines the shared batched-event representation of the
// simulator: a struct-of-arrays block of packet events — flat float64
// timestamps plus compact per-packet flags — generated, transformed and
// consumed a few thousand events per call instead of one event per
// virtual call.
//
// The slab layout is deliberately minimal. Timestamps are what every
// layer (gateway, routers, impairments, taps, feature extractors)
// computes on, so they live in a dense []float64 that vectorizes and
// bounds-check-eliminates well; per-packet metadata the adversary never
// sees (today: the dummy/payload bit at the gateway) rides in a parallel
// []uint8 so the hot timestamp loops stay untouched by it.
//
// Determinism contract: filling a slab of n events draws exactly the
// variates that n single-event calls would draw, in the same order —
// batching changes the call granularity, never the stream. The
// layer-level NextBatch implementations (traffic.BatchSource,
// netem.BatchStream, gateway.Gateway.NextSlab) are property-tested
// against their pull-driven counterparts for bit equality.
package slab

// DefaultLen is the default number of events per slab: large enough to
// amortize per-call overhead to noise, small enough that a slab of
// timestamps (32 KiB) stays cache-resident through a layer's transform.
const DefaultLen = 4096

// Per-packet flag bits.
const (
	// FlagDummy marks a padding dummy (no payload inside); the gateway
	// sets it, ground-truth consumers read it, the adversary never does.
	FlagDummy uint8 = 1 << 0
)

// Slab is one struct-of-arrays block of packet events. Times and Flags
// are parallel: Flags[i] describes the packet at Times[i]. Flags may be
// nil when no producer in the chain emits metadata.
type Slab struct {
	Times []float64
	Flags []uint8
}

// New returns a slab with capacity n and length 0.
func New(n int) *Slab {
	return &Slab{
		Times: make([]float64, 0, n),
		Flags: make([]uint8, 0, n),
	}
}

// Len returns the number of events currently in the slab.
func (s *Slab) Len() int { return len(s.Times) }

// Reset empties the slab, keeping capacity.
func (s *Slab) Reset() {
	s.Times = s.Times[:0]
	s.Flags = s.Flags[:0]
}

// Grow sets the slab's length to n (n must not exceed the capacity it
// was built with unless reallocation is acceptable), so producers can
// fill s.Times[:n]/s.Flags[:n] in place.
func (s *Slab) Grow(n int) {
	if cap(s.Times) < n {
		s.Times = make([]float64, n)
		s.Flags = make([]uint8, n)
		return
	}
	s.Times = s.Times[:n]
	s.Flags = s.Flags[:n]
}
