package population

import "sort"

// sparseVec is a sorted-coordinate sparse vector over a recipient space:
// parallel (index, value) slices with idx strictly ascending. The SDA
// estimators and the flow-correlation fingerprints accumulate into
// these instead of dense length-R arrays, so a million-recipient space
// costs each accumulator only its support — for an SDA target that is
// the recipients actually delivered in observed rounds, for a flow
// fingerprint the non-empty rate bins.
//
// All values are exact: the estimator entries are event counts (integer-
// valued float64s, exact below 2^53), so sparse accumulation is not an
// approximation — every read agrees bit-for-bit with the dense array it
// replaces, with absent coordinates reading as exactly 0.
type sparseVec struct {
	idx []int32
	val []float64
}

// find locates index i: its position and whether it is present; when
// absent, the position is the insertion point keeping idx sorted.
func (v *sparseVec) find(i int32) (int, bool) {
	p := sort.Search(len(v.idx), func(k int) bool { return v.idx[k] >= i })
	return p, p < len(v.idx) && v.idx[p] == i
}

// get reads coordinate i (0 when absent).
func (v *sparseVec) get(i int32) float64 {
	if p, ok := v.find(i); ok {
		return v.val[p]
	}
	return 0
}

// add accumulates x into coordinate i, inserting it if absent. Inserts
// are O(support); once an accumulator's support has saturated (every
// recipient it will ever see has appeared), add is a binary search plus
// one in-place update and allocates nothing.
func (v *sparseVec) add(i int32, x float64) {
	p, ok := v.find(i)
	if ok {
		v.val[p] += x
		return
	}
	v.idx = append(v.idx, 0)
	v.val = append(v.val, 0)
	copy(v.idx[p+1:], v.idx[p:])
	copy(v.val[p+1:], v.val[p:])
	v.idx[p] = i
	v.val[p] = x
}

// nnz returns the support size.
func (v *sparseVec) nnz() int { return len(v.idx) }

// setPairs replaces the vector's contents with the given coordinate
// pairs (already validated: equal lengths, idx strictly ascending).
func (v *sparseVec) setPairs(idx []int32, val []float64) {
	v.idx = append(v.idx[:0], idx...)
	v.val = append(v.val[:0], val...)
}

// compress replaces the vector's contents with dense's non-zero
// coordinates.
func (v *sparseVec) compress(dense []float64) {
	v.idx = v.idx[:0]
	v.val = v.val[:0]
	for i, x := range dense {
		if x != 0 {
			v.idx = append(v.idx, int32(i))
			v.val = append(v.val, x)
		}
	}
}

// scatter materializes the vector into the dense slice (zeroing it
// first): the exact inverse of compress.
func (v *sparseVec) scatter(dense []float64) {
	for i := range dense {
		dense[i] = 0
	}
	for k, i := range v.idx {
		dense[i] = v.val[k]
	}
}
