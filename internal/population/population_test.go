package population

import (
	"testing"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// testUsers builds a deterministic heterogeneous population: two rate
// classes, per-user streams seeded by user index.
func testUsers(t *testing.T, n int, cover bool) ([]User, int) {
	t.Helper()
	const recipients = 40
	users := make([]User, n)
	for u := 0; u < n; u++ {
		master := xrand.New(uint64(1000 + u))
		rate := 10 + float64(u%2)*30
		msgs, err := traffic.NewPoisson(rate, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		var cov traffic.Source
		if cover {
			cov, err = traffic.NewPoisson(2*rate, master.Split())
			if err != nil {
				t.Fatal(err)
			}
		}
		prng := master.Split()
		prof, err := NewProfile(recipients, 3, 0.7, prng)
		if err != nil {
			t.Fatal(err)
		}
		users[u] = User{Class: u % 2, Messages: msgs, Cover: cov, Profile: prof, RNG: prng}
	}
	return users, recipients
}

func TestProfileDraws(t *testing.T) {
	rng := xrand.New(42)
	p, err := NewProfile(50, 4, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	cs := p.Contacts()
	if len(cs) != 4 {
		t.Fatalf("got %d contacts, want 4", len(cs))
	}
	seen := map[int32]bool{}
	for _, c := range cs {
		if c < 0 || c >= 50 {
			t.Fatalf("contact %d out of range", c)
		}
		if seen[c] {
			t.Fatalf("duplicate contact %d", c)
		}
		seen[c] = true
	}
	// The heaviest contact must dominate the draws, and the contact set
	// must receive about the configured mass.
	counts := map[int32]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[p.Draw(rng)]++
	}
	onContacts := 0
	for _, c := range cs {
		onContacts += counts[c]
	}
	frac := float64(onContacts) / draws
	// 0.8 on contacts plus the uniform background's 4/50 of the rest.
	want := 0.8 + 0.2*4.0/50
	if frac < want-0.02 || frac > want+0.02 {
		t.Errorf("contact mass = %.3f, want ≈ %.3f", frac, want)
	}
	for i := 1; i < len(cs); i++ {
		if counts[cs[0]] <= counts[cs[i]] {
			t.Errorf("contact 0 (%d draws) should dominate contact %d (%d draws)",
				counts[cs[0]], i, counts[cs[i]])
		}
	}
}

func TestProfileValidation(t *testing.T) {
	rng := xrand.New(1)
	cases := []struct {
		recipients, contacts int
		weight               float64
	}{
		{1, 1, 0.5},
		{10, 0, 0.5},
		{10, 6, 0.5}, // more than recipients/2
		{10, 2, 0},
		{10, 2, 1.1},
	}
	for _, c := range cases {
		if _, err := NewProfile(c.recipients, c.contacts, c.weight, rng); err == nil {
			t.Errorf("NewProfile(%d, %d, %v) should fail", c.recipients, c.contacts, c.weight)
		}
	}
	if _, err := NewProfile(10, 2, 0.5, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

// The merged round stream must be identical at any generation width:
// every user's events are a pure function of its own streams, and the
// merge is a deterministic reduction.
func TestEngineWorkerInvariance(t *testing.T) {
	const rounds = 400
	const batch = 8
	run := func(workers int) []Round {
		users, recipients := testUsers(t, 24, true)
		e, err := NewEngine(users, recipients)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkers(workers)
		out := make([]Round, rounds)
		for i := range out {
			var r Round
			if err := e.NextRound(batch, &r); err != nil {
				t.Fatal(err)
			}
			out[i] = Round{
				Users: append([]int32(nil), r.Users...),
				Rcpts: append([]int32(nil), r.Rcpts...),
				Dummy: append([]bool(nil), r.Dummy...),
			}
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 4, 0} {
		got := run(w)
		for i := range ref {
			for j := range ref[i].Users {
				if got[i].Users[j] != ref[i].Users[j] ||
					got[i].Rcpts[j] != ref[i].Rcpts[j] ||
					got[i].Dummy[j] != ref[i].Dummy[j] {
					t.Fatalf("workers=%d: round %d message %d differs", w, i, j)
				}
			}
		}
	}
}

// The round loop — NextRound plus the SDA estimator update — must not
// allocate in steady state (single-worker generation exercises the
// sequential refill path; parallel refills allocate only goroutine
// bookkeeping per slab, never per round).
func TestRoundLoopAllocFree(t *testing.T) {
	users, recipients := testUsers(t, 16, true)
	e, err := NewEngine(users, recipients)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkers(1)
	cfg := DisclosureConfig{Batch: 8, Targets: []int{0, 5, 10}}.withDefaults(len(users))
	d, err := newDisclosure(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var r Round
	// Warm up buffers (slab, queue, round slices) past their growth.
	for i := 0; i < 500; i++ {
		if err := e.NextRound(8, &r); err != nil {
			t.Fatal(err)
		}
		d.observe(&r)
	}
	d.checkpoint(500)
	avg := testing.AllocsPerRun(300, func() {
		if err := e.NextRound(8, &r); err != nil {
			t.Fatal(err)
		}
		d.observe(&r)
	})
	if avg > 0.05 {
		t.Errorf("round loop allocates %.3f objects/round, want 0", avg)
	}
	// Checkpoints reuse the estimate and top-k scratch.
	avg = testing.AllocsPerRun(50, func() {
		d.checkpoint(1000)
	})
	if avg > 0 {
		t.Errorf("checkpoint allocates %.3f objects, want 0", avg)
	}
}

func TestEngineValidation(t *testing.T) {
	users, recipients := testUsers(t, 4, false)
	if _, err := NewEngine(users[:1], recipients); err == nil {
		t.Error("single user should fail")
	}
	if _, err := NewEngine(users, 1); err == nil {
		t.Error("single recipient should fail")
	}
	broken := make([]User, len(users))
	copy(broken, users)
	broken[2].Messages = nil
	if _, err := NewEngine(broken, recipients); err == nil {
		t.Error("nil message source should fail")
	}
	e, err := NewEngine(users, recipients)
	if err != nil {
		t.Fatal(err)
	}
	var r Round
	if err := e.NextRound(0, &r); err == nil {
		t.Error("zero batch should fail")
	}
}
