package population

import (
	"errors"
	"fmt"
	"sort"
)

// Disclosure estimators (estimator.go): the attack side of the SDA arms
// race. The original round-contrast estimator (Danezis' SDA) survives as
// EstimatorClassic; the refinements of Emamdoost et al. ("Statistical
// Disclosure: Improved, Extended, and Resisted") add two stronger
// variants behind a common interface:
//
//   - classic: difference of conditional mean egress vectors between
//     rounds the target sent in and rounds it did not — the binary
//     presence contrast;
//   - least-squares: regress each round's egress vector on the target's
//     actual send count a_i and the background count b_i, solving the
//     per-recipient 2×2 normal equations in closed form. Using counts
//     instead of presence extracts more signal per round, so disclosure
//     needs fewer rounds;
//   - ML: an iterative EM estimator for the mixture model "each of a
//     round's n_i messages is the target's with probability a_i/n_i and
//     draws its recipient from p, else from the background q". Rounds
//     enter the estimator only through the sufficient statistics
//     grouped by (a_i, n_i) — the per-message posterior depends on a
//     round only through that pair — so memory is bounded by the
//     observed support times the distinct (a, n) keys, never by the
//     round count.
//
// Every estimator accumulates sparsely (sparse.go) and exposes the same
// contract to the shared disclosure harness: an ascending candidate
// support that contains every strictly positive estimate coordinate,
// and a pointwise estimate. That contract is exactly what topK and the
// anonymity entropy need to reproduce their dense formulations
// bit-for-bit (sda_ref_test.go extends the dense-reference property to
// the new accumulators).

// EstimatorKind selects the statistical-disclosure estimator.
type EstimatorKind int

const (
	// EstimatorClassic is the original round-contrast SDA: the clamped
	// difference of conditional mean egress vectors.
	EstimatorClassic EstimatorKind = iota
	// EstimatorLeastSquares solves the per-recipient least-squares
	// system over (target count, background count) regressors.
	EstimatorLeastSquares
	// EstimatorML runs the iterative EM mixture estimator over grouped
	// sufficient statistics.
	EstimatorML
)

// String names the kind for tables and errors.
func (k EstimatorKind) String() string {
	switch k {
	case EstimatorClassic:
		return "classic"
	case EstimatorLeastSquares:
		return "least-squares"
	case EstimatorML:
		return "ml"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(k))
	}
}

// validEstimator reports whether k names an estimator.
func validEstimator(k EstimatorKind) bool {
	return k >= EstimatorClassic && k <= EstimatorML
}

// estimator is one target's running disclosure estimator. The contract
// the shared harness (topK, anonymity, checkpoint) relies on:
//
//   - observe folds one round; sent/cnt are the target's presence and
//     send count in it (the ingress view). Rounds masked by the
//     churn-aware filter never reach observe.
//   - ready reports whether a pointwise estimate exists, caching
//     whatever reciprocals estimateAt needs; it must be called before
//     estimateAt and is idempotent between observes.
//   - support returns the ascending coordinate set containing every
//     strictly positive estimate; coordinates outside it evaluate to
//     exactly 0.
//   - snapshot/restore serialize the accumulators into the target's
//     slot of a disclosure checkpoint.
type estimator interface {
	observe(r *Round, sent bool, cnt int)
	ready() bool
	support() []int32
	estimateAt(i int32) float64
	snapshot(ts *TargetEstimatorState)
	restore(ts *TargetEstimatorState, nrcpt int) error
}

// newEstimator builds the estimator for one target.
func newEstimator(k EstimatorKind) estimator {
	switch k {
	case EstimatorLeastSquares:
		return &lsEstimator{}
	case EstimatorML:
		return &mlEstimator{}
	default:
		return &classicEstimator{}
	}
}

// classicEstimator is the original round-contrast estimator, extracted
// verbatim from the pre-interface targetState: sparse conditional-sum
// accumulators and the clamped difference of means. Every float
// operation and its order are unchanged, so tables produced through the
// interface are byte-identical to the pre-refactor ones.
type classicEstimator struct {
	sumWith    sparseVec
	sumWithout sparseVec
	nWith      int
	nWithout   int
	iw, iwo    float64 // 1/nWith, 1/nWithout, refreshed by ready
}

func (c *classicEstimator) observe(r *Round, sent bool, _ int) {
	dst := &c.sumWithout
	if sent {
		dst = &c.sumWith
		c.nWith++
	} else {
		c.nWithout++
	}
	for _, rc := range r.Rcpts {
		dst.add(rc, 1)
	}
}

func (c *classicEstimator) ready() bool {
	if c.nWith == 0 || c.nWithout == 0 {
		return false
	}
	c.iw, c.iwo = 1/float64(c.nWith), 1/float64(c.nWithout)
	return true
}

func (c *classicEstimator) support() []int32 { return c.sumWith.idx }

// estimateAt evaluates the clamped difference of conditional egress
// means at coordinate i — the exact float expression the dense
// estimator computed per entry. Coordinates outside sumWith's support
// evaluate to exactly 0 (the difference is ≤ 0 there and clamps).
func (c *classicEstimator) estimateAt(i int32) float64 {
	v := c.sumWith.get(i)*c.iw - c.sumWithout.get(i)*c.iwo
	if v < 0 {
		v = 0
	}
	return v
}

func (c *classicEstimator) snapshot(ts *TargetEstimatorState) {
	ts.SumWith = SparseCounts{
		Idx: append([]int32(nil), c.sumWith.idx...),
		Val: append([]float64(nil), c.sumWith.val...),
	}
	ts.SumWithout = SparseCounts{
		Idx: append([]int32(nil), c.sumWithout.idx...),
		Val: append([]float64(nil), c.sumWithout.val...),
	}
	ts.NWith = c.nWith
	ts.NWithout = c.nWithout
}

func (c *classicEstimator) restore(ts *TargetEstimatorState, nrcpt int) error {
	if err := ts.SumWith.validate("sum_with", nrcpt); err != nil {
		return err
	}
	if err := ts.SumWithout.validate("sum_without", nrcpt); err != nil {
		return err
	}
	if ts.NWith < 0 || ts.NWithout < 0 {
		return errors.New("population: snapshot has negative round counts")
	}
	c.sumWith.setPairs(ts.SumWith.Idx, ts.SumWith.Val)
	c.sumWithout.setPairs(ts.SumWithout.Idx, ts.SumWithout.Val)
	c.nWith = ts.NWith
	c.nWithout = ts.NWithout
	return nil
}

// lsEstimator is the least-squares SDA: model round i's egress count at
// recipient r as y_i[r] ≈ a_i·p[r] + b_i·q[r], where a_i is the
// target's send count and b_i everyone else's, and solve the normal
// equations
//
//	[Saa Sab] [p[r]]   [Say[r]]
//	[Sab Sbb] [q[r]] = [Sby[r]]
//
// per recipient. The three scalar moments are shared across recipients;
// the two right-hand-side vectors accumulate sparsely: Say[r] gains a_i
// per delivery to r (only in rounds the target sent, so its support —
// the only place a positive estimate can live — stays as small as the
// classic estimator's), Sby[r] gains b_i per delivery. All accumulator
// values are integer-valued float64s, exact below 2^53, so the sparse
// accumulation agrees bit-for-bit with a dense mirror.
type lsEstimator struct {
	saa, sab, sbb float64
	say, sby      sparseVec
	nWith         int
	nWithout      int
	inv           float64 // 1/det, refreshed by ready
}

func (l *lsEstimator) observe(r *Round, sent bool, cnt int) {
	a := float64(cnt)
	b := float64(len(r.Rcpts) - cnt)
	l.saa += a * a
	l.sab += a * b
	l.sbb += b * b
	if sent {
		l.nWith++
	} else {
		l.nWithout++
	}
	if a > 0 {
		for _, rc := range r.Rcpts {
			l.say.add(rc, a)
		}
	}
	if b > 0 {
		for _, rc := range r.Rcpts {
			l.sby.add(rc, b)
		}
	}
}

// ready requires a non-degenerate system: det = Saa·Sbb − Sab² is
// positive once the observed (a_i, b_i) pairs are not all collinear —
// in practice one round with and one without the target.
func (l *lsEstimator) ready() bool {
	det := l.saa*l.sbb - l.sab*l.sab
	if !(det > 0) {
		return false
	}
	l.inv = 1 / det
	return true
}

func (l *lsEstimator) support() []int32 { return l.say.idx }

// estimateAt solves the 2×2 system at coordinate i by Cramer's rule,
// clamped at 0. A positive solution needs Say[i] > 0 (Sbb > 0 whenever
// det > 0, and Sab, Sby are non-negative), so every positive estimate
// lies inside say's support.
func (l *lsEstimator) estimateAt(i int32) float64 {
	v := (l.sbb*l.say.get(i) - l.sab*l.sby.get(i)) * l.inv
	if v < 0 {
		v = 0
	}
	return v
}

func (l *lsEstimator) snapshot(ts *TargetEstimatorState) {
	ts.NWith = l.nWith
	ts.NWithout = l.nWithout
	ts.LS = &LSEstimatorState{
		Saa: l.saa,
		Sab: l.sab,
		Sbb: l.sbb,
		Say: SparseCounts{
			Idx: append([]int32(nil), l.say.idx...),
			Val: append([]float64(nil), l.say.val...),
		},
		Sby: SparseCounts{
			Idx: append([]int32(nil), l.sby.idx...),
			Val: append([]float64(nil), l.sby.val...),
		},
	}
}

func (l *lsEstimator) restore(ts *TargetEstimatorState, nrcpt int) error {
	if ts.LS == nil {
		return errors.New("population: snapshot target has no least-squares state")
	}
	if err := ts.LS.Say.validate("ls say", nrcpt); err != nil {
		return err
	}
	if err := ts.LS.Sby.validate("ls sby", nrcpt); err != nil {
		return err
	}
	if ts.LS.Saa < 0 || ts.LS.Sbb < 0 || ts.LS.Sab < 0 {
		return errors.New("population: snapshot least-squares moments must be non-negative")
	}
	if ts.NWith < 0 || ts.NWithout < 0 {
		return errors.New("population: snapshot has negative round counts")
	}
	l.saa, l.sab, l.sbb = ts.LS.Saa, ts.LS.Sab, ts.LS.Sbb
	l.say.setPairs(ts.LS.Say.Idx, ts.LS.Say.Val)
	l.sby.setPairs(ts.LS.Sby.Idx, ts.LS.Sby.Val)
	l.nWith = ts.NWith
	l.nWithout = ts.NWithout
	return nil
}

// mlEMIters is the fixed EM iteration budget per refresh. The estimate
// is recomputed from scratch at every dirty ready() call — never warm-
// started — so a resumed run's estimate is a pure function of the
// accumulated sufficient statistics, not of the checkpoint schedule.
const mlEMIters = 12

// mlGroup is one (a, n) equivalence class of observed rounds: c rounds
// in which the target sent a of the n messages, with their summed
// egress counts. Grouping is exact — the mixture model's per-message
// posterior depends on a round only through (a, n) — so the EM estimate
// from the groups equals the EM estimate from the full round list.
type mlGroup struct {
	a, n int32
	c    float64
	y    sparseVec
}

// mlEstimator is the iterative ML (EM) estimator for the round mixture
// model. Memory is O(distinct (a, n) keys × observed support); the
// estimate p (and the background q it is jointly fitted with) is
// refreshed lazily at checkpoint boundaries.
type mlEstimator struct {
	groups   []mlGroup // ascending by (a, n)
	nWith    int
	nWithout int
	dirty    bool
	p        sparseVec // target estimate over the with-round support
	q        sparseVec // background estimate over the full support
	tp, tq   []float64 // M-step scratch aligned with p.idx / q.idx
}

// group locates or inserts the (a, n) group, keeping the slice sorted.
func (m *mlEstimator) group(a, n int32) *mlGroup {
	lo := sort.Search(len(m.groups), func(i int) bool {
		g := &m.groups[i]
		return g.a > a || (g.a == a && g.n >= n)
	})
	if lo < len(m.groups) && m.groups[lo].a == a && m.groups[lo].n == n {
		return &m.groups[lo]
	}
	m.groups = append(m.groups, mlGroup{})
	copy(m.groups[lo+1:], m.groups[lo:])
	m.groups[lo] = mlGroup{a: a, n: n}
	return &m.groups[lo]
}

func (m *mlEstimator) observe(r *Round, sent bool, cnt int) {
	g := m.group(int32(cnt), int32(len(r.Rcpts)))
	g.c++
	for _, rc := range r.Rcpts {
		g.y.add(rc, 1)
	}
	if sent {
		m.nWith++
	} else {
		m.nWithout++
	}
	m.dirty = true
}

func (m *mlEstimator) ready() bool {
	if m.nWith == 0 || m.nWithout == 0 {
		return false
	}
	if m.dirty {
		m.refresh()
		m.dirty = false
	}
	return true
}

// refresh recomputes the EM estimate from the grouped statistics:
// initialize p from the with-round deliveries and q from all
// deliveries, then run mlEMIters E+M sweeps. Initializing q from every
// round keeps q positive on the whole observed support, so every
// E-step denominator a·p[r] + b·q[r] is positive wherever y[r] > 0.
func (m *mlEstimator) refresh() {
	m.p.idx, m.p.val = m.p.idx[:0], m.p.val[:0]
	m.q.idx, m.q.val = m.q.idx[:0], m.q.val[:0]
	for gi := range m.groups {
		g := &m.groups[gi]
		for k, r := range g.y.idx {
			m.q.add(r, g.y.val[k])
			if g.a > 0 {
				m.p.add(r, g.y.val[k])
			}
		}
	}
	normalizeVec(&m.p)
	normalizeVec(&m.q)
	if len(m.p.idx) == 0 || len(m.q.idx) == 0 {
		return
	}
	m.tp = growZero(m.tp, len(m.p.idx))
	m.tq = growZero(m.tq, len(m.q.idx))
	for iter := 0; iter < mlEMIters; iter++ {
		for i := range m.tp {
			m.tp[i] = 0
		}
		for i := range m.tq {
			m.tq[i] = 0
		}
		for gi := range m.groups {
			g := &m.groups[gi]
			a, b := float64(g.a), float64(g.n-g.a)
			for k, r := range g.y.idx {
				y := g.y.val[k]
				qi, _ := m.q.find(r) // q spans the full support
				var pv float64
				pi, pok := m.p.find(r)
				if pok {
					pv = m.p.val[pi]
				}
				den := a*pv + b*m.q.val[qi]
				if den <= 0 {
					continue
				}
				// E-step: expected target-origin mass of the y deliveries.
				w := a * pv / den
				if pok {
					m.tp[pi] += y * w
				}
				m.tq[qi] += y * (1 - w)
			}
		}
		// M-step: renormalize both components.
		var sp, sq float64
		for _, v := range m.tp {
			sp += v
		}
		for _, v := range m.tq {
			sq += v
		}
		if sp > 0 {
			for i := range m.tp {
				m.p.val[i] = m.tp[i] / sp
			}
		}
		if sq > 0 {
			for i := range m.tq {
				m.q.val[i] = m.tq[i] / sq
			}
		}
	}
}

func (m *mlEstimator) support() []int32 { return m.p.idx }

func (m *mlEstimator) estimateAt(i int32) float64 { return m.p.get(i) }

func (m *mlEstimator) snapshot(ts *TargetEstimatorState) {
	ts.NWith = m.nWith
	ts.NWithout = m.nWithout
	st := &MLEstimatorState{Groups: make([]MLGroupState, len(m.groups))}
	for gi := range m.groups {
		g := &m.groups[gi]
		st.Groups[gi] = MLGroupState{
			A: g.a,
			N: g.n,
			C: g.c,
			Y: SparseCounts{
				Idx: append([]int32(nil), g.y.idx...),
				Val: append([]float64(nil), g.y.val...),
			},
		}
	}
	ts.ML = st
}

func (m *mlEstimator) restore(ts *TargetEstimatorState, nrcpt int) error {
	if ts.ML == nil {
		return errors.New("population: snapshot target has no ML state")
	}
	if ts.NWith < 0 || ts.NWithout < 0 {
		return errors.New("population: snapshot has negative round counts")
	}
	m.groups = m.groups[:0]
	for gi := range ts.ML.Groups {
		gs := &ts.ML.Groups[gi]
		if gs.A < 0 || gs.N < 1 || gs.A > gs.N || gs.C < 1 {
			return fmt.Errorf("population: snapshot ML group %d has invalid (a=%d, n=%d, c=%v)",
				gi, gs.A, gs.N, gs.C)
		}
		if gi > 0 {
			prev := &ts.ML.Groups[gi-1]
			if prev.A > gs.A || (prev.A == gs.A && prev.N >= gs.N) {
				return fmt.Errorf("population: snapshot ML groups not ascending at index %d", gi)
			}
		}
		if err := gs.Y.validate(fmt.Sprintf("ml group %d", gi), nrcpt); err != nil {
			return err
		}
		g := mlGroup{a: gs.A, n: gs.N, c: gs.C}
		g.y.setPairs(gs.Y.Idx, gs.Y.Val)
		m.groups = append(m.groups, g)
	}
	m.nWith = ts.NWith
	m.nWithout = ts.NWithout
	m.dirty = true
	return nil
}

// normalizeVec scales a non-negative sparse vector to unit sum in place
// (no-op on a zero vector).
func normalizeVec(v *sparseVec) {
	var total float64
	for _, x := range v.val {
		total += x
	}
	if total <= 0 {
		return
	}
	inv := 1 / total
	for i := range v.val {
		v.val[i] *= inv
	}
}

// growZero returns s resized to n elements without preserving contents.
func growZero(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
