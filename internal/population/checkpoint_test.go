package population

import (
	"encoding/json"
	"reflect"
	"testing"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// churnedUsers builds the deterministic test population with a private
// presence schedule per user (mean 50 ms up / 50 ms down, so a short run
// crosses many churn cycles).
func churnedUsers(t *testing.T, n int) ([]User, int) {
	t.Helper()
	users, recipients := testUsers(t, n, true)
	for u := range users {
		sched, err := traffic.NewOnOffSchedule(0.05, 0.05, xrand.New(uint64(9000+u)))
		if err != nil {
			t.Fatal(err)
		}
		users[u].Presence = sched
	}
	return users, recipients
}

func buildEngine(t *testing.T, n int, churn bool) *Engine {
	t.Helper()
	var (
		users      []User
		recipients int
	)
	if churn {
		users, recipients = churnedUsers(t, n)
	} else {
		users, recipients = testUsers(t, n, true)
	}
	e, err := NewEngine(users, recipients)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkers(1)
	return e
}

// TestChurnedRoundsOnlyOnlineSenders: every message in a round was sent
// while its sender was online — churn gates arrivals at generation.
func TestChurnedRoundsOnlyOnlineSenders(t *testing.T) {
	e := buildEngine(t, 12, true)
	// Fresh schedules from the same seeds to audit independently.
	var r Round
	total := 0
	for i := 0; i < 200; i++ {
		if err := e.NextRound(8, &r); err != nil {
			t.Fatal(err)
		}
		for j, u := range r.Users {
			check, err := traffic.NewOnOffSchedule(0.05, 0.05, xrand.New(uint64(9000+int(u))))
			if err != nil {
				t.Fatal(err)
			}
			if !check.UpAt(r.Times[j]) {
				t.Fatalf("round %d: user %d sent at %v while offline", i, u, r.Times[j])
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no messages observed")
	}
}

// TestChurnPreservesRecipientStreams: with recipient draws consumed for
// every generated arrival (present or not), the surviving messages of a
// churned population carry the same (user, arrival-index) -> recipient
// assignment as the static population — churn perturbs which messages
// exist, never how survivors draw.
func TestChurnPreservesRecipientStreams(t *testing.T) {
	type msg struct {
		t    float64
		rcpt int32
	}
	collect := func(churn bool) map[int32][]msg {
		e := buildEngine(t, 8, churn)
		var r Round
		out := make(map[int32][]msg)
		for i := 0; i < 300; i++ {
			if err := e.NextRound(8, &r); err != nil {
				t.Fatal(err)
			}
			for j, u := range r.Users {
				out[u] = append(out[u], msg{t: r.Times[j], rcpt: r.Rcpts[j]})
			}
		}
		return out
	}
	static := collect(false)
	churned := collect(true)
	matched := 0
	for u, msgs := range churned {
		// Every surviving churned message must appear in the static run
		// with the identical (time, recipient) pair: same arrival, same
		// draw, only filtered.
		si := 0
		for _, m := range msgs {
			for si < len(static[u]) && static[u][si].t < m.t {
				si++
			}
			if si >= len(static[u]) || static[u][si].t != m.t {
				// The static run's horizon may simply end earlier in round
				// count; stop matching this user at the boundary.
				break
			}
			if static[u][si].rcpt != m.rcpt {
				t.Fatalf("user %d arrival at %v drew recipient %d churned vs %d static",
					u, m.t, m.rcpt, static[u][si].rcpt)
			}
			matched++
		}
	}
	if matched < 100 {
		t.Fatalf("only %d churned messages matched against the static run", matched)
	}
}

// TestEngineSnapshotRestore: advance, snapshot through JSON, restore on a
// twin, and demand identical continuations.
func TestEngineSnapshotRestore(t *testing.T) {
	for _, churn := range []bool{false, true} {
		orig := buildEngine(t, 10, churn)
		var r Round
		for i := 0; i < 57; i++ {
			if err := orig.NextRound(8, &r); err != nil {
				t.Fatal(err)
			}
		}
		st, err := orig.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var decoded EngineState
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}
		twin := buildEngine(t, 10, churn)
		if err := twin.Restore(&decoded); err != nil {
			t.Fatal(err)
		}
		if twin.Rounds() != orig.Rounds() {
			t.Fatalf("restored round counter %d, want %d", twin.Rounds(), orig.Rounds())
		}
		var ra, rb Round
		for i := 0; i < 100; i++ {
			if err := orig.NextRound(8, &ra); err != nil {
				t.Fatal(err)
			}
			if err := twin.NextRound(8, &rb); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("churn=%v: continuation diverges at round %d", churn, i)
			}
		}
	}
}

func TestEngineRestoreRejectsShapeMismatch(t *testing.T) {
	e := buildEngine(t, 10, false)
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(nil); err == nil {
		t.Error("nil snapshot restored")
	}
	small := buildEngine(t, 6, false)
	if err := small.Restore(st); err == nil {
		t.Error("snapshot restored into a differently sized population")
	}
}

// disclosureCfg is the shared config of the kill-and-resume tests: small
// enough to run fast, checkpointing often enough to resolve disclosure.
func disclosureCfg(aware bool) DisclosureConfig {
	return DisclosureConfig{
		Batch:      8,
		MaxRounds:  600,
		CheckEvery: 25,
		ChurnAware: aware,
		Workers:    1,
	}
}

// TestDisclosureKillAndResume is the resume-determinism property test:
// kill a disclosure run at randomized points (snapshot through a JSON
// round trip, discard everything, rebuild and resume), and demand the
// final result be identical to the uninterrupted run's — including a
// double-kill chain (kill, resume, kill again, resume again).
func TestDisclosureKillAndResume(t *testing.T) {
	for _, churn := range []bool{false, true} {
		cfg := disclosureCfg(churn)
		base, err := buildEngine(t, 12, churn).RunDisclosure(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// At least 3 randomized kill points, seeded so failures reproduce.
		krng := xrand.New(777)
		kills := []int{1 + krng.Intn(cfg.MaxRounds-1), 1 + krng.Intn(cfg.MaxRounds-1),
			1 + krng.Intn(cfg.MaxRounds-1)}
		for _, kill := range kills {
			run, err := buildEngine(t, 12, churn).StartDisclosure(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := run.Step(kill); err != nil {
				t.Fatal(err)
			}
			st, err := run.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var decoded DisclosureState
			if err := json.Unmarshal(data, &decoded); err != nil {
				t.Fatal(err)
			}
			resumed, err := buildEngine(t, 12, churn).ResumeDisclosure(cfg, &decoded)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Observed() != run.Observed() {
				t.Fatalf("resumed at %d observed rounds, want %d", resumed.Observed(), run.Observed())
			}
			if _, err := resumed.Step(cfg.MaxRounds); err != nil {
				t.Fatal(err)
			}
			if !resumed.Done() {
				t.Fatal("resumed run not done after a full budget of steps")
			}
			got := resumed.Result()
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("churn=%v kill=%d: resumed result differs from uninterrupted run\ngot  %+v\nwant %+v",
					churn, kill, got, base)
			}
		}
		// Double interruption: the property composes.
		run, err := buildEngine(t, 12, churn).StartDisclosure(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := run.Step(100); err != nil {
			t.Fatal(err)
		}
		st1, err := run.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		mid, err := buildEngine(t, 12, churn).ResumeDisclosure(cfg, st1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mid.Step(150); err != nil {
			t.Fatal(err)
		}
		st2, err := mid.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		final, err := buildEngine(t, 12, churn).ResumeDisclosure(cfg, st2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := final.Step(cfg.MaxRounds); err != nil {
			t.Fatal(err)
		}
		if got := final.Result(); !reflect.DeepEqual(got, base) {
			t.Fatalf("churn=%v: twice-resumed result differs from uninterrupted run", churn)
		}
	}
}

func TestResumeDisclosureValidates(t *testing.T) {
	cfg := disclosureCfg(false)
	run, err := buildEngine(t, 12, false).StartDisclosure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Step(50); err != nil {
		t.Fatal(err)
	}
	st, err := run.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildEngine(t, 12, false).ResumeDisclosure(cfg, nil); err == nil {
		t.Error("nil snapshot resumed")
	}
	other := cfg
	other.Targets = []int{0, 1}
	if _, err := buildEngine(t, 12, false).ResumeDisclosure(other, st); err == nil {
		t.Error("snapshot resumed under a different target list")
	}
	bad := *st
	bad.Targets = append([]TargetEstimatorState(nil), st.Targets...)
	if len(bad.Targets[0].SumWith.Idx) < 2 {
		t.Fatal("estimator support unexpectedly tiny; corruption test needs entries")
	}
	bad.Targets[0].SumWith.Idx = bad.Targets[0].SumWith.Idx[:len(bad.Targets[0].SumWith.Idx)-1]
	if _, err := buildEngine(t, 12, false).ResumeDisclosure(cfg, &bad); err == nil {
		t.Error("snapshot with mismatched estimator index/value lengths resumed")
	}
	unsorted := *st
	unsorted.Targets = append([]TargetEstimatorState(nil), st.Targets...)
	uw := &unsorted.Targets[0].SumWith
	uw.Idx = append([]int32(nil), uw.Idx...)
	uw.Idx[0], uw.Idx[1] = uw.Idx[1], uw.Idx[0]
	if _, err := buildEngine(t, 12, false).ResumeDisclosure(cfg, &unsorted); err == nil {
		t.Error("snapshot with non-ascending estimator coordinates resumed")
	}
}
