package population

import (
	"errors"
	"fmt"

	"linkpad/internal/adversary"
	"linkpad/internal/bayes"
	"linkpad/internal/par"
)

// Flow correlation (flowcorr.go): the per-flow population attack. Every
// user's padded link appears at the egress as an unlabeled flow; the
// global adversary must match each egress flow back to its ingress user.
// Two signals are combined:
//
//   - the throughput fingerprint (Mittal et al.): windowed packet-count
//     vectors of the ingress and egress sides, matched by Pearson
//     correlation (adversary.RateVector / adversary.Pearson). This
//     identifies the *individual* whenever payload rate fluctuations
//     survive the padding;
//   - the paper's PIAT class features (adversary.MultiPipeline reduced to
//     bayes class posteriors): even when padding flattens the throughput
//     fingerprint, the µs-scale timing leak still identifies the flow's
//     rate *class*, shrinking the anonymity set to the class population.
//
// The ingress side is unpadded, so the adversary reads each sender's
// class off the ingress stream directly; we grant it the true ingress
// class. Scores are combined additively in log space and flows are
// assigned greedily, highest score first.

// Flow is one user's padded link as the global adversary observes it:
// ingress arrival times (the user's sends, cover included — the tap
// cannot tell them apart) and egress departure times of the padded flow.
type Flow struct {
	// Class is the ground-truth rate class (known to the adversary from
	// the unpadded ingress side).
	Class int
	// Ingress holds absolute ingress arrival times.
	Ingress []float64
	// Egress holds absolute egress departure times.
	Egress []float64
}

// FlowSimulator produces user u's flow observation over the duration.
// Implementations must derive all randomness from the user index so that
// flows can be simulated in parallel deterministically (core provides
// one wired to the System description).
type FlowSimulator func(user int, duration float64) (*Flow, error)

// FlowCorrConfig parameterizes the flow-correlation attack.
type FlowCorrConfig struct {
	// Duration is the observation time in stream seconds (required).
	Duration float64
	// RateWindow is the throughput-fingerprint bin width in seconds
	// (0 = 1 s). The fingerprint has floor(Duration/RateWindow) bins.
	RateWindow float64
	// CorrWeight scales the rate-correlation term against the class
	// log-posterior term (0 = 8; correlation spans [-1, 1], posteriors
	// span [-adversary.PostFloor, 0]).
	CorrWeight float64
	// FeatureWindow is the PIAT count reduced to one feature value per
	// flow (0 = 200); it must match the window the classifiers were
	// trained at.
	FeatureWindow int
	// Classifiers holds one per-feature class classifier (naive-Bayes
	// combined); may be empty for a pure rate-correlation attack.
	// Extractors must parallel it.
	Classifiers []*bayes.Classifier
	// Extractors are the feature extractors matching Classifiers.
	Extractors []adversary.Extractor
	// MaskAbsent makes the rate correlation churn-aware: each pair's
	// correlation is computed only over the windows where the egress flow
	// emitted packets, masking the dark windows of an offline user. The
	// mask is derived from the egress observation alone (a padded link
	// emits in every window it is up), so it leaks nothing the adversary
	// does not already see. Without it, population churn imprints the
	// same on/off signature on every co-churning flow and the correlation
	// silently biases toward presence overlap.
	MaskAbsent bool
	// Workers bounds the per-user simulation parallelism; results are
	// identical at any width. Zero means all CPUs.
	Workers int
}

// withDefaults fills zero fields.
func (c FlowCorrConfig) withDefaults() FlowCorrConfig {
	if c.RateWindow == 0 {
		c.RateWindow = 1
	}
	if c.CorrWeight == 0 {
		c.CorrWeight = 8
	}
	if c.FeatureWindow == 0 {
		c.FeatureWindow = 200
	}
	return c
}

// FlowCorrResult reports one flow-correlation attack.
type FlowCorrResult struct {
	// Users is the population size (= number of flows).
	Users int
	// Accuracy is the fraction of egress flows assigned to their true
	// ingress user by the greedy matching.
	Accuracy float64
	// ClassAccuracy is the fraction of flows whose rate class the PIAT
	// features identified (0 when no classifiers were supplied).
	ClassAccuracy float64
	// MeanRank averages the rank (1 = best) of the true user in each
	// flow's score ordering — 1 means every flow ranks its own user
	// first even before the matching resolves conflicts.
	MeanRank float64
	// MeanCorrTrue averages the rate correlation of the true
	// (user, flow) pairs: the raw strength of the throughput
	// fingerprint that survives the padding.
	MeanCorrTrue float64
}

// flowObs is the reduced observation of one user/flow pair. The
// throughput fingerprints are stored sparse — only the non-empty rate
// bins — and materialized into dense scratch for scoring, so resident
// fingerprint memory scales with traffic actually observed rather than
// with users × bins. A mostly idle or churned-out flow costs its active
// windows only; the Pearson scoring sees the exact dense vectors
// RateVector produced.
type flowObs struct {
	class   int
	ing     sparseVec
	eg      sparseVec
	logPost []float64 // class log posteriors of the egress flow (clamped)
}

// CorrelateFlows runs the attack end to end: simulate every user's flow
// (in parallel, users as the unit of parallelism), reduce each side to
// its throughput fingerprint and class posteriors, score every
// (user, flow) pair, and match greedily. Flow f's true ingress user is
// user f; the adversary's scores never read that identity, only the
// observations.
func CorrelateFlows(sim FlowSimulator, users int, cfg FlowCorrConfig) (*FlowCorrResult, error) {
	cfg = cfg.withDefaults()
	if sim == nil {
		return nil, errors.New("population: nil flow simulator")
	}
	if users < 2 {
		return nil, errors.New("population: need at least two users")
	}
	if !(cfg.Duration > 0) {
		return nil, errors.New("population: flow duration must be positive")
	}
	if len(cfg.Classifiers) != len(cfg.Extractors) {
		return nil, errors.New("population: classifiers and extractors must parallel each other")
	}
	if cfg.FeatureWindow < 2 {
		return nil, errors.New("population: feature window must be at least 2")
	}
	// Floor with an epsilon so a float-noisy integral ratio (60*0.7/1 =
	// 41.99999...) keeps its last window instead of silently dropping the
	// tail of both fingerprints.
	bins := int(cfg.Duration/cfg.RateWindow + 1e-9)
	if bins < 2 {
		return nil, errors.New("population: need at least two rate windows over the duration")
	}

	obs := make([]flowObs, users)
	workers := par.Workers(cfg.Workers)
	if workers > users {
		workers = users
	}
	pipes := make([]*adversary.MultiPipeline, workers)
	outs := make([][]float64, workers)
	piats := make([][]float64, workers)
	lps := make([][]float64, workers)
	rateScr := make([][]float64, workers) // per-worker dense bin scratch
	for i := range pipes {
		rateScr[i] = make([]float64, bins)
		if len(cfg.Extractors) > 0 {
			mp, err := adversary.NewMultiPipeline(cfg.Extractors)
			if err != nil {
				return nil, err
			}
			pipes[i] = mp
			outs[i] = make([]float64, len(cfg.Extractors))
		}
	}
	err := par.MapWorker(users, workers, func(worker, u int) error {
		flow, err := sim(u, cfg.Duration)
		if err != nil {
			return fmt.Errorf("population: flow %d: %w", u, err)
		}
		o := &obs[u]
		o.class = flow.Class
		dense := rateScr[worker]
		for i := range dense {
			dense[i] = 0
		}
		if _, err := adversary.RateVector(flow.Ingress, 0, cfg.RateWindow, dense); err != nil {
			return err
		}
		o.ing.compress(dense)
		for i := range dense {
			dense[i] = 0
		}
		if _, err := adversary.RateVector(flow.Egress, 0, cfg.RateWindow, dense); err != nil {
			return err
		}
		o.eg.compress(dense)
		if len(cfg.Classifiers) == 0 {
			return nil
		}
		// Reduce the egress flow's first FeatureWindow PIATs to one value
		// per feature, then to clamped class log posteriors.
		if len(flow.Egress) < cfg.FeatureWindow+1 {
			return fmt.Errorf("population: flow %d has %d egress packets, need %d for the feature window",
				u, len(flow.Egress), cfg.FeatureWindow+1)
		}
		pb := piats[worker]
		if cap(pb) < cfg.FeatureWindow {
			pb = make([]float64, cfg.FeatureWindow)
		}
		pb = pb[:cfg.FeatureWindow]
		for i := range pb {
			pb[i] = flow.Egress[i+1] - flow.Egress[i]
		}
		piats[worker] = pb
		if err := pipes[worker].ExtractFrom(adversary.NewReplay(pb), cfg.FeatureWindow, outs[worker]); err != nil {
			return err
		}
		o.logPost = make([]float64, cfg.Classifiers[0].NumClasses())
		for fi, cls := range cfg.Classifiers {
			lp := cls.LogPosteriorsInto(outs[worker][fi], lps[worker])
			lps[worker] = lp
			adversary.AddClampedLogPosts(o.logPost, lp)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Score every (user, flow) pair: rate correlation plus the egress
	// flow's posterior for the ingress user's class. The sparse
	// fingerprints materialize into two reusable dense vectors — the
	// egress side once per flow, the ingress side per pair — so the
	// Pearson terms are computed over the identical dense vectors the
	// previous dense storage held.
	score := make([]float64, users*users)
	corrTrue := 0.0
	egDense := make([]float64, bins)
	ingDense := make([]float64, bins)
	var mask []bool
	if cfg.MaskAbsent {
		mask = make([]bool, bins)
	}
	for f := 0; f < users; f++ {
		obs[f].eg.scatter(egDense)
		if mask != nil {
			for i, v := range egDense {
				mask[i] = v > 0
			}
		}
		for u := 0; u < users; u++ {
			obs[u].ing.scatter(ingDense)
			var corr float64
			var err error
			if mask != nil {
				corr, err = adversary.PearsonMasked(ingDense, egDense, mask)
			} else {
				corr, err = adversary.Pearson(ingDense, egDense)
			}
			if err != nil {
				return nil, err
			}
			v := cfg.CorrWeight * corr
			if obs[f].logPost != nil {
				v += obs[f].logPost[obs[u].class]
			}
			score[u*users+f] = v
			if u == f {
				corrTrue += corr
			}
		}
	}

	// Greedy matching: highest score first, deterministic tie-break on
	// (user, flow) order.
	assignedF, err := adversary.GreedyMatch(score, users) // flow -> user
	if err != nil {
		return nil, err
	}

	res := &FlowCorrResult{Users: users, MeanCorrTrue: corrTrue / float64(users)}
	correct, classCorrect := 0, 0
	var rankSum float64
	for f := 0; f < users; f++ {
		if assignedF[f] == f {
			correct++
		}
		// Rank of the true user in flow f's score column.
		rankSum += float64(adversary.TrueRank(score, users, f))
		if obs[f].logPost != nil {
			best, bestV := 0, obs[f].logPost[0]
			for c := 1; c < len(obs[f].logPost); c++ {
				if obs[f].logPost[c] > bestV {
					best, bestV = c, obs[f].logPost[c]
				}
			}
			if best == obs[f].class {
				classCorrect++
			}
		}
	}
	res.Accuracy = float64(correct) / float64(users)
	res.MeanRank = rankSum / float64(users)
	if len(cfg.Classifiers) > 0 {
		res.ClassAccuracy = float64(classCorrect) / float64(users)
	}
	return res, nil
}
