package population

import (
	"math"
	"testing"
)

// estimator_ref_test.go: closed-form references for the arms-race
// estimators (estimator.go). The least-squares estimator must agree
// with a dense Gaussian-elimination oracle that solves the same normal
// equations by a different algorithm, and bit-identically with a dense
// mirror of its own accumulators; the ML estimator's EM refresh must
// agree with a reference EM whose E-step is the exhaustive Bayesian
// posterior enumerated over all 2^n per-message origin assignments.

// collectRounds drives an engine for R rounds through the threshold mix
// and records each round's egress (recipients) and per-target ingress
// (send count), the exact observation stream the estimators fold in.
type recordedRound struct {
	rcpts []int32
	cnt   int // the target's send count
}

func collectTargetRounds(t *testing.T, e *Engine, target int32, batch, rounds int) []recordedRound {
	t.Helper()
	var r Round
	out := make([]recordedRound, 0, rounds)
	for i := 0; i < rounds; i++ {
		if err := e.NextRound(batch, &r); err != nil {
			t.Fatal(err)
		}
		rec := recordedRound{rcpts: append([]int32(nil), r.Rcpts...)}
		for _, u := range r.Users {
			if u == target {
				rec.cnt++
			}
		}
		out = append(out, rec)
	}
	return out
}

// feedEstimator folds the recorded rounds into a fresh estimator of the
// given kind, exactly as disclosure.observe would.
func feedEstimator(k EstimatorKind, rounds []recordedRound) estimator {
	est := newEstimator(k)
	var r Round
	for _, rec := range rounds {
		r.Rcpts = rec.rcpts
		est.observe(&r, rec.cnt > 0, rec.cnt)
	}
	return est
}

// solve2x2Gauss solves [saa sab; sab sbb]·[p;q] = [say;sby] by Gaussian
// elimination with partial pivoting — deliberately not the Cramer's-rule
// expression the production estimator uses, so the two only agree if
// both are right.
func solve2x2Gauss(saa, sab, sbb, say, sby float64) (p float64) {
	m := [2][3]float64{{saa, sab, say}, {sab, sbb, sby}}
	if math.Abs(m[1][0]) > math.Abs(m[0][0]) {
		m[0], m[1] = m[1], m[0]
	}
	f := m[1][0] / m[0][0]
	for j := 1; j < 3; j++ {
		m[1][j] -= f * m[0][j]
	}
	q := m[1][2] / m[1][1]
	return (m[0][2] - m[0][1]*q) / m[0][0]
}

// TestLeastSquaresMatchesGaussianOracle: over populations up to N=64,
// the sparse least-squares estimate at every recipient must match a
// dense oracle that re-accumulates the moments from the recorded rounds
// and solves each 2×2 system by Gaussian elimination.
func TestLeastSquaresMatchesGaussianOracle(t *testing.T) {
	cases := []struct {
		name       string
		n          int
		recipients int
		cover      bool
		batch      int
		rounds     int
	}{
		{"small", 12, 40, false, 8, 400},
		{"cover", 24, 60, true, 16, 400},
		{"n64-sparse", 64, 800, false, 32, 300},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEngine(refUsers(t, tc.n, tc.recipients, tc.cover, false), tc.recipients)
			if err != nil {
				t.Fatal(err)
			}
			e.SetWorkers(1)
			target := int32(tc.n / 2)
			rounds := collectTargetRounds(t, e, target, tc.batch, tc.rounds)
			est := feedEstimator(EstimatorLeastSquares, rounds)
			if !est.ready() {
				t.Fatal("least-squares estimator not ready after the recorded rounds")
			}
			// Dense oracle: re-accumulate everything from the round list.
			var saa, sab, sbb float64
			say := make([]float64, tc.recipients)
			sby := make([]float64, tc.recipients)
			for _, rec := range rounds {
				a := float64(rec.cnt)
				b := float64(len(rec.rcpts) - rec.cnt)
				saa += a * a
				sab += a * b
				sbb += b * b
				for _, rc := range rec.rcpts {
					say[rc] += a
					sby[rc] += b
				}
			}
			if det := saa*sbb - sab*sab; !(det > 0) {
				t.Fatalf("oracle system degenerate (det=%v); pick a longer run", det)
			}
			for i := 0; i < tc.recipients; i++ {
				want := solve2x2Gauss(saa, sab, sbb, say[i], sby[i])
				if want < 0 {
					want = 0
				}
				got := est.estimateAt(int32(i))
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("recipient %d: sparse LS %v vs Gaussian oracle %v", i, got, want)
				}
			}
		})
	}
}

// TestLSSparseMatchesDenseBitIdentical extends the sparse/dense
// bit-identity property (sda_ref_test.go) to the least-squares
// accumulators: a dense mirror fed the identical per-delivery additions
// in the identical order must reproduce every estimate coordinate
// exactly — absent sparse coordinates are exact zeros, and the Cramer
// expression over equal inputs yields equal floats.
func TestLSSparseMatchesDenseBitIdentical(t *testing.T) {
	const n, recipients, batch, rounds = 48, 500, 8, 500
	e, err := NewEngine(refUsers(t, n, recipients, true, false), recipients)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkers(1)
	target := int32(n / 3)
	recs := collectTargetRounds(t, e, target, batch, rounds)
	est := feedEstimator(EstimatorLeastSquares, recs).(*lsEstimator)

	// Dense mirror: the same per-delivery additions in the same order.
	var saa, sab, sbb float64
	say := make([]float64, recipients)
	sby := make([]float64, recipients)
	for _, rec := range recs {
		a := float64(rec.cnt)
		b := float64(len(rec.rcpts) - rec.cnt)
		saa += a * a
		sab += a * b
		sbb += b * b
		if a > 0 {
			for _, rc := range rec.rcpts {
				say[rc] += a
			}
		}
		if b > 0 {
			for _, rc := range rec.rcpts {
				sby[rc] += b
			}
		}
	}
	if saa != est.saa || sab != est.sab || sbb != est.sbb {
		t.Fatalf("scalar moments differ: sparse (%v,%v,%v) dense (%v,%v,%v)",
			est.saa, est.sab, est.sbb, saa, sab, sbb)
	}
	if !est.ready() {
		t.Fatal("estimator not ready")
	}
	inv := 1 / (saa*sbb - sab*sab)
	support := 0
	for i := 0; i < recipients; i++ {
		want := (sbb*say[i] - sab*sby[i]) * inv
		if want < 0 {
			want = 0
		}
		if got := est.estimateAt(int32(i)); got != want {
			t.Fatalf("recipient %d: sparse estimate %v != dense %v (bit-identity)", i, got, want)
		}
		if say[i] != 0 {
			support++
		}
	}
	if nnz := est.say.nnz(); nnz != support {
		t.Fatalf("sparse say support %d, dense has %d non-zeros", nnz, support)
	}
	if support >= recipients {
		t.Fatalf("say support saturated the %d-recipient space; the sparsity property is vacuous", recipients)
	}
}

// exhaustivePosterior computes, by brute force over all 2^n independent
// origin assignments, the Bayesian posterior that each message of a
// round originated from the target — the mixture model's E-step ground
// truth. Each message is a priori the target's with probability a/n and
// then draws its recipient from p, else from q.
func exhaustivePosterior(rcpts []int32, a int, p, q []float64) []float64 {
	n := len(rcpts)
	prior := float64(a) / float64(n)
	post := make([]float64, n)
	var total float64
	for mask := 0; mask < 1<<n; mask++ {
		w := 1.0
		for k := 0; k < n; k++ {
			if mask&(1<<k) != 0 {
				w *= prior * p[rcpts[k]]
			} else {
				w *= (1 - prior) * q[rcpts[k]]
			}
		}
		total += w
		for k := 0; k < n; k++ {
			if mask&(1<<k) != 0 {
				post[k] += w
			}
		}
	}
	for k := range post {
		post[k] /= total
	}
	return post
}

// TestMLRefreshMatchesExhaustivePosteriorEM: run the production ML
// estimator on rounds of at most 8 messages, then replay the identical
// EM schedule in a dense reference whose E-step uses the exhaustive
// 2^n-assignment posterior instead of the closed form. The trajectories
// must coincide — the closed form IS the exact posterior under the
// mixture model — so the final estimates agree to float tolerance, and
// the refresh must not have decreased the exact grouped log-likelihood
// relative to its own initializer.
func TestMLRefreshMatchesExhaustivePosteriorEM(t *testing.T) {
	const n, recipients, batch, rounds = 10, 24, 6, 300
	e, err := NewEngine(refUsers(t, n, recipients, false, false), recipients)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkers(1)
	target := int32(2)
	recs := collectTargetRounds(t, e, target, batch, rounds)
	for _, rec := range recs {
		if len(rec.rcpts) > 8 {
			t.Fatalf("round carries %d messages; the exhaustive oracle needs n <= 8", len(rec.rcpts))
		}
	}
	est := feedEstimator(EstimatorML, recs).(*mlEstimator)
	if !est.ready() {
		t.Fatal("ML estimator not ready after the recorded rounds")
	}

	// Reference EM over the raw (ungrouped) round list: same init as
	// refresh() — p from with-round deliveries, q from all — then
	// mlEMIters sweeps whose E-step is the exhaustive posterior.
	p := make([]float64, recipients)
	q := make([]float64, recipients)
	for _, rec := range recs {
		for _, rc := range rec.rcpts {
			q[rc]++
			if rec.cnt > 0 {
				p[rc]++
			}
		}
	}
	normalizeDense := func(v []float64) {
		var tot float64
		for _, x := range v {
			tot += x
		}
		for i := range v {
			v[i] /= tot
		}
	}
	normalizeDense(p)
	normalizeDense(q)
	logLik := func(p, q []float64) float64 {
		var ll float64
		for _, rec := range recs {
			a := float64(rec.cnt)
			b := float64(len(rec.rcpts) - rec.cnt)
			for _, rc := range rec.rcpts {
				ll += math.Log(a*p[rc] + b*q[rc])
			}
		}
		return ll
	}
	initLik := logLik(p, q)
	tp := make([]float64, recipients)
	tq := make([]float64, recipients)
	for iter := 0; iter < mlEMIters; iter++ {
		for i := range tp {
			tp[i], tq[i] = 0, 0
		}
		for _, rec := range recs {
			post := exhaustivePosterior(rec.rcpts, rec.cnt, p, q)
			for k, rc := range rec.rcpts {
				tp[rc] += post[k]
				tq[rc] += 1 - post[k]
			}
		}
		normalizeDense(tp)
		normalizeDense(tq)
		copy(p, tp)
		copy(q, tq)
	}
	for i := 0; i < recipients; i++ {
		got := est.estimateAt(int32(i))
		if math.Abs(got-p[i]) > 1e-9 {
			t.Fatalf("recipient %d: ML estimate %v vs exhaustive-posterior EM %v", i, got, p[i])
		}
	}
	// EM must improve (or hold) the exact likelihood over its initializer.
	final := make([]float64, recipients)
	finalQ := make([]float64, recipients)
	for k, i := range est.p.idx {
		final[i] = est.p.val[k]
	}
	for k, i := range est.q.idx {
		finalQ[i] = est.q.val[k]
	}
	if got := logLik(final, finalQ); got < initLik-1e-9 {
		t.Fatalf("EM decreased the log-likelihood: init %v, after refresh %v", initLik, got)
	}
}

// TestMLGroupingIsExact: folding rounds in a different order produces
// the same grouped sufficient statistics, and the (a, n) group list
// stays sorted with exact counts — the grouping loses nothing the
// mixture likelihood depends on.
func TestMLGroupingIsExact(t *testing.T) {
	const n, recipients, batch, rounds = 16, 40, 8, 250
	e, err := NewEngine(refUsers(t, n, recipients, true, false), recipients)
	if err != nil {
		t.Fatal(err)
	}
	e.SetWorkers(1)
	recs := collectTargetRounds(t, e, 5, batch, rounds)
	fwd := feedEstimator(EstimatorML, recs).(*mlEstimator)
	rev := newEstimator(EstimatorML).(*mlEstimator)
	var r Round
	for i := len(recs) - 1; i >= 0; i-- {
		r.Rcpts = recs[i].rcpts
		rev.observe(&r, recs[i].cnt > 0, recs[i].cnt)
	}
	if len(fwd.groups) != len(rev.groups) {
		t.Fatalf("group counts differ: %d forward vs %d reversed", len(fwd.groups), len(rev.groups))
	}
	var totalRounds float64
	for gi := range fwd.groups {
		a, b := &fwd.groups[gi], &rev.groups[gi]
		if a.a != b.a || a.n != b.n || a.c != b.c {
			t.Fatalf("group %d keys differ: (%d,%d,%v) vs (%d,%d,%v)", gi, a.a, a.n, a.c, b.a, b.n, b.c)
		}
		if a.y.nnz() != b.y.nnz() {
			t.Fatalf("group %d y supports differ: %d vs %d", gi, a.y.nnz(), b.y.nnz())
		}
		if gi > 0 {
			prev := &fwd.groups[gi-1]
			if prev.a > a.a || (prev.a == a.a && prev.n >= a.n) {
				t.Fatalf("groups not ascending at %d", gi)
			}
		}
		for k, idx := range a.y.idx {
			if got := b.y.get(idx); got != a.y.val[k] {
				t.Fatalf("group %d y[%d] differs: %v vs %v", gi, idx, a.y.val[k], got)
			}
		}
		totalRounds += a.c
	}
	if totalRounds != float64(rounds) {
		t.Fatalf("groups account for %v rounds, want %d", totalRounds, rounds)
	}
}
