package population

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"linkpad/internal/xrand"
)

// mix_test.go: the mix-policy conservation and resume properties. A mix
// policy re-times and re-batches the engine's event stream but must
// neither lose, duplicate, nor invent messages: everything the engine
// generated is either emitted in exactly one round or still held in the
// policy's serialized state — across any kill/resume point.

// mixEvent is one emitted or held message, keyed by its full identity.
type mixEvent struct {
	t     float64
	user  int32
	rcpt  int32
	dummy bool
}

// drainRaw pulls the first n events of a twin engine's merged stream —
// the ground truth the mix policies consume.
func drainRaw(t *testing.T, e *Engine, n int) []mixEvent {
	t.Helper()
	out := make([]mixEvent, 0, n)
	for len(out) < n {
		ev, ok := e.popEvent()
		if !ok {
			if err := e.refill(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		out = append(out, mixEvent{t: ev.t, user: ev.user, rcpt: ev.rcpt, dummy: ev.dummy})
	}
	return out
}

// heldEvents reads the messages a policy is still holding (the pool's
// carried messages, the timed mix's lookahead) out of its snapshot.
func heldEvents(m MixPolicy) []mixEvent {
	st := m.snapshot()
	if st == nil {
		return nil
	}
	var out []mixEvent
	for _, ev := range st.Pool {
		out = append(out, mixEvent{t: ev.T, user: ev.User, rcpt: ev.Rcpt, dummy: ev.Dummy})
	}
	if st.Peeked != nil {
		p := st.Peeked
		out = append(out, mixEvent{t: p.T, user: p.User, rcpt: p.Rcpt, dummy: p.Dummy})
	}
	return out
}

// conservationSpecs are the mix configurations every conservation and
// resume property runs against.
var conservationSpecs = []MixSpec{
	{Kind: MixThreshold},
	{Kind: MixPool},
	{Kind: MixPool, Retain: 0.9, Seed: 41},
	{Kind: MixTimed},
	{Kind: MixTimed, Period: 0.37},
}

// TestMixConservation: run every policy for many rounds, then demand
// emitted ∪ held be exactly the prefix of a twin engine's raw stream —
// every message exits exactly once or is provably still queued, no
// duplicates, no inventions. Rounds must also stay time-ordered within
// themselves, and flush stamps must not precede their round's arrivals.
func TestMixConservation(t *testing.T) {
	const n, batch, rounds = 16, 8, 300
	for _, spec := range conservationSpecs {
		t.Run(spec.Kind.String(), func(t *testing.T) {
			build := func() *Engine {
				users, recipients := testUsers(t, n, true)
				e, err := NewEngine(users, recipients)
				if err != nil {
					t.Fatal(err)
				}
				e.SetWorkers(1)
				return e
			}
			e := build()
			mix, err := e.NewMix(spec, batch)
			if err != nil {
				t.Fatal(err)
			}
			var emitted []mixEvent
			var r Round
			for i := 0; i < rounds; i++ {
				if err := mix.NextRound(&r); err != nil {
					t.Fatal(err)
				}
				if len(r.Users) == 0 {
					t.Fatalf("round %d emitted no messages", i)
				}
				for j := range r.Users {
					if j > 0 && r.Times[j] < r.Times[j-1] {
						t.Fatalf("round %d not time-ordered at message %d", i, j)
					}
					if r.Times[j] > r.Flush && spec.Kind != MixThreshold {
						t.Fatalf("round %d message %d at %v after the flush stamp %v",
							i, j, r.Times[j], r.Flush)
					}
					emitted = append(emitted, mixEvent{
						t: r.Times[j], user: r.Users[j], rcpt: r.Rcpts[j], dummy: r.Dummy[j]})
				}
			}
			held := heldEvents(mix)
			want := drainRaw(t, build(), len(emitted)+len(held))
			seen := make(map[mixEvent]int, len(want))
			for _, ev := range want {
				seen[ev]++
			}
			for _, ev := range emitted {
				seen[ev]--
				if seen[ev] < 0 {
					t.Fatalf("emitted event %+v not in the raw stream prefix (or emitted twice)", ev)
				}
			}
			for _, ev := range held {
				seen[ev]--
				if seen[ev] < 0 {
					t.Fatalf("held event %+v not in the raw stream prefix (or also emitted)", ev)
				}
			}
			for ev, c := range seen {
				if c != 0 {
					t.Fatalf("raw event %+v consumed by the mix but never emitted or held", ev)
				}
			}
		})
	}
}

// TestMixKillResumeRoundStream: snapshot engine+mix mid-run (through
// JSON), restore onto twins, and demand the continued round sequence be
// identical to the uninterrupted one — with the carried pool and the
// timed lookahead crossing the checkpoint intact. Together with
// TestMixConservation this is the exactly-once property at any kill
// point: the uninterrupted stream conserves, and resuming reproduces it.
func TestMixKillResumeRoundStream(t *testing.T) {
	const n, batch, rounds, kill = 14, 8, 220, 97
	for _, spec := range conservationSpecs {
		t.Run(spec.Kind.String(), func(t *testing.T) {
			build := func() (*Engine, MixPolicy) {
				users, recipients := testUsers(t, n, true)
				e, err := NewEngine(users, recipients)
				if err != nil {
					t.Fatal(err)
				}
				e.SetWorkers(1)
				m, err := e.NewMix(spec, batch)
				if err != nil {
					t.Fatal(err)
				}
				return e, m
			}
			collect := func(m MixPolicy, k int) []Round {
				out := make([]Round, k)
				for i := range out {
					if err := m.NextRound(&out[i]); err != nil {
						t.Fatal(err)
					}
					out[i] = Round{
						Users: append([]int32(nil), out[i].Users...),
						Rcpts: append([]int32(nil), out[i].Rcpts...),
						Dummy: append([]bool(nil), out[i].Dummy...),
						Times: append([]float64(nil), out[i].Times...),
						Flush: out[i].Flush,
					}
				}
				return out
			}
			_, base := build()
			want := collect(base, rounds)

			eng, m := build()
			got := collect(m, kill)
			engSt, err := eng.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			mixSt := m.snapshot()
			blob, err := json.Marshal(struct {
				E *EngineState    `json:"e"`
				M *MixPolicyState `json:"m"`
			}{engSt, mixSt})
			if err != nil {
				t.Fatal(err)
			}
			var decoded struct {
				E *EngineState    `json:"e"`
				M *MixPolicyState `json:"m"`
			}
			if err := json.Unmarshal(blob, &decoded); err != nil {
				t.Fatal(err)
			}
			eng2, m2 := build()
			if err := eng2.Restore(decoded.E); err != nil {
				t.Fatal(err)
			}
			if err := m2.restore(decoded.M); err != nil {
				t.Fatal(err)
			}
			got = append(got, collect(m2, rounds-kill)...)
			if !reflect.DeepEqual(got, want) {
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("resumed round %d differs:\ngot  %+v\nwant %+v", i, got[i], want[i])
					}
				}
			}
		})
	}
}

// armsRaceMatrix spans the kill/resume matrix across the three arms-race
// axes; each entry exercises a distinct (mix, estimator, dummies) cell
// with serialized state on every axis.
var armsRaceMatrix = []struct {
	name string
	mix  MixSpec
	est  EstimatorKind
	dum  DummyPolicy
}{
	{"threshold-ls-adaptive", MixSpec{Kind: MixThreshold}, EstimatorLeastSquares, DummyAdaptive},
	{"pool-classic-none", MixSpec{Kind: MixPool}, EstimatorClassic, DummyNone},
	{"pool-ls-uniform", MixSpec{Kind: MixPool, Retain: 0.7, Seed: 99}, EstimatorLeastSquares, DummyUniform},
	{"pool-ml-adaptive", MixSpec{Kind: MixPool}, EstimatorML, DummyAdaptive},
	{"timed-ml-none", MixSpec{Kind: MixTimed}, EstimatorML, DummyNone},
	{"timed-classic-adaptive", MixSpec{Kind: MixTimed}, EstimatorClassic, DummyAdaptive},
}

// TestDisclosureKillAndResumeMatrix extends the kill-and-resume
// property (checkpoint_test.go) across the arms-race axes: whatever the
// mix, estimator and dummy policy, a disclosure run killed at seeded
// random points and resumed through a JSON round trip must finish with
// a result identical to the uninterrupted run's.
func TestDisclosureKillAndResumeMatrix(t *testing.T) {
	for _, mc := range armsRaceMatrix {
		t.Run(mc.name, func(t *testing.T) {
			cfg := DisclosureConfig{
				Batch:      8,
				Mix:        mc.mix,
				Estimator:  mc.est,
				Dummies:    mc.dum,
				MaxRounds:  400,
				CheckEvery: 25,
				Workers:    1,
			}
			base, err := buildEngine(t, 12, false).RunDisclosure(cfg)
			if err != nil {
				t.Fatal(err)
			}
			krng := xrand.New(777)
			kills := []int{1 + krng.Intn(cfg.MaxRounds-1), 1 + krng.Intn(cfg.MaxRounds-1)}
			for _, kill := range kills {
				run, err := buildEngine(t, 12, false).StartDisclosure(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := run.Step(kill); err != nil {
					t.Fatal(err)
				}
				st, err := run.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				data, err := json.Marshal(st)
				if err != nil {
					t.Fatal(err)
				}
				var decoded DisclosureState
				if err := json.Unmarshal(data, &decoded); err != nil {
					t.Fatal(err)
				}
				resumed, err := buildEngine(t, 12, false).ResumeDisclosure(cfg, &decoded)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := resumed.Step(cfg.MaxRounds); err != nil {
					t.Fatal(err)
				}
				if got := resumed.Result(); !reflect.DeepEqual(got, base) {
					t.Fatalf("kill=%d: resumed result differs from uninterrupted run\ngot  %+v\nwant %+v",
						kill, got, base)
				}
			}
		})
	}
}

// TestResumeDisclosureRejectsConfigMismatch: a snapshot records the
// mix/estimator/dummy configuration it was taken under, and resuming
// under any different configuration must fail with an error naming the
// disagreement — never silently fold one attack's accumulators into
// another.
func TestResumeDisclosureRejectsConfigMismatch(t *testing.T) {
	cfg := DisclosureConfig{
		Batch:      8,
		Mix:        MixSpec{Kind: MixPool, Retain: 0.6, Seed: 5},
		Estimator:  EstimatorLeastSquares,
		Dummies:    DummyUniform,
		MaxRounds:  400,
		CheckEvery: 25,
		Workers:    1,
	}
	run, err := buildEngine(t, 12, false).StartDisclosure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Step(60); err != nil {
		t.Fatal(err)
	}
	st, err := run.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(c *DisclosureConfig)
		want   string
	}{
		{"mix-kind", func(c *DisclosureConfig) { c.Mix = MixSpec{Kind: MixTimed} }, "pool mix"},
		{"mix-retain", func(c *DisclosureConfig) { c.Mix.Retain = 0.3 }, "parameters"},
		{"mix-seed", func(c *DisclosureConfig) { c.Mix.Seed = 6 }, "parameters"},
		{"estimator", func(c *DisclosureConfig) { c.Estimator = EstimatorML }, "least-squares estimator"},
		{"dummies", func(c *DisclosureConfig) { c.Dummies = DummyAdaptive }, "dummy policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			other := cfg
			tc.mutate(&other)
			_, err := buildEngine(t, 12, false).ResumeDisclosure(other, st)
			if err == nil {
				t.Fatal("snapshot resumed under a mismatched config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the disagreement (%q)", err, tc.want)
			}
		})
	}
	// The matching config still resumes.
	if _, err := buildEngine(t, 12, false).ResumeDisclosure(cfg, st); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
}

// TestDisclosureSnapshotBackCompat: the default threshold/classic/none
// run serializes no arms-race fields at all — its JSON is decodable by
// (and from) pre-arms-race snapshots — and a snapshot stripped of the
// new fields resumes as exactly that default configuration.
func TestDisclosureSnapshotBackCompat(t *testing.T) {
	cfg := disclosureCfg(false)
	run, err := buildEngine(t, 12, false).StartDisclosure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Step(80); err != nil {
		t.Fatal(err)
	}
	st, err := run.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"mix"`, `"mix_state"`, `"estimator"`, `"dummies"`, `"ls"`, `"ml"`} {
		if strings.Contains(string(data), field) {
			t.Errorf("default-config snapshot serializes arms-race field %s", field)
		}
	}
	var decoded DisclosureState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	resumed, err := buildEngine(t, 12, false).ResumeDisclosure(cfg, &decoded)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Step(cfg.MaxRounds); err != nil {
		t.Fatal(err)
	}
	base, err := buildEngine(t, 12, false).RunDisclosure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Result(); !reflect.DeepEqual(got, base) {
		t.Fatal("field-free snapshot did not resume as the default configuration")
	}
}

// TestDisclosureWorkerInvarianceMatrix: every arms-race cell's result is
// a pure function of the seeded population — never of the engine's
// generation parallelism — including the pool mix's private retention
// stream and the adaptive dummies' feedback loop.
func TestDisclosureWorkerInvarianceMatrix(t *testing.T) {
	for _, mc := range armsRaceMatrix {
		t.Run(mc.name, func(t *testing.T) {
			cfg := DisclosureConfig{
				Batch:      8,
				Mix:        mc.mix,
				Estimator:  mc.est,
				Dummies:    mc.dum,
				MaxRounds:  250,
				CheckEvery: 25,
			}
			run := func(workers int) *DisclosureResult {
				c := cfg
				c.Workers = workers
				res, err := buildEngine(t, 12, false).RunDisclosure(c)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref := run(1)
			for _, w := range []int{2, 4} {
				if got := run(w); !reflect.DeepEqual(got, ref) {
					t.Fatalf("workers=%d: result differs from workers=1", w)
				}
			}
		})
	}
}
