package population

import "testing"

// Without cover traffic a small population must disclose its targets'
// contact sets quickly, and the reported rounds must reflect the
// checkpoint granularity.
func TestDisclosureIdentifiesContacts(t *testing.T) {
	users, recipients := testUsers(t, 16, false)
	e, err := NewEngine(users, recipients)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DisclosureConfig{
		Batch:     6,
		Targets:   []int{0, 3, 8, 13},
		MaxRounds: 3000,
	}
	res, err := e.RunDisclosure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DisclosedFrac != 1 {
		t.Fatalf("disclosed %.2f of targets without cover, want all (result %+v)",
			res.DisclosedFrac, res.Targets)
	}
	for _, tg := range res.Targets {
		if !tg.Disclosed {
			t.Errorf("target %d not disclosed", tg.User)
		}
		if tg.Rounds <= 0 || tg.Rounds > cfg.MaxRounds {
			t.Errorf("target %d rounds %d out of range", tg.User, tg.Rounds)
		}
		if tg.Rounds%25 != 0 {
			t.Errorf("target %d rounds %d not aligned to the checkpoint granularity", tg.User, tg.Rounds)
		}
		if tg.RoundsWith <= 0 {
			t.Errorf("target %d never appeared in a round", tg.User)
		}
		if tg.DegreeOfAnonymity <= 0 || tg.DegreeOfAnonymity >= 1 {
			t.Errorf("target %d anonymity %v out of (0,1)", tg.User, tg.DegreeOfAnonymity)
		}
	}
	if res.MeanRounds <= 0 || res.MeanRounds >= float64(cfg.MaxRounds) {
		t.Errorf("mean rounds %v out of range", res.MeanRounds)
	}
}

// Cover traffic must slow disclosure: more rounds, higher residual
// anonymity.
func TestDisclosureCoverResists(t *testing.T) {
	run := func(cover bool) *DisclosureResult {
		users, recipients := testUsers(t, 16, cover)
		e, err := NewEngine(users, recipients)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunDisclosure(DisclosureConfig{
			Batch:     6,
			Targets:   []int{0, 3, 8, 13},
			MaxRounds: 3000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clear := run(false)
	covered := run(true)
	if covered.MeanRounds <= clear.MeanRounds {
		t.Errorf("cover traffic should slow disclosure: %v rounds covered vs %v clear",
			covered.MeanRounds, clear.MeanRounds)
	}
	if covered.MeanAnonymity <= clear.MeanAnonymity {
		t.Errorf("cover traffic should raise anonymity: %v covered vs %v clear",
			covered.MeanAnonymity, clear.MeanAnonymity)
	}
}

func TestDisclosureValidation(t *testing.T) {
	users, recipients := testUsers(t, 8, false)
	e, err := NewEngine(users, recipients)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunDisclosure(DisclosureConfig{Targets: []int{99}}); err == nil {
		t.Error("out-of-range target should fail")
	}
	e2, _ := NewEngine(users, recipients)
	if _, err := e2.RunDisclosure(DisclosureConfig{Targets: []int{1, 1}}); err == nil {
		t.Error("duplicate target should fail")
	}
	e3, _ := NewEngine(users, recipients)
	if _, err := e3.RunDisclosure(DisclosureConfig{Batch: -1}); err == nil {
		t.Error("negative batch should fail")
	}
}
