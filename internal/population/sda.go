package population

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"linkpad/internal/par"
	"linkpad/internal/traffic"
)

// Statistical disclosure (sda.go): the round-based intersection attack.
// The adversary watches the batch mix for many rounds; for a target user
// it estimates the target's recipient distribution from the per-round
// ingress/egress contrast, and disclosure is declared when the
// estimate's top contacts match the target's true contact set stably.
// Cover traffic resists the attack twice over: the target's observable
// sends carry less and less real signal, and everyone else's dummies
// brighten the background noise.
//
// This file is the attack harness; the arms race's three axes live
// beside it:
//
//   - estimator.go: the estimator variants (classic round-contrast,
//     least-squares, iterative ML) behind one interface;
//   - mix.go: the round-forming mix policies (threshold, pool, timed);
//   - dummy.go: the dummy policies resisting the attack (none, uniform
//     receiver-bound, adaptive suspect-targeting).
//
// The estimators are sparse (sparse.go): each target accumulates only
// the recipients actually delivered in its observed rounds, never a
// dense length-R vector, so estimator memory scales with observed
// support rather than with the recipient space. Every quantity the
// attack reports — the estimate, the top-k contact test, the entropy —
// is computed from the sparse accumulators bit-identically to the dense
// formulation (absent coordinates are exactly zero, and zero
// coordinates are exact no-ops in every sum); sda_ref_test.go checks
// this against dense reference implementations.

// DisclosureConfig parameterizes one statistical-disclosure run.
type DisclosureConfig struct {
	// Batch is the mix's flush threshold B (messages per round, or the
	// pool mix's flush trigger); 0 selects the default 8.
	Batch int
	// Mix selects the round-forming policy; the zero value is the
	// threshold mix, the engine's original behavior.
	Mix MixSpec
	// Estimator selects the disclosure estimator; the zero value is the
	// classic round-contrast SDA.
	Estimator EstimatorKind
	// Dummies selects the population's dummy policy — how the targets'
	// cover messages are addressed. The zero value (DummyNone) leaves
	// cover traffic, if any, on uniformly random recipients. The core
	// scenario layer copies PopulationSpec.Dummies here.
	Dummies DummyPolicy
	// Targets are the user IDs whose recipient sets the adversary tries
	// to disclose; empty selects 8 users evenly spread over the
	// population (covering every rate class under the striped class
	// assignment).
	Targets []int
	// MaxRounds is the observation budget; targets undisclosed at the
	// budget are censored at MaxRounds. 0 selects the default 4000.
	MaxRounds int
	// CheckEvery is the checkpoint granularity in rounds (0 = 25): the
	// estimate is tested at checkpoints, so rounds-to-disclosure is
	// resolved to this granularity.
	CheckEvery int
	// Consecutive is how many consecutive successful checkpoints the
	// estimate must hold before the target counts as disclosed (0 = 2);
	// a single lucky checkpoint is not disclosure.
	Consecutive int
	// ChurnAware masks rounds in which the target was offline (its churn
	// schedule down at the round's flush time) out of the estimator
	// entirely, instead of counting them as "target silent" rounds.
	// Presence is connection metadata the mix-side adversary observes, so
	// the mask uses nothing hidden. The mask conditions both means on the
	// *same* round population — rounds the target could have sent in —
	// which keeps the background cancellation exact even when presence is
	// correlated across users (diurnal populations, flash crowds): there
	// the naive without-mean samples the co-online population of *other
	// times* and inherits spurious contacts from whoever shares the
	// target's offline windows. Under independent per-user churn the
	// naive estimator stays unbiased and the mask mostly costs effective
	// without-rounds (ablation-churn quantifies the trade). No-op without
	// churn.
	ChurnAware bool
	// Workers bounds the engine's per-user generation parallelism;
	// results are identical at any width. Zero means all CPUs.
	Workers int
}

// WithDefaults returns the configuration with every zero field replaced
// by its default for a users-sized population. StartDisclosure applies
// it internally; callers that must reason about the effective knobs
// before running (budget scaling, checkpoint cadence) call it directly.
// Idempotent.
func (c DisclosureConfig) WithDefaults(users int) DisclosureConfig {
	return c.withDefaults(users)
}

// withDefaults fills zero fields.
func (c DisclosureConfig) withDefaults(users int) DisclosureConfig {
	if c.Batch == 0 {
		c.Batch = 8
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 4000
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 25
	}
	if c.Consecutive == 0 {
		c.Consecutive = 2
	}
	c.Mix = c.Mix.withDefaults()
	if len(c.Targets) == 0 {
		n := 8
		if n > users {
			n = users
		}
		c.Targets = make([]int, n)
		for i := range c.Targets {
			c.Targets[i] = i * users / n
		}
	}
	return c
}

// Validate checks the configuration's shape for a users-sized population
// without an engine — the scenario layer's Build-time validation. It
// never panics, whatever the field values. StartDisclosure re-checks
// everything it needs against the live engine.
func (c DisclosureConfig) Validate(users int) error {
	c = c.withDefaults(users)
	if c.Batch < 1 || c.MaxRounds < 1 || c.CheckEvery < 1 || c.Consecutive < 1 {
		return errors.New("population: disclosure parameters must be positive")
	}
	if c.Workers < 0 {
		return errors.New("population: disclosure workers must be non-negative")
	}
	if !validEstimator(c.Estimator) {
		return fmt.Errorf("population: unknown estimator kind %d", int(c.Estimator))
	}
	if !validDummyPolicy(c.Dummies) {
		return fmt.Errorf("population: unknown dummy policy %d", int(c.Dummies))
	}
	if err := c.Mix.validate(); err != nil {
		return err
	}
	seen := make(map[int]bool, len(c.Targets))
	for _, u := range c.Targets {
		if u < 0 || u >= users {
			return fmt.Errorf("population: target user %d out of range", u)
		}
		if seen[u] {
			return fmt.Errorf("population: duplicate target user %d", u)
		}
		seen[u] = true
	}
	return nil
}

// TargetOutcome reports the attack against one target user.
type TargetOutcome struct {
	// User is the target's user ID.
	User int
	// Disclosed reports whether the contact set was identified within
	// the budget.
	Disclosed bool
	// Rounds is the observed round count at disclosure; MaxRounds
	// (censored) if not disclosed.
	Rounds int
	// RoundsWith counts the rounds in which the target appeared as a
	// sender — the rounds that carry signal.
	RoundsWith int
	// DegreeOfAnonymity is the normalized entropy H(p̂)/ln(R) of the
	// adversary's final recipient estimate: 1 means the estimate is
	// uniform (full anonymity), 0 means it has collapsed to a point.
	DegreeOfAnonymity float64
}

// DisclosureResult reports one statistical-disclosure run.
type DisclosureResult struct {
	// Rounds is how many rounds were observed (the run stops early once
	// every target is disclosed).
	Rounds int
	// Targets holds the per-target outcomes in Targets order.
	Targets []TargetOutcome
	// MeanRounds averages rounds-to-disclosure over all targets,
	// censored values included — the population-level security number.
	MeanRounds float64
	// DisclosedFrac is the fraction of targets disclosed within budget.
	DisclosedFrac float64
	// MeanAnonymity averages the targets' final degree of anonymity.
	MeanAnonymity float64
}

// targetState is the adversary's running bookkeeping for one target: the
// pluggable estimator plus the disclosure-test and dummy-policy state
// shared by every estimator kind.
type targetState struct {
	user       int32
	contacts   []int32 // sorted ascending, the set to identify
	presence   *traffic.OnOffSchedule
	est        estimator
	roundsWith int
	masked     int // rounds skipped because the target was offline
	streak     int
	disclosed  bool
	rounds     int
	dumCount   int     // adaptive dummies re-addressed so far (rotation cursor)
	sus        []int32 // adaptive-dummy suspect scratch, refreshed per round
	susFresh   bool
	sent       bool // per-round scratch
	cnt        int  // per-round scratch: the target's send count
}

// disclosure is one running attack: per-target estimators plus shared
// scratch, sized once so the round loop allocates nothing in steady
// state (estimator inserts stop once each target's observed support
// saturates).
type disclosure struct {
	eng       *Engine
	mix       MixPolicy
	cfg       DisclosureConfig
	nrcpt     int
	targets   []targetState
	targetIdx []int32 // user -> target index, -1 if not a target
	topIdx    []int32
	topVal    []float64
	setScr    []int32
	susVal    []float64 // suspect-selection scratch (adaptive dummies)
}

// newDisclosure validates cfg and sizes the estimators. It materializes
// the target users (the adversary knows who it is watching); everyone
// else stays cold until they send.
func newDisclosure(e *Engine, cfg DisclosureConfig) (*disclosure, error) {
	d := &disclosure{
		eng:       e,
		cfg:       cfg,
		nrcpt:     e.nrcpt,
		targets:   make([]targetState, len(cfg.Targets)),
		targetIdx: make([]int32, e.n),
	}
	for i := range d.targetIdx {
		d.targetIdx[i] = -1
	}
	maxK := 0
	for i, u := range cfg.Targets {
		if u < 0 || u >= e.n {
			return nil, fmt.Errorf("population: target user %d out of range", u)
		}
		if d.targetIdx[u] >= 0 {
			return nil, fmt.Errorf("population: duplicate target user %d", u)
		}
		d.targetIdx[u] = int32(i)
		cs := e.ContactsOf(u)
		sort.Slice(cs, func(a, b int) bool { return cs[a] < cs[b] })
		if len(cs) > maxK {
			maxK = len(cs)
		}
		d.targets[i] = targetState{
			user:     int32(u),
			contacts: cs,
			est:      newEstimator(cfg.Estimator),
		}
		if cfg.ChurnAware {
			d.targets[i].presence = e.PresenceOf(u)
		}
		if cfg.Dummies == DummyAdaptive {
			d.targets[i].sus = make([]int32, 0, len(cs))
		}
	}
	d.topIdx = make([]int32, maxK)
	d.topVal = make([]float64, maxK)
	d.setScr = make([]int32, maxK)
	d.susVal = make([]float64, maxK)
	return d, nil
}

// observe folds one round into every target's estimator. A churn-aware
// run skips rounds in which the target was offline at the flush instant
// — see DisclosureConfig.ChurnAware. Allocation-free once the
// estimators' supports saturate.
func (d *disclosure) observe(r *Round) {
	for i := range d.targets {
		d.targets[i].sent = false
		d.targets[i].cnt = 0
	}
	for _, u := range r.Users {
		if ti := d.targetIdx[u]; ti >= 0 {
			d.targets[ti].sent = true
			d.targets[ti].cnt++
		}
	}
	for i := range d.targets {
		t := &d.targets[i]
		if t.sent {
			t.roundsWith++
		} else if t.presence != nil && !t.presence.UpAt(r.Flush) {
			t.masked++
			continue
		}
		t.est.observe(r, t.sent, t.cnt)
	}
}

// checkpoint tests every undisclosed target's estimate against its true
// contact set, advancing disclosure streaks; it returns true once every
// target is disclosed. Allocation-free.
func (d *disclosure) checkpoint(round int) (allDone bool) {
	allDone = true
	for i := range d.targets {
		t := &d.targets[i]
		if t.disclosed {
			continue
		}
		if !t.est.ready() {
			allDone = false
			continue
		}
		k := len(t.contacts)
		top := d.topK(t, k)
		if setsEqual(top, t.contacts, d.setScr) {
			t.streak++
		} else {
			t.streak = 0
		}
		if t.streak >= d.cfg.Consecutive {
			t.disclosed = true
			t.rounds = round
		} else {
			allDone = false
		}
	}
	return allDone
}

// topK selects the indices of the k largest estimate entries (ties break
// toward the lower recipient index) into the reusable scratch. The
// selection runs the same ascending-index insertion pass the dense
// estimator did, but only over the candidates that can win: by the
// estimator contract every positive estimate lies inside support(), and
// when fewer than k positives exist the remaining winners are the
// lowest-index zero coordinates, which always lie inside [0, k) (at
// most k−1 of the first k coordinates can be positive then). Iterating
// the ascending merge of [0, k) and the support therefore visits a
// superset of the dense winners in the same order, so the selected set
// is identical.
func (d *disclosure) topK(t *targetState, k int) []int32 {
	idx, val := d.topIdx[:0], d.topVal[:0]
	sup := t.est.support()
	next, si := int32(0), 0
	for int(next) < k || si < len(sup) {
		var i int32
		if int(next) < k && (si >= len(sup) || next <= sup[si]) {
			i = next
			if si < len(sup) && sup[si] == next {
				si++
			}
			next++
		} else {
			i = sup[si]
			si++
		}
		v := t.est.estimateAt(i)
		// Find the insertion point among the current k best.
		if len(idx) == k && v <= val[k-1] {
			continue
		}
		j := len(idx)
		if j < k {
			idx = append(idx, 0)
			val = append(val, 0)
		} else {
			j--
		}
		for j > 0 && v > val[j-1] {
			idx[j], val[j] = idx[j-1], val[j-1]
			j--
		}
		idx[j], val[j] = i, v
	}
	d.topIdx, d.topVal = idx, val
	return idx
}

// setsEqual compares two index sets using scr as sorting scratch; b must
// already be sorted ascending.
func setsEqual(a, b, scr []int32) bool {
	if len(a) != len(b) {
		return false
	}
	scr = scr[:0]
	scr = append(scr, a...)
	for i := 1; i < len(scr); i++ {
		for j := i; j > 0 && scr[j] < scr[j-1]; j-- {
			scr[j], scr[j-1] = scr[j-1], scr[j]
		}
	}
	for i := range scr {
		if scr[i] != b[i] {
			return false
		}
	}
	return true
}

// anonymity returns the normalized entropy of the target's final
// estimate; 1 when the adversary has no estimate at all. By the
// estimator contract every positive estimate coordinate lies inside
// support(), and zero coordinates add exactly 0 to the total and
// nothing to the entropy, so the ascending sweep of the support
// reproduces the dense sweep's floats term for term.
func (d *disclosure) anonymity(t *targetState) float64 {
	if !t.est.ready() {
		return 1
	}
	var total float64
	for _, i := range t.est.support() {
		total += t.est.estimateAt(i)
	}
	if total <= 0 {
		return 1
	}
	var h float64
	for _, i := range t.est.support() {
		if v := t.est.estimateAt(i); v > 0 {
			p := v / total
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(d.nrcpt))
}

// DisclosureRun is a statistical-disclosure attack in progress: the same
// attack RunDisclosure executes, broken into resumable steps so a run
// can be checkpointed (Snapshot) mid-flight and continued on a freshly
// rebuilt engine (ResumeDisclosure). Observing all MaxRounds rounds
// through any sequence of Step calls produces byte-identical results to
// one uninterrupted RunDisclosure.
type DisclosureRun struct {
	d        *disclosure
	observed int
	done     bool
	r        Round
}

// StartDisclosure validates cfg against the engine and prepares a
// resumable disclosure run. The run consumes the engine; build a fresh
// engine per run.
func (e *Engine) StartDisclosure(cfg DisclosureConfig) (*DisclosureRun, error) {
	cfg = cfg.withDefaults(e.n)
	if cfg.Batch < 1 || cfg.MaxRounds < 1 || cfg.CheckEvery < 1 || cfg.Consecutive < 1 {
		return nil, errors.New("population: disclosure parameters must be positive")
	}
	if !validEstimator(cfg.Estimator) {
		return nil, fmt.Errorf("population: unknown estimator kind %d", int(cfg.Estimator))
	}
	if !validDummyPolicy(cfg.Dummies) {
		return nil, fmt.Errorf("population: unknown dummy policy %d", int(cfg.Dummies))
	}
	e.SetWorkers(par.Workers(cfg.Workers))
	d, err := newDisclosure(e, cfg)
	if err != nil {
		return nil, err
	}
	d.mix, err = e.NewMix(cfg.Mix, cfg.Batch)
	if err != nil {
		return nil, err
	}
	return &DisclosureRun{d: d}, nil
}

// Step observes up to n more rounds, stopping early when every target is
// disclosed or the round budget is exhausted. It reports whether the run
// is finished. Each round passes through the dummy policy (dummy.go)
// between the mix flush and the estimators' observation — the defenders
// act on the round before the adversary reads it.
func (run *DisclosureRun) Step(n int) (bool, error) {
	cfg := &run.d.cfg
	for i := 0; i < n && !run.done && run.observed < cfg.MaxRounds; i++ {
		round := run.observed + 1
		if err := run.d.mix.NextRound(&run.r); err != nil {
			return false, err
		}
		run.d.applyDummies(&run.r)
		run.d.observe(&run.r)
		run.observed = round
		if round%cfg.CheckEvery == 0 && run.d.checkpoint(round) {
			run.done = true
		}
	}
	if run.observed >= cfg.MaxRounds {
		run.done = true
	}
	return run.done, nil
}

// Observed returns how many rounds the run has folded in so far.
func (run *DisclosureRun) Observed() int { return run.observed }

// Done reports whether the run has finished (all targets disclosed or
// budget exhausted).
func (run *DisclosureRun) Done() bool { return run.done }

// Result assembles the outcome from the estimators' current state. It
// may be called at any point; before Done it reports the attack as of
// the rounds observed so far (undisclosed targets censored at
// MaxRounds).
func (run *DisclosureRun) Result() *DisclosureResult {
	d := run.d
	cfg := &d.cfg
	res := &DisclosureResult{Rounds: run.observed, Targets: make([]TargetOutcome, len(d.targets))}
	var sumRounds, sumAnon float64
	disclosed := 0
	for i := range d.targets {
		t := &d.targets[i]
		rounds := cfg.MaxRounds
		if t.disclosed {
			rounds = t.rounds
			disclosed++
		}
		anon := d.anonymity(t)
		res.Targets[i] = TargetOutcome{
			User:              int(t.user),
			Disclosed:         t.disclosed,
			Rounds:            rounds,
			RoundsWith:        t.roundsWith,
			DegreeOfAnonymity: anon,
		}
		sumRounds += float64(rounds)
		sumAnon += anon
	}
	n := float64(len(d.targets))
	res.MeanRounds = sumRounds / n
	res.DisclosedFrac = float64(disclosed) / n
	res.MeanAnonymity = sumAnon / n
	return res
}

// RunDisclosure runs the statistical disclosure attack against the
// engine's population: rounds are observed until every target's contact
// set is identified or the budget runs out. One run consumes the engine
// (build a fresh engine per run); results are identical at any Workers
// width. It is StartDisclosure + one Step over the full budget.
func (e *Engine) RunDisclosure(cfg DisclosureConfig) (*DisclosureResult, error) {
	run, err := e.StartDisclosure(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := run.Step(run.d.cfg.MaxRounds); err != nil {
		return nil, err
	}
	return run.Result(), nil
}
