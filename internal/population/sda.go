package population

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"linkpad/internal/par"
	"linkpad/internal/traffic"
)

// Statistical disclosure (sda.go): the round-based intersection attack.
// The adversary watches the batch mix for many rounds; for a target user
// it contrasts the mean egress recipient vector of rounds in which the
// target sent against the mean of rounds in which it did not. The
// difference estimates the target's recipient distribution — the
// background contributed by everyone else cancels — and disclosure is
// declared when the estimate's top contacts match the target's true
// contact set stably. Cover traffic resists the attack twice over: the
// target's observable sends carry less and less real signal, and
// everyone else's dummies brighten the background noise.
//
// The estimators are sparse (sparse.go): each target accumulates only
// the recipients actually delivered in its observed rounds, never a
// dense length-R vector, so estimator memory scales with observed
// support rather than with the recipient space. Every quantity the
// attack reports — the difference-of-means estimate, the top-k contact
// test, the entropy — is computed from the sparse accumulators
// bit-identically to the dense formulation (absent coordinates are
// exactly zero, and zero coordinates are exact no-ops in every sum);
// sda_ref_test.go checks this against a dense reference implementation.

// DisclosureConfig parameterizes one statistical-disclosure run.
type DisclosureConfig struct {
	// Batch is the mix's flush threshold B (messages per round);
	// 0 selects the default 8.
	Batch int
	// Targets are the user IDs whose recipient sets the adversary tries
	// to disclose; empty selects 8 users evenly spread over the
	// population (covering every rate class under the striped class
	// assignment).
	Targets []int
	// MaxRounds is the observation budget; targets undisclosed at the
	// budget are censored at MaxRounds. 0 selects the default 4000.
	MaxRounds int
	// CheckEvery is the checkpoint granularity in rounds (0 = 25): the
	// estimate is tested at checkpoints, so rounds-to-disclosure is
	// resolved to this granularity.
	CheckEvery int
	// Consecutive is how many consecutive successful checkpoints the
	// estimate must hold before the target counts as disclosed (0 = 2);
	// a single lucky checkpoint is not disclosure.
	Consecutive int
	// ChurnAware masks rounds in which the target was offline (its churn
	// schedule down at the round's flush time) out of the estimator
	// entirely, instead of counting them as "target silent" rounds.
	// Presence is connection metadata the mix-side adversary observes, so
	// the mask uses nothing hidden. The mask conditions both means on the
	// *same* round population — rounds the target could have sent in —
	// which keeps the background cancellation exact even when presence is
	// correlated across users (diurnal populations, flash crowds): there
	// the naive without-mean samples the co-online population of *other
	// times* and inherits spurious contacts from whoever shares the
	// target's offline windows. Under independent per-user churn the
	// naive estimator stays unbiased and the mask mostly costs effective
	// without-rounds (ablation-churn quantifies the trade). No-op without
	// churn.
	ChurnAware bool
	// Workers bounds the engine's per-user generation parallelism;
	// results are identical at any width. Zero means all CPUs.
	Workers int
}

// WithDefaults returns the configuration with every zero field replaced
// by its default for a users-sized population. StartDisclosure applies
// it internally; callers that must reason about the effective knobs
// before running (budget scaling, checkpoint cadence) call it directly.
// Idempotent.
func (c DisclosureConfig) WithDefaults(users int) DisclosureConfig {
	return c.withDefaults(users)
}

// withDefaults fills zero fields.
func (c DisclosureConfig) withDefaults(users int) DisclosureConfig {
	if c.Batch == 0 {
		c.Batch = 8
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 4000
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 25
	}
	if c.Consecutive == 0 {
		c.Consecutive = 2
	}
	if len(c.Targets) == 0 {
		n := 8
		if n > users {
			n = users
		}
		c.Targets = make([]int, n)
		for i := range c.Targets {
			c.Targets[i] = i * users / n
		}
	}
	return c
}

// TargetOutcome reports the attack against one target user.
type TargetOutcome struct {
	// User is the target's user ID.
	User int
	// Disclosed reports whether the contact set was identified within
	// the budget.
	Disclosed bool
	// Rounds is the observed round count at disclosure; MaxRounds
	// (censored) if not disclosed.
	Rounds int
	// RoundsWith counts the rounds in which the target appeared as a
	// sender — the rounds that carry signal.
	RoundsWith int
	// DegreeOfAnonymity is the normalized entropy H(p̂)/ln(R) of the
	// adversary's final recipient estimate: 1 means the estimate is
	// uniform (full anonymity), 0 means it has collapsed to a point.
	DegreeOfAnonymity float64
}

// DisclosureResult reports one statistical-disclosure run.
type DisclosureResult struct {
	// Rounds is how many rounds were observed (the run stops early once
	// every target is disclosed).
	Rounds int
	// Targets holds the per-target outcomes in Targets order.
	Targets []TargetOutcome
	// MeanRounds averages rounds-to-disclosure over all targets,
	// censored values included — the population-level security number.
	MeanRounds float64
	// DisclosedFrac is the fraction of targets disclosed within budget.
	DisclosedFrac float64
	// MeanAnonymity averages the targets' final degree of anonymity.
	MeanAnonymity float64
}

// targetState is the adversary's running estimator for one target. The
// conditional-mean accumulators are sparse: coordinates appear as the
// corresponding recipients are first delivered in an observed round.
type targetState struct {
	user       int32
	contacts   []int32 // sorted ascending, the set to identify
	presence   *traffic.OnOffSchedule
	sumWith    sparseVec
	sumWithout sparseVec
	nWith      int
	nWithout   int
	iw, iwo    float64 // 1/nWith, 1/nWithout, refreshed by estReady
	roundsWith int
	masked     int // rounds skipped because the target was offline
	streak     int
	disclosed  bool
	rounds     int
	sent       bool // per-round scratch
}

// estReady reports whether both conditional means exist yet, caching
// their reciprocals for estimateAt.
func (t *targetState) estReady() bool {
	if t.nWith == 0 || t.nWithout == 0 {
		return false
	}
	t.iw, t.iwo = 1/float64(t.nWith), 1/float64(t.nWithout)
	return true
}

// estimateAt evaluates the target's recipient estimate at coordinate i:
// the clamped difference of conditional egress means, the exact float
// expression the dense estimator computed per entry. Coordinates
// outside sumWith's support evaluate to exactly 0 (the difference is
// ≤ 0 there and clamps).
func (t *targetState) estimateAt(i int32) float64 {
	v := t.sumWith.get(i)*t.iw - t.sumWithout.get(i)*t.iwo
	if v < 0 {
		v = 0
	}
	return v
}

// disclosure is one running attack: per-target estimators plus shared
// scratch, sized once so the round loop allocates nothing in steady
// state (estimator inserts stop once each target's observed support
// saturates).
type disclosure struct {
	eng       *Engine
	cfg       DisclosureConfig
	nrcpt     int
	targets   []targetState
	targetIdx []int32 // user -> target index, -1 if not a target
	topIdx    []int32
	topVal    []float64
	setScr    []int32
}

// newDisclosure validates cfg and sizes the estimators. It materializes
// the target users (the adversary knows who it is watching); everyone
// else stays cold until they send.
func newDisclosure(e *Engine, cfg DisclosureConfig) (*disclosure, error) {
	d := &disclosure{
		eng:       e,
		cfg:       cfg,
		nrcpt:     e.nrcpt,
		targets:   make([]targetState, len(cfg.Targets)),
		targetIdx: make([]int32, e.n),
	}
	for i := range d.targetIdx {
		d.targetIdx[i] = -1
	}
	maxK := 0
	for i, u := range cfg.Targets {
		if u < 0 || u >= e.n {
			return nil, fmt.Errorf("population: target user %d out of range", u)
		}
		if d.targetIdx[u] >= 0 {
			return nil, fmt.Errorf("population: duplicate target user %d", u)
		}
		d.targetIdx[u] = int32(i)
		cs := e.ContactsOf(u)
		sort.Slice(cs, func(a, b int) bool { return cs[a] < cs[b] })
		if len(cs) > maxK {
			maxK = len(cs)
		}
		d.targets[i] = targetState{
			user:     int32(u),
			contacts: cs,
		}
		if cfg.ChurnAware {
			d.targets[i].presence = e.PresenceOf(u)
		}
	}
	d.topIdx = make([]int32, maxK)
	d.topVal = make([]float64, maxK)
	d.setScr = make([]int32, maxK)
	return d, nil
}

// observe folds one round into every target's estimator. A churn-aware
// estimator skips rounds in which the target was offline at the flush
// instant (the round's last arrival) — see DisclosureConfig.ChurnAware.
// Allocation-free once the estimators' supports saturate.
func (d *disclosure) observe(r *Round) {
	for i := range d.targets {
		d.targets[i].sent = false
	}
	for _, u := range r.Users {
		if ti := d.targetIdx[u]; ti >= 0 {
			d.targets[ti].sent = true
		}
	}
	var flushT float64
	if len(r.Times) > 0 {
		flushT = r.Times[len(r.Times)-1]
	}
	for i := range d.targets {
		t := &d.targets[i]
		dst := &t.sumWithout
		if t.sent {
			dst = &t.sumWith
			t.nWith++
			t.roundsWith++
		} else {
			if t.presence != nil && !t.presence.UpAt(flushT) {
				t.masked++
				continue
			}
			t.nWithout++
		}
		for _, rc := range r.Rcpts {
			dst.add(rc, 1)
		}
	}
}

// checkpoint tests every undisclosed target's estimate against its true
// contact set, advancing disclosure streaks; it returns true once every
// target is disclosed. Allocation-free.
func (d *disclosure) checkpoint(round int) (allDone bool) {
	allDone = true
	for i := range d.targets {
		t := &d.targets[i]
		if t.disclosed {
			continue
		}
		if !t.estReady() {
			allDone = false
			continue
		}
		k := len(t.contacts)
		top := d.topK(t, k)
		if setsEqual(top, t.contacts, d.setScr) {
			t.streak++
		} else {
			t.streak = 0
		}
		if t.streak >= d.cfg.Consecutive {
			t.disclosed = true
			t.rounds = round
		} else {
			allDone = false
		}
	}
	return allDone
}

// topK selects the indices of the k largest estimate entries (ties break
// toward the lower recipient index) into the reusable scratch. The
// selection runs the same ascending-index insertion pass the dense
// estimator did, but only over the candidates that can win: every
// positive estimate lies inside sumWith's support, and when fewer than
// k positives exist the remaining winners are the lowest-index zero
// coordinates, which always lie inside [0, k) (at most k−1 of the first
// k coordinates can be positive then). Iterating the ascending merge of
// [0, k) and the support therefore visits a superset of the dense
// winners in the same order, so the selected set is identical.
func (d *disclosure) topK(t *targetState, k int) []int32 {
	idx, val := d.topIdx[:0], d.topVal[:0]
	sup := t.sumWith.idx
	next, si := int32(0), 0
	for int(next) < k || si < len(sup) {
		var i int32
		if int(next) < k && (si >= len(sup) || next <= sup[si]) {
			i = next
			if si < len(sup) && sup[si] == next {
				si++
			}
			next++
		} else {
			i = sup[si]
			si++
		}
		v := t.estimateAt(i)
		// Find the insertion point among the current k best.
		if len(idx) == k && v <= val[k-1] {
			continue
		}
		j := len(idx)
		if j < k {
			idx = append(idx, 0)
			val = append(val, 0)
		} else {
			j--
		}
		for j > 0 && v > val[j-1] {
			idx[j], val[j] = idx[j-1], val[j-1]
			j--
		}
		idx[j], val[j] = i, v
	}
	d.topIdx, d.topVal = idx, val
	return idx
}

// setsEqual compares two index sets using scr as sorting scratch; b must
// already be sorted ascending.
func setsEqual(a, b, scr []int32) bool {
	if len(a) != len(b) {
		return false
	}
	scr = scr[:0]
	scr = append(scr, a...)
	for i := 1; i < len(scr); i++ {
		for j := i; j > 0 && scr[j] < scr[j-1]; j-- {
			scr[j], scr[j-1] = scr[j-1], scr[j]
		}
	}
	for i := range scr {
		if scr[i] != b[i] {
			return false
		}
	}
	return true
}

// anonymity returns the normalized entropy of the target's final
// estimate; 1 when the adversary has no estimate at all. Every positive
// estimate coordinate lies inside sumWith's support, and zero
// coordinates add exactly 0 to the total and nothing to the entropy, so
// the ascending sweep of the support reproduces the dense sweep's
// floats term for term.
func (d *disclosure) anonymity(t *targetState) float64 {
	if !t.estReady() {
		return 1
	}
	var total float64
	for _, i := range t.sumWith.idx {
		total += t.estimateAt(i)
	}
	if total <= 0 {
		return 1
	}
	var h float64
	for _, i := range t.sumWith.idx {
		if v := t.estimateAt(i); v > 0 {
			p := v / total
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(d.nrcpt))
}

// DisclosureRun is a statistical-disclosure attack in progress: the same
// attack RunDisclosure executes, broken into resumable steps so a run
// can be checkpointed (Snapshot) mid-flight and continued on a freshly
// rebuilt engine (ResumeDisclosure). Observing all MaxRounds rounds
// through any sequence of Step calls produces byte-identical results to
// one uninterrupted RunDisclosure.
type DisclosureRun struct {
	d        *disclosure
	observed int
	done     bool
	r        Round
}

// StartDisclosure validates cfg against the engine and prepares a
// resumable disclosure run. The run consumes the engine; build a fresh
// engine per run.
func (e *Engine) StartDisclosure(cfg DisclosureConfig) (*DisclosureRun, error) {
	cfg = cfg.withDefaults(e.n)
	if cfg.Batch < 1 || cfg.MaxRounds < 1 || cfg.CheckEvery < 1 || cfg.Consecutive < 1 {
		return nil, errors.New("population: disclosure parameters must be positive")
	}
	e.SetWorkers(par.Workers(cfg.Workers))
	d, err := newDisclosure(e, cfg)
	if err != nil {
		return nil, err
	}
	return &DisclosureRun{d: d}, nil
}

// Step observes up to n more rounds, stopping early when every target is
// disclosed or the round budget is exhausted. It reports whether the run
// is finished.
func (run *DisclosureRun) Step(n int) (bool, error) {
	cfg := &run.d.cfg
	for i := 0; i < n && !run.done && run.observed < cfg.MaxRounds; i++ {
		round := run.observed + 1
		if err := run.d.eng.NextRound(cfg.Batch, &run.r); err != nil {
			return false, err
		}
		run.d.observe(&run.r)
		run.observed = round
		if round%cfg.CheckEvery == 0 && run.d.checkpoint(round) {
			run.done = true
		}
	}
	if run.observed >= cfg.MaxRounds {
		run.done = true
	}
	return run.done, nil
}

// Observed returns how many rounds the run has folded in so far.
func (run *DisclosureRun) Observed() int { return run.observed }

// Done reports whether the run has finished (all targets disclosed or
// budget exhausted).
func (run *DisclosureRun) Done() bool { return run.done }

// Result assembles the outcome from the estimators' current state. It
// may be called at any point; before Done it reports the attack as of
// the rounds observed so far (undisclosed targets censored at
// MaxRounds).
func (run *DisclosureRun) Result() *DisclosureResult {
	d := run.d
	cfg := &d.cfg
	res := &DisclosureResult{Rounds: run.observed, Targets: make([]TargetOutcome, len(d.targets))}
	var sumRounds, sumAnon float64
	disclosed := 0
	for i := range d.targets {
		t := &d.targets[i]
		rounds := cfg.MaxRounds
		if t.disclosed {
			rounds = t.rounds
			disclosed++
		}
		anon := d.anonymity(t)
		res.Targets[i] = TargetOutcome{
			User:              int(t.user),
			Disclosed:         t.disclosed,
			Rounds:            rounds,
			RoundsWith:        t.roundsWith,
			DegreeOfAnonymity: anon,
		}
		sumRounds += float64(rounds)
		sumAnon += anon
	}
	n := float64(len(d.targets))
	res.MeanRounds = sumRounds / n
	res.DisclosedFrac = float64(disclosed) / n
	res.MeanAnonymity = sumAnon / n
	return res
}

// RunDisclosure runs the statistical disclosure attack against the
// engine's population: rounds are observed until every target's contact
// set is identified or the budget runs out. One run consumes the engine
// (build a fresh engine per run); results are identical at any Workers
// width. It is StartDisclosure + one Step over the full budget.
func (e *Engine) RunDisclosure(cfg DisclosureConfig) (*DisclosureResult, error) {
	run, err := e.StartDisclosure(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := run.Step(run.d.cfg.MaxRounds); err != nil {
		return nil, err
	}
	return run.Result(), nil
}
