package population

import (
	"errors"
	"fmt"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// Checkpoint/resume (checkpoint.go): serializable snapshots of the
// population engine and of a disclosure run in progress.
//
// The design leans on the repository's determinism discipline to keep
// snapshots small: everything that is a pure function of a stream seed —
// user classes, recipient profiles, churn schedules, slab sizing — is
// *rebuilt* from the system description on resume, never serialized.
// What a snapshot carries is only the mutable cursor state: each user's
// source state and generation cursor, the unconsumed remainder of the
// merged event queue, and (for a disclosure run) the per-target
// estimator accumulators. Resuming a snapshot on a freshly rebuilt,
// identically configured engine continues the run byte-identically to
// one that was never interrupted; the kill-and-resume tests enforce
// this at randomized kill points.
//
// All types marshal with encoding/json. Snapshots validate on restore —
// a snapshot from a differently shaped population (user count, recipient
// space, target list) is rejected rather than silently misapplied.

// EventState is one queued event in an engine snapshot.
type EventState struct {
	T     float64 `json:"t"`
	User  int32   `json:"user"`
	Rcpt  int32   `json:"rcpt"`
	Dummy bool    `json:"dummy,omitempty"`
}

// UserEngineState is one user's generation cursor in an engine snapshot.
type UserEngineState struct {
	// Sup is the user's merged payload+cover source state.
	Sup traffic.SourceState `json:"sup"`
	// NextT is the absolute time of the user's pending (not yet merged)
	// arrival.
	NextT float64 `json:"next_t"`
	// NextCover reports whether the pending arrival is a cover message.
	NextCover bool `json:"next_cover,omitempty"`
	// RNG is the user's recipient-draw stream state.
	RNG xrand.State `json:"rng"`
}

// EngineState is a serializable snapshot of a population engine between
// rounds.
type EngineState struct {
	// Users/Recipients pin the population shape the snapshot belongs to.
	Users      int `json:"users"`
	Recipients int `json:"recipients"`
	// SlabEnd is the generation horizon reached so far.
	SlabEnd float64 `json:"slab_end"`
	// Rounds is how many rounds the engine has emitted.
	Rounds int `json:"rounds"`
	// Queue holds the merged events generated but not yet consumed.
	Queue []EventState `json:"queue"`
	// States holds every user's generation cursor, in user order.
	States []UserEngineState `json:"states"`
}

// Snapshot captures the engine's mutable state. The engine is not
// consumed — a run may snapshot and keep going, which is how periodic
// checkpointing works.
func (e *Engine) Snapshot() (*EngineState, error) {
	st := &EngineState{
		Users:      len(e.users),
		Recipients: e.nrcpt,
		SlabEnd:    e.slabEnd,
		Rounds:     e.rounds,
		Queue:      make([]EventState, 0, len(e.queue)-e.qi),
		States:     make([]UserEngineState, len(e.states)),
	}
	for _, ev := range e.queue[e.qi:] {
		st.Queue = append(st.Queue, EventState{T: ev.t, User: ev.user, Rcpt: ev.rcpt, Dummy: ev.dummy})
	}
	for u := range e.states {
		us := &e.states[u]
		sup, err := traffic.Snapshot(us.sup)
		if err != nil {
			return nil, fmt.Errorf("population: snapshot user %d: %w", u, err)
		}
		st.States[u] = UserEngineState{
			Sup:       sup,
			NextT:     us.nextT,
			NextCover: us.nextCover,
			RNG:       e.users[u].RNG.State(),
		}
	}
	return st, nil
}

// Restore applies a snapshot to a freshly built engine of the identical
// population (same system description, spec and seed — the immutable
// structure is rebuilt, not serialized). Churn schedules need no state:
// each is a pure function of its private stream, so the rebuilt
// schedule reproduces the snapshotted one exactly.
func (e *Engine) Restore(st *EngineState) error {
	if st == nil {
		return errors.New("population: nil engine snapshot")
	}
	if st.Users != len(e.users) || st.Recipients != e.nrcpt {
		return fmt.Errorf("population: snapshot shape %d users/%d recipients, engine has %d/%d",
			st.Users, st.Recipients, len(e.users), e.nrcpt)
	}
	if len(st.States) != len(e.states) {
		return fmt.Errorf("population: snapshot has %d user states for %d users", len(st.States), len(e.states))
	}
	for u := range e.states {
		us := &e.states[u]
		ss := &st.States[u]
		if err := traffic.Restore(us.sup, ss.Sup); err != nil {
			return fmt.Errorf("population: restore user %d: %w", u, err)
		}
		us.nextT = ss.NextT
		us.nextCover = ss.NextCover
		e.users[u].RNG.SetState(ss.RNG)
	}
	e.slabEnd = st.SlabEnd
	e.rounds = st.Rounds
	e.queue = e.queue[:0]
	for _, ev := range st.Queue {
		e.queue = append(e.queue, event{t: ev.T, user: ev.User, rcpt: ev.Rcpt, dummy: ev.Dummy})
	}
	e.qi = 0
	return nil
}

// TargetEstimatorState is one target's estimator accumulators in a
// disclosure snapshot.
type TargetEstimatorState struct {
	User       int32     `json:"user"`
	SumWith    []float64 `json:"sum_with"`
	SumWithout []float64 `json:"sum_without"`
	NWith      int       `json:"n_with"`
	NWithout   int       `json:"n_without"`
	RoundsWith int       `json:"rounds_with"`
	Masked     int       `json:"masked,omitempty"`
	Streak     int       `json:"streak,omitempty"`
	Disclosed  bool      `json:"disclosed,omitempty"`
	Rounds     int       `json:"rounds,omitempty"`
}

// DisclosureState is a serializable snapshot of a disclosure run in
// progress: the engine state plus every target's estimator.
type DisclosureState struct {
	Observed int                    `json:"observed"`
	Done     bool                   `json:"done,omitempty"`
	Engine   EngineState            `json:"engine"`
	Targets  []TargetEstimatorState `json:"targets"`
}

// Snapshot captures the run's full mutable state; the run keeps going.
func (run *DisclosureRun) Snapshot() (*DisclosureState, error) {
	eng, err := run.d.eng.Snapshot()
	if err != nil {
		return nil, err
	}
	st := &DisclosureState{
		Observed: run.observed,
		Done:     run.done,
		Engine:   *eng,
		Targets:  make([]TargetEstimatorState, len(run.d.targets)),
	}
	for i := range run.d.targets {
		t := &run.d.targets[i]
		st.Targets[i] = TargetEstimatorState{
			User:       t.user,
			SumWith:    append([]float64(nil), t.sumWith...),
			SumWithout: append([]float64(nil), t.sumWithout...),
			NWith:      t.nWith,
			NWithout:   t.nWithout,
			RoundsWith: t.roundsWith,
			Masked:     t.masked,
			Streak:     t.streak,
			Disclosed:  t.disclosed,
			Rounds:     t.rounds,
		}
	}
	return st, nil
}

// ResumeDisclosure continues a snapshotted disclosure run on a freshly
// built engine of the identical population, under the identical config.
// Stepping the resumed run to completion yields byte-identical results
// to the uninterrupted run.
func (e *Engine) ResumeDisclosure(cfg DisclosureConfig, st *DisclosureState) (*DisclosureRun, error) {
	if st == nil {
		return nil, errors.New("population: nil disclosure snapshot")
	}
	run, err := e.StartDisclosure(cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Targets) != len(run.d.targets) {
		return nil, fmt.Errorf("population: snapshot has %d targets, config selects %d",
			len(st.Targets), len(run.d.targets))
	}
	if err := e.Restore(&st.Engine); err != nil {
		return nil, err
	}
	for i := range run.d.targets {
		t := &run.d.targets[i]
		ts := &st.Targets[i]
		if ts.User != t.user {
			return nil, fmt.Errorf("population: snapshot target %d is user %d, config selects user %d",
				i, ts.User, t.user)
		}
		if len(ts.SumWith) != e.nrcpt || len(ts.SumWithout) != e.nrcpt {
			return nil, fmt.Errorf("population: snapshot target %d estimator spans %d recipients, engine has %d",
				i, len(ts.SumWith), e.nrcpt)
		}
		copy(t.sumWith, ts.SumWith)
		copy(t.sumWithout, ts.SumWithout)
		t.nWith = ts.NWith
		t.nWithout = ts.NWithout
		t.roundsWith = ts.RoundsWith
		t.masked = ts.Masked
		t.streak = ts.Streak
		t.disclosed = ts.Disclosed
		t.rounds = ts.Rounds
	}
	run.observed = st.Observed
	run.done = st.Done
	return run, nil
}
