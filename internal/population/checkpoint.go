package population

import (
	"errors"
	"fmt"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// Checkpoint/resume (checkpoint.go): serializable snapshots of the
// population engine and of a disclosure run in progress.
//
// The design leans on the repository's determinism discipline to keep
// snapshots small: everything that is a pure function of a stream seed —
// user classes, recipient profiles, churn schedules, slab sizing — is
// *rebuilt* from the system description on resume, never serialized.
// What a snapshot carries is only the mutable cursor state: the
// generation cursors of the users that have materialized (a cold user's
// frontier is exactly what a fresh engine's init pass recomputes, so
// cold users serialize to nothing at all), the unconsumed remainder of
// the merged event stream, and (for a disclosure run) the per-target
// sparse estimator accumulators. Resuming a snapshot on a freshly
// rebuilt, identically configured engine continues the run
// byte-identically to one that was never interrupted; the
// kill-and-resume tests enforce this at randomized kill points.
//
// All types marshal with encoding/json. Snapshots validate on restore —
// a snapshot from a differently shaped population (user count, recipient
// space, target list) is rejected rather than silently misapplied.

// EventState is one queued event in an engine snapshot.
type EventState struct {
	T     float64 `json:"t"`
	User  int32   `json:"user"`
	Rcpt  int32   `json:"rcpt"`
	Dummy bool    `json:"dummy,omitempty"`
}

// WarmUserState is one materialized user's generation cursor in an
// engine snapshot. Only warm users appear; everyone still cold is
// reconstructed from the builder's init pass on resume.
type WarmUserState struct {
	// User is the user's index.
	User int `json:"user"`
	// Sup is the user's merged payload+cover source state.
	Sup traffic.SourceState `json:"sup"`
	// NextT is the absolute time of the user's pending (not yet merged)
	// arrival.
	NextT float64 `json:"next_t"`
	// NextCover reports whether the pending arrival is a cover message.
	NextCover bool `json:"next_cover,omitempty"`
	// RNG is the user's recipient-draw stream state.
	RNG xrand.State `json:"rng"`
}

// EngineState is a serializable snapshot of a population engine between
// rounds.
type EngineState struct {
	// Users/Recipients pin the population shape the snapshot belongs to.
	Users      int `json:"users"`
	Recipients int `json:"recipients"`
	// SlabEnd is the generation horizon reached so far.
	SlabEnd float64 `json:"slab_end"`
	// Rounds is how many rounds the engine has emitted.
	Rounds int `json:"rounds"`
	// Queue holds the merged events generated but not yet consumed, in
	// emission order.
	Queue []EventState `json:"queue"`
	// Warm holds the materialized users' generation cursors, ascending
	// by user index.
	Warm []WarmUserState `json:"warm"`
}

// Snapshot captures the engine's mutable state. The engine is not
// consumed — a run may snapshot and keep going, which is how periodic
// checkpointing works.
func (e *Engine) Snapshot() (*EngineState, error) {
	pending := e.pendingEvents()
	st := &EngineState{
		Users:      e.n,
		Recipients: e.nrcpt,
		SlabEnd:    e.slabEnd,
		Rounds:     e.rounds,
		Queue:      make([]EventState, 0, len(pending)),
	}
	for _, ev := range pending {
		st.Queue = append(st.Queue, EventState{T: ev.t, User: ev.user, Rcpt: ev.rcpt, Dummy: ev.dummy})
	}
	for u, ws := range e.warm {
		if ws == nil {
			continue
		}
		sup, err := traffic.Snapshot(ws.sup)
		if err != nil {
			return nil, fmt.Errorf("population: snapshot user %d: %w", u, err)
		}
		st.Warm = append(st.Warm, WarmUserState{
			User:      u,
			Sup:       sup,
			NextT:     e.nextT[u],
			NextCover: e.nextCover[u],
			RNG:       ws.usr.RNG.State(),
		})
	}
	return st, nil
}

// Restore applies a snapshot to a freshly built engine of the identical
// population (same system description, spec and seed — the immutable
// structure is rebuilt, not serialized). Churn schedules need no state:
// each is a pure function of its private stream, so the rebuilt
// schedule reproduces the snapshotted one exactly. Likewise every user
// absent from the snapshot's warm list was cold when it was taken, and
// the fresh engine's recomputed frontier for it already matches.
func (e *Engine) Restore(st *EngineState) error {
	if st == nil {
		return errors.New("population: nil engine snapshot")
	}
	if st.Users != e.n || st.Recipients != e.nrcpt {
		return fmt.Errorf("population: snapshot shape %d users/%d recipients, engine has %d/%d",
			st.Users, st.Recipients, e.n, e.nrcpt)
	}
	for i := range st.Warm {
		ws := &st.Warm[i]
		if ws.User < 0 || ws.User >= e.n {
			return fmt.Errorf("population: snapshot warm user %d out of range", ws.User)
		}
		if i > 0 && st.Warm[i-1].User >= ws.User {
			return fmt.Errorf("population: snapshot warm users not ascending at index %d", i)
		}
	}
	for i := range st.Warm {
		ws := &st.Warm[i]
		us, err := e.warmUp(ws.User)
		if err != nil {
			return err
		}
		if err := traffic.Restore(us.sup, ws.Sup); err != nil {
			return fmt.Errorf("population: restore user %d: %w", ws.User, err)
		}
		us.usr.RNG.SetState(ws.RNG)
		e.nextT[ws.User] = ws.NextT
		e.nextCover[ws.User] = ws.NextCover
	}
	e.slabEnd = st.SlabEnd
	e.rounds = st.Rounds
	e.shards = nil
	e.heap = e.heap[:0]
	e.restored = make([]event, 0, len(st.Queue))
	for _, ev := range st.Queue {
		e.restored = append(e.restored, event{t: ev.T, user: ev.User, rcpt: ev.Rcpt, dummy: ev.Dummy})
	}
	e.ri = 0
	if len(e.restored) == 0 {
		e.restored = nil
	}
	return nil
}

// SparseCounts is one sparse accumulator in a disclosure snapshot:
// parallel coordinate/count slices with Idx strictly ascending.
type SparseCounts struct {
	Idx []int32   `json:"idx,omitempty"`
	Val []float64 `json:"val,omitempty"`
}

// validate checks a serialized sparse accumulator's invariants against
// the recipient space.
func (s *SparseCounts) validate(what string, nrcpt int) error {
	if len(s.Idx) != len(s.Val) {
		return fmt.Errorf("population: snapshot %s has %d indices for %d values",
			what, len(s.Idx), len(s.Val))
	}
	for i, ix := range s.Idx {
		if ix < 0 || int(ix) >= nrcpt {
			return fmt.Errorf("population: snapshot %s coordinate %d out of range [0,%d)", what, ix, nrcpt)
		}
		if i > 0 && s.Idx[i-1] >= ix {
			return fmt.Errorf("population: snapshot %s coordinates not ascending at index %d", what, i)
		}
	}
	return nil
}

// LSEstimatorState is the least-squares estimator's accumulators in a
// disclosure snapshot: the three scalar regressor moments and the two
// sparse right-hand sides.
type LSEstimatorState struct {
	Saa float64      `json:"saa"`
	Sab float64      `json:"sab"`
	Sbb float64      `json:"sbb"`
	Say SparseCounts `json:"say"`
	Sby SparseCounts `json:"sby"`
}

// MLGroupState is one (a, n) group of the ML estimator's sufficient
// statistics: c observed rounds in which the target sent a of the n
// messages, with their summed egress counts.
type MLGroupState struct {
	A int32        `json:"a"`
	N int32        `json:"n"`
	C float64      `json:"c"`
	Y SparseCounts `json:"y"`
}

// MLEstimatorState is the ML estimator's grouped sufficient statistics
// in a disclosure snapshot, ascending by (a, n). The EM estimate itself
// is never serialized — it is recomputed from the groups on resume,
// which is what keeps a resumed run byte-identical.
type MLEstimatorState struct {
	Groups []MLGroupState `json:"groups,omitempty"`
}

// MixPolicyState is a mix policy's mutable state in a disclosure
// snapshot. The threshold mix has none; the pool mix carries its pooled
// events and retention stream; the timed mix carries its grid cursor
// and one-event lookahead. Fields of the other policies must be absent
// — restore rejects a state that mixes them.
type MixPolicyState struct {
	// Pool holds the pool mix's retained events in arrival order.
	Pool []EventState `json:"pool,omitempty"`
	// RNG is the pool mix's retention stream state.
	RNG *xrand.State `json:"rng,omitempty"`
	// NextFlush is the timed mix's next grid boundary (0 = unstarted).
	NextFlush float64 `json:"next_flush,omitempty"`
	// Peeked is the timed mix's one-event lookahead, if one is held.
	Peeked *EventState `json:"peeked,omitempty"`
}

// TargetEstimatorState is one target's estimator accumulators in a
// disclosure snapshot. SumWith/SumWithout/NWith/NWithout carry the
// classic estimator (and NWith/NWithout the round counts of the
// others); LS and ML carry the respective variants' extra accumulators
// and are absent otherwise.
type TargetEstimatorState struct {
	User       int32             `json:"user"`
	SumWith    SparseCounts      `json:"sum_with"`
	SumWithout SparseCounts      `json:"sum_without"`
	NWith      int               `json:"n_with"`
	NWithout   int               `json:"n_without"`
	LS         *LSEstimatorState `json:"ls,omitempty"`
	ML         *MLEstimatorState `json:"ml,omitempty"`
	RoundsWith int               `json:"rounds_with"`
	Masked     int               `json:"masked,omitempty"`
	Streak     int               `json:"streak,omitempty"`
	Disclosed  bool              `json:"disclosed,omitempty"`
	Rounds     int               `json:"rounds,omitempty"`
	// Dummies is the adaptive dummy policy's rotation cursor.
	Dummies int `json:"dummies,omitempty"`
}

// DisclosureState is a serializable snapshot of a disclosure run in
// progress: the engine state, the mix policy's state, and every
// target's estimator. Mix/Estimator/Dummies pin the configuration the
// snapshot was taken under — ResumeDisclosure rejects a resuming config
// that differs, rather than silently mixing accumulators from one
// attack into another. All three are absent for the default
// threshold/classic/none run, so pre-arms-race snapshots decode to
// exactly the configuration they were taken under.
type DisclosureState struct {
	Observed  int                    `json:"observed"`
	Done      bool                   `json:"done,omitempty"`
	Mix       *MixSpec               `json:"mix,omitempty"`
	Estimator EstimatorKind          `json:"estimator,omitempty"`
	Dummies   DummyPolicy            `json:"dummies,omitempty"`
	MixState  *MixPolicyState        `json:"mix_state,omitempty"`
	Engine    EngineState            `json:"engine"`
	Targets   []TargetEstimatorState `json:"targets"`
}

// Snapshot captures the run's full mutable state; the run keeps going.
func (run *DisclosureRun) Snapshot() (*DisclosureState, error) {
	eng, err := run.d.eng.Snapshot()
	if err != nil {
		return nil, err
	}
	cfg := &run.d.cfg
	st := &DisclosureState{
		Observed:  run.observed,
		Done:      run.done,
		Estimator: cfg.Estimator,
		Dummies:   cfg.Dummies,
		MixState:  run.d.mix.snapshot(),
		Engine:    *eng,
		Targets:   make([]TargetEstimatorState, len(run.d.targets)),
	}
	if cfg.Mix.Kind != MixThreshold {
		mix := cfg.Mix // defaults-applied by StartDisclosure
		st.Mix = &mix
	}
	for i := range run.d.targets {
		t := &run.d.targets[i]
		ts := &st.Targets[i]
		ts.User = t.user
		t.est.snapshot(ts)
		ts.RoundsWith = t.roundsWith
		ts.Masked = t.masked
		ts.Streak = t.streak
		ts.Disclosed = t.disclosed
		ts.Rounds = t.rounds
		ts.Dummies = t.dumCount
	}
	return st, nil
}

// ResumeDisclosure continues a snapshotted disclosure run on a freshly
// built engine of the identical population, under the identical config.
// The snapshot records the mix/estimator/dummy configuration it was
// taken under, and a resuming config that disagrees is rejected with a
// clear error — the accumulators of one attack mean nothing to another.
// Stepping the resumed run to completion yields byte-identical results
// to the uninterrupted run.
func (e *Engine) ResumeDisclosure(cfg DisclosureConfig, st *DisclosureState) (*DisclosureRun, error) {
	if st == nil {
		return nil, errors.New("population: nil disclosure snapshot")
	}
	run, err := e.StartDisclosure(cfg)
	if err != nil {
		return nil, err
	}
	rcfg := &run.d.cfg // defaults-applied
	var snapMix MixSpec
	if st.Mix != nil {
		snapMix = *st.Mix
	}
	snapMix = snapMix.withDefaults()
	if snapMix.Kind != rcfg.Mix.Kind {
		return nil, fmt.Errorf("population: snapshot was taken under a %s mix, config selects %s",
			snapMix.Kind, rcfg.Mix.Kind)
	}
	if snapMix != rcfg.Mix {
		return nil, fmt.Errorf("population: snapshot %s mix parameters %+v differ from the resuming config's %+v",
			snapMix.Kind, snapMix, rcfg.Mix)
	}
	if st.Estimator != rcfg.Estimator {
		return nil, fmt.Errorf("population: snapshot was taken with the %s estimator, config selects %s",
			st.Estimator, rcfg.Estimator)
	}
	if st.Dummies != rcfg.Dummies {
		return nil, fmt.Errorf("population: snapshot was taken under the %s dummy policy, config selects %s",
			st.Dummies, rcfg.Dummies)
	}
	if len(st.Targets) != len(run.d.targets) {
		return nil, fmt.Errorf("population: snapshot has %d targets, config selects %d",
			len(st.Targets), len(run.d.targets))
	}
	if err := e.Restore(&st.Engine); err != nil {
		return nil, err
	}
	if err := run.d.mix.restore(st.MixState); err != nil {
		return nil, err
	}
	for i := range run.d.targets {
		t := &run.d.targets[i]
		ts := &st.Targets[i]
		if ts.User != t.user {
			return nil, fmt.Errorf("population: snapshot target %d is user %d, config selects user %d",
				i, ts.User, t.user)
		}
		if err := t.est.restore(ts, e.nrcpt); err != nil {
			return nil, err
		}
		t.roundsWith = ts.RoundsWith
		t.masked = ts.Masked
		t.streak = ts.Streak
		t.disclosed = ts.Disclosed
		t.rounds = ts.Rounds
		t.dumCount = ts.Dummies
	}
	run.observed = st.Observed
	run.done = st.Done
	return run, nil
}
