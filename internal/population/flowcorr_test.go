package population

import (
	"testing"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// rawFlowSim simulates unpadded flows: egress equals ingress, so the
// throughput fingerprint is perfect and the matching must be too.
func rawFlowSim(user int, duration float64) (*Flow, error) {
	rng := xrand.New(uint64(7000 + user))
	src, err := traffic.NewPoisson(10+float64(user%2)*30, rng)
	if err != nil {
		return nil, err
	}
	f := &Flow{Class: user % 2}
	t := 0.0
	for {
		t += src.Next()
		if t > duration {
			break
		}
		f.Ingress = append(f.Ingress, t)
		f.Egress = append(f.Egress, t)
	}
	return f, nil
}

// constantFlowSim pads every egress flow to an identical CBR stream:
// zero throughput fingerprint, so matching cannot beat chance
// structurally (every score ties and the greedy matching resolves by
// index, which happens to assign everyone correctly — so assert on the
// correlation, not the accuracy).
func constantFlowSim(user int, duration float64) (*Flow, error) {
	rng := xrand.New(uint64(9000 + user))
	src, err := traffic.NewPoisson(20, rng)
	if err != nil {
		return nil, err
	}
	f := &Flow{Class: 0}
	t := 0.0
	for {
		t += src.Next()
		if t > duration {
			break
		}
		f.Ingress = append(f.Ingress, t)
	}
	for i := 0; i < int(duration*100); i++ {
		f.Egress = append(f.Egress, float64(i)*0.01)
	}
	return f, nil
}

func TestCorrelateFlowsRawIsPerfect(t *testing.T) {
	res, err := CorrelateFlows(rawFlowSim, 12, FlowCorrConfig{Duration: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 {
		t.Errorf("raw flows: accuracy %v, want 1", res.Accuracy)
	}
	if res.MeanRank != 1 {
		t.Errorf("raw flows: mean rank %v, want 1", res.MeanRank)
	}
	if res.MeanCorrTrue < 0.999 {
		t.Errorf("raw flows: mean correlation %v, want ≈ 1", res.MeanCorrTrue)
	}
	if res.ClassAccuracy != 0 {
		t.Errorf("no classifiers were supplied, class accuracy should be 0, got %v", res.ClassAccuracy)
	}
}

func TestCorrelateFlowsConstantEgressHasNoFingerprint(t *testing.T) {
	res, err := CorrelateFlows(constantFlowSim, 12, FlowCorrConfig{Duration: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCorrTrue > 0.05 || res.MeanCorrTrue < -0.05 {
		t.Errorf("constant egress: mean correlation %v, want ≈ 0", res.MeanCorrTrue)
	}
}

// Flow results must be identical at any worker width.
func TestCorrelateFlowsWorkerInvariance(t *testing.T) {
	run := func(workers int) *FlowCorrResult {
		res, err := CorrelateFlows(rawFlowSim, 12, FlowCorrConfig{Duration: 30, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{2, 4, 0} {
		got := run(w)
		if *got != *ref {
			t.Fatalf("workers=%d: %+v differs from reference %+v", w, got, ref)
		}
	}
}

func TestCorrelateFlowsValidation(t *testing.T) {
	if _, err := CorrelateFlows(nil, 4, FlowCorrConfig{Duration: 10}); err == nil {
		t.Error("nil simulator should fail")
	}
	if _, err := CorrelateFlows(rawFlowSim, 1, FlowCorrConfig{Duration: 10}); err == nil {
		t.Error("single user should fail")
	}
	if _, err := CorrelateFlows(rawFlowSim, 4, FlowCorrConfig{}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := CorrelateFlows(rawFlowSim, 4, FlowCorrConfig{Duration: 1}); err == nil {
		t.Error("sub-window duration should fail")
	}
}
