package population

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// lazy_test.go: the sharded lazy engine's equivalence properties. The
// k-way shard reduction must replay the eager engine's merge order
// exactly, at any shard size and any worker count; lazy materialization
// must leave never-sending users cold; and ResumeDisclosure must
// round-trip the sharded engine state at arbitrary kill points.

// refBuilder returns a pure per-user builder over the refUsers
// population: building user u twice yields identically seeded stacks.
func refBuilder(t *testing.T, recipients int, cover, churn bool) Builder {
	t.Helper()
	return func(u int) (User, error) {
		master := xrand.New(uint64(3000 + u))
		rate := 5 + float64(u%3)*20
		msgs, err := traffic.NewPoisson(rate, master.Split())
		if err != nil {
			return User{}, err
		}
		var cov traffic.Source
		if cover {
			cov, err = traffic.NewPoisson(rate, master.Split())
			if err != nil {
				return User{}, err
			}
		}
		prng := master.Split()
		prof, err := NewProfile(recipients, 3, 0.7, prng)
		if err != nil {
			return User{}, err
		}
		usr := User{Class: u % 3, Messages: msgs, Cover: cov, Profile: prof, RNG: prng}
		if churn {
			sched, err := traffic.NewOnOffSchedule(0.05, 0.05, xrand.New(uint64(7000+u)))
			if err != nil {
				return User{}, err
			}
			usr.Presence = sched
		}
		return usr, nil
	}
}

// collectRounds drains n rounds into deep copies.
func collectRounds(t *testing.T, e *Engine, n, batch int) []Round {
	t.Helper()
	out := make([]Round, n)
	var r Round
	for i := range out {
		if err := e.NextRound(batch, &r); err != nil {
			t.Fatal(err)
		}
		out[i] = Round{
			Users: append([]int32(nil), r.Users...),
			Rcpts: append([]int32(nil), r.Rcpts...),
			Dummy: append([]bool(nil), r.Dummy...),
			Times: append([]float64(nil), r.Times...),
		}
	}
	return out
}

// TestLazyEngineMatchesEager: a lazily materialized engine emits the
// byte-identical round stream of an eager engine over the same users.
func TestLazyEngineMatchesEager(t *testing.T) {
	const n, recipients = 60, 80
	eager, err := NewEngine(refUsers(t, n, recipients, true, false), recipients)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewLazyEngine(n, recipients, refBuilder(t, recipients, true, false))
	if err != nil {
		t.Fatal(err)
	}
	want := collectRounds(t, eager, 300, 8)
	got := collectRounds(t, lazy, 300, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("lazy engine round stream differs from eager engine")
	}
}

// TestLazyEngineShardInvariance: the round stream is invariant to the
// shard partition — a 7-user shard reduction over many shards replays a
// single-shard run exactly (slab horizons may differ across partitions,
// the merged (time, user) order may not).
func TestLazyEngineShardInvariance(t *testing.T) {
	const n, recipients = 50, 80
	run := func(shardSize int) []Round {
		e, err := newLazyEngine(n, recipients, shardSize, refBuilder(t, recipients, true, true))
		if err != nil {
			t.Fatal(err)
		}
		return collectRounds(t, e, 300, 8)
	}
	want := run(1 << 20) // single shard
	for _, ss := range []int{1, 7, 16} {
		if got := run(ss); !reflect.DeepEqual(got, want) {
			t.Fatalf("shardSize=%d: round stream differs from single-shard run", ss)
		}
	}
}

// TestLazyEngineWorkerInvariance: per-shard generation parallelism never
// changes the stream.
func TestLazyEngineWorkerInvariance(t *testing.T) {
	const n, recipients = 64, 80
	run := func(workers int) []Round {
		e, err := newLazyEngine(n, recipients, 8, refBuilder(t, recipients, true, false))
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkers(workers)
		return collectRounds(t, e, 200, 8)
	}
	want := run(1)
	for _, w := range []int{2, 4, 0} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: round stream differs", w)
		}
	}
}

// TestLazyEngineColdUsers: users whose first arrival lies beyond the
// observed horizon hold no source state. A population where most users
// send at a vanishing rate stays mostly cold through a short run.
func TestLazyEngineColdUsers(t *testing.T) {
	const n, recipients = 2000, 40
	const hot = 8
	build := func(u int) (User, error) {
		master := xrand.New(uint64(5000 + u))
		rate := 1e-6 // one arrival per ~11 simulated days
		if u%(n/hot) == 0 {
			rate = 50
		}
		msgs, err := traffic.NewPoisson(rate, master.Split())
		if err != nil {
			return User{}, err
		}
		prng := master.Split()
		prof, err := NewProfile(recipients, 3, 0.7, prng)
		if err != nil {
			return User{}, err
		}
		return User{Messages: msgs, Profile: prof, RNG: prng}, nil
	}
	e, err := NewLazyEngine(n, recipients, build)
	if err != nil {
		t.Fatal(err)
	}
	var r Round
	for i := 0; i < 100; i++ {
		if err := e.NextRound(8, &r); err != nil {
			t.Fatal(err)
		}
	}
	if w := e.WarmUsers(); w > n/10 {
		t.Fatalf("%d of %d users warm after a short run; lazy materialization is not lazy", w, n)
	} else if w == 0 {
		t.Fatal("no users warm despite emitted rounds")
	}
}

// TestLazyEngineAccessorsWarm: the read-only accessors materialize cold
// users on demand and agree with the builder's output.
func TestLazyEngineAccessorsWarm(t *testing.T) {
	const n, recipients = 40, 80
	build := refBuilder(t, recipients, false, true)
	e, err := NewLazyEngine(n, recipients, build)
	if err != nil {
		t.Fatal(err)
	}
	u := 17
	want, err := build(u)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Class(u); got != want.Class {
		t.Fatalf("Class(%d) = %d, want %d", u, got, want.Class)
	}
	if got := e.ContactsOf(u); !reflect.DeepEqual(got, want.Profile.Contacts()) {
		t.Fatalf("ContactsOf(%d) = %v, want %v", u, got, want.Profile.Contacts())
	}
	if e.PresenceOf(u) == nil {
		t.Fatalf("PresenceOf(%d) = nil for a churned population", u)
	}
	if e.WarmUsers() != 1 {
		t.Fatalf("accessor warmed %d users, want exactly 1", e.WarmUsers())
	}
}

// TestLazyEngineBuilderError: a failing builder surfaces as a
// constructor error, not a panic or a silent hole.
func TestLazyEngineBuilderError(t *testing.T) {
	boom := errors.New("boom")
	_, err := NewLazyEngine(10, 40, func(u int) (User, error) {
		if u == 7 {
			return User{}, boom
		}
		return refBuilder(t, 40, false, false)(u)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("builder error not surfaced: %v", err)
	}
	if _, err := NewLazyEngine(10, 40, nil); err == nil {
		t.Fatal("nil builder accepted")
	}
}

// TestLazyDisclosureKillAndResume: ResumeDisclosure round-trips the
// sharded lazy engine state — kill at randomized rounds, serialize
// through JSON, rebuild a fresh lazy engine (cold users and all), and
// demand the resumed run finish byte-identically to the uninterrupted
// one. Small shards force the snapshot to traverse a multi-shard merge
// frontier.
func TestLazyDisclosureKillAndResume(t *testing.T) {
	const n, recipients, shardSize = 36, 120, 5
	build := func() *Engine {
		e, err := newLazyEngine(n, recipients, shardSize, refBuilder(t, recipients, true, true))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	cfg := DisclosureConfig{Batch: 8, MaxRounds: 500, CheckEvery: 25, ChurnAware: true, Workers: 1}
	base, err := build().RunDisclosure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	krng := xrand.New(4242)
	for trial := 0; trial < 4; trial++ {
		kill := 1 + krng.Intn(cfg.MaxRounds-1)
		run, err := build().StartDisclosure(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := run.Step(kill); err != nil {
			t.Fatal(err)
		}
		st, err := run.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var decoded DisclosureState
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}
		// The snapshot must not have dragged the whole population warm:
		// only users that sent (or are targets) carry state.
		if len(decoded.Engine.Warm) == n && kill < 20 {
			t.Fatalf("kill=%d: snapshot serialized all %d users warm", kill, n)
		}
		resumed, err := build().ResumeDisclosure(cfg, &decoded)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := resumed.Step(cfg.MaxRounds); err != nil {
			t.Fatal(err)
		}
		got := resumed.Result()
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("kill=%d: resumed result differs from uninterrupted run\ngot  %+v\nwant %+v",
				kill, got, base)
		}
	}
}
