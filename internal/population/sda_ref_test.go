package population

import (
	"math"
	"reflect"
	"testing"

	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// sda_ref_test.go: the sparse-estimator equivalence property. The SDA
// estimators store sparse recipient vectors (sparse.go); this file keeps
// the original dense formulation alive as a test-only reference and
// demands the production run's DisclosureResult be bit-identical to it —
// every float (mean rounds, anonymity entropies) compared exactly, over
// populations with and without cover, churn, and recipient spaces much
// larger than any estimator's observed support.

// denseRefTarget is one target of the dense reference estimator: the
// original length-R accumulators.
type denseRefTarget struct {
	user       int32
	contacts   []int32
	presence   *traffic.OnOffSchedule
	sumWith    []float64
	sumWithout []float64
	nWith      int
	nWithout   int
	roundsWith int
	masked     int
	streak     int
	disclosed  bool
	rounds     int
	sent       bool
}

// denseRef replicates the pre-sparse disclosure estimator verbatim.
type denseRef struct {
	cfg       DisclosureConfig
	targets   []denseRefTarget
	targetIdx []int32
	est       []float64
	topIdx    []int32
	topVal    []float64
	setScr    []int32
}

func newDenseRef(t *testing.T, e *Engine, cfg DisclosureConfig) *denseRef {
	t.Helper()
	d := &denseRef{
		cfg:       cfg,
		targets:   make([]denseRefTarget, len(cfg.Targets)),
		targetIdx: make([]int32, e.Users()),
		est:       make([]float64, e.Recipients()),
	}
	for i := range d.targetIdx {
		d.targetIdx[i] = -1
	}
	maxK := 0
	for i, u := range cfg.Targets {
		d.targetIdx[u] = int32(i)
		cs := e.ContactsOf(u)
		for a := 1; a < len(cs); a++ {
			for b := a; b > 0 && cs[b] < cs[b-1]; b-- {
				cs[b], cs[b-1] = cs[b-1], cs[b]
			}
		}
		if len(cs) > maxK {
			maxK = len(cs)
		}
		d.targets[i] = denseRefTarget{
			user:       int32(u),
			contacts:   cs,
			sumWith:    make([]float64, e.Recipients()),
			sumWithout: make([]float64, e.Recipients()),
		}
		if cfg.ChurnAware {
			d.targets[i].presence = e.PresenceOf(u)
		}
	}
	d.topIdx = make([]int32, maxK)
	d.topVal = make([]float64, maxK)
	d.setScr = make([]int32, maxK)
	return d
}

func (d *denseRef) observe(r *Round) {
	for i := range d.targets {
		d.targets[i].sent = false
	}
	for _, u := range r.Users {
		if ti := d.targetIdx[u]; ti >= 0 {
			d.targets[ti].sent = true
		}
	}
	var flushT float64
	if len(r.Times) > 0 {
		flushT = r.Times[len(r.Times)-1]
	}
	for i := range d.targets {
		t := &d.targets[i]
		dst := t.sumWithout
		if t.sent {
			dst = t.sumWith
			t.nWith++
			t.roundsWith++
		} else {
			if t.presence != nil && !t.presence.UpAt(flushT) {
				t.masked++
				continue
			}
			t.nWithout++
		}
		for _, rc := range r.Rcpts {
			dst[rc]++
		}
	}
}

func (d *denseRef) estimate(t *denseRefTarget) bool {
	if t.nWith == 0 || t.nWithout == 0 {
		return false
	}
	iw, iwo := 1/float64(t.nWith), 1/float64(t.nWithout)
	for i := range d.est {
		v := t.sumWith[i]*iw - t.sumWithout[i]*iwo
		if v < 0 {
			v = 0
		}
		d.est[i] = v
	}
	return true
}

func (d *denseRef) checkpoint(round int) (allDone bool) {
	allDone = true
	for i := range d.targets {
		t := &d.targets[i]
		if t.disclosed {
			continue
		}
		if !d.estimate(t) {
			allDone = false
			continue
		}
		k := len(t.contacts)
		top := d.topK(k)
		if setsEqual(top, t.contacts, d.setScr) {
			t.streak++
		} else {
			t.streak = 0
		}
		if t.streak >= d.cfg.Consecutive {
			t.disclosed = true
			t.rounds = round
		} else {
			allDone = false
		}
	}
	return allDone
}

// topK is the original dense ascending-index insertion pass over every
// recipient coordinate.
func (d *denseRef) topK(k int) []int32 {
	idx, val := d.topIdx[:0], d.topVal[:0]
	for i, v := range d.est {
		if len(idx) == k && v <= val[k-1] {
			continue
		}
		j := len(idx)
		if j < k {
			idx = append(idx, 0)
			val = append(val, 0)
		} else {
			j--
		}
		for j > 0 && v > val[j-1] {
			idx[j], val[j] = idx[j-1], val[j-1]
			j--
		}
		idx[j], val[j] = int32(i), v
	}
	d.topIdx, d.topVal = idx, val
	return idx
}

func (d *denseRef) anonymity(t *denseRefTarget) float64 {
	if !d.estimate(t) {
		return 1
	}
	var total float64
	for _, v := range d.est {
		total += v
	}
	if total <= 0 {
		return 1
	}
	var h float64
	for _, v := range d.est {
		if v > 0 {
			p := v / total
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(len(d.est)))
}

// runDenseReference executes the full disclosure loop — the same round,
// checkpoint and early-stop schedule as DisclosureRun — against the
// dense reference estimator.
func runDenseReference(t *testing.T, e *Engine, cfg DisclosureConfig) *DisclosureResult {
	t.Helper()
	cfg = cfg.withDefaults(e.Users())
	e.SetWorkers(cfg.Workers)
	d := newDenseRef(t, e, cfg)
	observed, done := 0, false
	var r Round
	for !done && observed < cfg.MaxRounds {
		round := observed + 1
		if err := e.NextRound(cfg.Batch, &r); err != nil {
			t.Fatal(err)
		}
		d.observe(&r)
		observed = round
		if round%cfg.CheckEvery == 0 && d.checkpoint(round) {
			done = true
		}
	}
	res := &DisclosureResult{Rounds: observed, Targets: make([]TargetOutcome, len(d.targets))}
	var sumRounds, sumAnon float64
	disclosed := 0
	for i := range d.targets {
		tg := &d.targets[i]
		rounds := cfg.MaxRounds
		if tg.disclosed {
			rounds = tg.rounds
			disclosed++
		}
		anon := d.anonymity(tg)
		res.Targets[i] = TargetOutcome{
			User:              int(tg.user),
			Disclosed:         tg.disclosed,
			Rounds:            rounds,
			RoundsWith:        tg.roundsWith,
			DegreeOfAnonymity: anon,
		}
		sumRounds += float64(rounds)
		sumAnon += anon
	}
	n := float64(len(d.targets))
	res.MeanRounds = sumRounds / n
	res.DisclosedFrac = float64(disclosed) / n
	res.MeanAnonymity = sumAnon / n
	return res
}

// refUsers builds a deterministic population over a parameterizable
// recipient space (testUsers pins 40; the sparse/dense property wants
// spaces much larger than the observed support too).
func refUsers(t *testing.T, n, recipients int, cover, churn bool) []User {
	t.Helper()
	users := make([]User, n)
	for u := 0; u < n; u++ {
		master := xrand.New(uint64(3000 + u))
		rate := 5 + float64(u%3)*20
		msgs, err := traffic.NewPoisson(rate, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		var cov traffic.Source
		if cover {
			cov, err = traffic.NewPoisson(rate, master.Split())
			if err != nil {
				t.Fatal(err)
			}
		}
		prng := master.Split()
		prof, err := NewProfile(recipients, 3, 0.7, prng)
		if err != nil {
			t.Fatal(err)
		}
		users[u] = User{Class: u % 3, Messages: msgs, Cover: cov, Profile: prof, RNG: prng}
		if churn {
			sched, err := traffic.NewOnOffSchedule(0.05, 0.05, xrand.New(uint64(7000+u)))
			if err != nil {
				t.Fatal(err)
			}
			users[u].Presence = sched
		}
	}
	return users
}

// TestSparseMatchesDenseReference is the equivalence property: the
// production sparse-estimator disclosure run must report bit-identical
// results to the dense reference, across population shapes up to N=1e3
// and recipient spaces from saturated (every coordinate observed) to
// very sparse.
func TestSparseMatchesDenseReference(t *testing.T) {
	cases := []struct {
		name       string
		n          int
		recipients int
		cover      bool
		churn      bool
		rounds     int
	}{
		{"small-saturated", 16, 40, true, false, 600},
		{"churned", 12, 40, true, true, 600},
		{"sparse-space", 64, 800, false, false, 400},
		{"sparse-cover-churn", 48, 500, true, true, 400},
		{"thousand-users", 1000, 300, true, false, 150},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DisclosureConfig{
				Batch:      8,
				MaxRounds:  tc.rounds,
				CheckEvery: 25,
				ChurnAware: tc.churn,
				Workers:    1,
			}
			build := func() *Engine {
				e, err := NewEngine(refUsers(t, tc.n, tc.recipients, tc.cover, tc.churn), tc.recipients)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			want := runDenseReference(t, build(), cfg)
			got, err := build().RunDisclosure(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sparse run differs from dense reference\ngot  %+v\nwant %+v", got, want)
			}
			// The sparse estimators must actually be sparse when the space
			// allows it: no accumulator may have materialized the full
			// recipient space unless rounds genuinely delivered everywhere.
			if tc.recipients >= 500 {
				run, err := build().StartDisclosure(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := run.Step(cfg.MaxRounds); err != nil {
					t.Fatal(err)
				}
				for i := range run.d.targets {
					est := run.d.targets[i].est.(*classicEstimator)
					if est.sumWith.nnz() >= tc.recipients {
						t.Fatalf("target %d sum_with support %d saturated the %d-recipient space",
							i, est.sumWith.nnz(), tc.recipients)
					}
				}
			}
		})
	}
}
