package population

import "fmt"

// Dummy policies (dummy.go): the resistance side of the SDA arms race —
// how a target user addresses its cover messages. The engine generates
// cover arrivals addressed to uniformly random recipients; a dummy
// policy may re-address a target's cover on its way through the mix:
//
//   - none: no policy; cover traffic, if the population sends any,
//     keeps its uniform recipients (the pre-policy behavior, and the
//     zero value);
//   - uniform: receiver-bound dummies to uniformly random recipients —
//     the engine's native cover, named so the league table can demand
//     cover traffic explicitly (validation requires a cover rate);
//   - adaptive: each target re-addresses its dummies to the adversary's
//     current top non-contact suspects, feeding the estimator's own
//     output back against it. Boosting exactly the false contacts the
//     estimator already ranks highest keeps them competitive with the
//     true contacts, so the top-k set never stabilizes on the truth.
//
// Determinism: re-addressing happens in the sequential Step loop —
// after the mix flushes a round, before the estimators observe it — so
// it is worker-count-invariant by construction. The suspects a target
// aims at are computed from the estimator's state as of the *previous*
// rounds (estimators observe a round only after the dummy policy has
// acted on it), so there is no feedback race within a round; and the
// rotation over suspects uses a plain message counter (dumCount, part
// of the disclosure checkpoint), not a random stream, so a resumed run
// re-addresses identically. Reading Round.Dummy here is legitimate:
// the policy is the *defender*, and a sender knows which of its own
// messages are dummies — the adversary's estimators still never read
// the flag.
type DummyPolicy int

const (
	// DummyNone applies no dummy policy: cover traffic, if any, stays on
	// uniformly random recipients.
	DummyNone DummyPolicy = iota
	// DummyUniform sends receiver-bound dummies to uniformly random
	// recipients; requires a positive cover rate.
	DummyUniform
	// DummyAdaptive re-addresses each target's dummies to the
	// estimator's current top non-contact suspects; requires a positive
	// cover rate.
	DummyAdaptive
)

// String names the policy for tables and errors.
func (p DummyPolicy) String() string {
	switch p {
	case DummyNone:
		return "none"
	case DummyUniform:
		return "uniform"
	case DummyAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("DummyPolicy(%d)", int(p))
	}
}

// validDummyPolicy reports whether p names a policy.
func validDummyPolicy(p DummyPolicy) bool {
	return p >= DummyNone && p <= DummyAdaptive
}

// applyDummies runs the dummy policy over a freshly flushed round,
// before any estimator observes it. None and uniform are no-ops here —
// the engine's native cover already addresses dummies uniformly — so
// only the adaptive policy rewrites recipients. Allocation-free in
// steady state.
func (d *disclosure) applyDummies(r *Round) {
	if d.cfg.Dummies != DummyAdaptive {
		return
	}
	for i := range d.targets {
		d.targets[i].susFresh = false
	}
	for k, u := range r.Users {
		if !r.Dummy[k] {
			continue
		}
		ti := d.targetIdx[u]
		if ti < 0 {
			continue
		}
		t := &d.targets[ti]
		sus := d.suspects(t)
		if len(sus) == 0 {
			continue
		}
		r.Rcpts[k] = sus[t.dumCount%len(sus)]
		t.dumCount++
	}
}

// suspects returns the target's current decoy set: the estimator's top
// len(contacts) positively estimated non-contact coordinates, ordered
// by descending estimate (ties toward the lower index). Computed at
// most once per round per target; empty while the estimator has no
// estimate or ranks only true contacts, in which case the dummy keeps
// its uniform recipient.
func (d *disclosure) suspects(t *targetState) []int32 {
	if t.susFresh {
		return t.sus
	}
	t.susFresh = true
	t.sus = t.sus[:0]
	if !t.est.ready() {
		return t.sus
	}
	k := len(t.contacts)
	idx, val := t.sus, d.susVal[:0]
	for _, i := range t.est.support() {
		if containsSorted(t.contacts, i) {
			continue
		}
		v := t.est.estimateAt(i)
		if v <= 0 {
			continue
		}
		if len(idx) == k && v <= val[k-1] {
			continue
		}
		j := len(idx)
		if j < k {
			idx = append(idx, 0)
			val = append(val, 0)
		} else {
			j--
		}
		for j > 0 && v > val[j-1] {
			idx[j], val[j] = idx[j-1], val[j-1]
			j--
		}
		idx[j], val[j] = i, v
	}
	t.sus = idx
	return t.sus
}

// containsSorted reports whether x occurs in the ascending slice s.
func containsSorted(s []int32, x int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s[mid] < x:
			lo = mid + 1
		case s[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}
