package population

import (
	"errors"
	"fmt"
	"math"

	"linkpad/internal/obs"
	"linkpad/internal/xrand"
)

// Mix policies (mix.go): the batching discipline that cuts the merged
// population event stream into observable rounds. The original engine
// hard-wired the threshold mix — flush as soon as B messages queue — as
// the one-line batch loop inside NextRound; the SDA literature's
// extended attacks (Emamdoost et al.) are defined against two more
// disciplines, so the round policy generalizes into an interface:
//
//   - threshold: flush when the B-th message arrives (the default; the
//     engine's NextRound remains this policy's fast path);
//   - pool: the B-th new arrival triggers a flush, but every queued
//     message — carried pool and new arrivals alike — independently
//     stays behind with probability Retain, so a message's exit round
//     is randomized (a Cottrell-style pool mix with a fixed retention
//     probability);
//   - timed: flush every Period seconds of stream time regardless of
//     fill, so round sizes float with the arrival rate.
//
// Streaming contract: a policy pulls events one at a time from the
// engine's k-way shard reduction (popEvent) and never looks ahead more
// than one event, so million-user populations stream through any policy
// exactly as they do through the threshold path — the engine's slab
// generation, lazy materialization and refill cadence are untouched.
// The one-event lookahead the timed mix needs, the pool's carried
// messages, and the pool's retention stream are the policy's only
// state, and all of it serializes (MixPolicyState) so checkpoint/resume
// stays byte-identical across any kill point.
//
// Determinism: the pool's retention draws come from a private
// deterministic stream (MixSpec.Seed), consumed in the sequential
// round-assembly path — never in the parallel slab fan-out — so every
// policy is worker-count-invariant by construction.

// MixKind selects the mix's batching discipline.
type MixKind int

const (
	// MixThreshold flushes as soon as Batch messages have queued — the
	// default, and the engine's original hard-wired policy.
	MixThreshold MixKind = iota
	// MixPool triggers a flush on every Batch-th new arrival but retains
	// each queued message with probability Retain, carrying it into the
	// next round's pool.
	MixPool
	// MixTimed flushes every Period seconds of stream time, whatever has
	// queued; empty windows produce no observable round.
	MixTimed
)

// String names the kind for tables and errors.
func (k MixKind) String() string {
	switch k {
	case MixThreshold:
		return "threshold"
	case MixPool:
		return "pool"
	case MixTimed:
		return "timed"
	default:
		return fmt.Sprintf("MixKind(%d)", int(k))
	}
}

// maxPoolRetain bounds the pool retention probability away from 1: at
// Retain 1 nothing ever leaves the pool and the mix deadlocks.
const maxPoolRetain = 0.95

// defaultMixSeed seeds the pool retention stream when MixSpec.Seed is
// zero; the core scenario layer derives a per-system seed instead.
const defaultMixSeed = 0x6d69782d706f6f6c // "mix-pool"

// MixSpec configures the round policy of a disclosure run.
// The zero value is the threshold mix — the engine's original behavior.
type MixSpec struct {
	// Kind selects the batching discipline.
	Kind MixKind `json:"kind"`
	// Retain is the pool mix's per-message retention probability in
	// [0, 0.95]; at every flush each queued message independently stays
	// in the pool with this probability. 0 selects the default 0.5.
	// Threshold and timed mixes reject a non-zero Retain.
	Retain float64 `json:"retain,omitempty"`
	// Period is the timed mix's flush period in stream seconds. 0 derives
	// Batch divided by the population's aggregate send rate — the period
	// at which a timed round carries as many messages as a threshold
	// round, which is what makes the two disciplines comparable at equal
	// batch. Threshold and pool mixes reject a non-zero Period.
	Period float64 `json:"period,omitempty"`
	// Seed seeds the pool mix's private retention stream; 0 selects a
	// fixed default. The core scenario layer fills it from the system's
	// master seed so retention draws vary with the seed like every other
	// stream.
	Seed uint64 `json:"seed,omitempty"`
}

// withDefaults fills zero fields that have kind-specific defaults.
func (m MixSpec) withDefaults() MixSpec {
	if m.Kind == MixPool {
		if m.Retain == 0 {
			m.Retain = 0.5
		}
		if m.Seed == 0 {
			m.Seed = defaultMixSeed
		}
	}
	return m
}

// validate checks the spec's shape. Called on the defaults-applied spec.
func (m MixSpec) validate() error {
	switch m.Kind {
	case MixThreshold:
		if m.Retain != 0 || m.Period != 0 || m.Seed != 0 {
			return errors.New("population: threshold mix takes no retain/period/seed")
		}
	case MixPool:
		if !(m.Retain > 0 && m.Retain <= maxPoolRetain) {
			return fmt.Errorf("population: pool mix retain %v out of range (0, %v]", m.Retain, maxPoolRetain)
		}
		if m.Period != 0 {
			return errors.New("population: pool mix takes no period")
		}
	case MixTimed:
		if m.Period < 0 {
			return errors.New("population: timed mix period must be non-negative")
		}
		if m.Retain != 0 || m.Seed != 0 {
			return errors.New("population: timed mix takes no retain/seed")
		}
	default:
		return fmt.Errorf("population: unknown mix kind %d", int(m.Kind))
	}
	return nil
}

// MixPolicy cuts the engine's merged event stream into observable mix
// rounds. The interface is sealed: the three implementations (threshold,
// pool, timed — selected by MixSpec.Kind) are the complete set, which is
// what lets a disclosure checkpoint serialize any policy's state.
type MixPolicy interface {
	// Kind reports which batching discipline the policy implements.
	Kind() MixKind
	// NextRound cuts the next observable round into r. Rounds that
	// would emit nothing (a fully retained pool, an empty timed window)
	// are skipped — the adversary observes batches leaving the mix, and
	// an empty flush leaves nothing to observe.
	NextRound(r *Round) error
	// snapshot/restore seal the interface to the package's policies.
	snapshot() *MixPolicyState
	restore(st *MixPolicyState) error
}

// NewMix binds a mix policy to the engine. batch is the flush threshold
// (threshold mix) or the new-arrival trigger (pool mix); the timed mix
// uses it only to derive the default period. The policy consumes the
// engine's event stream; use one policy per engine.
func (e *Engine) NewMix(spec MixSpec, batch int) (MixPolicy, error) {
	if batch < 1 {
		return nil, errors.New("population: round batch must be at least 1")
	}
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case MixThreshold:
		return &thresholdMix{eng: e, batch: batch}, nil
	case MixPool:
		return &poolMix{
			eng:    e,
			batch:  batch,
			retain: spec.Retain,
			rng:    xrand.New(spec.Seed),
		}, nil
	default: // MixTimed; validate rejected everything else
		period := spec.Period
		if period == 0 {
			// slabLen = targetSlabEvents/aggregateRate, so this is
			// batch/aggregateRate: the mean time to gather a batch.
			period = float64(batch) * e.slabLen / targetSlabEvents
		}
		return &timedMix{eng: e, period: period}, nil
	}
}

// thresholdMix is the original policy: the engine's own NextRound.
type thresholdMix struct {
	eng   *Engine
	batch int
}

func (m *thresholdMix) Kind() MixKind { return MixThreshold }

func (m *thresholdMix) NextRound(r *Round) error {
	return m.eng.NextRound(m.batch, r)
}

func (m *thresholdMix) snapshot() *MixPolicyState { return nil }

func (m *thresholdMix) restore(st *MixPolicyState) error {
	if st != nil && (len(st.Pool) > 0 || st.RNG != nil || st.NextFlush != 0 || st.Peeked != nil) {
		return errors.New("population: threshold mix cannot restore pool/timed state")
	}
	return nil
}

// poolMix carries a message pool across rounds: every Batch new arrivals
// trigger a flush, and each queued message independently stays behind
// with probability retain. The pool preserves arrival order, so emitted
// rounds stay time-ordered within themselves even when they interleave
// old and new messages.
type poolMix struct {
	eng    *Engine
	batch  int
	retain float64
	pool   []event
	rng    *xrand.Rand
}

func (m *poolMix) Kind() MixKind { return MixPool }

func (m *poolMix) NextRound(r *Round) error {
	e := m.eng
	r.Users = r.Users[:0]
	r.Rcpts = r.Rcpts[:0]
	r.Dummy = r.Dummy[:0]
	r.Times = r.Times[:0]
	for {
		// Gather the next batch of new arrivals into the pool.
		got := 0
		for got < m.batch {
			ev, ok := e.popEvent()
			if !ok {
				if err := e.refill(); err != nil {
					return err
				}
				continue
			}
			if ev.dummy {
				e.probe.Inc(obs.TrafficCover)
			} else {
				e.probe.Inc(obs.PopulationMessage)
			}
			m.pool = append(m.pool, ev)
			got++
			r.Flush = ev.t // the trigger arrival is the flush instant
		}
		// Flush: each pooled message independently stays with probability
		// retain. The in-place filter preserves arrival order on both
		// sides, and the retention stream is consumed in pool order, so
		// the draw sequence is a pure function of the event stream.
		kept := m.pool[:0]
		for _, ev := range m.pool {
			if m.rng.Float64() < m.retain {
				kept = append(kept, ev)
				continue
			}
			r.Users = append(r.Users, ev.user)
			r.Rcpts = append(r.Rcpts, ev.rcpt)
			r.Dummy = append(r.Dummy, ev.dummy)
			r.Times = append(r.Times, ev.t)
		}
		m.pool = kept
		if len(r.Users) > 0 {
			e.rounds++
			e.probe.Inc(obs.PopulationRound)
			e.probe.Flush()
			return nil
		}
		// Everything stayed behind: no observable flush. Gather another
		// batch; retain < 1 guarantees an emission with probability 1.
	}
}

func (m *poolMix) snapshot() *MixPolicyState {
	st := &MixPolicyState{}
	for _, ev := range m.pool {
		st.Pool = append(st.Pool, EventState{T: ev.t, User: ev.user, Rcpt: ev.rcpt, Dummy: ev.dummy})
	}
	rs := m.rng.State()
	st.RNG = &rs
	return st
}

func (m *poolMix) restore(st *MixPolicyState) error {
	if st == nil {
		return errors.New("population: pool mix snapshot missing mix state")
	}
	if st.NextFlush != 0 || st.Peeked != nil {
		return errors.New("population: pool mix cannot restore timed-mix state")
	}
	if st.RNG == nil {
		return errors.New("population: pool mix snapshot missing retention stream state")
	}
	m.pool = m.pool[:0]
	last := math.Inf(-1)
	for _, ev := range st.Pool {
		if ev.T < last {
			return errors.New("population: pool mix snapshot events not in arrival order")
		}
		last = ev.T
		m.pool = append(m.pool, event{t: ev.T, user: ev.User, rcpt: ev.Rcpt, dummy: ev.Dummy})
	}
	m.rng.SetState(*st.RNG)
	return nil
}

// timedMix flushes on a fixed wall-clock grid: round k spans stream time
// [k·period, (k+1)·period). Cutting the stream at a grid boundary means
// reading one event past it, so the mix holds a one-event lookahead; the
// peeked event is part of the policy's serialized state, never lost to a
// checkpoint. Empty windows emit nothing and are skipped.
type timedMix struct {
	eng       *Engine
	period    float64
	nextFlush float64 // end of the window being assembled; 0 = unstarted
	peeked    bool
	peek      event
}

func (m *timedMix) Kind() MixKind { return MixTimed }

func (m *timedMix) NextRound(r *Round) error {
	e := m.eng
	r.Users = r.Users[:0]
	r.Rcpts = r.Rcpts[:0]
	r.Dummy = r.Dummy[:0]
	r.Times = r.Times[:0]
	for {
		var ev event
		if m.peeked {
			ev, m.peeked = m.peek, false
		} else {
			var ok bool
			ev, ok = e.popEvent()
			if !ok {
				if err := e.refill(); err != nil {
					return err
				}
				continue
			}
			if ev.dummy {
				e.probe.Inc(obs.TrafficCover)
			} else {
				e.probe.Inc(obs.PopulationMessage)
			}
		}
		if m.nextFlush == 0 {
			// First event: align the grid to the window containing it.
			m.nextFlush = (math.Floor(ev.t/m.period) + 1) * m.period
		}
		if ev.t >= m.nextFlush {
			if len(r.Users) > 0 {
				// The window closes with this event still unconsumed:
				// stash it for the next round.
				m.peek, m.peeked = ev, true
				r.Flush = m.nextFlush
				m.nextFlush += m.period
				e.rounds++
				e.probe.Inc(obs.PopulationRound)
				e.probe.Flush()
				return nil
			}
			// The window (and possibly many after it) was empty: no
			// observable flush. Skip to the window containing the event.
			m.nextFlush = (math.Floor(ev.t/m.period) + 1) * m.period
		}
		r.Users = append(r.Users, ev.user)
		r.Rcpts = append(r.Rcpts, ev.rcpt)
		r.Dummy = append(r.Dummy, ev.dummy)
		r.Times = append(r.Times, ev.t)
	}
}

func (m *timedMix) snapshot() *MixPolicyState {
	st := &MixPolicyState{NextFlush: m.nextFlush}
	if m.peeked {
		st.Peeked = &EventState{T: m.peek.t, User: m.peek.user, Rcpt: m.peek.rcpt, Dummy: m.peek.dummy}
	}
	return st
}

func (m *timedMix) restore(st *MixPolicyState) error {
	if st == nil {
		return errors.New("population: timed mix snapshot missing mix state")
	}
	if len(st.Pool) > 0 || st.RNG != nil {
		return errors.New("population: timed mix cannot restore pool-mix state")
	}
	if st.NextFlush < 0 {
		return errors.New("population: timed mix snapshot has negative flush time")
	}
	m.nextFlush = st.NextFlush
	if st.Peeked != nil {
		m.peek = event{t: st.Peeked.T, user: st.Peeked.User, rcpt: st.Peeked.Rcpt, dummy: st.Peeked.Dummy}
		m.peeked = true
	} else {
		m.peeked = false
	}
	return nil
}
