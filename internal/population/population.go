// Package population scales the study from one sender to a population:
// N heterogeneous senders (per-user rate classes and recipient profiles)
// share a padded infrastructure, and a global passive adversary who taps
// both the ingress side (per-user send activity) and the egress side
// (batched deliveries, padded flows) tries to disentangle whose traffic
// is whose. Two canonical population-scale attacks are implemented on
// top of the engine:
//
//   - the round-based statistical disclosure attack (Danezis' SDA, and
//     its refinements in Emamdoost et al., "Statistical Disclosure:
//     Improved, Extended, and Resisted"): estimate a target user's
//     recipient distribution by contrasting batch rounds in which the
//     target sent against rounds in which they did not (sda.go);
//   - per-flow correlation by throughput fingerprinting (Mittal et al.,
//     "Stealthy Traffic Analysis of Low-Latency Anonymous Communication
//     Using Throughput Fingerprinting") combined with the paper's PIAT
//     class features: match an egress padded flow to its ingress user
//     (flowcorr.go).
//
// The engine follows the repository's determinism discipline: every
// user's randomness — message arrivals, cover arrivals, recipient
// draws — is a private deterministic stream (core derives it from
// (seed, class, userID) in the population stream domain), so per-user
// generation parallelizes to any worker count with byte-identical
// results. Users are the unit of parallelism: event generation fans out
// across users in time slabs, and the cheap global merge that orders
// events and forms mix rounds is a sequential reduction whose output is
// a pure function of the per-user streams. The round loop is
// allocation-free in steady state.
package population

import (
	"errors"
	"fmt"
	"sort"

	"linkpad/internal/obs"
	"linkpad/internal/par"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// Profile is one user's recipient distribution: a small contact set
// carrying most of the probability mass (Zipf-weighted, so the first
// contact is the heaviest) over a uniform background across all
// recipients. This is the structure statistical disclosure exploits —
// and what "disclosure" means: identifying the contact set.
type Profile struct {
	contacts []int32
	cum      []float64 // cumulative Zipf weights within the contact set
	weight   float64   // total mass on the contact set
	nrcpt    int32
}

// NewProfile draws a profile with the given number of distinct contacts
// among `recipients` possible recipients, placing `weight` of the
// probability mass on the contact set (Zipf-weighted within it) and the
// rest uniformly across all recipients. The contact set is drawn from
// rng, so a profile is deterministic from its stream.
func NewProfile(recipients, contacts int, weight float64, rng *xrand.Rand) (Profile, error) {
	if recipients < 2 {
		return Profile{}, errors.New("population: need at least two recipients")
	}
	if contacts < 1 || contacts > recipients/2 {
		return Profile{}, fmt.Errorf("population: contacts %d out of range [1, %d]", contacts, recipients/2)
	}
	if !(weight > 0 && weight <= 1) {
		return Profile{}, errors.New("population: contact weight must be in (0,1]")
	}
	if rng == nil {
		return Profile{}, errors.New("population: nil rng")
	}
	cs := make([]int32, 0, contacts)
	for len(cs) < contacts {
		c := int32(rng.Intn(recipients))
		dup := false
		for _, x := range cs {
			if x == c {
				dup = true
				break
			}
		}
		if !dup {
			cs = append(cs, c)
		}
	}
	cum := make([]float64, contacts)
	var tot float64
	for i := range cum {
		tot += 1 / float64(i+1)
		cum[i] = tot
	}
	for i := range cum {
		cum[i] /= tot
	}
	return Profile{contacts: cs, cum: cum, weight: weight, nrcpt: int32(recipients)}, nil
}

// Draw picks one recipient from the profile using rng.
func (p *Profile) Draw(rng *xrand.Rand) int32 {
	u := rng.Float64()
	if u < p.weight {
		// Reuse the uniform: u/weight is uniform in [0,1) given u < weight.
		v := u / p.weight
		for i, c := range p.cum {
			if v < c {
				return p.contacts[i]
			}
		}
		return p.contacts[len(p.contacts)-1]
	}
	return int32(rng.Intn(int(p.nrcpt)))
}

// Contacts returns a copy of the contact set, heaviest first.
func (p *Profile) Contacts() []int32 {
	return append([]int32(nil), p.contacts...)
}

// User is one sender of the population. Its stochastic elements —
// message arrivals, optional cover arrivals, and the recipient-draw
// stream — must be private to the user (never shared), which is what
// lets the engine generate users in parallel deterministically.
type User struct {
	// Class is the user's payload-rate class index.
	Class int
	// Messages is the user's real message arrival process.
	Messages traffic.Source
	// Cover is the user's dummy arrival process; nil means no cover
	// traffic. Cover messages are indistinguishable from real ones at the
	// ingress tap and are delivered to uniformly random recipients.
	Cover traffic.Source
	// Profile is the user's recipient distribution for real messages.
	Profile Profile
	// RNG draws recipients (real and dummy) in event order.
	RNG *xrand.Rand
	// Presence, when non-nil, is the user's churn schedule: arrivals
	// (real and cover alike) that fall while the user is offline are
	// dropped — an offline client sends nothing. The schedule must be
	// private to the user, like every other stochastic element.
	Presence *traffic.OnOffSchedule
}

// event is one message entering the shared infrastructure.
type event struct {
	t     float64
	user  int32
	rcpt  int32
	dummy bool
}

// eventSorter orders events by time, tie-breaking by user index so the
// merge is deterministic even in the (measure-zero) case of equal
// timestamps. Held by pointer on the engine so sorting allocates nothing.
type eventSorter struct{ ev []event }

func (s *eventSorter) Len() int      { return len(s.ev) }
func (s *eventSorter) Swap(i, j int) { s.ev[i], s.ev[j] = s.ev[j], s.ev[i] }
func (s *eventSorter) Less(i, j int) bool {
	if s.ev[i].t != s.ev[j].t {
		return s.ev[i].t < s.ev[j].t
	}
	return s.ev[i].user < s.ev[j].user
}

// userState is one user's generation cursor: the merged real+cover
// stream, the pending (not yet emitted) event's time and origin, and the
// user's reusable slab buffer.
type userState struct {
	sup       *traffic.Superpose
	nextT     float64
	nextCover bool
	buf       []event
}

// Round is one batch of the population mix as both sides of the
// adversary observe it: for each of the B messages, the sending user
// (ingress view), the delivered recipient (egress view), and the arrival
// time, in arrival order. Dummy is ground truth the adversary does not
// see; the attacks never read it. Times is observable metadata (the
// mix's flush clock) that churn-aware estimators use to check a target's
// presence. A Round's slices are reused across NextRound calls.
type Round struct {
	Users []int32
	Rcpts []int32
	Dummy []bool
	Times []float64
}

// Engine is a running multi-user simulation: per-user event streams
// merged into one time-ordered sequence and cut into mix rounds. Like
// the Source and Session types it is a stateful stream — one pass per
// engine; build a fresh engine per run. It is not safe for concurrent
// use, but its internal generation fans out across users on up to
// SetWorkers goroutines with byte-identical output at any width.
type Engine struct {
	users  []User
	nrcpt  int
	states []userState

	workers int
	slabLen float64
	slabEnd float64
	queue   []event
	qi      int
	sorter  eventSorter
	rounds  int
	probe   *obs.Shard
}

// targetSlabEvents sizes generation slabs: each parallel fan-out should
// produce about this many events so the merge cost amortizes.
const targetSlabEvents = 4096

// NewEngine assembles an engine over the users and the shared recipient
// space. Each user's sources and RNG must be non-nil (Cover may be nil)
// and private to that user.
func NewEngine(users []User, recipients int) (*Engine, error) {
	if len(users) < 2 {
		return nil, errors.New("population: need at least two users")
	}
	if recipients < 2 {
		return nil, errors.New("population: need at least two recipients")
	}
	e := &Engine{users: users, nrcpt: recipients, states: make([]userState, len(users)), probe: obs.NewShard()}
	var totalRate float64
	for u := range users {
		usr := &users[u]
		if usr.Messages == nil || usr.RNG == nil {
			return nil, fmt.Errorf("population: user %d missing sources", u)
		}
		if usr.Class < 0 {
			return nil, fmt.Errorf("population: user %d has negative class", u)
		}
		if int(usr.Profile.nrcpt) != recipients {
			return nil, fmt.Errorf("population: user %d profile spans %d recipients, engine has %d",
				u, usr.Profile.nrcpt, recipients)
		}
		srcs := []traffic.Source{usr.Messages}
		if usr.Cover != nil {
			srcs = append(srcs, usr.Cover)
		}
		sup, err := traffic.NewSuperpose(srcs...)
		if err != nil {
			return nil, err
		}
		st := &e.states[u]
		st.sup = sup
		gap, src := sup.NextFrom()
		st.nextT = gap
		st.nextCover = src == 1
		totalRate += sup.Rate()
	}
	if !(totalRate > 0) {
		return nil, errors.New("population: population has zero aggregate rate")
	}
	e.slabLen = targetSlabEvents / totalRate
	return e, nil
}

// Users returns the population size.
func (e *Engine) Users() int { return len(e.users) }

// Recipients returns the size of the recipient space.
func (e *Engine) Recipients() int { return e.nrcpt }

// Class returns user u's class index.
func (e *Engine) Class(u int) int { return e.users[u].Class }

// ContactsOf returns a copy of user u's contact set, heaviest first.
func (e *Engine) ContactsOf(u int) []int32 { return e.users[u].Profile.Contacts() }

// PresenceOf returns user u's churn schedule (nil when the user never
// churns). The schedule is stateful under query; the engine and any
// estimator holding it must not be used concurrently.
func (e *Engine) PresenceOf(u int) *traffic.OnOffSchedule { return e.users[u].Presence }

// Rounds returns how many rounds have been emitted so far.
func (e *Engine) Rounds() int { return e.rounds }

// SetWorkers bounds the per-user generation parallelism (values < 1 mean
// all CPUs). Results are identical at any width.
func (e *Engine) SetWorkers(w int) { e.workers = w }

// refill advances the generation horizon by one slab: every user extends
// its private event stream up to the new horizon in parallel, then the
// slabs are merged into one time-ordered queue. Each user's events are a
// pure function of its own streams, so the merged queue is identical at
// any worker count.
func (e *Engine) refill() error {
	e.slabEnd += e.slabLen
	err := par.MapWorker(len(e.users), e.workers, func(_, u int) error {
		st := &e.states[u]
		st.buf = st.buf[:0]
		usr := &e.users[u]
		for st.nextT < e.slabEnd {
			// Recipients are drawn for every generated arrival, present or
			// not, so a user's recipient stream position depends only on its
			// arrival count — adding churn perturbs which messages exist,
			// not how the survivors draw.
			var rcpt int32
			if st.nextCover {
				rcpt = int32(usr.RNG.Intn(e.nrcpt))
			} else {
				rcpt = usr.Profile.Draw(usr.RNG)
			}
			if usr.Presence == nil || usr.Presence.UpAt(st.nextT) {
				st.buf = append(st.buf, event{t: st.nextT, user: int32(u), rcpt: rcpt, dummy: st.nextCover})
			}
			gap, src := st.sup.NextFrom()
			st.nextT += gap
			st.nextCover = src == 1
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.queue = e.queue[:0]
	for u := range e.states {
		// Counted in the sequential merge (never the parallel fan-out):
		// a user is active in this generation slab if it produced events.
		if len(e.states[u].buf) > 0 {
			e.probe.Inc(obs.PopulationActiveUser)
		}
		e.queue = append(e.queue, e.states[u].buf...)
	}
	e.sorter.ev = e.queue
	sort.Sort(&e.sorter)
	e.qi = 0
	return nil
}

// NextRound emits the next mix round: the next `batch` messages of the
// merged population stream, in arrival order (a threshold mix flushes
// when its batch fills). The round's slices are reused; steady state
// allocates nothing beyond the amortized slab buffers.
func (e *Engine) NextRound(batch int, r *Round) error {
	if batch < 1 {
		return errors.New("population: round batch must be at least 1")
	}
	r.Users = r.Users[:0]
	r.Rcpts = r.Rcpts[:0]
	r.Dummy = r.Dummy[:0]
	r.Times = r.Times[:0]
	for len(r.Users) < batch {
		if e.qi >= len(e.queue) {
			if err := e.refill(); err != nil {
				return err
			}
			continue
		}
		ev := &e.queue[e.qi]
		e.qi++
		if ev.dummy {
			e.probe.Inc(obs.TrafficCover)
		} else {
			e.probe.Inc(obs.PopulationMessage)
		}
		r.Users = append(r.Users, ev.user)
		r.Rcpts = append(r.Rcpts, ev.rcpt)
		r.Dummy = append(r.Dummy, ev.dummy)
		r.Times = append(r.Times, ev.t)
	}
	e.rounds++
	e.probe.Inc(obs.PopulationRound)
	// Round boundaries are the engine's natural flush points: coarse
	// enough to stay off the per-event path, fine enough for live reads.
	e.probe.Flush()
	return nil
}
