// Package population scales the study from one sender to a population:
// N heterogeneous senders (per-user rate classes and recipient profiles)
// share a padded infrastructure, and a global passive adversary who taps
// both the ingress side (per-user send activity) and the egress side
// (batched deliveries, padded flows) tries to disentangle whose traffic
// is whose. Two canonical population-scale attacks are implemented on
// top of the engine:
//
//   - the round-based statistical disclosure attack (Danezis' SDA, and
//     its refinements in Emamdoost et al., "Statistical Disclosure:
//     Improved, Extended, and Resisted"): estimate a target user's
//     recipient distribution by contrasting batch rounds in which the
//     target sent against rounds in which they did not (sda.go);
//   - per-flow correlation by throughput fingerprinting (Mittal et al.,
//     "Stealthy Traffic Analysis of Low-Latency Anonymous Communication
//     Using Throughput Fingerprinting") combined with the paper's PIAT
//     class features: match an egress padded flow to its ingress user
//     (flowcorr.go).
//
// The engine follows the repository's determinism discipline: every
// user's randomness — message arrivals, cover arrivals, recipient
// draws — is a private deterministic stream (core derives it from
// (seed, class, userID) in the population stream domain), so per-user
// generation parallelizes to any worker count with byte-identical
// results.
//
// Scale architecture (million-user populations): users are partitioned
// into fixed cache-sized shards. Each generation slab extends every
// shard's event horizon in parallel and sorts the shard's events by
// (time, user); the global round stream is then a streaming k-way
// reduction — an index min-heap over the shard frontiers — that replays
// exactly the total (time, user) order the previous concat-and-sort
// merge produced. Users are materialized lazily: a cold user holds only
// its frontier (next arrival time and origin, ~9 bytes), and its full
// source state is rebuilt from the pure per-user Builder the first time
// it actually sends, so resident memory is dominated by the compact
// frontier plus the users active so far, not by N fully built source
// stacks. The round loop is allocation-free in steady state.
package population

import (
	"errors"
	"fmt"
	"sort"

	"linkpad/internal/obs"
	"linkpad/internal/par"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// Profile is one user's recipient distribution: a small contact set
// carrying most of the probability mass (Zipf-weighted, so the first
// contact is the heaviest) over a uniform background across all
// recipients. This is the structure statistical disclosure exploits —
// and what "disclosure" means: identifying the contact set.
type Profile struct {
	contacts []int32
	cum      []float64 // cumulative Zipf weights within the contact set
	weight   float64   // total mass on the contact set
	nrcpt    int32
}

// NewProfile draws a profile with the given number of distinct contacts
// among `recipients` possible recipients, placing `weight` of the
// probability mass on the contact set (Zipf-weighted within it) and the
// rest uniformly across all recipients. The contact set is drawn from
// rng, so a profile is deterministic from its stream.
func NewProfile(recipients, contacts int, weight float64, rng *xrand.Rand) (Profile, error) {
	if recipients < 2 {
		return Profile{}, errors.New("population: need at least two recipients")
	}
	if contacts < 1 || contacts > recipients/2 {
		return Profile{}, fmt.Errorf("population: contacts %d out of range [1, %d]", contacts, recipients/2)
	}
	if !(weight > 0 && weight <= 1) {
		return Profile{}, errors.New("population: contact weight must be in (0,1]")
	}
	if rng == nil {
		return Profile{}, errors.New("population: nil rng")
	}
	cs := make([]int32, 0, contacts)
	for len(cs) < contacts {
		c := int32(rng.Intn(recipients))
		dup := false
		for _, x := range cs {
			if x == c {
				dup = true
				break
			}
		}
		if !dup {
			cs = append(cs, c)
		}
	}
	cum := make([]float64, contacts)
	var tot float64
	for i := range cum {
		tot += 1 / float64(i+1)
		cum[i] = tot
	}
	for i := range cum {
		cum[i] /= tot
	}
	return Profile{contacts: cs, cum: cum, weight: weight, nrcpt: int32(recipients)}, nil
}

// Draw picks one recipient from the profile using rng.
func (p *Profile) Draw(rng *xrand.Rand) int32 {
	u := rng.Float64()
	if u < p.weight {
		// Reuse the uniform: u/weight is uniform in [0,1) given u < weight.
		v := u / p.weight
		for i, c := range p.cum {
			if v < c {
				return p.contacts[i]
			}
		}
		return p.contacts[len(p.contacts)-1]
	}
	return int32(rng.Intn(int(p.nrcpt)))
}

// Contacts returns a copy of the contact set, heaviest first.
func (p *Profile) Contacts() []int32 {
	return append([]int32(nil), p.contacts...)
}

// User is one sender of the population. Its stochastic elements —
// message arrivals, optional cover arrivals, and the recipient-draw
// stream — must be private to the user (never shared), which is what
// lets the engine generate users in parallel deterministically.
type User struct {
	// Class is the user's payload-rate class index.
	Class int
	// Messages is the user's real message arrival process.
	Messages traffic.Source
	// Cover is the user's dummy arrival process; nil means no cover
	// traffic. Cover messages are indistinguishable from real ones at the
	// ingress tap and are delivered to uniformly random recipients.
	Cover traffic.Source
	// Profile is the user's recipient distribution for real messages.
	Profile Profile
	// RNG draws recipients (real and dummy) in event order.
	RNG *xrand.Rand
	// Presence, when non-nil, is the user's churn schedule: arrivals
	// (real and cover alike) that fall while the user is offline are
	// dropped — an offline client sends nothing. The schedule must be
	// private to the user, like every other stochastic element.
	Presence *traffic.OnOffSchedule
}

// Builder materializes one user from its index. A builder must be pure:
// calling it twice with the same index must yield two fresh, identically
// seeded source stacks (the repository's (seed, class, userID) stream
// derivation satisfies this by construction). The engine relies on
// purity twice — cold users are rebuilt on their first send, and
// checkpoint resume rebuilds every user it restores state into.
type Builder func(u int) (User, error)

// event is one message entering the shared infrastructure.
type event struct {
	t     float64
	user  int32
	rcpt  int32
	dummy bool
}

// eventSorter orders events by time, tie-breaking by user index so the
// merge is deterministic even in the (measure-zero) case of equal
// timestamps. Held by value on each shard so sorting allocates nothing.
type eventSorter struct{ ev []event }

func (s *eventSorter) Len() int      { return len(s.ev) }
func (s *eventSorter) Swap(i, j int) { s.ev[i], s.ev[j] = s.ev[j], s.ev[i] }
func (s *eventSorter) Less(i, j int) bool {
	if s.ev[i].t != s.ev[j].t {
		return s.ev[i].t < s.ev[j].t
	}
	return s.ev[i].user < s.ev[j].user
}

// userState is one warm user's full materialization: the built sources
// plus the merged real+cover stream. Cold users have no userState at
// all — their generation cursor lives in the engine's frontier arrays.
type userState struct {
	usr User
	sup *traffic.Superpose
}

// shard is one contiguous user range's generation unit: the slab buffer
// of its users' events (sorted by (t, user) after generation), the merge
// cursor into it, and reusable sorter/bookkeeping so a refill allocates
// nothing beyond amortized buffer growth.
type shard struct {
	buf    []event
	pos    int
	active int // users that emitted at least one event this slab
	sorter eventSorter
}

// Round is one batch of the population mix as both sides of the
// adversary observe it: for each of the B messages, the sending user
// (ingress view), the delivered recipient (egress view), and the arrival
// time, in arrival order. Dummy is ground truth the adversary does not
// see; the attacks never read it. Times is observable metadata (the
// mix's flush clock) that churn-aware estimators use to check a target's
// presence. Flush is the instant the mix flushed the round: the last
// arrival for a threshold mix, the triggering arrival for a pool mix,
// the window boundary for a timed mix. A Round's slices are reused
// across NextRound calls.
type Round struct {
	Users []int32
	Rcpts []int32
	Dummy []bool
	Times []float64
	Flush float64
}

// Engine is a running multi-user simulation: per-user event streams
// merged into one time-ordered sequence and cut into mix rounds. Like
// the Source and Session types it is a stateful stream — one pass per
// engine; build a fresh engine per run. It is not safe for concurrent
// use, but its internal generation fans out across user shards on up to
// SetWorkers goroutines with byte-identical output at any width.
type Engine struct {
	n     int
	nrcpt int
	build Builder // nil for an eagerly built engine

	// Frontier (all users, cold included): the absolute time and origin
	// of each user's pending arrival. ~9 bytes per user is the whole
	// per-user cost of a cold user.
	nextT     []float64
	nextCover []bool
	// warm holds the materialized users (nil while cold). A user warms on
	// its first generated event and stays warm.
	warm []*userState

	workers   int
	slabLen   float64
	slabEnd   float64
	shardSize int
	shards    []shard
	heap      []int32 // shard indices, min-heap by head event (t, user)

	// restored holds a checkpoint's unconsumed merge remainder; it drains
	// before the shard reduction resumes.
	restored []event
	ri       int

	rounds int
	probe  *obs.Shard
}

// targetSlabEvents sizes generation slabs: each parallel fan-out should
// produce about this many events so the merge cost amortizes.
const targetSlabEvents = 4096

// defaultShardSize is the user count per generation shard: small enough
// that a shard's frontier slice and slab buffer stay cache-resident,
// large enough that the per-shard fan-out overhead amortizes.
const defaultShardSize = 1024

// NewEngine assembles an engine over pre-built users and the shared
// recipient space. Each user's sources and RNG must be non-nil (Cover
// may be nil) and private to that user. Every user is warm from the
// start; for large populations prefer NewLazyEngine, which materializes
// users on demand.
func NewEngine(users []User, recipients int) (*Engine, error) {
	e, err := newEngine(len(users), recipients, defaultShardSize)
	if err != nil {
		return nil, err
	}
	var totalRate float64
	for u := range users {
		usr := &users[u]
		if err := validateUser(usr, u, recipients); err != nil {
			return nil, err
		}
		sup, err := superposeUser(usr)
		if err != nil {
			return nil, err
		}
		gap, src := sup.NextFrom()
		e.nextT[u] = gap
		e.nextCover[u] = src == 1
		e.warm[u] = &userState{usr: *usr, sup: sup}
		totalRate += sup.Rate()
	}
	return e, e.finishInit(totalRate)
}

// NewLazyEngine assembles an engine over n users materialized on demand
// from a pure Builder. Construction makes one pass over the population
// (in parallel shards) to validate every user and record its compact
// frontier — first arrival time, origin, aggregate rate — and then
// discards the built source stacks. A user's full state is rebuilt from
// the builder the first time it sends; users that never send within the
// observed horizon never hold source state at all, which is what keeps
// million-user populations resident-memory-cheap.
func NewLazyEngine(n, recipients int, build Builder) (*Engine, error) {
	return newLazyEngine(n, recipients, defaultShardSize, build)
}

// newLazyEngine is NewLazyEngine with an explicit shard size (tests use
// small shards to exercise the multi-shard reduction on small N).
func newLazyEngine(n, recipients, shardSize int, build Builder) (*Engine, error) {
	if build == nil {
		return nil, errors.New("population: nil user builder")
	}
	e, err := newEngine(n, recipients, shardSize)
	if err != nil {
		return nil, err
	}
	e.build = build
	// Init pass: one parallel sweep over the shards builds each user once,
	// records its frontier, and drops the materialized state. Per-shard
	// rate partials summed in shard order keep the aggregate-rate float
	// identical at any worker count.
	nshards := e.numShards()
	partial := make([]float64, nshards)
	err = par.MapWorker(nshards, 0, func(_, sh int) error {
		lo, hi := e.shardRange(sh)
		var rate float64
		for u := lo; u < hi; u++ {
			usr, err := build(u)
			if err != nil {
				return fmt.Errorf("population: build user %d: %w", u, err)
			}
			if err := validateUser(&usr, u, recipients); err != nil {
				return err
			}
			sup, err := superposeUser(&usr)
			if err != nil {
				return err
			}
			gap, src := sup.NextFrom()
			e.nextT[u] = gap
			e.nextCover[u] = src == 1
			rate += sup.Rate()
		}
		partial[sh] = rate
		return nil
	})
	if err != nil {
		return nil, err
	}
	var totalRate float64
	for _, r := range partial {
		totalRate += r
	}
	return e, e.finishInit(totalRate)
}

// newEngine allocates the frontier arrays and validates the shape.
func newEngine(n, recipients, shardSize int) (*Engine, error) {
	if n < 2 {
		return nil, errors.New("population: need at least two users")
	}
	if recipients < 2 {
		return nil, errors.New("population: need at least two recipients")
	}
	if shardSize < 1 {
		return nil, errors.New("population: shard size must be positive")
	}
	return &Engine{
		n:         n,
		nrcpt:     recipients,
		nextT:     make([]float64, n),
		nextCover: make([]bool, n),
		warm:      make([]*userState, n),
		shardSize: shardSize,
		probe:     obs.NewShard(),
	}, nil
}

// finishInit derives the slab length from the population's aggregate
// rate.
func (e *Engine) finishInit(totalRate float64) error {
	if !(totalRate > 0) {
		return errors.New("population: population has zero aggregate rate")
	}
	e.slabLen = targetSlabEvents / totalRate
	return nil
}

// validateUser checks one user's shape against the engine.
func validateUser(usr *User, u, recipients int) error {
	if usr.Messages == nil || usr.RNG == nil {
		return fmt.Errorf("population: user %d missing sources", u)
	}
	if usr.Class < 0 {
		return fmt.Errorf("population: user %d has negative class", u)
	}
	if int(usr.Profile.nrcpt) != recipients {
		return fmt.Errorf("population: user %d profile spans %d recipients, engine has %d",
			u, usr.Profile.nrcpt, recipients)
	}
	return nil
}

// superposeUser merges a user's payload and cover sources.
func superposeUser(usr *User) (*traffic.Superpose, error) {
	srcs := []traffic.Source{usr.Messages}
	if usr.Cover != nil {
		srcs = append(srcs, usr.Cover)
	}
	return traffic.NewSuperpose(srcs...)
}

// numShards returns the shard count of the fixed user partition.
func (e *Engine) numShards() int {
	return (e.n + e.shardSize - 1) / e.shardSize
}

// shardRange returns shard sh's half-open user range.
func (e *Engine) shardRange(sh int) (lo, hi int) {
	lo = sh * e.shardSize
	hi = lo + e.shardSize
	if hi > e.n {
		hi = e.n
	}
	return lo, hi
}

// warmUp materializes user u: the pure builder recreates its source
// stack and the superpose replays the one frontier draw construction
// consumed, so the rebuilt cursor lands exactly on the recorded
// frontier. Warm users stay warm.
func (e *Engine) warmUp(u int) (*userState, error) {
	if st := e.warm[u]; st != nil {
		return st, nil
	}
	if e.build == nil {
		return nil, fmt.Errorf("population: user %d has no state and the engine has no builder", u)
	}
	usr, err := e.build(u)
	if err != nil {
		return nil, fmt.Errorf("population: rebuild user %d: %w", u, err)
	}
	if err := validateUser(&usr, u, e.nrcpt); err != nil {
		return nil, err
	}
	sup, err := superposeUser(&usr)
	if err != nil {
		return nil, err
	}
	// Replay the frontier draw: the init pass consumed one NextFrom to
	// record (nextT, nextCover); re-consuming it aligns the fresh stream
	// with the stored frontier.
	sup.NextFrom()
	st := &userState{usr: usr, sup: sup}
	e.warm[u] = st
	return st, nil
}

// mustUser materializes user u for the read-only accessors. A failure
// here means the builder is impure (the init pass already built every
// user once), which no error return can make safe — panic loudly.
func (e *Engine) mustUser(u int) *userState {
	st, err := e.warmUp(u)
	if err != nil {
		panic(err)
	}
	return st
}

// Users returns the population size.
func (e *Engine) Users() int { return e.n }

// Recipients returns the size of the recipient space.
func (e *Engine) Recipients() int { return e.nrcpt }

// WarmUsers returns how many users hold materialized source state — the
// resident-memory-relevant population, as opposed to Users().
func (e *Engine) WarmUsers() int {
	w := 0
	for _, st := range e.warm {
		if st != nil {
			w++
		}
	}
	return w
}

// Class returns user u's class index, materializing the user if needed.
func (e *Engine) Class(u int) int { return e.mustUser(u).usr.Class }

// ContactsOf returns a copy of user u's contact set, heaviest first,
// materializing the user if needed.
func (e *Engine) ContactsOf(u int) []int32 { return e.mustUser(u).usr.Profile.Contacts() }

// PresenceOf returns user u's churn schedule (nil when the user never
// churns), materializing the user if needed. The schedule is stateful
// under query; the engine and any estimator holding it must not be used
// concurrently.
func (e *Engine) PresenceOf(u int) *traffic.OnOffSchedule { return e.mustUser(u).usr.Presence }

// Rounds returns how many rounds have been emitted so far.
func (e *Engine) Rounds() int { return e.rounds }

// SetWorkers bounds the per-shard generation parallelism (values < 1
// mean all CPUs). Results are identical at any width.
func (e *Engine) SetWorkers(w int) { e.workers = w }

// SetProbe reroutes the engine's telemetry counters through the given
// shard (nil restores a private shard). Counters never influence any
// draw, so the probe cannot change a single table value.
func (e *Engine) SetProbe(p *obs.Shard) {
	if p == nil {
		p = obs.NewShard()
	}
	e.probe = p
}

// refill advances the generation horizon by one slab: every shard
// extends its users' private event streams up to the new horizon in
// parallel and sorts its slab by (time, user); the global merge then
// streams from the shard frontiers through an index min-heap. Each
// user's events are a pure function of its own streams and shards are
// disjoint user ranges, so the reduction's total order — ascending
// (time, user) — is identical at any worker count and identical to the
// previous concat-and-global-sort merge.
func (e *Engine) refill() error {
	if e.shards == nil {
		e.shards = make([]shard, e.numShards())
	}
	e.slabEnd += e.slabLen
	err := par.MapWorker(len(e.shards), e.workers, func(_, sh int) error {
		return e.genShard(sh)
	})
	if err != nil {
		return err
	}
	// Counted in the sequential reduction (never the parallel fan-out):
	// a user is active in this generation slab if it produced events.
	for i := range e.shards {
		e.probe.Add(obs.PopulationActiveUser, uint64(e.shards[i].active))
	}
	e.buildHeap()
	return nil
}

// genShard regenerates shard sh's slab buffer up to the current horizon.
func (e *Engine) genShard(sh int) error {
	s := &e.shards[sh]
	s.buf = s.buf[:0]
	s.pos = 0
	s.active = 0
	lo, hi := e.shardRange(sh)
	for u := lo; u < hi; u++ {
		if e.nextT[u] >= e.slabEnd {
			continue
		}
		st, err := e.warmUp(u)
		if err != nil {
			return err
		}
		usr := &st.usr
		n0 := len(s.buf)
		for e.nextT[u] < e.slabEnd {
			// Recipients are drawn for every generated arrival, present or
			// not, so a user's recipient stream position depends only on its
			// arrival count — adding churn perturbs which messages exist,
			// not how the survivors draw.
			var rcpt int32
			if e.nextCover[u] {
				rcpt = int32(usr.RNG.Intn(e.nrcpt))
			} else {
				rcpt = usr.Profile.Draw(usr.RNG)
			}
			if usr.Presence == nil || usr.Presence.UpAt(e.nextT[u]) {
				s.buf = append(s.buf, event{t: e.nextT[u], user: int32(u), rcpt: rcpt, dummy: e.nextCover[u]})
			}
			gap, src := st.sup.NextFrom()
			e.nextT[u] += gap
			e.nextCover[u] = src == 1
		}
		if len(s.buf) > n0 {
			s.active++
		}
	}
	s.sorter.ev = s.buf
	sort.Sort(&s.sorter)
	return nil
}

// heapLess orders two shards by their head events' (time, user) key.
// Shards are disjoint ascending user ranges, so this tie-break matches
// the sort comparator's.
func (e *Engine) heapLess(a, b int32) bool {
	sa, sb := &e.shards[a], &e.shards[b]
	ea, eb := &sa.buf[sa.pos], &sb.buf[sb.pos]
	if ea.t != eb.t {
		return ea.t < eb.t
	}
	return ea.user < eb.user
}

// siftDown restores the merge heap below position i.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && e.heapLess(h[r], h[l]) {
			m = r
		}
		if !e.heapLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// buildHeap (re)establishes the merge heap over the non-empty shards.
func (e *Engine) buildHeap() {
	e.heap = e.heap[:0]
	for i := range e.shards {
		if e.shards[i].pos < len(e.shards[i].buf) {
			e.heap = append(e.heap, int32(i))
		}
	}
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// popEvent emits the next event of the merged stream: the checkpoint
// remainder first, then the k-way shard reduction. ok is false when the
// current slab is exhausted and the caller must refill.
func (e *Engine) popEvent() (ev event, ok bool) {
	if e.ri < len(e.restored) {
		ev = e.restored[e.ri]
		e.ri++
		if e.ri == len(e.restored) {
			e.restored = nil
			e.ri = 0
		}
		return ev, true
	}
	if len(e.heap) == 0 {
		return event{}, false
	}
	s := &e.shards[e.heap[0]]
	ev = s.buf[s.pos]
	s.pos++
	if s.pos >= len(s.buf) {
		last := len(e.heap) - 1
		e.heap[0] = e.heap[last]
		e.heap = e.heap[:last]
	}
	if len(e.heap) > 0 {
		e.siftDown(0)
	}
	return ev, true
}

// pendingEvents collects the unconsumed remainder of the merged stream
// in emission order without consuming it (checkpoint support; rare, so
// the simple repeated min-scan over shard cursors is fine).
func (e *Engine) pendingEvents() []event {
	var out []event
	if e.ri < len(e.restored) {
		out = append(out, e.restored[e.ri:]...)
	}
	pos := make([]int, len(e.shards))
	for i := range e.shards {
		pos[i] = e.shards[i].pos
	}
	for {
		best := -1
		for i := range e.shards {
			if pos[i] >= len(e.shards[i].buf) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			ea, eb := &e.shards[i].buf[pos[i]], &e.shards[best].buf[pos[best]]
			if ea.t < eb.t || (ea.t == eb.t && ea.user < eb.user) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, e.shards[best].buf[pos[best]])
		pos[best]++
	}
}

// NextRound emits the next mix round: the next `batch` messages of the
// merged population stream, in arrival order (a threshold mix flushes
// when its batch fills). The round's slices are reused; steady state
// allocates nothing beyond the amortized slab buffers.
func (e *Engine) NextRound(batch int, r *Round) error {
	if batch < 1 {
		return errors.New("population: round batch must be at least 1")
	}
	r.Users = r.Users[:0]
	r.Rcpts = r.Rcpts[:0]
	r.Dummy = r.Dummy[:0]
	r.Times = r.Times[:0]
	for len(r.Users) < batch {
		ev, ok := e.popEvent()
		if !ok {
			if err := e.refill(); err != nil {
				return err
			}
			continue
		}
		if ev.dummy {
			e.probe.Inc(obs.TrafficCover)
		} else {
			e.probe.Inc(obs.PopulationMessage)
		}
		r.Users = append(r.Users, ev.user)
		r.Rcpts = append(r.Rcpts, ev.rcpt)
		r.Dummy = append(r.Dummy, ev.dummy)
		r.Times = append(r.Times, ev.t)
		r.Flush = ev.t
	}
	e.rounds++
	e.probe.Inc(obs.PopulationRound)
	// Round boundaries are the engine's natural flush points: coarse
	// enough to stay off the per-event path, fine enough for live reads.
	e.probe.Flush()
	return nil
}
