package adversary

import (
	"errors"

	"linkpad/internal/par"
)

// OnlineExtractor is the adversary's run-time view of one continuous
// padded stream (the paper's actual observation protocol): it slices the
// PIAT sequence into consecutive windows of n and reduces each window
// through the allocation-free MultiPipeline as it arrives. Unlike the
// i.i.d.-replica protocol (FeatureMatrix), consecutive windows share the
// stream's carried state — queue occupancy, timer phase, burst phase,
// diurnal position — so their features are drawn from the true joint
// process, not from independent cold-started copies.
//
// An OnlineExtractor is not safe for concurrent use; sessions parallelize
// across streams, never within one (windows of one stream are inherently
// sequential).
type OnlineExtractor struct {
	src     PIATSource
	mp      *MultiPipeline
	n       int
	windows int
}

// NewOnlineExtractor wraps a continuous PIAT stream for windowed
// extraction with the given extractor set and window size n.
func NewOnlineExtractor(src PIATSource, exts []Extractor, n int) (*OnlineExtractor, error) {
	mp, err := NewMultiPipeline(exts)
	if err != nil {
		return nil, err
	}
	return NewOnlineExtractorShared(mp, src, n)
}

// NewOnlineExtractorShared wraps src with a caller-owned pipeline, so a
// worker evaluating many sessions in turn reuses one pipeline's scratch
// buffers across them (the session engine's hot path). The pipeline must
// not be shared across concurrent extractors.
func NewOnlineExtractorShared(mp *MultiPipeline, src PIATSource, n int) (*OnlineExtractor, error) {
	if src == nil {
		return nil, errors.New("adversary: nil PIAT source")
	}
	if mp == nil {
		return nil, errors.New("adversary: nil pipeline")
	}
	if n < 2 {
		return nil, errors.New("adversary: window must hold at least two PIATs")
	}
	return &OnlineExtractor{src: src, mp: mp, n: n}, nil
}

// NextWindow consumes the next n PIATs of the stream and writes each
// extractor's statistic to out[i]. Steady state allocates nothing.
func (o *OnlineExtractor) NextWindow(out []float64) error {
	if err := o.mp.ExtractFrom(o.src, o.n, out); err != nil {
		return err
	}
	o.windows++
	return nil
}

// Windows returns how many windows have been extracted so far.
func (o *OnlineExtractor) Windows() int { return o.windows }

// WindowSize returns the per-window sample size n.
func (o *OnlineExtractor) WindowSize() int { return o.n }

// SessionFactory builds the continuous PIAT stream for one session index:
// a fresh, deterministic realization of the system, already warmed past
// its transient if the protocol calls for warm-up. Giving every session
// its own seeded stream is what makes session-level parallelism
// reproducible — a session's windows depend only on its index, never on
// worker scheduling.
type SessionFactory func(session int) (PIATSource, error)

// SessionFeatureMatrix is the continuous-stream analogue of
// FeatureMatrix: it draws windowsPerSession *consecutive* windows of size
// n from each of `sessions` continuous streams and reduces every window
// through every extractor in one streaming pass. Sessions run on up to
// `workers` goroutines (values < 1 mean all CPUs); windows within a
// session stay sequential because they share carried stream state. The
// result is indexed [extractor][session*windowsPerSession + window] and
// is identical for any worker count.
func SessionFeatureMatrix(factory SessionFactory, exts []Extractor, sessions, windowsPerSession, n, workers int) ([][]float64, error) {
	if sessions <= 0 || windowsPerSession <= 0 || n < 2 {
		return nil, errors.New("adversary: need sessions > 0, windowsPerSession > 0 and n >= 2")
	}
	workers = par.Workers(workers)
	if workers > sessions {
		workers = sessions
	}
	pipes := make([]*MultiPipeline, workers)
	outs := make([][]float64, workers)
	for i := range pipes {
		mp, err := NewMultiPipeline(exts)
		if err != nil {
			return nil, err
		}
		pipes[i] = mp
		outs[i] = make([]float64, len(exts))
	}
	total := sessions * windowsPerSession
	mat := make([][]float64, len(exts))
	flat := make([]float64, len(exts)*total)
	for i := range mat {
		mat[i] = flat[i*total : (i+1)*total : (i+1)*total]
	}
	err := par.MapWorker(sessions, workers, func(worker, s int) error {
		src, err := factory(s)
		if err != nil {
			return err
		}
		out := outs[worker]
		for w := 0; w < windowsPerSession; w++ {
			if err := pipes[worker].ExtractFrom(src, n, out); err != nil {
				return err
			}
			for i := range exts {
				mat[i][s*windowsPerSession+w] = out[i]
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mat, nil
}
