// Package adversary implements the paper's attacker (§3.3): a passive
// observer who taps the padded stream, collects samples of n packet
// inter-arrival times, reduces each sample to one feature statistic
// (sample mean, sample variance, or sample entropy), trains per-class
// feature densities off-line with Gaussian KDE, and classifies run-time
// samples with the Bayes rule. Detection rates are estimated by Monte
// Carlo over fresh evaluation windows.
//
// Determinism contract: extractors are pure reductions — all randomness
// lives in the PIAT sources the caller supplies — and the parallel
// training/evaluation helpers (FeatureMatrix, SessionFeatureMatrix)
// assign each window or session its own pre-seeded source, so matrices
// are byte-identical at any worker count.
//
// Allocation discipline: the hot path is allocation-free in steady
// state. MultiPipeline reduces one simulated window through every
// extractor in a single streaming pass (Welford moments, a reusable
// dense histogram, quickselect quantiles), and Evaluate reuses
// per-worker window buffers across trials.
package adversary

import (
	"errors"
	"fmt"

	"linkpad/internal/analytic"
	"linkpad/internal/bayes"
	"linkpad/internal/stats"
)

// PIATSource yields successive packet inter-arrival times of the padded
// stream as seen at the adversary's tap.
type PIATSource interface {
	Next() float64
}

// DefaultEntropyBinWidth is the constant histogram bin width (paper
// eq. 25 requires a constant Δh) used by the sample-entropy feature:
// 2 µs resolves the µs-scale class peaks of the calibrated gateway.
const DefaultEntropyBinWidth = 2e-6

// Extractor reduces a PIAT window to one feature statistic.
type Extractor struct {
	// Feature selects the statistic.
	Feature analytic.Feature
	// EntropyBinWidth is the constant bin width for the entropy feature;
	// zero selects DefaultEntropyBinWidth.
	EntropyBinWidth float64
}

// binWidth returns the effective entropy bin width.
func (e Extractor) binWidth() float64 {
	if e.EntropyBinWidth > 0 {
		return e.EntropyBinWidth
	}
	return DefaultEntropyBinWidth
}

// Extract computes the feature statistic of one window.
func (e Extractor) Extract(window []float64) (float64, error) {
	if len(window) < 2 {
		return 0, errors.New("adversary: window must hold at least two PIATs")
	}
	switch e.Feature {
	case analytic.FeatureMean:
		return stats.Mean(window), nil
	case analytic.FeatureVariance:
		return stats.Variance(window), nil
	case analytic.FeatureEntropy:
		return stats.Entropy(window, e.binWidth())
	case analytic.FeatureIQR:
		q1, err := stats.Quantile(window, 0.25)
		if err != nil {
			return 0, err
		}
		q3, err := stats.Quantile(window, 0.75)
		if err != nil {
			return 0, err
		}
		return q3 - q1, nil
	default:
		return 0, fmt.Errorf("adversary: unknown feature %v", e.Feature)
	}
}

// Window reads one window of n PIATs from src.
func Window(src PIATSource, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = src.Next()
	}
	return w
}

// Features reads `windows` consecutive windows of size n from src and
// returns their feature values. Each window is reduced in one streaming
// pass through a reusable Pipeline, so beyond the returned slice the
// steady state allocates nothing per window.
func Features(src PIATSource, e Extractor, windows, n int) ([]float64, error) {
	if windows <= 0 || n < 2 {
		return nil, errors.New("adversary: need windows > 0 and n >= 2")
	}
	p, err := NewPipeline(e)
	if err != nil {
		return nil, err
	}
	out := make([]float64, windows)
	for i := range out {
		f, err := p.ExtractFrom(src, n)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// TrainConfig describes the off-line training phase.
type TrainConfig struct {
	// Extractor selects the feature statistic.
	Extractor Extractor
	// WindowSize is the run-time sample size n.
	WindowSize int
	// WindowsPerClass is the number of training windows collected per
	// class.
	WindowsPerClass int
	// GaussianFit selects a parametric normal fit of the feature
	// densities instead of the paper's Gaussian KDE (ablation).
	GaussianFit bool
	// Priors are the a-priori class probabilities; nil means equal.
	Priors []float64
}

// Validate checks the configuration.
func (c TrainConfig) Validate() error {
	if c.WindowSize < 2 {
		return errors.New("adversary: window size must be at least 2")
	}
	if c.WindowsPerClass < 2 {
		return errors.New("adversary: need at least two training windows per class")
	}
	return nil
}

// Attacker is a trained adversary ready for run-time classification.
type Attacker struct {
	classifier *bayes.Classifier
	extractor  Extractor
	windowSize int
	labels     []string
	// TrainFeatures keeps the per-class training feature samples for
	// diagnostics (e.g. measuring the empirical variance ratio).
	TrainFeatures [][]float64
}

// Train runs the off-line phase: for each class it draws training windows
// from that class's PIAT source, extracts features, and fits the
// class-conditional densities.
func Train(cfg TrainConfig, labels []string, sources []PIATSource) (*Attacker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(labels) != len(sources) {
		return nil, errors.New("adversary: labels/sources length mismatch")
	}
	if len(labels) < 2 {
		return nil, errors.New("adversary: need at least two classes")
	}
	features := make([][]float64, len(labels))
	for i, src := range sources {
		if src == nil {
			return nil, fmt.Errorf("adversary: nil source for class %q", labels[i])
		}
		f, err := Features(src, cfg.Extractor, cfg.WindowsPerClass, cfg.WindowSize)
		if err != nil {
			return nil, fmt.Errorf("adversary: class %q: %w", labels[i], err)
		}
		features[i] = f
	}
	var cls *bayes.Classifier
	var err error
	if cfg.GaussianFit {
		cls, err = bayes.TrainGaussian(labels, features, cfg.Priors)
	} else {
		cls, err = bayes.TrainKDE(labels, features, cfg.Priors)
	}
	if err != nil {
		return nil, err
	}
	return &Attacker{
		classifier:    cls,
		extractor:     cfg.Extractor,
		windowSize:    cfg.WindowSize,
		labels:        append([]string(nil), labels...),
		TrainFeatures: features,
	}, nil
}

// Classifier exposes the underlying Bayes classifier.
func (a *Attacker) Classifier() *bayes.Classifier { return a.classifier }

// WindowSize returns the run-time sample size n.
func (a *Attacker) WindowSize() int { return a.windowSize }

// ClassifyWindow applies the run-time attack to one PIAT sample.
func (a *Attacker) ClassifyWindow(window []float64) (int, error) {
	f, err := a.extractor.Extract(window)
	if err != nil {
		return 0, err
	}
	return a.classifier.Classify(f), nil
}

// ClassifyNext reads one window from src and classifies it.
func (a *Attacker) ClassifyNext(src PIATSource) (int, error) {
	return a.ClassifyWindow(Window(src, a.windowSize))
}

// Evaluate estimates the detection rate by classifying windowsPerClass
// fresh windows from each class source (which must be independent of the
// training streams, mirroring the paper's off-line/run-time split).
// Windows are reduced through a reusable streaming pipeline — zero
// allocations per window — and each class's feature batch is scored with
// one ClassifyBatch call.
func (a *Attacker) Evaluate(sources []PIATSource, windowsPerClass int) (*bayes.Confusion, error) {
	if len(sources) != len(a.labels) {
		return nil, errors.New("adversary: evaluation sources do not match training classes")
	}
	if windowsPerClass <= 0 {
		return nil, errors.New("adversary: need at least one evaluation window per class")
	}
	p, err := NewPipeline(a.extractor)
	if err != nil {
		return nil, err
	}
	cm := bayes.NewConfusion(a.labels)
	feats := make([]float64, windowsPerClass)
	var preds []int
	for class, src := range sources {
		if src == nil {
			return nil, fmt.Errorf("adversary: nil evaluation source for class %q", a.labels[class])
		}
		for w := range feats {
			f, err := p.ExtractFrom(src, a.windowSize)
			if err != nil {
				return nil, err
			}
			feats[w] = f
		}
		preds = a.classifier.ClassifyBatch(feats, preds)
		for _, pred := range preds {
			cm.Add(class, pred)
		}
	}
	return cm, nil
}

// EmpiricalR estimates the paper's variance ratio r = σ_h²/σ_l² from raw
// PIAT streams: it reads n PIATs from each of the two sources and returns
// the ratio of their sample variances (high/low as given). Each source is
// consumed a slab at a time when it supports batching; the two streams
// are independent and their accumulators separate, so the batched
// traversal order yields the identical ratio.
func EmpiricalR(low, high PIATSource, n int) (float64, error) {
	if n < 2 {
		return 0, errors.New("adversary: need n >= 2")
	}
	var ml, mh stats.Moments
	buf := make([]float64, chunkLen(n))
	for _, s := range []struct {
		src PIATSource
		m   *stats.Moments
	}{{low, &ml}, {high, &mh}} {
		for done := 0; done < n; {
			k := min(len(buf), n-done)
			fillPIATs(s.src, buf[:k])
			s.m.AddAll(buf[:k])
			done += k
		}
	}
	vl, vh := ml.Variance(), mh.Variance()
	if !(vl > 0) {
		return 0, errors.New("adversary: low-rate stream has zero variance")
	}
	return vh / vl, nil
}
