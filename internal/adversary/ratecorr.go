package adversary

import (
	"errors"
	"math"
)

// Windowed rate correlation: the throughput-fingerprinting feature of the
// population flow-correlation attack. The adversary reduces an observed
// packet timestamp stream to a vector of per-window packet counts (its
// "throughput fingerprint") and matches ingress against egress flows by
// Pearson correlation of the two vectors. Unlike the PIAT features — which
// fingerprint a flow's *class* — the rate vector fingerprints the flow's
// *payload sample path*, so it identifies the individual user whenever the
// padding lets payload rate fluctuations reach the wire.

// RateVector bins the event times (absolute seconds, ascending) into
// consecutive windows of the given width starting at start, writing one
// count per window into out and returning it. Events before start or at
// or beyond start+len(out)*width are ignored. out must be non-empty and
// width positive; out is zeroed first, so a reused buffer needs no reset.
func RateVector(times []float64, start, width float64, out []float64) ([]float64, error) {
	if len(out) == 0 {
		return nil, errors.New("adversary: RateVector needs at least one window")
	}
	if !(width > 0) {
		return nil, errors.New("adversary: RateVector window width must be positive")
	}
	for i := range out {
		out[i] = 0
	}
	for _, t := range times {
		k := int((t - start) / width)
		if k < 0 || k >= len(out) || t < start {
			continue
		}
		out[k]++
	}
	return out, nil
}

// Pearson returns the sample correlation coefficient of a and b, which
// must have equal positive length. Degenerate vectors (either side
// constant) correlate at 0: a constant-rate padded flow carries no
// throughput fingerprint, which is exactly the defense's goal, so "no
// information" is the correct score rather than an error.
func Pearson(a, b []float64) (float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return 0, errors.New("adversary: Pearson needs equal-length non-empty vectors")
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0, nil
	}
	return sab / math.Sqrt(saa*sbb), nil
}

// PearsonMasked returns the sample correlation of a and b over the
// indices where mask is true. It is the churn-aware variant of Pearson:
// an adversary correlating a churning user's flows masks out the windows
// where the egress flow was dark (the user was offline), because those
// windows carry presence information, not throughput information, and
// would otherwise dominate the correlation with a spurious on/off
// signature shared by every co-churning user. Fewer than two selected
// indices, or a degenerate selection, correlates at 0.
func PearsonMasked(a, b []float64, mask []bool) (float64, error) {
	if len(a) == 0 || len(a) != len(b) || len(a) != len(mask) {
		return 0, errors.New("adversary: PearsonMasked needs equal-length non-empty vectors and mask")
	}
	var n, ma, mb float64
	for i := range a {
		if !mask[i] {
			continue
		}
		n++
		ma += a[i]
		mb += b[i]
	}
	if n < 2 {
		return 0, nil
	}
	ma /= n
	mb /= n
	var sab, saa, sbb float64
	for i := range a {
		if !mask[i] {
			continue
		}
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0, nil
	}
	return sab / math.Sqrt(saa*sbb), nil
}

// Replay adapts a recorded PIAT slice to the PIATSource interface, so the
// streaming extraction pipelines can reduce captured data the same way
// they reduce live streams. Reads past the end repeat the final value;
// callers size their windows to the data (Remaining).
type Replay struct {
	xs []float64
	i  int
}

// NewReplay wraps the PIAT slice; the slice is not copied.
func NewReplay(xs []float64) *Replay { return &Replay{xs: xs} }

// Next returns the next recorded PIAT, saturating at the last value.
func (r *Replay) Next() float64 {
	if r.i >= len(r.xs) {
		if len(r.xs) == 0 {
			return 0
		}
		return r.xs[len(r.xs)-1]
	}
	x := r.xs[r.i]
	r.i++
	return x
}

// NextBatch fills dst with the next len(dst) recorded PIATs, saturating
// at the last value — exactly len(dst) Next calls, one copy.
func (r *Replay) NextBatch(dst []float64) {
	n := copy(dst, r.xs[min(r.i, len(r.xs)):])
	r.i += n
	if n < len(dst) {
		last := 0.0
		if len(r.xs) > 0 {
			last = r.xs[len(r.xs)-1]
		}
		for i := n; i < len(dst); i++ {
			dst[i] = last
		}
	}
}

// Remaining returns how many recorded PIATs are left to read.
func (r *Replay) Remaining() int { return len(r.xs) - r.i }

// Reset rewinds the replay to the first PIAT.
func (r *Replay) Reset() { r.i = 0 }
