package adversary

import (
	"math"
	"testing"

	"linkpad/internal/analytic"
	"linkpad/internal/stats"
	"linkpad/internal/xrand"
)

// funcSource adapts a generator function to PIATSource.
type funcSource func() float64

func (f funcSource) Next() float64 { return f() }

// gaussSource yields i.i.d. normal PIATs.
func gaussSource(seed uint64, mu, sigma float64) PIATSource {
	r := xrand.New(seed)
	return funcSource(func() float64 { return r.Normal(mu, sigma) })
}

func TestExtractorMean(t *testing.T) {
	e := Extractor{Feature: analytic.FeatureMean}
	got, err := e.Extract([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("mean = %v", got)
	}
}

func TestExtractorVariance(t *testing.T) {
	e := Extractor{Feature: analytic.FeatureVariance}
	got, err := e.Extract([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4.0 * 8 / 7; math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, want)
	}
}

func TestExtractorEntropyMatchesStats(t *testing.T) {
	// All values sit inside one 1 ms bin but spread across several 2 µs
	// bins.
	w := []float64{0.0105, 0.0105005, 0.0105021, 0.0104998, 0.010501}
	e := Extractor{Feature: analytic.FeatureEntropy}
	got, err := e.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stats.Entropy(w, DefaultEntropyBinWidth)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("entropy = %v, want %v", got, want)
	}
	// Custom bin width takes effect.
	e2 := Extractor{Feature: analytic.FeatureEntropy, EntropyBinWidth: 1e-3}
	coarse, err := e2.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	if coarse != 0 {
		t.Errorf("all points share one coarse bin, entropy = %v", coarse)
	}
}

func TestExtractorIQR(t *testing.T) {
	e := Extractor{Feature: analytic.FeatureIQR}
	got, err := e.Extract([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 { // Q3=4, Q1=2
		t.Errorf("IQR = %v, want 2", got)
	}
	// IQR is a robust spread measure: one huge outlier barely moves it.
	clean := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	dirty := append(append([]float64(nil), clean...), 1e6)
	a, err := e.Extract(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Extract(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1.5 {
		t.Errorf("IQR moved from %v to %v on one outlier", a, b)
	}
}

func TestExtractorErrors(t *testing.T) {
	e := Extractor{Feature: analytic.FeatureMean}
	if _, err := e.Extract([]float64{1}); err == nil {
		t.Error("short window should fail")
	}
	bad := Extractor{Feature: analytic.Feature(99)}
	if _, err := bad.Extract([]float64{1, 2}); err == nil {
		t.Error("unknown feature should fail")
	}
}

func TestFeaturesConsumesSequentially(t *testing.T) {
	i := 0.0
	src := funcSource(func() float64 { i++; return i })
	fs, err := Features(src, Extractor{Feature: analytic.FeatureMean}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.5, 6.5, 10.5}
	for k := range want {
		if math.Abs(fs[k]-want[k]) > 1e-12 {
			t.Fatalf("features = %v, want %v", fs, want)
		}
	}
	if _, err := Features(src, Extractor{}, 0, 4); err == nil {
		t.Error("zero windows should fail")
	}
	if _, err := Features(src, Extractor{}, 1, 1); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestTrainValidation(t *testing.T) {
	cfg := TrainConfig{Extractor: Extractor{Feature: analytic.FeatureVariance}, WindowSize: 10, WindowsPerClass: 10}
	srcs := []PIATSource{gaussSource(1, 0.01, 1e-6), gaussSource(2, 0.01, 2e-6)}
	if _, err := Train(TrainConfig{WindowSize: 1, WindowsPerClass: 10}, []string{"a", "b"}, srcs); err == nil {
		t.Error("bad window size")
	}
	if _, err := Train(TrainConfig{WindowSize: 10, WindowsPerClass: 1}, []string{"a", "b"}, srcs); err == nil {
		t.Error("bad windows per class")
	}
	if _, err := Train(cfg, []string{"a"}, srcs[:1]); err == nil {
		t.Error("one class should fail")
	}
	if _, err := Train(cfg, []string{"a", "b"}, srcs[:1]); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := Train(cfg, []string{"a", "b"}, []PIATSource{srcs[0], nil}); err == nil {
		t.Error("nil source should fail")
	}
}

// Two classes with clearly different PIAT variances: the variance-feature
// attack should detect nearly perfectly; identical classes give ~0.5.
func TestTrainEvaluateSeparatedAndIdentical(t *testing.T) {
	cfg := TrainConfig{
		Extractor:       Extractor{Feature: analytic.FeatureVariance},
		WindowSize:      200,
		WindowsPerClass: 150,
	}
	sep, err := Train(cfg, []string{"low", "high"},
		[]PIATSource{gaussSource(10, 0.01, 2e-6), gaussSource(11, 0.01, 4e-6)})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := sep.Evaluate(
		[]PIATSource{gaussSource(12, 0.01, 2e-6), gaussSource(13, 0.01, 4e-6)}, 150)
	if err != nil {
		t.Fatal(err)
	}
	if v := cm.DetectionRate(); v < 0.95 {
		t.Errorf("separated detection = %v, want > 0.95", v)
	}

	same, err := Train(cfg, []string{"a", "b"},
		[]PIATSource{gaussSource(20, 0.01, 3e-6), gaussSource(21, 0.01, 3e-6)})
	if err != nil {
		t.Fatal(err)
	}
	cm, err = same.Evaluate(
		[]PIATSource{gaussSource(22, 0.01, 3e-6), gaussSource(23, 0.01, 3e-6)}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if v := cm.DetectionRate(); math.Abs(v-0.5) > 0.08 {
		t.Errorf("identical-class detection = %v, want ~0.5", v)
	}
}

// The mean feature cannot separate equal-mean classes regardless of their
// variance ratio — Theorem 1's point at the feature level.
func TestMeanFeatureFailsOnEqualMeans(t *testing.T) {
	cfg := TrainConfig{
		Extractor:       Extractor{Feature: analytic.FeatureMean},
		WindowSize:      500,
		WindowsPerClass: 150,
	}
	a, err := Train(cfg, []string{"low", "high"},
		[]PIATSource{gaussSource(30, 0.01, 2e-6), gaussSource(31, 0.01, 4e-6)})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := a.Evaluate(
		[]PIATSource{gaussSource(32, 0.01, 2e-6), gaussSource(33, 0.01, 4e-6)}, 200)
	if err != nil {
		t.Fatal(err)
	}
	// i.i.d. Gaussian PIATs: sample-mean ratio keeps r, detection ~0.58
	// per the exact Theorem 1 value at r=4 (0.69); allow the whole
	// sub-random-guessing band up to well below variance's performance.
	if v := cm.DetectionRate(); v > 0.8 {
		t.Errorf("mean-feature detection = %v, should stay far below variance's ~1.0", v)
	}
}

func TestGaussianFitPath(t *testing.T) {
	cfg := TrainConfig{
		Extractor:       Extractor{Feature: analytic.FeatureVariance},
		WindowSize:      200,
		WindowsPerClass: 100,
		GaussianFit:     true,
	}
	a, err := Train(cfg, []string{"low", "high"},
		[]PIATSource{gaussSource(40, 0.01, 2e-6), gaussSource(41, 0.01, 4e-6)})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := a.Evaluate(
		[]PIATSource{gaussSource(42, 0.01, 2e-6), gaussSource(43, 0.01, 4e-6)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v := cm.DetectionRate(); v < 0.9 {
		t.Errorf("gaussian-fit detection = %v", v)
	}
}

func TestEvaluateErrors(t *testing.T) {
	cfg := TrainConfig{Extractor: Extractor{Feature: analytic.FeatureVariance}, WindowSize: 50, WindowsPerClass: 20}
	a, err := Train(cfg, []string{"low", "high"},
		[]PIATSource{gaussSource(50, 0.01, 2e-6), gaussSource(51, 0.01, 4e-6)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Evaluate([]PIATSource{gaussSource(1, 0.01, 1e-6)}, 10); err == nil {
		t.Error("wrong class count should fail")
	}
	if _, err := a.Evaluate([]PIATSource{gaussSource(1, 0.01, 1e-6), nil}, 10); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := a.Evaluate([]PIATSource{gaussSource(1, 0.01, 1e-6), gaussSource(2, 0.01, 1e-6)}, 0); err == nil {
		t.Error("zero windows should fail")
	}
}

func TestClassifyWindowDirect(t *testing.T) {
	cfg := TrainConfig{Extractor: Extractor{Feature: analytic.FeatureVariance}, WindowSize: 100, WindowsPerClass: 80}
	a, err := Train(cfg, []string{"low", "high"},
		[]PIATSource{gaussSource(60, 0.01, 2e-6), gaussSource(61, 0.01, 6e-6)})
	if err != nil {
		t.Fatal(err)
	}
	if a.WindowSize() != 100 {
		t.Errorf("WindowSize = %d", a.WindowSize())
	}
	low := Window(gaussSource(62, 0.01, 2e-6), 100)
	high := Window(gaussSource(63, 0.01, 6e-6), 100)
	cl, err := a.ClassifyWindow(low)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := a.ClassifyWindow(high)
	if err != nil {
		t.Fatal(err)
	}
	if cl != 0 || ch != 1 {
		t.Errorf("classified %d/%d, want 0/1", cl, ch)
	}
	if a.Classifier().Label(0) != "low" {
		t.Error("labels lost")
	}
}

func TestEmpiricalR(t *testing.T) {
	r, err := EmpiricalR(gaussSource(70, 0.01, 2e-6), gaussSource(71, 0.01, math.Sqrt2*2e-6), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2) > 0.05 {
		t.Errorf("empirical r = %v, want ~2", r)
	}
	if _, err := EmpiricalR(gaussSource(1, 1, 1), gaussSource(2, 1, 1), 1); err == nil {
		t.Error("n=1 should fail")
	}
	constSrc := funcSource(func() float64 { return 0.01 })
	if _, err := EmpiricalR(constSrc, gaussSource(3, 1, 1), 100); err == nil {
		t.Error("zero-variance low stream should fail")
	}
}

func BenchmarkTrainEvaluateVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := TrainConfig{
			Extractor:       Extractor{Feature: analytic.FeatureVariance},
			WindowSize:      100,
			WindowsPerClass: 50,
		}
		a, err := Train(cfg, []string{"low", "high"},
			[]PIATSource{gaussSource(1, 0.01, 2e-6), gaussSource(2, 0.01, 4e-6)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Evaluate([]PIATSource{gaussSource(3, 0.01, 2e-6), gaussSource(4, 0.01, 4e-6)}, 50); err != nil {
			b.Fatal(err)
		}
	}
}
