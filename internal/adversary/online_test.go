package adversary

import (
	"errors"
	"runtime"
	"testing"

	"linkpad/internal/analytic"
	"linkpad/internal/xrand"
)

// rngSource is a deterministic continuous PIAT stream for online tests.
type rngSource struct {
	rng  *xrand.Rand
	mean float64
}

func (s *rngSource) Next() float64 { return s.rng.Exp(s.mean) }

// Consecutive windows from an OnlineExtractor must equal slicing the same
// stream by hand and extracting each slice: windowing is observation,
// never perturbation.
func TestOnlineExtractorMatchesManualSlicing(t *testing.T) {
	exts := []Extractor{
		{Feature: analytic.FeatureMean},
		{Feature: analytic.FeatureVariance},
		{Feature: analytic.FeatureEntropy},
	}
	const n, windows = 64, 8
	// Reference: collect the raw continuous stream, then extract slices.
	raw := &rngSource{rng: xrand.New(42), mean: 10e-3}
	stream := make([]float64, n*windows)
	for i := range stream {
		stream[i] = raw.Next()
	}
	online, err := NewOnlineExtractor(&rngSource{rng: xrand.New(42), mean: 10e-3}, exts, n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(exts))
	for w := 0; w < windows; w++ {
		if err := online.NextWindow(out); err != nil {
			t.Fatal(err)
		}
		mp, err := NewMultiPipeline(exts)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(exts))
		if err := mp.ExtractFrom(&sliceSrc{xs: stream[w*n : (w+1)*n]}, n, want); err != nil {
			t.Fatal(err)
		}
		for i := range exts {
			if out[i] != want[i] {
				t.Fatalf("window %d extractor %d: online %v != manual %v", w, i, out[i], want[i])
			}
		}
	}
	if online.Windows() != windows {
		t.Errorf("Windows() = %d, want %d", online.Windows(), windows)
	}
	if online.WindowSize() != n {
		t.Errorf("WindowSize() = %d, want %d", online.WindowSize(), n)
	}
}

type sliceSrc struct {
	xs []float64
	i  int
}

func (s *sliceSrc) Next() float64 {
	x := s.xs[s.i]
	s.i++
	return x
}

func TestOnlineExtractorValidation(t *testing.T) {
	exts := []Extractor{{Feature: analytic.FeatureMean}}
	if _, err := NewOnlineExtractor(nil, exts, 10); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewOnlineExtractor(&rngSource{rng: xrand.New(1), mean: 1}, exts, 1); err == nil {
		t.Error("window size 1 accepted")
	}
	if _, err := NewOnlineExtractor(&rngSource{rng: xrand.New(1), mean: 1}, nil, 10); err == nil {
		t.Error("empty extractor set accepted")
	}
}

// SessionFeatureMatrix must be byte-identical at any worker count: every
// session derives its stream from its own index.
func TestSessionFeatureMatrixWorkerInvariance(t *testing.T) {
	exts := []Extractor{
		{Feature: analytic.FeatureVariance},
		{Feature: analytic.FeatureEntropy},
	}
	factory := func(s int) (PIATSource, error) {
		return &rngSource{rng: xrand.New(uint64(1000 + s)), mean: 10e-3}, nil
	}
	const sessions, wps, n = 6, 5, 50
	ref, err := SessionFeatureMatrix(factory, exts, sessions, wps, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(exts) || len(ref[0]) != sessions*wps {
		t.Fatalf("matrix shape [%d][%d], want [%d][%d]", len(ref), len(ref[0]), len(exts), sessions*wps)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		got, err := SessionFeatureMatrix(factory, exts, sessions, wps, n, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: [%d][%d] = %v, want %v", workers, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

// Windows within one session must be consecutive (state carried), not
// replicas: the matrix for one session equals manually reading
// wps windows in a row from one stream.
func TestSessionFeatureMatrixConsecutiveWindows(t *testing.T) {
	exts := []Extractor{{Feature: analytic.FeatureMean}}
	factory := func(s int) (PIATSource, error) {
		return &rngSource{rng: xrand.New(77), mean: 1e-3}, nil
	}
	const wps, n = 4, 32
	mat, err := SessionFeatureMatrix(factory, exts, 1, wps, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := &rngSource{rng: xrand.New(77), mean: 1e-3}
	p, err := NewPipeline(exts[0])
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < wps; w++ {
		want, err := p.ExtractFrom(src, n)
		if err != nil {
			t.Fatal(err)
		}
		if mat[0][w] != want {
			t.Fatalf("window %d: %v != consecutive reference %v", w, mat[0][w], want)
		}
	}
}

func TestSessionFeatureMatrixErrors(t *testing.T) {
	exts := []Extractor{{Feature: analytic.FeatureMean}}
	bad := errors.New("factory failed")
	_, err := SessionFeatureMatrix(func(int) (PIATSource, error) { return nil, bad }, exts, 2, 2, 10, 1)
	if !errors.Is(err, bad) {
		t.Errorf("factory error not propagated: %v", err)
	}
	if _, err := SessionFeatureMatrix(nil, exts, 0, 2, 10, 1); err == nil {
		t.Error("zero sessions accepted")
	}
	if _, err := SessionFeatureMatrix(nil, exts, 2, 0, 10, 1); err == nil {
		t.Error("zero windows accepted")
	}
}
