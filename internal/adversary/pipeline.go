package adversary

import (
	"errors"
	"fmt"

	"linkpad/internal/analytic"
	"linkpad/internal/obs"
	"linkpad/internal/par"
	"linkpad/internal/slab"
	"linkpad/internal/stats"
)

// batchPIATSource is the structural face of the batched event core as
// the adversary sees it: any PIAT source whose NextBatch(dst) is
// equivalent to len(dst) Next calls (netem.BatchStream implementers
// qualify; the interface is asserted structurally so this package needs
// no netem dependency). The extraction pipelines use it to pull whole
// slabs of PIATs per virtual call instead of one.
type batchPIATSource interface {
	NextBatch(dst []float64)
}

// fillPIATs fills dst from src through the batched path when available.
func fillPIATs(src PIATSource, dst []float64) {
	if b, ok := src.(batchPIATSource); ok {
		b.NextBatch(dst)
	} else {
		for i := range dst {
			dst[i] = src.Next()
		}
	}
	if obs.Enabled() {
		// Slab boundaries are where chain telemetry becomes visible: the
		// chain's tail element (netem.Differ) carries the shard and
		// drains it here, once per pulled slab.
		obs.Count(obs.AdvSlab, 1)
		if f, ok := src.(obs.Flusher); ok {
			f.FlushObs()
		}
	}
}

// chunkLen bounds one extraction batch: full slabs amortize the chain's
// per-call overhead, and capping at the slab size bounds the temporary
// buffers of variable-rate chain elements.
func chunkLen(n int) int {
	return min(n, slab.DefaultLen)
}

// Pipeline is a reusable feature-extraction engine for one Extractor: the
// window buffer, the entropy histogram and the quantile scratch space are
// allocated once and reused, so steady-state extraction of a window
// performs no allocation. A Pipeline is not safe for concurrent use;
// create one per goroutine.
type Pipeline struct {
	ext  Extractor
	hist *stats.StreamHist // entropy feature only
	buf  []float64         // window buffer / quickselect scratch
}

// NewPipeline creates a pipeline for the extractor.
func NewPipeline(e Extractor) (*Pipeline, error) {
	p := &Pipeline{ext: e}
	if e.Feature == analytic.FeatureEntropy {
		h, err := stats.NewStreamHist(e.binWidth())
		if err != nil {
			return nil, err
		}
		p.hist = h
	}
	return p, nil
}

// Extract computes the feature statistic of one in-memory window, equal
// to Extractor.Extract up to float summation order but without the
// per-window histogram and sort allocations.
func (p *Pipeline) Extract(window []float64) (float64, error) {
	if len(window) < 2 {
		return 0, errors.New("adversary: window must hold at least two PIATs")
	}
	switch p.ext.Feature {
	case analytic.FeatureMean:
		return stats.Mean(window), nil
	case analytic.FeatureVariance:
		return stats.Variance(window), nil
	case analytic.FeatureEntropy:
		p.hist.Reset()
		p.hist.AddAll(window)
		return p.hist.Entropy(), nil
	case analytic.FeatureIQR:
		p.window(len(window))
		copy(p.buf, window)
		return p.iqrInPlace(len(window))
	default:
		return 0, fmt.Errorf("adversary: unknown feature %v", p.ext.Feature)
	}
}

// ExtractFrom reads one window of n PIATs from src and reduces it in a
// single streaming pass: mean and variance through a one-pass accumulator
// and entropy through the reusable histogram, with the raw window
// buffered only when the feature (IQR) needs order statistics. PIATs are
// pulled a slab at a time when the source supports batching; the
// accumulators consume the slab in stream order, so the result is
// identical to the per-packet pull.
func (p *Pipeline) ExtractFrom(src PIATSource, n int) (float64, error) {
	if n < 2 {
		return 0, errors.New("adversary: window must hold at least two PIATs")
	}
	obs.Count(obs.AdvWindow, 1)
	switch p.ext.Feature {
	case analytic.FeatureMean, analytic.FeatureVariance:
		var m stats.Moments
		p.window(chunkLen(n))
		for done := 0; done < n; {
			k := min(len(p.buf), n-done)
			fillPIATs(src, p.buf[:k])
			m.AddAll(p.buf[:k])
			done += k
		}
		if p.ext.Feature == analytic.FeatureMean {
			return m.Mean(), nil
		}
		return m.Variance(), nil
	case analytic.FeatureEntropy:
		p.hist.Reset()
		p.window(chunkLen(n))
		for done := 0; done < n; {
			k := min(len(p.buf), n-done)
			fillPIATs(src, p.buf[:k])
			p.hist.AddAll(p.buf[:k])
			done += k
		}
		return p.hist.Entropy(), nil
	case analytic.FeatureIQR:
		p.window(n)
		for done := 0; done < n; {
			k := min(chunkLen(n), n-done)
			fillPIATs(src, p.buf[done:done+k])
			done += k
		}
		return p.iqrInPlace(n)
	default:
		return 0, fmt.Errorf("adversary: unknown feature %v", p.ext.Feature)
	}
}

// window sizes the reusable buffer to n.
func (p *Pipeline) window(n int) {
	if cap(p.buf) < n {
		p.buf = make([]float64, n)
	}
	p.buf = p.buf[:n]
}

// iqrInPlace computes Q3−Q1 of the buffered window with in-place
// quickselect; the buffer is permuted but its multiset is preserved, so
// the second selection stays correct.
func (p *Pipeline) iqrInPlace(n int) (float64, error) {
	q1, err := stats.QuantileInPlace(p.buf[:n], 0.25)
	if err != nil {
		return 0, err
	}
	q3, err := stats.QuantileInPlace(p.buf[:n], 0.75)
	if err != nil {
		return 0, err
	}
	return q3 - q1, nil
}

// MultiPipeline extracts several feature statistics from the same window
// in one streaming pass over the PIATs: the window is generated once and
// every extractor's accumulator consumes it simultaneously. This is the
// heart of the batched Monte Carlo attack pipeline — the padded-stream
// simulation dominates the attack cost, so multi-feature experiments
// must not regenerate the stream per feature.
type MultiPipeline struct {
	exts    []Extractor
	hists   []*stats.StreamHist // parallel to exts; nil unless entropy
	buf     []float64           // raw window, kept only when some feature needs order statistics
	moments bool                // some feature needs the one-pass moments
	needBuf bool
}

// NewMultiPipeline creates a pipeline for the extractor set.
func NewMultiPipeline(exts []Extractor) (*MultiPipeline, error) {
	if len(exts) == 0 {
		return nil, errors.New("adversary: empty extractor set")
	}
	m := &MultiPipeline{
		exts:  append([]Extractor(nil), exts...),
		hists: make([]*stats.StreamHist, len(exts)),
	}
	for i, e := range exts {
		switch e.Feature {
		case analytic.FeatureMean, analytic.FeatureVariance:
			m.moments = true
		case analytic.FeatureEntropy:
			h, err := stats.NewStreamHist(e.binWidth())
			if err != nil {
				return nil, err
			}
			m.hists[i] = h
		case analytic.FeatureIQR:
			m.needBuf = true
		default:
			return nil, fmt.Errorf("adversary: unknown feature %v", e.Feature)
		}
	}
	return m, nil
}

// ExtractFrom reads one window of n PIATs from src and writes each
// extractor's statistic to out[i]. Steady state performs no allocation.
// The window is pulled a slab at a time when the source supports
// batching; every accumulator consumes the slabs in stream order, so the
// statistics are identical to the per-packet pull.
func (m *MultiPipeline) ExtractFrom(src PIATSource, n int, out []float64) error {
	if n < 2 {
		return errors.New("adversary: window must hold at least two PIATs")
	}
	obs.Count(obs.AdvWindow, 1)
	if len(out) < len(m.exts) {
		return errors.New("adversary: output slice shorter than extractor set")
	}
	var mom stats.Moments
	for _, h := range m.hists {
		if h != nil {
			h.Reset()
		}
	}
	// The buffer doubles as the batch scratch: full window when order
	// statistics need it, one slab otherwise.
	bufLen := chunkLen(n)
	if m.needBuf {
		bufLen = n
	}
	if cap(m.buf) < bufLen {
		m.buf = make([]float64, bufLen)
	}
	for done := 0; done < n; {
		k := min(chunkLen(n), n-done)
		chunk := m.buf[:k]
		if m.needBuf {
			chunk = m.buf[done : done+k]
		}
		fillPIATs(src, chunk)
		if m.moments {
			mom.AddAll(chunk)
		}
		for _, h := range m.hists {
			if h != nil {
				h.AddAll(chunk)
			}
		}
		done += k
	}
	for i, e := range m.exts {
		switch e.Feature {
		case analytic.FeatureMean:
			out[i] = mom.Mean()
		case analytic.FeatureVariance:
			out[i] = mom.Variance()
		case analytic.FeatureEntropy:
			out[i] = m.hists[i].Entropy()
		case analytic.FeatureIQR:
			// Order statistics need the raw window; quickselect permutes
			// the scratch but later IQR extractors only need the multiset.
			q1, err := stats.QuantileInPlace(m.buf[:n], 0.25)
			if err != nil {
				return err
			}
			q3, err := stats.QuantileInPlace(m.buf[:n], 0.75)
			if err != nil {
				return err
			}
			out[i] = q3 - q1
		}
	}
	return nil
}

// SourceFactory builds the independent PIAT source replica for one trial
// window. Giving every window its own deterministic source is what makes
// trial-level parallelism reproducible: the feature of window w depends
// only on w's seed, never on which worker ran it or in what order.
type SourceFactory func(window int) (PIATSource, error)

// FeatureMatrix draws `windows` independent windows of size n from the
// factory and reduces each one through every extractor in a single pass,
// on up to `workers` goroutines (values < 1 mean all CPUs). The result is
// indexed [extractor][window] and is identical for any worker count.
func FeatureMatrix(factory SourceFactory, exts []Extractor, windows, n, workers int) ([][]float64, error) {
	if windows <= 0 || n < 2 {
		return nil, errors.New("adversary: need windows > 0 and n >= 2")
	}
	workers = par.Workers(workers)
	if workers > windows {
		workers = windows
	}
	pipes := make([]*MultiPipeline, workers)
	outs := make([][]float64, workers)
	for i := range pipes {
		mp, err := NewMultiPipeline(exts)
		if err != nil {
			return nil, err
		}
		pipes[i] = mp
		outs[i] = make([]float64, len(exts))
	}
	mat := make([][]float64, len(exts))
	flat := make([]float64, len(exts)*windows)
	for i := range mat {
		mat[i] = flat[i*windows : (i+1)*windows : (i+1)*windows]
	}
	err := par.MapWorker(windows, workers, func(worker, w int) error {
		src, err := factory(w)
		if err != nil {
			return err
		}
		out := outs[worker]
		if err := pipes[worker].ExtractFrom(src, n, out); err != nil {
			return err
		}
		for i := range exts {
			mat[i][w] = out[i]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mat, nil
}
