package adversary

import (
	"math"
	"testing"

	"linkpad/internal/analytic"
)

func TestRateVector(t *testing.T) {
	times := []float64{0.1, 0.5, 0.9, 1.1, 1.2, 2.5, 3.9, 4.0}
	out := make([]float64, 4)
	if _, err := RateVector(times, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1, 1} // 4.0 falls outside [0,4)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("bin %d = %v, want %v (all %v)", i, out[i], want[i], out)
		}
	}
	// Reuse zeroes the buffer; a shifted start re-bins correctly.
	if _, err := RateVector(times[:2], 0.05, 0.5, out); err != nil {
		t.Fatal(err)
	}
	want = []float64{2, 0, 0, 0} // 0.1 and 0.5 both land in [0.05, 0.55)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("shifted bin %d = %v, want %v (all %v)", i, out[i], want[i], out)
		}
	}
	if _, err := RateVector(times, 0, 1, nil); err == nil {
		t.Error("empty output should fail")
	}
	if _, err := RateVector(times, 0, 0, out); err == nil {
		t.Error("zero width should fail")
	}
	// Events before start must not index negatively.
	if _, err := RateVector([]float64{-5, 0.5}, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Errorf("pre-start event leaked into bin 0: %v", out)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if r, _ := Pearson(a, b); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfectly linear: r = %v, want 1", r)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if r, _ := Pearson(a, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti-linear: r = %v, want -1", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r, _ := Pearson(a, flat); r != 0 {
		t.Errorf("constant side: r = %v, want 0 (no fingerprint)", r)
	}
	if _, err := Pearson(a, b[:3]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty vectors should fail")
	}
}

func TestReplay(t *testing.T) {
	r := NewReplay([]float64{1, 2, 3})
	if r.Remaining() != 3 {
		t.Fatalf("remaining = %d, want 3", r.Remaining())
	}
	for _, want := range []float64{1, 2, 3, 3, 3} { // saturates at the end
		if got := r.Next(); got != want {
			t.Fatalf("Next = %v, want %v", got, want)
		}
	}
	r.Reset()
	if got := r.Next(); got != 1 {
		t.Fatalf("after Reset, Next = %v, want 1", got)
	}
	empty := NewReplay(nil)
	if got := empty.Next(); got != 0 {
		t.Fatalf("empty replay should yield 0, got %v", got)
	}
}

// The replayed stream must reduce to the same features as the in-memory
// window it records.
func TestReplayFeedsPipeline(t *testing.T) {
	window := []float64{0.010, 0.011, 0.009, 0.012, 0.0105, 0.0095}
	exts := []Extractor{{Feature: analytic.FeatureVariance}}
	mp, err := NewMultiPipeline(exts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	if err := mp.ExtractFrom(NewReplay(window), len(window), out); err != nil {
		t.Fatal(err)
	}
	direct, err := exts[0].Extract(window)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != direct {
		t.Errorf("replayed variance %v != direct %v", out[0], direct)
	}
}
