package adversary

import (
	"math"
	"testing"

	"linkpad/internal/xrand"
)

// Capture-fault robustness of the rate-vector extraction (satellite of
// the fault-injection substrate): an impaired tap hands the adversary
// duplicated and out-of-order observations, and the reduction must
// degrade predictably — reordering is invisible (binning is
// order-insensitive), duplication inflates counts without moving them.

func TestRateVectorReorderInsensitive(t *testing.T) {
	rng := xrand.New(21)
	times := make([]float64, 5000)
	now := 0.0
	for i := range times {
		now += rng.Exp(0.01)
		times[i] = now
	}
	out := make([]float64, 40)
	if _, err := RateVector(times, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), out...)
	// A mis-sequenced capture: bounded local shuffles like a reordering
	// tap produces, then a full reversal for good measure.
	shuffled := append([]float64(nil), times...)
	for i := 0; i+3 < len(shuffled); i += 2 {
		k := i + 1 + int(rng.Intn(3))
		shuffled[i], shuffled[k] = shuffled[k], shuffled[i]
	}
	if _, err := RateVector(shuffled, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("locally shuffled capture changed bin %d: %v != %v", i, out[i], want[i])
		}
	}
	for i, j := 0, len(shuffled)-1; i < j; i, j = i+1, j-1 {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	if _, err := RateVector(shuffled, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("reversed capture changed bin %d", i)
		}
	}
}

func TestRateVectorDuplicatedObservations(t *testing.T) {
	times := []float64{0.1, 0.5, 0.9, 1.1, 1.2, 2.5}
	// A double-recording tap repeats some observations in place.
	dup := []float64{0.1, 0.1, 0.5, 0.9, 0.9, 0.9, 1.1, 1.2, 2.5, 2.5}
	base := make([]float64, 3)
	got := make([]float64, 3)
	if _, err := RateVector(times, 0, 1, base); err != nil {
		t.Fatal(err)
	}
	if _, err := RateVector(dup, 0, 1, got); err != nil {
		t.Fatal(err)
	}
	want := []float64{base[0] + 3, base[1], base[2] + 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Uniform duplication scales every bin, so Pearson against any
	// reference is unchanged: a uniformly double-recording tap costs the
	// correlation attack nothing.
	double := make([]float64, 0, 2*len(times))
	for _, x := range times {
		double = append(double, x, x)
	}
	ref := []float64{3, 1, 5}
	if _, err := RateVector(double, 0, 1, got); err != nil {
		t.Fatal(err)
	}
	rBase, err := Pearson(base, ref)
	if err != nil {
		t.Fatal(err)
	}
	rDouble, err := Pearson(got, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rBase-rDouble) > 1e-12 {
		t.Errorf("uniform duplication moved the correlation: %v != %v", rDouble, rBase)
	}
}

func TestPearsonMasked(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 9}
	b := []float64{2, 4, 6, 8, 10, -7}
	all := []bool{true, true, true, true, true, true}
	if r, _ := PearsonMasked(a, b, all); r == 1 {
		t.Error("full mask should include the discordant tail")
	}
	head := []bool{true, true, true, true, true, false}
	if r, _ := PearsonMasked(a, b, head); math.Abs(r-1) > 1e-12 {
		t.Errorf("masked head is perfectly linear: r = %v", r)
	}
	// Agreement with Pearson on the selected subset.
	direct, err := Pearson(a[:5], b[:5])
	if err != nil {
		t.Fatal(err)
	}
	masked, err := PearsonMasked(a, b, head)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(masked-direct) > 1e-12 {
		t.Errorf("masked = %v, subset Pearson = %v", masked, direct)
	}
	// Degenerate selections: fewer than two indices, or a constant side.
	one := []bool{true, false, false, false, false, false}
	if r, _ := PearsonMasked(a, b, one); r != 0 {
		t.Errorf("single selected index: r = %v, want 0", r)
	}
	flat := []float64{7, 7, 7, 7, 7, 7}
	if r, _ := PearsonMasked(a, flat, head); r != 0 {
		t.Errorf("constant selected side: r = %v, want 0", r)
	}
	if _, err := PearsonMasked(a, b, all[:3]); err == nil {
		t.Error("mask length mismatch should fail")
	}
	if _, err := PearsonMasked(nil, nil, nil); err == nil {
		t.Error("empty input should fail")
	}
}

// TestPearsonMaskedRemovesChurnSignature is the scenario the mask exists
// for: two flows with independent payload fluctuations share an on/off
// presence signature. Unmasked, the shared dark windows dominate and the
// flows correlate spuriously; masking the dark windows leaves only the
// (uncorrelated) payload signal.
func TestPearsonMaskedRemovesChurnSignature(t *testing.T) {
	rng := xrand.New(33)
	const n = 400
	a := make([]float64, n)
	b := make([]float64, n)
	mask := make([]bool, n)
	for i := range a {
		up := i%20 < 10 // the shared churn cycle: both dark together
		mask[i] = up
		if up {
			a[i] = 50 + 10*rng.Float64()
			b[i] = 50 + 10*rng.Float64()
		}
	}
	raw, err := Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := PearsonMasked(a, b, mask)
	if err != nil {
		t.Fatal(err)
	}
	if raw < 0.8 {
		t.Fatalf("shared churn signature should dominate the raw correlation, got %v", raw)
	}
	if math.Abs(masked) > 0.2 {
		t.Errorf("masked correlation %v should be near 0 for independent payloads", masked)
	}
}
