package adversary

import (
	"errors"
	"sort"
)

// Identity matching shared by the population flow-correlation attack and
// the cascade end-to-end attack: given an n×n score matrix over
// (ingress identity, egress flow) pairs, resolve a one-to-one
// assignment. Scores are arbitrary real numbers (higher = more likely
// pair); the resolution is greedy — highest score first — with a
// deterministic tie-break on (identity, flow) order, so results are
// reproducible bit for bit.

// PostFloor bounds one class's log posterior from below when the
// matching attacks combine per-feature posteriors, so a single
// out-of-support feature value cannot veto a pairing outright (the same
// robustification bayes.Sequential applies to anytime decisions).
const PostFloor = 8.0

// AddClampedLogPosts accumulates the per-class log posteriors lp into
// dst, clamping each entry below at -PostFloor. dst and lp must have
// equal length.
func AddClampedLogPosts(dst, lp []float64) {
	for c := range dst {
		v := lp[c]
		if v < -PostFloor {
			v = -PostFloor
		}
		dst[c] += v
	}
}

// GreedyMatch assigns each of the n egress flows to one of the n
// ingress identities by descending score[u*n+f], returning flow → user.
// Every flow is assigned exactly one user and vice versa.
func GreedyMatch(score []float64, n int) ([]int, error) {
	if n < 1 || len(score) != n*n {
		return nil, errors.New("adversary: GreedyMatch needs an n×n score matrix")
	}
	type pair struct{ u, f int }
	pairs := make([]pair, 0, n*n)
	for u := 0; u < n; u++ {
		for f := 0; f < n; f++ {
			pairs = append(pairs, pair{u, f})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		si, sj := score[pairs[i].u*n+pairs[i].f], score[pairs[j].u*n+pairs[j].f]
		if si != sj {
			return si > sj
		}
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].f < pairs[j].f
	})
	assignedU := make([]bool, n)
	assignedF := make([]int, n) // flow -> user
	for i := range assignedF {
		assignedF[i] = -1
	}
	matched := 0
	for _, p := range pairs {
		if matched == n {
			break
		}
		if assignedU[p.u] || assignedF[p.f] >= 0 {
			continue
		}
		assignedU[p.u] = true
		assignedF[p.f] = p.u
		matched++
	}
	return assignedF, nil
}

// TrueRank returns the rank (1 = best) of the true identity in flow f's
// score column, under the same deterministic tie-break GreedyMatch uses:
// flow f's true ingress identity is identity f.
func TrueRank(score []float64, n, f int) int {
	trueScore := score[f*n+f]
	rank := 1
	for u := 0; u < n; u++ {
		if u == f {
			continue
		}
		s := score[u*n+f]
		if s > trueScore || (s == trueScore && u < f) {
			rank++
		}
	}
	return rank
}
