package adversary

import (
	"math"
	"runtime"
	"testing"

	"linkpad/internal/analytic"
	"linkpad/internal/xrand"
)

var allFeatures = []analytic.Feature{
	analytic.FeatureMean, analytic.FeatureVariance,
	analytic.FeatureEntropy, analytic.FeatureIQR,
}

// The streaming pipeline must reproduce the reference Extractor.Extract
// to 1e-12 relative for every feature.
func TestPipelineMatchesReferenceExtract(t *testing.T) {
	r := xrand.New(101)
	for _, f := range allFeatures {
		e := Extractor{Feature: f}
		p, err := NewPipeline(e)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			n := 50 + r.Intn(500)
			window := make([]float64, n)
			for i := range window {
				window[i] = r.Normal(10e-3, 5e-6)
			}
			want, err := e.Extract(window)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Extract(window)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("%v trial %d: pipeline Extract %v vs reference %v", f, trial, got, want)
			}
			src := sliceSource(window)
			got2, err := p.ExtractFrom(&src, n)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got2-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("%v trial %d: ExtractFrom %v vs reference %v", f, trial, got2, want)
			}
		}
	}
}

// sliceSource replays a fixed window.
type sliceSource []float64

func (s *sliceSource) Next() float64 {
	x := (*s)[0]
	*s = (*s)[1:]
	return x
}

// repeatSource cycles a fixed window forever without allocation.
type repeatSource struct {
	vals []float64
	i    int
}

func (s *repeatSource) Next() float64 {
	x := s.vals[s.i]
	s.i++
	if s.i == len(s.vals) {
		s.i = 0
	}
	return x
}

// Zero allocations per window in the steady state, for every feature.
func TestPipelineSteadyStateAllocationFree(t *testing.T) {
	r := xrand.New(5)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = r.Normal(10e-3, 5e-6)
	}
	src := &repeatSource{vals: vals}
	for _, f := range allFeatures {
		p, err := NewPipeline(Extractor{Feature: f})
		if err != nil {
			t.Fatal(err)
		}
		// Warm up once (histogram/scratch sizing), then measure.
		if _, err := p.ExtractFrom(src, 1000); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := p.ExtractFrom(src, 1000); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("feature %v: %v allocations per window, want 0", f, allocs)
		}
	}
}

func TestMultiPipelineMatchesSinglePipelines(t *testing.T) {
	exts := []Extractor{
		{Feature: analytic.FeatureMean},
		{Feature: analytic.FeatureVariance},
		{Feature: analytic.FeatureEntropy},
		{Feature: analytic.FeatureIQR},
	}
	mp, err := NewMultiPipeline(exts)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(77)
	window := make([]float64, 800)
	for i := range window {
		window[i] = r.Normal(10e-3, 5e-6)
	}
	src := sliceSource(window)
	out := make([]float64, len(exts))
	if err := mp.ExtractFrom(&src, len(window), out); err != nil {
		t.Fatal(err)
	}
	for i, e := range exts {
		want, err := e.Extract(window)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Errorf("feature %v: multi %v vs reference %v", e.Feature, out[i], want)
		}
	}
	// Steady state: zero allocations per multi-feature window.
	rep := &repeatSource{vals: window}
	if err := mp.ExtractFrom(rep, len(window), out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := mp.ExtractFrom(rep, len(window), out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("multi-pipeline window costs %v allocations, want 0", allocs)
	}
}

func TestMultiPipelineValidation(t *testing.T) {
	if _, err := NewMultiPipeline(nil); err == nil {
		t.Error("empty extractor set should fail")
	}
	if _, err := NewMultiPipeline([]Extractor{{Feature: analytic.Feature(99)}}); err == nil {
		t.Error("unknown feature should fail")
	}
	mp, err := NewMultiPipeline([]Extractor{{Feature: analytic.FeatureMean}})
	if err != nil {
		t.Fatal(err)
	}
	src := &repeatSource{vals: []float64{1, 2, 3}}
	if err := mp.ExtractFrom(src, 1, make([]float64, 1)); err == nil {
		t.Error("n=1 should fail")
	}
	if err := mp.ExtractFrom(src, 10, nil); err == nil {
		t.Error("short output slice should fail")
	}
}

// FeatureMatrix must be deterministic in the worker count: window w's
// feature depends only on w's own source.
func TestFeatureMatrixWorkerInvariance(t *testing.T) {
	exts := []Extractor{
		{Feature: analytic.FeatureVariance},
		{Feature: analytic.FeatureEntropy},
	}
	factory := func(w int) (PIATSource, error) {
		return gaussSource(uint64(1000+w), 10e-3, 5e-6), nil
	}
	const windows, n = 40, 300
	ref, err := FeatureMatrix(factory, exts, windows, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		got, err := FeatureMatrix(factory, exts, windows, n, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			for w := range ref[i] {
				if got[i][w] != ref[i][w] {
					t.Fatalf("workers=%d: feature %d window %d differs: %v vs %v",
						workers, i, w, got[i][w], ref[i][w])
				}
			}
		}
	}
	if _, err := FeatureMatrix(factory, exts, 0, n, 1); err == nil {
		t.Error("zero windows should fail")
	}
}
