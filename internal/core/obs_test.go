package core

import (
	"testing"

	"linkpad/internal/obs"
)

// enableObs turns collection on for one test and restores the global
// collector afterwards.
func enableObs(t *testing.T) {
	t.Helper()
	obs.Reset()
	obs.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.Reset()
	})
}

// Cross-check against a known conservation law: on a lossy tap chain
// with no other impairments, every packet the gateway fires is either
// delivered to the adversary or counted as a NetemDrop. The Differ's
// first Next consumes two underlying packets (it needs a previous
// timestamp), so n inter-arrivals observe n+1 deliveries.
func TestObsTapLossConservation(t *testing.T) {
	enableObs(t)
	s := labSystem(t, func(c *Config) {
		c.Hops = nil // routers delay but never drop; drop them for an exact count anyway
		c.TapLossProb = 0.05
	})
	d, err := s.tap(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		d.Next()
	}
	d.FlushObs()
	snap := obs.Snapshot()
	drops := snap[obs.NetemDrop]
	fires := snap[obs.GatewayPayload] + snap[obs.GatewayDummy]
	if drops == 0 {
		t.Fatal("5% tap loss over 20k packets produced no NetemDrop counts")
	}
	if want := uint64(n) + 1 + drops; fires != want {
		t.Errorf("gateway fired %d packets; want delivered+dropped = %d (drops=%d)", fires, want, drops)
	}
}

// Cross-check against the cascade's own matched-overhead accounting
// (the HopStats behind HopDummyFrac): the route shard's counters must
// agree exactly with what the per-hop probes report — total emissions
// split across timer gateways and the mix, and the dummy share of the
// gateway emissions.
func TestObsCascadeHopAccounting(t *testing.T) {
	enableObs(t)
	sys := labSystem(t, nil)
	spec := CascadeSpec{
		Hops: []CascadeHop{
			{}, // CIT at the system default tau
			{Policy: CascadeMix},
			{Policy: CascadeVIT, SigmaT: 30e-6},
		},
		Flows: 2,
	}
	route, err := sys.buildRoute(spec, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		route.Exit.Next()
	}
	route.Probe.Flush()
	snap := obs.Snapshot()
	var gwEmitted, gwDummies, mixEmitted uint64
	for _, probe := range route.Hops {
		st := probe()
		if st.Policy == "MIX" {
			mixEmitted += st.Emitted
		} else {
			gwEmitted += st.Emitted
			gwDummies += st.Dummies
		}
	}
	if gwEmitted == 0 || gwDummies == 0 || mixEmitted == 0 {
		t.Fatalf("degenerate route: gw=%d dummies=%d mix=%d", gwEmitted, gwDummies, mixEmitted)
	}
	if got := snap[obs.GatewayPayload] + snap[obs.GatewayDummy]; got != gwEmitted {
		t.Errorf("counter gateway emissions = %d, hop probes say %d", got, gwEmitted)
	}
	if got := snap[obs.GatewayDummy]; got != gwDummies {
		t.Errorf("counter gateway dummies = %d, hop probes say %d", got, gwDummies)
	}
	if got := snap[obs.MixPacket]; got != mixEmitted {
		t.Errorf("counter mix packets = %d, hop probe says %d", got, mixEmitted)
	}
}
