package core

import (
	"testing"

	"linkpad/internal/netem"
	"linkpad/internal/traffic"
)

// TestBatchedChainMatchesPull is the cross-layer determinism property
// test of the batched event core: for every payload model × timer policy
// × network path × impairment combination, the full observation chain
// (gateway → hops → impairments → tap → differencing) must produce the
// bit-identical PIAT stream whether it is pulled one packet at a time or
// a slab at a time through NextBatch. This is the contract that lets the
// protocol builders switch layers to batching incrementally without
// changing any published number.
func TestBatchedChainMatchesPull(t *testing.T) {
	base := func() Config {
		cfg := DefaultLabConfig()
		cfg.Seed = 99
		return cfg
	}
	diurnalHop := HopSpec{
		CapacityBps: 100e6,
		PacketBytes: 1500,
		Util:        traffic.Diurnal{Trough: 0.2, Peak: 0.7, TroughHour: 3},
		PropDelay:   2e-3,
	}
	constHop := HopSpec{
		CapacityBps: 100e6,
		PacketBytes: 1500,
		Util:        traffic.Constant(0.4),
		PropDelay:   1e-3,
	}
	cases := map[string]func(cfg *Config){
		"cit-direct": func(cfg *Config) {},
		"cit-cbr":    func(cfg *Config) { cfg.Payload = PayloadCBR },
		"cit-onoff":  func(cfg *Config) { cfg.Payload = PayloadOnOff },
		"vit-direct": func(cfg *Config) { cfg.SigmaT = 3e-3 },
		"adaptive-direct": func(cfg *Config) {
			cfg.Adaptive = &AdaptiveSpec{IdleFactor: 2, IdleAfter: 3}
		},
		"mix-direct": func(cfg *Config) { cfg.Mix = &MixSpec{K: 8} },
		"cit-hops-diurnal": func(cfg *Config) {
			cfg.Hops = []HopSpec{diurnalHop, constHop}
			cfg.StartHour = 9
		},
		"cit-hops-exact": func(cfg *Config) {
			cfg.Hops = []HopSpec{constHop}
			cfg.ExactNetwork = true
		},
		"vit-hops-impaired": func(cfg *Config) {
			cfg.SigmaT = 3e-3
			cfg.Hops = []HopSpec{diurnalHop}
			cfg.PathImpair = &netem.Impairment{
				LossProb: 0.05, DupProb: 0.08,
				ReorderProb: 0.05, ReorderDepth: 3,
				GE: &netem.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.5},
			}
		},
		"cit-tap-imperfect": func(cfg *Config) {
			cfg.TapLossProb = 0.06
			cfg.TapResolution = 1e-5
			cfg.TapImpair = &netem.Impairment{DupProb: 0.1}
		},
		"mix-hops-tap": func(cfg *Config) {
			cfg.Mix = &MixSpec{K: 4}
			cfg.Hops = []HopSpec{diurnalHop}
			cfg.TapLossProb = 0.03
		},
	}
	const total = 3000
	chunks := []int{1, 7, 250, 1024}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := base()
			mutate(&cfg)
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for class := range cfg.Rates {
				pull, err := sys.PIATSource(class, 7)
				if err != nil {
					t.Fatal(err)
				}
				batchSrc, err := sys.PIATSource(class, 7)
				if err != nil {
					t.Fatal(err)
				}
				batch, ok := batchSrc.(interface{ NextBatch(dst []float64) })
				if !ok {
					t.Fatalf("PIAT source %T does not batch", batchSrc)
				}
				want := make([]float64, total)
				for i := range want {
					want[i] = pull.Next()
				}
				got := make([]float64, 0, total)
				for ci := 0; len(got) < total; ci++ {
					k := min(chunks[ci%len(chunks)], total-len(got))
					buf := make([]float64, k)
					batch.NextBatch(buf)
					got = append(got, buf...)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("class %d PIAT %d: batch %v != pull %v", class, i, got[i], want[i])
					}
				}
			}
		})
	}
}
