package core

// Stream-ID domains.
//
// Every stream a System hands out is derived from (seed, class, streamID)
// via streamSeed, so the streamID space is the only thing keeping the
// observation protocols apart: two equal IDs observe the *identical*
// realization. This file is the single registry of how that 64-bit space
// is carved up. Each protocol owns one domain, selected by the top bits,
// and spreads its internal structure across the bits below; the
// cross-domain collision test (domains_test.go) enforces that the domains
// stay disjoint.
//
//	bit 63         bit 62           bit 61       bits 32..60           bits 0..31
//	session flag   population flag  active flag  window/session index  phase base / user+role
//
// The two top flag bits select four disjoint passive domains, and the
// active flag (bit 61) carves a fifth domain out of the replica range
// for the active-adversary protocol:
//
//	bits 63,62,61   domain
//	0 0 0           replica (i.i.d. windows)
//	1 0 0           session (continuous streams)
//	0 1 0           population (multi-user mix)
//	1 1 0           cascade (multi-hop routes)
//	0 0 1           active (watermarked flows)
//
// Replica domain (bits 63..61 clear): the i.i.d.-window protocol.
// Phase base IDs are small integers in the low 32 bits (training 1,
// evaluation 2, diagnostics base+1000, padCost 99, ...); trial window w
// of base b reads stream windowStreamID(b, w) = b + (w+1)·2³², so window
// indices occupy bits 32 and up. The spreading reaches bit 61 — the
// active flag — at w+1 = 2²⁹, so window (and session) indices must stay
// below 2²⁹−1; real sweeps use at most tens of thousands.
//
// Session domain (bit 63 set): the continuous-stream protocol
// (core.Session). Session s of phase base b reads b + (s+1)·2³² with
// bit 63 ORed in, mirroring the replica spreading one domain over.
//
// Population domain (bit 62 set, bit 63 clear): the multi-user engine
// (core population entry points). User u's streams read
// populationStreamID(u, role): the user index occupies bits 8..39 and the
// low byte selects the role — the per-user payload process, cover
// process, recipient draws, and padded-link chain are disjoint streams of
// the same user. Population index spreading therefore never reaches
// bit 62 (user indices are bounded far below 2³²), and the flag keeps the
// domain disjoint from both protocols above.
//
// Cascade domain (bits 63 and 62 both set): the multi-hop route engine
// (core cascade entry points). Flow f's streams read
// cascadeStreamID(f, hop, role): the flow index occupies bits 16..47, the
// hop index bits 8..15, and the low byte selects the role — the flow's
// payload process, each hop's padding stage (timer phase, policy, jitter,
// link), and the exit observation chain are disjoint streams of the same
// flow. Flow indices (phantom training flows included, base 2²⁴) stay far
// below 2³², so the spreading never reaches bit 62, and the two-bit flag
// keeps the domain disjoint from all three protocols above.
//
// Active domain (bit 61 set, bits 63..62 clear): the active-adversary
// watermark engine (core active entry points). Flow f's streams read
// activeStreamID(proto, f, hop, role): the scenario protocol occupies
// bits 52..53 (the same flow index under two protocols is a different
// realization), the flow index bits 16..47, the hop index bits 8..15,
// and the low byte selects the role — the flow's payload process,
// watermark key material, chaff stream, cover stream, padding chain and
// exit observation chain are disjoint streams of the same flow, and the
// adversary's decoy keys read their own role under flow = decoy index.
// Flow spreading stays inside bits 16..47, far below both the protocol
// field and the flag bits, so the domain is disjoint from all four
// protocols above.
const (
	// sessionDomain tags the stream IDs of continuous sessions (bit 63).
	sessionDomain = uint64(1) << 63
	// populationDomain tags the stream IDs of population users (bit 62).
	populationDomain = uint64(1) << 62
	// cascadeDomain tags the stream IDs of cascade flows (bits 63+62).
	cascadeDomain = sessionDomain | populationDomain
	// activeDomain tags the stream IDs of active watermarked flows
	// (bit 61).
	activeDomain = uint64(1) << 61
)

// Population role sub-streams within one user's ID block (low byte of the
// stream ID). Every stochastic element a user owns reads its own role
// stream, so the engine can build them independently and in any order.
const (
	// popRolePayload drives the user's real message arrivals.
	popRolePayload = iota
	// popRoleCover drives the user's cover (dummy) arrivals.
	popRoleCover
	// popRoleProfile draws the user's recipient profile and per-message
	// recipient choices.
	popRoleProfile
	// popRoleLink drives the user's padded-link chain (gateway jitter,
	// timer policy, network path) for per-flow observations.
	popRoleLink
	// popRoleChurn drives the user's presence (join/leave) schedule under
	// population churn. The schedule is a pure function of this stream,
	// which is what lets checkpoint/resume rebuild it without serializing
	// any schedule state.
	popRoleChurn
	// popRoleTap drives the adversary's ingress-tap impairment for the
	// user's flow (per-flow observations only; the round-based engine has
	// no packet-level ingress tap).
	popRoleTap
	// popRoleMix seeds the pool mix's retention stream for disclosure
	// runs over this population. The mix is population-global, not
	// per-user, so the role is read at user index 0 (class 0) — a slot no
	// other element occupies, since user 0's own roles stop at popRoleTap.
	popRoleMix
)

// windowStreamID derives the stream replica ID for trial window w of the
// given phase base ID. Spreading windows across the high bits keeps them
// disjoint from the phase bases (small integers) and the diagnostics
// streams (base+1000), so every trial sees an independent realization of
// the system — which is what makes trial-level parallelism reproducible:
// window w's feature depends only on (seed, class, w), never on worker
// scheduling.
func windowStreamID(base uint64, w int) uint64 {
	return base + (uint64(w)+1)<<32
}

// populationStreamID derives the stream ID of one role stream of
// population user u. The population flag keeps the whole block disjoint
// from the replica and session protocols; the user index and role keep
// users and their internal elements disjoint from each other.
func populationStreamID(user int, role uint64) uint64 {
	return populationDomain | uint64(user)<<8 | role
}

// Cascade role sub-streams within one (flow, hop) ID block (low byte of
// the stream ID). Hop-independent roles (the flow's payload arrivals)
// read hop 0; the exit observation chain reads one hop past the last.
const (
	// cascadeRolePayload drives the flow's payload arrivals (hop 0 only).
	cascadeRolePayload = iota
	// cascadeRoleHop drives one hop's padding stage: timer phase, policy
	// randomness, gateway jitter, and the hop's outgoing link.
	cascadeRoleHop
	// cascadeRoleExit drives the exit observation chain (the system-level
	// network path and tap imperfections past the last hop).
	cascadeRoleExit
	// cascadeRoleEntryTap drives the adversary's entry-recorder impairment
	// (hop 0 only).
	cascadeRoleEntryTap
	// cascadeRoleOutage drives one hop's failure/recovery schedule. A
	// separate role — rather than a split off cascadeRoleHop — keeps the
	// hop's padding realization identical with and without an outage
	// schedule attached, so outage sweeps perturb only the outage.
	cascadeRoleOutage
)

// cascadeStreamID derives the stream ID of one role stream of cascade
// flow f at the given hop. The two-bit cascade flag keeps the block
// disjoint from every other protocol; the flow, hop and role fields keep
// flows, hops and their internal elements disjoint from each other.
func cascadeStreamID(flow, hop int, role uint64) uint64 {
	return cascadeDomain | uint64(flow)<<16 | uint64(hop)<<8 | role
}

// Active role sub-streams within one (flow, hop) ID block (low byte of
// the stream ID). Hop-independent roles read hop 0; the exit observation
// chain reads one hop past the last padded element.
const (
	// activeRolePayload drives the flow's payload arrivals (hop 0 only).
	activeRolePayload = iota
	// activeRoleKey derives the flow's watermark key material — the
	// (seed, class, flowID, role) derivation that keeps keys independent
	// of worker scheduling.
	activeRoleKey
	// activeRoleChaff drives the attacker's chaff arrival process.
	activeRoleChaff
	// activeRoleCover drives the defense's cover (dummy payload) process.
	activeRoleCover
	// activeRoleHop drives one cascade hop's padding stage.
	activeRoleHop
	// activeRoleLink drives the single padded link (gateway or mix plus
	// the observation chain) of the non-cascade protocols.
	activeRoleLink
	// activeRoleExit drives the exit observation chain of cascade flows.
	activeRoleExit
	// activeRoleDecoy derives the adversary's decoy keys (flow = decoy
	// index, class 0).
	activeRoleDecoy
	// activeRoleOutage drives one hop's failure/recovery schedule on
	// active cascade routes, mirroring cascadeRoleOutage.
	activeRoleOutage
)

// activeStreamID derives the stream ID of one role stream of active
// flow f at the given hop under scenario protocol proto. The active
// flag keeps the block disjoint from every passive protocol; the
// protocol, flow, hop and role fields keep scenarios, flows, hops and
// their internal elements disjoint from each other.
func activeStreamID(proto ActiveProtocol, flow, hop int, role uint64) uint64 {
	return activeDomain | uint64(proto)<<52 | uint64(flow)<<16 | uint64(hop)<<8 | role
}
