package core

import (
	"errors"
	"fmt"

	"linkpad/internal/active"
	"linkpad/internal/adversary"
	"linkpad/internal/analytic"
	"linkpad/internal/cascade"
	"linkpad/internal/netem"
	"linkpad/internal/obs"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// Active-adversary entry points: a System description plus an ActiveSpec
// instantiate the watermark engine (internal/active) against any of the
// four observation protocols — the adversary injects a keyed
// perturbation into each flow's payload *before* the countermeasure and
// tries to recognize the key again at the exit tap. Every flow's key,
// chaff stream and chain element derive from (seed, class, flowID, role)
// streams in the active stream domain (domains.go), so watermarked flows
// never share randomness with the passive protocols or with each other,
// and results are byte-identical at any worker count.

// ActiveProtocol selects which observation protocol the watermarked
// flows cross — the scenario axis of the active study. The same flow
// index under two protocols is a different realization (the protocol is
// part of the stream ID), so scenarios never share randomness.
type ActiveProtocol int

// Supported active scenarios.
const (
	// ActiveReplica crosses the system's single padded link from a cold
	// start, the replica-protocol analogue (default).
	ActiveReplica ActiveProtocol = iota
	// ActiveSession crosses the same link but observes it in steady
	// state: a warm-up span of the continuous stream is discarded before
	// the matched filter starts, the session-protocol analogue.
	ActiveSession
	// ActivePopulation merges defensive cover traffic into each flow
	// before the padding, the population-protocol analogue (the cover is
	// minted gateway-side, past the attacker's vantage point, so it is
	// never watermarked).
	ActivePopulation
	// ActiveCascade routes each flow through a chain of re-padding hops
	// (CascadeHop), the cascade-protocol analogue.
	ActiveCascade
)

// String names the protocol.
func (p ActiveProtocol) String() string {
	switch p {
	case ActiveReplica:
		return "replica"
	case ActiveSession:
		return "session"
	case ActivePopulation:
		return "population"
	case ActiveCascade:
		return "cascade"
	default:
		return "unknown"
	}
}

// ActiveSpec describes an active-adversary scenario layered on the
// system: who is watermarked (Flows, ClassMix), how (Mode, Amplitude,
// chip geometry), and what the flows cross (Protocol plus its knobs).
type ActiveSpec struct {
	// Protocol selects the observation protocol the flows cross.
	Protocol ActiveProtocol
	// Flows is the number of concurrent watermarked flows (at least 2).
	Flows int
	// Mode selects the injection mechanism: delay-jitter watermarks
	// (active.ModeDelay) or chaff probes (active.ModeChaff).
	Mode active.Mode
	// Amplitude is the watermark strength: the constant delay in seconds
	// for ModeDelay, the in-slot chaff rate in packets/second for
	// ModeChaff. Required positive.
	Amplitude float64
	// Chips is the key length in chips (0 = 32).
	Chips int
	// Period is the chip slot duration in seconds (0 = 0.5).
	Period float64
	// Decoys is the number of decoy keys calibrating the detector's
	// per-flow noise floor (0 = 16; at least 8).
	Decoys int
	// Raw bypasses the padding — the unpadded anchor. The flow still
	// crosses the network path and the tap, so comparisons isolate the
	// countermeasure alone. Not valid for ActiveCascade (an unpadded
	// route is the Raw replica scenario).
	Raw bool
	// CoverRate adds defensive cover at CoverRate × the flow's payload
	// rate (ActivePopulation only; mutually exclusive with CoverToPPS).
	CoverRate float64
	// CoverToPPS instead pads the flow's send rate up to an absolute
	// target, the matched-overhead form (ActivePopulation only).
	CoverToPPS float64
	// WarmupTime is the stream span in seconds discarded before the
	// matched filter starts (ActiveSession only; 0 = 2 s).
	WarmupTime float64
	// Hops is the route crossed by every flow (ActiveCascade only; at
	// least one hop).
	Hops []CascadeHop
	// ClassMix weighs the system's rate classes across the flows
	// (len(Rates) entries, positive); nil means equal shares. Flows are
	// striped deterministically, like population users.
	ClassMix []float64
}

// withDefaults fills zero fields.
func (a ActiveSpec) withDefaults() ActiveSpec {
	if a.Chips == 0 {
		a.Chips = 32
	}
	if a.Period == 0 {
		a.Period = 0.5
	}
	if a.Decoys == 0 {
		a.Decoys = 16
	}
	if a.Protocol == ActiveSession && a.WarmupTime == 0 {
		a.WarmupTime = 2
	}
	return a
}

// validateActive checks the spec against the system. Call on a
// defaults-resolved spec.
func (s *System) validateActive(spec ActiveSpec) error {
	if spec.Flows < 2 {
		return errors.New("core: active scenario needs at least two flows")
	}
	if spec.Mode != active.ModeDelay && spec.Mode != active.ModeChaff {
		return errors.New("core: unknown watermark mode")
	}
	if !(spec.Amplitude > 0) {
		return errors.New("core: watermark amplitude must be positive")
	}
	if spec.Chips < 2 || !(spec.Period > 0) {
		return errors.New("core: invalid watermark chip geometry")
	}
	if spec.Decoys < 8 {
		return errors.New("core: need at least eight decoy keys")
	}
	if spec.CoverRate < 0 || spec.CoverToPPS < 0 {
		return errors.New("core: active cover rates must be non-negative")
	}
	if spec.CoverRate > 0 && spec.CoverToPPS > 0 {
		return errors.New("core: CoverRate and CoverToPPS are mutually exclusive")
	}
	if spec.WarmupTime < 0 {
		return errors.New("core: warm-up time must be non-negative")
	}
	switch spec.Protocol {
	case ActiveReplica, ActiveSession, ActivePopulation:
		if len(spec.Hops) > 0 {
			return fmt.Errorf("core: Hops requires the cascade protocol, not %v", spec.Protocol)
		}
		if spec.Protocol != ActivePopulation && (spec.CoverRate > 0 || spec.CoverToPPS > 0) {
			return fmt.Errorf("core: cover traffic requires the population protocol, not %v", spec.Protocol)
		}
		if spec.Protocol != ActiveSession && spec.WarmupTime > 0 {
			return fmt.Errorf("core: WarmupTime requires the session protocol, not %v", spec.Protocol)
		}
	case ActiveCascade:
		if spec.Raw {
			return errors.New("core: Raw is not valid for the cascade protocol (use a Raw replica scenario)")
		}
		if len(spec.Hops) == 0 {
			return errors.New("core: cascade protocol needs at least one hop")
		}
		if spec.CoverRate > 0 || spec.CoverToPPS > 0 || spec.WarmupTime > 0 {
			return errors.New("core: cover and warm-up knobs are not valid for the cascade protocol")
		}
		if err := s.validateHops(spec.Hops); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown active protocol %d", spec.Protocol)
	}
	return s.validateClassMix(spec.ClassMix)
}

// coverPPS returns the defensive cover rate for a payload rate.
func (a ActiveSpec) coverPPS(payload float64) float64 {
	if a.CoverToPPS > 0 {
		if c := a.CoverToPPS - payload; c > 0 {
			return c
		}
		return 0
	}
	return a.CoverRate * payload
}

// paddedHops returns the number of padded elements a flow crosses — the
// length of the overhead probe vector.
func (a ActiveSpec) paddedHops() int {
	if a.Protocol == ActiveCascade {
		return len(a.Hops)
	}
	if a.Raw {
		return 0
	}
	return 1
}

// activeRand opens the role stream of (class, flow, hop) under the
// spec's protocol.
func (s *System) activeRand(proto ActiveProtocol, class, flow, hop int, role uint64) *xrand.Rand {
	return xrand.New(s.streamSeed(class, activeStreamID(proto, flow, hop, role)))
}

// activeFlow assembles one flow of the scenario: the class payload
// source, the watermark injection (skipped for phantom training flows),
// the protocol's defense chain, and the exit observation chain. All
// randomness derives from (seed, class, flow, role) streams, so a flow
// is a pure function of its identity. Call on a defaults-resolved spec.
func (s *System) activeFlow(spec ActiveSpec, class, flow int, watermarked bool) (*active.Flow, error) {
	payload, err := s.payloadSource(class, s.activeRand(spec.Protocol, class, flow, 0, activeRolePayload))
	if err != nil {
		return nil, err
	}
	fl := &active.Flow{Class: class, Probe: obs.NewShard()}
	var src traffic.Source = payload
	if watermarked {
		key, err := active.NewKey(spec.Chips, spec.Period,
			s.activeRand(spec.Protocol, class, flow, 0, activeRoleKey))
		if err != nil {
			return nil, err
		}
		fl.Key = key
		switch spec.Mode {
		case active.ModeDelay:
			ds, err := active.NewDelaySource(src, key, spec.Amplitude)
			if err != nil {
				return nil, err
			}
			src = ds
			fl.Inject = ds.Stats
		default: // active.ModeChaff, enforced by validateActive
			chaff, err := active.NewChaffSource(key, spec.Amplitude,
				s.activeRand(spec.Protocol, class, flow, 0, activeRoleChaff))
			if err != nil {
				return nil, err
			}
			src, err = traffic.NewSuperpose(src, chaff)
			if err != nil {
				return nil, err
			}
			fl.Inject = chaff.Stats
		}
	}
	switch spec.Protocol {
	case ActiveCascade:
		stream, probes, err := s.hopChain(spec.Hops, src, func(h int) *xrand.Rand {
			return s.activeRand(spec.Protocol, class, flow, h, activeRoleHop)
		}, func(h int) *xrand.Rand {
			return s.activeRand(spec.Protocol, class, flow, h, activeRoleOutage)
		}, nil, fl.Probe)
		if err != nil {
			return nil, err
		}
		exit, err := s.observationChain(stream,
			s.activeRand(spec.Protocol, class, flow, len(spec.Hops), activeRoleExit), fl.Probe)
		if err != nil {
			return nil, err
		}
		fl.Exit = exit
		fl.Hops = probes
	default:
		if c := spec.coverPPS(s.cfg.Rates[class].PPS); c > 0 {
			// The defense mints cover past the attacker's vantage point,
			// so cover packets never carry the watermark.
			cover, err := traffic.NewPoisson(c,
				s.activeRand(spec.Protocol, class, flow, 0, activeRoleCover))
			if err != nil {
				return nil, err
			}
			src, err = traffic.NewSuperpose(src, cover)
			if err != nil {
				return nil, err
			}
		}
		stream, probe, err := s.padStream(src, spec.Raw,
			s.activeRand(spec.Protocol, class, flow, 0, activeRoleLink), nil, fl.Probe)
		if err != nil {
			return nil, err
		}
		fl.Exit = stream
		if probe != nil {
			fl.Hops = []cascade.HopProbe{probe}
		}
		fl.Start = spec.WarmupTime
	}
	return fl, nil
}

// NewActive instantiates the watermark engine: Flows watermarked flows
// crossing the spec's protocol, with rate classes striped across the
// flows by ClassMix, plus the adversary's decoy keys. Every flow derives
// from (seed, class, flowID) role streams in the active domain.
func (s *System) NewActive(spec ActiveSpec) (*active.Engine, error) {
	spec = spec.withDefaults()
	if err := s.validateActive(spec); err != nil {
		return nil, err
	}
	decoys := make([]*active.Key, spec.Decoys)
	for d := range decoys {
		// Decoy keys are the adversary's own dice: class 0, flow = decoy
		// index, in a role real flows never read.
		key, err := active.NewKey(spec.Chips, spec.Period,
			s.activeRand(spec.Protocol, 0, d, 0, activeRoleDecoy))
		if err != nil {
			return nil, err
		}
		decoys[d] = key
	}
	cum := s.classCum(spec.ClassMix)
	build := func(flow int) (*active.Flow, error) {
		return s.activeFlow(spec, classOf(flow, spec.Flows, cum), flow, true)
	}
	return active.NewEngine(spec.Flows, spec.paddedHops(), spec.Mode,
		spec.Chips, spec.Period, decoys, build)
}

// ActiveDetectConfig parameterizes the watermark detection attack run
// through a System: the attack-side knobs mirror active.Config, plus the
// off-line training effort for the exit-side PIAT class classifiers.
type ActiveDetectConfig struct {
	// Duration is the observation time in stream seconds past each
	// flow's warm-up (0 = 40); the matched filter uses
	// floor(Duration/Period) whole slots.
	Duration float64
	// Threshold is the detection z-score (0 = 3).
	Threshold float64
	// Features are the PIAT statistics the exit class classifiers use;
	// empty runs a pure watermark attack. Ignored for Raw scenarios (an
	// unpadded flow needs no class fingerprint).
	Features []analytic.Feature
	// FeatureWindow is the PIAT count per feature value (0 = 200).
	FeatureWindow int
	// TrainWindows is the number of off-line training windows per class
	// for the classifiers (0 = 120).
	TrainWindows int
	// Workers bounds the per-flow simulation parallelism; results are
	// identical at any width. Zero means all CPUs.
	Workers int
}

// withDefaults fills zero fields.
func (c ActiveDetectConfig) withDefaults() ActiveDetectConfig {
	if c.Duration == 0 {
		c.Duration = 40
	}
	if c.FeatureWindow == 0 {
		c.FeatureWindow = 200
	}
	if c.TrainWindows == 0 {
		c.TrainWindows = 120
	}
	return c
}

// activeDetection runs the active watermark attack end to end: the
// adversary first trains per-class PIAT classifiers on phantom flows
// (fresh unwatermarked realizations of the same chain, so training
// observes cover traffic, batching and re-padding exactly as run time
// does), then injects its watermark into every flow and runs the
// matched-filter detection at the exit tap. Results are identical at
// any cfg.Workers width; flows are the unit of parallelism.
func (s *System) activeDetection(spec ActiveSpec, cfg ActiveDetectConfig) (*active.Result, error) {
	spec = spec.withDefaults()
	if err := s.validateActive(spec); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if spec.Raw {
		cfg.Features = nil
	}
	if cfg.TrainWindows < 2 {
		return nil, errors.New("core: active detection needs at least two training windows per class")
	}

	// Off-line phase: per-class exit feature densities from phantom
	// flows, which reuse the population protocol's phantom index block —
	// a disjoint flow range of the active domain real flows never reach.
	classifiers, exts, err := s.trainExitClassifiers(cfg.Features,
		cfg.TrainWindows, cfg.FeatureWindow, cfg.Workers,
		func(class, w int) (adversary.PIATSource, error) {
			fl, err := s.activeFlow(spec, class,
				phantomFlowIndex(class, cfg.TrainWindows, w), false)
			if err != nil {
				return nil, err
			}
			d := netem.NewDiffer(fl.Exit)
			d.SetProbe(fl.Probe)
			// Training windows start where run-time observation does:
			// past the session scenario's warm-up span.
			for fl.Start > 0 && d.Now() <= fl.Start {
				d.Next()
			}
			return d, nil
		})
	if err != nil {
		return nil, err
	}

	eng, err := s.NewActive(spec)
	if err != nil {
		return nil, err
	}
	return active.Detect(eng, active.Config{
		Duration:      cfg.Duration,
		Threshold:     cfg.Threshold,
		FeatureWindow: cfg.FeatureWindow,
		Classifiers:   classifiers,
		Extractors:    exts,
		Workers:       cfg.Workers,
	})
}
