package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"linkpad/internal/analytic"
	"linkpad/internal/population"
)

// scenario_test.go: the unified Build/Run API. Build must reject bad
// specs eagerly; Run must honor the shared RunOptions — worker width
// (result-invariant), master seed (equal to a system built with that
// seed), observation scale (equal to a manually scaled config), and
// resume (byte-identical completion) — across the protocols.

func scenarioSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBuildValidatesSpecs(t *testing.T) {
	sys := scenarioSystem(t)
	cases := []struct {
		name string
		spec Spec
	}{
		{"nil", nil},
		{"attackset-no-features", AttackSetSpec{}},
		{"attackset-aliased-streams", AttackSetSpec{
			Attack:   AttackConfig{TrainStreamID: 5, EvalStreamID: 5},
			Features: []analytic.Feature{analytic.FeatureMean},
		}},
		{"disclosure-bad-population", DisclosureSpec{
			Population: PopulationSpec{Users: 1, Recipients: 40},
		}},
		{"flowcorr-bad-population", FlowCorrelationSpec{
			Population: PopulationSpec{Users: 8, Recipients: 2},
		}},
		{"active-bad-spec", ActiveDetectionSpec{
			Active: ActiveSpec{Flows: -1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := sys.Build(tc.spec); err == nil {
				t.Fatalf("Build accepted invalid spec %+v", tc.spec)
			}
		})
	}
}

// TestScenarioWorkerOption: RunOptions.Workers overrides the spec's
// width and never changes the result.
func TestScenarioWorkerOption(t *testing.T) {
	sys := scenarioSystem(t)
	sc, err := sys.Build(DisclosureSpec{
		Population: PopulationSpec{Users: 24, Recipients: 40, CoverRate: 0.5},
		Disclosure: population.DisclosureConfig{MaxRounds: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *population.DisclosureResult {
		res, err := sc.Run(context.Background(), RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Disclosure == nil {
			t.Fatal("disclosure scenario returned no Disclosure result")
		}
		return res.Disclosure
	}
	ref := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: result differs from workers=1", w)
		}
	}
}

// TestScenarioSeedOption: Run with a Seed override equals running the
// same spec on a system built with that seed.
func TestScenarioSeedOption(t *testing.T) {
	cfg := DefaultLabConfig()
	spec := DisclosureSpec{
		Population: PopulationSpec{Users: 16, Recipients: 40, CoverRate: 1},
		Disclosure: population.DisclosureConfig{MaxRounds: 300, Workers: 1},
	}
	sysA, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scA, err := sysA.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scA.Run(context.Background(), RunOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	sysB, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scB, err := sysB.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scB.Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Seed override differs from a system built with that seed")
	}
	// And the override must actually change the outcome vs the base seed.
	base, err := scA.Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(base, want) {
		t.Fatal("seed override produced the base-seed result")
	}
}

// TestScenarioScaleOption: Scale multiplies the observation budget
// exactly as scaling the config by hand would.
func TestScenarioScaleOption(t *testing.T) {
	sys := scenarioSystem(t)
	attack := AttackConfig{WindowSize: 60, TrainWindows: 40, EvalWindows: 40, Workers: 1,
		Feature: analytic.FeatureEntropy}
	sc, err := sys.Build(AttackSetSpec{Attack: attack,
		Features: []analytic.Feature{analytic.FeatureEntropy}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Run(context.Background(), RunOptions{Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	manual := attack
	manual.TrainWindows, manual.EvalWindows = 20, 20
	want, err := sys.RunAttackSet(manual, []analytic.Feature{analytic.FeatureEntropy})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.AttackSet, want) {
		t.Fatal("Scale=0.5 differs from a manually halved window budget")
	}
	if _, err := sc.Run(context.Background(), RunOptions{Scale: -1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

// TestScenarioResume: a snapshot taken mid-run resumes through
// RunOptions.Resume and finishes byte-identically to the uninterrupted
// scenario run; non-resumable specs reject Resume.
func TestScenarioResume(t *testing.T) {
	sys := scenarioSystem(t)
	pop := PopulationSpec{Users: 16, Recipients: 40, CoverRate: 0.5}
	dcfg := population.DisclosureConfig{MaxRounds: 400, Workers: 1}
	sc, err := sys.Build(DisclosureSpec{Population: pop, Disclosure: dcfg})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sc.Run(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt a low-level run partway and snapshot it.
	eng, err := sys.NewPopulation(pop)
	if err != nil {
		t.Fatal(err)
	}
	run, err := eng.StartDisclosure(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Step(137); err != nil {
		t.Fatal(err)
	}
	st, err := run.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sc.Run(context.Background(), RunOptions{Resume: st})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Disclosure, base.Disclosure) {
		t.Fatal("resumed scenario run differs from uninterrupted run")
	}
	other, err := sys.Build(SessionAttackSpec{Session: SessionAttackConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Run(context.Background(), RunOptions{Resume: st}); err == nil {
		t.Fatal("non-disclosure scenario accepted a Resume state")
	}
}

// TestScenarioContextCancel: a cancelled context interrupts the round
// loop with the context's error.
func TestScenarioContextCancel(t *testing.T) {
	sys := scenarioSystem(t)
	sc, err := sys.Build(DisclosureSpec{
		Population: PopulationSpec{Users: 16, Recipients: 40},
		Disclosure: population.DisclosureConfig{MaxRounds: 4000, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.Run(ctx, RunOptions{}); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}
