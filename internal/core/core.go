package core

import (
	"errors"
	"fmt"
	"math"

	"linkpad/internal/adversary"
	"linkpad/internal/analytic"
	"linkpad/internal/bayes"
	"linkpad/internal/gateway"
	"linkpad/internal/netem"
	"linkpad/internal/obs"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// PayloadModel selects the payload arrival process.
type PayloadModel int

// Supported payload models.
const (
	// PayloadPoisson is memoryless user traffic (default).
	PayloadPoisson PayloadModel = iota
	// PayloadCBR is constant-rate traffic with a small clock jitter.
	PayloadCBR
	// PayloadOnOff is bursty interactive traffic (MMPP), 50% duty cycle.
	PayloadOnOff
)

// String names the model.
func (m PayloadModel) String() string {
	switch m {
	case PayloadPoisson:
		return "poisson"
	case PayloadCBR:
		return "cbr"
	case PayloadOnOff:
		return "onoff"
	default:
		return "unknown"
	}
}

// Rate is one payload-rate hypothesis ω_i.
type Rate struct {
	// Label names the class in reports, e.g. "10pps".
	Label string
	// PPS is the payload packet rate in packets per second.
	PPS float64
}

// HopSpec describes one router of the unprotected path.
type HopSpec struct {
	// CapacityBps is the outgoing link capacity in bits per second.
	CapacityBps float64
	// PacketBytes is the constant packet size on the link.
	PacketBytes int
	// Util is the crossover-traffic utilization profile of the link.
	Util traffic.Diurnal
	// PropDelay is the constant propagation delay to the next hop.
	PropDelay float64
}

// service returns the hop's per-packet service time.
func (h HopSpec) service() float64 {
	return netem.ServiceTime(h.CapacityBps, h.PacketBytes)
}

// AdaptiveSpec configures Timmerman-style adaptive traffic masking (the
// paper's §2 related-work baseline): after IdleAfter consecutive fires
// with an empty payload queue the timer interval stretches from Tau to
// IdleFactor·Tau, saving bandwidth at the cost of a first-order rate leak.
type AdaptiveSpec struct {
	// IdleFactor scales Tau for the idle interval; must exceed 1.
	IdleFactor float64
	// IdleAfter is the number of consecutive empty-queue fires before the
	// policy stretches the interval; must be at least 1.
	IdleAfter int
}

// MixSpec configures the Chaum batching baseline.
type MixSpec struct {
	// K is the batch size; at least 2.
	K int
	// SendSpacing is the wire spacing of burst packets; zero defaults to
	// 120 µs (1500 B at 100 Mbit/s).
	SendSpacing float64
}

// Config describes a complete link-padding system.
type Config struct {
	// Tau is the mean timer interval (padding period), e.g. 10 ms.
	Tau float64
	// SigmaT is the VIT interval standard deviation; 0 selects CIT.
	SigmaT float64
	// Adaptive, when non-nil, selects the adaptive masking baseline
	// instead of CIT/VIT (mutually exclusive with SigmaT > 0).
	Adaptive *AdaptiveSpec
	// Mix, when non-nil, selects the Chaum batch-of-K baseline (paper §2
	// ref. [3]): no timer, no dummies, flush every K payload packets.
	// Mutually exclusive with SigmaT > 0 and Adaptive.
	Mix *MixSpec
	// Jitter is the gateway host's timer-disturbance model.
	Jitter gateway.JitterModel
	// Rates are the payload-rate hypotheses (at least two).
	Rates []Rate
	// Payload selects the payload arrival process.
	Payload PayloadModel
	// Hops is the router path between the gateways; empty means the
	// adversary taps directly at the sender gateway output.
	Hops []HopSpec
	// ExactNetwork simulates every crossover packet through exact FIFO
	// router queues (netem.Router) instead of the stationary M/D/1
	// sampler. Much slower; requires constant (non-diurnal) hop
	// utilizations. Used to cross-validate the fast path.
	ExactNetwork bool
	// StartHour anchors diurnal profiles: simulation time 0 is this hour
	// of day.
	StartHour float64
	// TapLossProb is the adversary capture's packet miss probability.
	TapLossProb float64
	// TapResolution quantizes tap timestamps (0 = perfect clock).
	TapResolution float64
	// PathImpair, when enabled, impairs the forward path after the router
	// hops: packets really are lost, duplicated or displaced before any
	// tap sees them. Applies to every observation protocol that crosses
	// the shared observation chain.
	PathImpair *netem.Impairment
	// TapImpair, when enabled, impairs the adversary's exit capture after
	// the tap-loss and quantization stages: the wire is untouched, the
	// recording is not.
	TapImpair *netem.Impairment
	// EntryTapImpair, when enabled, impairs the adversary's ingress taps
	// (the cascade entry recorder and the population ingress view): those
	// vantage points miss, double-record or mis-order observations
	// independently of the exit capture.
	EntryTapImpair *netem.Impairment
	// Seed is the master seed; all streams derive from it.
	Seed uint64
}

// DefaultLabConfig returns the paper's §5 baseline: CIT with τ = 10 ms on
// a TimeSys-like gateway, payload at 10 or 40 pps with equal priors, tap
// at the sender gateway output (zero cross traffic).
func DefaultLabConfig() Config {
	return Config{
		Tau:    10e-3,
		Jitter: gateway.DefaultJitter(),
		Rates: []Rate{
			{Label: "10pps", PPS: 10},
			{Label: "40pps", PPS: 40},
		},
		Payload: PayloadPoisson,
		Seed:    1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !(c.Tau > 0) {
		return errors.New("core: Tau must be positive")
	}
	if c.SigmaT < 0 {
		return errors.New("core: SigmaT must be non-negative")
	}
	if c.Adaptive != nil {
		if c.SigmaT > 0 {
			return errors.New("core: Adaptive and SigmaT are mutually exclusive")
		}
		if !(c.Adaptive.IdleFactor > 1) {
			return errors.New("core: Adaptive.IdleFactor must exceed 1")
		}
		if c.Adaptive.IdleAfter < 1 {
			return errors.New("core: Adaptive.IdleAfter must be at least 1")
		}
	}
	if c.Mix != nil {
		if c.SigmaT > 0 || c.Adaptive != nil {
			return errors.New("core: Mix is mutually exclusive with SigmaT and Adaptive")
		}
		if c.Mix.K < 2 {
			return errors.New("core: Mix.K must be at least 2")
		}
		if c.Mix.SendSpacing < 0 {
			return errors.New("core: Mix.SendSpacing must be non-negative")
		}
	}
	if err := c.Jitter.Validate(); err != nil {
		return err
	}
	if len(c.Rates) < 2 {
		return errors.New("core: need at least two payload rates")
	}
	seen := map[string]bool{}
	for i, r := range c.Rates {
		if !(r.PPS > 0) {
			return fmt.Errorf("core: rate %d has non-positive PPS", i)
		}
		if r.Label == "" {
			return fmt.Errorf("core: rate %d has empty label", i)
		}
		if seen[r.Label] {
			return fmt.Errorf("core: duplicate rate label %q", r.Label)
		}
		seen[r.Label] = true
	}
	for i, h := range c.Hops {
		if !(h.CapacityBps > 0) || h.PacketBytes <= 0 {
			return fmt.Errorf("core: hop %d has invalid link parameters", i)
		}
		if err := h.Util.Validate(); err != nil {
			return fmt.Errorf("core: hop %d: %w", i, err)
		}
		if h.PropDelay < 0 {
			return fmt.Errorf("core: hop %d has negative propagation delay", i)
		}
		if c.ExactNetwork && h.Util.Peak != h.Util.Trough {
			return fmt.Errorf("core: hop %d: exact network requires constant utilization", i)
		}
	}
	if c.TapLossProb < 0 || c.TapLossProb >= 1 {
		return errors.New("core: tap loss probability must be in [0,1)")
	}
	if c.TapResolution < 0 {
		return errors.New("core: tap resolution must be non-negative")
	}
	for _, im := range []struct {
		name string
		im   *netem.Impairment
	}{
		{"PathImpair", c.PathImpair},
		{"TapImpair", c.TapImpair},
		{"EntryTapImpair", c.EntryTapImpair},
	} {
		if err := im.im.Validate(); err != nil {
			return fmt.Errorf("core: %s: %w", im.name, err)
		}
	}
	if c.StartHour < 0 || c.StartHour >= 24 {
		return errors.New("core: start hour must be in [0,24)")
	}
	return nil
}

// System is a validated link-padding system description.
type System struct {
	cfg Config
}

// NewSystem validates cfg and returns a System.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg}, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Labels returns the class labels in rate order.
func (s *System) Labels() []string {
	ls := make([]string, len(s.cfg.Rates))
	for i, r := range s.cfg.Rates {
		ls[i] = r.Label
	}
	return ls
}

// streamSeed derives a deterministic seed for (class, streamID), spread
// by SplitMix64-style mixing so adjacent IDs give unrelated streams.
func (s *System) streamSeed(class int, streamID uint64) uint64 {
	z := s.cfg.Seed ^ (uint64(class+1) * 0x9e3779b97f4a7c15) ^ (streamID * 0xbf58476d1ce4e5b9)
	z ^= z >> 29
	z *= 0x94d049bb133111eb
	z ^= z >> 32
	return z
}

// payloadSource builds the payload arrival process for class.
func (s *System) payloadSource(class int, rng *xrand.Rand) (traffic.Source, error) {
	pps := s.cfg.Rates[class].PPS
	switch s.cfg.Payload {
	case PayloadPoisson:
		return traffic.NewPoisson(pps, rng)
	case PayloadCBR:
		// 10% of the interval as clock jitter so CBR phase is not locked
		// to the padding timer.
		return traffic.NewCBR(pps, 0.1/pps, rng)
	case PayloadOnOff:
		// 50% duty cycle bursts of 200 ms average, peak 2x the mean rate.
		return traffic.NewOnOff(2*pps, 0.2, 0.2, rng)
	default:
		return nil, fmt.Errorf("core: unknown payload model %v", s.cfg.Payload)
	}
}

// Gateway builds a fresh replica of the padding gateway for the given
// class — the system as seen at GW1's output, before the network path —
// exposing the gateway's activity statistics for overhead and QoS
// measurements. streamID selects the replica as in PIATSource. Mix
// systems have no timer gateway; use MixGateway instead.
func (s *System) Gateway(class int, streamID uint64) (*gateway.Gateway, error) {
	if s.cfg.Mix != nil {
		return nil, errors.New("core: mix systems have no timer gateway; use MixGateway")
	}
	gw, _, err := s.buildGateway(class, streamID)
	return gw, err
}

// MixGateway builds a fresh replica of the Chaum batching proxy for the
// given class. It errors unless the system is configured with Mix.
func (s *System) MixGateway(class int, streamID uint64) (*gateway.Mix, error) {
	if s.cfg.Mix == nil {
		return nil, errors.New("core: system is not configured as a mix")
	}
	if class < 0 || class >= len(s.cfg.Rates) {
		return nil, fmt.Errorf("core: class %d out of range", class)
	}
	master := xrand.New(s.streamSeed(class, streamID))
	payload, err := s.payloadSource(class, master.Split())
	if err != nil {
		return nil, err
	}
	return gateway.NewMix(gateway.MixConfig{
		K:           s.cfg.Mix.K,
		SendSpacing: s.mixSpacing(),
		Payload:     payload,
		Jitter:      s.cfg.Jitter,
		RNG:         master.Split(),
	})
}

// timerPolicy builds the configured timer policy (adaptive, VIT or CIT),
// drawing any policy randomness from master. Shared by every protocol
// that assembles a gateway, so a policy added or changed here changes
// all of them together.
func (s *System) timerPolicy(master *xrand.Rand) (gateway.TimerPolicy, error) {
	switch {
	case s.cfg.Adaptive != nil:
		return gateway.NewAdaptive(s.cfg.Tau,
			s.cfg.Adaptive.IdleFactor*s.cfg.Tau, s.cfg.Adaptive.IdleAfter)
	case s.cfg.SigmaT > 0:
		return gateway.NewVIT(s.cfg.Tau, s.cfg.SigmaT, master.Split())
	default:
		return gateway.NewCIT(s.cfg.Tau)
	}
}

// mixSpacing resolves the configured mix burst spacing (default 120 µs:
// 1500 B at 100 Mbit/s).
func (s *System) mixSpacing() float64 {
	if s.cfg.Mix.SendSpacing != 0 {
		return s.cfg.Mix.SendSpacing
	}
	return 120e-6
}

// buildGateway assembles the payload source, timer policy and gateway for
// one class replica, returning the master RNG for downstream elements.
func (s *System) buildGateway(class int, streamID uint64) (*gateway.Gateway, *xrand.Rand, error) {
	if class < 0 || class >= len(s.cfg.Rates) {
		return nil, nil, fmt.Errorf("core: class %d out of range", class)
	}
	master := xrand.New(s.streamSeed(class, streamID))

	payload, err := s.payloadSource(class, master.Split())
	if err != nil {
		return nil, nil, err
	}
	policy, err := s.timerPolicy(master)
	if err != nil {
		return nil, nil, err
	}
	gw, err := gateway.New(gateway.Config{
		Policy:  policy,
		Jitter:  s.cfg.Jitter,
		Payload: payload,
		RNG:     master.Split(),
	})
	if err != nil {
		return nil, nil, err
	}
	return gw, master, nil
}

// PIATSource builds a fresh, independent realization of the padded-stream
// PIAT process for the given class, observed at the adversary's tap.
// streamID distinguishes replicas: training and evaluation must use
// different IDs (the same ID reproduces the identical stream).
func (s *System) PIATSource(class int, streamID uint64) (adversary.PIATSource, error) {
	return s.tap(class, streamID)
}

// tap assembles the full observation chain for one stream realization —
// gateway (or mix), network path, tap imperfections — and returns the
// differencing tap, whose stream clock the session layer reads.
func (s *System) tap(class int, streamID uint64) (*netem.Differ, error) {
	// One telemetry shard per chain, owned by whichever goroutine pulls
	// the chain; the Differ carries it so batched consumers can drain it
	// at slab boundaries. Nil (collection disabled) threads through every
	// element for free.
	sh := obs.NewShard()
	var stream netem.TimeStream
	var master *xrand.Rand
	if s.cfg.Mix != nil {
		mix, err := s.MixGateway(class, streamID)
		if err != nil {
			return nil, err
		}
		mix.SetProbe(sh)
		// Derive the downstream RNG from a distinct branch of the same
		// stream seed.
		master = xrand.New(s.streamSeed(class, streamID) ^ 0xa5a5a5a5a5a5a5a5)
		stream = mix
	} else {
		gw, m, err := s.buildGateway(class, streamID)
		if err != nil {
			return nil, err
		}
		gw.SetProbe(sh)
		stream, master = gw, m
	}
	stream, err := s.observationChain(stream, master, sh)
	if err != nil {
		return nil, err
	}
	d := netem.NewDiffer(stream)
	d.SetProbe(sh)
	return d, nil
}

// observationChain layers the unprotected network path and the tap
// imperfections over a padded departure stream, in the fixed order every
// observation protocol shares: hops (exact routers or the stationary
// sampler), then the forward-path impairment, then capture loss, then
// clock quantization, then the capture impairment. All randomness is
// drawn from master in that order; disabled stages draw nothing, so a
// configuration without impairments reproduces the pre-fault-model
// streams bit for bit. probe is the chain's telemetry shard (nil when
// collection is disabled): the loss/duplication/reorder stages count
// into it, and it never influences any draw.
func (s *System) observationChain(stream netem.TimeStream, master *xrand.Rand, probe *obs.Shard) (netem.TimeStream, error) {
	var err error
	switch {
	case len(s.cfg.Hops) > 0 && s.cfg.ExactNetwork:
		for _, h := range s.cfg.Hops {
			svc := h.service()
			var cross traffic.Source
			if u := h.Util.Peak; u > 0 {
				cross, err = traffic.NewPoisson(u/svc, master.Split())
				if err != nil {
					return nil, err
				}
			}
			stream, err = netem.NewRouter(stream, cross, svc, h.PropDelay)
			if err != nil {
				return nil, err
			}
		}
	case len(s.cfg.Hops) > 0:
		hops := make([]netem.Hop, len(s.cfg.Hops))
		for i, h := range s.cfg.Hops {
			hops[i] = netem.Hop{
				Service: h.service(),
				Util:    netem.DiurnalUtil(h.Util, s.cfg.StartHour),
				Prop:    h.PropDelay,
			}
		}
		stream, err = netem.NewPath(stream, hops, master.Split())
		if err != nil {
			return nil, err
		}
	}
	if s.cfg.PathImpair.Enabled() {
		imp, err := netem.NewImpairer(stream, s.cfg.PathImpair, master.Split())
		if err != nil {
			return nil, err
		}
		imp.SetProbe(probe)
		stream = imp
	}
	if s.cfg.TapLossProb > 0 {
		lt, err := netem.NewLossyTap(stream, s.cfg.TapLossProb, master.Split())
		if err != nil {
			return nil, err
		}
		lt.SetProbe(probe)
		stream = lt
	}
	if s.cfg.TapResolution > 0 {
		stream, err = netem.NewQuantizer(stream, s.cfg.TapResolution)
		if err != nil {
			return nil, err
		}
	}
	if s.cfg.TapImpair.Enabled() {
		imp, err := netem.NewImpairer(stream, s.cfg.TapImpair, master.Split())
		if err != nil {
			return nil, err
		}
		imp.SetProbe(probe)
		stream = imp
	}
	return stream, nil
}

// entryTapWrap impairs an ingress-tap record callback with the system's
// entry-tap impairment; the RNG is derived lazily from the given role
// stream seed only when the impairment is enabled, so baseline
// configurations construct nothing and stay bit-identical.
func (s *System) entryTapWrap(record func(float64), class int, streamID uint64, probe *obs.Shard) (func(float64), error) {
	if record == nil || !s.cfg.EntryTapImpair.Enabled() {
		return record, nil
	}
	return s.cfg.EntryTapImpair.WrapRecordObs(record, xrand.New(s.streamSeed(class, streamID)), probe)
}

// AttackConfig describes one adversary experiment against the system.
type AttackConfig struct {
	// Feature is the statistic the adversary classifies on.
	Feature analytic.Feature
	// WindowSize is the run-time sample size n.
	WindowSize int
	// TrainWindows is the number of off-line training windows per class.
	TrainWindows int
	// EvalWindows is the number of run-time windows classified per class.
	EvalWindows int
	// EntropyBinWidth overrides the entropy histogram bin width (0 =
	// default 2 µs).
	EntropyBinWidth float64
	// GaussianFit replaces the KDE training with a parametric normal fit.
	GaussianFit bool
	// TrainStreamID/EvalStreamID pick the stream replicas; leave zero for
	// the defaults (training on replica 1, evaluation on replica 2).
	TrainStreamID, EvalStreamID uint64
	// Workers bounds trial-level parallelism inside the attack: every
	// training/evaluation window is drawn from its own seeded stream
	// replica, so results are identical for any worker count. Zero means
	// all CPUs.
	Workers int
	// SkipEmpiricalR skips the two-class variance-ratio measurement (and
	// the closed-form theory evaluation that consumes it). The ratio is
	// simulated on dedicated stream replicas that can cost as much as the
	// attack itself, so experiments that only report detection rates or
	// confusion matrices set this; it cannot change their numbers, because
	// the ratio replicas are independent streams the attack never reads.
	SkipEmpiricalR bool
}

// withDefaults fills zero fields.
func (a AttackConfig) withDefaults() AttackConfig {
	if a.WindowSize == 0 {
		a.WindowSize = 1000
	}
	if a.TrainWindows == 0 {
		a.TrainWindows = 200
	}
	if a.EvalWindows == 0 {
		a.EvalWindows = 200
	}
	if a.TrainStreamID == 0 {
		a.TrainStreamID = 1
	}
	if a.EvalStreamID == 0 {
		a.EvalStreamID = 2
	}
	return a
}

// AttackResult reports one adversary experiment.
type AttackResult struct {
	// Feature and WindowSize echo the attack parameters.
	Feature    analytic.Feature
	WindowSize int
	// DetectionRate is the measured probability of correct classification.
	DetectionRate float64
	// Confusion is the full confusion matrix over classes.
	Confusion *bayes.Confusion
	// EmpiricalR is the measured PIAT variance ratio between the last and
	// first class (two-class systems only; 0 otherwise).
	EmpiricalR float64
	// TheoryDetectionRate evaluates the paper's closed-form theorem at
	// EmpiricalR (two-class systems only; 0 otherwise).
	TheoryDetectionRate float64
}

// attackSet runs the attack for several feature statistics against the
// *same* Monte Carlo windows in one pass: every training and evaluation
// window is simulated once and reduced by all feature extractors
// simultaneously. The padded-stream simulation dominates the attack cost,
// so a three-feature sweep point runs ~3x faster than three single-feature
// calls while measuring every feature on identical data (which the
// separate calls also did — they replayed the same stream replicas).
// Results are returned in the order of the features argument.
//
// Windows are drawn from per-trial stream replicas and extracted on up to
// cfg.Workers goroutines; tables built from these results are identical
// for any worker count.
//
// Protocol note: each window is an independent replica of the system
// started at time zero (i.i.d. windows), where the paper taps consecutive
// windows of one continuous stream. The fast network path draws per-packet
// waits from the *stationary* M/D/1 distribution, so replicas carry no
// queue warm-up; the gateway and exact-router transients span a few
// packets of a >=100-packet window. The validate-exactnet and
// ablation-theorygap experiments confirm the i.i.d.-window measurements
// agree with the exact simulation and the closed-form theory, and the
// ablation-windowing experiment quantifies the residual protocol gap
// against RunAttackSession's continuous-stream sessions, which implement
// the paper's consecutive-window observation directly.
func (s *System) attackSet(cfg AttackConfig, features []analytic.Feature) ([]*AttackResult, error) {
	cfg = cfg.withDefaults()
	if uint32(cfg.TrainStreamID) == uint32(cfg.EvalStreamID) {
		// Windows are spread across the high bits (windowStreamID), so
		// bases sharing their low 32 bits would alias window streams
		// between the phases, not just at equal IDs.
		return nil, errors.New("core: training and evaluation stream IDs must differ in their low 32 bits")
	}
	if len(features) == 0 {
		return nil, errors.New("core: empty feature set")
	}
	exts := make([]adversary.Extractor, len(features))
	for i, f := range features {
		exts[i] = adversary.Extractor{Feature: f, EntropyBinWidth: cfg.EntropyBinWidth}
	}
	m := len(s.cfg.Rates)
	labels := s.Labels()
	factory := func(class int, base uint64) adversary.SourceFactory {
		return func(w int) (adversary.PIATSource, error) {
			return s.PIATSource(class, windowStreamID(base, w))
		}
	}

	// Off-line training: one streaming pass per class over shared windows,
	// then one fitted classifier per feature.
	trainPerClass := make([][][]float64, m) // [class][feature][window]
	for c := 0; c < m; c++ {
		mat, err := adversary.FeatureMatrix(factory(c, cfg.TrainStreamID), exts,
			cfg.TrainWindows, cfg.WindowSize, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: training class %q: %w", labels[c], err)
		}
		trainPerClass[c] = mat
	}
	classifiers := make([]*bayes.Classifier, len(features))
	for fi := range features {
		perClass := make([][]float64, m)
		for c := 0; c < m; c++ {
			perClass[c] = trainPerClass[c][fi]
		}
		var cls *bayes.Classifier
		var err error
		if cfg.GaussianFit {
			cls, err = bayes.TrainGaussian(labels, perClass, nil)
		} else {
			cls, err = bayes.TrainKDE(labels, perClass, nil)
		}
		if err != nil {
			return nil, err
		}
		classifiers[fi] = cls
	}

	// Run-time classification: fresh replicas, batch-scored per class.
	cms := make([]*bayes.Confusion, len(features))
	for fi := range cms {
		cms[fi] = bayes.NewConfusion(labels)
	}
	var preds []int
	for c := 0; c < m; c++ {
		mat, err := adversary.FeatureMatrix(factory(c, cfg.EvalStreamID), exts,
			cfg.EvalWindows, cfg.WindowSize, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating class %q: %w", labels[c], err)
		}
		for fi := range features {
			preds = classifiers[fi].ClassifyBatch(mat[fi], preds)
			for _, pred := range preds {
				cms[fi].Add(c, pred)
			}
		}
	}

	// Diagnostics shared by every feature: the empirical variance ratio is
	// a property of the streams, not of the feature, so it is measured
	// once per set (on yet another pair of replicas, so it does not
	// consume attack data).
	var empiricalR float64
	if m == 2 && !cfg.SkipEmpiricalR {
		rLow, err := s.PIATSource(0, cfg.EvalStreamID+1000)
		if err != nil {
			return nil, err
		}
		rHigh, err := s.PIATSource(1, cfg.EvalStreamID+1000)
		if err != nil {
			return nil, err
		}
		nR := cfg.WindowSize * cfg.TrainWindows
		if nR > 400000 {
			nR = 400000
		}
		if nR < 10000 {
			nR = 10000
		}
		empiricalR, err = adversary.EmpiricalR(rLow, rHigh, nR)
		if err != nil {
			return nil, err
		}
	}

	results := make([]*AttackResult, len(features))
	for fi, f := range features {
		res := &AttackResult{
			Feature:       f,
			WindowSize:    cfg.WindowSize,
			DetectionRate: cms[fi].DetectionRate(),
			Confusion:     cms[fi],
			EmpiricalR:    empiricalR,
		}
		if m == 2 && !cfg.SkipEmpiricalR && analytic.HasTheorem(f) {
			v, err := analytic.DetectionRate(f, empiricalR, cfg.WindowSize)
			if err != nil {
				return nil, err
			}
			res.TheoryDetectionRate = v
		}
		results[fi] = res
	}
	return results, nil
}

// ModelR predicts the PIAT variance ratio r (eq. 16) from the system
// parameters for a two-class system, evaluating diurnal hop utilizations
// at the given hour of day. The per-hop queueing noise uses the
// closed-form M/D/1 waiting variance.
func (s *System) ModelR(hour float64) (float64, error) {
	if len(s.cfg.Rates) != 2 {
		return 0, errors.New("core: ModelR requires exactly two rates")
	}
	if s.cfg.Adaptive != nil || s.cfg.Mix != nil {
		return 0, errors.New("core: the equal-mean variance-ratio model applies only to CIT/VIT padding")
	}
	var policy gateway.TimerPolicy
	var err error
	if s.cfg.SigmaT > 0 {
		// Only Mean/IntervalVar are used; rng is irrelevant here.
		policy, err = gateway.NewVIT(s.cfg.Tau, s.cfg.SigmaT, xrand.New(1))
	} else {
		policy, err = gateway.NewCIT(s.cfg.Tau)
	}
	if err != nil {
		return 0, err
	}
	varL := gateway.PIATVar(policy, s.cfg.Jitter, s.cfg.Rates[0].PPS)
	varH := gateway.PIATVar(policy, s.cfg.Jitter, s.cfg.Rates[1].PPS)
	hopVars := make([]float64, len(s.cfg.Hops))
	for i, h := range s.cfg.Hops {
		hopVars[i] = netem.MD1WaitVar(h.Util.At(hour), h.service())
	}
	return analytic.RWithNetwork(varL, varH, hopVars)
}

// TheoreticalDetectionRate evaluates the paper's closed-form prediction
// for this system at the given feature, sample size, and hour of day.
func (s *System) TheoreticalDetectionRate(f analytic.Feature, n int, hour float64) (float64, error) {
	r, err := s.ModelR(hour)
	if err != nil {
		return 0, err
	}
	return analytic.DetectionRate(f, r, n)
}

// PaddingOverhead returns the expected fraction of padded packets that
// are dummies for the given class: 1 − λτ (clamped at 0), the bandwidth
// price of the countermeasure.
func (s *System) PaddingOverhead(class int) (float64, error) {
	if class < 0 || class >= len(s.cfg.Rates) {
		return 0, fmt.Errorf("core: class %d out of range", class)
	}
	if s.cfg.Mix != nil {
		return 0, nil // a mix sends no dummies
	}
	o := 1 - s.cfg.Rates[class].PPS*s.cfg.Tau
	return math.Max(o, 0), nil
}

// DesignVIT solves the paper's design guideline analytically: the
// smallest σ_T capping the adversary's detection rate at target when they
// use feature f with sample size n and tap the gateway output directly
// (the paper's worst case for the defender). Two-class systems only.
//
// The closed-form theorems model both classes as Gaussians that differ
// only in variance. The mechanistic gateway's blocking delays also differ
// in *shape* between classes, which a KDE-trained entropy attacker can
// exploit beyond the theorems' prediction, so treat this value as a lower
// bound and confirm with CalibrateVIT (empirical) before deployment.
func (s *System) DesignVIT(f analytic.Feature, target float64, n int) (float64, error) {
	if len(s.cfg.Rates) != 2 {
		return 0, errors.New("core: DesignVIT requires exactly two rates")
	}
	cit, err := gateway.NewCIT(s.cfg.Tau)
	if err != nil {
		return 0, err
	}
	varL := gateway.PIATVar(cit, s.cfg.Jitter, s.cfg.Rates[0].PPS)
	varH := gateway.PIATVar(cit, s.cfg.Jitter, s.cfg.Rates[1].PPS)
	return analytic.SigmaTForTarget(f, target, n, varL, varH)
}

// CalibrateVIT empirically searches for the smallest σ_T that caps the
// simulated adversary's detection rate at target, starting from the
// analytic DesignVIT value and doubling/bisecting on σ_T. attack
// configures the simulated adversary (its Feature and WindowSize define
// the threat). The returned σ_T satisfies the target up to the Monte
// Carlo resolution of the attack configuration. Two-class systems only.
func (s *System) CalibrateVIT(target float64, attack AttackConfig) (float64, error) {
	if !(target > 0.5 && target < 1) {
		return 0, errors.New("core: target detection rate must be in (0.5, 1)")
	}
	attack = attack.withDefaults()
	base, err := s.DesignVIT(attack.Feature, target, attack.WindowSize)
	if err != nil {
		return 0, err
	}
	if base == 0 {
		// Analytics say CIT is already safe; verify empirically and be
		// done, otherwise fall through to the search from a small seed
		// value.
		v, err := s.detectionAt(0, attack)
		if err != nil {
			return 0, err
		}
		if v <= target {
			return 0, nil
		}
		base = s.cfg.Tau * 1e-4
	}
	lo, hi := 0.0, base
	v, err := s.detectionAt(hi, attack)
	if err != nil {
		return 0, err
	}
	for i := 0; v > target && i < 12; i++ {
		lo = hi
		hi *= 2
		v, err = s.detectionAt(hi, attack)
		if err != nil {
			return 0, err
		}
	}
	if v > target {
		return 0, errors.New("core: calibration failed to reach target detection rate")
	}
	for i := 0; i < 8; i++ {
		mid := (lo + hi) / 2
		v, err = s.detectionAt(mid, attack)
		if err != nil {
			return 0, err
		}
		if v <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// detectionAt measures the attack's detection rate against this system
// with SigmaT overridden.
func (s *System) detectionAt(sigmaT float64, attack AttackConfig) (float64, error) {
	cfg := s.cfg
	cfg.SigmaT = sigmaT
	sys, err := NewSystem(cfg)
	if err != nil {
		return 0, err
	}
	set, err := sys.attackSet(attack, []analytic.Feature{attack.Feature})
	if err != nil {
		return 0, err
	}
	return set[0].DetectionRate, nil
}

// trainExitClassifiers runs the shared off-line phase of the population,
// cascade and active correlation attacks: per class, reduce trainWindows
// phantom observations — source builds observation w of a class, a fresh
// realization drawn from the protocol's disjoint phantom index block, so
// training observes cover traffic, batching and re-padding exactly as
// run time does without sharing realizations with the observed flows —
// to one value per feature, then train one KDE classifier per feature.
// The returned extractors parallel the classifiers; both are nil when
// features is empty.
func (s *System) trainExitClassifiers(features []analytic.Feature, trainWindows, featureWindow, workers int,
	source func(class, w int) (adversary.PIATSource, error)) ([]*bayes.Classifier, []adversary.Extractor, error) {
	if len(features) == 0 {
		return nil, nil, nil
	}
	exts := make([]adversary.Extractor, len(features))
	for i, f := range features {
		exts[i] = adversary.Extractor{Feature: f}
	}
	m := len(s.cfg.Rates)
	labels := s.Labels()
	trainPerClass := make([][][]float64, m)
	for c := 0; c < m; c++ {
		class := c
		factory := func(w int) (adversary.PIATSource, error) { return source(class, w) }
		mat, err := adversary.FeatureMatrix(factory, exts,
			trainWindows, featureWindow, workers)
		if err != nil {
			return nil, nil, fmt.Errorf("core: training class %q: %w", labels[c], err)
		}
		trainPerClass[c] = mat
	}
	classifiers := make([]*bayes.Classifier, len(exts))
	for fi := range exts {
		perClass := make([][]float64, m)
		for c := 0; c < m; c++ {
			perClass[c] = trainPerClass[c][fi]
		}
		cls, err := bayes.TrainKDE(labels, perClass, nil)
		if err != nil {
			return nil, nil, err
		}
		classifiers[fi] = cls
	}
	return classifiers, exts, nil
}
