package core

import (
	"runtime"
	"testing"

	"linkpad/internal/analytic"
)

// RunAttackSet must produce, per feature, exactly the result of a
// standalone RunAttack: both draw the same per-trial stream replicas, so
// sharing the simulated windows across features is purely an optimization.
func TestRunAttackSetMatchesSingleRuns(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	attack := AttackConfig{
		WindowSize:   300,
		TrainWindows: 40,
		EvalWindows:  40,
	}
	features := []analytic.Feature{
		analytic.FeatureMean, analytic.FeatureVariance, analytic.FeatureEntropy,
	}
	set, err := sys.RunAttackSet(attack, features)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != len(features) {
		t.Fatalf("got %d results for %d features", len(set), len(features))
	}
	for i, f := range features {
		single := attack
		single.Feature = f
		res, err := sys.RunAttack(single)
		if err != nil {
			t.Fatal(err)
		}
		if set[i].Feature != f {
			t.Errorf("result %d reports feature %v, want %v", i, set[i].Feature, f)
		}
		if set[i].DetectionRate != res.DetectionRate {
			t.Errorf("%v: set detection %v vs single %v", f, set[i].DetectionRate, res.DetectionRate)
		}
		if set[i].EmpiricalR != res.EmpiricalR {
			t.Errorf("%v: set r %v vs single %v", f, set[i].EmpiricalR, res.EmpiricalR)
		}
		if set[i].TheoryDetectionRate != res.TheoryDetectionRate {
			t.Errorf("%v: set theory %v vs single %v", f, set[i].TheoryDetectionRate, res.TheoryDetectionRate)
		}
	}
}

// Attack results must be identical at any trial-parallelism width.
func TestRunAttackWorkerInvariance(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := AttackConfig{
		Feature:      analytic.FeatureEntropy,
		WindowSize:   300,
		TrainWindows: 30,
		EvalWindows:  30,
	}
	ref, err := sys.RunAttack(func() AttackConfig { c := base; c.Workers = 1; return c }())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		c := base
		c.Workers = workers
		got, err := sys.RunAttack(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.DetectionRate != ref.DetectionRate || got.EmpiricalR != ref.EmpiricalR {
			t.Fatalf("workers=%d: detection %v / r %v differ from reference %v / %v",
				workers, got.DetectionRate, got.EmpiricalR, ref.DetectionRate, ref.EmpiricalR)
		}
		for tc := 0; tc < 2; tc++ {
			for pc := 0; pc < 2; pc++ {
				if got.Confusion.Count(tc, pc) != ref.Confusion.Count(tc, pc) {
					t.Fatalf("workers=%d: confusion[%d][%d] differs", workers, tc, pc)
				}
			}
		}
	}
}

func TestRunAttackSetValidation(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunAttackSet(AttackConfig{}, nil); err == nil {
		t.Error("empty feature set should fail")
	}
	cfg := AttackConfig{TrainStreamID: 7, EvalStreamID: 7}
	if _, err := sys.RunAttackSet(cfg, []analytic.Feature{analytic.FeatureMean}); err == nil {
		t.Error("identical stream IDs should fail")
	}
}

// The multi-rate (m > 2) path must work through the set API as well:
// no EmpiricalR/theory, but valid per-class confusion.
func TestRunAttackSetMultiRate(t *testing.T) {
	cfg := DefaultLabConfig()
	cfg.Rates = []Rate{
		{Label: "10pps", PPS: 10},
		{Label: "20pps", PPS: 20},
		{Label: "40pps", PPS: 40},
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := sys.RunAttackSet(AttackConfig{
		WindowSize:   300,
		TrainWindows: 30,
		EvalWindows:  30,
	}, []analytic.Feature{analytic.FeatureEntropy})
	if err != nil {
		t.Fatal(err)
	}
	res := set[0]
	if res.EmpiricalR != 0 || res.TheoryDetectionRate != 0 {
		t.Errorf("m=3 should not report two-class diagnostics: r=%v theory=%v",
			res.EmpiricalR, res.TheoryDetectionRate)
	}
	if res.Confusion.Total() != 90 {
		t.Errorf("confusion total = %d, want 90", res.Confusion.Total())
	}
	if res.DetectionRate < 1.0/3 {
		t.Errorf("detection %v below guessing", res.DetectionRate)
	}
}
