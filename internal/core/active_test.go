package core

import (
	"reflect"
	"runtime"
	"testing"

	"linkpad/internal/active"
	"linkpad/internal/analytic"
)

// chaffSpec is the small active scenario the determinism tests run:
// eight chaff-watermarked flows crossing the system's single padded
// link.
func chaffSpec() ActiveSpec {
	return ActiveSpec{
		Protocol:  ActiveReplica,
		Flows:     8,
		Mode:      active.ModeChaff,
		Amplitude: 20,
		Chips:     16,
		Decoys:    8,
	}
}

// Active detection results must be byte-identical at any worker width,
// mirroring the replica/session/population/cascade invariance tests:
// flows are the unit of parallelism and every flow's key, chaff stream
// and chain element derive from (seed, class, flowID, role) streams
// alone.
func TestRunActiveDetectionWorkerInvariance(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ActiveDetectConfig{
		Duration:      20,
		FeatureWindow: 100,
		TrainWindows:  12,
		Features:      []analytic.Feature{analytic.FeatureVariance},
	}
	run := func(workers int) *active.Result {
		c := cfg
		c.Workers = workers
		res, err := sys.RunActiveDetection(chaffSpec(), c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		got := run(w)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: active result differs\n got %+v\nwant %+v", w, got, ref)
		}
	}
}

// The four scenario protocols of one flow index must be different
// realizations: the protocol field is part of the stream ID, so no two
// scenarios share randomness even at identical specs.
func TestActiveProtocolsDisjointRealizations(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ActiveDetectConfig{Duration: 20, TrainWindows: 2}
	spec := chaffSpec()
	replica, err := sys.RunActiveDetection(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec.Protocol = ActiveSession
	session, err := sys.RunActiveDetection(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(replica.ZTrue, session.ZTrue) {
		t.Fatal("replica and session scenarios produced identical z-scores: protocols share streams")
	}
}

// The unpadded anchor must leak the watermark and a deep route must
// destroy it — the tentpole's headline ordering, asserted end to end at
// the core API level (the experiment tests assert the full policy tier).
func TestActiveDetectionUnpaddedVsCascade(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ActiveDetectConfig{Duration: 30, TrainWindows: 2}
	raw := chaffSpec()
	raw.Raw = true
	rawRes, err := sys.RunActiveDetection(raw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rawRes.DetectionRate < 0.9 || rawRes.MatchAccuracy < 0.9 {
		t.Errorf("unpadded link should leak the chaff watermark: det %v match %v",
			rawRes.DetectionRate, rawRes.MatchAccuracy)
	}
	if rawRes.InjectedPPS <= 0 || rawRes.RoutePPS <= 0 {
		t.Errorf("overhead accounting empty: injected %v route %v",
			rawRes.InjectedPPS, rawRes.RoutePPS)
	}
	casc := chaffSpec()
	casc.Protocol = ActiveCascade
	casc.Hops = []CascadeHop{{}, {}}
	cascRes, err := sys.RunActiveDetection(casc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cascRes.DetectionRate > 0.2 {
		t.Errorf("two re-timing hops should destroy the watermark: det %v", cascRes.DetectionRate)
	}
	if cascRes.DegreeOfAnonymity < rawRes.DegreeOfAnonymity {
		t.Errorf("anonymity should rise with the route: raw %v cascade %v",
			rawRes.DegreeOfAnonymity, cascRes.DegreeOfAnonymity)
	}
	if cascRes.RoutePPS < 190 || cascRes.RoutePPS > 210 {
		t.Errorf("two-CIT route pps %v, want ~200", cascRes.RoutePPS)
	}
}

func TestActiveSpecValidation(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	ok := chaffSpec()
	bad := []ActiveSpec{
		{}, // no flows, no amplitude
		{Flows: 1, Mode: active.ModeChaff, Amplitude: 1},                          // one flow
		{Flows: 4, Mode: active.Mode(9), Amplitude: 1},                            // unknown mode
		{Flows: 4, Mode: active.ModeChaff},                                        // zero amplitude
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, Chips: 1},                // bad geometry
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, Period: -1},              // bad geometry
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, Decoys: 4},               // too few decoys
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, CoverRate: 1},            // cover off-protocol
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, WarmupTime: 1},           // warm-up off-protocol
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, Hops: []CascadeHop{{}}},  // hops off-protocol
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, Protocol: ActiveCascade}, // cascade without hops
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, Protocol: ActiveCascade,
			Raw: true, Hops: []CascadeHop{{}}}, // raw cascade
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, Protocol: ActivePopulation,
			CoverRate: 1, CoverToPPS: 100}, // both cover knobs
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, Protocol: ActiveProtocol(9)}, // unknown protocol
		{Flows: 4, Mode: active.ModeChaff, Amplitude: 1, ClassMix: []float64{1}},      // short mix
	}
	for i, spec := range bad {
		if _, err := sys.NewActive(spec); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	if _, err := sys.NewActive(ok); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	if _, err := sys.RunActiveDetection(ok, ActiveDetectConfig{Duration: 1}); err == nil {
		t.Error("sub-slot duration should fail")
	}
	if _, err := sys.RunActiveDetection(ok, ActiveDetectConfig{TrainWindows: 1}); err == nil {
		t.Error("single training window should fail")
	}
}

// ActiveProtocol and Mode names feed table notes and Result.Mode.
func TestActiveNames(t *testing.T) {
	for p, want := range map[ActiveProtocol]string{
		ActiveReplica: "replica", ActiveSession: "session",
		ActivePopulation: "population", ActiveCascade: "cascade",
		ActiveProtocol(9): "unknown",
	} {
		if got := p.String(); got != want {
			t.Errorf("ActiveProtocol(%d).String() = %q, want %q", int(p), got, want)
		}
	}
	for m, want := range map[active.Mode]string{
		active.ModeDelay: "delay", active.ModeChaff: "chaff",
		active.Mode(9): "unknown",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}
