package core

import (
	"reflect"
	"testing"

	"linkpad/internal/analytic"
	"linkpad/internal/netem"
	"linkpad/internal/population"
)

// Fault-injection wiring at the system layer: impairment and churn
// specs must validate with the config, a *disabled* impairment must be
// bit-for-bit invisible (the golden gate in miniature), and an enabled
// one must actually reach the streams.

func TestFaultConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.PathImpair = &netem.Impairment{LossProb: 2} },
		func(c *Config) { c.TapImpair = &netem.Impairment{ReorderProb: 0.1} },
		func(c *Config) { c.EntryTapImpair = &netem.Impairment{DupProb: -1} },
		func(c *Config) {
			c.TapImpair = &netem.Impairment{GE: &netem.GilbertElliott{PGoodBad: -1}}
		},
	}
	for i, mutate := range bad {
		cfg := DefaultLabConfig()
		mutate(&cfg)
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("bad fault config %d accepted", i)
		}
	}
}

func TestChurnSpecValidation(t *testing.T) {
	s := labSystem(t, nil)
	for _, churn := range []*ChurnSpec{
		{MeanOn: 0, MeanOff: 1},
		{MeanOn: 1, MeanOff: -1},
	} {
		_, err := s.RunDisclosure(PopulationSpec{Users: 8, Recipients: 20, Churn: churn},
			population.DisclosureConfig{MaxRounds: 50, Workers: 1})
		if err == nil {
			t.Errorf("bad churn spec %+v accepted", churn)
		}
	}
}

func TestOutageSpecValidation(t *testing.T) {
	s := labSystem(t, nil)
	for _, outage := range []*OutageSpec{
		{MeanUp: 0, MeanDown: 1},
		{MeanUp: 1, MeanDown: 1, Backoff: -1},
		{MeanUp: 1, MeanDown: 1, Backoff: 0.1, SpareDelay: 0.1},
	} {
		_, err := s.RunCascadeCorrelation(CascadeSpec{
			Hops:  []CascadeHop{{Outage: outage}},
			Flows: 4,
		}, CascadeCorrConfig{Duration: 30, TrainWindows: 8, Workers: 1,
			Features: []analytic.Feature{analytic.FeatureVariance}})
		if err == nil {
			t.Errorf("bad outage spec %+v accepted", outage)
		}
	}
}

// TestDisabledImpairmentIsIdentity: a non-nil all-zero impairment spec
// must produce results identical to no spec at all — no RNG draw, no
// stream element, nothing.
func TestDisabledImpairmentIsIdentity(t *testing.T) {
	attack := AttackConfig{
		Feature:      analytic.FeatureEntropy,
		WindowSize:   200,
		TrainWindows: 40,
		EvalWindows:  40,
		Workers:      1,
	}
	base, err := labSystem(t, nil).RunAttack(attack)
	if err != nil {
		t.Fatal(err)
	}
	zeroed, err := labSystem(t, func(c *Config) {
		c.PathImpair = &netem.Impairment{}
		c.TapImpair = &netem.Impairment{}
		c.EntryTapImpair = &netem.Impairment{}
	}).RunAttack(attack)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroed, base) {
		t.Errorf("all-zero impairments perturbed the attack: %+v != %+v", zeroed, base)
	}
}

// TestEnabledImpairmentReachesStreams: heavy tap loss must move the
// attack result — the knob is actually wired into the capture path.
func TestEnabledImpairmentReachesStreams(t *testing.T) {
	attack := AttackConfig{
		Feature:      analytic.FeatureEntropy,
		WindowSize:   200,
		TrainWindows: 40,
		EvalWindows:  40,
		Workers:      1,
	}
	base, err := labSystem(t, nil).RunAttack(attack)
	if err != nil {
		t.Fatal(err)
	}
	impaired, err := labSystem(t, func(c *Config) {
		c.TapImpair = &netem.Impairment{GE: &netem.GilbertElliott{
			PGoodBad: 0.2, PBadGood: 0.3, LossBad: 0.8}}
	}).RunAttack(attack)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(impaired, base) {
		t.Error("a heavy bursty tap impairment left the attack bit-identical")
	}
}

// TestChurnedDisclosureRuns: a churned population runs end to end and
// reports presence schedules for every user through the engine.
func TestChurnedDisclosureRuns(t *testing.T) {
	s := labSystem(t, nil)
	res, err := s.RunDisclosure(PopulationSpec{
		Users:      12,
		Recipients: 30,
		Churn:      &ChurnSpec{MeanOn: 0.2, MeanOff: 0.2},
	}, population.DisclosureConfig{MaxRounds: 200, ChurnAware: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 200 {
		t.Errorf("observed %d rounds, want the full 200 budget", res.Rounds)
	}
	if len(res.Targets) == 0 {
		t.Fatal("no targets reported")
	}
}
