package core

import (
	"errors"
	"fmt"

	"linkpad/internal/adversary"
	"linkpad/internal/analytic"
	"linkpad/internal/cascade"
	"linkpad/internal/gateway"
	"linkpad/internal/netem"
	"linkpad/internal/obs"
	"linkpad/internal/population"
	"linkpad/internal/traffic"
	"linkpad/internal/xrand"
)

// Population entry points: a System description plus a PopulationSpec
// instantiate the multi-user engine (internal/population) against the
// system's rate classes and padding policy. Every user's streams derive
// from (seed, class, userID) in the population stream domain
// (domains.go), so populations never share randomness with the replica
// or session protocols, and users — the unit of parallelism — never
// share randomness with each other.

// PopulationSpec describes a user population layered on the system: who
// sends (rate classes via ClassMix), to whom (contact profiles over a
// shared recipient space), and how much cover traffic accompanies the
// real messages.
type PopulationSpec struct {
	// Users is the population size (at least 2).
	Users int
	// Recipients is the size of the shared recipient space (at least 4).
	Recipients int
	// Contacts is each user's contact-set size (0 = default 3); at most
	// Recipients/2.
	Contacts int
	// ContactWeight is the probability mass a user's messages place on
	// its contact set (0 = default 0.7).
	ContactWeight float64
	// CoverRate adds a per-user dummy (cover) Poisson stream at
	// CoverRate × the user's payload rate. Cover messages are
	// indistinguishable at the ingress tap and are delivered to
	// uniformly random recipients. Mutually exclusive with CoverToPPS.
	CoverRate float64
	// CoverToPPS instead pads each user's total send rate up to an
	// absolute target (packets/second): cover rate = max(0,
	// CoverToPPS − payload rate). This is how policies are compared at
	// matched overhead. Mutually exclusive with CoverRate.
	CoverToPPS float64
	// ClassMix weighs the system's rate classes in the population
	// (len(Rates) entries, positive); nil means equal shares. Users are
	// striped deterministically: user u's class is fixed by u alone.
	ClassMix []float64
	// Churn gives every user a seeded presence schedule: alternating
	// exponential online/offline periods drawn from the user's
	// popRoleChurn stream. An offline user sends nothing (round engine)
	// and its padded link goes dark (flow observations). Nil means a
	// static population.
	Churn *ChurnSpec
	// Dummies selects the population's dummy policy for disclosure runs:
	// how users address their cover messages (population.DummyNone keeps
	// them uniform, DummyUniform demands uniform receiver-bound cover
	// explicitly, DummyAdaptive re-addresses targets' cover to the
	// estimator's current top suspects). Uniform and adaptive require
	// cover traffic (CoverRate or CoverToPPS). The per-flow protocols
	// ignore the policy — dummies only matter where recipients are
	// observed.
	Dummies population.DummyPolicy
}

// ChurnSpec describes population churn: users alternate between online
// periods of mean MeanOn seconds and offline periods of mean MeanOff
// seconds, independently per user. The stationary fraction of the
// population online is MeanOn/(MeanOn+MeanOff).
type ChurnSpec struct {
	// MeanOn is the mean online-period duration in seconds (positive).
	MeanOn float64
	// MeanOff is the mean offline-period duration in seconds (positive).
	MeanOff float64
}

// Validate checks the churn parameters.
func (c *ChurnSpec) Validate() error {
	if c == nil {
		return nil
	}
	if !(c.MeanOn > 0) || !(c.MeanOff > 0) {
		return errors.New("core: churn mean on/off durations must be positive")
	}
	return nil
}

// withDefaults fills zero fields.
func (p PopulationSpec) withDefaults() PopulationSpec {
	if p.Contacts == 0 {
		p.Contacts = 3
	}
	if p.ContactWeight == 0 {
		p.ContactWeight = 0.7
	}
	return p
}

// validate checks the spec against the system.
func (s *System) validatePopulation(spec PopulationSpec) error {
	if spec.Users < 2 {
		return errors.New("core: population needs at least two users")
	}
	if spec.Recipients < 4 {
		return errors.New("core: population needs at least four recipients")
	}
	if spec.Contacts < 1 || spec.Contacts > spec.Recipients/2 {
		return fmt.Errorf("core: population contacts %d out of range [1, %d]",
			spec.Contacts, spec.Recipients/2)
	}
	if !(spec.ContactWeight > 0 && spec.ContactWeight <= 1) {
		return errors.New("core: population contact weight must be in (0,1]")
	}
	if spec.CoverRate < 0 || spec.CoverToPPS < 0 {
		return errors.New("core: population cover rates must be non-negative")
	}
	if spec.CoverRate > 0 && spec.CoverToPPS > 0 {
		return errors.New("core: CoverRate and CoverToPPS are mutually exclusive")
	}
	if err := spec.Churn.Validate(); err != nil {
		return err
	}
	switch spec.Dummies {
	case population.DummyNone:
	case population.DummyUniform, population.DummyAdaptive:
		if spec.CoverRate <= 0 && spec.CoverToPPS <= 0 {
			return fmt.Errorf("core: the %s dummy policy requires cover traffic (CoverRate or CoverToPPS)",
				spec.Dummies)
		}
	default:
		return fmt.Errorf("core: unknown dummy policy %d", int(spec.Dummies))
	}
	return s.validateClassMix(spec.ClassMix)
}

// validateClassMix checks a class-weight vector against the system's
// rate classes (nil means equal shares and is always valid). Shared by
// the population and cascade specs.
func (s *System) validateClassMix(mix []float64) error {
	if mix == nil {
		return nil
	}
	if len(mix) != len(s.cfg.Rates) {
		return fmt.Errorf("core: ClassMix has %d entries for %d rate classes",
			len(mix), len(s.cfg.Rates))
	}
	for i, w := range mix {
		if !(w > 0) {
			return fmt.Errorf("core: ClassMix entry %d must be positive", i)
		}
	}
	return nil
}

// classCum returns the cumulative normalized class weights for a mix
// vector (nil = equal shares). Shared by the population and cascade
// protocols, which stripe their users/flows over the same rule.
func (s *System) classCum(mix []float64) []float64 {
	m := len(s.cfg.Rates)
	cum := make([]float64, m)
	var total float64
	for c := 0; c < m; c++ {
		w := 1.0
		if mix != nil {
			w = mix[c]
		}
		total += w
		cum[c] = total
	}
	for c := range cum {
		cum[c] /= total
	}
	return cum
}

// classOf stripes user u's class deterministically by the cumulative
// weights: the class depends only on (u, Users, ClassMix), never on any
// random stream.
func classOf(u, users int, cum []float64) int {
	x := (float64(u) + 0.5) / float64(users)
	for c, v := range cum {
		if x < v {
			return c
		}
	}
	return len(cum) - 1
}

// coverPPS returns user-level cover rate for a payload rate.
func (spec PopulationSpec) coverPPS(payload float64) float64 {
	if spec.CoverToPPS > 0 {
		if c := spec.CoverToPPS - payload; c > 0 {
			return c
		}
		return 0
	}
	return spec.CoverRate * payload
}

// NewPopulation instantiates the multi-user engine: every user gets a
// private message source (the system's payload model at its class rate),
// an optional cover source, and a recipient profile, all derived from
// (seed, class, userID) role streams in the population domain. The
// engine materializes users lazily — the builder below is a pure
// function of the user index, so users hold no resident state until the
// simulation horizon first reaches one of their arrivals.
func (s *System) NewPopulation(spec PopulationSpec) (*population.Engine, error) {
	spec = spec.withDefaults()
	if err := s.validatePopulation(spec); err != nil {
		return nil, err
	}
	cum := s.classCum(spec.ClassMix)
	build := func(u int) (population.User, error) {
		class := classOf(u, spec.Users, cum)
		pps := s.cfg.Rates[class].PPS
		payload, err := s.payloadSource(class,
			xrand.New(s.streamSeed(class, populationStreamID(u, popRolePayload))))
		if err != nil {
			return population.User{}, err
		}
		var cover traffic.Source
		if c := spec.coverPPS(pps); c > 0 {
			cover, err = traffic.NewPoisson(c,
				xrand.New(s.streamSeed(class, populationStreamID(u, popRoleCover))))
			if err != nil {
				return population.User{}, err
			}
		}
		prng := xrand.New(s.streamSeed(class, populationStreamID(u, popRoleProfile)))
		profile, err := population.NewProfile(spec.Recipients, spec.Contacts, spec.ContactWeight, prng)
		if err != nil {
			return population.User{}, err
		}
		presence, err := s.presenceSchedule(spec, class, u)
		if err != nil {
			return population.User{}, err
		}
		// The profile construction consumed a prefix of the role stream;
		// the same stream continues as the user's per-message recipient
		// draws, keeping every draw a function of (seed, class, userID).
		return population.User{
			Class:    class,
			Messages: payload,
			Cover:    cover,
			Profile:  profile,
			RNG:      prng,
			Presence: presence,
		}, nil
	}
	return population.NewLazyEngine(spec.Users, spec.Recipients, build)
}

// presenceSchedule builds user u's churn presence schedule from its
// popRoleChurn stream, or nil for a static population. The schedule is a
// pure function of (seed, class, userID), so rebuilding the population
// reproduces it exactly — checkpoints never serialize it.
func (s *System) presenceSchedule(spec PopulationSpec, class, user int) (*traffic.OnOffSchedule, error) {
	if spec.Churn == nil {
		return nil, nil
	}
	return traffic.NewOnOffSchedule(spec.Churn.MeanOn, spec.Churn.MeanOff,
		xrand.New(s.streamSeed(class, populationStreamID(user, popRoleChurn))))
}

// FlowCorrConfig parameterizes the population flow-correlation attack
// run through a System: the attack-side knobs mirror
// population.FlowCorrConfig, plus the off-line training effort for the
// PIAT class classifiers.
type FlowCorrConfig struct {
	// Duration is the per-flow observation time in stream seconds
	// (0 = 60).
	Duration float64
	// RateWindow is the throughput-fingerprint bin width (0 = 1 s).
	RateWindow float64
	// CorrWeight scales rate correlation against the class posterior
	// (0 = default).
	CorrWeight float64
	// Features are the PIAT statistics the class classifiers use; empty
	// runs a pure rate-correlation attack. Ignored when Raw is set (an
	// unpadded link needs no class fingerprint).
	Features []analytic.Feature
	// FeatureWindow is the PIAT count per feature value (0 = 200).
	FeatureWindow int
	// TrainWindows is the number of off-line training windows per class
	// for the classifiers (0 = 120).
	TrainWindows int
	// Raw bypasses the padding entirely — the egress flow is the raw
	// payload stream — as the no-countermeasure baseline.
	Raw bool
	// MaskAbsent makes the rate correlation churn-aware: correlations are
	// computed only over windows where the egress flow emitted (see
	// population.FlowCorrConfig.MaskAbsent). Meaningful only with
	// PopulationSpec.Churn.
	MaskAbsent bool
	// Workers bounds the per-user/per-window parallelism; results are
	// identical at any width. Zero means all CPUs.
	Workers int
}

// withDefaults fills zero fields.
func (c FlowCorrConfig) withDefaults() FlowCorrConfig {
	if c.Duration == 0 {
		c.Duration = 60
	}
	if c.FeatureWindow == 0 {
		c.FeatureWindow = 200
	}
	if c.TrainWindows == 0 {
		c.TrainWindows = 120
	}
	if c.Raw {
		c.Features = nil
	}
	return c
}

// rawLink is the unpadded baseline link: egress equals ingress.
type rawLink struct {
	src traffic.Source
	now float64
	tap func(t float64)
}

// Next returns the next (unpadded) departure time.
func (l *rawLink) Next() float64 {
	l.now += l.src.Next()
	if l.tap != nil {
		l.tap(l.now)
	}
	return l.now
}

// flowLink assembles one population user link: the user's merged
// payload+cover stream entering the system's padding policy and the
// shared observation chain (padStream), with an optional ingress tap
// observing the merged arrivals before the padding. Under churn the
// user's presence schedule gates both sides: offline periods generate no
// ingress arrivals (the sender is away) and emit no egress packets (the
// padded link itself is down, so even timer-driven dummies stop). All
// randomness comes from master, so a link is deterministic from its
// stream seed; the presence schedule rides its own role stream.
func (s *System) flowLink(spec PopulationSpec, class int, raw bool, presence *traffic.OnOffSchedule, master *xrand.Rand, tap func(t float64), sh *obs.Shard) (netem.TimeStream, error) {
	payload, err := s.payloadSource(class, master.Split())
	if err != nil {
		return nil, err
	}
	var src traffic.Source = payload
	if c := spec.coverPPS(s.cfg.Rates[class].PPS); c > 0 {
		cover, err := traffic.NewPoisson(c, master.Split())
		if err != nil {
			return nil, err
		}
		src, err = traffic.NewSuperpose(payload, cover)
		if err != nil {
			return nil, err
		}
	}
	if presence != nil {
		src, err = traffic.NewGated(src, presence)
		if err != nil {
			return nil, err
		}
	}
	stream, _, err := s.padStream(src, raw, master, tap, sh)
	if err != nil {
		return nil, err
	}
	if presence != nil {
		stream, err = netem.NewGateStream(stream, presence)
		if err != nil {
			return nil, err
		}
	}
	return stream, nil
}

// padStream routes an arbitrary arrival process through the system's
// padding policy (CIT/VIT/adaptive gateway, or mix, via the shared
// timerPolicy / mixSpacing construction) and the system-level
// observation chain — network path and tap imperfections — with an
// optional ingress tap observing the arrivals before the padding. raw
// bypasses the padding (the unpadded anchor still crosses the network
// and the tap, so comparisons isolate the policy alone). The returned
// probe reads the padding stage's overhead counters (nil for raw
// links). The population and active protocols share this construction;
// master is consumed in a fixed order, so the chain is deterministic
// from its stream seed.
func (s *System) padStream(src traffic.Source, raw bool, master *xrand.Rand, tap func(t float64), sh *obs.Shard) (netem.TimeStream, cascade.HopProbe, error) {
	var stream netem.TimeStream
	var probe cascade.HopProbe
	var err error
	switch {
	case raw:
		stream = &rawLink{src: src, tap: tap}
	case s.cfg.Mix != nil:
		mix, err := gateway.NewMix(gateway.MixConfig{
			K:           s.cfg.Mix.K,
			SendSpacing: s.mixSpacing(),
			Payload:     src,
			Jitter:      s.cfg.Jitter,
			RNG:         master.Split(),
			ArrivalTap:  tap,
			Probe:       sh,
		})
		if err != nil {
			return nil, nil, err
		}
		probe = func() cascade.HopStats {
			return cascade.HopStats{Policy: "MIX", Emitted: mix.Packets()}
		}
		stream = mix
	default:
		policy, err := s.timerPolicy(master)
		if err != nil {
			return nil, nil, err
		}
		gw, err := gateway.New(gateway.Config{
			Policy:     policy,
			Jitter:     s.cfg.Jitter,
			Payload:    src,
			RNG:        master.Split(),
			ArrivalTap: tap,
			Probe:      sh,
		})
		if err != nil {
			return nil, nil, err
		}
		name := s.policyName()
		probe = func() cascade.HopStats {
			st := gw.Stats()
			return cascade.HopStats{Policy: name, Emitted: st.Fires, Dummies: st.Dummies}
		}
		stream = gw
	}
	stream, err = s.observationChain(stream, master, sh)
	if err != nil {
		return nil, nil, err
	}
	return stream, probe, nil
}

// policyName names the system-level padding policy for overhead reports.
func (s *System) policyName() string {
	switch {
	case s.cfg.Mix != nil:
		return "MIX"
	case s.cfg.Adaptive != nil:
		return "ADAPTIVE"
	case s.cfg.SigmaT > 0:
		return "VIT"
	default:
		return "CIT"
	}
}

// phantomUserBase offsets the user/flow indices of the adversary's
// off-line training flows, so the training corpus and the run-time
// observations use disjoint realizations within their domain. The
// population and cascade protocols share this convention (each inside
// its own stream domain); real populations and cascades stay far below
// this index.
const phantomUserBase = 1 << 24

// phantomFlowIndex is the shared phantom index rule: training window w
// of class `class` maps into the phantom block, TrainWindows slots per
// class. All three flow protocols train through this one rule.
func phantomFlowIndex(class, trainWindows, w int) int {
	return phantomUserBase + class*trainWindows + w
}

// flowCorrelation runs the per-flow correlation attack end to end:
// the adversary first trains per-class PIAT classifiers on phantom
// training flows (fresh realizations of the same link construction, so
// training observes cover traffic and batching exactly as run time
// does), then observes every user's padded flow for cfg.Duration and
// matches egress flows to ingress users by throughput-fingerprint
// correlation plus class posteriors. Results are identical at any
// cfg.Workers width; users are the unit of parallelism.
func (s *System) flowCorrelation(spec PopulationSpec, cfg FlowCorrConfig) (*population.FlowCorrResult, error) {
	spec = spec.withDefaults()
	if err := s.validatePopulation(spec); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.TrainWindows < 2 {
		return nil, errors.New("core: flow correlation needs at least two training windows per class")
	}
	cum := s.classCum(spec.ClassMix)

	// Off-line phase: per-class feature densities from phantom flows.
	classifiers, exts, err := s.trainExitClassifiers(cfg.Features,
		cfg.TrainWindows, cfg.FeatureWindow, cfg.Workers,
		func(class, w int) (adversary.PIATSource, error) {
			phantom := phantomFlowIndex(class, cfg.TrainWindows, w)
			master := xrand.New(s.streamSeed(class,
				populationStreamID(phantom, popRoleLink)))
			// Training flows churn exactly as run-time flows do (their own
			// presence realizations), so the classifiers are trained on the
			// gap structure they will be asked to classify.
			presence, err := s.presenceSchedule(spec, class, phantom)
			if err != nil {
				return nil, err
			}
			sh := obs.NewShard()
			link, err := s.flowLink(spec, class, cfg.Raw, presence, master, nil, sh)
			if err != nil {
				return nil, err
			}
			d := netem.NewDiffer(link)
			d.SetProbe(sh)
			return d, nil
		})
	if err != nil {
		return nil, err
	}

	// Run-time phase: observe every user's flow and correlate.
	sim := func(u int, duration float64) (*population.Flow, error) {
		class := classOf(u, spec.Users, cum)
		master := xrand.New(s.streamSeed(class, populationStreamID(u, popRoleLink)))
		flow := &population.Flow{Class: class}
		presence, err := s.presenceSchedule(spec, class, u)
		if err != nil {
			return nil, err
		}
		// The ingress tap is the adversary's entry recorder; an impaired
		// tap (EntryTapImpair) observes it through per-flow loss/dup/
		// reordering on the flow's popRoleTap stream.
		tap := func(t float64) {
			if t <= duration {
				flow.Ingress = append(flow.Ingress, t)
			}
		}
		sh := obs.NewShard()
		tap, err = s.entryTapWrap(tap, class, populationStreamID(u, popRoleTap), sh)
		if err != nil {
			return nil, err
		}
		link, err := s.flowLink(spec, class, cfg.Raw, presence, master, tap, sh)
		if err != nil {
			return nil, err
		}
		for {
			t := link.Next()
			if t > duration {
				break
			}
			flow.Egress = append(flow.Egress, t)
		}
		// The flow is finished and this worker owns the shard: publish the
		// chain's counters.
		sh.Flush()
		return flow, nil
	}
	return population.CorrelateFlows(sim, spec.Users, population.FlowCorrConfig{
		Duration:      cfg.Duration,
		RateWindow:    cfg.RateWindow,
		CorrWeight:    cfg.CorrWeight,
		FeatureWindow: cfg.FeatureWindow,
		Classifiers:   classifiers,
		Extractors:    exts,
		MaskAbsent:    cfg.MaskAbsent,
		Workers:       cfg.Workers,
	})
}
