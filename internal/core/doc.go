// Package core assembles the paper's complete system (Fig. 1): protected
// payload sources feeding a link-padding sender gateway, an unprotected
// network path of routers carrying crossover traffic, and an adversary
// tap whose observations drive the statistical traffic-analysis attack.
// A System is a declarative description (Config) validated once; every
// run method derives what it needs from the description, so one System
// answers attack, theory and design questions consistently.
//
// Five observation scenarios are layered on the same description, each
// with its own entry points:
//
//   - replica (RunAttack, RunAttackSet): i.i.d. padded windows from a
//     cold start, the paper's original protocol;
//   - session (NewSession, TrainSessionAttack, RunAttackSession): one
//     continuous padded timeline per class whose layers carry state
//     across consecutive windows, with anytime (SPRT-style) decisions;
//   - population (NewPopulation, RunDisclosure, RunFlowCorrelation):
//     N heterogeneous senders share the padded infrastructure against a
//     global passive adversary;
//   - cascade (NewCascade, RunCascadeCorrelation): flows cross routes of
//     K re-padding hops, observed end to end;
//   - active (NewActive, RunActiveDetection): an attacker injects keyed
//     delay/chaff watermarks into the payload before the countermeasure
//     and re-detects them at the exit tap, across any of the four
//     protocols above.
//
// Determinism contract: every stream the System hands out is an
// independent deterministic replica derived from (master seed, class,
// stream ID) — so the adversary's off-line training corpus (paper §3.3:
// "the adversary can simulate the whole system") and the run-time
// observations are distinct realizations of the same system, exactly the
// paper's threat model. Stream IDs are partitioned into per-protocol
// domains (domains.go, collision-tested), replicas/sessions/users/flows
// are the units of parallelism, and every result is byte-identical at
// any worker count.
//
// Allocation discipline: the classification hot path is allocation-free
// in steady state — windows are simulated once and reduced through every
// feature extractor in one streaming pass (adversary.MultiPipeline),
// with per-worker buffers reused across trials.
package core
