package core

import (
	"errors"
	"fmt"

	"linkpad/internal/adversary"
	"linkpad/internal/analytic"
	"linkpad/internal/bayes"
	"linkpad/internal/netem"
	"linkpad/internal/par"
)

// Session is one continuous observation of a class: a single realization
// of the padded stream — payload arrivals, gateway queue and timer,
// network queues, tap imperfections — whose PIAT sequence is consumed
// incrementally. Consecutive windows read from a Session share the
// stream's carried state and advance its diurnal profiles in real stream
// time, implementing the paper's consecutive-window threat model (where
// PIATSource replicas restart every window at time zero).
//
// A Session is deterministic from (system seed, class, sessionID): the
// same triple reproduces the identical timeline. It is not safe for
// concurrent use; parallelize across sessions, never within one.
type Session struct {
	class int
	id    uint64
	tap   *netem.Differ
}

// NewSession opens a continuous observation session for the class.
// sessionID distinguishes sessions the way streamID distinguishes
// replicas; session streams are domain-separated from replica streams, so
// equal numeric IDs in the two protocols still observe independent
// realizations.
func (s *System) NewSession(class int, sessionID uint64) (*Session, error) {
	tap, err := s.tap(class, sessionID|sessionDomain)
	if err != nil {
		return nil, err
	}
	return &Session{class: class, id: sessionID, tap: tap}, nil
}

// Class returns the payload class this session observes.
func (sn *Session) Class() int { return sn.class }

// ID returns the session identifier.
func (sn *Session) ID() uint64 { return sn.id }

// Source exposes the session's continuous PIAT stream.
func (sn *Session) Source() adversary.PIATSource { return sn.tap }

// Now returns the absolute stream time, in seconds, of the most recently
// observed packet (0 before any observation).
func (sn *Session) Now() float64 { return sn.tap.Now() }

// Observed returns how many PIATs the session has consumed, warm-up
// included.
func (sn *Session) Observed() uint64 { return sn.tap.Observed() }

// WarmUp consumes and discards packets PIATs, running the whole chain —
// gateway queue, timer phase, network queues, diurnal clock — past its
// cold-start transient before the adversary starts watching. Counts of
// zero or below are a no-op (warm-up disabled).
func (sn *Session) WarmUp(packets int) { sn.tap.Skip(packets) }

// SessionAttackConfig describes the continuous-stream attack: the
// adversary trains on continuous sessions, then watches further sessions
// window by window, accumulating evidence into an anytime (SPRT-style)
// decision instead of judging every window in isolation.
type SessionAttackConfig struct {
	// Feature is the statistic the adversary classifies on.
	Feature analytic.Feature
	// WindowSize is the per-window sample size n.
	WindowSize int
	// TrainSessions is the number of continuous training sessions per
	// class; the training corpus is drawn as consecutive windows from
	// these streams (warm-up included), matching the run-time protocol.
	TrainSessions int
	// TrainWindows is the total number of training windows per class,
	// split evenly across the training sessions (rounded up).
	TrainWindows int
	// EvalSessions is the number of evaluation sessions per class.
	EvalSessions int
	// MaxWindows is the observation budget per evaluation session: the
	// adversary stops at the anytime decision or after this many windows,
	// whichever comes first.
	MaxWindows int
	// Confidence is the posterior threshold of the anytime decision
	// (e.g. 0.99); it must exceed the largest class prior (enforced —
	// a lower threshold would decide on zero evidence). Confidence 1
	// disables the anytime stop entirely: every session observes its
	// full MaxWindows budget and decides by maximum posterior at the end
	// (used when the per-window statistics must cover a fixed matched
	// budget, as in the ablation-windowing experiment).
	Confidence float64
	// WarmupPackets is the number of PIATs discarded at the start of
	// every session (training and evaluation) before observation; 0
	// selects the default (100 packets ≈ 1 s of stream at τ = 10 ms),
	// negative disables warm-up.
	WarmupPackets int
	// EntropyBinWidth overrides the entropy histogram bin width (0 =
	// default 2 µs).
	EntropyBinWidth float64
	// GaussianFit replaces the KDE training with a parametric normal fit.
	GaussianFit bool
	// TrainBase/EvalBase pick the session ID ranges; leave zero for the
	// defaults (training on base 1, evaluation on base 2).
	TrainBase, EvalBase uint64
	// Workers bounds session-level parallelism; windows within a session
	// are inherently sequential. Results are identical for any worker
	// count. Zero means all CPUs.
	Workers int
}

// withDefaults fills zero fields.
func (a SessionAttackConfig) withDefaults() SessionAttackConfig {
	if a.WindowSize == 0 {
		a.WindowSize = 1000
	}
	if a.TrainSessions == 0 {
		a.TrainSessions = 8
	}
	if a.TrainWindows == 0 {
		a.TrainWindows = 200
	}
	if a.EvalSessions == 0 {
		a.EvalSessions = 100
	}
	if a.MaxWindows == 0 {
		a.MaxWindows = 10
	}
	if a.Confidence == 0 {
		a.Confidence = 0.99
	}
	if a.WarmupPackets == 0 {
		// Negative (disabled) stays negative so re-applying defaults is
		// idempotent; Session.WarmUp treats non-positive counts as no-op.
		a.WarmupPackets = 100
	}
	if a.TrainBase == 0 {
		a.TrainBase = 1
	}
	if a.EvalBase == 0 {
		a.EvalBase = 2
	}
	return a
}

// SessionAttackResult reports one continuous-stream attack.
type SessionAttackResult struct {
	// Feature, WindowSize, Sessions, MaxWindows and Confidence echo the
	// attack parameters (Sessions is EvalSessions).
	Feature    analytic.Feature
	WindowSize int
	Sessions   int
	MaxWindows int
	Confidence float64
	// DetectionRate is the probability the session's final decision —
	// the anytime decision, or the maximum-posterior class when the
	// budget runs out undecided — identifies the true class.
	DetectionRate float64
	// Confusion is the confusion matrix of final decisions.
	Confusion *bayes.Confusion
	// DecidedRate is the fraction of sessions whose posterior reached
	// Confidence within the budget.
	DecidedRate float64
	// MeanWindowsToDecision averages the number of observed windows at
	// the moment of decision, over decided sessions (0 if none decided).
	MeanWindowsToDecision float64
	// MeanTimeToDecision averages the observed stream time, in seconds,
	// from the end of warm-up to the decision, over decided sessions.
	MeanTimeToDecision float64
	// WindowDetectionRate is the single-window batch rule's accuracy over
	// every window observed during evaluation. With the anytime stop
	// disabled (Confidence 1) every session contributes its full budget
	// and this is the apples-to-apples number against
	// AttackResult.DetectionRate, measured on continuous windows instead
	// of i.i.d. replicas (ablation-windowing uses it this way). Under an
	// anytime stop it is selection-biased: easy sessions stop early and
	// contribute few windows, hard ones contribute their whole budget.
	WindowDetectionRate float64
}

// validateEvalPhase rejects run-time misconfiguration shared by Evaluate
// and RunAttackSession's fail-fast path, so both reject identically.
func (a SessionAttackConfig) validateEvalPhase() error {
	if uint32(a.TrainBase) == uint32(a.EvalBase) {
		// Sessions are spread across the high bits (sessionID), so bases
		// sharing their low 32 bits would alias evaluation sessions with
		// training sessions, not just at equal bases.
		return errors.New("core: training and evaluation session ID bases must differ in their low 32 bits")
	}
	if !(a.Confidence > 0 && a.Confidence <= 1) {
		return errors.New("core: confidence must be in (0,1]; 1 disables the anytime stop")
	}
	return nil
}

// sessionID derives the ID of session s in a phase's ID range, mirroring
// windowStreamID's spreading.
func sessionID(base uint64, s int) uint64 {
	return base + (uint64(s)+1)<<32
}

// trainSessionSource opens, warms and returns the continuous stream of
// one training session.
func (s *System) trainSessionSource(class int, base uint64, warmup int) adversary.SessionFactory {
	return func(i int) (adversary.PIATSource, error) {
		sess, err := s.NewSession(class, sessionID(base, i))
		if err != nil {
			return nil, err
		}
		sess.WarmUp(warmup)
		return sess.Source(), nil
	}
}

// sessionOutcome is one evaluation session's record; every session writes
// only its own slot, so the reduction is identical at any worker count.
type sessionOutcome struct {
	pred          int
	decided       bool
	windows       int     // windows observed at decision (or budget)
	streamTime    float64 // observed stream seconds at decision
	windowCorrect int     // single-window batch decisions that were right
	windowTotal   int
}

// SessionAttacker is a continuous-stream adversary after the off-line
// phase: classifiers fitted to consecutive training windows, ready to
// evaluate fresh sessions — possibly several times with different
// run-time knobs (confidence, budget, session count) without repeating
// the training simulation.
type SessionAttacker struct {
	sys *System
	cfg SessionAttackConfig // resolved training configuration
	cls *bayes.Classifier
}

// TrainSessionAttack runs the off-line phase of the continuous-stream
// attack: per class, consecutive training windows are drawn from
// continuous sessions (warm-up included, parallel across sessions) and
// the class-conditional feature densities are fitted. Only the
// training-phase fields of cfg are consumed; pass the evaluation knobs
// to Evaluate.
func (s *System) TrainSessionAttack(cfg SessionAttackConfig) (*SessionAttacker, error) {
	cfg = cfg.withDefaults()
	if cfg.WindowSize < 2 {
		return nil, errors.New("core: window size must be at least 2")
	}
	if cfg.TrainSessions > cfg.TrainWindows {
		cfg.TrainSessions = cfg.TrainWindows
	}
	m := len(s.cfg.Rates)
	labels := s.Labels()
	exts := []adversary.Extractor{{Feature: cfg.Feature, EntropyBinWidth: cfg.EntropyBinWidth}}
	wps := (cfg.TrainWindows + cfg.TrainSessions - 1) / cfg.TrainSessions
	perClass := make([][]float64, m)
	for c := 0; c < m; c++ {
		mat, err := adversary.SessionFeatureMatrix(
			s.trainSessionSource(c, cfg.TrainBase, cfg.WarmupPackets), exts,
			cfg.TrainSessions, wps, cfg.WindowSize, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: training class %q: %w", labels[c], err)
		}
		perClass[c] = mat[0]
	}
	var cls *bayes.Classifier
	var err error
	if cfg.GaussianFit {
		cls, err = bayes.TrainGaussian(labels, perClass, nil)
	} else {
		cls, err = bayes.TrainKDE(labels, perClass, nil)
	}
	if err != nil {
		return nil, err
	}
	return &SessionAttacker{sys: s, cfg: cfg, cls: cls}, nil
}

// Evaluate runs the run-time phase against fresh evaluation sessions:
// anytime classification with the cumulative log-posterior rule,
// reporting detection, decision coverage and time-to-detection
// statistics. The evaluation knobs (EvalSessions, MaxWindows,
// Confidence, EvalBase, Workers) come from cfg; the training-phase
// fields are those the attacker was trained with. Results are identical
// for any worker count.
func (a *SessionAttacker) Evaluate(cfg SessionAttackConfig) (*SessionAttackResult, error) {
	eval := a.cfg
	cfg = cfg.withDefaults()
	eval.EvalSessions = cfg.EvalSessions
	eval.MaxWindows = cfg.MaxWindows
	eval.Confidence = cfg.Confidence
	eval.EvalBase = cfg.EvalBase
	eval.Workers = cfg.Workers
	cfg = eval
	if err := cfg.validateEvalPhase(); err != nil {
		return nil, err
	}
	if cfg.EvalSessions < 1 || cfg.MaxWindows < 1 {
		return nil, errors.New("core: need at least one evaluation session and one window of budget")
	}
	s, cls := a.sys, a.cls
	if cfg.Confidence < 1 {
		// A threshold at or below the largest prior "decides" on zero
		// evidence; reject it rather than return meaningless statistics.
		var maxPrior float64
		for i := 0; i < cls.NumClasses(); i++ {
			if p := cls.Prior(i); p > maxPrior {
				maxPrior = p
			}
		}
		if cfg.Confidence <= maxPrior {
			return nil, fmt.Errorf("core: confidence %v does not exceed the largest class prior %v",
				cfg.Confidence, maxPrior)
		}
	}
	m := len(s.cfg.Rates)
	exts := []adversary.Extractor{{Feature: cfg.Feature, EntropyBinWidth: cfg.EntropyBinWidth}}
	anytime := cfg.Confidence < 1

	// Run-time: every (class, session) pair is an independent continuous
	// observation with its own anytime decision. Feature pipelines are
	// per-worker scratch (the SessionFeatureMatrix pattern); only the
	// Sequential accumulator is per-session state.
	total := m * cfg.EvalSessions
	outcomes := make([]sessionOutcome, total)
	workers := par.Workers(cfg.Workers)
	if workers > total {
		workers = total
	}
	pipes := make([]*adversary.MultiPipeline, workers)
	outs := make([][]float64, workers)
	for i := range pipes {
		mp, err := adversary.NewMultiPipeline(exts)
		if err != nil {
			return nil, err
		}
		pipes[i] = mp
		outs[i] = make([]float64, 1)
	}
	err := par.MapWorker(total, workers, func(worker, i int) error {
		class, si := i/cfg.EvalSessions, i%cfg.EvalSessions
		sess, err := s.NewSession(class, sessionID(cfg.EvalBase, si))
		if err != nil {
			return err
		}
		sess.WarmUp(cfg.WarmupPackets)
		obsStart := sess.Now()
		ext, err := adversary.NewOnlineExtractorShared(pipes[worker], sess.Source(), cfg.WindowSize)
		if err != nil {
			return err
		}
		seq := cls.NewSequential()
		out := outs[worker]
		rec := &outcomes[i]
		for w := 0; w < cfg.MaxWindows; w++ {
			if err := ext.NextWindow(out); err != nil {
				return err
			}
			rec.windowTotal++
			// Observe returns the single-window decision from the same
			// density pass the sequential rule consumes.
			if seq.Observe(out[0]) == class {
				rec.windowCorrect++
			}
			if !anytime {
				continue
			}
			if pred, ok := seq.Decided(cfg.Confidence); ok {
				rec.pred, rec.decided = pred, true
				rec.windows = seq.Windows()
				rec.streamTime = sess.Now() - obsStart
				return nil // the anytime adversary stops observing here
			}
		}
		rec.pred, _ = seq.Best()
		rec.windows = seq.Windows()
		rec.streamTime = sess.Now() - obsStart
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Deterministic reduction in session order.
	cm := bayes.NewConfusion(s.Labels())
	var decided, winCorrect, winTotal int
	var sumWindows, sumTime float64
	for i := range outcomes {
		rec := &outcomes[i]
		cm.Add(i/cfg.EvalSessions, rec.pred)
		winCorrect += rec.windowCorrect
		winTotal += rec.windowTotal
		if rec.decided {
			decided++
			sumWindows += float64(rec.windows)
			sumTime += rec.streamTime
		}
	}
	res := &SessionAttackResult{
		Feature:       cfg.Feature,
		WindowSize:    cfg.WindowSize,
		Sessions:      cfg.EvalSessions,
		MaxWindows:    cfg.MaxWindows,
		Confidence:    cfg.Confidence,
		DetectionRate: cm.DetectionRate(),
		Confusion:     cm,
		DecidedRate:   float64(decided) / float64(total),
	}
	if decided > 0 {
		res.MeanWindowsToDecision = sumWindows / float64(decided)
		res.MeanTimeToDecision = sumTime / float64(decided)
	}
	if winTotal > 0 {
		res.WindowDetectionRate = float64(winCorrect) / float64(winTotal)
	}
	return res, nil
}

// sessionAttack runs the continuous-stream attack end to end:
// TrainSessionAttack followed by Evaluate with the same configuration.
// Sessions (training and evaluation) are deterministic from (seed,
// class, sessionID) and run on up to cfg.Workers goroutines; results are
// identical for any worker count. Use the two phases separately to
// evaluate one training under several run-time knobs.
func (s *System) sessionAttack(cfg SessionAttackConfig) (*SessionAttackResult, error) {
	cfg = cfg.withDefaults()
	// Fail fast on run-time misconfiguration before paying for training.
	if err := cfg.validateEvalPhase(); err != nil {
		return nil, err
	}
	if m := len(s.cfg.Rates); cfg.Confidence < 1 && cfg.Confidence <= 1/float64(m) {
		// Training uses equal priors; Evaluate re-checks against the
		// trained classifier.
		return nil, fmt.Errorf("core: confidence %v does not exceed the equal class prior 1/%d",
			cfg.Confidence, m)
	}
	att, err := s.TrainSessionAttack(cfg)
	if err != nil {
		return nil, err
	}
	return att.Evaluate(cfg)
}
