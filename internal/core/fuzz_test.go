package core

import (
	"math"
	"testing"

	"linkpad/internal/population"
)

// fuzz_test.go: Build-time validation must be total. A DisclosureSpec
// assembled from arbitrary field values — NaN rates, negative budgets,
// absurd mix parameters, out-of-range enum codes, duplicate targets —
// must either build or return an error; Scenario.Build never panics.
// This is the fuzz companion of the checkpoint-decode fuzzers
// (internal/experiment, internal/netem): those guard resume inputs,
// this guards spec inputs.

// FuzzDisclosureSpecBuild throws arbitrary field values at
// DisclosureSpec validation. The seed corpus pins one representative of
// every axis: each mix kind, estimator and dummy policy, the documented
// invalid shapes, and the extreme floats validation must tolerate.
func FuzzDisclosureSpecBuild(f *testing.F) {
	// users, recipients, contacts, coverMilli, dummies,
	// batch, mixKind, retainMilli, periodMilli, mixSeed,
	// estimator, maxRounds, checkEvery, consecutive, workers, targets
	add := func(users, recipients, contacts, coverMilli, dummies,
		batch, mixKind, retainMilli, periodMilli int, mixSeed uint64,
		estimator, maxRounds, checkEvery, consecutive, workers int, targets []byte) {
		f.Add(users, recipients, contacts, coverMilli, dummies,
			batch, mixKind, retainMilli, periodMilli, mixSeed,
			estimator, maxRounds, checkEvery, consecutive, workers, targets)
	}
	add(24, 60, 3, 0, 0, 8, 0, 0, 0, 0, 0, 400, 25, 2, 1, nil)              // default threshold/classic/none
	add(24, 60, 3, 1000, 1, 8, 1, 500, 0, 7, 1, 400, 25, 2, 0, nil)        // pool/ls/uniform with cover
	add(24, 60, 3, 1000, 2, 8, 2, 0, 250, 0, 2, 400, 25, 2, 2, nil)        // timed/ml/adaptive
	add(24, 60, 3, 0, 1, 8, 0, 0, 0, 0, 0, 400, 25, 2, 1, nil)             // uniform dummies without cover: invalid
	add(24, 60, 3, 0, 9, 8, 0, 0, 0, 0, 0, 400, 25, 2, 1, nil)             // unknown dummy policy
	add(24, 60, 3, 0, 0, 8, 7, 0, 0, 0, 0, 400, 25, 2, 1, nil)             // unknown mix kind
	add(24, 60, 3, 0, 0, 8, 0, 0, 0, 0, -3, 400, 25, 2, 1, nil)            // unknown estimator
	add(24, 60, 3, 0, 0, 8, 1, 990, 0, 0, 0, 400, 25, 2, 1, nil)           // pool retain past the cap
	add(24, 60, 3, 0, 0, 8, 0, 500, 0, 0, 0, 400, 25, 2, 1, nil)           // threshold with pool params
	add(24, 60, 3, 0, 0, 8, 2, 0, -40, 0, 0, 400, 25, 2, 1, nil)           // timed with negative period
	add(1, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, nil)                  // degenerate population
	add(24, 60, 3, 0, 0, 8, 0, 0, 0, 0, 0, 400, 25, 2, 1, []byte{3, 3})    // duplicate targets
	add(24, 60, 3, 0, 0, 8, 0, 0, 0, 0, 0, 400, 25, 2, 1, []byte{200})     // target out of range
	add(-5, -5, -1, -1, 0, -8, 0, 0, 0, 0, 0, -1, -1, -1, -1, []byte{255}) // everything negative
	add(1 << 40, 60, 3, 0, 0, 8, 0, 0, 0, ^uint64(0), 0, 1 << 50, 1, 1, 1, nil)

	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, users, recipients, contacts, coverMilli, dummies,
		batch, mixKind, retainMilli, periodMilli int, mixSeed uint64,
		estimator, maxRounds, checkEvery, consecutive, workers int, targets []byte) {
		cover := float64(coverMilli) / 1000
		if coverMilli == -1 {
			cover = math.NaN()
		}
		spec := DisclosureSpec{
			Population: PopulationSpec{
				Users:      users,
				Recipients: recipients,
				Contacts:   contacts,
				CoverRate:  cover,
				Dummies:    population.DummyPolicy(dummies),
			},
			Disclosure: population.DisclosureConfig{
				Batch: batch,
				Mix: population.MixSpec{
					Kind:   population.MixKind(mixKind),
					Retain: float64(retainMilli) / 1000,
					Period: float64(periodMilli) / 1000,
					Seed:   mixSeed,
				},
				Estimator:   population.EstimatorKind(estimator),
				Dummies:     population.DummyPolicy(dummies),
				MaxRounds:   maxRounds,
				CheckEvery:  checkEvery,
				Consecutive: consecutive,
				Workers:     workers,
			},
		}
		for _, b := range targets {
			spec.Disclosure.Targets = append(spec.Disclosure.Targets, int(b)-64)
		}
		// Build must validate or reject — never panic. (The scenario is
		// not run: a valid spec with a huge budget is still a valid spec.)
		if _, err := sys.Build(spec); err != nil {
			return
		}
		// A spec Build accepted must also pass the population layer's
		// standalone validation — Build cannot be more permissive than
		// the engine it hands the config to.
		cfg := spec.Disclosure
		cfg.Dummies = spec.Population.Dummies
		if err := cfg.Validate(spec.Population.Users); err != nil {
			t.Fatalf("Build accepted a spec the population layer rejects: %v", err)
		}
	})
}
