package core

import "testing"

// The four observation protocols must draw from pairwise-disjoint
// stream-ID ranges: a collision would mean two protocols observe the
// *identical* realization of the system, silently correlating data that
// the threat model requires to be independent. Sweep the realistic
// parameter ranges of each domain and check every pair of domains is
// disjoint, and that IDs within a domain are distinct across distinct
// parameters.
func TestStreamDomainsDisjoint(t *testing.T) {
	seen := map[uint64]string{}
	add := func(id uint64, who string) {
		t.Helper()
		if prev, dup := seen[id]; dup && prev != who {
			t.Fatalf("stream ID %#x claimed by both %s and %s", id, prev, who)
		} else if dup {
			t.Fatalf("stream ID %#x derived twice within %s", id, who)
		}
		seen[id] = who
	}

	// Replica domain: phase bases are small integers (training 1, eval 2,
	// diagnostics base+1000, padCost 99); window counts reach the tens of
	// thousands at full scale — sweep past that and spot-check the extreme
	// the spreading bound documents (w+1 < 2^30; one index higher would
	// reach the population flag at bit 62).
	bases := []uint64{1, 2, 99, 1002, 65535}
	windows := []int{0, 1, 1000, 100000, 1<<30 - 2}
	for _, b := range bases {
		for _, w := range windows {
			add(windowStreamID(b, w), "replica")
		}
	}

	// Session domain: same base/index spreading, bit 63 ORed in by
	// NewSession.
	for _, b := range bases {
		for _, s := range windows {
			add(windowStreamID(b, s)|sessionDomain, "session")
		}
	}

	// Population domain: user × role blocks under bit 62.
	users := []int{0, 1, 7, 1000, 1 << 20}
	for _, u := range users {
		for role := uint64(popRolePayload); role <= popRoleLink; role++ {
			add(populationStreamID(u, role), "population")
		}
	}

	// Cascade domain: flow × hop × role blocks under both flag bits.
	// Flow indices cover real flows and the phantom training block
	// (phantomUserBase + class·windows + w); hops are bounded by
	// maxCascadeHops, with the exit role one past the last hop.
	flows := []int{0, 1, 7, 1000, phantomUserBase, phantomUserBase + 4095}
	for _, f := range flows {
		for hop := 0; hop <= maxCascadeHops; hop++ {
			for role := uint64(cascadeRolePayload); role <= cascadeRoleExit; role++ {
				add(cascadeStreamID(f, hop, role), "cascade")
			}
		}
	}

	// The flags themselves must disagree: session sets bit 63, population
	// sets bit 62 only, cascade sets both, replica sets neither.
	if sessionDomain&populationDomain != 0 {
		t.Fatal("session and population domain flags overlap")
	}
	if cascadeDomain != sessionDomain|populationDomain {
		t.Fatal("cascade domain must set both flag bits")
	}
	for _, b := range bases {
		for _, w := range windows {
			if id := windowStreamID(b, w); id&(sessionDomain|populationDomain) != 0 {
				t.Fatalf("replica ID %#x (base %d, w %d) reaches a domain flag bit", id, b, w)
			}
		}
	}
	for _, u := range users {
		if id := populationStreamID(u, popRoleLink); id&sessionDomain != 0 {
			t.Fatalf("population ID %#x (user %d) reaches the session flag", id, u)
		}
	}
	// Cascade flow spreading must stay inside the flagged block: clearing
	// the flags must never carry into bit 62 (which would alias another
	// domain's flag pattern).
	for _, f := range flows {
		id := cascadeStreamID(f, maxCascadeHops, cascadeRoleExit)
		if (id &^ cascadeDomain) >= populationDomain {
			t.Fatalf("cascade ID %#x (flow %d) spreads into the flag bits", id, f)
		}
	}
}
