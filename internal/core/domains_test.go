package core

import "testing"

// The five stream domains must draw from pairwise-disjoint stream-ID
// ranges: a collision would mean two protocols observe the *identical*
// realization of the system, silently correlating data that the threat
// model requires to be independent. Sweep the realistic parameter
// ranges of each domain and check every pair of domains is disjoint,
// and that IDs within a domain are distinct across distinct parameters.
func TestStreamDomainsDisjoint(t *testing.T) {
	seen := map[uint64]string{}
	add := func(id uint64, who string) {
		t.Helper()
		if prev, dup := seen[id]; dup && prev != who {
			t.Fatalf("stream ID %#x claimed by both %s and %s", id, prev, who)
		} else if dup {
			t.Fatalf("stream ID %#x derived twice within %s", id, who)
		}
		seen[id] = who
	}

	// Replica domain: phase bases are small integers (training 1, eval 2,
	// diagnostics base+1000, padCost 99); window counts reach the tens of
	// thousands at full scale — sweep past that and spot-check the extreme
	// the spreading bound documents (w+1 < 2^29; one index higher would
	// reach the active flag at bit 61).
	bases := []uint64{1, 2, 99, 1002, 65535}
	windows := []int{0, 1, 1000, 100000, 1<<29 - 2}
	for _, b := range bases {
		for _, w := range windows {
			add(windowStreamID(b, w), "replica")
		}
	}

	// Session domain: same base/index spreading, bit 63 ORed in by
	// NewSession.
	for _, b := range bases {
		for _, s := range windows {
			add(windowStreamID(b, s)|sessionDomain, "session")
		}
	}

	// Population domain: user × role blocks under bit 62.
	users := []int{0, 1, 7, 1000, 1 << 20}
	for _, u := range users {
		for role := uint64(popRolePayload); role <= popRoleLink; role++ {
			add(populationStreamID(u, role), "population")
		}
	}

	// Cascade domain: flow × hop × role blocks under both flag bits.
	// Flow indices cover real flows and the phantom training block
	// (phantomUserBase + class·windows + w); hops are bounded by
	// maxCascadeHops, with the exit role one past the last hop.
	flows := []int{0, 1, 7, 1000, phantomUserBase, phantomUserBase + 4095}
	for _, f := range flows {
		for hop := 0; hop <= maxCascadeHops; hop++ {
			for role := uint64(cascadeRolePayload); role <= cascadeRoleExit; role++ {
				add(cascadeStreamID(f, hop, role), "cascade")
			}
		}
	}

	// Active domain: protocol × flow × hop × role blocks under bit 61.
	// Flow indices cover real flows, the phantom training block, and the
	// adversary's decoy indices; the exit role reads one hop past the
	// last padded element.
	for _, proto := range []ActiveProtocol{ActiveReplica, ActiveSession, ActivePopulation, ActiveCascade} {
		for _, f := range flows {
			for hop := 0; hop <= maxCascadeHops; hop++ {
				for role := uint64(activeRolePayload); role <= activeRoleDecoy; role++ {
					add(activeStreamID(proto, f, hop, role),
						"active/"+proto.String())
				}
			}
		}
	}

	// The flags themselves must disagree: session sets bit 63, population
	// sets bit 62 only, cascade sets both, replica sets neither, and the
	// active flag sits below all of them.
	if sessionDomain&populationDomain != 0 {
		t.Fatal("session and population domain flags overlap")
	}
	if cascadeDomain != sessionDomain|populationDomain {
		t.Fatal("cascade domain must set both flag bits")
	}
	if activeDomain&(sessionDomain|populationDomain) != 0 {
		t.Fatal("active domain flag overlaps the session/population flags")
	}
	for _, b := range bases {
		for _, w := range windows {
			if id := windowStreamID(b, w); id&(sessionDomain|populationDomain|activeDomain) != 0 {
				t.Fatalf("replica ID %#x (base %d, w %d) reaches a domain flag bit", id, b, w)
			}
		}
	}
	for _, u := range users {
		if id := populationStreamID(u, popRoleLink); id&sessionDomain != 0 {
			t.Fatalf("population ID %#x (user %d) reaches the session flag", id, u)
		}
	}
	// Cascade flow spreading must stay inside the flagged block: clearing
	// the flags must never carry into bit 62 (which would alias another
	// domain's flag pattern).
	for _, f := range flows {
		id := cascadeStreamID(f, maxCascadeHops, cascadeRoleExit)
		if (id &^ cascadeDomain) >= populationDomain {
			t.Fatalf("cascade ID %#x (flow %d) spreads into the flag bits", id, f)
		}
	}
	// Active flow spreading (bits 16..47) and the protocol field (bits
	// 52..53) must stay below the active flag at bit 61.
	for _, f := range flows {
		id := activeStreamID(ActiveCascade, f, maxCascadeHops, activeRoleDecoy)
		if (id &^ activeDomain) >= activeDomain {
			t.Fatalf("active ID %#x (flow %d) spreads into the flag bits", id, f)
		}
	}
}
