package core

import (
	"runtime"
	"testing"

	"linkpad/internal/analytic"
)

// A session must be reproducible from (seed, class, sessionID) and
// distinct across IDs, classes, and from replica streams with the same
// numeric ID (domain separation).
func TestSessionDeterminismAndDomainSeparation(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	read := func(src interface{ Next() float64 }, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = src.Next()
		}
		return out
	}
	a1, err := sys.NewSession(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sys.NewSession(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	xs1 := read(a1.Source(), 64)
	xs2 := read(a2.Source(), 64)
	for i := range xs1 {
		if xs1[i] != xs2[i] {
			t.Fatalf("same (class, sessionID) diverged at PIAT %d", i)
		}
	}
	b, err := sys.NewSession(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ys := read(b.Source(), 64); ys[0] == xs1[0] && ys[1] == xs1[1] {
		t.Error("different session IDs reproduced the same stream")
	}
	c, err := sys.NewSession(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ys := read(c.Source(), 64); ys[0] == xs1[0] && ys[1] == xs1[1] {
		t.Error("different classes reproduced the same stream")
	}
	// Replica stream 7 and session 7 must be independent realizations.
	rep, err := sys.PIATSource(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ys := read(rep, 64); ys[0] == xs1[0] && ys[1] == xs1[1] {
		t.Error("session stream collides with the replica protocol's stream")
	}
	if _, err := sys.NewSession(-1, 1); err == nil {
		t.Error("negative class accepted")
	}
	if _, err := sys.NewSession(2, 1); err == nil {
		t.Error("out-of-range class accepted")
	}
}

// The session clock and warm-up: consuming windows advances Now
// monotonically in stream time; warm-up discards observations but keeps
// the timeline (a warmed session continues where warm-up stopped, it does
// not restart).
func TestSessionClockAndWarmup(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Now() != 0 || sess.Observed() != 0 {
		t.Fatalf("fresh session: now=%v observed=%d", sess.Now(), sess.Observed())
	}
	sess.WarmUp(200)
	warmEnd := sess.Now()
	// 200 PIATs at tau = 10 ms is ~2 s of stream time.
	if warmEnd < 1.5 || warmEnd > 2.5 {
		t.Errorf("warm-up clock = %v, want ~2s", warmEnd)
	}
	if sess.Observed() != 200 {
		t.Errorf("observed = %d, want 200", sess.Observed())
	}
	// Continuing the same session reproduces the continuation of the
	// un-warmed timeline: warm-up is observation discard, not a restart.
	ref, err := sys.NewSession(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	refAll := make([]float64, 264)
	for i := range refAll {
		refAll[i] = ref.Source().Next()
	}
	for i := 0; i < 64; i++ {
		if got := sess.Source().Next(); got != refAll[200+i] {
			t.Fatalf("post-warm-up PIAT %d = %v, want continuation %v", i, got, refAll[200+i])
		}
	}
	if sess.Class() != 0 || sess.ID() != 3 {
		t.Errorf("identity = (%d, %d)", sess.Class(), sess.ID())
	}
}

// The continuous-stream attack must be byte-identical at any
// session-parallelism width — the session analogue of
// TestRunAttackWorkerInvariance.
func TestRunAttackSessionWorkerInvariance(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := SessionAttackConfig{
		Feature:       analytic.FeatureEntropy,
		WindowSize:    300,
		TrainSessions: 4,
		TrainWindows:  40,
		EvalSessions:  16,
		MaxWindows:    5,
		WarmupPackets: 50,
	}
	cfg := base
	cfg.Workers = 1
	ref, err := sys.RunAttackSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		cfg := base
		cfg.Workers = workers
		got, err := sys.RunAttackSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.DetectionRate != ref.DetectionRate ||
			got.DecidedRate != ref.DecidedRate ||
			got.MeanWindowsToDecision != ref.MeanWindowsToDecision ||
			got.MeanTimeToDecision != ref.MeanTimeToDecision ||
			got.WindowDetectionRate != ref.WindowDetectionRate {
			t.Fatalf("workers=%d: %+v differs from reference %+v", workers, got, ref)
		}
		for tc := 0; tc < 2; tc++ {
			for pc := 0; pc < 2; pc++ {
				if got.Confusion.Count(tc, pc) != ref.Confusion.Count(tc, pc) {
					t.Fatalf("workers=%d: confusion[%d][%d] differs", workers, tc, pc)
				}
			}
		}
	}
}

// Against the CIT lab system the anytime entropy attack should decide
// quickly and correctly: near-perfect detection, most sessions decided
// within the budget, and a decision time of a few windows.
func TestRunAttackSessionDetectsLabSystem(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunAttackSession(SessionAttackConfig{
		Feature:       analytic.FeatureEntropy,
		WindowSize:    1000,
		TrainSessions: 4,
		TrainWindows:  60,
		EvalSessions:  20,
		MaxWindows:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate < 0.9 {
		t.Errorf("detection = %v, want > 0.9 (CIT is broken at n=1000)", res.DetectionRate)
	}
	if res.DecidedRate < 0.8 {
		t.Errorf("decided fraction = %v, want > 0.8", res.DecidedRate)
	}
	if res.DecidedRate > 0 {
		if res.MeanWindowsToDecision < 1 || res.MeanWindowsToDecision > 8 {
			t.Errorf("mean windows to decision = %v", res.MeanWindowsToDecision)
		}
		// Stream time per window is ~n*tau = 10 s.
		wantLo := 0.8 * res.MeanWindowsToDecision * 10
		wantHi := 1.2 * res.MeanWindowsToDecision * 10
		if res.MeanTimeToDecision < wantLo || res.MeanTimeToDecision > wantHi {
			t.Errorf("mean time to decision = %v s, want in [%v, %v]",
				res.MeanTimeToDecision, wantLo, wantHi)
		}
	}
	if res.WindowDetectionRate < 0.85 {
		t.Errorf("per-window detection = %v, want > 0.85", res.WindowDetectionRate)
	}
	if res.Confusion.Total() != 40 {
		t.Errorf("confusion total = %d, want 40", res.Confusion.Total())
	}
}

// VIT with a large sigma_T defeats the anytime attack too: detection near
// guessing and decisions rare (the posterior hovers at the prior).
func TestRunAttackSessionVITResists(t *testing.T) {
	cfg := DefaultLabConfig()
	cfg.SigmaT = 100e-6
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunAttackSession(SessionAttackConfig{
		Feature:       analytic.FeatureEntropy,
		WindowSize:    500,
		TrainSessions: 4,
		TrainWindows:  40,
		EvalSessions:  16,
		MaxWindows:    4,
		Confidence:    0.999,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate > 0.8 {
		t.Errorf("detection against sigma_T=100us = %v, want near 0.5", res.DetectionRate)
	}
}

func TestRunAttackSessionValidation(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunAttackSession(SessionAttackConfig{TrainBase: 5, EvalBase: 5}); err == nil {
		t.Error("identical session ID bases should fail")
	}
	if _, err := sys.RunAttackSession(SessionAttackConfig{Confidence: 1.5}); err == nil {
		t.Error("confidence outside (0,1) should fail")
	}
	// Multi-rate systems work through the session API as well.
	mcfg := DefaultLabConfig()
	mcfg.Rates = []Rate{
		{Label: "10pps", PPS: 10},
		{Label: "20pps", PPS: 20},
		{Label: "40pps", PPS: 40},
	}
	msys, err := NewSystem(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := msys.RunAttackSession(SessionAttackConfig{
		Feature:       analytic.FeatureEntropy,
		WindowSize:    300,
		TrainSessions: 2,
		TrainWindows:  24,
		EvalSessions:  6,
		MaxWindows:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() != 18 {
		t.Errorf("confusion total = %d, want 18", res.Confusion.Total())
	}
}

// The split train/evaluate API: one training evaluated twice must (a)
// reproduce RunAttackSession exactly for the same knobs, and (b) support
// a full-budget pass (Confidence 1 disables the anytime stop) next to an
// anytime pass without retraining.
func TestTrainSessionAttackReuse(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := SessionAttackConfig{
		Feature:       analytic.FeatureEntropy,
		WindowSize:    300,
		TrainSessions: 4,
		TrainWindows:  40,
		EvalSessions:  10,
		MaxWindows:    4,
	}
	ref, err := sys.RunAttackSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	att, err := sys.TrainSessionAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := att.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.DetectionRate != ref.DetectionRate || got.DecidedRate != ref.DecidedRate ||
		got.MeanWindowsToDecision != ref.MeanWindowsToDecision ||
		got.WindowDetectionRate != ref.WindowDetectionRate {
		t.Fatalf("split API %+v differs from RunAttackSession %+v", got, ref)
	}

	// Full-budget pass: no session decides early, every session observes
	// exactly MaxWindows windows.
	full, err := att.Evaluate(SessionAttackConfig{
		EvalSessions: 10,
		MaxWindows:   4,
		Confidence:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.DecidedRate != 0 || full.MeanWindowsToDecision != 0 {
		t.Errorf("confidence 1 still decided early: decided=%v windows=%v",
			full.DecidedRate, full.MeanWindowsToDecision)
	}
	if full.Confusion.Total() != 20 {
		t.Errorf("confusion total = %d, want 20", full.Confusion.Total())
	}
	// Budget-end MAP decisions still detect the lab system.
	if full.DetectionRate < 0.9 {
		t.Errorf("full-budget detection = %v, want > 0.9", full.DetectionRate)
	}
	// Evaluate validates its run-time knobs.
	if _, err := att.Evaluate(SessionAttackConfig{EvalBase: 1}); err == nil {
		t.Error("eval base colliding with train base accepted")
	}
	if _, err := att.Evaluate(SessionAttackConfig{Confidence: 1.01}); err == nil {
		t.Error("confidence above 1 accepted")
	}
}

// withDefaults must be idempotent — RunAttackSession applies it before
// delegating to TrainSessionAttack/Evaluate, which apply it again — and
// the negative warm-up sentinel ("disabled") must survive both passes.
func TestSessionConfigDefaultsIdempotent(t *testing.T) {
	once := SessionAttackConfig{WarmupPackets: -1}.withDefaults()
	twice := once.withDefaults()
	if once != twice {
		t.Fatalf("withDefaults not idempotent: %+v vs %+v", once, twice)
	}
	if once.WarmupPackets >= 0 {
		t.Errorf("disabled warm-up promoted to %d packets", once.WarmupPackets)
	}
	if def := (SessionAttackConfig{}).withDefaults(); def.WarmupPackets != 100 {
		t.Errorf("default warm-up = %d, want 100", def.WarmupPackets)
	}
}

// Disabling warm-up must actually start observation at stream time zero:
// the first observed window of a no-warm-up session replays the session's
// raw timeline from its first PIAT.
func TestSessionNoWarmupObservesFromStart(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	sess.WarmUp(-1) // disabled: no-op
	if sess.Observed() != 0 {
		t.Fatalf("disabled warm-up consumed %d PIATs", sess.Observed())
	}
	ref, err := sys.NewSession(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sess.Source().Next(), ref.Source().Next(); got != want {
		t.Errorf("first PIAT after disabled warm-up = %v, want %v", got, want)
	}
}

// A confidence threshold at or below the largest class prior would
// "decide" on zero evidence; Evaluate must reject it.
func TestEvaluateRejectsPriorLevelConfidence(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	att, err := sys.TrainSessionAttack(SessionAttackConfig{
		Feature:       analytic.FeatureEntropy,
		WindowSize:    300,
		TrainSessions: 2,
		TrainWindows:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{0.3, 0.5} {
		if _, err := att.Evaluate(SessionAttackConfig{
			EvalSessions: 2, MaxWindows: 2, Confidence: c,
		}); err == nil {
			t.Errorf("confidence %v (<= equal prior 0.5) accepted", c)
		}
	}
}

// Negative run-time knobs must be rejected, not silently produce a
// degenerate result.
func TestEvaluateRejectsNonPositiveBudgets(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	att, err := sys.TrainSessionAttack(SessionAttackConfig{
		Feature:       analytic.FeatureVariance,
		WindowSize:    300,
		TrainSessions: 2,
		TrainWindows:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := att.Evaluate(SessionAttackConfig{EvalSessions: -1, MaxWindows: 2}); err == nil {
		t.Error("negative EvalSessions accepted")
	}
	if _, err := att.Evaluate(SessionAttackConfig{EvalSessions: 2, MaxWindows: -1}); err == nil {
		t.Error("negative MaxWindows accepted")
	}
}

// Bases that collide after the high-bit session spreading must be
// rejected: sessionID(base, s) adds (s+1)<<32, so two bases sharing
// their low 32 bits alias each other's session streams.
func TestSessionBaseAliasingRejected(t *testing.T) {
	sys, err := NewSystem(DefaultLabConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := SessionAttackConfig{
		Feature:       analytic.FeatureVariance,
		WindowSize:    300,
		TrainSessions: 2,
		TrainWindows:  8,
		EvalSessions:  2,
		MaxWindows:    2,
		TrainBase:     1,
		EvalBase:      1 + 1<<32, // eval session j == train session j+1
	}
	if _, err := sys.RunAttackSession(cfg); err == nil {
		t.Error("aliasing session bases accepted by RunAttackSession")
	}
	att, err := sys.TrainSessionAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := att.Evaluate(cfg); err == nil {
		t.Error("aliasing session bases accepted by Evaluate")
	}
	// The replica protocol rejects the analogous stream ID aliasing.
	if _, err := sys.RunAttackSet(AttackConfig{
		TrainStreamID: 1,
		EvalStreamID:  1 + 1<<32,
	}, []analytic.Feature{analytic.FeatureVariance}); err == nil {
		t.Error("aliasing stream IDs accepted by RunAttackSet")
	}
}
